// Quickstart: build a tiny synthetic genome, simulate Illumina-style
// reads, align them with the GenAx pipeline, and print SAM-like records —
// the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/sim"
)

func main() {
	// 1. A synthetic reference with human-like variant density and 101 bp
	//    reads at 2% sequencing error — the paper's workload shape (§VII).
	wl := sim.NewWorkload(42, 100_000, sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: 101, Coverage: 0.5, ErrorRate: 0.02, ReverseFraction: 0.5})
	fmt.Printf("reference: %d bp, reads: %d\n", len(wl.Ref), len(wl.Reads))

	// 2. A GenAx instance: per-segment k-mer tables plus SillaX lanes.
	// cfg.Engine picks the extension engine — bitsilla (default), sillax,
	// banded, genasm, or the adaptive cascade (core.EngineCascade), all of
	// which except banded produce byte-identical alignments.
	cfg := core.DefaultConfig()
	cfg.SegmentLen = 32_768 // several segments even on a toy genome
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d segments, k=%d, K(edit bound)=%d\n\n",
		aligner.NumSegments(), cfg.KmerLen, cfg.K)

	// 3. Align a batch (seeding -> SillaX extension with traceback).
	seqs := make([]dna.Seq, len(wl.Reads))
	for i, rd := range wl.Reads {
		seqs[i] = rd.Seq
	}
	results, stats := aligner.AlignBatch(seqs)

	// 4. Inspect the first few alignments.
	correct := 0
	for i, rr := range results {
		if rr.Aligned && abs(rr.Result.RefPos-wl.Reads[i].TruePos) <= 12 {
			correct++
		}
		if i < 8 {
			if rr.Aligned {
				fmt.Printf("%-12s %s\n", wl.Reads[i].ID, rr.Result)
			} else {
				fmt.Printf("%-12s unaligned\n", wl.Reads[i].ID)
			}
		}
	}
	fmt.Printf("\naligned %d/%d reads (%d exact fast-path), %d near true position\n",
		stats.Aligned, stats.Reads, stats.ExactReads, correct)
	fmt.Printf("pipeline work: %d extensions, %d SillaX cycles, %d traceback re-runs\n",
		stats.Extensions, stats.ExtensionCycles, stats.ReRuns)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
