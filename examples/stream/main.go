// Stream: align reads through the staged streaming pipeline — reads go in
// on a channel, results come back on a channel in input order, and only a
// bounded window is ever in flight. This is the shape to use when the
// read set does not fit in memory (or arrives from a sequencer in real
// time); the results are byte-identical to AlignBatch on the same reads.
package main

import (
	"context"
	"fmt"
	"log"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/sim"
)

func main() {
	// 1. The same synthetic workload as the quickstart example.
	wl := sim.NewWorkload(42, 100_000, sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: 101, Coverage: 0.5, ErrorRate: 0.02, ReverseFraction: 0.5})

	// 2. A GenAx instance with a small streaming window so several windows
	//    rotate through the pipeline even on this toy read set. The chip's
	//    128:4 seeding:extension lane split (§VI) is scaled to the host by
	//    default; set SeedLanes/ExtendLanes to pin it. Extension runs on
	//    the bit-parallel engine by default; cfg.Engine selects
	//    core.EngineSillaX or core.EngineBanded for byte-identical results
	//    from the cycle model or the software baseline.
	cfg := core.DefaultConfig()
	cfg.SegmentLen = 32_768
	cfg.StreamWindow = 64
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Feed reads into the pipeline from a producer goroutine. Closing
	//    the input channel is what ends the stream; cancel the context to
	//    abandon it early instead.
	in := make(chan dna.Seq)
	results, stats := aligner.AlignStream(context.Background(), in)
	go func() {
		defer close(in)
		for _, rd := range wl.Reads {
			in <- rd.Seq
		}
	}()

	// 4. Results arrive in input order as each window completes, so the
	//    consumer can zip them against the read metadata with a counter.
	aligned, i := 0, 0
	for rr := range results {
		if rr.Aligned {
			aligned++
			if aligned <= 5 {
				fmt.Printf("%-12s %s\n", wl.Reads[i].ID, rr.Result)
			}
		}
		i++
	}

	// 5. The stats pointer is valid once the result channel closes.
	fmt.Printf("\nstreamed %d reads, aligned %d (%d exact fast-path)\n",
		stats.Reads, stats.Aligned, stats.ExactReads)
	fmt.Printf("pipeline work: %d extensions, %d SillaX cycles\n",
		stats.Extensions, stats.ExtensionCycles)
}
