// Serve: align reads over HTTP the way genaxd does — a serve.Server is
// started in-process (the same layer `cmd/genaxd` mounts), single-read
// requests are POSTed against it concurrently, and every response is
// checked against the in-process AlignRead answer for the same read:
// served results are byte-identical to offline alignment, coalesced or
// not. To run against a real daemon instead, start one
//
//	go run ./cmd/genaxd -genome demo=ref.fasta -kmer 8 -segment 4096
//
// and point the POSTs at http://localhost:8844/align/demo.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/serve"
	"genax/internal/sim"
)

// alignResponse mirrors the serve.AlignResponse JSON body.
type alignResponse struct {
	Aligned bool   `json:"aligned"`
	Pos     int    `json:"pos"`
	Score   int    `json:"score"`
	Cigar   string `json:"cigar"`
	Reverse bool   `json:"reverse"`
}

func main() {
	// 1. A synthetic genome plus reads, and the reference written to a
	//    FASTA file — the server builds (and caches) its index from the
	//    file exactly like genaxd would.
	wl := sim.NewWorkload(42, 60_000, sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: 101, Coverage: 0.3, ErrorRate: 0.02, ReverseFraction: 0.5})
	dir, err := os.MkdirTemp("", "genax-serve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fasta := filepath.Join(dir, "demo.fasta")
	f, err := os.Create(fasta)
	if err != nil {
		log.Fatal(err)
	}
	if err := dna.WriteFasta(f, []dna.FastaRecord{{Name: "demo", Seq: wl.Ref}}, 0); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// 2. The serving layer genaxd mounts: one genome, request coalescing
	//    on (concurrent posts share pipeline batches), index cache in the
	//    temp dir. A second run against the same cache dir would map the
	//    index in microseconds instead of rebuilding.
	cfg := core.DefaultConfig()
	cfg.KmerLen = 8
	cfg.SegmentLen = 4096
	cfg.Overlap = 256
	srv, err := serve.New(serve.Config{
		Genomes:  []serve.GenomeConfig{{Name: "demo", Fasta: fasta, Preload: true}},
		Core:     cfg,
		CacheDir: dir,
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Preload(context.Background(), true); err != nil {
		log.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// 3. The offline oracle for the check: the same aligner configuration
	//    over the same reference.
	oracle, err := core.New(wl.Ref, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Post every read concurrently — the traffic shape coalescing
	//    exists for — and compare each served response with AlignRead.
	var wg sync.WaitGroup
	var mu sync.Mutex
	aligned, mismatches := 0, 0
	for _, rd := range wl.Reads {
		wg.Add(1)
		go func(read dna.Seq) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/align/demo", "text/plain", strings.NewReader(read.String()))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			var got alignResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				log.Fatal(err)
			}
			res, ok := oracle.AlignRead(read)
			same := got.Aligned == ok &&
				(!ok || (got.Pos == res.RefPos && got.Score == res.Score &&
					got.Cigar == res.Cigar.String() && got.Reverse == res.Reverse))
			mu.Lock()
			if got.Aligned {
				aligned++
			}
			if !same {
				mismatches++
			}
			mu.Unlock()
		}(rd.Seq)
	}
	wg.Wait()

	fmt.Printf("served %d reads over HTTP: %d aligned, %d mismatches vs AlignRead\n",
		len(wl.Reads), aligned, mismatches)
	if mismatches > 0 {
		log.Fatal("served results diverged from offline alignment")
	}
	fmt.Println("every served response is byte-identical to the offline answer")
}
