// Longread: the scaling argument of §II-III. Smith-Waterman is O(N²) in
// the read length while Silla machines are O(N) time with O(K²) state, so
// long reads (PacBio/Nanopore-style) are where the automaton wins hardest.
// This example extends reads of growing length under a fixed edit budget
// and reports wall-clock for the software baselines next to the SillaX
// architectural cycle count.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
	"genax/internal/sim"
	"genax/internal/sw"
)

func mutateFew(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1:
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		default:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func main() {
	r := rand.New(rand.NewSource(7))
	const k = 16 // edit budget stays small even as reads grow
	sc := align.BWAMEMDefaults()
	full := sw.NewAligner(sc)
	banded := sw.NewBandedAligner(sc, k)
	machine := sillax.NewScoringMachine(k, sc)

	fmt.Printf("%-10s %-14s %-14s %-16s %s\n", "read bp", "full SW", "banded SW", "SillaX cycles", "(= µs @2GHz)")
	for _, n := range []int{100, 500, 1000, 5000, 10000, 20000} {
		ref := sim.RandomGenome(r, n+k)
		read := mutateFew(r, ref[:n], 8)

		t0 := time.Now()
		fullRes := full.Align(ref, read, sw.Extend)
		fullT := time.Since(t0)

		t0 = time.Now()
		bandRes := banded.Extend(ref, read)
		bandT := time.Since(t0)

		mres := machine.Extend(ref, read)
		if fullRes.Score != bandRes.Score || bandRes.Score != mres.Score {
			fmt.Printf("  (scores differ: full=%d banded=%d sillax=%d — edit budget exceeded)\n",
				fullRes.Score, bandRes.Score, mres.Score)
		}
		fmt.Printf("%-10d %-14s %-14s %-16d %.1f\n", n, fullT.Round(time.Microsecond),
			bandT.Round(time.Microsecond), mres.Cycles, float64(mres.Cycles)/2000)
	}
	fmt.Println("\nfull SW grows quadratically; banded SW and the SillaX cycle count grow")
	fmt.Println("linearly — and the SillaX grid stays at 3(K+1)²/2 states regardless of N,")
	fmt.Println("which is why §III calls it 'particularly attractive for matching long")
	fmt.Println("strings with limited edit distance'.")
}
