// Longread: kilobase reads end to end on the multi-word fast path.
//
// PR 9 made K > 63 first-class: score planes striped across
// ⌈(K+1)/64⌉ machine words (each word a composed "tile", cross-word
// shifts the §IV-D mux crossings), witness- and suffix-bound pruning
// that keeps the live set to a corridor around the true alignment, and
// an anchor-chaining stage that collapses a long read's many seed hits
// into a handful of extensions. This example runs a long-read workload
// through the full pipeline at K=80 and then puts one kilobase
// extension on the wide datapath next to the cycle-level oracle it is
// byte-identical to.
package main

import (
	"fmt"
	"time"

	"genax/internal/align"
	"genax/internal/bitsilla"
	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/sillax"
	"genax/internal/sim"
)

func main() {
	// A small long-read workload: 1.2 kb mean reads at 2% error with a
	// heavy indel fraction — the regime that needs an edit budget far
	// past the single-word limit of 63.
	const k = 80
	wl := sim.NewLongReadWorkload(9, 40_000, sim.DefaultVariantProfile(),
		sim.LongReadProfile{MeanLength: 1200, Coverage: 0.3, ErrorRate: 0.02,
			IndelErrorFrac: 0.3, ReverseFraction: 0.5})
	reads := make([]dna.Seq, len(wl.Reads))
	for i, r := range wl.Reads {
		reads[i] = r.Seq
	}

	cfg := core.DefaultConfig()
	cfg.K = k
	cfg.KmerLen = 12
	cfg.SegmentLen = 10_000
	cfg.Overlap = 3*1200/2 + k + 16
	cfg.Engine = core.EngineBitSilla
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		panic(err)
	}
	t0 := time.Now()
	results, stats := aligner.AlignBatch(reads)
	wall := time.Since(t0)
	aligned := 0
	for _, rr := range results {
		if rr.Aligned {
			aligned++
		}
	}
	fmt.Printf("pipeline: %d reads (mean 1200 bp), K=%d, %v wall\n", len(reads), k, wall.Round(time.Millisecond))
	fmt.Printf("aligned %d/%d; anchor chaining collapsed %d anchors into %d extensions\n",
		aligned, len(reads), stats.ChainAnchors, stats.ChainKept)

	// One extension, wide datapath vs the cycle-level oracle: same score,
	// same CIGAR, orders of magnitude apart in time. The wide machine also
	// counts its cross-word shifts — the mux crossings a composed SillaX
	// die would pay for the same K (sillax.TileArray.Compose).
	sc := align.BWAMEMDefaults()
	var query dna.Seq
	var refPos int
	for _, r := range wl.Reads {
		if !r.Reverse {
			query, refPos = r.Seq, r.TruePos
			break
		}
	}
	end := refPos + len(query) + k
	if end > len(wl.Ref) {
		end = len(wl.Ref)
	}
	ref := wl.Ref[refPos:end]

	wide := bitsilla.New(k, sc)
	t0 = time.Now()
	wres := wide.Extend(ref, query)
	wideT := time.Since(t0)

	oracle := sillax.NewScoringMachine(k, sc)
	t0 = time.Now()
	ores := oracle.Extend(ref, query)
	oracleT := time.Since(t0)

	fmt.Printf("\none %d bp extension at K=%d:\n", len(query), k)
	fmt.Printf("  wide bitsilla  %12v  score=%d  mux crossings=%d\n", wideT.Round(time.Microsecond), wres.Score, wres.MuxCrossings)
	fmt.Printf("  sillax oracle  %12v  score=%d\n", oracleT.Round(time.Microsecond), ores.Score)
	if wres.Score != ores.Score {
		fmt.Println("  MISMATCH — the engines must agree byte for byte")
		return
	}
	fmt.Println("  identical scores; the wide path is the same machine,")
	fmt.Println("  striped across words like §IV-D stripes one engine across tiles.")
}
