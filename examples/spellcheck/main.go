// Spellcheck: Silla beyond genomics. §VIII-C notes that the automaton
// "can also be easily extended to solve other important problems such as
// ... automatic spell correction" — nothing in Silla depends on the DNA
// alphabet. This example fuzzy-matches misspelled words against a
// dictionary with one string-independent automaton per edit bound,
// contrasted with the classical Levenshtein automaton, which would need a
// freshly compiled machine per dictionary word.
package main

import (
	"fmt"
	"sort"

	"genax/internal/la"
	"genax/internal/silla"
)

var dictionary = []string{
	"accelerator", "algorithm", "alignment", "automaton", "bandwidth",
	"comparison", "deletion", "distance", "genome", "hardware",
	"insertion", "levenshtein", "machine", "matching", "mutation",
	"pipeline", "processor", "reference", "register", "segment",
	"sequence", "substitution", "throughput", "traceback", "variant",
}

func main() {
	queries := []string{"alignmnet", "sequnce", "travceback", "genom", "automata", "xyzzy"}
	const k = 2

	fmt.Printf("Silla spell correction (edit bound %d, %d-word dictionary)\n\n", k, len(dictionary))
	for _, q := range queries {
		type hit struct {
			word string
			dist int
		}
		var hits []hit
		for _, w := range dictionary {
			// One automaton structure serves every (query, word) pair —
			// the string independence that makes SillaX practical.
			if d, ok := silla.DistanceStrings(q, w, k); ok {
				hits = append(hits, hit{w, d})
			}
		}
		sort.Slice(hits, func(i, j int) bool {
			if hits[i].dist != hits[j].dist {
				return hits[i].dist < hits[j].dist
			}
			return hits[i].word < hits[j].word
		})
		fmt.Printf("%-12s ->", q)
		if len(hits) == 0 {
			fmt.Printf(" (no suggestion within %d edits)", k)
		}
		for _, h := range hits {
			fmt.Printf(" %s(%d)", h.word, h.dist)
		}
		fmt.Println()
	}

	// The cost contrast of §II: a hardware LA must be reprogrammed per
	// pattern, while one Silla serves the whole dictionary.
	lens := make([]int, len(dictionary))
	for i, w := range dictionary {
		lens[i] = len(w)
	}
	laStates, sillaStates := la.ContextSwitchStates(lens, k)
	fmt.Printf("\nstates programmed to scan the dictionary once:\n")
	fmt.Printf("  classical Levenshtein automata: %5d (K+1)(N+1) states per word\n", laStates)
	fmt.Printf("  Silla:                          %5d states, programmed once\n", sillaStates)
}
