// Variants: the downstream consumer the paper's introduction motivates —
// "the end goal is to determine the variants in the new genome". This
// example aligns reads with GenAx, piles up the per-base evidence from the
// traceback CIGARs, calls SNPs, and scores the calls against the
// simulator's injected ground truth.
package main

import (
	"fmt"
	"log"
	"sort"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/sim"
)

func main() {
	wl := sim.NewWorkload(11, 150_000, sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: 101, Coverage: 12, ErrorRate: 0.01, ReverseFraction: 0.5})
	cfg := core.DefaultConfig()
	cfg.SegmentLen = 65_536
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		log.Fatal(err)
	}
	seqs := make([]dna.Seq, len(wl.Reads))
	for i, rd := range wl.Reads {
		seqs[i] = rd.Seq
	}
	results, stats := aligner.AlignBatch(seqs)
	fmt.Printf("aligned %d/%d reads over %d segments\n", stats.Aligned, stats.Reads, stats.Segments)

	// Pileup: for every reference position, count the aligned bases.
	type counts [dna.NumBases]int
	pile := make([]counts, len(wl.Ref))
	depth := make([]int, len(wl.Ref))
	for i, rr := range results {
		if !rr.Aligned {
			continue
		}
		q := seqs[i]
		if rr.Result.Reverse {
			q = q.RevComp()
		}
		ri, qi := rr.Result.RefPos, 0
		for _, run := range rr.Result.Cigar {
			for j := 0; j < run.Len; j++ {
				switch run.Op {
				case '=', 'X':
					pile[ri][q[qi]]++
					depth[ri]++
					ri++
					qi++
				case 'I', 'S':
					qi++
				case 'D':
					ri++
				}
			}
		}
	}

	// Call SNPs: positions where a non-reference base dominates.
	var calls []int
	for pos := range pile {
		if depth[pos] < 6 {
			continue
		}
		best, bestN := dna.Base(0), 0
		for b := dna.Base(0); b < dna.NumBases; b++ {
			if pile[pos][b] > bestN {
				best, bestN = b, pile[pos][b]
			}
		}
		if best != wl.Ref[pos] && bestN*3 >= depth[pos]*2 { // >=2/3 majority
			calls = append(calls, pos)
		}
	}
	sort.Ints(calls)

	// Ground truth SNP positions from the simulator.
	truth := map[int]bool{}
	for _, v := range wl.Donor.Variants {
		if v.Type == sim.SNP {
			truth[v.RefPos] = true
		}
	}
	tp := 0
	for _, p := range calls {
		if truth[p] {
			tp++
		}
	}
	fmt.Printf("SNP calls: %d; injected SNPs: %d; true positives: %d\n", len(calls), len(truth), tp)
	if len(calls) > 0 {
		fmt.Printf("precision %.1f%%", 100*float64(tp)/float64(len(calls)))
	}
	if len(truth) > 0 {
		fmt.Printf("  recall %.1f%%\n", 100*float64(tp)/float64(len(truth)))
	}
	fmt.Println("\nfirst calls:")
	for i, p := range calls {
		if i >= 5 {
			break
		}
		fmt.Printf("  pos %6d ref=%v pile A/C/G/T = %v depth=%d truth=%v\n",
			p, wl.Ref[p], pile[p], depth[p], truth[p])
	}
}
