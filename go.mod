module genax

go 1.22
