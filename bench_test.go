// Repository-level benchmarks: one testing.B benchmark per table/figure of
// the paper's evaluation plus kernels for the design-choice ablations
// DESIGN.md calls out. `go test -bench=. -benchmem` runs them all;
// cmd/genax-bench prints the corresponding paper-vs-measured reports.
package genax_test

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/bench"
	"genax/internal/bwamem"
	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/fmindex"
	"genax/internal/hw"
	"genax/internal/la"
	"genax/internal/seed"
	"genax/internal/silla"
	"genax/internal/sillax"
	"genax/internal/sim"
	"genax/internal/sw"
)

// ---- shared fixtures -------------------------------------------------

type fixture struct {
	wl    *sim.Workload
	reads []dna.Seq
	pairs []struct{ ref, query dna.Seq }
}

var fixtures = map[int]*fixture{}

func getFixture(genomeLen int) *fixture {
	if f, ok := fixtures[genomeLen]; ok {
		return f
	}
	wl := sim.NewWorkload(1, genomeLen, sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: 101, Coverage: 1, ErrorRate: 0.02, IndelErrorFrac: 0.1, ReverseFraction: 0.5})
	f := &fixture{wl: wl, reads: bench.ReadSeqs(wl)}
	for _, rd := range wl.Reads {
		q := rd.Seq
		if rd.Reverse {
			q = q.RevComp()
		}
		hi := rd.TruePos + len(q) + 40
		if hi > len(wl.Ref) {
			hi = len(wl.Ref)
		}
		f.pairs = append(f.pairs, struct{ ref, query dna.Seq }{wl.Ref[rd.TruePos:hi], q})
	}
	fixtures[genomeLen] = f
	return f
}

// ---- Figure 14: seed-extension kernels --------------------------------

func BenchmarkFig14BandedSW(b *testing.B) {
	f := getFixture(100_000)
	a := sw.NewBandedAligner(align.BWAMEMDefaults(), 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		a.Extend(p.ref, p.query)
	}
}

func BenchmarkFig14FullSW(b *testing.B) {
	f := getFixture(100_000)
	a := sw.NewAligner(align.BWAMEMDefaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		a.Align(p.ref, p.query, sw.Extend)
	}
}

func BenchmarkFig14Myers(b *testing.B) {
	f := getFixture(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		sw.MyersDistance(p.ref, p.query)
	}
}

func BenchmarkFig14SillaXEditMachine(b *testing.B) {
	f := getFixture(100_000)
	m := sillax.NewEditMachine(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		m.Distance(p.ref, p.query)
	}
}

func BenchmarkFig14SillaXScoring(b *testing.B) {
	f := getFixture(100_000)
	m := sillax.NewScoringMachine(40, align.BWAMEMDefaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		m.Extend(p.ref, p.query)
	}
}

// BenchmarkFig14SillaXTraceback is the Fig 13/14 kernel: the full traced
// extension whose architectural cycle count feeds the throughput model.
func BenchmarkFig14SillaXTraceback(b *testing.B) {
	f := getFixture(100_000)
	m := sillax.NewTracebackMachine(40, align.BWAMEMDefaults())
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		res := m.Extend(p.ref, p.query)
		cycles += int64(res.Cycles)
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

// ---- Silla vs LA vs DP (the §II-III motivation) ------------------------

func BenchmarkSillaDistanceK8(b *testing.B) {
	f := getFixture(100_000)
	a := silla.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		a.Distance(p.ref[:101], p.query)
	}
}

func BenchmarkLevenshteinAutomatonK8(b *testing.B) {
	f := getFixture(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		// String-dependent: the automaton must be rebuilt per pattern —
		// the context-switch cost of §II.
		a := la.New(p.ref[:101], 8)
		a.Match(p.query)
	}
}

func BenchmarkEditDistanceDP(b *testing.B) {
	f := getFixture(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := f.pairs[i%len(f.pairs)]
		sw.EditDistance(p.ref[:101], p.query)
	}
}

// ---- Figure 16: seeding ------------------------------------------------

func benchSeeding(b *testing.B, opts seed.Options) {
	f := getFixture(300_000)
	si, err := seed.BuildSegmentIndex(f.wl.Ref, 0, 0, 12)
	if err != nil {
		b.Fatal(err)
	}
	sd := seed.NewSeeder(si, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd.Seed(f.reads[i%len(f.reads)])
	}
	b.ReportMetric(float64(sd.Stats.HitsEmitted)/float64(b.N), "hits/read")
	b.ReportMetric(float64(sd.Stats.CAMLookups)/float64(b.N), "camops/read")
}

func BenchmarkFig16SeedingFull(b *testing.B) { benchSeeding(b, seed.DefaultOptions()) }

func BenchmarkFig16SeedingNaive(b *testing.B) {
	opts := seed.DefaultOptions()
	opts.SMEMFilter = false
	benchSeeding(b, opts)
}

func BenchmarkFig16SeedingNoBinaryExtension(b *testing.B) {
	opts := seed.DefaultOptions()
	opts.BinaryExtension = false
	opts.ExactFastPath = false
	benchSeeding(b, opts)
}

func BenchmarkFMIndexSMEM(b *testing.B) {
	f := getFixture(100_000)
	sx := fmindex.BuildSMEMIndex(f.wl.Ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sx.SMEMs(f.reads[i%len(f.reads)], 19, 512)
	}
}

// ---- Figure 15: end-to-end pipelines -----------------------------------

func BenchmarkFig15GenAxPipeline(b *testing.B) {
	f := getFixture(100_000)
	cfg := core.DefaultConfig()
	cfg.SegmentLen = 32_768
	aligner, err := core.New(f.wl.Ref, cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := f.reads
	if len(batch) > 200 {
		batch = batch[:200]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aligner.AlignBatch(batch)
	}
	b.ReportMetric(float64(len(batch)), "reads/op")
}

// BenchmarkAlignBatch measures the steady-state batch align path with the
// persistent lane pool — the allocs/op column is the budget the
// core.TestAlignBatchSteadyStateAllocs test enforces.
func BenchmarkAlignBatch(b *testing.B) {
	f := getFixture(100_000)
	cfg := core.DefaultConfig()
	cfg.SegmentLen = 32_768
	aligner, err := core.New(f.wl.Ref, cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := f.reads
	if len(batch) > 200 {
		batch = batch[:200]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aligner.AlignBatch(batch)
	}
	b.ReportMetric(float64(len(batch)), "reads/op")
}

func BenchmarkFig15BWAMEMPipeline(b *testing.B) {
	f := getFixture(100_000)
	a := bwamem.New(f.wl.Ref, bwamem.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Align(f.reads[i%len(f.reads)])
	}
}

// ---- Figure 12 / Table II: hardware model -------------------------------

func BenchmarkFig12HWModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hw.FrequencySweep(hw.EditPE, 1, 8, 0.5)
		hw.FrequencySweep(hw.TracebackPE, 1, 8, 0.5)
		hw.DefaultChip().AreaBreakdown()
	}
}

// ---- ablations -----------------------------------------------------------

// BenchmarkAblationCollapsedVs3D shows the state-space saving of §III-C.
func BenchmarkAblationCollapsedVs3D(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x := sim.RandomGenome(r, 60)
	y := sim.RandomGenome(r, 60)
	b.Run("collapsed", func(b *testing.B) {
		a := silla.New(6)
		for i := 0; i < b.N; i++ {
			a.Distance(x, y)
		}
	})
	b.Run("explicit3D", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			silla.Distance3D(x, y, 6)
		}
	})
}

// BenchmarkAblationComposedTiles compares a composed 2K engine with a
// monolithic one (§IV-D: composition is wiring, not overhead).
func BenchmarkAblationComposedTiles(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	x := sim.RandomGenome(r, 101)
	y := sim.RandomGenome(r, 101)
	ta := sillax.NewTileArray(4, 2)
	cm, err := ta.Compose(9)
	if err != nil {
		b.Fatal(err)
	}
	mono := sillax.NewEditMachine(9)
	b.Run("composed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cm.Distance(x, y)
		}
	})
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mono.Distance(x, y)
		}
	})
}
