// Package extend stitches seed extensions into whole-read alignments. Both
// pipelines share it: the BWA-MEM-like software baseline plugs in a banded
// Smith-Waterman engine, the GenAx model plugs in a SillaX traceback lane.
// Given a seed (an exact match anchoring the read on the reference), the
// stitcher extends left over reversed strings, extends right, and fuses
// the two traces with the seed's match run — exactly how a SillaX lane
// consumes the hits buffered by the seeding lanes (§VI).
package extend

import (
	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
	"genax/internal/sw"
)

// Extension is one directional seed extension: the best clipped score and
// the consumed prefix lengths, with the trace when the engine produces one.
type Extension struct {
	Score            int
	QueryLen, RefLen int
	// Cigar covers the query completely (consumed part plus a trailing
	// soft clip).
	Cigar align.Cigar
}

// Engine runs one anchored, clipped extension. Implementations must treat
// ref and query as anchored at position 0.
type Engine interface {
	Extend(ref, query dna.Seq) Extension
}

// BandedEngine adapts the software banded Smith-Waterman.
type BandedEngine struct{ A *sw.BandedAligner }

// Extend implements Engine.
func (e BandedEngine) Extend(ref, query dna.Seq) Extension {
	res := e.A.Extend(ref, query)
	ql := res.Cigar.QueryLen()
	if n := len(res.Cigar); n > 0 && res.Cigar[n-1].Op == align.OpClip {
		ql -= res.Cigar[n-1].Len
	}
	return Extension{Score: res.Score, QueryLen: ql, RefLen: res.Cigar.RefLen(), Cigar: res.Cigar}
}

// SillaXEngine adapts a SillaX traceback lane.
type SillaXEngine struct{ M *sillax.TracebackMachine }

// Extend implements Engine.
func (e SillaXEngine) Extend(ref, query dna.Seq) Extension {
	res := e.M.Extend(ref, query)
	return Extension{Score: res.Score, QueryLen: res.QueryLen, RefLen: res.RefLen, Cigar: res.Cigar}
}

// AlignAt aligns read against ref given that read[seedStart:seedEnd]
// matches ref exactly at refPos (global coordinate of seedStart). margin
// is the extra reference window allowed beyond the read ends (the edit
// bound K). The returned result carries a full-query cigar.
func AlignAt(eng Engine, sc align.Scoring, ref, read dna.Seq, seedStart, seedEnd, refPos, margin int) align.Result {
	seedLen := seedEnd - seedStart

	// Left extension on reversed strings.
	var left Extension
	if seedStart > 0 {
		lo := refPos - seedStart - margin
		if lo < 0 {
			lo = 0
		}
		left = eng.Extend(ref[lo:refPos].Reverse(), read[:seedStart].Reverse())
	}
	// Right extension.
	var right Extension
	rightRef := refPos + seedLen
	if seedEnd < len(read) && rightRef <= len(ref) {
		hi := rightRef + (len(read) - seedEnd) + margin
		if hi > len(ref) {
			hi = len(ref)
		}
		right = eng.Extend(ref[rightRef:hi], read[seedEnd:])
	}

	var cig align.Cigar
	if seedStart > 0 {
		if len(left.Cigar) > 0 {
			cig = left.Cigar.Reverse()
		} else {
			cig = cig.Append(align.OpClip, seedStart)
		}
	}
	cig = cig.Append(align.OpMatch, seedLen)
	if seedEnd < len(read) {
		if len(right.Cigar) > 0 {
			cig = cig.Concat(right.Cigar)
		} else {
			cig = cig.Append(align.OpClip, len(read)-seedEnd)
		}
	}
	return align.Result{
		RefPos: refPos - left.RefLen,
		Score:  left.Score + seedLen*sc.Match + right.Score,
		Cigar:  cig,
	}
}
