// Package extend stitches seed extensions into whole-read alignments. Both
// pipelines share it: the BWA-MEM-like software baseline plugs in a banded
// Smith-Waterman engine, the GenAx model plugs in a SillaX traceback lane.
// Given a seed (an exact match anchoring the read on the reference), the
// stitcher extends left over reversed strings, extends right, and fuses
// the two traces with the seed's match run — exactly how a SillaX lane
// consumes the hits buffered by the seeding lanes (§VI).
package extend

import (
	"genax/internal/align"
	"genax/internal/bitsilla"
	"genax/internal/dna"
	"genax/internal/sillax"
	"genax/internal/sw"
)

// Extension is one directional seed extension: the best clipped score and
// the consumed prefix lengths, with the trace when the engine produces one.
type Extension struct {
	Score            int
	QueryLen, RefLen int
	// Cigar covers the query completely (consumed part plus a trailing
	// soft clip).
	Cigar align.Cigar
	// Cycles is the engine's work report for this call in its native
	// unit — architectural cycles for the Silla machines, DP cells for
	// the banded aligner, diagonal characters for the certified genasm
	// path — and ReRuns counts traceback re-executions (SillaX only).
	// Every engine fills Cycles so the stage instrumentation sees
	// uniform busy counters regardless of Params.Engine.
	Cycles, ReRuns int
	// Fallback marks a call served by the cycle-level model instead of a
	// bit-parallel datapath (bitsilla.NewCycleFallback); the pipeline
	// tallies these into Stats.EngineFallbacks so a degraded engine is
	// never silent.
	Fallback bool
}

// Engine runs one anchored, clipped extension. Implementations must treat
// ref and query as anchored at position 0, and the returned Extension
// (including its Cigar) must stay valid across subsequent Extend calls —
// the stitcher holds the left extension while running the right one.
type Engine interface {
	Extend(ref, query dna.Seq) Extension
}

// BandedEngine adapts the software banded Smith-Waterman.
type BandedEngine struct{ A *sw.BandedAligner }

// Extend implements Engine.
//
//genax:hotpath
func (e BandedEngine) Extend(ref, query dna.Seq) Extension {
	res := e.A.Extend(ref, query)
	ql := res.Cigar.QueryLen()
	if n := len(res.Cigar); n > 0 && res.Cigar[n-1].Op == align.OpClip {
		ql -= res.Cigar[n-1].Len
	}
	return Extension{Score: res.Score, QueryLen: ql, RefLen: res.Cigar.RefLen(), Cigar: res.Cigar, Cycles: e.A.Cells()}
}

// SillaXEngine adapts a SillaX traceback lane.
type SillaXEngine struct{ M *sillax.TracebackMachine }

// Extend implements Engine.
//
//genax:hotpath
func (e SillaXEngine) Extend(ref, query dna.Seq) Extension {
	res := e.M.Extend(ref, query)
	return Extension{Score: res.Score, QueryLen: res.QueryLen, RefLen: res.RefLen, Cigar: res.Cigar, Cycles: res.Cycles, ReRuns: res.ReRuns}
}

// BitSillaEngine adapts the bit-parallel Silla machine — byte-identical
// results to SillaXEngine at word-parallel speed; the production default.
type BitSillaEngine struct{ M *bitsilla.Machine }

// Extend implements Engine.
//
//genax:hotpath
func (e BitSillaEngine) Extend(ref, query dna.Seq) Extension {
	res := e.M.Extend(ref, query)
	return Extension{Score: res.Score, QueryLen: res.QueryLen, RefLen: res.RefLen, Cigar: res.Cigar, Cycles: res.Cycles, Fallback: res.Fallback}
}

// Stitcher runs anchored seed extensions through one engine, reusing
// scratch buffers for the reversed left-extension strings across calls so
// that steady-state stitching only allocates the result cigar. Not safe
// for concurrent use; give each lane its own Stitcher.
type Stitcher struct {
	Eng Engine

	revRef, revQuery dna.Seq // reversed-string scratch for left extensions
}

// AlignAt aligns read against ref given that read[seedStart:seedEnd]
// matches ref exactly at refPos (global coordinate of seedStart). margin
// is the extra reference window allowed beyond the read ends (the edit
// bound K). The returned result carries a full-query cigar and does not
// alias the stitcher's scratch.
func (st *Stitcher) AlignAt(sc align.Scoring, ref, read dna.Seq, seedStart, seedEnd, refPos, margin int) align.Result {
	if margin < 0 {
		margin = 0 // a negative edit bound would shrink the windows below the read
	}
	seedLen := seedEnd - seedStart

	// Left extension on reversed strings.
	var left Extension
	if seedStart > 0 {
		lo := refPos - seedStart - margin
		if lo < 0 {
			lo = 0
		}
		st.revRef = dna.AppendReverse(st.revRef[:0], ref[lo:refPos])
		st.revQuery = dna.AppendReverse(st.revQuery[:0], read[:seedStart])
		left = st.Eng.Extend(st.revRef, st.revQuery)
	}
	// Right extension.
	var right Extension
	rightRef := refPos + seedLen
	if seedEnd < len(read) && rightRef <= len(ref) {
		hi := rightRef + (len(read) - seedEnd) + margin
		if hi > len(ref) {
			hi = len(ref)
		}
		right = st.Eng.Extend(ref[rightRef:hi], read[seedEnd:])
	}

	cig := make(align.Cigar, 0, len(left.Cigar)+len(right.Cigar)+2)
	if seedStart > 0 {
		if len(left.Cigar) > 0 {
			cig = cig.ConcatReversed(left.Cigar)
		} else {
			cig = cig.Append(align.OpClip, seedStart)
		}
	}
	cig = cig.Append(align.OpMatch, seedLen)
	if seedEnd < len(read) {
		if len(right.Cigar) > 0 {
			cig = cig.Concat(right.Cigar)
		} else {
			cig = cig.Append(align.OpClip, len(read)-seedEnd)
		}
	}
	return align.Result{
		RefPos: refPos - left.RefLen,
		Score:  left.Score + seedLen*sc.Match + right.Score,
		Cigar:  cig,
	}
}

// AlignAt is the one-shot convenience form of Stitcher.AlignAt; hot paths
// should hold a Stitcher instead so the reversal scratch is reused.
func AlignAt(eng Engine, sc align.Scoring, ref, read dna.Seq, seedStart, seedEnd, refPos, margin int) align.Result {
	if margin < 0 {
		margin = 0
	}
	st := Stitcher{Eng: eng}
	return st.AlignAt(sc, ref, read, seedStart, seedEnd, refPos, margin)
}
