package extend

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/bitsilla"
	"genax/internal/dna"
	"genax/internal/genasm"
	"genax/internal/sillax"
	"genax/internal/sw"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

// plantRead embeds a read in ref at pos with e substitution errors outside
// the window [seedS, seedE), returning the read.
func plantRead(r *rand.Rand, ref dna.Seq, pos, readLen, seedS, seedE, e int) dna.Seq {
	read := ref[pos : pos+readLen].Clone()
	for i := 0; i < e; i++ {
		p := r.Intn(readLen)
		if p >= seedS && p < seedE {
			continue
		}
		read[p] = dna.Base((int(read[p]) + 1 + r.Intn(3)) % 4)
	}
	return read
}

type namedEngine struct {
	name string
	eng  Engine
}

// engines returns the extension engines under test in a fixed order (this
// package is declared deterministic, so tests must not range over maps).
// Order-sensitive tests index the first two entries; keep banded and
// sillax in front.
func engines(k int) []namedEngine {
	sc := align.BWAMEMDefaults()
	return []namedEngine{
		{"banded", BandedEngine{A: sw.NewBandedAligner(sc, k)}},
		{"sillax", SillaXEngine{M: sillax.NewTracebackMachine(k, sc)}},
		{"bitsilla", BitSillaEngine{M: bitsilla.New(k, sc)}},
		{"genasm", GenasmEngine{M: genasm.New(k, sc)}},
		{"cascade", NewCascade(k, sc, nil)},
	}
}

// TestBitSillaStitchParity runs whole stitched alignments through the
// bit-parallel and cycle-level engines: the composed results (position,
// score, cigar) must be byte-identical, not just the raw extensions.
func TestBitSillaStitchParity(t *testing.T) {
	r := rand.New(rand.NewSource(129))
	sc := align.BWAMEMDefaults()
	k := 24
	ref := randSeq(r, 4000)
	bit := Stitcher{Eng: BitSillaEngine{M: bitsilla.New(k, sc)}}
	cyc := Stitcher{Eng: SillaXEngine{M: sillax.NewTracebackMachine(k, sc)}}
	for trial := 0; trial < 60; trial++ {
		pos := r.Intn(3000)
		readLen := 60 + r.Intn(80)
		seedS := r.Intn(readLen - 20)
		seedE := seedS + 20
		read := plantRead(r, ref, pos, readLen, seedS, seedE, r.Intn(8))
		got := bit.AlignAt(sc, ref, read, seedS, seedE, pos+seedS, k)
		want := cyc.AlignAt(sc, ref, read, seedS, seedE, pos+seedS, k)
		if got.Score != want.Score || got.RefPos != want.RefPos ||
			got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("trial %d: bitsilla %v vs sillax %v", trial, got, want)
		}
	}
}

func TestAlignAtPerfectRead(t *testing.T) {
	r := rand.New(rand.NewSource(120))
	ref := randSeq(r, 2000)
	sc := align.BWAMEMDefaults()
	for _, ne := range engines(16) {
		name, eng := ne.name, ne.eng
		read := ref[700:801].Clone()
		res := AlignAt(eng, sc, ref, read, 20, 60, 720, 16)
		if res.Score != 101 {
			t.Errorf("%s: score = %d, want 101", name, res.Score)
		}
		if res.RefPos != 700 {
			t.Errorf("%s: RefPos = %d, want 700", name, res.RefPos)
		}
		if res.Cigar.String() != "101=" {
			t.Errorf("%s: cigar = %v", name, res.Cigar)
		}
	}
}

func TestAlignAtValidCigars(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	sc := align.BWAMEMDefaults()
	for _, ne := range engines(16) {
		name, eng := ne.name, ne.eng
		for trial := 0; trial < 100; trial++ {
			ref := randSeq(r, 1500)
			pos := 200 + r.Intn(1000)
			read := plantRead(r, ref, pos, 101, 40, 60, r.Intn(5))
			res := AlignAt(eng, sc, ref, read, 40, 60, pos+40, 16)
			if err := res.Cigar.Validate(ref[res.RefPos:], read); err != nil {
				t.Fatalf("%s trial %d: invalid cigar %v: %v", name, trial, res.Cigar, err)
			}
			if got := res.Cigar.Score(sc); got != res.Score {
				t.Fatalf("%s trial %d: cigar rescores %d, reported %d", name, trial, got, res.Score)
			}
			if res.Score < 20 { // the 20-base seed alone guarantees this
				t.Fatalf("%s trial %d: score %d below seed floor", name, trial, res.Score)
			}
		}
	}
}

func TestAlignAtEnginesAgree(t *testing.T) {
	// The SillaX lane and the banded software extension must produce the
	// same scores on realistic reads (the §VIII-A concordance claim).
	r := rand.New(rand.NewSource(122))
	sc := align.BWAMEMDefaults()
	eng := engines(20)
	banded, sillaX := eng[0].eng, eng[1].eng
	for trial := 0; trial < 120; trial++ {
		ref := randSeq(r, 1500)
		pos := 200 + r.Intn(1000)
		read := plantRead(r, ref, pos, 101, 45, 65, r.Intn(6))
		a := AlignAt(banded, sc, ref, read, 45, 65, pos+45, 20)
		b := AlignAt(sillaX, sc, ref, read, 45, 65, pos+45, 20)
		if a.Score != b.Score {
			t.Fatalf("trial %d: banded %d vs sillax %d", trial, a.Score, b.Score)
		}
	}
}

func TestAlignAtSeedAtReadBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	ref := randSeq(r, 500)
	sc := align.BWAMEMDefaults()
	for _, ne := range engines(8) {
		name, eng := ne.name, ne.eng
		// Seed at the very start of the read.
		read := ref[100:150].Clone()
		res := AlignAt(eng, sc, ref, read, 0, 20, 100, 8)
		if res.Score != 50 || res.RefPos != 100 {
			t.Errorf("%s start-seed: %+v", name, res)
		}
		// Seed at the very end.
		res = AlignAt(eng, sc, ref, read, 30, 50, 130, 8)
		if res.Score != 50 || res.RefPos != 100 {
			t.Errorf("%s end-seed: %+v", name, res)
		}
		// Whole-read seed.
		res = AlignAt(eng, sc, ref, read, 0, 50, 100, 8)
		if res.Score != 50 || res.Cigar.String() != "50=" {
			t.Errorf("%s full-seed: %+v", name, res)
		}
	}
}

func TestAlignAtRefBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(124))
	ref := randSeq(r, 200)
	sc := align.BWAMEMDefaults()
	for _, ne := range engines(8) {
		name, eng := ne.name, ne.eng
		// Seed so close to the reference start that the left window is
		// clamped; the left read part must be clipped, not crash.
		read := append(randSeq(r, 10), ref[0:40]...)
		res := AlignAt(eng, sc, ref, read, 10, 50, 0, 8)
		if err := res.Cigar.Validate(ref[res.RefPos:], read); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Score < 40 {
			t.Errorf("%s: score %d below seed floor", name, res.Score)
		}
		// Seed ending exactly at the reference end.
		read2 := append(ref[160:200].Clone(), randSeq(r, 10)...)
		res2 := AlignAt(eng, sc, ref, read2, 0, 40, 160, 8)
		if err := res2.Cigar.Validate(ref[res2.RefPos:], read2); err != nil {
			t.Fatalf("%s end: %v", name, err)
		}
	}
}

func TestAlignAtIndelRead(t *testing.T) {
	sc := align.BWAMEMDefaults()
	r := rand.New(rand.NewSource(125))
	ref := randSeq(r, 600)
	// Read = ref[100:201] with 3 bases deleted at read offset 70.
	read := append(ref[100:170].Clone(), ref[173:201]...)
	for _, ne := range engines(16) {
		name, eng := ne.name, ne.eng
		res := AlignAt(eng, sc, ref, read, 10, 50, 110, 16)
		if err := res.Cigar.Validate(ref[res.RefPos:], read); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := 98 - (6 + 3) // 98 matches, one 3-base deletion
		if res.Score != want {
			t.Errorf("%s: score = %d, want %d (cigar %v)", name, res.Score, want, res.Cigar)
		}
	}
}

// TestStitcherMatchesOneShot checks that a reused Stitcher produces exactly
// what the one-shot AlignAt produces — the scratch buffers must never leak
// state between extensions.
func TestStitcherMatchesOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(130))
	sc := align.BWAMEMDefaults()
	for _, ne := range engines(16) {
		name, eng := ne.name, ne.eng
		st := Stitcher{Eng: eng}
		ref := randSeq(r, 3000)
		for trial := 0; trial < 40; trial++ {
			pos := 100 + r.Intn(2500)
			read := plantRead(r, ref, pos, 101, 40, 60, r.Intn(6))
			got := st.AlignAt(sc, ref, read, 40, 60, pos+40, 16)
			want := AlignAt(eng, sc, ref, read, 40, 60, pos+40, 16)
			if got.Score != want.Score || got.RefPos != want.RefPos || got.Cigar.String() != want.Cigar.String() {
				t.Fatalf("%s trial %d: stitcher %v vs one-shot %v", name, trial, got, want)
			}
		}
	}
}

// TestStitcherLeftCigarSurvivesRightExtension guards the Engine contract:
// the left extension's cigar is held across the right Extend call, so an
// engine whose results aliased reusable scratch would corrupt the stitch.
func TestStitcherLeftCigarSurvivesRightExtension(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	sc := align.BWAMEMDefaults()
	m := sillax.NewTracebackMachine(16, sc)
	st := Stitcher{Eng: SillaXEngine{M: m}}
	ref := randSeq(r, 2000)
	for trial := 0; trial < 30; trial++ {
		pos := 100 + r.Intn(1700)
		// Errors on both flanks force non-trivial left AND right cigars.
		read := plantRead(r, ref, pos, 101, 45, 65, 4)
		res := st.AlignAt(sc, ref, read, 45, 65, pos+45, 16)
		if err := res.Cigar.Validate(ref[res.RefPos:], read); err != nil {
			t.Fatalf("trial %d: stitched cigar invalid: %v (%v)", trial, err, res)
		}
	}
}
