package extend

import (
	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/genasm"
)

// Leg names one rung of the adaptive engine cascade, cheapest first.
type Leg int

const (
	// LegExact is the zero-edit filter: a straight byte comparison of the
	// query against the anchored reference window.
	LegExact Leg = iota
	// LegGenasm is the certified GenASM bit-vector fast path.
	LegGenasm
	// LegBitsilla is the production bit-parallel Silla engine — the
	// cascade's floor, which handles everything the cheaper legs refuse.
	LegBitsilla
	// NumLegs is the number of cascade legs.
	NumLegs
)

// String returns the leg's engine name.
func (l Leg) String() string {
	switch l {
	case LegExact:
		return "exact"
	case LegGenasm:
		return "genasm"
	case LegBitsilla:
		return "bitsilla"
	}
	return "unknown"
}

// LegStats counts one leg's traffic: extensions offered to the leg,
// extensions it certified and answered, and extensions it passed down.
type LegStats struct {
	Routed, Accepted, FellThrough int64
}

// Routing is the cascade's per-leg histogram. The unit is one engine
// Extend call (a stitched candidate contributes up to two: left and right
// extension). Counters are plain sums, so merging lane-local histograms
// is associative and commutative — deterministic under any partitioning,
// like the rest of the stage stats.
type Routing struct {
	Legs [NumLegs]LegStats
}

// Merge accumulates o into r element-wise.
func (r *Routing) Merge(o Routing) {
	for i := range r.Legs {
		r.Legs[i].Routed += o.Legs[i].Routed
		r.Legs[i].Accepted += o.Legs[i].Accepted
		r.Legs[i].FellThrough += o.Legs[i].FellThrough
	}
}

// Total returns the number of extensions that entered the cascade.
func (r *Routing) Total() int64 { return r.Legs[LegExact].Routed }

// Certified returns how many extensions a leg cheaper than the bitsilla
// floor answered.
func (r *Routing) Certified() int64 {
	return r.Legs[LegExact].Accepted + r.Legs[LegGenasm].Accepted
}

//genax:hotpath
func (r *Routing) route(l Leg) {
	if r != nil {
		r.Legs[l].Routed++
	}
}

//genax:hotpath
func (r *Routing) accept(l Leg) {
	if r != nil {
		r.Legs[l].Accepted++
	}
}

//genax:hotpath
func (r *Routing) fall(l Leg) {
	if r != nil {
		r.Legs[l].FellThrough++
	}
}

// GenasmEngine adapts the GenASM bit-vector machine: certified fast-path
// results where the certification rule applies, embedded bitsilla
// fallback otherwise — byte-identical to the cycle-level oracle either
// way. R, when non-nil, receives the genasm/bitsilla routing split.
type GenasmEngine struct {
	M *genasm.Machine
	R *Routing
}

// Extend implements Engine.
//
//genax:hotpath
func (e GenasmEngine) Extend(ref, query dna.Seq) Extension {
	res := e.M.Extend(ref, query)
	e.R.route(LegGenasm)
	if res.Certified {
		e.R.accept(LegGenasm)
	} else {
		e.R.fall(LegGenasm)
		e.R.route(LegBitsilla)
		e.R.accept(LegBitsilla)
	}
	return Extension{Score: res.Score, QueryLen: res.QueryLen, RefLen: res.RefLen, Cigar: res.Cigar, Cycles: res.Cycles}
}

// Cascade is the adaptive engine cascade of the extend stage: every
// extension is routed cheapest-first — exact byte comparison, then the
// certified GenASM fast path, then the bitsilla floor — and a cheaper
// leg's answer is used only when it is provably byte-identical to what
// bitsilla would return, so the cascade as a whole is byte-identical to
// the production default at a fraction of its busy time on easy reads.
// Not safe for concurrent use; allocate one per lane.
type Cascade struct {
	match int
	g     GenasmEngine
}

// NewCascade builds a cascade with edit bound k. r, when non-nil,
// receives the per-leg routing histogram.
func NewCascade(k int, sc align.Scoring, r *Routing) *Cascade {
	if k < 0 {
		panic("extend: negative edit bound")
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return &Cascade{match: sc.Match, g: GenasmEngine{M: genasm.New(k, sc), R: r}}
}

// Routing returns the histogram sink (nil when none was attached).
func (c *Cascade) Routing() *Routing { return c.g.R }

// Extend implements Engine.
//
//genax:hotpath
func (c *Cascade) Extend(ref, query dna.Seq) Extension {
	r := c.g.R
	r.route(LegExact)
	qn := len(query)
	if qn == 0 {
		// The empty query has exactly one extension under any scoring.
		r.accept(LegExact)
		return Extension{}
	}
	if c.match >= 1 && qn <= len(ref) && exactPrefix(ref, query) {
		// Zero-edit certification: with Match >= 1 the full-query gapless
		// alignment scores qn*Match and is the unique optimum — every
		// other candidate drops at least one match or pays a gap penalty.
		// (Match == 0 scorings make the empty clip tie it, so they never
		// take this leg.)
		r.accept(LegExact)
		return exactExtension(qn, c.match)
	}
	r.fall(LegExact)
	return c.g.Extend(ref, query)
}

// exactPrefix reports whether query matches ref position for position
// (len(query) <= len(ref) already checked).
//
//genax:hotpath
func exactPrefix(ref, query dna.Seq) bool {
	for i, b := range query {
		if ref[i] != b {
			return false
		}
	}
	return true
}

// exactExtension materializes the single-run extension of an exact-match
// leg hit — the one allocation that path makes, kept out of the annotated
// Extend body.
func exactExtension(n, match int) Extension {
	return Extension{
		Score:    n * match,
		QueryLen: n,
		RefLen:   n,
		Cigar:    align.Cigar{{Op: align.OpMatch, Len: n}},
		Cycles:   n,
	}
}
