package extend

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/bitsilla"
	"genax/internal/dna"
	"genax/internal/genasm"
)

// TestCascadeByteIdentityToBitsilla runs whole stitched alignments through
// the cascade and the production bitsilla engine: position, score and
// cigar must be byte-identical — the cascade's core guarantee.
func TestCascadeByteIdentityToBitsilla(t *testing.T) {
	r := rand.New(rand.NewSource(140))
	sc := align.BWAMEMDefaults()
	k := 24
	ref := randSeq(r, 4000)
	var routing Routing
	cas := Stitcher{Eng: NewCascade(k, sc, &routing)}
	bit := Stitcher{Eng: BitSillaEngine{M: bitsilla.New(k, sc)}}
	for trial := 0; trial < 120; trial++ {
		pos := r.Intn(3000)
		readLen := 60 + r.Intn(80)
		seedS := r.Intn(readLen - 20)
		seedE := seedS + 20
		read := plantRead(r, ref, pos, readLen, seedS, seedE, r.Intn(8))
		got := cas.AlignAt(sc, ref, read, seedS, seedE, pos+seedS, k)
		want := bit.AlignAt(sc, ref, read, seedS, seedE, pos+seedS, k)
		if got.Score != want.Score || got.RefPos != want.RefPos ||
			got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("trial %d: cascade %v vs bitsilla %v", trial, got, want)
		}
	}
	if routing.Total() == 0 {
		t.Fatal("cascade routed no extensions")
	}
	if routing.Certified() == 0 {
		t.Fatal("no extension certified by a cheap leg; the cascade never pays off")
	}
}

// TestCascadeRouting pins the per-leg accounting on hand-built inputs.
func TestCascadeRouting(t *testing.T) {
	r := rand.New(rand.NewSource(141))
	sc := align.BWAMEMDefaults()
	ref := randSeq(r, 200)
	var routing Routing
	cas := NewCascade(8, sc, &routing)

	// Exact prefix: the first leg answers.
	cas.Extend(ref, ref[:50].Clone())
	want := Routing{}
	want.Legs[LegExact] = LegStats{Routed: 1, Accepted: 1}
	if routing != want {
		t.Fatalf("exact: %+v, want %+v", routing, want)
	}

	// One interior substitution: falls to genasm, certifies there.
	oneSub := ref[:50].Clone()
	oneSub[25] = dna.Base((int(oneSub[25]) + 1) % 4)
	cas.Extend(ref, oneSub)
	want.Legs[LegExact].Routed++
	want.Legs[LegExact].FellThrough++
	want.Legs[LegGenasm] = LegStats{Routed: 1, Accepted: 1}
	if routing != want {
		t.Fatalf("one sub: %+v, want %+v", routing, want)
	}

	// A deletion: falls through both cheap legs to the bitsilla floor.
	withDel := append(ref[:20].Clone(), ref[23:53]...)
	cas.Extend(ref, withDel)
	want.Legs[LegExact].Routed++
	want.Legs[LegExact].FellThrough++
	want.Legs[LegGenasm].Routed++
	want.Legs[LegGenasm].FellThrough++
	want.Legs[LegBitsilla] = LegStats{Routed: 1, Accepted: 1}
	if routing != want {
		t.Fatalf("deletion: %+v, want %+v", routing, want)
	}

	// Empty query: certified trivially by the exact leg.
	cas.Extend(ref, nil)
	want.Legs[LegExact].Routed++
	want.Legs[LegExact].Accepted++
	if routing != want {
		t.Fatalf("empty query: %+v, want %+v", routing, want)
	}

	if routing.Total() != 4 || routing.Certified() != 3 {
		t.Fatalf("Total=%d Certified=%d, want 4 and 3", routing.Total(), routing.Certified())
	}
}

// TestCascadeCertificationEdges drives the cascade at the certification
// boundaries (edit bound, zero-length, all-mismatch) and checks identity
// with bitsilla plus the expected leg on each.
func TestCascadeCertificationEdges(t *testing.T) {
	r := rand.New(rand.NewSource(142))
	sc := align.BWAMEMDefaults()
	ref := randSeq(r, 120)
	for _, tc := range []struct {
		name  string
		k     int
		query func() dna.Seq
		leg   Leg
	}{
		{"exact", 8, func() dna.Seq { return ref[:60].Clone() }, LegExact},
		{"zero length", 8, func() dna.Seq { return nil }, LegExact},
		{"one sub at bound k=1", 1, func() dna.Seq {
			q := ref[:60].Clone()
			q[30] = dna.Base((int(q[30]) + 1) % 4)
			return q
		}, LegGenasm},
		{"one sub over bound k=0", 0, func() dna.Seq {
			q := ref[:60].Clone()
			q[30] = dna.Base((int(q[30]) + 1) % 4)
			return q
		}, LegBitsilla},
		{"all mismatch", 8, func() dna.Seq {
			q := ref[:40].Clone()
			for i := range q {
				q[i] = dna.Base((int(q[i]) + 1) % 4)
			}
			return q
		}, LegBitsilla},
		{"query past ref end", 8, func() dna.Seq {
			return append(ref[90:120].Clone(), randSeq(r, 20)...)
		}, LegBitsilla},
	} {
		var routing Routing
		cas := NewCascade(tc.k, sc, &routing)
		query := tc.query()
		got := cas.Extend(ref, query)
		want := BitSillaEngine{M: bitsilla.New(tc.k, sc)}.Extend(ref, query)
		if got.Score != want.Score || got.QueryLen != want.QueryLen ||
			got.RefLen != want.RefLen || got.Cigar.String() != want.Cigar.String() {
			t.Errorf("%s: cascade (score=%d q=%d r=%d cigar=%s) vs bitsilla (score=%d q=%d r=%d cigar=%s)",
				tc.name, got.Score, got.QueryLen, got.RefLen, got.Cigar,
				want.Score, want.QueryLen, want.RefLen, want.Cigar)
		}
		if routing.Legs[tc.leg].Accepted != 1 {
			t.Errorf("%s: leg %s accepted %d, want 1 (routing %+v)",
				tc.name, tc.leg, routing.Legs[tc.leg].Accepted, routing)
		}
	}
}

// TestRoutingMerge checks the histogram fold is element-wise and
// partition-independent.
func TestRoutingMerge(t *testing.T) {
	mk := func(seed int64) Routing {
		r := rand.New(rand.NewSource(seed))
		var out Routing
		for i := range out.Legs {
			out.Legs[i] = LegStats{
				Routed:      int64(r.Intn(100)),
				Accepted:    int64(r.Intn(100)),
				FellThrough: int64(r.Intn(100)),
			}
		}
		return out
	}
	a, b, c := mk(1), mk(2), mk(3)
	var left, right Routing
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	var bc Routing
	bc.Merge(b)
	bc.Merge(c)
	right.Merge(a)
	right.Merge(bc)
	if left != right {
		t.Fatalf("merge is not associative: %+v vs %+v", left, right)
	}
	for i := range left.Legs {
		want := a.Legs[i].Routed + b.Legs[i].Routed + c.Legs[i].Routed
		if left.Legs[i].Routed != want {
			t.Fatalf("leg %d routed %d, want %d", i, left.Legs[i].Routed, want)
		}
	}
}

// TestEngineWorkReports checks the satellite instrumentation fix: every
// engine, including banded and the cascade legs, reports nonzero work in
// Extension.Cycles so no engine is invisible in the stage counters.
func TestEngineWorkReports(t *testing.T) {
	r := rand.New(rand.NewSource(143))
	ref := randSeq(r, 120)
	query := ref[:80].Clone()
	for _, p := range []int{10, 40, 70} {
		query[p] = dna.Base((int(query[p]) + 1) % 4)
	}
	for _, ne := range engines(8) {
		res := ne.eng.Extend(ref, query)
		if res.Cycles <= 0 {
			t.Errorf("%s: Cycles = %d, want > 0", ne.name, res.Cycles)
		}
		if ne.name != "sillax" && res.ReRuns != 0 {
			t.Errorf("%s: ReRuns = %d, want 0", ne.name, res.ReRuns)
		}
	}
}

// TestGenasmEngineNilRouting checks the adapter tolerates a nil histogram.
func TestGenasmEngineNilRouting(t *testing.T) {
	r := rand.New(rand.NewSource(144))
	sc := align.BWAMEMDefaults()
	ref := randSeq(r, 100)
	eng := GenasmEngine{M: genasm.New(8, sc)}
	got := eng.Extend(ref, ref[:50].Clone())
	if got.Score != 50*sc.Match {
		t.Fatalf("score = %d, want %d", got.Score, 50*sc.Match)
	}
}
