package genasm

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// Result is the outcome of one genasm seed extension. Field for field it
// matches bitsilla.Result — Extend is byte-identical to the cycle-level
// oracle on every input — plus the Certified flag the cascade's routing
// histogram is built from.
type Result struct {
	// Score is the best clipped extension score.
	Score int
	// Cigar is the full edit trace including the trailing soft clip.
	Cigar align.Cigar
	// QueryLen and RefLen are the consumed prefix lengths.
	QueryLen, RefLen int
	// Cycles is the architectural work count: one cycle per diagonal
	// character scanned, plus the fallback machine's cycles when the
	// certification refused.
	Cycles int
	// Certified reports that the result came from the certified
	// bit-vector fast path rather than the bitsilla fallback.
	Certified bool
}

// TryExtend attempts the certified fast path: one gapless scan along the
// anchored diagonal that either proves what the SillaX machines would
// report for (ref, query) — byte-identical Score, QueryLen, RefLen, and
// Cigar — or returns ok=false.
//
// Certification rule. Let s(j) be the score of the gapless alignment of
// query[:j] against ref[:j] (+Match per equal pair, -Mismatch per
// differing pair; the remaining query soft-clips for free), over
// j in 0..min(qn, rn). The scan certifies iff
//
//  1. the maximizing j* is unique,
//  2. s(j*) > 0,
//  3. the scan saw at most K mismatches before j*, and
//  4. s(j*) > qn*Match - (GapOpen+GapExtend).
//
// Soundness: every alignment the oracle can report is either gapless — a
// diagonal prefix, whose score the scan evaluated exactly (positions past
// rn only lose score, so truncating at min(qn, rn) is safe) — or contains
// a gap and therefore scores at most qn*Match - (GapOpen+GapExtend), which
// (4) strictly beats. With (1) the optimum is unique over *all* candidate
// alignments, so no machine tie-break can pick anything else; with (2) it
// beats the all-clipped empty extension; with (3) it is inside the edit
// bound, so the bounded machines reach it. Uniqueness also pins QueryLen,
// RefLen, and the '='/'X' run structure of the cigar, because a gapless
// alignment is fully determined by its endpoint.
//
// The rule needs Match >= 1 and Mismatch >= 1 (otherwise distinct-looking
// gapless prefixes tie on score and (1)/(4) lose their teeth, e.g. unit
// scoring); machines built over such scorings never certify.
//
//genax:hotpath
func (m *Machine) TryExtend(ref, query dna.Seq) (Result, bool) {
	qn := len(query)
	if qn == 0 {
		// The empty query has exactly one extension: score 0, empty trace.
		return Result{Certified: true}, true
	}
	if !m.certOK {
		return Result{}, false
	}
	n := qn
	if len(ref) < n {
		n = len(ref)
	}
	a, b := int(m.cs.A), int(m.cs.B)
	s, x := 0, 0
	best, bestJ, bestX := 0, 0, 0
	unique := true
	for j := 0; j < n; j++ {
		if query[j] == ref[j] {
			s += a
		} else {
			s -= b
			x++
		}
		if s > best {
			best, bestJ, bestX, unique = s, j+1, x, true
		} else if s == best {
			unique = false
		}
	}
	if !unique || best <= 0 || bestX > m.k || best <= qn*a-int(m.cs.Open) {
		return Result{}, false
	}
	cig := m.cigBuf[:0]
	run := 0
	matching := query[0] == ref[0]
	for j := 0; j < bestJ; j++ {
		eq := query[j] == ref[j]
		if eq != matching {
			cig = appendDiag(cig, matching, run)
			matching, run = eq, 0
		}
		run++
	}
	cig = appendDiag(cig, matching, run)
	cig = cig.Append(align.OpClip, qn-bestJ)
	m.cigBuf = cig
	return Result{
		Score:     best,
		Cigar:     cig.Clone(),
		QueryLen:  bestJ,
		RefLen:    bestJ,
		Cycles:    n,
		Certified: true,
	}, true
}

// appendDiag appends one '='/'X' run of the diagonal scan.
//
//genax:hotpath
func appendDiag(c align.Cigar, matching bool, n int) align.Cigar {
	if matching {
		return c.Append(align.OpMatch, n)
	}
	return c.Append(align.OpMismatch, n)
}

// Extend runs one anchored, clipped seed extension: the certified
// bit-vector fast path when it applies, the embedded bitsilla machine
// otherwise. Either way the result is byte-identical to
// sillax.TracebackMachine, which is what makes this engine (and any
// cascade built on it) safe to substitute for the production default.
//
//genax:hotpath
func (m *Machine) Extend(ref, query dna.Seq) Result {
	if res, ok := m.TryExtend(ref, query); ok {
		return res
	}
	n := len(query)
	if len(ref) < n {
		n = len(ref)
	}
	fb := m.fallback.Extend(ref, query)
	return Result{
		Score:    fb.Score,
		Cigar:    fb.Cigar,
		QueryLen: fb.QueryLen,
		RefLen:   fb.RefLen,
		Cycles:   n + fb.Cycles,
	}
}
