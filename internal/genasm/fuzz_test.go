package genasm

import (
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

// FuzzGenasmVsSillaX differentially fuzzes the GenASM engine against the
// cycle-level oracle, mirroring FuzzBitsillaVsSillaX: for any edit bound
// and any pair of sequences, Extend must agree byte for byte on score,
// consumed lengths and cigar — whether the certified fast path or the
// fallback answered — and the unit-cost automaton must stay consistent
// with itself (Align's trace reconciles with the strings and with
// Distance). The checked-in seeds double as a regression gate in CI
// (go test runs every seed even without -fuzz).
func FuzzGenasmVsSillaX(f *testing.F) {
	// Seeds cover: exact matches (exact certification), single interior
	// substitutions at both edit-bound edges, score-tie refusals, clipped
	// tails on both sides of the gap-escape threshold, indel fallbacks,
	// empty inputs, and a bound past bitsilla.MaxWordK.
	f.Add(uint8(1), uint8(4), []byte("ACGT"), []byte("ACGT"))
	f.Add(uint8(0), uint8(2), []byte("ACGTACGTACGTACGTACGT"), []byte("ACGTACGTATGTACGTACGT"))
	f.Add(uint8(1), uint8(2), []byte("ACGTACGTACGTACGTACGT"), []byte("ACGTACGTATGTACGTACGT"))
	f.Add(uint8(4), uint8(3), []byte("ACGTAAAA"), []byte("ACTT"))
	f.Add(uint8(1), uint8(5), []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"), []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTAGTC"))
	f.Add(uint8(1), uint8(5), []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"), []byte("ACGTACGTACGTACGTACGTACGTACGTACTGCATGCATG"))
	f.Add(uint8(4), uint8(4), []byte("ACGTACGTAC"), []byte("ACGTACGGTACGT"))
	f.Add(uint8(8), uint8(6), []byte("ACACACACACACACACAC"), []byte("ACACACACTACACACAC"))
	f.Add(uint8(2), uint8(1), []byte("TTTTTTTT"), []byte("CCCCCCCC"))
	f.Add(uint8(8), uint8(0), []byte{}, []byte("ACGT"))
	f.Add(uint8(8), uint8(2), []byte("GGGG"), []byte{})
	f.Add(uint8(65), uint8(7), []byte("ACGTACGTACGTACGTACGTA"), []byte("ACGTACGTACGTACGTACGT"))
	f.Fuzz(func(t *testing.T, kRaw, budgetRaw uint8, refB, qB []byte) {
		k := int(kRaw) % 70
		budget := int(budgetRaw) % 10
		if len(refB) > 300 {
			refB = refB[:300]
		}
		if len(qB) > 300 {
			qB = qB[:300]
		}
		ref := make(dna.Seq, len(refB))
		for i, b := range refB {
			ref[i] = dna.Base(b & 3)
		}
		query := make(dna.Seq, len(qB))
		for i, b := range qB {
			query[i] = dna.Base(b & 3)
		}
		sc := align.BWAMEMDefaults()
		m := New(k, sc)
		got := m.Extend(ref, query)
		want := sillax.NewTracebackMachine(k, sc).Extend(ref, query)
		if got.Score != want.Score || got.QueryLen != want.QueryLen ||
			got.RefLen != want.RefLen || got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("k=%d ref=%v query=%v:\ngenasm (score=%d q=%d r=%d cigar=%s certified=%v)\nsillax (score=%d q=%d r=%d cigar=%s)",
				k, ref, query,
				got.Score, got.QueryLen, got.RefLen, got.Cigar, got.Certified,
				want.Score, want.QueryLen, want.RefLen, want.Cigar)
		}
		if err := got.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("k=%d: invalid cigar %s: %v", k, got.Cigar, err)
		}
		// Automaton self-consistency on the same machine and inputs.
		dist, dok := m.Distance(ref, query, budget)
		al, aok := m.Align(ref, query, budget)
		if dok != aok {
			t.Fatalf("budget=%d: Distance ok=%v but Align ok=%v", budget, dok, aok)
		}
		if !aok {
			return
		}
		if al.D != dist {
			t.Fatalf("budget=%d: Align d=%d, Distance d=%d", budget, al.D, dist)
		}
		if err := al.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("budget=%d: invalid automaton cigar %s: %v", budget, al.Cigar, err)
		}
		if al.Cigar.Edits() != al.D || al.Cigar.RefLen() != al.RefLen {
			t.Fatalf("budget=%d: cigar %s (edits=%d ref=%d) contradicts alignment (d=%d ref=%d)",
				budget, al.Cigar, al.Cigar.Edits(), al.Cigar.RefLen(), al.D, al.RefLen)
		}
	})
}
