// Package genasm is a GenASM-style bit-vector approximate matcher for the
// extend stage: the Bitap-with-edits automaton of GenASM (Senol Cali et
// al.) with Scrooge's stored-state reduction (Lindegger et al.), adapted
// to the anchored prefix-alignment geometry the SillaX engines use.
//
// The automaton keeps one bit-vector R[d] per edit level d (0..budget).
// After consuming t reference characters, bit j of R[d] means "query[:j]
// aligns against ref[:t] with at most d unit edits", anchored at (0,0).
// One text step is, per level (W = qn/64+1 words, shl1 = whole-vector
// shift left by one bit):
//
//	new[d] = shl1(old[d] & pm[ref[t-1]])  // match: consume both
//	       | old[d-1]                     // deletion: consume ref only
//	       | shl1(old[d-1])               // substitution
//	       | shl1(new[d-1])               // insertion: consume query only
//
// with R_0[d] = bits 0..min(d, qn) and acceptance at bit qn. Levels are
// processed in ascending d, so the insertion term reads the current step's
// already-finished lower level — exactly GenASM's intra-iteration chain.
// The recurrence preserves R[d-1] ⊆ R[d] (monotonicity), which the
// traceback relies on to label substitutions soundly.
//
// Storage follows Scrooge's SENE reduction: only the R vectors are stored
// (one row per text step), never the four per-transition intermediates —
// traceback re-derives each edge from the stored entries. Distance goes
// further and keeps two rolling rows (DENT: rows that can no longer be
// used in any traceback are discarded immediately).
//
// On top of the unit-cost automaton, TryExtend implements the certified
// fast path of the engine cascade: a single diagonal scan that either
// proves the affine-gap clipped extension the SillaX machines would report
// — byte-identical score, lengths, and CIGAR — or refuses. Extend composes
// it with an embedded bitsilla fallback, making the whole engine
// byte-identical to the cycle-level oracle on every input.
//
// Machines are not safe for concurrent use; allocate one per lane.
package genasm

import (
	"genax/internal/align"
	"genax/internal/bitsilla"
	"genax/internal/dna"
	"genax/internal/sillax"
)

const wordBits = 64

// Machine is a GenASM bit-vector matcher plus the certified extension
// front end. All scratch (pattern masks, row slab, cigar buffers) is
// reused across calls; steady-state Extend allocates only the returned
// cigar.
type Machine struct {
	k      int
	sc     align.Scoring
	cs     sillax.Costs
	certOK bool // scoring admits the certification rule (Match,Mismatch >= 1)

	// pm[b] is the pattern bitmask of the current query: bit j set iff
	// query[j] == b.
	pm [dna.NumBases][]uint64

	// rows is the R-vector slab: row t occupies (budget+1)*W words at
	// offset t*stride (Align) or alternates between two rows (Distance).
	rows []uint64

	// cigBuf and revBuf are reusable cigar scratch; returned cigars are
	// fresh clones so they stay valid across calls (Engine contract).
	cigBuf align.Cigar
	revBuf align.Cigar

	// fallback produces the oracle-identical result whenever TryExtend
	// cannot certify one.
	fallback *bitsilla.Machine
}

// New builds a machine with edit bound k for the certified extension path.
// The unit-cost Distance/Align automaton takes its budget per call and is
// independent of k.
func New(k int, sc align.Scoring) *Machine {
	if k < 0 {
		panic("genasm: negative edit bound")
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return &Machine{
		k:        k,
		sc:       sc,
		cs:       sillax.NewCosts(sc),
		certOK:   sc.Match >= 1 && sc.Mismatch >= 1,
		fallback: bitsilla.New(k, sc),
	}
}

// K returns the edit bound of the extension path.
func (m *Machine) K() int { return m.k }

// prepare sizes the pattern masks for query and the row slab for tRows
// stored rows of budget+1 levels, returning the per-level word count W.
func (m *Machine) prepare(query dna.Seq, budget, tRows int) int {
	qn := len(query)
	w := qn/wordBits + 1
	for b := 0; b < dna.NumBases; b++ {
		p := m.pm[b]
		if cap(p) < w {
			p = make([]uint64, w)
		}
		p = p[:w]
		for i := range p {
			p[i] = 0
		}
		m.pm[b] = p
	}
	for j, c := range query {
		m.pm[c][j/wordBits] |= 1 << (j % wordBits)
	}
	size := tRows * (budget + 1) * w
	if cap(m.rows) < size {
		m.rows = make([]uint64, size)
	}
	m.rows = m.rows[:size]
	return w
}

// setPrefix sets the first n bits of w and clears the rest.
//
//genax:hotpath
func setPrefix(w []uint64, n int) {
	for i := range w {
		switch {
		case n >= wordBits:
			w[i] = ^uint64(0)
			n -= wordBits
		case n > 0:
			w[i] = uint64(1)<<n - 1
			n = 0
		default:
			w[i] = 0
		}
	}
}

// initRow writes the t=0 row: level d holds bits 0..min(d, qn) — the empty
// reference prefix absorbs up to d leading query bases as insertions.
//
//genax:hotpath
func initRow(row []uint64, budget, qn, w int) {
	for d := 0; d <= budget; d++ {
		nb := d
		if nb > qn {
			nb = qn
		}
		setPrefix(row[d*w:(d+1)*w], nb+1)
	}
}

// step advances every level 0..top from src (row t-1) to dst (row t) for
// text character c at step t, and reports whether any bit is still set.
//
//genax:hotpath
func (m *Machine) step(dst, src []uint64, c dna.Base, top, w, t int) bool {
	pm := m.pm[c]
	any := false
	for d := 0; d <= top; d++ {
		out := dst[d*w : (d+1)*w]
		prev := src[d*w : (d+1)*w]
		var cm, cs, ci uint64 // cross-word shift carries: match, sub, ins
		if d == 0 {
			for i := 0; i < w; i++ {
				am := prev[i] & pm[i]
				v := am<<1 | cm
				cm = am >> (wordBits - 1)
				out[i] = v
				if v != 0 {
					any = true
				}
			}
			continue
		}
		below := src[(d-1)*w : d*w]
		belowNew := dst[(d-1)*w : d*w]
		for i := 0; i < w; i++ {
			am := prev[i] & pm[i]
			v := am<<1 | cm | below[i] | below[i]<<1 | cs | belowNew[i]<<1 | ci
			cm = am >> (wordBits - 1)
			cs = below[i] >> (wordBits - 1)
			ci = belowNew[i] >> (wordBits - 1)
			out[i] = v
			if v != 0 {
				any = true
			}
		}
		if t <= d {
			// All-deletions path: ref[:t] deleted against the empty query
			// prefix. The deletion term already propagates this from level
			// d-1; setting it explicitly keeps row t correct even when the
			// caller restricted level d-1 on an earlier step.
			out[0] |= 1
			any = true
		}
	}
	return any
}

// Distance reports the smallest edit count d <= budget at which the whole
// query aligns against some prefix of ref (anchored at 0), using two
// rolling rows. ok is false when every alignment needs more than budget
// edits.
func (m *Machine) Distance(ref, query dna.Seq, budget int) (int, bool) {
	if budget < 0 {
		panic("genasm: negative edit budget")
	}
	qn := len(query)
	tmax := qn + budget
	if tmax > len(ref) {
		tmax = len(ref)
	}
	w := m.prepare(query, budget, 2)
	stride := (budget + 1) * w
	cur := m.rows[:stride]
	nxt := m.rows[stride : 2*stride]
	initRow(cur, budget, qn, w)
	best := -1
	top := budget
	if qn <= budget {
		// t=0 acceptance: the whole query inserted. Minimal level is qn.
		best, top = qn, qn-1
	}
	qw, qb := qn/wordBits, uint(qn%wordBits)
	for t := 1; t <= tmax && top >= 0; t++ {
		if !m.step(nxt, cur, ref[t-1], top, w, t) {
			break
		}
		for d := 0; d <= top; d++ {
			if nxt[d*w+qw]>>qb&1 == 1 {
				best, top = d, d-1
				break
			}
		}
		cur, nxt = nxt, cur
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Alignment is one unit-cost anchored alignment found by the automaton.
type Alignment struct {
	// D is the edit count — minimal over all prefix alignments, with the
	// shortest reference prefix among level-D endpoints.
	D int
	// RefLen is the reference prefix consumed.
	RefLen int
	// Cigar is the full-query trace (no clipping; unit costs).
	Cigar align.Cigar
}

// Align runs the automaton storing every row (SENE: entries only, edges
// recomputed) and tracebacks the minimal-edit, then minimal-reference
// endpoint. The returned cigar does not alias machine scratch.
func (m *Machine) Align(ref, query dna.Seq, budget int) (Alignment, bool) {
	if budget < 0 {
		panic("genasm: negative edit budget")
	}
	qn := len(query)
	tmax := qn + budget
	if tmax > len(ref) {
		tmax = len(ref)
	}
	w := m.prepare(query, budget, tmax+1)
	stride := (budget + 1) * w
	initRow(m.rows[:stride], budget, qn, w)
	best, bestT := -1, 0
	top := budget
	if qn <= budget {
		best, bestT, top = qn, 0, qn-1
	}
	qw, qb := qn/wordBits, uint(qn%wordBits)
	for t := 1; t <= tmax && top >= 0; t++ {
		cur := m.rows[(t-1)*stride : t*stride]
		nxt := m.rows[t*stride : (t+1)*stride]
		if !m.step(nxt, cur, ref[t-1], top, w, t) {
			break
		}
		for d := 0; d <= top; d++ {
			if nxt[d*w+qw]>>qb&1 == 1 {
				best, bestT, top = d, t, d-1
				break
			}
		}
	}
	if best < 0 {
		return Alignment{}, false
	}
	return m.traceback(ref, query, best, bestT, stride, w), true
}

// traceback walks the stored rows from endpoint (t0, bit qn, level d0)
// back to (0, 0), re-deriving each edge from the entries (SENE). Source
// priority is match > substitution > deletion > insertion; monotonicity
// (R[d-1] ⊆ R[d]) guarantees that when the bases match, the match source
// is active whenever any diagonal source is, so 'X' runs never cover
// equal bases.
func (m *Machine) traceback(ref, query dna.Seq, d0, t0, stride, w int) Alignment {
	bit := func(t, d, j int) bool {
		return m.rows[t*stride+d*w+j/wordBits]>>(uint(j%wordBits))&1 == 1
	}
	rev := m.revBuf[:0]
	t, d, j := t0, d0, len(query)
	for t > 0 || j > 0 {
		if t > 0 && j > 0 && query[j-1] == ref[t-1] && bit(t-1, d, j-1) {
			rev = rev.Append(align.OpMatch, 1)
			t--
			j--
			continue
		}
		if d > 0 {
			if t > 0 && j > 0 && bit(t-1, d-1, j-1) {
				rev = rev.Append(align.OpMismatch, 1)
				t--
				j--
				d--
				continue
			}
			if t > 0 && bit(t-1, d-1, j) {
				rev = rev.Append(align.OpDel, 1)
				t--
				d--
				continue
			}
			if j > 0 && bit(t, d-1, j-1) {
				rev = rev.Append(align.OpIns, 1)
				j--
				d--
				continue
			}
		}
		panic("genasm: traceback lost the automaton trail")
	}
	m.revBuf = rev
	return Alignment{D: d0, RefLen: t0, Cigar: rev.Reverse()}
}
