package genasm

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func mutate(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		if len(out) == 0 {
			out = append(out, dna.Base(r.Intn(4)))
			continue
		}
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1:
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		case 2:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

// prefixDistDP is the quadratic reference oracle for the automaton: the
// minimal Levenshtein distance of query against any prefix of ref, plus
// the shortest prefix achieving it.
func prefixDistDP(ref, query dna.Seq) (dist, refLen int) {
	qn := len(query)
	prev := make([]int, qn+1)
	cur := make([]int, qn+1)
	for j := 0; j <= qn; j++ {
		prev[j] = j
	}
	best, bestT := prev[qn], 0
	for t := 1; t <= len(ref); t++ {
		cur[0] = t
		for j := 1; j <= qn; j++ {
			d := prev[j-1]
			if ref[t-1] != query[j-1] {
				d++
			}
			if v := prev[j] + 1; v < d {
				d = v
			}
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			cur[j] = d
		}
		if cur[qn] < best {
			best, bestT = cur[qn], t
		}
		prev, cur = cur, prev
	}
	return best, bestT
}

func TestGenasmDistanceMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	m := New(8, align.BWAMEMDefaults())
	for trial := 0; trial < 400; trial++ {
		ref := randSeq(r, r.Intn(120))
		query := mutate(r, ref[:r.Intn(len(ref)+1)], r.Intn(10))
		budget := r.Intn(12)
		want, _ := prefixDistDP(ref, query)
		got, ok := m.Distance(ref, query, budget)
		if ok != (want <= budget) {
			t.Fatalf("trial %d: budget=%d ok=%v, DP dist=%d", trial, budget, ok, want)
		}
		if ok && got != want {
			t.Fatalf("trial %d: budget=%d dist=%d, DP dist=%d\nref=%v\nquery=%v", trial, budget, got, want, ref, query)
		}
	}
}

func TestGenasmAlignMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	m := New(8, align.BWAMEMDefaults())
	for trial := 0; trial < 300; trial++ {
		ref := randSeq(r, r.Intn(100))
		query := mutate(r, ref[:r.Intn(len(ref)+1)], r.Intn(8))
		budget := r.Intn(10)
		wantD, wantT := prefixDistDP(ref, query)
		al, ok := m.Align(ref, query, budget)
		if ok != (wantD <= budget) {
			t.Fatalf("trial %d: budget=%d ok=%v, DP dist=%d", trial, budget, ok, wantD)
		}
		if !ok {
			continue
		}
		if al.D != wantD || al.RefLen != wantT {
			t.Fatalf("trial %d: got (d=%d t=%d), DP (d=%d t=%d)", trial, al.D, al.RefLen, wantD, wantT)
		}
		if err := al.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("trial %d: invalid cigar %s: %v", trial, al.Cigar, err)
		}
		if al.Cigar.Edits() != al.D {
			t.Fatalf("trial %d: cigar %s has %d edits, reported %d", trial, al.Cigar, al.Cigar.Edits(), al.D)
		}
		if al.Cigar.RefLen() != al.RefLen {
			t.Fatalf("trial %d: cigar %s consumes %d ref bases, reported %d", trial, al.Cigar, al.Cigar.RefLen(), al.RefLen)
		}
	}
}

// checkSame asserts the genasm result is byte-identical to the cycle
// model's on the observable fields (Score, QueryLen, RefLen, Cigar).
func checkSame(t *testing.T, k int, ref, query dna.Seq, got Result, want sillax.TracebackResult) {
	t.Helper()
	if got.Score != want.Score || got.QueryLen != want.QueryLen || got.RefLen != want.RefLen ||
		got.Cigar.String() != want.Cigar.String() {
		t.Fatalf("k=%d ref=%v query=%v:\ngenasm (score=%d q=%d r=%d cigar=%s certified=%v)\nsillax (score=%d q=%d r=%d cigar=%s)",
			k, ref, query,
			got.Score, got.QueryLen, got.RefLen, got.Cigar, got.Certified,
			want.Score, want.QueryLen, want.RefLen, want.Cigar)
	}
}

// diffK mirrors the bitsilla differential sweep, plus a bound past
// bitsilla.MaxWordK so the fallback-of-the-fallback path is covered.
var diffK = []int{0, 1, 2, 3, 4, 8, 16, 40, 63, 65}

func TestGenasmExtendMatchesTracebackRandom(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	sc := align.BWAMEMDefaults()
	certified := 0
	for _, k := range diffK {
		gm := New(k, sc)
		tm := sillax.NewTracebackMachine(k, sc)
		for trial := 0; trial < 100; trial++ {
			ref := randSeq(r, r.Intn(90))
			e := r.Intn(k + 3)
			if trial%3 == 0 {
				e = r.Intn(2) // easy reads: the certified path's habitat
			}
			query := mutate(r, ref, e)
			got := gm.Extend(ref, query)
			if got.Certified {
				certified++
			}
			checkSame(t, k, ref, query, got, tm.Extend(ref, query))
		}
	}
	if certified == 0 {
		t.Fatal("no extension took the certified fast path; the sweep is not exercising it")
	}
}

// TestGenasmExtendMatchesTracebackAltScoring varies the affine scheme.
// The first scheme cannot certify anything (Match < 1 would let distinct
// clip points tie); identity must hold regardless.
func TestGenasmExtendMatchesTracebackAltScoring(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for si, sc := range []align.Scoring{
		align.Unit(),
		{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2},
		{Match: 1, Mismatch: 1, GapOpen: 1, GapExtend: 1},
		{Match: 5, Mismatch: 4, GapOpen: 8, GapExtend: 1},
	} {
		for _, k := range []int{2, 4, 8, 19} {
			gm := New(k, sc)
			tm := sillax.NewTracebackMachine(k, sc)
			for trial := 0; trial < 60; trial++ {
				ref := randSeq(r, r.Intn(70))
				query := mutate(r, ref, r.Intn(k+3))
				got := gm.Extend(ref, query)
				if si == 0 && got.Certified && len(query) > 0 {
					t.Fatalf("unit scoring certified a non-empty extension (ref=%v query=%v)", ref, query)
				}
				checkSame(t, k, ref, query, got, tm.Extend(ref, query))
			}
		}
	}
}

// TestGenasmCertifyEdges pins the certification rule's boundaries: the
// edit-bound edge (k interior mismatches certify, k+1 do not), the
// gap-escape threshold (a mismatch deficit equal to the gap-open cost must
// refuse, one less must certify), score ties, all-mismatch and zero-length
// inputs. Every case must stay byte-identical to the oracle either way.
func TestGenasmCertifyEdges(t *testing.T) {
	mustSame := func(k int, sc align.Scoring, ref, query dna.Seq, wantCertified bool, label string) {
		t.Helper()
		got := New(k, sc).Extend(ref, query)
		if got.Certified != wantCertified {
			t.Errorf("%s: certified=%v, want %v", label, got.Certified, wantCertified)
		}
		checkSame(t, k, ref, query, got, sillax.NewTracebackMachine(k, sc).Extend(ref, query))
	}
	r := rand.New(rand.NewSource(74))
	bwa := align.BWAMEMDefaults()
	ref := randSeq(r, 60)

	// Edit-bound edge: one interior substitution against k=1 vs k=0. With
	// BWA-MEM costs one mismatch keeps the full-length optimum unique and
	// above the gap escape (deficit 5 < open 7), so only the edit bound
	// decides.
	oneSub := ref[:40].Clone()
	oneSub[20] = dna.Base((int(oneSub[20]) + 1) % 4)
	mustSame(1, bwa, ref, oneSub, true, "one sub, k=1")
	mustSame(0, bwa, ref, oneSub, false, "one sub, k=0")

	// Gap-escape threshold: Open = GapOpen+GapExtend. A single mismatch
	// costs Match+Mismatch = 3; with Open = 3 the gapless optimum only
	// ties the bound qn*Match-Open, so certification must refuse; with
	// Open = 4 it clears it.
	mustSame(4, align.Scoring{Match: 1, Mismatch: 2, GapOpen: 2, GapExtend: 1}, ref, oneSub, false, "deficit == Open")
	mustSame(4, align.Scoring{Match: 1, Mismatch: 2, GapOpen: 3, GapExtend: 1}, ref, oneSub, true, "deficit < Open")

	// Score tie: = = X = under Match=1, Mismatch=1 ties prefixes 2 and 4.
	tieRef, _ := dna.ParseSeq("ACGTAAAA")
	tieQ, _ := dna.ParseSeq("ACTT")
	mustSame(4, align.Scoring{Match: 1, Mismatch: 1, GapOpen: 6, GapExtend: 1}, tieRef, tieQ, false, "tied clip points")

	// All-mismatch query: optimum is the empty extension, never certified.
	allMiss := ref[:30].Clone()
	for i := range allMiss {
		allMiss[i] = dna.Base((int(allMiss[i]) + 1) % 4)
	}
	mustSame(8, bwa, ref, allMiss, false, "all mismatch")

	// Zero-length query and zero-length reference.
	mustSame(8, bwa, ref, nil, true, "empty query")
	mustSame(8, bwa, nil, ref[:20], false, "empty ref")
	mustSame(8, bwa, nil, nil, true, "both empty")

	// Exact full-length match: trivially certified.
	mustSame(8, bwa, ref, ref[:40].Clone(), true, "exact")

	// Certified clipped tail: mismatches after the optimum clip point do
	// not count against the edit bound, and a short clip (cost under the
	// gap-open threshold) stays certifiable.
	tail := ref[:40].Clone()
	for i := 37; i < 40; i++ {
		tail[i] = dna.Base((int(tail[i]) + 1) % 4)
	}
	mustSame(1, bwa, ref, tail, true, "clipped mismatch tail")

	// A long mismatched tail pushes the gapless optimum below the
	// gap-escape bound qn*Match - Open — a gapped alignment could beat
	// it, so certification must refuse.
	longTail := ref[:40].Clone()
	for i := 30; i < 40; i++ {
		longTail[i] = dna.Base((int(longTail[i]) + 1) % 4)
	}
	mustSame(1, bwa, ref, longTail, false, "long clipped tail")
}

// TestGenasmTryExtendAgreesWithExtend pins TryExtend's contract: whenever
// it reports ok, the result must equal the full Extend result field for
// field.
func TestGenasmTryExtendAgreesWithExtend(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	sc := align.BWAMEMDefaults()
	gm := New(4, sc)
	check := New(4, sc)
	hits := 0
	for trial := 0; trial < 300; trial++ {
		ref := randSeq(r, r.Intn(80))
		query := mutate(r, ref, r.Intn(3))
		res, ok := gm.TryExtend(ref, query)
		full := check.Extend(ref, query)
		if !ok {
			if full.Certified {
				t.Fatalf("trial %d: TryExtend refused what Extend certified", trial)
			}
			continue
		}
		hits++
		if res.Score != full.Score || res.QueryLen != full.QueryLen || res.RefLen != full.RefLen ||
			res.Cigar.String() != full.Cigar.String() || !res.Certified {
			t.Fatalf("trial %d: TryExtend %+v vs Extend %+v", trial, res, full)
		}
	}
	if hits == 0 {
		t.Fatal("TryExtend never certified")
	}
}

// TestGenasmMachineReuse interleaves certified, fallback and automaton
// calls on one machine: results must match a fresh machine's, and earlier
// cigars must survive later calls (the Engine contract).
func TestGenasmMachineReuse(t *testing.T) {
	r := rand.New(rand.NewSource(76))
	sc := align.BWAMEMDefaults()
	m := New(8, sc)
	type held struct {
		want string
		got  align.Cigar
	}
	var kept []held
	for trial := 0; trial < 120; trial++ {
		ref := randSeq(r, 40+r.Intn(40))
		query := mutate(r, ref, r.Intn(6))
		res := m.Extend(ref, query)
		fresh := New(8, sc).Extend(ref, query)
		if res.Score != fresh.Score || res.Cigar.String() != fresh.Cigar.String() {
			t.Fatalf("trial %d: reused machine diverged: %v vs %v", trial, res.Cigar, fresh.Cigar)
		}
		if trial%7 == 0 {
			if _, ok := m.Align(ref, query, 4); ok {
				// Interleave automaton runs to stress shared scratch.
			}
		}
		kept = append(kept, held{want: res.Cigar.String(), got: res.Cigar})
		if len(kept) > 8 {
			kept = kept[1:]
		}
		for i, h := range kept {
			if h.got.String() != h.want {
				t.Fatalf("trial %d: held cigar %d mutated: %s != %s", trial, i, h.got, h.want)
			}
		}
	}
}

// TestGenasmExtendSteadyStateAllocs pins the allocation budget: one
// allocation per call (the returned cigar) on both the certified and the
// fallback path.
func TestGenasmExtendSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	sc := align.BWAMEMDefaults()
	m := New(16, sc)
	ref := randSeq(r, 120)
	easy := ref[:100].Clone()
	easy[50] = dna.Base((int(easy[50]) + 1) % 4)
	hard := mutate(r, ref[:100], 8)
	m.Extend(ref, easy)
	m.Extend(ref, hard)
	if got := testing.AllocsPerRun(50, func() { m.Extend(ref, easy) }); got > 1 {
		t.Errorf("certified path allocates %.1f/call, budget 1", got)
	}
	if !func() bool { res, _ := m.TryExtend(ref, easy); return res.Certified }() {
		t.Fatal("easy read unexpectedly not certified; alloc test is mis-targeted")
	}
	if got := testing.AllocsPerRun(50, func() { m.Extend(ref, hard) }); got > 1 {
		t.Errorf("fallback path allocates %.1f/call, budget 1", got)
	}
}

func TestGenasmNewPanics(t *testing.T) {
	expectPanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", label)
			}
		}()
		f()
	}
	expectPanic("negative k", func() { New(-1, align.BWAMEMDefaults()) })
	expectPanic("invalid scoring", func() { New(4, align.Scoring{Match: 1}) })
	m := New(4, align.BWAMEMDefaults())
	expectPanic("negative budget", func() { m.Distance(nil, nil, -1) })
	expectPanic("negative align budget", func() { m.Align(nil, nil, -1) })
}
