package chain

import (
	"math/rand"
	"testing"
)

func collapse(t *testing.T, anchors []Anchor, maxGap int32) []int32 {
	t.Helper()
	var c Chainer
	c.Reset()
	for _, a := range anchors {
		c.Add(a.Q0, a.Q1, a.R)
	}
	keep := c.Collapse(maxGap)
	for i := 1; i < len(keep); i++ {
		if keep[i-1] >= keep[i] {
			t.Fatalf("keep not strictly ascending: %v", keep)
		}
	}
	return append([]int32(nil), keep...)
}

func TestCollapseEmptyAndSingle(t *testing.T) {
	if got := collapse(t, nil, 40); len(got) != 0 {
		t.Fatalf("empty group kept %v", got)
	}
	if got := collapse(t, []Anchor{{Q0: 5, Q1: 17, R: 100}}, 40); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single anchor kept %v, want [0]", got)
	}
}

// TestCollapseCollinear: anchors along one alignment, drifting a few bases
// off the diagonal (indels), collapse to the single longest anchor.
func TestCollapseCollinear(t *testing.T) {
	anchors := []Anchor{
		{Q0: 0, Q1: 12, R: 1000},
		{Q0: 40, Q1: 52, R: 1043},  // +3 drift
		{Q0: 80, Q1: 100, R: 1081}, // longest (20)
		{Q0: 120, Q1: 132, R: 1122},
	}
	got := collapse(t, anchors, 40)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("collinear chain kept %v, want [2] (longest anchor)", got)
	}
}

// TestCollapseTwoLoci: two distant clusters stay two chains, each with its
// own representative.
func TestCollapseTwoLoci(t *testing.T) {
	anchors := []Anchor{
		{Q0: 0, Q1: 15, R: 1000},
		{Q0: 30, Q1: 42, R: 1030},
		{Q0: 0, Q1: 12, R: 90000},
		{Q0: 30, Q1: 48, R: 90031},
	}
	got := collapse(t, anchors, 40)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("two loci kept %v, want [0 3]", got)
	}
}

// TestCollapseDriftBeyondGap: diagonal drift past maxGap must not chain —
// one gapped extension cannot reconcile it.
func TestCollapseDriftBeyondGap(t *testing.T) {
	anchors := []Anchor{
		{Q0: 0, Q1: 12, R: 1000},
		{Q0: 40, Q1: 52, R: 1140}, // rAdv 140 vs qAdv 40: drift 100
	}
	if got := collapse(t, anchors, 40); len(got) != 2 {
		t.Fatalf("over-drift anchors kept %v, want both", got)
	}
	if got := collapse(t, anchors, 120); len(got) != 1 || got[0] != 0 {
		t.Fatalf("within-drift anchors kept %v, want [0]", got)
	}
}

// TestCollapseNoBackwardChaining: a predecessor must advance on both axes;
// anchors stacked at one query position, or moving backwards on the
// reference, never chain.
func TestCollapseNoBackwardChaining(t *testing.T) {
	anchors := []Anchor{
		{Q0: 50, Q1: 62, R: 1050},
		{Q0: 50, Q1: 62, R: 1080},
		{Q0: 80, Q1: 92, R: 1000},
	}
	got := collapse(t, anchors, 1000)
	if len(got) != 3 {
		t.Fatalf("non-collinear anchors kept %v, want all three", got)
	}
}

// TestCollapsePermutationInvariant: with distinct (R, Q0) coordinates the
// kept anchor set is independent of Add order.
func TestCollapsePermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(30)
		anchors := make([]Anchor, 0, n)
		seen := map[int64]bool{}
		for len(anchors) < n {
			q0 := int32(r.Intn(5000))
			rp := int32(r.Intn(3000)) // clustered refs so chains form
			key := int64(rp)<<32 | int64(q0)
			if seen[key] {
				continue
			}
			seen[key] = true
			anchors = append(anchors, Anchor{Q0: q0, Q1: q0 + 10 + int32(r.Intn(40)), R: rp})
		}
		keepSet := func(order []int) map[Anchor]bool {
			var c Chainer
			c.Reset()
			for _, idx := range order {
				c.Add(anchors[idx].Q0, anchors[idx].Q1, anchors[idx].R)
			}
			out := map[Anchor]bool{}
			for _, ki := range c.Collapse(64) {
				out[anchors[order[ki]]] = true
			}
			return out
		}
		base := make([]int, n)
		for i := range base {
			base[i] = i
		}
		want := keepSet(base)
		perm := r.Perm(n)
		got := keepSet(perm)
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %d anchors shuffled vs %d in order", trial, len(got), len(want))
		}
		for _, a := range anchors {
			if want[a] && !got[a] {
				t.Fatalf("trial %d: anchor %+v kept in order but not shuffled", trial, a)
			}
		}
	}
}

// TestCollapseReuseAndAllocs: a warm Chainer must not allocate.
func TestCollapseReuseAndAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var c Chainer
	fill := func() {
		c.Reset()
		q := int32(0)
		rp := int32(1000)
		for i := 0; i < 48; i++ {
			c.Add(q, q+12, rp)
			q += int32(20 + r.Intn(30))
			rp += q - c.anchors[len(c.anchors)-1].Q0 + int32(r.Intn(9)-4)
		}
	}
	fill()
	c.Collapse(40) // warm all scratch
	allocs := testing.AllocsPerRun(30, func() {
		fill()
		c.Collapse(40)
	})
	if allocs > 0 {
		t.Fatalf("warm Collapse allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkCollapse(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	var c Chainer
	type av struct{ q0, q1, rp int32 }
	anchors := make([]av, 256)
	q, rp := int32(0), int32(5000)
	for i := range anchors {
		anchors[i] = av{q, q + 15, rp}
		q += int32(30 + r.Intn(40))
		rp += int32(30 + r.Intn(44))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Reset()
		for _, a := range anchors {
			c.Add(a.q0, a.q1, a.rp)
		}
		c.Collapse(64)
	}
}
