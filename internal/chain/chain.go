// Package chain implements deterministic anchor chaining for long reads.
//
// Seeding a long read yields many anchors per locus: every seed hit lands
// on a slightly different diagonal whenever an indel sits between two
// seeds, and the diagonal dedup in the filter stage — exact by design for
// short reads — keeps all of them, so one 10 kb alignment costs dozens of
// redundant gapped extensions. Chaining is minimap2's answer (and its
// single hot spot, ~70% of runtime): collinear anchors whose query and
// reference advances agree within the edit budget are one alignment, so
// only one representative per chain needs to reach the extend stage.
//
// The Chainer runs the classic one-dimensional DP over anchors sorted by
// (reference position, query position): f(i) = max(w_i, max_j f(j) +
// min(w_i, qAdv, rAdv) - len(|qAdv - rAdv|)) over valid predecessors j
// with positive advances on both axes and a diagonal drift within maxGap.
// The gap cost is logarithmic (bit length of the drift), as in minimap2's
// concave γ: a linear cost would out-price the anchors themselves for any
// K-scale indel, and the hard maxGap bound already rejects drifts one
// gapped extension cannot absorb. The
// lookback is bounded (chainLookback sorted predecessors), chains are
// peeled greedily best-first, and every tie-break is fixed — highest
// score then lowest sorted index for heads, longest anchor then lowest
// sorted index for representatives — so the kept set is a pure
// function of the anchor multiset: serial and parallel pipelines, and any
// lane split, collapse identically.
//
// Everything is flat int32 slices reused across Reset; the warm path
// allocates nothing and contains no maps, closures or library sorts
// (insertion sorts are open-coded: groups are small and mostly sorted).
package chain

import "math/bits"

// chainLookback bounds the DP to this many sorted predecessors per
// anchor, minimap2-style; drift beyond maxGap prunes most of them anyway.
const chainLookback = 64

// Anchor is one seed hit in chain coordinates: query span [Q0, Q1) and
// the reference position R of the span's start.
type Anchor struct {
	Q0, Q1, R int32
}

// Chainer chains one candidate group at a time. Zero value is ready; all
// storage is retained across Reset for reuse.
type Chainer struct {
	anchors []Anchor
	orig    []int32 // original Add order per sorted slot
	f       []int32 // best chain score ending at the slot
	parent  []int32 // DP predecessor, -1 for chain start
	used    []uint8
	keep    []int32
}

// Reset drops the previous group's anchors, keeping capacity.
//
//genax:hotpath
func (c *Chainer) Reset() {
	c.anchors = c.anchors[:0]
	c.orig = c.orig[:0]
}

// Add appends one anchor; its index in Add order is what Collapse reports
// back in the keep set.
//
//genax:hotpath
func (c *Chainer) Add(q0, q1, r int32) {
	c.orig = append(c.orig, int32(len(c.anchors)))
	c.anchors = append(c.anchors, Anchor{Q0: q0, Q1: q1, R: r})
}

// Len reports the number of anchors added since the last Reset.
func (c *Chainer) Len() int { return len(c.anchors) }

// Collapse chains the added anchors and returns the representatives'
// Add-order indices, ascending: one anchor per chain — the longest, with
// the lowest sorted slot breaking ties. maxGap bounds the diagonal
// drift a chain may absorb between consecutive anchors; the edit budget K
// is the natural choice, since that is what one gapped extension can
// reconcile. The returned slice is borrowed from the Chainer and valid
// until the next call.
//
//genax:hotpath
func (c *Chainer) Collapse(maxGap int32) []int32 {
	n := len(c.anchors)
	c.keep = c.keep[:0]
	if n == 0 {
		return c.keep
	}

	// Insertion sort by (R, Q0, insertion index). Groups arrive nearly
	// sorted — candidates are emitted in reference order per segment — so
	// this is close to linear.
	a, orig := c.anchors, c.orig
	for i := 1; i < n; i++ {
		ai, oi := a[i], orig[i]
		j := i - 1
		for j >= 0 && (a[j].R > ai.R || (a[j].R == ai.R && (a[j].Q0 > ai.Q0 || (a[j].Q0 == ai.Q0 && orig[j] > oi)))) {
			a[j+1], orig[j+1] = a[j], orig[j]
			j--
		}
		a[j+1], orig[j+1] = ai, oi
	}

	for len(c.f) < n {
		c.f = append(c.f, 0)
		c.parent = append(c.parent, 0)
		c.used = append(c.used, 0)
	}
	f, parent, used := c.f[:n], c.parent[:n], c.used[:n]

	// DP over bounded lookback. Predecessors are scanned nearest-first and
	// accepted on strictly-greater score, so among equal-scoring parents
	// the nearest (then, for equal positions, the latest-sorted — i.e.
	// deterministic) one wins.
	for i := 0; i < n; i++ {
		wi := a[i].Q1 - a[i].Q0
		f[i] = wi
		parent[i] = -1
		used[i] = 0
		lo := i - chainLookback
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			qAdv := a[i].Q0 - a[j].Q0
			rAdv := a[i].R - a[j].R
			if qAdv <= 0 || rAdv <= 0 {
				continue
			}
			gap := qAdv - rAdv
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap {
				continue
			}
			gain := wi
			if qAdv < gain {
				gain = qAdv
			}
			if rAdv < gain {
				gain = rAdv
			}
			sc := f[j] + gain - int32(bits.Len32(uint32(gap)))
			if sc > f[i] {
				f[i] = sc
				parent[i] = int32(j)
			}
		}
	}

	// Greedy best-first peel: take the highest-scoring unused head (ties
	// to the lowest sorted index), walk its chain until it meets an
	// already-claimed anchor, and keep the chain's longest anchor.
	remaining := n
	for remaining > 0 {
		head := -1
		var bestF int32
		for i := 0; i < n; i++ {
			if used[i] == 0 && (head < 0 || f[i] > bestF) {
				head, bestF = i, f[i]
			}
		}
		rep := head
		repW := a[head].Q1 - a[head].Q0
		for i := head; i >= 0 && used[i] == 0; i = int(parent[i]) {
			used[i] = 1
			remaining--
			// Ties go to the lowest sorted slot, which is a pure function
			// of the anchor coordinates — Add order never matters.
			if w := a[i].Q1 - a[i].Q0; w > repW || (w == repW && i < rep) {
				rep, repW = i, w
			}
		}
		c.keep = append(c.keep, orig[rep])
	}

	// Ascending Add order, so callers can compact their group in place
	// with forward copies.
	k := c.keep
	for i := 1; i < len(k); i++ {
		v := k[i]
		j := i - 1
		for j >= 0 && k[j] > v {
			k[j+1] = k[j]
			j--
		}
		k[j+1] = v
	}
	return c.keep
}
