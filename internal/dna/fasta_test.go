package dna

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadFasta(t *testing.T) {
	in := ">chr1 description here\nACGT\nacgt\n\n>chr2\nTTTT\n"
	recs, err := ReadFasta(strings.NewReader(in), FastaOptions{})
	if err != nil {
		t.Fatalf("ReadFasta: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "chr1" || recs[0].Seq.String() != "ACGTACGT" {
		t.Errorf("rec0 = %q %q", recs[0].Name, recs[0].Seq)
	}
	if recs[1].Name != "chr2" || recs[1].Seq.String() != "TTTT" {
		t.Errorf("rec1 = %q %q", recs[1].Name, recs[1].Seq)
	}
}

func TestReadFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n"), FastaOptions{}); err == nil {
		t.Error("sequence before header accepted")
	}
	if _, err := ReadFasta(strings.NewReader(""), FastaOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadFasta(strings.NewReader(">x\nACNT\n"), FastaOptions{}); err == nil {
		t.Error("N accepted without ResolveN")
	}
}

func TestReadFastaResolveN(t *testing.T) {
	recs, err := ReadFasta(strings.NewReader(">x\nANNT\n"), FastaOptions{ResolveN: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatalf("ReadFasta: %v", err)
	}
	if len(recs[0].Seq) != 4 {
		t.Fatalf("len = %d", len(recs[0].Seq))
	}
	if recs[0].Seq[0] != A || recs[0].Seq[3] != T {
		t.Errorf("non-N bases altered: %v", recs[0].Seq)
	}
}

func TestFastaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	recs := []FastaRecord{
		{Name: "a", Seq: randSeq(r, 137)},
		{Name: "b", Seq: randSeq(r, 60)},
		{Name: "c", Seq: randSeq(r, 1)},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 50); err != nil {
		t.Fatalf("WriteFasta: %v", err)
	}
	back, err := ReadFasta(&buf, FastaOptions{})
	if err != nil {
		t.Fatalf("ReadFasta: %v", err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Name != recs[i].Name || !back[i].Seq.Equal(recs[i].Seq) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestReadFastq(t *testing.T) {
	in := "@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+anything\nJJ\n"
	recs, err := ReadFastq(strings.NewReader(in), FastaOptions{})
	if err != nil {
		t.Fatalf("ReadFastq: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "r1" || recs[0].Seq.String() != "ACGT" || string(recs[0].Qual) != "IIII" {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[1].Name != "r2" || recs[1].Seq.String() != "TT" {
		t.Errorf("rec1 = %+v", recs[1])
	}
}

func TestReadFastqErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",                  // no header
		"@r1\nACGT\n+\nIII\n",     // qual length mismatch
		"@r1\nACGT\nIIII\nIIII\n", // missing +
		"@r1\nACGT\n",             // truncated
	}
	for _, in := range cases {
		if _, err := ReadFastq(strings.NewReader(in), FastaOptions{}); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestFastqRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	recs := []FastqRecord{
		{Name: "x", Seq: randSeq(r, 101), Qual: bytes.Repeat([]byte{'F'}, 101)},
		{Name: "y", Seq: randSeq(r, 5)}, // nil qual -> default
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatalf("WriteFastq: %v", err)
	}
	back, err := ReadFastq(&buf, FastaOptions{})
	if err != nil {
		t.Fatalf("ReadFastq: %v", err)
	}
	if len(back) != 2 || !back[0].Seq.Equal(recs[0].Seq) || !back[1].Seq.Equal(recs[1].Seq) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if string(back[1].Qual) != strings.Repeat("I", 5) {
		t.Errorf("default qual = %q", back[1].Qual)
	}
}
