package dna

import "fmt"

// Packed is a 2-bit-per-base packed DNA sequence, the representation GenAx
// streams into the on-chip reference cache (a 6 Mbp segment fits in 1.5 MB).
// Base i occupies bits (2*(i%32)) .. (2*(i%32)+1) of word i/32.
type Packed struct {
	words []uint64
	n     int
}

// PackSeq packs an unpacked sequence.
func PackSeq(s Seq) *Packed {
	p := &Packed{words: make([]uint64, (len(s)+31)/32), n: len(s)}
	for i, b := range s {
		p.words[i>>5] |= uint64(b&3) << uint((i&31)*2)
	}
	return p
}

// Len returns the number of bases.
func (p *Packed) Len() int { return p.n }

// At returns base i. It panics if i is out of range, matching slice
// indexing semantics.
func (p *Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: packed index %d out of range [0,%d)", i, p.n))
	}
	return Base(p.words[i>>5] >> uint((i&31)*2) & 3)
}

// Slice unpacks the half-open interval [lo, hi) into a fresh Seq.
// The bounds are clamped to the sequence, so callers can ask for a window
// that runs off either end (as seed extension does near segment borders).
func (p *Packed) Slice(lo, hi int) Seq {
	if lo < 0 {
		lo = 0
	}
	if hi > p.n {
		hi = p.n
	}
	if lo >= hi {
		return Seq{}
	}
	out := make(Seq, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = Base(p.words[i>>5] >> uint((i&31)*2) & 3)
	}
	return out
}

// Unpack returns the whole sequence as a Seq.
func (p *Packed) Unpack() Seq { return p.Slice(0, p.n) }

// SizeBytes returns the in-memory footprint of the packed payload, used by
// the hardware model to size the on-chip reference cache.
func (p *Packed) SizeBytes() int { return len(p.words) * 8 }
