package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseCharRoundTrip(t *testing.T) {
	for b := Base(0); b < NumBases; b++ {
		got, ok := BaseFromChar(b.Char())
		if !ok || got != b {
			t.Errorf("BaseFromChar(%q) = %v, %v; want %v, true", b.Char(), got, ok, b)
		}
		lower := b.Char() + 'a' - 'A'
		got, ok = BaseFromChar(lower)
		if !ok || got != b {
			t.Errorf("BaseFromChar(%q) = %v, %v; want %v, true", lower, got, ok, b)
		}
	}
}

func TestBaseFromCharInvalid(t *testing.T) {
	for _, c := range []byte{'N', 'n', 'X', '-', ' ', 0, 255} {
		if _, ok := BaseFromChar(c); ok {
			t.Errorf("BaseFromChar(%q) accepted an invalid base", c)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%v.Complement() = %v, want %v", b, got, want)
		}
		if got := b.Complement().Complement(); got != b {
			t.Errorf("double complement of %v = %v", b, got)
		}
	}
}

func TestParseSeq(t *testing.T) {
	s, err := ParseSeq("ACGTacgt")
	if err != nil {
		t.Fatalf("ParseSeq: %v", err)
	}
	want := Seq{A, C, G, T, A, C, G, T}
	if !s.Equal(want) {
		t.Errorf("ParseSeq = %v, want %v", s, want)
	}
	if s.String() != "ACGTACGT" {
		t.Errorf("String() = %q", s.String())
	}
	if _, err := ParseSeq("ACNT"); err == nil {
		t.Error("ParseSeq accepted 'N'")
	}
}

func TestRevComp(t *testing.T) {
	s := MustParseSeq("AACGT")
	rc := s.RevComp()
	if rc.String() != "ACGTT" {
		t.Errorf("RevComp = %v, want ACGTT", rc)
	}
	if !rc.RevComp().Equal(s) {
		t.Errorf("double RevComp = %v, want %v", rc.RevComp(), s)
	}
}

func TestRevCompEmptyAndSingle(t *testing.T) {
	if got := (Seq{}).RevComp(); len(got) != 0 {
		t.Errorf("RevComp of empty = %v", got)
	}
	if got := (Seq{G}).RevComp(); !got.Equal(Seq{C}) {
		t.Errorf("RevComp of G = %v, want C", got)
	}
}

func TestSeqClone(t *testing.T) {
	s := MustParseSeq("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone aliases the original")
	}
}

// RandSeq builds a random sequence of length n; it is exported to sibling
// test files in this package only via this helper.
func randSeq(r *rand.Rand, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = Base(r.Intn(NumBases))
	}
	return s
}

func TestRevCompInvolutionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		s := randSeq(r, int(n)%200)
		return s.RevComp().RevComp().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		s := randSeq(r, int(n))
		back, err := ParseSeq(s.String())
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	s := MustParseSeq("AACGT")
	if got := s.Reverse().String(); got != "TGCAA" {
		t.Errorf("Reverse = %q, want TGCAA", got)
	}
	if got := (Seq{}).Reverse(); len(got) != 0 {
		t.Errorf("Reverse of empty = %v", got)
	}
	if !s.Reverse().Reverse().Equal(s) {
		t.Error("double Reverse is not identity")
	}
}

func TestAppendReverse(t *testing.T) {
	s, err := ParseSeq("ACGTT")
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Seq, 0, 8)
	dst = AppendReverse(dst, s)
	if !dst.Equal(s.Reverse()) {
		t.Errorf("AppendReverse = %v, want %v", dst, s.Reverse())
	}
	// Appending to a non-empty prefix must extend, not replace.
	dst = AppendReverse(dst, s[:2])
	if dst.String() != "TTGCACA" {
		t.Errorf("extended AppendReverse = %s", dst)
	}
	// A warm buffer must not allocate.
	buf := make(Seq, 0, len(s))
	avg := testing.AllocsPerRun(50, func() { AppendReverse(buf[:0], s) })
	if avg != 0 {
		t.Errorf("AppendReverse into warm buffer allocates %.1f/op", avg)
	}
}
