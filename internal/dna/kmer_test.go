package dna

import (
	"math/rand"
	"testing"
)

func TestKmerCodecBounds(t *testing.T) {
	if _, err := NewKmerCodec(0); err == nil {
		t.Error("NewKmerCodec(0) succeeded")
	}
	if _, err := NewKmerCodec(MaxK + 1); err == nil {
		t.Error("NewKmerCodec(MaxK+1) succeeded")
	}
	c, err := NewKmerCodec(MaxK)
	if err != nil {
		t.Fatalf("NewKmerCodec(MaxK): %v", err)
	}
	if c.K() != MaxK {
		t.Errorf("K() = %d", c.K())
	}
}

func TestKmerEncodeDecode(t *testing.T) {
	c, _ := NewKmerCodec(3)
	s := MustParseSeq("ACGTT")
	km, ok := c.Encode(s, 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	// ACG = 0b00_01_10 = 6
	if km != 6 {
		t.Errorf("Encode(ACG) = %d, want 6", km)
	}
	if got := c.Decode(km).String(); got != "ACG" {
		t.Errorf("Decode = %q, want ACG", got)
	}
	if _, ok := c.Encode(s, 2); !ok {
		t.Error("Encode at pos 2 of len-5 seq with k=3 should fit")
	}
	if _, ok := c.Encode(s, 3); ok {
		t.Error("Encode past the end succeeded")
	}
	if _, ok := c.Encode(s, -1); ok {
		t.Error("Encode at negative pos succeeded")
	}
}

func TestKmerLexicographicOrder(t *testing.T) {
	c, _ := NewKmerCodec(2)
	prev := Kmer(0)
	first := true
	for _, s1 := range []string{"A", "C", "G", "T"} {
		for _, s2 := range []string{"A", "C", "G", "T"} {
			km, _ := c.Encode(MustParseSeq(s1+s2), 0)
			if !first && km != prev+1 {
				t.Errorf("k-mer %s%s = %d, want %d (integer order must be lexicographic)", s1, s2, km, prev+1)
			}
			prev, first = km, false
		}
	}
	if c.NumKmers() != 16 {
		t.Errorf("NumKmers = %d, want 16", c.NumKmers())
	}
}

func TestKmerRollMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 5, 12, 31} {
		c, _ := NewKmerCodec(k)
		s := randSeq(r, k+50)
		km, ok := c.Encode(s, 0)
		if !ok {
			t.Fatalf("k=%d: initial Encode failed", k)
		}
		for pos := 1; pos+k <= len(s); pos++ {
			km = c.Roll(km, s[pos+k-1])
			want, _ := c.Encode(s, pos)
			if km != want {
				t.Fatalf("k=%d pos=%d: Roll = %d, Encode = %d", k, pos, km, want)
			}
		}
	}
}

func TestKmerAppendScanMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 5, 12, 31} {
		c, _ := NewKmerCodec(k)
		for _, n := range []int{0, k - 1, k, k + 1, k + 57} {
			s := randSeq(r, n)
			scan := c.AppendScan(nil, s)
			wantLen := n - k + 1
			if wantLen < 0 {
				wantLen = 0
			}
			if len(scan) != wantLen {
				t.Fatalf("k=%d n=%d: scan length %d, want %d", k, n, len(scan), wantLen)
			}
			for pos, km := range scan {
				want, ok := c.Encode(s, pos)
				if !ok || km != want {
					t.Fatalf("k=%d n=%d pos=%d: scan %d, Encode %d (ok=%v)", k, n, pos, km, want, ok)
				}
			}
		}
	}
	// Appending must extend dst, not replace it.
	c, _ := NewKmerCodec(2)
	dst := []Kmer{42}
	dst = c.AppendScan(dst, MustParseSeq("ACG"))
	if len(dst) != 3 || dst[0] != 42 {
		t.Errorf("AppendScan clobbered dst prefix: %v", dst)
	}
}

func TestKmerDecodeEncodeRoundTrip(t *testing.T) {
	c, _ := NewKmerCodec(8)
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		km := Kmer(r.Intn(c.NumKmers()))
		back, ok := c.Encode(c.Decode(km), 0)
		if !ok || back != km {
			t.Fatalf("round trip of %d gave %d (ok=%v)", km, back, ok)
		}
	}
}
