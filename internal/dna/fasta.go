package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
)

// FastaRecord is one sequence from a FASTA file.
type FastaRecord struct {
	Name string
	Seq  Seq
}

// FastaOptions controls FASTA parsing.
type FastaOptions struct {
	// ResolveN, when non-nil, substitutes a random base for every
	// ambiguity code (N and the other IUPAC letters), which is how
	// short-read pipelines typically treat them. When nil, ambiguity
	// codes cause a parse error.
	ResolveN *rand.Rand
}

// ReadFasta parses all records from r.
func ReadFasta(r io.Reader, opts FastaOptions) ([]FastaRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var recs []FastaRecord
	var cur *FastaRecord
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '>' {
			recs = append(recs, FastaRecord{Name: string(bytes.Fields(raw[1:])[0])})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: fasta line %d: sequence data before first header", line)
		}
		for _, ch := range raw {
			b, ok := BaseFromChar(ch)
			if !ok {
				if opts.ResolveN == nil {
					return nil, fmt.Errorf("dna: fasta line %d: invalid base %q", line, ch)
				}
				b = Base(opts.ResolveN.Intn(NumBases))
			}
			cur.Seq = append(cur.Seq, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: reading fasta: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("dna: fasta input contains no records")
	}
	return recs, nil
}

// WriteFasta writes records to w with the given line width (60 if width<=0).
func WriteFasta(w io.Writer, recs []FastaRecord, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		s := rec.Seq.String()
		for len(s) > 0 {
			n := width
			if n > len(s) {
				n = len(s)
			}
			if _, err := bw.WriteString(s[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// FastqRecord is one read from a FASTQ file.
type FastqRecord struct {
	Name string
	Seq  Seq
	Qual []byte // Phred+33, same length as Seq
}

// ReadFastq parses all records from r. Ambiguity codes are handled per opts
// exactly as in ReadFasta.
func ReadFastq(r io.Reader, opts FastaOptions) ([]FastqRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var recs []FastqRecord
	line := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			b := bytes.TrimSpace(sc.Bytes())
			if len(b) > 0 {
				return b, true
			}
		}
		return nil, false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("dna: fastq line %d: expected @header, got %q", line, hdr)
		}
		name := string(bytes.Fields(hdr[1:])[0])
		seqLine, ok := next()
		if !ok {
			return nil, fmt.Errorf("dna: fastq: truncated record %q", name)
		}
		plus, ok := next()
		if !ok || plus[0] != '+' {
			return nil, fmt.Errorf("dna: fastq line %d: expected '+' separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("dna: fastq: missing quality for %q", name)
		}
		if len(qual) != len(seqLine) {
			return nil, fmt.Errorf("dna: fastq record %q: quality length %d != sequence length %d", name, len(qual), len(seqLine))
		}
		seq := make(Seq, len(seqLine))
		for i, ch := range seqLine {
			b, ok := BaseFromChar(ch)
			if !ok {
				if opts.ResolveN == nil {
					return nil, fmt.Errorf("dna: fastq record %q: invalid base %q", name, ch)
				}
				b = Base(opts.ResolveN.Intn(NumBases))
			}
			seq[i] = b
		}
		recs = append(recs, FastqRecord{Name: name, Seq: seq, Qual: append([]byte(nil), qual...)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: reading fastq: %w", err)
	}
	return recs, nil
}

// WriteFastq writes records to w.
func WriteFastq(w io.Writer, recs []FastqRecord) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
