// Package dna provides the DNA sequence substrate shared by the whole
// repository: the 2-bit base alphabet, packed and unpacked sequence types,
// reverse complement, k-mer encoding, and FASTA/FASTQ input and output.
//
// Every higher layer (the Silla automata, the seeding accelerator, the
// Smith-Waterman baselines, the read simulator) works on []Base values so
// that comparisons are single-byte equality checks, exactly like the 2-bit
// comparators in the GenAx hardware.
package dna

import "fmt"

// Base is a single nucleotide encoded in two bits: A=0, C=1, G=2, T=3.
// The zero value is 'A'.
type Base byte

// The four nucleotides.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

var baseToChar = [NumBases]byte{'A', 'C', 'G', 'T'}

// charToBase maps ASCII to Base; 0xFF marks invalid characters.
var charToBase [256]byte

func init() {
	for i := range charToBase {
		charToBase[i] = 0xFF
	}
	for b, c := range baseToChar {
		charToBase[c] = byte(b)
		charToBase[c+'a'-'A'] = byte(b)
	}
}

// Char returns the upper-case ASCII letter for b.
func (b Base) Char() byte { return baseToChar[b&3] }

// String implements fmt.Stringer.
func (b Base) String() string { return string(baseToChar[b&3]) }

// Complement returns the Watson-Crick complement (A<->T, C<->G).
// With the 2-bit encoding this is simply the bitwise NOT of the low bits.
func (b Base) Complement() Base { return b ^ 3 }

// BaseFromChar converts an ASCII nucleotide letter (either case) to a Base.
// It reports ok=false for any character outside ACGTacgt (including 'N').
func BaseFromChar(c byte) (Base, bool) {
	v := charToBase[c]
	if v == 0xFF {
		return 0, false
	}
	return Base(v), true
}

// Seq is an unpacked DNA sequence, one Base per byte. It is the working
// representation used throughout the aligners; Packed (2 bits/base) is used
// where memory footprint matters (reference storage).
type Seq []Base

// ParseSeq converts an ASCII string to a Seq. Characters outside ACGT
// (case-insensitive) cause an error identifying the offending position.
func ParseSeq(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		b, ok := BaseFromChar(s[i])
		if !ok {
			return nil, fmt.Errorf("dna: invalid base %q at position %d", s[i], i)
		}
		out[i] = b
	}
	return out, nil
}

// MustParseSeq is ParseSeq that panics on error; intended for tests and
// example programs with literal inputs.
func MustParseSeq(s string) Seq {
	q, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the sequence as ASCII.
func (s Seq) String() string {
	out := make([]byte, len(s))
	for i, b := range s {
		out[i] = b.Char()
	}
	return string(out)
}

// Clone returns a copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// RevComp returns the reverse complement of s as a new sequence.
func (s Seq) RevComp() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}

// Equal reports whether two sequences are identical.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Reverse returns the plain reversal of s (no complementing) — used when a
// left extension is run on reversed strings.
func (s Seq) Reverse() Seq {
	return AppendReverse(make(Seq, 0, len(s)), s)
}

// AppendReverse appends the plain reversal of s to dst and returns the
// extended slice, letting hot paths reverse into a reused scratch buffer.
func AppendReverse(dst, s Seq) Seq {
	for i := len(s) - 1; i >= 0; i-- {
		dst = append(dst, s[i])
	}
	return dst
}

// AppendRevComp appends the reverse complement of s to dst and returns the
// extended slice — the scratch-reusing form of RevComp for hot paths that
// complement many reads into one backing buffer.
func AppendRevComp(dst, s Seq) Seq {
	for i := len(s) - 1; i >= 0; i-- {
		dst = append(dst, s[i].Complement())
	}
	return dst
}
