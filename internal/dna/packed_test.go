package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 1000} {
		s := randSeq(r, n)
		p := PackSeq(s)
		if p.Len() != n {
			t.Fatalf("Len = %d, want %d", p.Len(), n)
		}
		if !p.Unpack().Equal(s) {
			t.Fatalf("n=%d: Unpack mismatch", n)
		}
		for i := 0; i < n; i++ {
			if p.At(i) != s[i] {
				t.Fatalf("n=%d: At(%d) = %v, want %v", n, i, p.At(i), s[i])
			}
		}
	}
}

func TestPackedSliceClamping(t *testing.T) {
	s := MustParseSeq("ACGTACGT")
	p := PackSeq(s)
	cases := []struct {
		lo, hi int
		want   string
	}{
		{0, 8, "ACGTACGT"},
		{2, 5, "GTA"},
		{-5, 3, "ACG"},
		{6, 100, "GT"},
		{5, 5, ""},
		{7, 2, ""},
		{-10, -5, ""},
	}
	for _, c := range cases {
		got := p.Slice(c.lo, c.hi).String()
		if got != c.want {
			t.Errorf("Slice(%d,%d) = %q, want %q", c.lo, c.hi, got, c.want)
		}
	}
}

func TestPackedAtPanics(t *testing.T) {
	p := PackSeq(MustParseSeq("ACGT"))
	for _, i := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			p.At(i)
		}()
	}
}

func TestPackedSizeBytes(t *testing.T) {
	if got := PackSeq(make(Seq, 64)).SizeBytes(); got != 16 {
		t.Errorf("SizeBytes(64 bases) = %d, want 16", got)
	}
	if got := PackSeq(make(Seq, 65)).SizeBytes(); got != 24 {
		t.Errorf("SizeBytes(65 bases) = %d, want 24", got)
	}
}

func TestPackedRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(n uint16) bool {
		s := randSeq(r, int(n)%2048)
		return PackSeq(s).Unpack().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
