package dna

import "fmt"

// Kmer is a k-mer encoded as an integer: base j of the k-mer occupies bits
// 2*(k-1-j) .. 2*(k-1-j)+1, i.e. the first base is the most significant
// pair, so integer order equals lexicographic order. This is the key format
// of the GenAx index table (k = 12 in the paper, 4^12 = 16.7M entries).
type Kmer uint64

// MaxK is the largest supported k (2 bits per base in a uint64).
const MaxK = 31

// KmerCodec encodes and decodes k-mers for a fixed k.
type KmerCodec struct {
	k    int
	mask Kmer
}

// NewKmerCodec returns a codec for k-mers of length k (1 <= k <= MaxK).
func NewKmerCodec(k int) (*KmerCodec, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("dna: k-mer length %d out of range [1,%d]", k, MaxK)
	}
	return &KmerCodec{k: k, mask: Kmer(1)<<(2*uint(k)) - 1}, nil
}

// K returns the k-mer length.
func (c *KmerCodec) K() int { return c.k }

// NumKmers returns 4^k, the number of distinct k-mers (index table size).
func (c *KmerCodec) NumKmers() int { return 1 << (2 * uint(c.k)) }

// Encode encodes s[pos:pos+k]. It reports ok=false when the window does not
// fit inside s.
func (c *KmerCodec) Encode(s Seq, pos int) (Kmer, bool) {
	if pos < 0 || pos+c.k > len(s) {
		return 0, false
	}
	var km Kmer
	for _, b := range s[pos : pos+c.k] {
		km = km<<2 | Kmer(b&3)
	}
	return km, true
}

// Decode expands a k-mer back into a sequence.
func (c *KmerCodec) Decode(km Kmer) Seq {
	out := make(Seq, c.k)
	for j := c.k - 1; j >= 0; j-- {
		out[j] = Base(km & 3)
		km >>= 2
	}
	return out
}

// Roll extends a previous encoding by one base to the right: given the
// k-mer for s[pos:pos+k], it returns the k-mer for s[pos+1:pos+1+k] when
// next is s[pos+k]. This is the rolling form used when scanning a segment
// to build the index table in a single pass.
func (c *KmerCodec) Roll(prev Kmer, next Base) Kmer {
	return (prev<<2 | Kmer(next&3)) & c.mask
}

// AppendScan appends the encodings of every k-length window of s to dst —
// dst[i] is the k-mer of s[i:i+k] — and returns the extended slice. The
// whole scan is one Encode plus one Roll per remaining base, so callers
// that probe many windows of the same sequence (the seeding lanes, the
// index builder) pay O(len(s)) once instead of O(k) per probe. A sequence
// shorter than k appends nothing.
//
//genax:hotpath
func (c *KmerCodec) AppendScan(dst []Kmer, s Seq) []Kmer {
	if len(s) < c.k {
		return dst
	}
	km, _ := c.Encode(s, 0)
	dst = append(dst, km)
	for p := c.k; p < len(s); p++ {
		km = c.Roll(km, s[p])
		dst = append(dst, km)
	}
	return dst
}
