package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/indexio"
	"genax/internal/seed"
)

// IndexRun is one index-backing mode's measurement: the cold start (file
// on disk to ready-to-align aligner), the aligned-workload wall clock, the
// phase's peak resident set, and the shared result digest. Backing is
// "heap" (full deserialization via indexio.ReadFile), "mapped" (zero-copy
// indexio.OpenMapped), or "sharded" (mapped plus a one-group
// indexio.ShardResidency bound).
type IndexRun struct {
	Backing      string        `json:"backing"`
	ColdStart    time.Duration `json:"cold_start_ns"`
	Wall         time.Duration `json:"wall_ns"`
	PeakRSSBytes int64         `json:"peak_rss_bytes"`
	Aligned      int           `json:"aligned"`
	IndexLookups int64         `json:"index_lookups"`
	CAMLookups   int64         `json:"cam_lookups"`
	ResultHash   uint64        `json:"result_hash"`
	// MatchesBaseline reports hash and work-counter equality with the
	// heap-loaded run.
	MatchesBaseline bool `json:"matches_baseline"`
	// Residency counters (sharded run only): shard-group admissions,
	// retirements, and blocked Acquire calls.
	ResidencyAdmits int `json:"residency_admits,omitempty"`
	ResidencyDrops  int `json:"residency_drops,omitempty"`
	ResidencyWaits  int `json:"residency_waits,omitempty"`
}

// IndexComparison is the -compare-index report: one v2 cache file aligned
// through all three index backings. The mapped and sharded runs must hash
// identically to the heap baseline, and the mapped cold start must beat
// heap deserialization — that pair of gates is the tentpole's acceptance
// criterion in executable form.
type IndexComparison struct {
	Reads       int    `json:"reads"`
	Segments    int    `json:"segments"`
	ShardGroups int    `json:"shard_groups"`
	FileBytes   int64  `json:"file_bytes"`
	IndexHash   uint64 `json:"index_hash"`
	// PeakRSSSupported records whether the per-phase VmHWM reset worked;
	// when false the peak_rss_bytes fields are process-monotone (or zero)
	// and not comparable across runs.
	PeakRSSSupported  bool       `json:"peak_rss_supported"`
	Runs              []IndexRun `json:"runs"`
	MappedColdSpeedup float64    `json:"mapped_cold_speedup_vs_heap"`
	ColdStartGate     bool       `json:"mapped_cold_beats_heap"`
	ResultMatch       bool       `json:"all_backings_match"`
	ResultMismatch    string     `json:"mismatch,omitempty"`
}

// indexCompareOrder fixes the measurement sequence: the heap load runs
// first so the mapped and sharded runs can be checked against it.
var indexCompareOrder = []string{"heap", "mapped", "sharded"}

// CompareIndex builds the workload's index once, writes it to a temporary
// v2 cache file partitioned into the requested number of shard groups,
// then loads and aligns through each backing in turn — heap
// deserialization, zero-copy mapping, and mapping under a one-group
// residency bound — measuring cold-start wall time, per-phase peak RSS,
// and the result digest. Between phases the previous index is dropped and
// the heap returned to the OS so each phase's watermark is its own.
func CompareIndex(spec WorkloadSpec, shards int) (IndexComparison, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return IndexComparison{}, fmt.Errorf("bench: workload produced no reads")
	}
	cfg := CoreConfig(spec)
	out := IndexComparison{Reads: len(reads)}

	sx, err := seed.BuildSegmentedIndex(wl.Ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen)
	if err != nil {
		return IndexComparison{}, err
	}
	out.Segments = sx.NumSegments()
	out.IndexHash = sx.Hash()
	gs := indexio.GroupSizeForShards(out.Segments, shards)
	if gs > 0 {
		out.ShardGroups = (out.Segments + gs - 1) / gs
	}
	dir, err := os.MkdirTemp("", "genax-bench-index")
	if err != nil {
		return IndexComparison{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	path := filepath.Join(dir, "index-v2.gaxi")
	if err := indexio.WriteFileShards(path, sx, wl.Ref, gs); err != nil {
		return IndexComparison{}, err
	}
	if st, err := os.Stat(path); err == nil {
		out.FileBytes = st.Size()
	}
	// Drop the build-time index before measuring: the heap phase must pay
	// for its own copy, and the watermark reset below must start from a
	// heap that does not already hold the tables.
	sx = nil
	runtime.GC()
	debug.FreeOSMemory()

	out.PeakRSSSupported = resetPeakRSS()
	for _, backing := range indexCompareOrder {
		run, err := measureIndexRun(spec, wl.Ref, reads, path, backing)
		if err != nil {
			return IndexComparison{}, err
		}
		out.Runs = append(out.Runs, run)
	}
	base := out.Runs[0]
	out.ResultMatch = true
	for i := range out.Runs {
		r := &out.Runs[i]
		r.MatchesBaseline = r.ResultHash == base.ResultHash &&
			r.IndexLookups == base.IndexLookups && r.CAMLookups == base.CAMLookups
		if !r.MatchesBaseline && out.ResultMismatch == "" {
			out.ResultMatch = false
			out.ResultMismatch = fmt.Sprintf(
				"%s (hash %016x, lookups %d/%d) != heap (hash %016x, lookups %d/%d)",
				r.Backing, r.ResultHash, r.IndexLookups, r.CAMLookups,
				base.ResultHash, base.IndexLookups, base.CAMLookups)
		}
	}
	mapped := out.Runs[1]
	if mapped.ColdStart > 0 {
		out.MappedColdSpeedup = float64(base.ColdStart) / float64(mapped.ColdStart)
	}
	out.ColdStartGate = mapped.ColdStart < base.ColdStart
	return out, nil
}

// measureIndexRun loads the cache at path through one backing, aligns the
// whole workload once, and reads the phase's peak RSS. No warmup pass:
// cold start is the measurement, so the align wall clock deliberately
// includes the mapped runs' first-touch page faults. All per-phase state
// is dropped (mapping closed, heap freed back to the OS, watermark
// rearmed) before returning, so the next phase starts clean.
func measureIndexRun(spec WorkloadSpec, ref dna.Seq, reads []dna.Seq, path, backing string) (IndexRun, error) {
	cfg := CoreConfig(spec)
	run := IndexRun{Backing: backing}
	var m *indexio.Mapped
	var res *indexio.ShardResidency
	alignRef := ref
	start := time.Now()
	switch backing {
	case "heap":
		sx, err := indexio.ReadFile(path, ref)
		if err != nil {
			return IndexRun{}, err
		}
		cfg.Index = sx
	case "mapped", "sharded":
		var err error
		m, err = indexio.OpenMapped(path)
		if err != nil {
			return IndexRun{}, err
		}
		cfg.Index = m.Index()
		// Out-of-core: the aligner's reference is the mapping's own
		// bytes, no heap copy of the genome.
		alignRef = m.Ref()
		if backing == "sharded" {
			res = indexio.NewShardResidency(m, 1)
			cfg.Residency = res
		}
	default:
		return IndexRun{}, fmt.Errorf("bench: unknown index backing %q", backing)
	}
	aligner, err := core.New(alignRef, cfg)
	if err != nil {
		return IndexRun{}, err
	}
	run.ColdStart = time.Since(start)
	start = time.Now()
	results, stats := aligner.AlignBatch(reads)
	run.Wall = time.Since(start)
	run.PeakRSSBytes = peakRSSBytes()
	run.ResultHash, run.Aligned = digestResults(results)
	run.IndexLookups, run.CAMLookups = stats.IndexLookups, stats.CAMLookups
	if res != nil {
		run.ResidencyAdmits, run.ResidencyDrops, run.ResidencyWaits = res.Stats()
	}
	if m != nil {
		// AlignBatch has returned, so every lane has drained and the
		// borrowed views are dead — the mapping may be unmapped.
		if err := m.Close(); err != nil {
			return IndexRun{}, err
		}
	}
	cfg.Index = nil
	runtime.GC()
	debug.FreeOSMemory()
	resetPeakRSS()
	return run, nil
}

func (c IndexComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "index-backing comparison (%d reads; cache %d MiB, %d segments in %d shard groups)\n",
		c.Reads, c.FileBytes>>20, c.Segments, c.ShardGroups)
	fmt.Fprintf(&b, "%-8s %12s %12s %10s %8s %12s %16s %9s\n",
		"backing", "coldstart", "wall", "peakrss", "aligned", "idxlookups", "resulthash", "=heap")
	for _, r := range c.Runs {
		rss := "n/a"
		if r.PeakRSSBytes > 0 {
			rss = fmt.Sprintf("%d MiB", r.PeakRSSBytes>>20)
		}
		fmt.Fprintf(&b, "%-8s %12v %12v %10s %8d %12d %016x %9v\n",
			r.Backing, r.ColdStart.Round(time.Microsecond), r.Wall.Round(time.Microsecond),
			rss, r.Aligned, r.IndexLookups, r.ResultHash, r.MatchesBaseline)
	}
	if !c.PeakRSSSupported {
		b.WriteString("peak RSS: per-phase watermark reset unavailable (non-Linux /proc); values are process-wide\n")
	}
	if sharded := c.Runs[len(c.Runs)-1]; sharded.Backing == "sharded" {
		fmt.Fprintf(&b, "sharded residency: %d admits, %d drops, %d blocked acquires\n",
			sharded.ResidencyAdmits, sharded.ResidencyDrops, sharded.ResidencyWaits)
	}
	fmt.Fprintf(&b, "mapped cold start %.2fx vs heap deserialization (gate passes: %v)\n",
		c.MappedColdSpeedup, c.ColdStartGate)
	if c.ResultMatch {
		b.WriteString("mapped and sharded results and work counters are identical to the heap baseline")
	} else {
		b.WriteString("MISMATCH: " + c.ResultMismatch)
	}
	return b.String()
}
