package bench

import (
	"fmt"
	"strings"
	"time"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/hw"
	"genax/internal/sillax"
	"genax/internal/sw"
)

// Fig14Result compares raw seed-extension throughput (Khits/s): the SillaX
// model against measured software baselines, anchored by the paper's bars.
type Fig14Result struct {
	// Measured on this machine (single Go thread).
	BandedSWKhits float64
	FullSWKhits   float64
	MyersKhits    float64 // edit distance only, no traceback
	// SillaX model: 4 lanes at 2 GHz retiring the measured average
	// cycles per traced extension.
	AvgExtensionCycles float64
	SillaXModelKhits   float64
	// Paper anchors.
	PaperSillaXKhits  float64
	PaperSeqAnKhits   float64
	PaperSWSharpKhits float64
}

// extPair is one (reference window, read) extension job.
type extPair struct{ ref, query dna.Seq }

func fig14Pairs(spec WorkloadSpec, n int) []extPair {
	wl := spec.Build()
	var pairs []extPair
	for _, rd := range wl.Reads {
		if len(pairs) >= n {
			break
		}
		q := rd.Seq
		if rd.Reverse {
			q = q.RevComp()
		}
		hi := rd.TruePos + len(q) + 40
		if hi > len(wl.Ref) {
			hi = len(wl.Ref)
		}
		pairs = append(pairs, extPair{wl.Ref[rd.TruePos:hi], q})
	}
	return pairs
}

// Fig14 measures each engine on the same 101 bp extension jobs.
func Fig14(spec WorkloadSpec, n int) Fig14Result {
	if n <= 0 {
		n = 2000
	}
	pairs := fig14Pairs(spec, n)
	sc := align.BWAMEMDefaults()

	rate := func(f func(p extPair)) float64 {
		start := time.Now()
		for _, p := range pairs {
			f(p)
		}
		el := time.Since(start).Seconds()
		if el <= 0 {
			return 0
		}
		return float64(len(pairs)) / el / 1e3
	}

	banded := sw.NewBandedAligner(sc, 40)
	full := sw.NewAligner(sc)
	tm := sillax.NewTracebackMachine(40, sc)

	res := Fig14Result{
		PaperSillaXKhits:  hw.SillaXPaperKHitsPerSec,
		PaperSeqAnKhits:   hw.SeqAnCPUKHitsPerSec,
		PaperSWSharpKhits: hw.SWSharpGPUKHitsPerSec,
	}
	res.BandedSWKhits = rate(func(p extPair) { banded.Extend(p.ref, p.query) })
	res.FullSWKhits = rate(func(p extPair) { full.Align(p.ref, p.query, sw.Extend) })
	res.MyersKhits = rate(func(p extPair) { sw.MyersDistance(p.ref, p.query) })

	var cycles int64
	for _, p := range pairs {
		out := tm.Extend(p.ref, p.query)
		cycles += int64(out.Cycles)
	}
	res.AvgExtensionCycles = float64(cycles) / float64(len(pairs))
	res.SillaXModelKhits = hw.DefaultChip().SillaXRawThroughput(res.AvgExtensionCycles) / 1e3
	return res
}

// String renders the figure.
func (r Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: seed-extension throughput (Khits/s), 101 bp reads, K=40\n")
	fmt.Fprintf(&b, "%-28s %12s\n", "engine", "Khits/s")
	fmt.Fprintf(&b, "%-28s %12.1f   (measured, 1 Go thread)\n", "banded SW (SeqAn role)", r.BandedSWKhits)
	fmt.Fprintf(&b, "%-28s %12.1f   (measured, 1 Go thread)\n", "full SW", r.FullSWKhits)
	fmt.Fprintf(&b, "%-28s %12.1f   (measured, edit dist only)\n", "Myers bit-vector", r.MyersKhits)
	fmt.Fprintf(&b, "%-28s %12.1f   (model: 4 lanes @2GHz, %.0f cyc/hit)\n", "SillaX (4 lanes)", r.SillaXModelKhits, r.AvgExtensionCycles)
	fmt.Fprintf(&b, "paper: SillaX %.0fK | SeqAn-CPU %.0fK (62.9x under) | SW#-GPU %.1fK (5287x under)\n",
		r.PaperSillaXKhits/1e3*1e3/1e3, r.PaperSeqAnKhits, r.PaperSWSharpKhits)
	if r.BandedSWKhits > 0 {
		fmt.Fprintf(&b, "shape check: SillaX-model / banded-SW(1 thread) = %.0fx (paper: 62.9x over 28 cores ~= %.0fx over 1 core)\n",
			r.SillaXModelKhits/r.BandedSWKhits, 62.9*28.0)
	}
	return b.String()
}
