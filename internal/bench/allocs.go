package bench

import (
	"fmt"
	"runtime"

	"genax/internal/core"
)

// AllocBudgetResult reports the steady-state heap behaviour of AlignBatch.
type AllocBudgetResult struct {
	Reads         int
	AllocsPerRead float64
	Budget        float64
}

// Exceeded reports whether the measurement broke the budget (a budget of 0
// disables the check).
func (r AllocBudgetResult) Exceeded() bool {
	return r.Budget > 0 && r.AllocsPerRead > r.Budget
}

func (r AllocBudgetResult) String() string {
	verdict := "within budget"
	if r.Exceeded() {
		verdict = "OVER BUDGET"
	}
	return fmt.Sprintf("steady-state allocations: %.2f per read over %d reads (budget %.1f) — %s",
		r.AllocsPerRead, r.Reads, r.Budget, verdict)
}

// AllocsPerRead measures the steady-state heap allocations per read of the
// full AlignBatch pipeline: one warm-up batch fills every lane's scratch
// (seeder buffers, CAM, traceback arena), then a second identical batch is
// measured via the runtime's mallocs counter. The companion unit test
// (core.TestAlignBatchSteadyStateAllocs) pins the single-lane inner loop;
// this covers the whole pipeline including the pool, so its per-read number
// also carries the per-batch fixed costs (result slices, lane setup)
// amortized over the workload.
func AllocsPerRead(spec WorkloadSpec, budget float64) (AllocBudgetResult, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return AllocBudgetResult{}, fmt.Errorf("bench: workload produced no reads")
	}
	cfg := CoreConfig(spec)
	if err := spec.ApplyIndexCache(wl.Ref, &cfg); err != nil {
		return AllocBudgetResult{}, err
	}
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		return AllocBudgetResult{}, err
	}
	warm := func() {
		if res, _ := aligner.AlignBatch(reads); len(res) != len(reads) {
			panic("bench: AlignBatch dropped reads")
		}
	}
	warm() // fill lane scratch, index-side caches, and grow result buffers
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	warm()
	runtime.ReadMemStats(&after)
	perRead := float64(after.Mallocs-before.Mallocs) / float64(len(reads))
	return AllocBudgetResult{Reads: len(reads), AllocsPerRead: perRead, Budget: budget}, nil
}
