package bench

import (
	"fmt"
	"strings"

	"genax/internal/hw"
)

// Fig12Result is the per-PE area/power frequency sweep of Figure 12.
type Fig12Result struct {
	Edit, Traceback []hw.SweepPoint
}

// Fig12 evaluates the hardware model sweep.
func Fig12() Fig12Result {
	return Fig12Result{
		Edit:      hw.FrequencySweep(hw.EditPE, 1, 8, 0.5),
		Traceback: hw.FrequencySweep(hw.TracebackPE, 1, 8, 0.5),
	}
}

// String renders the figure as a table with the paper's anchor points.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: SillaX per-PE area and power vs frequency (28 nm model)\n")
	fmt.Fprintf(&b, "%-8s %-14s %-14s %-14s %-14s\n", "GHz", "edit µm²", "edit µW", "tb µm²", "tb µW")
	for i := range r.Edit {
		mark := " "
		if r.Edit[i].Optimal {
			mark = "*" // the paper's 2 GHz inflection point
		}
		fmt.Fprintf(&b, "%-7.1f%s %-14.2f %-14.2f %-14.1f %-14.1f\n",
			r.Edit[i].GHz, mark, r.Edit[i].AreaUm2, r.Edit[i].PowerUw,
			r.Traceback[i].AreaUm2, r.Traceback[i].PowerUw)
	}
	fmt.Fprintf(&b, "paper anchors: edit machine @2GHz = 0.012 mm²/0.047 W (K=40);\n")
	fmt.Fprintf(&b, "  traceback @2GHz = 1.41 mm²/1.54 W; edit PE @5GHz = 9.7 µm² (30x under banded-SW's 300 µm²)\n")
	fmt.Fprintf(&b, "model: edit machine @2GHz = %.4f mm²/%.4f W; traceback = %.3f mm²/%.3f W; edit PE @5GHz = %.2f µm²\n",
		hw.MachineArea(hw.EditPE, 40, 2), hw.MachinePower(hw.EditPE, 40, 2),
		hw.MachineArea(hw.TracebackPE, 40, 2), hw.MachinePower(hw.TracebackPE, 40, 2),
		hw.PEArea(hw.EditPE, 5))
	return b.String()
}
