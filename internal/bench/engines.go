package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/extend"
)

// RoutingRow is one cascade leg's traffic in an EngineRun.
type RoutingRow struct {
	Leg         string `json:"leg"`
	Routed      int64  `json:"routed"`
	Accepted    int64  `json:"accepted"`
	FellThrough int64  `json:"fell_through"`
}

// EngineRun is one extension engine's measurement over the workload: a
// warmed AlignBatch timed wall-clock, the extend stage's busy time from
// the injected instrument, steady-state allocations per read, and an
// FNV-1a digest of every read's (aligned, position, score, strand, cigar)
// tuple so result equality across engines is a single comparison. For the
// cascading engines Routing records the per-leg histogram of the timed
// batch.
type EngineRun struct {
	Engine        string        `json:"engine"`
	Wall          time.Duration `json:"wall_ns"`
	ExtendBusy    time.Duration `json:"extend_busy_ns"`
	AllocsPerRead float64       `json:"allocs_per_read"`
	Aligned       int           `json:"aligned"`
	ResultHash    uint64        `json:"result_hash"`
	// MatchesOracle reports hash equality with the cycle-level run.
	MatchesOracle bool         `json:"matches_oracle"`
	Routing       []RoutingRow `json:"routing,omitempty"`
}

// EngineComparison is the -compare-engines report: the same workload
// through every engine, with speedups quoted against the cycle-level
// oracle and the cascade quoted against the production bitsilla default.
// bitsilla, genasm and cascade all claim byte-identity with the oracle and
// the run fails on any divergence; the banded software baseline is
// included for scale but has different alignment semantics, so its hash
// legitimately differs.
type EngineComparison struct {
	Reads         int         `json:"reads"`
	Runs          []EngineRun `json:"runs"`
	ExtendSpeedup float64     `json:"extend_speedup_bitsilla_vs_sillax"`
	EndToEndGain  float64     `json:"end_to_end_speedup_bitsilla_vs_sillax"`
	// CascadeExtendSpeedup and CascadeEndToEndGain quote the adaptive
	// cascade against pure bitsilla — the headline number of the engine
	// cascade: identical output, cheaper extend stage.
	CascadeExtendSpeedup float64 `json:"extend_speedup_cascade_vs_bitsilla"`
	CascadeEndToEndGain  float64 `json:"end_to_end_speedup_cascade_vs_bitsilla"`
	// OracleMatch reports that every identity-claiming engine (bitsilla,
	// genasm, cascade) hashed identically to the cycle-level oracle.
	OracleMatch    bool   `json:"identity_engines_match_oracle"`
	OracleMismatch string `json:"mismatch,omitempty"`
}

// compareOrder fixes the measurement sequence (oracle first so later runs
// can be checked against it).
var compareOrder = []core.Engine{
	core.EngineSillaX,
	core.EngineBitSilla,
	core.EngineGenasm,
	core.EngineCascade,
	core.EngineBanded,
}

// identityEngines are the runs whose result hash must equal the oracle's.
var identityEngines = []core.Engine{core.EngineBitSilla, core.EngineGenasm, core.EngineCascade}

// CompareEngines runs the workload through each extension engine and
// reports wall clock, extend-stage busy time, allocation behaviour and
// result digests. This is the acceptance harness for the bit-vector
// engines and the cascade: same results as the cycle model, at a fraction
// of the extend time.
func CompareEngines(spec WorkloadSpec) (EngineComparison, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return EngineComparison{}, fmt.Errorf("bench: workload produced no reads")
	}
	out := EngineComparison{Reads: len(reads)}
	for _, eng := range compareOrder {
		run, err := measureEngine(spec, wl.Ref, reads, eng)
		if err != nil {
			return EngineComparison{}, err
		}
		out.Runs = append(out.Runs, run)
	}
	oracle := out.Runs[0]
	for i := range out.Runs {
		out.Runs[i].MatchesOracle = out.Runs[i].ResultHash == oracle.ResultHash
	}
	out.OracleMatch = true
	var mismatches []string
	for _, eng := range identityEngines {
		r := out.findRun(string(eng))
		if r == nil || r.ResultHash != oracle.ResultHash {
			out.OracleMatch = false
			hash := uint64(0)
			if r != nil {
				hash = r.ResultHash
			}
			mismatches = append(mismatches, fmt.Sprintf("%s hash %016x != sillax hash %016x", eng, hash, oracle.ResultHash))
		}
	}
	out.OracleMismatch = strings.Join(mismatches, "; ")
	bit := out.findRun(string(core.EngineBitSilla))
	cas := out.findRun(string(core.EngineCascade))
	if bit != nil && bit.ExtendBusy > 0 {
		out.ExtendSpeedup = float64(oracle.ExtendBusy) / float64(bit.ExtendBusy)
	}
	if bit != nil && bit.Wall > 0 {
		out.EndToEndGain = float64(oracle.Wall) / float64(bit.Wall)
	}
	if bit != nil && cas != nil && cas.ExtendBusy > 0 {
		out.CascadeExtendSpeedup = float64(bit.ExtendBusy) / float64(cas.ExtendBusy)
	}
	if bit != nil && cas != nil && cas.Wall > 0 {
		out.CascadeEndToEndGain = float64(bit.Wall) / float64(cas.Wall)
	}
	return out, nil
}

// findRun returns the named run, or nil.
func (c *EngineComparison) findRun(engine string) *EngineRun {
	for i := range c.Runs {
		if c.Runs[i].Engine == engine {
			return &c.Runs[i]
		}
	}
	return nil
}

// measureEngine builds an instrumented aligner for one engine, warms the
// lane scratch with a throwaway batch, then times a second identical batch.
func measureEngine(spec WorkloadSpec, ref dna.Seq, reads []dna.Seq, eng core.Engine) (EngineRun, error) {
	cfg := CoreConfig(spec)
	cfg.Engine = eng
	inst := &core.Instrument{Now: func() int64 { return time.Now().UnixNano() }}
	cfg.Instrument = inst
	if err := spec.ApplyIndexCache(ref, &cfg); err != nil {
		return EngineRun{}, err
	}
	aligner, err := core.New(ref, cfg)
	if err != nil {
		return EngineRun{}, err
	}
	if res, _ := aligner.AlignBatch(reads); len(res) != len(reads) {
		return EngineRun{}, fmt.Errorf("bench: AlignBatch dropped reads")
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	busy0 := inst.Extend.BusyNanos.Load()
	start := time.Now()
	results, stats := aligner.AlignBatch(reads)
	wall := time.Since(start)
	busy := inst.Extend.BusyNanos.Load() - busy0
	runtime.ReadMemStats(&after)

	hash, aligned := digestResults(results)
	return EngineRun{
		Engine:        string(eng),
		Wall:          wall,
		ExtendBusy:    time.Duration(busy),
		AllocsPerRead: float64(after.Mallocs-before.Mallocs) / float64(len(reads)),
		Aligned:       aligned,
		ResultHash:    hash,
		Routing:       routingRows(stats.Routing),
	}, nil
}

// routingRows flattens a nonzero routing histogram into report rows in
// fixed leg order; an all-zero histogram (non-cascading engine) yields nil.
func routingRows(r extend.Routing) []RoutingRow {
	if r == (extend.Routing{}) {
		return nil
	}
	rows := make([]RoutingRow, 0, int(extend.NumLegs))
	for l := extend.Leg(0); l < extend.NumLegs; l++ {
		s := r.Legs[l]
		rows = append(rows, RoutingRow{
			Leg:         l.String(),
			Routed:      s.Routed,
			Accepted:    s.Accepted,
			FellThrough: s.FellThrough,
		})
	}
	return rows
}

// digestResults folds every read's (aligned, position, score, strand,
// cigar) tuple into one FNV-1a digest and counts the aligned reads, so
// result equality across engines or scan modes is a single comparison.
func digestResults(results []core.ReadResult) (hash uint64, aligned int) {
	h := fnv.New64a()
	var buf [8]byte
	for _, rr := range results {
		if !rr.Aligned {
			_, _ = h.Write([]byte{0})
			continue
		}
		aligned++
		_, _ = h.Write([]byte{1})
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(rr.Result.RefPos)))
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(rr.Result.Score)))
		_, _ = h.Write(buf[:])
		if rr.Result.Reverse {
			_, _ = h.Write([]byte{1})
		} else {
			_, _ = h.Write([]byte{0})
		}
		_, _ = h.Write([]byte(rr.Result.Cigar.String()))
	}
	return h.Sum64(), aligned
}

func (c EngineComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "extension-engine comparison (%d reads)\n", c.Reads)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %8s %16s %7s\n",
		"engine", "wall", "extendbusy", "allocs/read", "aligned", "resulthash", "=oracle")
	for _, r := range c.Runs {
		fmt.Fprintf(&b, "%-10s %12v %12v %12.2f %8d %016x %7v\n",
			r.Engine, r.Wall.Round(time.Microsecond), r.ExtendBusy.Round(time.Microsecond),
			r.AllocsPerRead, r.Aligned, r.ResultHash, r.MatchesOracle)
	}
	for _, r := range c.Runs {
		if len(r.Routing) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s routing (extensions routed/accepted/fell-through per leg):\n", r.Engine)
		for _, row := range r.Routing {
			fmt.Fprintf(&b, "  %-10s %10d %10d %10d\n", row.Leg, row.Routed, row.Accepted, row.FellThrough)
		}
	}
	fmt.Fprintf(&b, "bitsilla vs sillax: extend stage %.2fx, end to end %.2fx\n",
		c.ExtendSpeedup, c.EndToEndGain)
	fmt.Fprintf(&b, "cascade vs bitsilla: extend stage %.2fx, end to end %.2fx\n",
		c.CascadeExtendSpeedup, c.CascadeEndToEndGain)
	if c.OracleMatch {
		b.WriteString("bitsilla, genasm and cascade results are byte-identical to the cycle-level oracle")
	} else {
		b.WriteString("MISMATCH: " + c.OracleMismatch)
	}
	return b.String()
}
