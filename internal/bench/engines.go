package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
)

// EngineRun is one extension engine's measurement over the workload: a
// warmed AlignBatch timed wall-clock, the extend stage's busy time from
// the injected instrument, steady-state allocations per read, and an
// FNV-1a digest of every read's (aligned, position, score, strand, cigar)
// tuple so result equality across engines is a single comparison.
type EngineRun struct {
	Engine        string        `json:"engine"`
	Wall          time.Duration `json:"wall_ns"`
	ExtendBusy    time.Duration `json:"extend_busy_ns"`
	AllocsPerRead float64       `json:"allocs_per_read"`
	Aligned       int           `json:"aligned"`
	ResultHash    uint64        `json:"result_hash"`
	// MatchesOracle reports hash equality with the cycle-level run.
	MatchesOracle bool `json:"matches_oracle"`
}

// EngineComparison is the -compare-engines report: the same workload
// through every engine, with speedups quoted against the cycle-level
// oracle. The bit-parallel engine must hash identically to the oracle;
// the banded software baseline is included for scale but has different
// alignment semantics, so its hash legitimately differs.
type EngineComparison struct {
	Reads          int         `json:"reads"`
	Runs           []EngineRun `json:"runs"`
	ExtendSpeedup  float64     `json:"extend_speedup_bitsilla_vs_sillax"`
	EndToEndGain   float64     `json:"end_to_end_speedup_bitsilla_vs_sillax"`
	OracleMatch    bool        `json:"bitsilla_matches_oracle"`
	OracleMismatch string      `json:"mismatch,omitempty"`
}

// compareOrder fixes the measurement sequence (oracle first so later runs
// can be checked against it).
var compareOrder = []core.Engine{core.EngineSillaX, core.EngineBitSilla, core.EngineBanded}

// CompareEngines runs the workload through each extension engine and
// reports wall clock, extend-stage busy time, allocation behaviour and
// result digests. This is the acceptance harness for the bit-parallel
// engine: same results as the cycle model, at a fraction of the extend
// time.
func CompareEngines(spec WorkloadSpec) (EngineComparison, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return EngineComparison{}, fmt.Errorf("bench: workload produced no reads")
	}
	out := EngineComparison{Reads: len(reads)}
	for _, eng := range compareOrder {
		run, err := measureEngine(spec, wl.Ref, reads, eng)
		if err != nil {
			return EngineComparison{}, err
		}
		out.Runs = append(out.Runs, run)
	}
	oracle, bit := out.Runs[0], out.Runs[1]
	for i := range out.Runs {
		out.Runs[i].MatchesOracle = out.Runs[i].ResultHash == oracle.ResultHash
	}
	out.OracleMatch = bit.ResultHash == oracle.ResultHash
	if !out.OracleMatch {
		out.OracleMismatch = fmt.Sprintf("bitsilla hash %016x != sillax hash %016x", bit.ResultHash, oracle.ResultHash)
	}
	if bit.ExtendBusy > 0 {
		out.ExtendSpeedup = float64(oracle.ExtendBusy) / float64(bit.ExtendBusy)
	}
	if bit.Wall > 0 {
		out.EndToEndGain = float64(oracle.Wall) / float64(bit.Wall)
	}
	return out, nil
}

// measureEngine builds an instrumented aligner for one engine, warms the
// lane scratch with a throwaway batch, then times a second identical batch.
func measureEngine(spec WorkloadSpec, ref dna.Seq, reads []dna.Seq, eng core.Engine) (EngineRun, error) {
	cfg := CoreConfig(spec)
	cfg.Engine = eng
	inst := &core.Instrument{Now: func() int64 { return time.Now().UnixNano() }}
	cfg.Instrument = inst
	if err := spec.ApplyIndexCache(ref, &cfg); err != nil {
		return EngineRun{}, err
	}
	aligner, err := core.New(ref, cfg)
	if err != nil {
		return EngineRun{}, err
	}
	if res, _ := aligner.AlignBatch(reads); len(res) != len(reads) {
		return EngineRun{}, fmt.Errorf("bench: AlignBatch dropped reads")
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	busy0 := inst.Extend.BusyNanos.Load()
	start := time.Now()
	results, _ := aligner.AlignBatch(reads)
	wall := time.Since(start)
	busy := inst.Extend.BusyNanos.Load() - busy0
	runtime.ReadMemStats(&after)

	hash, aligned := digestResults(results)
	return EngineRun{
		Engine:        string(eng),
		Wall:          wall,
		ExtendBusy:    time.Duration(busy),
		AllocsPerRead: float64(after.Mallocs-before.Mallocs) / float64(len(reads)),
		Aligned:       aligned,
		ResultHash:    hash,
	}, nil
}

// digestResults folds every read's (aligned, position, score, strand,
// cigar) tuple into one FNV-1a digest and counts the aligned reads, so
// result equality across engines or scan modes is a single comparison.
func digestResults(results []core.ReadResult) (hash uint64, aligned int) {
	h := fnv.New64a()
	var buf [8]byte
	for _, rr := range results {
		if !rr.Aligned {
			_, _ = h.Write([]byte{0})
			continue
		}
		aligned++
		_, _ = h.Write([]byte{1})
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(rr.Result.RefPos)))
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(rr.Result.Score)))
		_, _ = h.Write(buf[:])
		if rr.Result.Reverse {
			_, _ = h.Write([]byte{1})
		} else {
			_, _ = h.Write([]byte{0})
		}
		_, _ = h.Write([]byte(rr.Result.Cigar.String()))
	}
	return h.Sum64(), aligned
}

func (c EngineComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "extension-engine comparison (%d reads)\n", c.Reads)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %8s %16s %7s\n",
		"engine", "wall", "extendbusy", "allocs/read", "aligned", "resulthash", "=oracle")
	for _, r := range c.Runs {
		fmt.Fprintf(&b, "%-10s %12v %12v %12.2f %8d %016x %7v\n",
			r.Engine, r.Wall.Round(time.Microsecond), r.ExtendBusy.Round(time.Microsecond),
			r.AllocsPerRead, r.Aligned, r.ResultHash, r.MatchesOracle)
	}
	fmt.Fprintf(&b, "bitsilla vs sillax: extend stage %.2fx, end to end %.2fx\n",
		c.ExtendSpeedup, c.EndToEndGain)
	if c.OracleMatch {
		b.WriteString("bitsilla results are byte-identical to the cycle-level oracle")
	} else {
		b.WriteString("MISMATCH: " + c.OracleMismatch)
	}
	return b.String()
}
