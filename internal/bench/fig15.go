package bench

import (
	"fmt"
	"strings"
	"time"

	"genax/internal/bwamem"
	"genax/internal/core"
	"genax/internal/hw"
)

// Fig15Result is the end-to-end comparison: GenAx model throughput versus
// the measured software pipeline and the paper's published bars, plus the
// Fig 15b power comparison.
type Fig15Result struct {
	// Profile measured from the pipeline simulation.
	Profile hw.PipelineProfile
	Stats   core.Stats
	// Model output at paper scale (787,265,109 reads, 512 segments).
	Model hw.ThroughputReport
	// Software baseline measured in Go on this machine, single thread,
	// and its extrapolation to the paper's 56 threads.
	SWReadsPerSec   float64
	SW56ReadsPerSec float64
	// Power (Fig 15b).
	GenAxPowerW float64
	// Lanes is the Fig 11 scheduling simulation at measured scale.
	Lanes hw.LaneReport
}

// Fig15 runs the GenAx pipeline simulation to extract the per-read work
// coefficients, feeds them to the hardware throughput model, and measures
// the software baseline on the same reads.
func Fig15(spec WorkloadSpec) Fig15Result {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	cfg := CoreConfig(spec)
	// The throughput model consumes cycles-per-extension including the
	// §IV-C re-runs, which only the cycle-level machine counts.
	cfg.Engine = core.EngineSillaX
	if err := spec.ApplyIndexCache(wl.Ref, &cfg); err != nil {
		panic(err)
	}
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		panic(err)
	}
	_, stats, work := aligner.AlignBatchTraced(reads)

	nonExact := float64(stats.Reads - stats.ExactReads)
	if nonExact < 1 {
		nonExact = 1
	}
	// Seeding cost splits into "miss" segments — the read's k-mers find
	// nothing, costing one index lookup for the first exact-path window
	// plus one per RMEM pivot, on both strands — and the (roughly one)
	// "hit" segment carrying all the CAM work. Measuring at our small
	// segment count and separating the two lets the model extrapolate to
	// the paper's 512 segments without inflating the miss cost.
	missOps := 2 * float64(spec.ReadLen-cfg.KmerLen+2)
	totalOpsPerRead := float64(stats.IndexLookups+stats.CAMLookups) / float64(stats.Reads)
	hitOps := totalOpsPerRead - float64(stats.Segments-1)*missOps
	if hitOps < missOps {
		hitOps = missOps
	}
	chip := hw.DefaultChip()
	paperSegs := float64(chip.SegmentCount)
	prof := hw.PipelineProfile{
		ReadLen:                  spec.ReadLen,
		ExactFraction:            float64(stats.ExactReads) / float64(stats.Reads),
		SeedingOpsPerReadSegment: ((paperSegs-1)*missOps + hitOps) / paperSegs,
		ExtensionsPerRead:        float64(stats.Extensions) / nonExact,
		ExtensionCycles:          float64(stats.ExtensionCycles) / maxf(1, float64(stats.Extensions)),
	}
	model := chip.Throughput(prof, 787265109)

	// Software baseline on the same workload.
	bw := bwamem.New(wl.Ref, bwamem.Options{
		Scoring: cfg.Scoring, Band: cfg.K, MinSeedLen: cfg.Seeding.MinSeedLen,
		MaxHits: 512, MinScore: cfg.MinScore,
	})
	n := len(reads)
	if n > 2000 {
		n = 2000
	}
	start := time.Now()
	for _, r := range reads[:n] {
		bw.Align(r)
	}
	el := time.Since(start).Seconds()
	swRate := float64(n) / el

	return Fig15Result{
		Profile:         prof,
		Stats:           stats,
		Model:           model,
		SWReadsPerSec:   swRate,
		SW56ReadsPerSec: swRate * 28, // two 14-core sockets, HT discounted
		GenAxPowerW:     chip.TotalPowerW(),
		Lanes:           hw.SimulateLanes(chip, work),
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the figure.
func (r Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15a: end-to-end read-alignment throughput (KReads/s)\n")
	fmt.Fprintf(&b, "measured pipeline profile: exact=%.1f%%, seedOps/read/segment=%.1f, ext/read=%.2f, cyc/ext=%.0f\n",
		100*r.Profile.ExactFraction, r.Profile.SeedingOpsPerReadSegment, r.Profile.ExtensionsPerRead, r.Profile.ExtensionCycles)
	fmt.Fprintf(&b, "%-24s %14s\n", "system", "KReads/s")
	fmt.Fprintf(&b, "%-24s %14.0f   (model at paper scale; bottleneck: %s)\n", "GenAx (model)", r.Model.ReadsPerSec/1e3, r.Model.Bottleneck)
	fmt.Fprintf(&b, "%-24s %14.0f   (paper)\n", "GenAx (paper)", hw.GenAxPaperReadsPerSec/1e3)
	fmt.Fprintf(&b, "%-24s %14.2f   (measured, 1 Go thread)\n", "BWA-MEM-like (Go)", r.SWReadsPerSec/1e3)
	fmt.Fprintf(&b, "%-24s %14.1f   (x28 cores extrapolation)\n", "BWA-MEM-like (28 core)", r.SW56ReadsPerSec/1e3)
	fmt.Fprintf(&b, "%-24s %14.1f   (paper)\n", "BWA-MEM Xeon (paper)", hw.BWAMEMXeonReadsPerSec/1e3)
	fmt.Fprintf(&b, "%-24s %14.1f   (paper)\n", "CUSHAW2-GPU (paper)", hw.CUSHAW2GPUReadsPerSec/1e3)
	fmt.Fprintf(&b, "speedup GenAx-model / software(28-core extrapolated): %.1fx (paper: 31.7x)\n",
		r.Model.ReadsPerSec/maxf(1, r.SW56ReadsPerSec))
	fmt.Fprintf(&b, "model time budget: seeding %.0fs, extension %.0fs, tables %.1fs, reads %.0fs, total %.0fs\n",
		r.Model.SeedingSec, r.Model.ExtensionSec, r.Model.TableLoadSec, r.Model.ReadLoadSec, r.Model.TotalSec)
	fmt.Fprintf(&b, "lane schedule (Fig 11, measured scale): seeding lanes %.0f%% busy, SillaX lanes %.0f%% busy, bottleneck %s\n",
		100*r.Lanes.SeedUtilization, 100*r.Lanes.ExtUtilization, r.Lanes.Bottleneck)
	fmt.Fprintf(&b, "  (at our %d segments every pass is hit-dense; at the paper's 512 segments\n", r.Stats.Segments)
	fmt.Fprintf(&b, "   miss passes dominate seeding and the chip is seeding-bound, per the model above)\n")
	fmt.Fprintf(&b, "\nFigure 15b: power (W)\n")
	fmt.Fprintf(&b, "%-24s %8.1f   (model; paper implies ~%.1f)\n", "GenAx", r.GenAxPowerW, hw.XeonPowerW/12)
	fmt.Fprintf(&b, "%-24s %8.1f   (paper RAPL)\n", "Xeon E5 (BWA-MEM)", hw.XeonPowerW)
	fmt.Fprintf(&b, "%-24s %8.1f   (paper)\n", "TITAN Xp (CUSHAW2)", hw.TitanXpPowerW)
	fmt.Fprintf(&b, "power reduction vs CPU: %.1fx (paper: 12x)\n", hw.XeonPowerW/r.GenAxPowerW)
	return b.String()
}
