// Package bench contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§VIII). Each experiment
// returns a structured result with a String rendering that prints the
// paper's number next to the measured one; cmd/genax-bench is the CLI
// front end and bench_test.go wires the same drivers into testing.B.
package bench

import (
	"runtime"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/indexio"
	"genax/internal/seed"
	"genax/internal/sim"
)

// WorkloadSpec sizes a synthetic experiment. The full human-genome run of
// the paper (3.1 Gbp, 787 M reads) does not fit a laptop; Scale picks a
// genome size and coverage whose *shape* (error rate, read length,
// variant density) matches the paper's dataset.
type WorkloadSpec struct {
	Seed      int64
	GenomeLen int
	Coverage  float64
	ErrorRate float64
	// IndelErrorFrac routes a fraction of sequencing errors through
	// 1-base indels (Fig 13 raises it to exercise CIGAR-diverse trails).
	IndelErrorFrac float64
	ReadLen        int
	// Engine selects the extension engine ("" = the bit-parallel
	// default). Figure reproductions that need the cycle model's re-run
	// accounting pin core.EngineSillaX regardless of this field.
	Engine core.Engine
	// IndexCacheDir, when set, makes the experiment drivers keep the
	// segmented index in an on-disk cache keyed by reference and geometry
	// (see ApplyIndexCache): the first build writes the file, every later
	// run loads it instead of rebuilding.
	IndexCacheDir string
	// IndexWorkers is the worker count for the parallel index build that
	// CompareSeed measures against the serial build (0 = GOMAXPROCS).
	IndexWorkers int
	// MmapIndex makes ApplyIndexCache map the cache file zero-copy
	// (indexio.OpenMapped) instead of heap-deserializing it. Stale or
	// pre-v2 caches are rebuilt and rewritten first; the mapping stays
	// open for the life of the process, which satisfies the borrowed-view
	// contract (munmap only after every lane drains) trivially.
	MmapIndex bool
	// Shards partitions cache files written by ApplyIndexCache into this
	// many shard groups and, with MmapIndex set, bounds table residency to
	// one group at a time via indexio.ShardResidency (0 = one group, no
	// residency bound).
	Shards int
}

// ResolveIndexWorkers returns the effective parallel-build worker count —
// the number CompareSeed records, so the recorded speedup is labeled with
// the parallelism that actually ran rather than a flag default.
func (w WorkloadSpec) ResolveIndexWorkers() int {
	if w.IndexWorkers > 0 {
		return w.IndexWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultWorkload is the standard experiment input.
func DefaultWorkload() WorkloadSpec {
	return WorkloadSpec{Seed: 1, GenomeLen: 300_000, Coverage: 2, ErrorRate: 0.02, ReadLen: 101}
}

// QuickWorkload is a fast variant for smoke runs.
func QuickWorkload() WorkloadSpec {
	return WorkloadSpec{Seed: 1, GenomeLen: 60_000, Coverage: 1, ErrorRate: 0.02, ReadLen: 101}
}

// Build materializes the workload.
func (w WorkloadSpec) Build() *sim.Workload {
	return sim.NewWorkload(w.Seed, w.GenomeLen,
		sim.DefaultVariantProfile(),
		sim.ReadProfile{Length: w.ReadLen, Coverage: w.Coverage, ErrorRate: w.ErrorRate,
			IndelErrorFrac: w.IndelErrorFrac, ReverseFraction: 0.5})
}

// ReadSeqs extracts the read sequences.
func ReadSeqs(wl *sim.Workload) []dna.Seq {
	out := make([]dna.Seq, len(wl.Reads))
	for i, r := range wl.Reads {
		out[i] = r.Seq
	}
	return out
}

// ApplyIndexCache populates cfg.Index from the workload's on-disk index
// cache when IndexCacheDir is set: a valid cache file is loaded, anything
// else (missing, corrupt, stale) is replaced by a fresh build that is
// written back, so repeated bench runs pay the table construction once.
// With MmapIndex set the cache is mapped zero-copy instead of
// heap-deserialized (and Shards > 0 additionally installs a one-group
// residency bound). With IndexCacheDir empty it is a no-op and core.New
// builds in-process.
func (w WorkloadSpec) ApplyIndexCache(ref dna.Seq, cfg *core.Config) error {
	if w.IndexCacheDir == "" {
		return nil
	}
	path, err := indexio.CachePath(w.IndexCacheDir, ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap)
	if err != nil {
		return err
	}
	if !w.MmapIndex {
		if sx, err := indexio.ReadFile(path, ref); err == nil {
			cfg.Index = sx
			return nil
		}
		sx, err := w.buildAndWriteCache(ref, cfg, path)
		if err != nil {
			return err
		}
		cfg.Index = sx
		return nil
	}
	// Mapped path: a Probe-fresh v2 file can be bound directly; anything
	// else (missing, stale, corrupt, or a v1 file — readable but not
	// mappable) is rebuilt in the current format first.
	usable := indexio.Probe(path, ref, cfg.KmerLen, cfg.SegmentLen, cfg.Overlap) == ""
	if usable {
		v, err := indexio.FileVersion(path)
		usable = err == nil && v == indexio.Version
	}
	if !usable {
		if _, err := w.buildAndWriteCache(ref, cfg, path); err != nil {
			return err
		}
	}
	m, err := indexio.OpenMapped(path)
	if err != nil {
		return err
	}
	cfg.Index = m.Index()
	if w.Shards > 0 {
		cfg.Residency = indexio.NewShardResidency(m, 1)
	}
	return nil
}

// buildAndWriteCache rebuilds the segmented index for ref and writes it to
// path in the current format, partitioned per w.Shards.
func (w WorkloadSpec) buildAndWriteCache(ref dna.Seq, cfg *core.Config, path string) (*seed.SegmentedIndex, error) {
	sx, err := seed.BuildSegmentedIndex(ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen)
	if err != nil {
		return nil, err
	}
	gs := indexio.GroupSizeForShards(sx.NumSegments(), w.Shards)
	if err := indexio.WriteFileShards(path, sx, ref, gs); err != nil {
		return nil, err
	}
	return sx, nil
}

// CoreConfig scales the GenAx configuration to the workload (segment size
// chosen so several segments exist, k sized for the genome).
func CoreConfig(w WorkloadSpec) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 40
	cfg.KmerLen = 12
	cfg.SegmentLen = w.GenomeLen / 8
	if cfg.SegmentLen < 4096 {
		cfg.SegmentLen = 4096
	}
	cfg.Overlap = w.ReadLen + cfg.K + 16
	cfg.Engine = w.Engine
	return cfg
}
