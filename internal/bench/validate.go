package bench

import (
	"fmt"
	"strings"

	"genax/internal/bwamem"
	"genax/internal/core"
	"genax/internal/hw"
)

// ValidateResult is the §VIII-A concordance experiment: GenAx versus the
// BWA-MEM-like software pipeline on every read. The paper reports that all
// 351M non-exact reads concur with 0.0023% variance, with equal scores on
// the differing alignments.
type ValidateResult struct {
	Reads         int
	BothAligned   int
	OnlyOne       int
	EqualScore    int
	EqualPosition int
	ScoreVariance float64 // fraction of reads with differing scores
	TableIIRows   []hw.AreaRow
}

// Validate runs both pipelines over the workload.
func Validate(spec WorkloadSpec) ValidateResult {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	cfg := CoreConfig(spec)
	if err := spec.ApplyIndexCache(wl.Ref, &cfg); err != nil {
		panic(err)
	}
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		panic(err)
	}
	results, _ := aligner.AlignBatch(reads)
	bw := bwamem.New(wl.Ref, bwamem.Options{
		Scoring: cfg.Scoring, Band: cfg.K, MinSeedLen: cfg.Seeding.MinSeedLen,
		MaxHits: 512, MinScore: cfg.MinScore,
	})
	res := ValidateResult{Reads: len(reads), TableIIRows: hw.DefaultChip().AreaBreakdown()}
	for i, r := range reads {
		swRes, swOK := bw.Align(r)
		if swOK != results[i].Aligned {
			res.OnlyOne++
			continue
		}
		if !swOK {
			continue
		}
		res.BothAligned++
		if swRes.Score == results[i].Result.Score {
			res.EqualScore++
		}
		if swRes.RefPos == results[i].Result.RefPos && swRes.Reverse == results[i].Result.Reverse {
			res.EqualPosition++
		}
	}
	if res.BothAligned > 0 {
		res.ScoreVariance = float64(res.BothAligned-res.EqualScore+res.OnlyOne) / float64(res.Reads)
	}
	return res
}

// String renders the experiment.
func (r ValidateResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§VIII-A validation: GenAx vs BWA-MEM-like software pipeline\n")
	fmt.Fprintf(&b, "reads: %d; both aligned: %d; aligned by only one: %d\n", r.Reads, r.BothAligned, r.OnlyOne)
	fmt.Fprintf(&b, "equal scores:    %d/%d (%.4f%%)\n", r.EqualScore, r.BothAligned, 100*float64(r.EqualScore)/maxf(1, float64(r.BothAligned)))
	fmt.Fprintf(&b, "equal positions: %d/%d (position ties may map elsewhere with the same score)\n", r.EqualPosition, r.BothAligned)
	fmt.Fprintf(&b, "variance: paper 0.0023%% | measured %.4f%%\n", 100*r.ScoreVariance)
	return b.String()
}

// Table2String renders Table II from the hardware model.
func Table2String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: GenAx area breakdown (28 nm model)\n")
	fmt.Fprintf(&b, "%-24s %12s %12s\n", "component", "model mm²", "paper mm²")
	paper := map[string]float64{
		"Seeding lanes": 4.224, "SillaX lanes": 5.36, "On-chip SRAM": 163.2, "Total": 172.78,
	}
	for _, row := range hw.DefaultChip().AreaBreakdown() {
		fmt.Fprintf(&b, "%-24s %12.3f %12.3f\n", row.Component, row.AreaMm2, paper[row.Component])
	}
	return b.String()
}
