package bench

import (
	"os"
	"strconv"
	"strings"
)

// resetPeakRSS rearms the kernel's peak-RSS watermark (VmHWM) by writing
// "5" to /proc/self/clear_refs, so the next peakRSSBytes read reports the
// high-water mark of just the phase that follows instead of the whole
// process lifetime. It reports whether the reset took: on non-Linux
// systems (or locked-down /proc) it returns false and callers degrade to
// recording the monotone process-wide peak, or zero.
func resetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}

// peakRSSBytes reads VmHWM from /proc/self/status — the process peak
// resident set in bytes since the last resetPeakRSS. It returns 0 when the
// counter is unavailable; callers must treat 0 as "not measured", never as
// a real footprint.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		// "VmHWM:	  123456 kB"
		fields := strings.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
