package bench

import (
	"fmt"
	"strings"

	"genax/internal/align"
	"genax/internal/sillax"
)

// Fig13Result reproduces §VIII-A's broken-pointer-trail statistics and
// Figure 13's distribution of cycles spent in traceback re-execution.
type Fig13Result struct {
	Reads          int
	NonExact       int
	BrokenFraction float64 // paper: 7.59% of reads require re-execution
	// Histogram[i] is the fraction of re-executing reads whose re-run
	// cycles fall in (100*i, 100*(i+1)]; Figure 13's x-axis runs 100..1600.
	Histogram []float64
	// WithinN is the fraction of re-execution events resolved within the
	// first N=readLen cycles (paper: over 60%).
	WithinN float64
}

// Fig13 extends every simulated read at its true position on a K=40
// traceback machine and tallies re-execution behaviour. Broken trails are
// an indel phenomenon (a pointer hijacked onto a different edge), so the
// workload routes part of the error budget through 1-base indels; pure
// substitution reads essentially never re-execute in this model.
func Fig13(spec WorkloadSpec) Fig13Result {
	if spec.IndelErrorFrac == 0 {
		spec.IndelErrorFrac = 0.25
	}
	wl := spec.Build()
	tm := sillax.NewTracebackMachine(40, align.BWAMEMDefaults())
	res := Fig13Result{Histogram: make([]float64, 16)}
	brokenReads := 0
	withinN := 0
	for _, rd := range wl.Reads {
		res.Reads++
		q := rd.Seq
		if rd.Reverse {
			q = q.RevComp()
		}
		lo := rd.TruePos
		hi := lo + len(q) + 40
		if hi > len(wl.Ref) {
			hi = len(wl.Ref)
		}
		out := tm.Extend(wl.Ref[lo:hi], q)
		if rd.Errors > 0 {
			res.NonExact++
		}
		if out.ReRuns == 0 {
			continue
		}
		brokenReads++
		c := out.ReRunCycles
		if c <= len(q) {
			withinN++
		}
		bucket := (c - 1) / 100
		if bucket >= len(res.Histogram) {
			bucket = len(res.Histogram) - 1
		}
		res.Histogram[bucket]++
	}
	if res.Reads > 0 {
		res.BrokenFraction = float64(brokenReads) / float64(res.Reads)
	}
	if brokenReads > 0 {
		res.WithinN = float64(withinN) / float64(brokenReads)
		for i := range res.Histogram {
			res.Histogram[i] /= float64(brokenReads)
		}
	}
	return res
}

// String renders the figure.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13 / §VIII-A: traceback re-execution\n")
	fmt.Fprintf(&b, "reads: %d (%d with sequencing errors)\n", r.Reads, r.NonExact)
	fmt.Fprintf(&b, "reads requiring re-execution: paper 7.59%% | measured %.2f%%\n", 100*r.BrokenFraction)
	fmt.Fprintf(&b, "re-runs resolved within first N=101 cycles: paper >60%% | measured %.1f%%\n", 100*r.WithinN)
	fmt.Fprintf(&b, "%-12s %s\n", "cycles", "fraction of re-executing reads")
	for i, f := range r.Histogram {
		if f == 0 {
			continue
		}
		fmt.Fprintf(&b, "%4d-%-6d  %.3f %s\n", i*100+1, (i+1)*100, f, strings.Repeat("#", int(f*50)))
	}
	return b.String()
}
