package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/sim"
)

// LongreadSpec sizes the long-read experiment: kilobase reads with
// indel-heavy errors over a multi-word edit bound (K > 63), the workload
// the wide bitsilla datapath and the anchor-chaining stage exist for.
type LongreadSpec struct {
	Seed           int64
	GenomeLen      int
	Coverage       float64
	MeanReadLen    int
	ErrorRate      float64
	IndelErrorFrac float64
	// K is the edit bound; must exceed bitsilla.MaxWordK so every
	// extension runs the multi-word datapath.
	K int
}

// DefaultLongread is the standard long-read experiment input.
func DefaultLongread() LongreadSpec {
	return LongreadSpec{Seed: 9, GenomeLen: 60_000, Coverage: 0.5,
		MeanReadLen: 1200, ErrorRate: 0.02, IndelErrorFrac: 0.3, K: 80}
}

// QuickLongread is a fast variant for CI smoke runs.
func QuickLongread() LongreadSpec {
	return LongreadSpec{Seed: 9, GenomeLen: 24_000, Coverage: 0.4,
		MeanReadLen: 800, ErrorRate: 0.02, IndelErrorFrac: 0.3, K: 72}
}

// Build materializes the long-read workload.
func (w LongreadSpec) Build() *sim.Workload {
	return sim.NewLongReadWorkload(w.Seed, w.GenomeLen,
		sim.DefaultVariantProfile(),
		sim.LongReadProfile{MeanLength: w.MeanReadLen, Coverage: w.Coverage,
			ErrorRate: w.ErrorRate, IndelErrorFrac: w.IndelErrorFrac,
			ReverseFraction: 0.5})
}

// config scales the GenAx configuration to the long-read workload: the
// edit bound comes from the spec, and segment overlap covers the longest
// read SimulateLong draws (3·mean/2) so no alignment straddles a segment
// boundary unseen.
func (w LongreadSpec) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.K = w.K
	cfg.KmerLen = 12
	cfg.SegmentLen = w.GenomeLen / 4
	if cfg.SegmentLen < 4096 {
		cfg.SegmentLen = 4096
	}
	cfg.Overlap = 3*w.MeanReadLen/2 + cfg.K + 16
	return cfg
}

// LongreadRun is one engine configuration's measurement over the
// long-read workload. ChainAnchors/ChainKept record the anchor-chaining
// stage's collapse and EngineFallbacks the cycle-model invocations (zero
// everywhere but the deliberately degraded bitsilla-cycle row).
type LongreadRun struct {
	Engine          string        `json:"engine"`
	Wall            time.Duration `json:"wall_ns"`
	ExtendBusy      time.Duration `json:"extend_busy_ns"`
	Aligned         int           `json:"aligned"`
	ResultHash      uint64        `json:"result_hash"`
	MatchesOracle   bool          `json:"matches_oracle"`
	EngineFallbacks int64         `json:"engine_fallbacks"`
	ChainAnchors    int64         `json:"chain_anchors"`
	ChainKept       int64         `json:"chain_kept"`
}

// LongreadComparison is the -compare-longread report: the same kilobase
// workload through the cycle-level oracle, the deliberately degraded
// bitsilla (CycleFallback), the wide multi-word bitsilla, and the
// cascade. WideVsCycle is the acceptance ratio of PR 9: the wide
// datapath's extend-busy advantage over the cycle-level fallback at
// K > 63, gated at ≥ SpeedupFloor for the default workload.
type LongreadComparison struct {
	Reads       int           `json:"reads"`
	K           int           `json:"k"`
	MeanReadLen int           `json:"mean_read_len"`
	Runs        []LongreadRun `json:"runs"`
	// WideVsCycle = bitsilla-cycle extend busy / bitsilla extend busy.
	WideVsCycle float64 `json:"extend_speedup_wide_vs_cycle"`
	// WideVsSillaX quotes the wide datapath against the cycle-level
	// reference machine (a different implementation, same cell model).
	WideVsSillaX float64 `json:"extend_speedup_wide_vs_sillax"`
	// OracleMatch reports that every run hashed identically to the
	// cycle-level oracle — all four configurations claim byte-identity.
	OracleMatch    bool   `json:"runs_match_oracle"`
	OracleMismatch string `json:"mismatch,omitempty"`
}

// SpeedupFloor is the acceptance floor for WideVsCycle on the default
// long-read workload.
const SpeedupFloor = 10.0

// longreadConfigs fixes the measurement sequence (oracle first so later
// runs can be checked against it). Every row claims byte-identity.
var longreadConfigs = []struct {
	name          string
	engine        core.Engine
	cycleFallback bool
}{
	{"sillax", core.EngineSillaX, false},
	{"bitsilla-cycle", core.EngineBitSilla, true},
	{"bitsilla", core.EngineBitSilla, false},
	{"cascade", core.EngineCascade, false},
}

// CompareLongread runs the kilobase workload through the cycle oracle,
// the degraded cycle-fallback bitsilla, the wide multi-word bitsilla and
// the cascade. This is the acceptance harness for the wide datapath:
// byte-identical results at K > 63, with the extend stage an order of
// magnitude faster than the cycle model it replaces.
func CompareLongread(spec LongreadSpec) (LongreadComparison, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return LongreadComparison{}, fmt.Errorf("bench: long-read workload produced no reads")
	}
	out := LongreadComparison{Reads: len(reads), K: spec.K, MeanReadLen: spec.MeanReadLen}
	for _, c := range longreadConfigs {
		run, err := measureLongread(spec, wl.Ref, reads, c.name, c.engine, c.cycleFallback)
		if err != nil {
			return LongreadComparison{}, err
		}
		out.Runs = append(out.Runs, run)
	}
	oracle := out.Runs[0]
	out.OracleMatch = true
	var mismatches []string
	for i := range out.Runs {
		out.Runs[i].MatchesOracle = out.Runs[i].ResultHash == oracle.ResultHash
		if !out.Runs[i].MatchesOracle {
			out.OracleMatch = false
			mismatches = append(mismatches, fmt.Sprintf("%s hash %016x != sillax hash %016x",
				out.Runs[i].Engine, out.Runs[i].ResultHash, oracle.ResultHash))
		}
	}
	out.OracleMismatch = strings.Join(mismatches, "; ")
	cyc := out.findRun("bitsilla-cycle")
	wide := out.findRun("bitsilla")
	if wide != nil && wide.ExtendBusy > 0 {
		if cyc != nil {
			out.WideVsCycle = float64(cyc.ExtendBusy) / float64(wide.ExtendBusy)
		}
		out.WideVsSillaX = float64(oracle.ExtendBusy) / float64(wide.ExtendBusy)
	}
	return out, nil
}

// findRun returns the named run, or nil.
func (c *LongreadComparison) findRun(engine string) *LongreadRun {
	for i := range c.Runs {
		if c.Runs[i].Engine == engine {
			return &c.Runs[i]
		}
	}
	return nil
}

// measureLongread builds an instrumented aligner for one engine
// configuration, warms the lane scratch with a throwaway batch, then
// times a second identical batch.
func measureLongread(spec LongreadSpec, ref dna.Seq, reads []dna.Seq, name string, eng core.Engine, cycleFallback bool) (LongreadRun, error) {
	cfg := spec.config()
	cfg.Engine = eng
	cfg.CycleFallback = cycleFallback
	inst := &core.Instrument{Now: func() int64 { return time.Now().UnixNano() }}
	cfg.Instrument = inst
	aligner, err := core.New(ref, cfg)
	if err != nil {
		return LongreadRun{}, err
	}
	if res, _ := aligner.AlignBatch(reads); len(res) != len(reads) {
		return LongreadRun{}, fmt.Errorf("bench: AlignBatch dropped reads")
	}
	runtime.GC()
	busy0 := inst.Extend.BusyNanos.Load()
	start := time.Now()
	results, stats := aligner.AlignBatch(reads)
	wall := time.Since(start)
	busy := inst.Extend.BusyNanos.Load() - busy0

	hash, aligned := digestResults(results)
	return LongreadRun{
		Engine:          name,
		Wall:            wall,
		ExtendBusy:      time.Duration(busy),
		Aligned:         aligned,
		ResultHash:      hash,
		EngineFallbacks: stats.EngineFallbacks,
		ChainAnchors:    stats.ChainAnchors,
		ChainKept:       stats.ChainKept,
	}, nil
}

func (c LongreadComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "long-read extension comparison (%d reads, mean %d bp, K=%d)\n",
		c.Reads, c.MeanReadLen, c.K)
	fmt.Fprintf(&b, "%-15s %12s %12s %8s %10s %16s %7s\n",
		"engine", "wall", "extendbusy", "aligned", "fallbacks", "resulthash", "=oracle")
	for _, r := range c.Runs {
		fmt.Fprintf(&b, "%-15s %12v %12v %8d %10d %016x %7v\n",
			r.Engine, r.Wall.Round(time.Microsecond), r.ExtendBusy.Round(time.Microsecond),
			r.Aligned, r.EngineFallbacks, r.ResultHash, r.MatchesOracle)
	}
	if wide := c.findRun("bitsilla"); wide != nil && wide.ChainAnchors > 0 {
		fmt.Fprintf(&b, "anchor chaining: %d anchors -> %d extensions kept\n",
			wide.ChainAnchors, wide.ChainKept)
	}
	fmt.Fprintf(&b, "wide bitsilla vs cycle fallback: extend stage %.2fx (floor %.0fx)\n",
		c.WideVsCycle, SpeedupFloor)
	fmt.Fprintf(&b, "wide bitsilla vs sillax oracle: extend stage %.2fx\n", c.WideVsSillaX)
	if c.OracleMatch {
		b.WriteString("all engine configurations are byte-identical to the cycle-level oracle")
	} else {
		b.WriteString("MISMATCH: " + c.OracleMismatch)
	}
	return b.String()
}
