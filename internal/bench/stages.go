package bench

import (
	"fmt"
	"strings"
	"time"

	"genax/internal/core"
	"genax/internal/extend"
)

// StageRow is one pipeline stage's share of a StageBreakdown.
type StageRow struct {
	Name      string
	Busy      time.Duration
	BusyShare float64 // fraction of summed stage busy time
	Batches   int64
	Items     int64 // candidates seeded / surviving / extended
	AvgQueue  float64
	MaxQueue  int64
}

// StageBreakdown reports per-stage wall-clock and queue occupancy for one
// aligned workload — the software mirror of the paper's Fig 11 discussion
// of seeding-lane vs SillaX-lane utilization and the hit-FIFO fill level.
type StageBreakdown struct {
	Reads  int
	Total  time.Duration // wall clock of the whole AlignBatch
	Stages []StageRow
	// IndexBuild is segmented-index construction time, spent before the
	// pipeline ran (not part of Total); zero when the index was loaded
	// from the on-disk cache instead of built.
	IndexBuild    time.Duration
	IndexSegments int64
	// Routing is the cascade's per-leg extension histogram; all-zero for
	// engines that do not cascade, and then omitted from the report.
	Routing extend.Routing
	// ChainGroups/ChainAnchors/ChainKept report the long-read anchor
	// chaining collapse; all-zero (and omitted) for short-read workloads.
	ChainGroups, ChainAnchors, ChainKept int64
	// EngineFallbacks counts cycle-model engine invocations — nonzero only
	// under the deliberately degraded CycleFallback configuration.
	EngineFallbacks int64
}

func (b StageBreakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline stage breakdown (%d reads, wall %v)\n", b.Reads, b.Total.Round(time.Millisecond))
	if b.IndexBuild > 0 {
		fmt.Fprintf(&sb, "index build %v (%d segments, before the pipeline; cached loads report 0)\n",
			b.IndexBuild.Round(time.Microsecond), b.IndexSegments)
	} else {
		sb.WriteString("index build 0s (loaded from cache)\n")
	}
	fmt.Fprintf(&sb, "%-8s %12s %6s %9s %9s %9s %6s\n",
		"stage", "busy", "share", "batches", "items", "avgqueue", "maxq")
	for _, r := range b.Stages {
		fmt.Fprintf(&sb, "%-8s %12v %5.1f%% %9d %9d %9.2f %6d\n",
			r.Name, r.Busy.Round(time.Microsecond), 100*r.BusyShare, r.Batches, r.Items, r.AvgQueue, r.MaxQueue)
	}
	if b.Routing.Total() > 0 {
		fmt.Fprintf(&sb, "engine cascade routing (%d extensions, %d certified by a cheap leg):\n",
			b.Routing.Total(), b.Routing.Certified())
		fmt.Fprintf(&sb, "%-10s %10s %10s %10s\n", "leg", "routed", "accepted", "fellthru")
		for l := extend.Leg(0); l < extend.NumLegs; l++ {
			s := b.Routing.Legs[l]
			fmt.Fprintf(&sb, "%-10s %10d %10d %10d\n", l, s.Routed, s.Accepted, s.FellThrough)
		}
	}
	if b.ChainGroups > 0 {
		fmt.Fprintf(&sb, "anchor chaining: %d groups, %d anchors -> %d extensions kept\n",
			b.ChainGroups, b.ChainAnchors, b.ChainKept)
	}
	if b.EngineFallbacks > 0 {
		fmt.Fprintf(&sb, "cycle-model fallbacks: %d (degraded engine configuration)\n", b.EngineFallbacks)
	}
	sb.WriteString("queue depths are sampled at each send into the downstream stage")
	return sb.String()
}

// Stages runs the workload through an instrumented aligner and returns the
// per-stage breakdown. The pipeline itself never reads a clock (it is on
// genaxvet's determinism list); the wall-clock reader is injected here.
func Stages(spec WorkloadSpec) (StageBreakdown, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	cfg := CoreConfig(spec)
	inst := &core.Instrument{Now: func() int64 { return time.Now().UnixNano() }}
	cfg.Instrument = inst
	if err := spec.ApplyIndexCache(wl.Ref, &cfg); err != nil {
		return StageBreakdown{}, err
	}
	aligner, err := core.New(wl.Ref, cfg)
	if err != nil {
		return StageBreakdown{}, err
	}
	start := time.Now()
	res, stats := aligner.AlignBatch(reads)
	if len(res) != len(reads) {
		return StageBreakdown{}, fmt.Errorf("bench: AlignBatch dropped reads")
	}
	out := StageBreakdown{
		Reads:           len(reads),
		Total:           time.Since(start),
		IndexBuild:      time.Duration(inst.IndexBuild.BusyNanos.Load()),
		IndexSegments:   inst.IndexBuild.Items.Load(),
		Routing:         stats.Routing,
		ChainGroups:     stats.ChainGroups,
		ChainAnchors:    stats.ChainAnchors,
		ChainKept:       stats.ChainKept,
		EngineFallbacks: stats.EngineFallbacks,
	}
	rows := []struct {
		name string
		m    *core.StageMetrics
	}{
		{"seed", &inst.Seed},
		{"filter", &inst.Filter},
		{"extend", &inst.Extend},
	}
	var busyTotal int64
	for _, r := range rows {
		busyTotal += r.m.BusyNanos.Load()
	}
	for _, r := range rows {
		busy := r.m.BusyNanos.Load()
		share := 0.0
		if busyTotal > 0 {
			share = float64(busy) / float64(busyTotal)
		}
		out.Stages = append(out.Stages, StageRow{
			Name:      r.name,
			Busy:      time.Duration(busy),
			BusyShare: share,
			Batches:   r.m.Batches.Load(),
			Items:     r.m.Items.Load(),
			AvgQueue:  r.m.AvgQueue(),
			MaxQueue:  r.m.QueueMax.Load(),
		})
	}
	return out, nil
}
