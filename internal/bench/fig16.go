package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"genax/internal/dna"
	"genax/internal/seed"
	"genax/internal/sim"
)

// Fig16Result reproduces Figure 16: (a) average hits per read surviving to
// seed extension under each seeding mode, and (b) CAM lookups per read
// under each position-table lookup strategy, plus the §V exact-match
// fast-path fraction.
type Fig16Result struct {
	Reads int
	K     int
	// Fig 16a: hits forwarded to extension per read.
	NaiveHits, SMEMHits, BinaryHits float64
	// Fig 16b: CAM lookups per read.
	LinearLookups, BinaryLookups, ProbingLookups float64
	// §V: fraction of reads taking the exact fast path.
	ExactFraction float64
}

// fig16Genome builds a repeat-rich reference: the paper's filtering effect
// lives in the heavy tail of the k-mer hit distribution (poly-A runs, Alu
// repeats), which a uniform random genome lacks. ~20% of the genome is
// covered by copies of a handful of motifs, plus a low-complexity run.
func fig16Genome(r *rand.Rand, n int) dna.Seq {
	g := sim.RandomGenome(r, n)
	motifLen := 300
	for c := 0; c < n/(5*motifLen); c++ {
		src := r.Intn(n - motifLen)
		dst := r.Intn(n - motifLen)
		copy(g[dst:dst+motifLen], g[src:src+motifLen])
	}
	// A poly-A stretch: the paper's "AA...A" worst case for hit lists.
	run := n / 100
	start := r.Intn(n - run)
	for i := start; i < start+run; i++ {
		g[i] = dna.A
	}
	return g
}

// Fig16 runs the seeding lane over a repeat-rich workload under each
// ablation. k is sized so the k-mer hit density resembles the paper's
// (3.1 Gbp at k=12 ~ 184 hits/k-mer).
func Fig16(spec WorkloadSpec) Fig16Result {
	r := rand.New(rand.NewSource(spec.Seed))
	ref := fig16Genome(r, spec.GenomeLen)
	donor := sim.MakeDonor(r, ref, sim.DefaultVariantProfile())
	reads := sim.Simulate(r, donor, sim.ReadProfile{
		Length: spec.ReadLen, Coverage: spec.Coverage, ErrorRate: spec.ErrorRate, ReverseFraction: 0.5,
	})
	k := 6
	for (1 << (2 * uint(k))) < spec.GenomeLen/40 {
		k++
	}
	si, err := seed.BuildSegmentIndex(ref, 0, 0, k)
	if err != nil {
		panic(err)
	}
	run := func(opts seed.Options) seed.Stats {
		sd := seed.NewSeeder(si, opts)
		for _, rd := range reads {
			sd.Seed(rd.Seq)
			sd.Seed(rd.Seq.RevComp())
		}
		return sd.Stats
	}
	base := seed.DefaultOptions()
	base.MinSeedLen = 19

	naive := base
	naive.SMEMFilter = false
	smemOnly := base
	smemOnly.BinaryExtension = false
	smemOnly.ExactFastPath = false
	smemOnly.Probing = false
	// Without the halving refinement, match lengths are k-granular; hold
	// the seed floor at the same granule so both modes report the same
	// loci and only hit-set sizes differ.
	smemOnly.MinSeedLen = (19 / k) * k
	binary := base
	binary.ExactFastPath = false
	binary.Probing = false

	linearB := binary
	linearB.BinarySearch = false // oversized hit lists stream through the CAM
	binaryB := binary
	binaryB.BinarySearch = true
	probingB := binaryB
	probingB.Probing = true

	n := float64(len(reads))
	res := Fig16Result{Reads: len(reads), K: k}
	res.NaiveHits = float64(run(naive).HitsEmitted) / n
	res.SMEMHits = float64(run(smemOnly).HitsEmitted) / n
	res.BinaryHits = float64(run(binary).HitsEmitted) / n
	res.LinearLookups = float64(run(linearB).CAMLookups) / n
	res.BinaryLookups = float64(run(binaryB).CAMLookups) / n
	res.ProbingLookups = float64(run(probingB).CAMLookups) / n
	// Each read is seeded on both strands but can be exact on only one,
	// so normalize exact counts by reads, not Seed calls.
	full := run(base)
	res.ExactFraction = float64(full.ExactReads) / n
	return res
}

// String renders the figure.
func (r Fig16Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 16a: average hits per read forwarded to seed extension (%d reads, both strands, k=%d)\n", r.Reads, r.K)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "naive hash (all k-mer hits)", r.NaiveHits)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "+ SMEM filtering", r.SMEMHits)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "+ binary extension", r.BinaryHits)
	if r.BinaryHits > 0 {
		fmt.Fprintf(&b, "reduction naive -> full: %.0fx (paper: orders of magnitude)\n", r.NaiveHits/r.BinaryHits)
	}
	fmt.Fprintf(&b, "\nFigure 16b: CAM lookups per read by position-table strategy\n")
	fmt.Fprintf(&b, "%-28s %12.1f\n", "linear (probe everything)", r.LinearLookups)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "binary search fallback", r.BinaryLookups)
	fmt.Fprintf(&b, "%-28s %12.1f\n", "binary + probing", r.ProbingLookups)
	fmt.Fprintf(&b, "\n§V fast path: exact-match reads = %.1f%% (paper: ~75%% on real data;\n", 100*r.ExactFraction)
	fmt.Fprintf(&b, "  the synthetic 2%% uniform error rate makes exact reads rarer — e^(-0.02*101) ~= 13%%)\n")
	return b.String()
}
