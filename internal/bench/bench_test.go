package bench

import (
	"strings"
	"testing"
)

func TestFig12(t *testing.T) {
	r := Fig12()
	if len(r.Edit) != 15 || len(r.Traceback) != 15 {
		t.Fatalf("sweep sizes %d/%d", len(r.Edit), len(r.Traceback))
	}
	s := r.String()
	for _, want := range []string{"Figure 12", "0.012", "1.41", "9.7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	r := Fig13(QuickWorkload())
	if r.Reads == 0 {
		t.Fatal("no reads")
	}
	if r.BrokenFraction < 0 || r.BrokenFraction > 0.5 {
		t.Errorf("broken fraction %.3f implausible", r.BrokenFraction)
	}
	sum := 0.0
	for _, f := range r.Histogram {
		sum += f
	}
	if r.BrokenFraction > 0 && (sum < 0.99 || sum > 1.01) {
		t.Errorf("histogram sums to %.3f", sum)
	}
	if !strings.Contains(r.String(), "7.59") {
		t.Error("paper anchor missing from rendering")
	}
	t.Log(r.String())
}

func TestFig14Quick(t *testing.T) {
	r := Fig14(QuickWorkload(), 200)
	if r.BandedSWKhits <= 0 || r.SillaXModelKhits <= 0 {
		t.Fatalf("degenerate rates: %+v", r)
	}
	if r.AvgExtensionCycles < 100 || r.AvgExtensionCycles > 2000 {
		t.Errorf("avg extension cycles %.0f outside the N+5K regime", r.AvgExtensionCycles)
	}
	// Who-wins shape: the SillaX model must beat the single-thread
	// software baselines by a large factor.
	if r.SillaXModelKhits < 10*r.BandedSWKhits {
		t.Errorf("SillaX model (%.0f) not clearly ahead of banded SW (%.0f)", r.SillaXModelKhits, r.BandedSWKhits)
	}
	t.Log(r.String())
}

func TestFig16Quick(t *testing.T) {
	r := Fig16(QuickWorkload())
	if r.NaiveHits <= r.BinaryHits {
		t.Errorf("naive hits %.1f not above optimized %.1f", r.NaiveHits, r.BinaryHits)
	}
	if r.SMEMHits < r.BinaryHits {
		t.Errorf("SMEM-only hits %.1f below binary-extension hits %.1f", r.SMEMHits, r.BinaryHits)
	}
	if r.ProbingLookups > r.LinearLookups {
		t.Errorf("probing lookups %.1f above linear %.1f", r.ProbingLookups, r.LinearLookups)
	}
	if r.ExactFraction <= 0 || r.ExactFraction >= 1 {
		t.Errorf("exact fraction %.3f degenerate", r.ExactFraction)
	}
	t.Log(r.String())
}

func TestFig15Quick(t *testing.T) {
	r := Fig15(QuickWorkload())
	if r.Model.ReadsPerSec <= 0 {
		t.Fatalf("model throughput %.0f", r.Model.ReadsPerSec)
	}
	if r.SWReadsPerSec <= 0 {
		t.Fatal("software baseline did not run")
	}
	// Shape: the GenAx model must dominate the extrapolated software rate.
	if r.Model.ReadsPerSec < 5*r.SW56ReadsPerSec {
		t.Errorf("GenAx model %.0f not clearly above software %.0f", r.Model.ReadsPerSec, r.SW56ReadsPerSec)
	}
	if r.GenAxPowerW <= 0 || r.GenAxPowerW > 30 {
		t.Errorf("power %.1f W implausible", r.GenAxPowerW)
	}
	t.Log(r.String())
}

func TestValidateQuick(t *testing.T) {
	r := Validate(QuickWorkload())
	if r.BothAligned == 0 {
		t.Fatal("nothing aligned")
	}
	if r.ScoreVariance > 0.02 {
		t.Errorf("score variance %.4f%% too high vs paper's 0.0023%%", 100*r.ScoreVariance)
	}
	t.Log(r.String())
	if !strings.Contains(Table2String(), "172.78") {
		t.Error("Table II anchor missing")
	}
}
