package bench

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/serve"
)

// ServeSpeedupFloor is the full-run acceptance floor for the coalesced
// mode's sustained throughput over the per-request-session baseline.
//
// Honesty note: the design target for coalescing is "several times" the
// per-session baseline, but that figure assumes a multi-core lane pool
// where per-request serving additionally loses to scheduler thrash. On
// the single-core containers this harness runs in, both modes spend the
// same per-read alignment CPU and coalescing can only amortize the
// per-session costs (pool spin-up, per-segment window sweep, teardown) —
// measured headroom here is 1.5–1.9x with a segment-heavy index. The
// floor is set below that so the gate checks the mechanism (amortization
// exists and is material) without flaking on CI noise; the full
// measurement, including host parallelism, is recorded in the JSON.
const ServeSpeedupFloor = 1.25

// serveModes fixes the measurement order: the per-session baseline first
// (its capacity calibrates the shared open-loop rate), then the pooled
// per-request mode, then coalescing.
var serveModes = []string{"session", "alignread", "coalesced"}

// serveOfferedFactor sets the shared open-loop rate as a multiple of the
// session baseline's measured capacity — above 1 so the per-request modes
// demonstrably saturate (queueing + 429 shedding) at a rate the coalesced
// mode is expected to sustain.
const serveOfferedFactor = 1.15

// ServeRun is one serving mode's measurement: a full-workload identity
// pass hashed against offline AlignBatch, a closed-loop capacity probe,
// and an open-loop phase at the shared offered rate recording latency
// percentiles, goodput and shedding behaviour.
type ServeRun struct {
	Mode string `json:"mode"`
	// Identity pass: every workload read served once, folded with the
	// same digest as the offline baseline.
	ResultHash uint64 `json:"result_hash"`
	Aligned    int    `json:"aligned"`
	HashMatch  bool   `json:"matches_offline"`
	// CapacityRPS is the closed-loop sustained throughput (fixed client
	// concurrency, no pacing).
	CapacityRPS float64 `json:"capacity_rps"`
	// Open-loop phase at the shared offered rate.
	OfferedRPS     float64       `json:"offered_rps"`
	Sent           int           `json:"sent"`
	OK             int           `json:"ok"`
	Rejected       int           `json:"rejected"`
	Errors         int           `json:"errors"`
	GoodputRPS     float64       `json:"goodput_rps"`
	P50            time.Duration `json:"p50_ns"`
	P90            time.Duration `json:"p90_ns"`
	P99            time.Duration `json:"p99_ns"`
	RetryAfterSeen bool          `json:"retry_after_seen"`
	// Overload burst (coalesced mode only): simultaneous posts far past a
	// deliberately tiny intake queue; the admission layer must shed the
	// excess with 429 + Retry-After instead of growing.
	BurstSent       int   `json:"burst_sent,omitempty"`
	BurstOK         int   `json:"burst_ok,omitempty"`
	BurstRejected   int   `json:"burst_rejected,omitempty"`
	BurstRetryAfter bool  `json:"burst_retry_after,omitempty"`
	PeakRSSBytes    int64 `json:"peak_rss_bytes"`
	// Coalescing shape, scraped from /statsz after the phases (coalesced
	// mode only).
	Batches      int64   `json:"batches,omitempty"`
	BatchedReads int64   `json:"batched_reads,omitempty"`
	MaxBatch     int64   `json:"max_batch,omitempty"`
	MeanBatch    float64 `json:"mean_batch,omitempty"`
}

// ServeComparison is the -compare-serve report: the same workload served
// by a real serve.Server (over HTTP, via httptest) in three modes — one
// AlignStream session per request (the architecture coalescing replaces),
// the pooled AlignRead per-request fast path, and coalesced batching —
// with every mode's results hash-gated against offline AlignBatch.
type ServeComparison struct {
	Reads      int `json:"reads"`
	Segments   int `json:"segments"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// HostNote records the measurement context the speedup must be read
	// in; see ServeSpeedupFloor.
	HostNote         string     `json:"host_note"`
	MaxBatchLimit    int        `json:"max_batch_limit"`
	QueueLimit       int        `json:"queue_limit"`
	OfflineHash      uint64     `json:"offline_hash"`
	OfflineAligned   int        `json:"offline_aligned"`
	PeakRSSSupported bool       `json:"peak_rss_supported"`
	Runs             []ServeRun `json:"runs"`
	// Capacity ratios of the coalesced mode against both uncoalesced
	// modes.
	SpeedupVsSession   float64 `json:"coalesced_capacity_vs_session"`
	SpeedupVsAlignRead float64 `json:"coalesced_capacity_vs_alignread"`
	// Gates. HashOK is enforced on every run; the rest are full-run-only
	// (the quick workload is too small for stable rate measurements).
	HashOK       bool   `json:"all_modes_match_offline"`
	HashMismatch string `json:"mismatch,omitempty"`
	CapacityGate bool   `json:"coalesced_beats_session_floor"`
	P99Gate      bool   `json:"coalesced_p99_not_worse_at_offered_load"`
	ShedGate     bool   `json:"overload_shed_with_retry_after"`
}

// serveSpec shapes the -compare-serve workload. The index is deliberately
// segment-heavy (small segments, small k) because the per-session cost a
// coalesced batch amortizes grows with the number of segments each
// pipeline window sweeps; k is small so three servers' worth of mapped
// caches stay tiny.
func serveSpec(quick bool) (WorkloadSpec, core.Config) {
	spec := WorkloadSpec{Seed: 11, GenomeLen: 200_000, Coverage: 5, ErrorRate: 0.02, ReadLen: 101}
	if quick {
		spec = WorkloadSpec{Seed: 11, GenomeLen: 50_000, Coverage: 2, ErrorRate: 0.02, ReadLen: 101}
	}
	cfg := core.DefaultConfig()
	cfg.KmerLen = 8
	cfg.SegmentLen = 2000
	cfg.Overlap = spec.ReadLen + cfg.K + 16
	return spec, cfg
}

// CompareServe builds the serving workload, computes the offline
// AlignBatch digest, then measures each serving mode end to end over HTTP:
// identity pass, closed-loop capacity, open-loop latency/shedding at a
// shared offered rate calibrated off the session baseline. All three
// servers share one cache directory, so the first pays the index rebuild
// and the rest map the same content-addressed file — the registry path a
// production restart takes.
func CompareServe(quick bool) (ServeComparison, error) {
	spec, cc := serveSpec(quick)
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return ServeComparison{}, fmt.Errorf("bench: workload produced no reads")
	}
	out := ServeComparison{
		Reads:      len(reads),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostNote: fmt.Sprintf("GOMAXPROCS=%d: both uncoalesced modes spend the same per-read alignment CPU as the batch path; "+
			"coalescing amortizes per-session pool spin-up and the per-segment window sweep, not parallelism, "+
			"so single-core ratios are the floor of what multi-core serving sees", runtime.GOMAXPROCS(0)),
		MaxBatchLimit: 64,
		QueueLimit:    256,
	}

	// Offline baseline: one AlignBatch over the exact read set, digested
	// with the shared fold. Served responses must reproduce it bit for bit
	// in every mode.
	offline, err := core.New(wl.Ref, cc)
	if err != nil {
		return ServeComparison{}, err
	}
	out.Segments = offline.NumSegments()
	results, _ := offline.AlignBatch(reads)
	out.OfflineHash, out.OfflineAligned = digestResults(results)
	offline = nil

	dir, err := os.MkdirTemp("", "genax-bench-serve")
	if err != nil {
		return ServeComparison{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	fasta := filepath.Join(dir, "serve.fasta")
	f, err := os.Create(fasta)
	if err != nil {
		return ServeComparison{}, err
	}
	if err := dna.WriteFasta(f, []dna.FastaRecord{{Name: "serve", Seq: wl.Ref}}, 0); err != nil {
		_ = f.Close()
		return ServeComparison{}, err
	}
	if err := f.Close(); err != nil {
		return ServeComparison{}, err
	}

	out.PeakRSSSupported = resetPeakRSS()
	var offered float64 // calibrated from the session run
	for _, mode := range serveModes {
		run, err := measureServeMode(mode, fasta, dir, cc, reads, out, offered, quick)
		if err != nil {
			return ServeComparison{}, err
		}
		if mode == "session" {
			offered = run.CapacityRPS * serveOfferedFactor
		}
		out.Runs = append(out.Runs, run)
	}

	out.HashOK = true
	for i := range out.Runs {
		r := &out.Runs[i]
		r.HashMatch = r.ResultHash == out.OfflineHash && r.Aligned == out.OfflineAligned
		if !r.HashMatch && out.HashMismatch == "" {
			out.HashOK = false
			out.HashMismatch = fmt.Sprintf("%s served hash %016x (%d aligned) != offline %016x (%d aligned)",
				r.Mode, r.ResultHash, r.Aligned, out.OfflineHash, out.OfflineAligned)
		}
	}
	session, alignread, coalesced := &out.Runs[0], &out.Runs[1], &out.Runs[2]
	if session.CapacityRPS > 0 {
		out.SpeedupVsSession = coalesced.CapacityRPS / session.CapacityRPS
	}
	if alignread.CapacityRPS > 0 {
		out.SpeedupVsAlignRead = coalesced.CapacityRPS / alignread.CapacityRPS
	}
	out.CapacityGate = out.SpeedupVsSession >= ServeSpeedupFloor
	out.P99Gate = coalesced.OK > 0 && session.OK > 0 && coalesced.P99 <= session.P99
	// The coalescing admission queue must shed the overload burst, every
	// rejection carrying the Retry-After hint.
	out.ShedGate = coalesced.BurstRejected > 0 && coalesced.BurstRetryAfter
	return out, nil
}

// measureServeMode stands up one real server in the given mode and runs
// the three measurement phases against it over HTTP. offeredRPS of zero
// (the calibration run) makes the open-loop phase reuse the capacity
// probe's measured rate times serveOfferedFactor.
func measureServeMode(mode, fasta, cacheDir string, cc core.Config, reads []dna.Seq,
	cmp ServeComparison, offeredRPS float64, quick bool) (ServeRun, error) {
	run := ServeRun{Mode: mode}
	cfg := serve.Config{
		Genomes:           []serve.GenomeConfig{{Name: "g0", Fasta: fasta, Preload: true}},
		Core:              cc,
		CacheDir:          cacheDir,
		MaxBatch:          cmp.MaxBatchLimit,
		QueueLimit:        cmp.QueueLimit,
		MaxResident:       1,
		PerRequestSession: mode == "session",
		Logf:              func(string, ...any) {},
	}
	if mode == "coalesced" {
		cfg.CoalesceWindow = serve.DefaultCoalesceWindow
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return ServeRun{}, err
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if err := srv.Preload(context.Background(), true); err != nil {
		return ServeRun{}, err
	}
	client := newServeClient(hs.URL)

	// Phase 1 — identity: serve every workload read once (closed loop,
	// bounded concurrency) and fold the responses in read order. Doubles
	// as warmup for the rate phases.
	responses := make([]serveResponse, len(reads))
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(reads) {
					return
				}
				resp, status, _, err := client.post(reads[i])
				if err != nil || status != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("identity pass read %d: status %d err %v", i, status, err))
					return
				}
				responses[i] = resp
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ServeRun{}, fmt.Errorf("bench: %s: %w", mode, err)
	}
	run.ResultHash, run.Aligned = digestServed(responses)

	probeDur, loadDur := 1500*time.Millisecond, 2*time.Second
	if quick {
		probeDur, loadDur = 250*time.Millisecond, 300*time.Millisecond
	}

	// Phase 2 — capacity: closed loop, fixed concurrency, no pacing.
	run.CapacityRPS = serveCapacity(client, reads, 128, probeDur)

	// Phase 3 — open loop at the shared offered rate (calibrated from the
	// session baseline's capacity on the first run).
	if offeredRPS <= 0 {
		offeredRPS = run.CapacityRPS * serveOfferedFactor
	}
	serveOpenLoop(&run, client, reads, offeredRPS, loadDur)

	run.PeakRSSBytes = peakRSSBytes()
	resetPeakRSS()

	if mode == "coalesced" {
		if err := scrapeStats(client, &run); err != nil {
			return ServeRun{}, err
		}
		// Phase 4 — overload burst against a dedicated tiny-queue server.
		// The open-loop pacer cannot oversubscribe this server when client
		// and server share the host's cores (the pacer itself gets
		// starved), so back-pressure is verified directly: a burst far
		// wider than the intake queue must shed with 429 + Retry-After
		// while the dispatcher is busy flushing.
		if err := serveShedCheck(&run, fasta, cacheDir, cc, reads); err != nil {
			return ServeRun{}, err
		}
	}
	return run, nil
}

// serveShedCheck stands up a coalescing server whose intake queue holds
// only 4 requests and fires 64 at once. The dispatcher's first flush is
// still aligning when the queue refills, so most of the burst must be
// rejected at admission — quickly, with the Retry-After hint — rather
// than queued without bound.
func serveShedCheck(run *ServeRun, fasta, cacheDir string, cc core.Config, reads []dna.Seq) error {
	srv, err := serve.New(serve.Config{
		Genomes:        []serve.GenomeConfig{{Name: "g0", Fasta: fasta, Preload: true}},
		Core:           cc,
		CacheDir:       cacheDir,
		MaxBatch:       4,
		QueueLimit:     4,
		MaxResident:    1,
		CoalesceWindow: serve.DefaultCoalesceWindow,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if err := srv.Preload(context.Background(), true); err != nil {
		return err
	}
	client := newServeClient(hs.URL)

	const n = 64
	var mu sync.Mutex
	okN, rejN := 0, 0
	allHints := true
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status, retryAfter, err := client.post(reads[i%len(reads)])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && status == http.StatusOK:
				okN++
			case err == nil && status == http.StatusTooManyRequests:
				rejN++
				if retryAfter == "" {
					allHints = false
				}
			}
		}()
	}
	wg.Wait()
	run.BurstSent, run.BurstOK, run.BurstRejected = n, okN, rejN
	run.BurstRetryAfter = rejN > 0 && allHints
	return nil
}

// serveCapacity measures closed-loop sustained throughput: conc workers
// post reads round-robin as fast as the server answers them for dur.
func serveCapacity(client *serveClient, reads []dna.Seq, conc int, dur time.Duration) float64 {
	var ok atomic.Int64
	var next atomic.Int64
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := int(next.Add(1)-1) % len(reads)
				if _, status, _, err := client.post(reads[i]); err == nil && status == http.StatusOK {
					ok.Add(1)
				}
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(ok.Load()) / elapsed.Seconds()
}

// serveOpenLoop fires requests on a fixed schedule regardless of how the
// server is keeping up — the client population of an overloaded service —
// and records per-request latency (successful requests), goodput, and
// shedding behaviour. A full admission queue answers fast (429), so the
// in-flight population stays bounded by the server, not the pacer.
func serveOpenLoop(run *ServeRun, client *serveClient, reads []dna.Seq, rps float64, dur time.Duration) {
	if rps <= 0 {
		return
	}
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	run.OfferedRPS = rps

	var mu sync.Mutex
	var lats []time.Duration
	var okN, rejN, errN int
	retrySeen := false

	var wg sync.WaitGroup
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(dur)
	sent := 0
	for now := range ticker.C {
		if now.After(deadline) {
			break
		}
		i := sent % len(reads)
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			_, status, retryAfter, err := client.post(reads[i])
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && status == http.StatusOK:
				okN++
				lats = append(lats, lat)
			case err == nil && status == http.StatusTooManyRequests:
				rejN++
				if retryAfter != "" {
					retrySeen = true
				}
			default:
				errN++
			}
		}()
	}
	wg.Wait()
	run.Sent, run.OK, run.Rejected, run.Errors = sent, okN, rejN, errN
	run.RetryAfterSeen = retrySeen
	run.GoodputRPS = float64(okN) / dur.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	run.P50 = percentile(lats, 0.50)
	run.P90 = percentile(lats, 0.90)
	run.P99 = percentile(lats, 0.99)
}

// percentile reads the p-th quantile from an ascending latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// serveResponse is the decoded /align answer plus enough to digest it.
type serveResponse struct {
	Aligned bool   `json:"aligned"`
	Pos     int    `json:"pos"`
	Score   int    `json:"score"`
	Cigar   string `json:"cigar"`
	Reverse bool   `json:"reverse"`
}

// digestServed folds served responses with the same byte stream as
// digestResults folds core.ReadResult, so a served run and an offline
// AlignBatch over the same reads hash identically exactly when the
// alignments agree.
func digestServed(responses []serveResponse) (hash uint64, aligned int) {
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range responses {
		if !r.Aligned {
			_, _ = h.Write([]byte{0})
			continue
		}
		aligned++
		_, _ = h.Write([]byte{1})
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(r.Pos)))
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(r.Score)))
		_, _ = h.Write(buf[:])
		if r.Reverse {
			_, _ = h.Write([]byte{1})
		} else {
			_, _ = h.Write([]byte{0})
		}
		_, _ = h.Write([]byte(r.Cigar))
	}
	return h.Sum64(), aligned
}

// serveClient posts reads to one server over a connection-pooled client.
type serveClient struct {
	base string
	hc   *http.Client
}

func newServeClient(base string) *serveClient {
	tr := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512}
	return &serveClient{base: base, hc: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

// post aligns one read; it returns the decoded response, the HTTP status,
// and the Retry-After header (when present).
func (c *serveClient) post(read dna.Seq) (serveResponse, int, string, error) {
	resp, err := c.hc.Post(c.base+"/align/g0", "text/plain", strings.NewReader(read.String()))
	if err != nil {
		return serveResponse{}, 0, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	var out serveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return serveResponse{}, resp.StatusCode, "", err
		}
	}
	return out, resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// scrapeStats pulls the coalescing shape out of /statsz.
func scrapeStats(client *serveClient, run *ServeRun) error {
	resp, err := client.hc.Get(client.base + "/statsz")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	for _, g := range snap.Genomes {
		if g.Name != "g0" {
			continue
		}
		run.Batches, run.BatchedReads, run.MaxBatch = g.Batches, g.BatchedReads, g.MaxBatch
		if g.Batches > 0 {
			run.MeanBatch = float64(g.BatchedReads) / float64(g.Batches)
		}
	}
	return nil
}

func (c ServeComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving-mode comparison (%d reads, %d segments, GOMAXPROCS=%d, max batch %d, queue %d)\n",
		c.Reads, c.Segments, c.GOMAXPROCS, c.MaxBatchLimit, c.QueueLimit)
	fmt.Fprintf(&b, "%-10s %10s %10s %6s %6s %5s %9s %9s %9s %10s %8s\n",
		"mode", "capacity", "offered", "ok", "rej", "err", "p50", "p90", "p99", "peakrss", "=offline")
	for _, r := range c.Runs {
		rss := "n/a"
		if r.PeakRSSBytes > 0 {
			rss = fmt.Sprintf("%d MiB", r.PeakRSSBytes>>20)
		}
		fmt.Fprintf(&b, "%-10s %8.0f/s %8.0f/s %6d %6d %5d %9v %9v %9v %10s %8v\n",
			r.Mode, r.CapacityRPS, r.OfferedRPS, r.OK, r.Rejected, r.Errors,
			r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			rss, r.HashMatch)
	}
	for _, r := range c.Runs {
		if r.Batches > 0 {
			fmt.Fprintf(&b, "%s: %d flushes, %.1f reads/flush mean, %d max\n",
				r.Mode, r.Batches, r.MeanBatch, r.MaxBatch)
		}
	}
	for _, r := range c.Runs {
		if r.BurstSent > 0 {
			fmt.Fprintf(&b, "overload burst (queue 4): %d sent, %d ok, %d shed with 429 (Retry-After on all: %v)\n",
				r.BurstSent, r.BurstOK, r.BurstRejected, r.BurstRetryAfter)
		}
	}
	fmt.Fprintf(&b, "coalesced capacity: %.2fx vs per-request sessions (floor %.2fx), %.2fx vs pooled AlignRead\n",
		c.SpeedupVsSession, ServeSpeedupFloor, c.SpeedupVsAlignRead)
	fmt.Fprintf(&b, "gates: hash %v, capacity %v, p99 %v, shed(429+Retry-After) %v\n",
		c.HashOK, c.CapacityGate, c.P99Gate, c.ShedGate)
	if c.HashOK {
		b.WriteString("served results in every mode are byte-identical to offline AlignBatch")
	} else {
		b.WriteString("MISMATCH: " + c.HashMismatch)
	}
	return b.String()
}
