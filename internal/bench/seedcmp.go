package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/indexio"
	"genax/internal/seed"
)

// SeedRun is one scan mode's measurement over the workload: a warmed
// AlignBatch timed wall-clock, the seed stage's busy time from the
// injected instrument, steady-state allocations per read, and the shared
// result digest — the seed-stage mirror of EngineRun.
type SeedRun struct {
	Scan string `json:"scan"`
	// Backing is where the index tables live: "heap" (in-process build)
	// or "mapped" (zero-copy views over an mmap-ed v2 cache file).
	Backing       string        `json:"backing"`
	Wall          time.Duration `json:"wall_ns"`
	SeedBusy      time.Duration `json:"seed_busy_ns"`
	AllocsPerRead float64       `json:"allocs_per_read"`
	Aligned       int           `json:"aligned"`
	IndexLookups  int64         `json:"index_lookups"`
	CAMLookups    int64         `json:"cam_lookups"`
	ResultHash    uint64        `json:"result_hash"`
	// MatchesBaseline reports hash equality with the per-probe run.
	MatchesBaseline bool `json:"matches_baseline"`
}

// SeedComparison is the -compare-seed report: the same workload through
// the pre-overhaul per-probe seed path and the rolling-scan path, plus the
// serial-vs-parallel index build, mirroring the -compare-engines pattern.
// The rolling run must hash identically to the per-probe baseline, and the
// parallel index build must hash identically to the serial one.
type SeedComparison struct {
	Reads              int           `json:"reads"`
	Runs               []SeedRun     `json:"runs"`
	SeedSpeedup        float64       `json:"seed_speedup_rolling_vs_perprobe"`
	EndToEndGain       float64       `json:"end_to_end_speedup_rolling_vs_perprobe"`
	IndexBuildSerial   time.Duration `json:"index_build_serial_ns"`
	IndexBuildParallel time.Duration `json:"index_build_parallel_ns"`
	IndexBuildWorkers  int           `json:"index_build_workers"`
	IndexBuildSpeedup  float64       `json:"index_build_speedup"`
	IndexHash          uint64        `json:"index_hash"`
	IndexHashMatch     bool          `json:"parallel_matches_serial_index"`
	ResultMatch        bool          `json:"rolling_matches_perprobe"`
	ResultMismatch     string        `json:"mismatch,omitempty"`
	// MappedMatch reports the mapped rolling run (zero-copy views over an
	// mmap-ed v2 cache of the same index) hashing identically — results
	// and work counters — to the heap per-probe baseline.
	MappedMatch bool `json:"mapped_matches_heap"`
	// MappedSeedBusy is mapped-over-heap rolling seed-stage busy time;
	// near 1.0 means the borrowed views cost nothing over heap slices.
	MappedSeedBusy float64 `json:"mapped_seed_busy_vs_heap_rolling"`
}

// seedCompareOrder fixes the measurement sequence (baseline first so the
// rolling run can be checked against it).
var seedCompareOrder = []seed.ScanMode{seed.ScanPerProbe, seed.ScanRolling}

// CompareSeed times the serial and parallel index builds, then runs the
// workload through the per-probe and rolling seed paths over the SAME
// parallel-built index, reporting seed-stage busy time, allocations, work
// counters, and result digests. A third run repeats the rolling scan over
// a zero-copy mapped v2 cache of that index, recording what the borrowed
// views cost the seed stage relative to heap slices. This is the
// acceptance harness for the seed-stage overhaul: same results and same
// modelled work counts as the old path, at a fraction of the seed time.
func CompareSeed(spec WorkloadSpec) (SeedComparison, error) {
	wl := spec.Build()
	reads := ReadSeqs(wl)
	if len(reads) == 0 {
		return SeedComparison{}, fmt.Errorf("bench: workload produced no reads")
	}
	cfg := CoreConfig(spec)
	workers := spec.ResolveIndexWorkers()
	out := SeedComparison{Reads: len(reads), IndexBuildWorkers: workers}

	// An untimed warmup build plus a GC before each timed build keeps heap
	// growth and collection pressure out of the serial-vs-parallel ratio
	// (the first build on a cold heap can be several times slower than
	// either steady-state path).
	if _, err := seed.BuildSegmentedIndexWith(wl.Ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen, 1); err != nil {
		return SeedComparison{}, err
	}
	runtime.GC()
	t0 := time.Now()
	serial, err := seed.BuildSegmentedIndexWith(wl.Ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen, 1)
	if err != nil {
		return SeedComparison{}, err
	}
	out.IndexBuildSerial = time.Since(t0)
	// Keep only the digest: retaining the serial index across the second
	// timed build would make every GC during it scan a full extra index,
	// penalizing whichever build runs second.
	serialHash := serial.Hash()
	serial = nil
	_ = serial
	runtime.GC()
	t0 = time.Now()
	parallel, err := seed.BuildSegmentedIndexWith(wl.Ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen, workers)
	if err != nil {
		return SeedComparison{}, err
	}
	out.IndexBuildParallel = time.Since(t0)
	out.IndexHash = parallel.Hash()
	out.IndexHashMatch = serialHash == out.IndexHash
	if out.IndexBuildParallel > 0 {
		out.IndexBuildSpeedup = float64(out.IndexBuildSerial) / float64(out.IndexBuildParallel)
	}

	for _, mode := range seedCompareOrder {
		run, err := measureSeedRun(spec, wl.Ref, reads, parallel, mode)
		if err != nil {
			return SeedComparison{}, err
		}
		run.Backing = "heap"
		out.Runs = append(out.Runs, run)
	}
	mapped, err := measureMappedSeedRun(spec, wl.Ref, reads, parallel)
	if err != nil {
		return SeedComparison{}, err
	}
	out.Runs = append(out.Runs, mapped)
	base, rolling := out.Runs[0], out.Runs[1]
	for i := range out.Runs {
		out.Runs[i].MatchesBaseline = out.Runs[i].ResultHash == base.ResultHash
	}
	out.MappedMatch = mapped.ResultHash == base.ResultHash &&
		mapped.IndexLookups == base.IndexLookups && mapped.CAMLookups == base.CAMLookups
	if rolling.SeedBusy > 0 {
		out.MappedSeedBusy = float64(mapped.SeedBusy) / float64(rolling.SeedBusy)
	}
	out.ResultMatch = rolling.ResultHash == base.ResultHash &&
		rolling.IndexLookups == base.IndexLookups && rolling.CAMLookups == base.CAMLookups
	if !out.ResultMatch {
		out.ResultMismatch = fmt.Sprintf(
			"rolling (hash %016x, lookups %d/%d) != perprobe (hash %016x, lookups %d/%d)",
			rolling.ResultHash, rolling.IndexLookups, rolling.CAMLookups,
			base.ResultHash, base.IndexLookups, base.CAMLookups)
	}
	if rolling.SeedBusy > 0 {
		out.SeedSpeedup = float64(base.SeedBusy) / float64(rolling.SeedBusy)
	}
	if rolling.Wall > 0 {
		out.EndToEndGain = float64(base.Wall) / float64(rolling.Wall)
	}
	return out, nil
}

// measureMappedSeedRun writes idx to a temporary v2 cache file, maps it
// zero-copy, and measures the rolling scan over the mapped tables — the
// same measurement as the heap rolling run, with every table access (and
// the reference itself) going through borrowed views over the mapping.
func measureMappedSeedRun(spec WorkloadSpec, ref dna.Seq, reads []dna.Seq, idx *seed.SegmentedIndex) (SeedRun, error) {
	dir, err := os.MkdirTemp("", "genax-bench-seed")
	if err != nil {
		return SeedRun{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	path := filepath.Join(dir, "index-v2.gaxi")
	if err := indexio.WriteFileShards(path, idx, ref, 0); err != nil {
		return SeedRun{}, err
	}
	m, err := indexio.OpenMapped(path)
	if err != nil {
		return SeedRun{}, err
	}
	run, err := measureSeedRun(spec, m.Ref(), reads, m.Index(), seed.ScanRolling)
	// measureSeedRun's aligner is done and dropped, so every lane has
	// drained and the mapping may be closed before the file is removed.
	cerr := m.Close()
	if err != nil {
		return SeedRun{}, err
	}
	if cerr != nil {
		return SeedRun{}, cerr
	}
	run.Backing = "mapped"
	return run, nil
}

// measureSeedRun builds an instrumented aligner for one scan mode over a
// prebuilt index, warms the lane scratch with a throwaway batch, then
// times a second identical batch — measureEngine's shape, pointed at the
// seed stage.
func measureSeedRun(spec WorkloadSpec, ref dna.Seq, reads []dna.Seq, idx *seed.SegmentedIndex, mode seed.ScanMode) (SeedRun, error) {
	cfg := CoreConfig(spec)
	cfg.Seeding.Scan = mode
	cfg.Index = idx
	inst := &core.Instrument{Now: func() int64 { return time.Now().UnixNano() }}
	cfg.Instrument = inst
	aligner, err := core.New(ref, cfg)
	if err != nil {
		return SeedRun{}, err
	}
	if res, _ := aligner.AlignBatch(reads); len(res) != len(reads) {
		return SeedRun{}, fmt.Errorf("bench: AlignBatch dropped reads")
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	busy0 := inst.Seed.BusyNanos.Load()
	start := time.Now()
	results, stats := aligner.AlignBatch(reads)
	wall := time.Since(start)
	busy := inst.Seed.BusyNanos.Load() - busy0
	runtime.ReadMemStats(&after)

	hash, aligned := digestResults(results)
	return SeedRun{
		Scan:          string(mode),
		Wall:          wall,
		SeedBusy:      time.Duration(busy),
		AllocsPerRead: float64(after.Mallocs-before.Mallocs) / float64(len(reads)),
		Aligned:       aligned,
		IndexLookups:  stats.IndexLookups,
		CAMLookups:    stats.CAMLookups,
		ResultHash:    hash,
	}, nil
}

func (c SeedComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed-stage comparison (%d reads)\n", c.Reads)
	fmt.Fprintf(&b, "%-10s %-7s %12s %12s %12s %8s %12s %16s %9s\n",
		"scan", "backing", "wall", "seedbusy", "allocs/read", "aligned", "idxlookups", "resulthash", "=baseline")
	for _, r := range c.Runs {
		fmt.Fprintf(&b, "%-10s %-7s %12v %12v %12.2f %8d %12d %016x %9v\n",
			r.Scan, r.Backing, r.Wall.Round(time.Microsecond), r.SeedBusy.Round(time.Microsecond),
			r.AllocsPerRead, r.Aligned, r.IndexLookups, r.ResultHash, r.MatchesBaseline)
	}
	fmt.Fprintf(&b, "rolling vs perprobe: seed stage %.2fx, end to end %.2fx\n", c.SeedSpeedup, c.EndToEndGain)
	fmt.Fprintf(&b, "mapped rolling seed stage: %.2fx of heap rolling busy time; matches baseline: %v\n",
		c.MappedSeedBusy, c.MappedMatch)
	fmt.Fprintf(&b, "index build: serial %v, parallel %v on %d workers (%.2fx); hashes match: %v\n",
		c.IndexBuildSerial.Round(time.Microsecond), c.IndexBuildParallel.Round(time.Microsecond),
		c.IndexBuildWorkers, c.IndexBuildSpeedup, c.IndexHashMatch)
	if c.ResultMatch {
		b.WriteString("rolling-scan results and work counters are identical to the per-probe baseline")
	} else {
		b.WriteString("MISMATCH: " + c.ResultMismatch)
	}
	return b.String()
}
