package pipeline

import (
	"context"
	"sync"
	"sync/atomic"

	"genax/internal/dna"
	"genax/internal/hw"
)

// pool is one running instance of the stage graph: the lane goroutines,
// the queues between them, and the free list of batch credits. A pool
// serves one AlignBatch call or one AlignStream session and is torn down
// by shutdown's stage-ordered cascade.
type pool struct {
	p *Pipeline

	// winChs delivers each window to every seed lane exactly once (one
	// private channel per lane — a shared channel could hand one lane two
	// copies and starve another, deadlocking the window barrier).
	winChs []chan *window
	// seedOut and extendIn are the bounded inter-stage queues.
	seedOut  chan *batch
	extendIn []chan *batch
	// free holds the batch credits: a seed lane must draw one per chunk,
	// so at most cap(free) batches exist and a stalled extend stage
	// propagates backpressure all the way to admission.
	free chan *batch

	seedWG, filterWG, extendWG sync.WaitGroup

	mu    sync.Mutex
	stats Stats
	trace []hw.LaneWork
}

// startPool launches the stage goroutines and pre-allocates the credits.
func (p *Pipeline) startPool() *pool {
	ns, nf, ne := p.params.SeedLanes, p.params.FilterLanes, p.params.ExtendLanes
	pl := &pool{p: p}
	pl.winChs = make([]chan *window, ns)
	for i := range pl.winChs {
		pl.winChs[i] = make(chan *window, 2)
	}
	pl.seedOut = make(chan *batch, ns+ne)
	pl.extendIn = make([]chan *batch, ne)
	for i := range pl.extendIn {
		pl.extendIn[i] = make(chan *batch, 2)
	}
	credits := 2 * (ns + ne + nf)
	pl.free = make(chan *batch, credits)
	for i := 0; i < credits; i++ {
		pl.free <- &batch{}
	}
	for i := 0; i < ns; i++ {
		ch := pl.winChs[i]
		pl.seedWG.Add(1)
		go func() {
			defer pl.seedWG.Done()
			p.seedWorker(pl, ch)
		}()
	}
	for i := 0; i < nf; i++ {
		pl.filterWG.Add(1)
		go func() {
			defer pl.filterWG.Done()
			p.filterWorker(pl)
		}()
	}
	for i := 0; i < ne; i++ {
		ch := pl.extendIn[i]
		pl.extendWG.Add(1)
		go func() {
			defer pl.extendWG.Done()
			p.extendWorker(pl, ch)
		}()
	}
	return pl
}

// submit hands a prepared window to every seed lane.
func (pl *pool) submit(w *window) {
	for _, ch := range pl.winChs {
		ch <- w
	}
}

// shutdown tears the stages down in graph order — close admission, wait
// for seeding, close the seed queue, wait for filtering, close the
// extension queues, wait for extension — then leaves the merged stats and
// trace in pl.stats / pl.trace.
func (pl *pool) shutdown() {
	for _, ch := range pl.winChs {
		close(ch)
	}
	pl.seedWG.Wait()
	close(pl.seedOut)
	pl.filterWG.Wait()
	for _, ch := range pl.extendIn {
		close(ch)
	}
	pl.extendWG.Wait()
}

// emitWindow finalizes a completed window's slots in read order, applying
// the MinScore gate, appending to results, and folding the per-read
// tallies into stats.
func emitWindow(w *window, minScore int, stats *Stats, results []ReadResult) []ReadResult {
	for i := range w.slots {
		rr := finalizeSlot(&w.slots[i], minScore)
		if rr.Aligned {
			stats.Aligned++
		}
		if w.exact[i] {
			stats.ExactReads++
		}
		results = append(results, rr)
	}
	stats.Reads += len(w.slots)
	return results
}

// AlignBatch maps all reads, processing the reference segment-major like
// the chip: for each segment, every read is seeded against that segment's
// tables, surviving hits are filtered and extended, and each read keeps
// its best alignment across segments. The whole batch is one window.
func (p *Pipeline) AlignBatch(reads []dna.Seq) ([]ReadResult, Stats) {
	res, stats, _ := p.alignBatch(reads, false)
	return res, stats
}

// AlignBatchTraced is AlignBatch plus the per-(read, strand, segment) work
// items consumed by hw.SimulateLanes (the Fig 11 lane-scheduling model).
func (p *Pipeline) AlignBatchTraced(reads []dna.Seq) ([]ReadResult, Stats, []hw.LaneWork) {
	return p.alignBatch(reads, true)
}

func (p *Pipeline) alignBatch(reads []dna.Seq, traced bool) ([]ReadResult, Stats, []hw.LaneWork) {
	var stats Stats
	stats.Segments = p.index.NumSegments()
	results := make([]ReadResult, 0, len(reads))
	if len(reads) == 0 {
		return results, stats, nil
	}
	pl := p.startPool()
	w := newWindow()
	w.reads = reads
	w.prepare(p, traced)
	pl.submit(w)
	<-w.done
	results = emitWindow(w, p.params.MinScore, &stats, results)
	pl.shutdown()
	stats.merge(pl.stats)
	return results, stats, pl.trace
}

// AlignStream maps reads arriving on in, emitting one ReadResult per read
// on the returned channel in input order. Reads are admitted in windows
// of at most Params.Window; at most two windows are in flight at once
// (one filling while one processes), so memory stays bounded no matter
// how long the stream runs. The returned Stats is populated when the
// result channel closes and must not be read before then.
//
// Cancelling ctx stops admission: it is observed between receives on in,
// so a producer blocked mid-send should close in to unblock the stream.
// Reads already admitted are still aligned and emitted before the result
// channel closes.
func (p *Pipeline) AlignStream(ctx context.Context, in <-chan dna.Seq) (<-chan ReadResult, *Stats) {
	out := make(chan ReadResult, 64)
	stats := &Stats{}
	go p.streamRun(ctx, in, out, stats)
	return out, stats
}

func (p *Pipeline) streamRun(ctx context.Context, in <-chan dna.Seq, out chan<- ReadResult, stats *Stats) {
	defer close(out)
	stats.Segments = p.index.NumSegments()
	var stopped atomic.Bool
	stopWatch := context.AfterFunc(ctx, func() { stopped.Store(true) })
	defer stopWatch()

	pl := p.startPool()
	defer func() {
		pl.shutdown()
		stats.merge(pl.stats)
	}()

	// Two windows ping-pong: while prev is in the stage graph, cur fills
	// from the input — the reorder buffer that keeps emission in input
	// order is simply the window itself.
	wins := [2]*window{newWindow(), newWindow()}
	var prev *window
	cur := 0
	for {
		w := wins[cur]
		cur ^= 1
		n := fillWindow(w, in, &stopped, p.params.Window)
		if n > 0 {
			w.prepare(p, false)
			pl.submit(w)
		}
		if prev != nil {
			<-prev.done
			emitStream(prev, p.params.MinScore, stats, out)
		}
		if n < p.params.Window {
			// Input closed or stream cancelled; drain the last window.
			if n > 0 {
				<-w.done
				emitStream(w, p.params.MinScore, stats, out)
			}
			return
		}
		prev = w
	}
}

// fillWindow admits up to max reads from in, returning how many arrived.
// Cancellation is checked between receives — each receive is a single
// blocking channel operation, keeping the package select-free.
func fillWindow(w *window, in <-chan dna.Seq, stopped *atomic.Bool, max int) int {
	w.reads = w.reads[:0]
	for len(w.reads) < max {
		if stopped.Load() {
			break
		}
		r, ok := <-in
		if !ok {
			break
		}
		w.reads = append(w.reads, r)
	}
	return len(w.reads)
}

// emitStream sends a completed window's results downstream in read order.
func emitStream(w *window, minScore int, stats *Stats, out chan<- ReadResult) {
	for i := range w.slots {
		rr := finalizeSlot(&w.slots[i], minScore)
		if rr.Aligned {
			stats.Aligned++
		}
		if w.exact[i] {
			stats.ExactReads++
		}
		out <- rr
	}
	stats.Reads += len(w.slots)
}
