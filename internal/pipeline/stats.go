package pipeline

import (
	"genax/internal/align"
	"genax/internal/extend"
)

// Stats aggregates pipeline work counters (the measured coefficients the
// hw throughput model consumes). Work counters are sums over lane-local
// tallies and are partition-independent: the same reads produce the same
// totals no matter how many lanes ran or how batches interleaved.
type Stats struct {
	// Reads, Aligned and ExactReads are per-window outcome tallies, folded
	// by emitWindow/emitStream as each window completes — never by merge,
	// which only folds lane-local work counters.
	//
	//genax:nomerge
	Reads, Aligned, ExactReads int
	// Segments is an identity of the index, set once per run, not a sum.
	//
	//genax:nomerge
	Segments                  int
	IndexLookups, CAMLookups  int64
	SeedsEmitted, HitsEmitted int64
	Extensions                int64
	ExtensionCycles           int64
	ReRuns                    int64
	// EngineFallbacks counts engine invocations served by the cycle-level
	// model instead of a bit-parallel datapath (the stitcher makes up to
	// two per extension: left and right legs) — nonzero only when the
	// engine was explicitly degraded (Params.CycleFallback). Silent
	// nonzero here is the ~25x slowdown PR 9 killed; keep it visible.
	EngineFallbacks int64
	// ChainGroups / ChainAnchors / ChainKept tally the long-read anchor
	// chaining stage: groups chained, anchors fed in, representatives kept.
	// Anchors minus kept is extension work avoided.
	ChainGroups, ChainAnchors, ChainKept int64
	// Routing is the cascade's per-leg histogram (extensions routed /
	// accepted / fell-through); all-zero for non-cascading engines.
	Routing extend.Routing
}

// ReadResult is the outcome for one read.
type ReadResult struct {
	Result  align.Result
	Aligned bool
}

// merge folds another stats block's work counters into t.
//
//genax:hotpath
func (t *Stats) merge(s Stats) {
	t.IndexLookups += s.IndexLookups
	t.CAMLookups += s.CAMLookups
	t.SeedsEmitted += s.SeedsEmitted
	t.HitsEmitted += s.HitsEmitted
	t.Extensions += s.Extensions
	t.ExtensionCycles += s.ExtensionCycles
	t.ReRuns += s.ReRuns
	t.EngineFallbacks += s.EngineFallbacks
	t.ChainGroups += s.ChainGroups
	t.ChainAnchors += s.ChainAnchors
	t.ChainKept += s.ChainKept
	t.Routing.Merge(s.Routing)
}

// Merge folds another stats block's work counters into t. It is the
// exported face of the lane-stats fold so callers composing their own
// aggregation (bench, tests) share the one field list.
func (t *Stats) Merge(s Stats) { t.merge(s) }

// finalizeSlot converts a merged slot into the reported ReadResult. This
// is the single MinScore gate of the whole package: batch, stream and
// single-read paths all pass through here, so a sub-threshold alignment
// can never leak out of one path but not another.
//
//genax:hotpath
func finalizeSlot(sl *slot, minScore int) ReadResult {
	if !sl.aligned || sl.res.Score < minScore {
		return ReadResult{}
	}
	return ReadResult{Result: sl.res, Aligned: true}
}
