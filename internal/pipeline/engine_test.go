package pipeline

import (
	"context"
	"testing"

	"genax/internal/dna"
	"genax/internal/extend"
)

// TestEngineByteIdentity is the engine-equivalence gate: the bit-parallel
// engine, the GenASM engine and the adaptive cascade must all reproduce
// the cycle-level oracle's AlignBatch and AlignStream output byte for
// byte — every position, score, strand and cigar — across lane splits, so
// swapping any of these engines is invisible to every consumer of the
// pipeline.
func TestEngineByteIdentity(t *testing.T) {
	p := smallParams()
	p.Engine = EngineSillaX
	oracle, wl := testPipeline(t, p, 440, 30000, 0.03)
	reads := workloadReads(wl, 80)
	want, wantStats := oracle.AlignBatch(reads)

	cases := []struct {
		name                   string
		seedLanes, extendLanes int
	}{
		{"default-split", 0, 0},
		{"1x1", 1, 1},
		{"6x3", 6, 3},
	}
	for _, eng := range []Engine{EngineBitSilla, EngineGenasm, EngineCascade} {
		for _, tc := range cases {
			bp := smallParams()
			bp.Engine = eng
			bp.SeedLanes, bp.ExtendLanes = tc.seedLanes, tc.extendLanes
			pl, err := New(oracle.ref, oracle.index, bp)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats := pl.AlignBatch(reads)
			label := string(eng) + "/" + tc.name
			for i := range want {
				sameResult(t, label, i, got[i], want[i])
			}
			// Work counters that do not depend on engine internals must
			// also agree; cycle counts legitimately differ (the bit-vector
			// engines have no re-runs), so they are excluded.
			if got, want := gotStats.Extensions, wantStats.Extensions; got != want {
				t.Errorf("%s: %d extensions, want %d", label, got, want)
			}
			if got, want := gotStats.Aligned, wantStats.Aligned; got != want {
				t.Errorf("%s: %d aligned, want %d", label, got, want)
			}
			if gotStats.ReRuns != 0 {
				t.Errorf("%s: bit-vector engine reported %d re-runs, want 0", label, gotStats.ReRuns)
			}
			switch eng {
			case EngineCascade:
				// The routing histogram must cover every extension and
				// show a nonzero certified share on this easy workload.
				if gotStats.Routing.Total() == 0 || gotStats.Routing.Certified() == 0 {
					t.Errorf("%s: routing total=%d certified=%d, want both nonzero",
						label, gotStats.Routing.Total(), gotStats.Routing.Certified())
				}
			case EngineGenasm:
				if gotStats.Routing.Legs[extend.LegGenasm].Routed == 0 {
					t.Errorf("%s: genasm leg routed 0 extensions", label)
				}
			default:
				if gotStats.Routing != (extend.Routing{}) {
					t.Errorf("%s: non-cascading engine produced routing %+v", label, gotStats.Routing)
				}
			}
		}

		// Streaming path against the oracle's batch.
		sp := smallParams()
		sp.Engine = eng
		sp.SeedLanes, sp.ExtendLanes, sp.Window = 4, 2, 17
		pl, err := New(oracle.ref, oracle.index, sp)
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan dna.Seq, len(reads))
		for _, r := range reads {
			in <- r
		}
		close(in)
		out, _ := pl.AlignStream(context.Background(), in)
		i := 0
		for rr := range out {
			sameResult(t, string(eng)+"/stream", i, rr, want[i])
			i++
		}
		if i != len(want) {
			t.Fatalf("%s/stream: %d results, want %d", eng, i, len(want))
		}
	}
}

// TestEngineBandedRuns pins the software-baseline selector: the banded
// engine has different alignment semantics (no byte-identity claim), but
// it must flow through the same stages and align the workload.
func TestEngineBandedRuns(t *testing.T) {
	p := smallParams()
	p.Engine = EngineBanded
	pl, wl := testPipeline(t, p, 441, 20000, 0.02)
	reads := workloadReads(wl, 40)
	results, stats := pl.AlignBatch(reads)
	aligned := 0
	for _, rr := range results {
		if rr.Aligned {
			aligned++
		}
	}
	if aligned < len(reads)*9/10 {
		t.Fatalf("banded engine aligned %d/%d reads", aligned, len(reads))
	}
	// The uniform counting wrapper makes banded work visible: Cycles
	// carries DP cells (formerly the engine bypassed the wrapper and
	// reported nothing), while re-runs remain a SillaX-only concept.
	if stats.ExtensionCycles == 0 && stats.Extensions > 0 {
		t.Error("banded engine reported no extension work; the counting wrapper is bypassed")
	}
	if stats.ReRuns != 0 {
		t.Errorf("banded engine reported %d re-runs, want 0", stats.ReRuns)
	}
}

// TestEngineValidation pins selector resolution: empty means bitsilla,
// anything unknown is rejected at construction.
func TestEngineValidation(t *testing.T) {
	pl, _ := testPipeline(t, smallParams(), 442, 12000, 0)
	if got := pl.Params().Engine; got != EngineBitSilla {
		t.Errorf("default engine resolved to %q, want %q", got, EngineBitSilla)
	}
	for _, eng := range []Engine{EngineBitSilla, EngineSillaX, EngineBanded, EngineGenasm, EngineCascade} {
		p := smallParams()
		p.Engine = eng
		if _, err := New(pl.ref, pl.index, p); err != nil {
			t.Errorf("engine %q rejected: %v", eng, err)
		}
	}
	p := smallParams()
	p.Engine = "cuda"
	if _, err := New(pl.ref, pl.index, p); err == nil {
		t.Error("unknown engine accepted")
	}
}
