package pipeline

import (
	"context"
	"testing"

	"genax/internal/dna"
)

// TestEngineByteIdentity is the production-default equivalence: the
// bit-parallel engine must reproduce the cycle-level oracle's AlignBatch
// and AlignStream output byte for byte — every position, score, strand and
// cigar — across lane splits, so swapping the default engine is invisible
// to every consumer of the pipeline.
func TestEngineByteIdentity(t *testing.T) {
	p := smallParams()
	p.Engine = EngineSillaX
	oracle, wl := testPipeline(t, p, 440, 30000, 0.03)
	reads := workloadReads(wl, 80)
	want, wantStats := oracle.AlignBatch(reads)

	cases := []struct {
		name                   string
		seedLanes, extendLanes int
	}{
		{"default-split", 0, 0},
		{"1x1", 1, 1},
		{"6x3", 6, 3},
	}
	for _, tc := range cases {
		bp := smallParams()
		bp.Engine = EngineBitSilla
		bp.SeedLanes, bp.ExtendLanes = tc.seedLanes, tc.extendLanes
		pl, err := New(oracle.ref, oracle.index, bp)
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats := pl.AlignBatch(reads)
		for i := range want {
			sameResult(t, "bitsilla/"+tc.name, i, got[i], want[i])
		}
		// Work counters that do not depend on engine internals must also
		// agree; cycle counts legitimately differ (the bit engine has no
		// re-runs), so they are excluded.
		if got, want := gotStats.Extensions, wantStats.Extensions; got != want {
			t.Errorf("%s: %d extensions, want %d", tc.name, got, want)
		}
		if got, want := gotStats.Aligned, wantStats.Aligned; got != want {
			t.Errorf("%s: %d aligned, want %d", tc.name, got, want)
		}
		if gotStats.ReRuns != 0 {
			t.Errorf("%s: bit engine reported %d re-runs, want 0", tc.name, gotStats.ReRuns)
		}
	}

	// Streaming path under the bit engine against the oracle's batch.
	sp := smallParams()
	sp.Engine = EngineBitSilla
	sp.SeedLanes, sp.ExtendLanes, sp.Window = 4, 2, 17
	pl, err := New(oracle.ref, oracle.index, sp)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan dna.Seq, len(reads))
	for _, r := range reads {
		in <- r
	}
	close(in)
	out, _ := pl.AlignStream(context.Background(), in)
	i := 0
	for rr := range out {
		sameResult(t, "bitsilla/stream", i, rr, want[i])
		i++
	}
	if i != len(want) {
		t.Fatalf("stream: %d results, want %d", i, len(want))
	}
}

// TestEngineBandedRuns pins the software-baseline selector: the banded
// engine has different alignment semantics (no byte-identity claim), but
// it must flow through the same stages and align the workload.
func TestEngineBandedRuns(t *testing.T) {
	p := smallParams()
	p.Engine = EngineBanded
	pl, wl := testPipeline(t, p, 441, 20000, 0.02)
	reads := workloadReads(wl, 40)
	results, stats := pl.AlignBatch(reads)
	aligned := 0
	for _, rr := range results {
		if rr.Aligned {
			aligned++
		}
	}
	if aligned < len(reads)*9/10 {
		t.Fatalf("banded engine aligned %d/%d reads", aligned, len(reads))
	}
	if stats.ReRuns != 0 || stats.ExtensionCycles != 0 {
		t.Errorf("banded engine reported machine cycles %d / re-runs %d, want 0/0",
			stats.ExtensionCycles, stats.ReRuns)
	}
}

// TestEngineValidation pins selector resolution: empty means bitsilla,
// anything unknown is rejected at construction.
func TestEngineValidation(t *testing.T) {
	pl, _ := testPipeline(t, smallParams(), 442, 12000, 0)
	if got := pl.Params().Engine; got != EngineBitSilla {
		t.Errorf("default engine resolved to %q, want %q", got, EngineBitSilla)
	}
	p := smallParams()
	p.Engine = "cuda"
	if _, err := New(pl.ref, pl.index, p); err == nil {
		t.Error("unknown engine accepted")
	}
}
