package pipeline

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// singleLane is the fused fast path behind AlignRead: one seed lane, one
// filter lane, and one extend lane wired back to back with a scratch
// window and batch instead of channels. Because the three stage methods
// (seedOne, filter, process) are exactly the ones the staged pool runs,
// the fused path produces byte-identical results — it just skips the
// queues, the goroutines, and the per-call pipeline construction that
// made the old AlignRead allocate a full batch setup per call. Lanes are
// pooled on the Pipeline, so a warm AlignRead allocates only the adopted
// result cigars.
type singleLane struct {
	p    *Pipeline
	seed *seedLane
	filt *filterLane
	ext  *extendLane
	w    window
	b    batch
}

func newSingleLane(p *Pipeline) *singleLane {
	return &singleLane{
		p:    p,
		seed: p.newSeedLane(),
		filt: p.newFilterLane(),
		ext:  p.newExtendLane(),
	}
}

// alignRead maps one read (both strands, all segments) through the fused
// stage path and returns the finalized, MinScore-gated result.
func (s *singleLane) alignRead(read dna.Seq) ReadResult {
	w := &s.w
	if cap(w.revBuf) < len(read) {
		w.revBuf = make(dna.Seq, 0, len(read))
	}
	w.revBuf = dna.AppendRevComp(w.revBuf[:0], read)
	if len(w.reads) != 1 {
		w.reads = make([]dna.Seq, 1)
		w.revs = make([]dna.Seq, 1)
		w.slots = make([]slot, 1)
		w.exact = make([]bool, 1)
	}
	w.reads[0] = read
	w.revs[0] = w.revBuf
	w.slots[0] = slot{}
	w.exact[0] = false
	w.traced = false

	b := &s.b
	for sg, si := range s.p.index.Samples {
		s.seed.bind(si)
		b.reset(w, int32(sg))
		s.seed.seedOne(read, 0, false, w, b)
		s.seed.seedOne(w.revs[0], 0, true, w, b)
		s.filt.filter(b)
		s.ext.process(b)
	}
	b.win = nil
	w.reads[0], w.revs[0] = nil, nil
	return finalizeSlot(&w.slots[0], s.p.params.MinScore)
}

// AlignRead maps a single read (both strands, all segments) through a
// pooled fused lane. Safe for concurrent use; steady state allocates only
// the adopted result cigars.
func (p *Pipeline) AlignRead(read dna.Seq) (align.Result, bool) {
	l := p.singles.Get().(*singleLane)
	rr := l.alignRead(read)
	p.singles.Put(l)
	if !rr.Aligned {
		return align.Result{}, false
	}
	return rr.Result, true
}
