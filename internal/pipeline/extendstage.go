package pipeline

import (
	"genax/internal/align"
	"genax/internal/bitsilla"
	"genax/internal/dna"
	"genax/internal/extend"
	"genax/internal/genasm"
	"genax/internal/hw"
	"genax/internal/sillax"
	"genax/internal/sw"
)

// countingEngine wraps every extension engine uniformly, folding each
// call's work report (Extension.Cycles and ReRuns, in the engine's native
// unit) into the lane stats. Before this wrapper covered all engines the
// banded baseline bypassed it and was invisible in the -stages busy and
// cycle counters.
type countingEngine struct {
	inner     extend.Engine
	cycles    *int64
	reruns    *int64
	fallbacks *int64
}

//genax:hotpath
func (e countingEngine) Extend(ref, query dna.Seq) extend.Extension {
	res := e.inner.Extend(ref, query)
	*e.cycles += int64(res.Cycles)
	*e.reruns += int64(res.ReRuns)
	if res.Fallback {
		*e.fallbacks++
	}
	return res
}

// extendLane is one ExtendStage worker's persistent state: the extension
// engine selected by Params.Engine, the stitcher with its reversal
// scratch, work counters, and — when tracing — the lane-local hw.LaneWork
// list.
type extendLane struct {
	p     *Pipeline
	st    extend.Stitcher
	stats Stats
	trace []hw.LaneWork
}

// newEngine builds one lane's extension engine per Params.Engine, wiring
// the engine's work counters (and, for the cascading engines, the routing
// histogram) into the lane-local stats that merge at drain time.
func (p *Pipeline) newEngine(stats *Stats) extend.Engine {
	k, sc := p.params.K, p.params.Scoring
	var inner extend.Engine
	switch p.params.Engine {
	case EngineSillaX:
		inner = extend.SillaXEngine{M: sillax.NewTracebackMachine(k, sc)}
	case EngineBanded:
		inner = extend.BandedEngine{A: sw.NewBandedAligner(sc, k)}
	case EngineGenasm:
		inner = extend.GenasmEngine{M: genasm.New(k, sc), R: &stats.Routing}
	case EngineCascade:
		inner = extend.NewCascade(k, sc, &stats.Routing)
	default: // EngineBitSilla
		if p.params.CycleFallback {
			inner = extend.BitSillaEngine{M: bitsilla.NewCycleFallback(k, sc)}
		} else {
			inner = extend.BitSillaEngine{M: bitsilla.New(k, sc)}
		}
	}
	return countingEngine{inner: inner, cycles: &stats.ExtensionCycles, reruns: &stats.ReRuns, fallbacks: &stats.EngineFallbacks}
}

func (p *Pipeline) newExtendLane() *extendLane {
	l := &extendLane{p: p}
	l.st = extend.Stitcher{Eng: p.newEngine(&l.stats)}
	return l
}

// exactCigar materializes the single-run cigar of a whole-read exact match.
// It is the one allocation an adopted fast-path candidate is allowed, kept
// out of the annotated process body on purpose.
func exactCigar(n int) align.Cigar {
	return align.Cigar{{Op: align.OpMatch, Len: n}}
}

// betterThan reports whether a candidate result with the given canonical
// rank should replace the slot's incumbent: strictly better under
// align.Result's total order, or equal with a lower rank. Because the
// order is total, this merge is associative and commutative — the slot
// converges to the same value under any batch interleaving.
//
//genax:hotpath
func betterThan(res align.Result, rank int64, sl *slot) bool {
	if !sl.aligned {
		return true
	}
	if res.Better(sl.res) {
		return true
	}
	if sl.res.Better(res) {
		return false
	}
	return rank < sl.rank
}

// process runs every candidate of a batch through the SillaX lane and
// merges outcomes into the window's slots. Slot writes need no lock: all
// batches of a chunk route to one extend lane, so each slot has a single
// writer. Exact-match candidates skip extension — their score is the full
// match and the cigar is materialized only on adoption, keeping the fast
// path allocation-free for out-scored positions.
//
//genax:hotpath
func (l *extendLane) process(b *batch) {
	w := b.win
	segRank := int64(b.seg) << 32
	scoring := l.p.params.Scoring
	for i := range b.cands {
		c := &b.cands[i]
		rank := segRank | int64(i)
		sl := &w.slots[c.read]
		reverse := c.flags&candReverse != 0
		if c.flags&candExact != 0 {
			n := len(w.reads[c.read])
			res := align.Result{RefPos: int(c.refPos), Score: n * scoring.Match, Reverse: reverse}
			if betterThan(res, rank, sl) {
				res.Cigar = exactCigar(n)
				sl.res, sl.rank, sl.aligned = res, rank, true
			}
			continue
		}
		q := w.reads[c.read]
		if reverse {
			q = w.revs[c.read]
		}
		cyclesBefore := l.stats.ExtensionCycles
		res := l.st.AlignAt(scoring, l.p.ref, q, int(c.seedStart), int(c.seedEnd), int(c.refPos), l.p.params.K)
		res.Reverse = reverse
		l.stats.Extensions++
		if c.workIdx >= 0 {
			b.work[c.workIdx].ExtJobs = append(b.work[c.workIdx].ExtJobs, l.stats.ExtensionCycles-cyclesBefore)
		}
		if betterThan(res, rank, sl) {
			sl.res, sl.rank, sl.aligned = res, rank, true
		}
	}
	if w.traced {
		l.trace = append(l.trace, b.work...)
	}
}

// extendWorker is one ExtendStage goroutine: it drains its private
// candidate queue — extend lanes always drain, which is what makes the
// credit-based backpressure deadlock-free — processes each batch, and
// recycles it to the free list.
func (p *Pipeline) extendWorker(pl *pool, in <-chan *batch) {
	l := p.newExtendLane()
	inst := p.params.Instrument
	for b := range in {
		t0 := inst.now()
		n := int64(len(b.cands))
		l.process(b)
		if inst != nil {
			inst.Extend.record(t0, inst.now(), 1, n)
		}
		b.recycle(pl.free)
	}
	pl.mu.Lock()
	pl.stats.merge(l.stats)
	pl.trace = append(pl.trace, l.trace...)
	pl.mu.Unlock()
}
