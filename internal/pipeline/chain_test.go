package pipeline

import (
	"context"
	"testing"

	"genax/internal/dna"
	"genax/internal/seed"
	"genax/internal/sim"
)

// longReadPipeline builds a Pipeline over a kilobase-read workload with a
// multi-word edit bound, so the chaining pass and the wide bitsilla
// datapath are both on the executed path.
func longReadPipeline(t *testing.T, p Params, seedVal int64) (*Pipeline, *sim.Workload) {
	t.Helper()
	wl := sim.NewLongReadWorkload(seedVal, 28000,
		sim.VariantProfile{SNPRate: 0.001, IndelRate: 0.0002, MaxIndel: 6},
		sim.LongReadProfile{MeanLength: 1100, Coverage: 0.9, ErrorRate: 0.05, IndelErrorFrac: 0.7, ReverseFraction: 0.5})
	idx, err := seed.BuildSegmentedIndex(wl.Ref, 14336, 1800, 12)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(wl.Ref, idx, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl, wl
}

func longParams() Params {
	p := smallParams()
	p.K = 64 // multi-word bound: the wide datapath serves every extension
	return p
}

// TestChainingSerialParallelIdentical is the chaining determinism gate:
// anchor chains collapse identically no matter how many lanes ran or how
// batches interleaved — serial batch, parallel batch and small-window
// stream must agree byte for byte, including the chain work counters.
func TestChainingSerialParallelIdentical(t *testing.T) {
	p := longParams()
	p.SeedLanes, p.ExtendLanes, p.FilterLanes = 1, 1, 1
	base, wl := longReadPipeline(t, p, 420)
	reads := workloadReads(wl, 18)
	want, wantStats := base.AlignBatch(reads)
	if wantStats.ChainGroups == 0 || wantStats.ChainKept == 0 {
		t.Fatalf("chaining not exercised: stats %+v", wantStats)
	}
	if wantStats.ChainKept >= wantStats.ChainAnchors {
		t.Fatalf("chaining collapsed nothing: %d anchors -> %d kept", wantStats.ChainAnchors, wantStats.ChainKept)
	}

	for _, tc := range []struct {
		name                   string
		seedLanes, extendLanes int
		window                 int // 0 = batch
	}{
		{"4x2-batch", 4, 2, 0},
		{"4x2-window8", 4, 2, 8},
	} {
		pp := longParams()
		pp.SeedLanes, pp.ExtendLanes = tc.seedLanes, tc.extendLanes
		if tc.window > 0 {
			pp.Window = tc.window
		}
		pl, err := New(base.ref, base.index, pp)
		if err != nil {
			t.Fatal(err)
		}
		var got []ReadResult
		var stats Stats
		if tc.window == 0 {
			got, stats = pl.AlignBatch(reads)
		} else {
			in := make(chan dna.Seq, len(reads))
			for _, r := range reads {
				in <- r
			}
			close(in)
			out, sp := pl.AlignStream(context.Background(), in)
			for rr := range out {
				got = append(got, rr)
			}
			stats = *sp
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", tc.name, len(got), len(want))
		}
		for i := range want {
			sameResult(t, tc.name, i, got[i], want[i])
		}
		if stats.ChainGroups != wantStats.ChainGroups ||
			stats.ChainAnchors != wantStats.ChainAnchors ||
			stats.ChainKept != wantStats.ChainKept {
			t.Errorf("%s: chain stats (%d %d %d), want (%d %d %d)", tc.name,
				stats.ChainGroups, stats.ChainAnchors, stats.ChainKept,
				wantStats.ChainGroups, wantStats.ChainAnchors, wantStats.ChainKept)
		}
	}
}

// TestChainingReducesExtensions pins the point of the stage: with
// chaining, long reads reach the extend lanes with fewer candidates, and
// alignment outcomes survive the collapse.
func TestChainingReducesExtensions(t *testing.T) {
	off := longParams()
	off.ChainMinLen = -1
	plOff, wl := longReadPipeline(t, off, 421)
	reads := workloadReads(wl, 14)
	resOff, statsOff := plOff.AlignBatch(reads)

	on := longParams()
	plOn, err := New(plOff.ref, plOff.index, on)
	if err != nil {
		t.Fatal(err)
	}
	resOn, statsOn := plOn.AlignBatch(reads)

	if statsOff.ChainGroups != 0 {
		t.Fatalf("ChainMinLen=-1 still chained %d groups", statsOff.ChainGroups)
	}
	if statsOn.Extensions >= statsOff.Extensions {
		t.Fatalf("chaining did not reduce extensions: %d with vs %d without", statsOn.Extensions, statsOff.Extensions)
	}
	alignedOff, alignedOn := 0, 0
	for i := range resOff {
		if resOff[i].Aligned {
			alignedOff++
		}
		if resOn[i].Aligned {
			alignedOn++
		}
	}
	if alignedOff == 0 {
		t.Fatal("baseline aligned nothing; workload too hard")
	}
	if alignedOn*10 < alignedOff*9 {
		t.Fatalf("chaining lost alignments: %d/%d vs %d/%d", alignedOn, len(reads), alignedOff, len(reads))
	}
}

// TestChainingShortReadsUntouched guards the short-read hash gates: at
// the default gate no 101 bp read is ever chained, so results are byte
// for byte those of a chaining-disabled pipeline.
func TestChainingShortReadsUntouched(t *testing.T) {
	p := smallParams()
	base, wl := testPipeline(t, p, 422, 30000, 0.02)
	reads := workloadReads(wl, 80)
	want, wantStats := base.AlignBatch(reads) // default gate (1000)
	if wantStats.ChainGroups != 0 || wantStats.ChainAnchors != 0 {
		t.Fatalf("short reads were chained: %+v", wantStats)
	}
	off := smallParams()
	off.ChainMinLen = -1
	plOff, err := New(base.ref, base.index, off)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats := plOff.AlignBatch(reads)
	for i := range want {
		sameResult(t, "chain-off", i, got[i], want[i])
	}
	if gotStats.Extensions != wantStats.Extensions {
		t.Errorf("extension counts differ: %d vs %d", gotStats.Extensions, wantStats.Extensions)
	}
}

// TestCycleFallbackCountedAndWarned pins the anti-silent-degrade
// satellite: a forced cycle-model engine produces byte-identical results,
// counts every extension in EngineFallbacks, and surfaces a warning at
// construction; the healthy configuration reports neither.
func TestCycleFallbackCountedAndWarned(t *testing.T) {
	p := smallParams()
	base, wl := testPipeline(t, p, 423, 20000, 0.02)
	reads := workloadReads(wl, 60)
	want, wantStats := base.AlignBatch(reads)
	if len(base.Warnings()) != 0 {
		t.Fatalf("healthy pipeline warns: %v", base.Warnings())
	}
	if wantStats.EngineFallbacks != 0 {
		t.Fatalf("healthy pipeline counted %d fallbacks", wantStats.EngineFallbacks)
	}

	fp := smallParams()
	fp.CycleFallback = true
	pl, err := New(base.ref, base.index, fp)
	if err != nil {
		t.Fatal(err)
	}
	if w := pl.Warnings(); len(w) != 1 {
		t.Fatalf("degraded pipeline warnings = %v, want one", w)
	}
	got, stats := pl.AlignBatch(reads)
	for i := range want {
		sameResult(t, "cycle-fallback", i, got[i], want[i])
	}
	// The stitcher invokes the engine once or twice per extension (left
	// and right legs), and every invocation must have been counted.
	if stats.Extensions == 0 || stats.EngineFallbacks < stats.Extensions ||
		stats.EngineFallbacks > 2*stats.Extensions {
		t.Fatalf("EngineFallbacks = %d with %d extensions, want within [n, 2n]", stats.EngineFallbacks, stats.Extensions)
	}
}
