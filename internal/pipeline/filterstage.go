package pipeline

import "genax/internal/chain"

// filterLane is one FilterStage worker's persistent state: the anchor
// dedup set and the long-read chainer, reused across batches, plus the
// lane-local work counters merged into the pipeline stats at drain time.
type filterLane struct {
	anchors map[int64]struct{}
	max     int // hit-set threshold per (read, strand); 0 = unlimited

	// chainMin gates the chaining pass by read length (<= 0 disables);
	// maxGap is the edit bound K — the diagonal drift one gapped
	// extension can reconcile.
	chainMin int
	maxGap   int32
	chainer  chain.Chainer
	stats    Stats
}

func (p *Pipeline) newFilterLane() *filterLane {
	f := &filterLane{anchors: make(map[int64]struct{}), max: p.params.MaxCandidates}
	f.chainMin = p.params.ChainMinLen
	f.maxGap = int32(p.params.K)
	return f
}

// filter compacts a batch in place: exact-match candidates short-circuit
// straight through (the fast path needs no extension and no dedup), while
// extension candidates are deduplicated by alignment diagonal — two seeds
// of one read whose hits imply the same reference offset would extend to
// the same alignment, so only the first survives — and optionally capped
// at the hit-set threshold. Candidates arrive grouped by (read, strand);
// the dedup set resets at each group boundary, reproducing the fused
// loop's per-(read, strand, segment) anchor set exactly.
//
// For reads at or above chainMin a second pass chains each surviving
// group's anchors (collinear within maxGap drift = one alignment) and
// keeps one representative per chain: without it, a 10 kb read's seeds
// land on dozens of indel-shifted diagonals per locus, and every diagonal
// the dedup keeps costs a full gapped extension of the whole read.
//
//genax:hotpath
func (f *filterLane) filter(b *batch) {
	out := b.cands[:0]
	curRead := int32(-1)
	var curFlags uint8
	kept := 0
	for _, c := range b.cands {
		if c.read != curRead || c.flags != curFlags {
			curRead, curFlags = c.read, c.flags
			kept = 0
			clear(f.anchors)
		}
		if c.flags&candExact == 0 {
			key := int64(c.refPos-c.seedStart)<<1 | int64(c.flags&candReverse)
			if _, dup := f.anchors[key]; dup {
				continue
			}
			f.anchors[key] = struct{}{}
			if f.max > 0 && kept >= f.max {
				continue
			}
			kept++
		}
		out = append(out, c)
	}
	b.cands = out
	if f.chainMin > 0 {
		f.chainGroups(b)
	}
}

// chainGroups runs the chaining pass over a filtered batch: each
// contiguous (read, strand) group of extension candidates belonging to a
// long read is collapsed to its chain representatives, compacting
// b.cands in place (forward copies only — the write cursor never passes
// the read cursor). Group contents are deterministic (canonical batch
// order), and chain.Collapse is order-independent on top of that, so
// serial and parallel pipelines keep identical candidate sets.
//
//genax:hotpath
func (f *filterLane) chainGroups(b *batch) {
	cands := b.cands
	n := len(cands)
	out := cands[:0]
	for g0 := 0; g0 < n; {
		g1 := g0 + 1
		for g1 < n && cands[g1].read == cands[g0].read && cands[g1].flags == cands[g0].flags {
			g1++
		}
		if cands[g0].flags&candExact != 0 || g1-g0 < 2 ||
			len(b.win.reads[cands[g0].read]) < f.chainMin {
			out = append(out, cands[g0:g1]...)
			g0 = g1
			continue
		}
		f.chainer.Reset()
		for i := g0; i < g1; i++ {
			f.chainer.Add(cands[i].seedStart, cands[i].seedEnd, cands[i].refPos)
		}
		keep := f.chainer.Collapse(f.maxGap)
		for _, ki := range keep {
			out = append(out, cands[g0+int(ki)])
		}
		f.stats.ChainGroups++
		f.stats.ChainAnchors += int64(g1 - g0)
		f.stats.ChainKept += int64(len(keep))
		g0 = g1
	}
	b.cands = out
}

// filterWorker is one FilterStage goroutine: it drains seed-stage batches,
// filters them, and forwards survivors to the batch's extend lane. A batch
// filtered down to nothing returns its credit immediately — unless the
// window is traced, in which case it still travels to the extend stage so
// its hw.LaneWork items reach the trace.
func (p *Pipeline) filterWorker(pl *pool) {
	f := p.newFilterLane()
	inst := p.params.Instrument
	for b := range pl.seedOut {
		t0 := inst.now()
		f.filter(b)
		if inst != nil {
			inst.Filter.record(t0, inst.now(), 1, int64(len(b.cands)))
		}
		if len(b.cands) == 0 && !b.win.traced {
			b.recycle(pl.free)
			continue
		}
		// Capture the lane before the send: once the batch crosses the
		// queue the extend stage may recycle it and a seed worker may
		// reset it, so b must not be touched afterwards.
		lane := b.lane
		pl.extendIn[lane] <- b
		if inst != nil {
			inst.Filter.sample(len(pl.extendIn[lane]))
		}
	}
	pl.mu.Lock()
	pl.stats.merge(f.stats)
	pl.mu.Unlock()
}
