package pipeline

// filterLane is one FilterStage worker's persistent state: the anchor
// dedup set, reused across batches.
type filterLane struct {
	anchors map[int64]struct{}
	max     int // hit-set threshold per (read, strand); 0 = unlimited
}

func (p *Pipeline) newFilterLane() *filterLane {
	return &filterLane{anchors: make(map[int64]struct{}), max: p.params.MaxCandidates}
}

// filter compacts a batch in place: exact-match candidates short-circuit
// straight through (the fast path needs no extension and no dedup), while
// extension candidates are deduplicated by alignment diagonal — two seeds
// of one read whose hits imply the same reference offset would extend to
// the same alignment, so only the first survives — and optionally capped
// at the hit-set threshold. Candidates arrive grouped by (read, strand);
// the dedup set resets at each group boundary, reproducing the fused
// loop's per-(read, strand, segment) anchor set exactly.
//
//genax:hotpath
func (f *filterLane) filter(b *batch) {
	out := b.cands[:0]
	curRead := int32(-1)
	var curFlags uint8
	kept := 0
	for _, c := range b.cands {
		if c.read != curRead || c.flags != curFlags {
			curRead, curFlags = c.read, c.flags
			kept = 0
			clear(f.anchors)
		}
		if c.flags&candExact == 0 {
			key := int64(c.refPos-c.seedStart)<<1 | int64(c.flags&candReverse)
			if _, dup := f.anchors[key]; dup {
				continue
			}
			f.anchors[key] = struct{}{}
			if f.max > 0 && kept >= f.max {
				continue
			}
			kept++
		}
		out = append(out, c)
	}
	b.cands = out
}

// filterWorker is one FilterStage goroutine: it drains seed-stage batches,
// filters them, and forwards survivors to the batch's extend lane. A batch
// filtered down to nothing returns its credit immediately — unless the
// window is traced, in which case it still travels to the extend stage so
// its hw.LaneWork items reach the trace.
func (p *Pipeline) filterWorker(pl *pool) {
	f := p.newFilterLane()
	inst := p.params.Instrument
	for b := range pl.seedOut {
		t0 := inst.now()
		f.filter(b)
		if inst != nil {
			inst.Filter.record(t0, inst.now(), 1, int64(len(b.cands)))
		}
		if len(b.cands) == 0 && !b.win.traced {
			b.recycle(pl.free)
			continue
		}
		// Capture the lane before the send: once the batch crosses the
		// queue the extend stage may recycle it and a seed worker may
		// reset it, so b must not be touched afterwards.
		lane := b.lane
		pl.extendIn[lane] <- b
		if inst != nil {
			inst.Filter.sample(len(pl.extendIn[lane]))
		}
	}
}
