package pipeline

import "genax/internal/hw"

// Candidate flags. candReverse occupies bit 0 so the filter's diagonal key
// reproduces the fused loop's (diagonal<<1 | strand) layout exactly.
const (
	candReverse = 1 << 0 // reverse-complement strand
	candExact   = 1 << 1 // whole-read exact match: skip extension (§V)
)

// cand is one extension candidate: read[seedStart:seedEnd] matches the
// reference exactly at refPos (global coordinate of seedStart). Candidates
// appear in a batch in canonical order — forward strand before reverse,
// seeds in read order, hits in position order — which is what gives every
// candidate its deterministic merge rank.
type cand struct {
	read               int32 // window-relative read index
	seedStart, seedEnd int32
	refPos             int32
	workIdx            int32 // index into batch.work, -1 when untraced
	flags              uint8
}

// batch is the unit flowing through the stage queues: every candidate both
// strands of one chunk of reads produced against one segment. Batches are
// drawn from a fixed free list (the pipeline's backpressure credits) and
// recycled after extension, so steady-state flow does not allocate.
type batch struct {
	win   *window
	seg   int32
	lane  int32 // destination extend lane (chunk-affine: one writer per slot)
	cands []cand
	// work holds one hw.LaneWork per (read, strand) seeded into this batch
	// when the window is traced: SeedOps filled by the seed stage, ExtJobs
	// appended by the extend stage.
	work []hw.LaneWork
}

// reset rebinds a recycled batch to a window and segment.
//
//genax:hotpath
func (b *batch) reset(w *window, seg int32) {
	b.win = w
	b.seg = seg
	b.lane = 0
	b.cands = b.cands[:0]
	b.work = b.work[:0]
}

// recycle marks the batch finished against its window and returns it to
// the free list. Traced ExtJobs slices have been handed to the lane trace,
// so they are dropped (not reused) to avoid aliasing.
func (b *batch) recycle(free chan<- *batch) {
	w := b.win
	b.cands = b.cands[:0]
	for i := range b.work {
		b.work[i] = hw.LaneWork{}
	}
	b.work = b.work[:0]
	b.win = nil
	free <- b
	w.finishBatch()
}
