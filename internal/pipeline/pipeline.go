// Package pipeline is the staged execution engine behind core.Aligner,
// shaped like the GenAx chip's decoupled datapath (§VI): seeding lanes and
// SillaX extension lanes are separate pools of persistent workers joined
// by bounded queues, not phases of one fused loop.
//
// The stage graph is
//
//	SeedStage ──bounded chan──▶ FilterStage ──bounded chans──▶ ExtendStage
//	(lane pool, per-segment     (exact-match short-circuit,    (SillaX lanes
//	 tables stream in,           diagonal dedup, hit-set        consuming
//	 chunked read claiming)      thresholding)                  candidates)
//
// Reads are admitted in windows (AlignStream) or as one whole batch
// (AlignBatch); within a window the seed lanes walk the reference segment
// by segment behind a barrier — the chip's table-streaming boundary —
// while filter and extend lanes run free, consuming candidate batches as
// they appear. Backpressure is credit-based: a candidate batch must be
// drawn from a fixed free list before a seed lane may fill it, so total
// in-flight memory is bounded and a slow extend pool stalls seeding
// instead of growing queues.
//
// Determinism holds by construction, not by ordering: every candidate
// carries a canonical rank (segment-major, forward strand before reverse,
// emission order within a batch), and a candidate replaces the incumbent
// best alignment only if it scores strictly better under align.Result's
// total order or ties it with a lower rank. That merge is associative and
// commutative, so any interleaving of extend lanes reproduces the fused
// sequential loop byte for byte. The package is on genaxvet's determinism
// list: no map iteration, wall-clock reads, or multi-channel selects —
// every channel operation is a single blocking send or receive.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/seed"
)

// Chip lane counts (§VI): 128 seeding lanes feed 4 SillaX lanes.
const (
	ChipSeedLanes   = 128
	ChipExtendLanes = 4
)

// DefaultWindow bounds the reads a stream holds in flight per window.
const DefaultWindow = 1024

// DefaultChainMinLen is the read length at which anchor chaining kicks in
// when Params.ChainMinLen is zero: long enough that every short-read
// workload (~100-300 bp) is byte-identical with chaining compiled in, and
// well below the 10 kb+ reads whose per-locus anchor counts make the
// extension stage quadratic without it.
const DefaultChainMinLen = 1000

// Engine names the extension engine backing the extend lanes. All engines
// produce full-query cigars through the same extend.Stitcher; bitsilla,
// sillax, genasm and cascade are byte-identical to one another by
// construction (banded is the one engine with different tie-breaking).
type Engine string

const (
	// EngineBitSilla is the bit-parallel Silla machine — the production
	// default: same observable semantics as the cycle model at
	// word-parallel speed.
	EngineBitSilla Engine = "bitsilla"
	// EngineSillaX is the cycle-level SillaX traceback machine, kept as
	// the reference oracle and for hardware figure reproductions that
	// need per-cycle re-run accounting.
	EngineSillaX Engine = "sillax"
	// EngineBanded is the software banded Smith-Waterman baseline.
	EngineBanded Engine = "banded"
	// EngineGenasm is the GenASM bit-vector engine: certified gapless
	// fast path with an embedded bitsilla fallback.
	EngineGenasm Engine = "genasm"
	// EngineCascade routes every extension cheapest-first through
	// exact → genasm → bitsilla, accepting a cheap leg's answer only
	// when it is certified byte-identical to the bitsilla floor.
	EngineCascade Engine = "cascade"
)

// Params configures a Pipeline.
type Params struct {
	// K is the SillaX edit bound (margin allowed around a read).
	K int
	// Scoring is the extension scheme.
	Scoring align.Scoring
	// Engine selects the extension engine ("" = EngineBitSilla).
	Engine Engine
	// Seeding carries the §V optimization switches.
	Seeding seed.Options
	// MinScore suppresses alignments below the reporting floor. The gate
	// is applied in exactly one place (finalizeSlot), after all segments
	// merged, for batch, stream and single-read paths alike.
	MinScore int
	// Workers is the total lane budget (0 = GOMAXPROCS). When SeedLanes
	// or ExtendLanes is zero the budget is split in the chip's 128:4
	// proportion by SplitLanes.
	Workers int
	// SeedLanes and ExtendLanes override the derived stage worker counts.
	SeedLanes, ExtendLanes int
	// FilterLanes sizes the filter stage (0 = one per extend lane).
	FilterLanes int
	// MaxCandidates, when positive, caps the extension candidates kept per
	// (read, strand, segment) after deduplication — the filter stage's
	// hit-set threshold. 0 keeps every candidate.
	MaxCandidates int
	// ChainMinLen gates the filter stage's anchor-chaining pass: reads at
	// least this long have their per-(read, strand, segment) candidate
	// groups chained (internal/chain) and collapsed to one representative
	// per chain before extension. 0 applies DefaultChainMinLen — high
	// enough that short-read workloads are untouched byte for byte;
	// negative disables chaining entirely.
	ChainMinLen int
	// CycleFallback forces the bitsilla engine onto the cycle-level model
	// (bitsilla.NewCycleFallback) — the pre-multi-word degrade path, kept
	// for benchmarking the fallback cost and counted per extension in
	// Stats.EngineFallbacks. Ignored by other engines.
	CycleFallback bool
	// Window bounds reads in flight per AlignStream window (0 = DefaultWindow).
	Window int
	// Instrument, when non-nil, collects per-stage busy time and queue
	// occupancy. The pipeline never reads a clock itself; bench code
	// injects one (the package stays on the determinism list).
	Instrument *Instrument
	// Residency, when non-nil, is notified as seed lanes enter and leave
	// each segment so a mapped index can bound how many shard groups are
	// resident at once (indexio.ShardResidency). Purely advisory for
	// correctness — results are byte-identical with or without it — it
	// exists to bound the working set when the index is larger than RAM.
	// The single-read fast path (AlignRead) bypasses it: one read touches
	// every segment anyway, so there is nothing to stream.
	Residency Residency
}

// Residency is the seed stage's segment-residency protocol: Acquire(seg)
// is called by each seed lane before it binds segment seg's tables,
// Release(seg) after the per-segment barrier. Acquire may block to bound
// the number of simultaneously resident segment groups; Release must
// never block. Implementations must tolerate every lane calling both for
// every segment, in ascending segment order per window.
type Residency interface {
	Acquire(seg int)
	Release(seg int)
}

// SplitLanes splits a worker budget between the seed and extend pools in
// the chip's 128:4 proportion, keeping at least one lane per pool. The
// chip's own budget of 132 maps exactly to (128, 4).
func SplitLanes(budget int) (seedLanes, extendLanes int) {
	if budget < 1 {
		budget = 1
	}
	extendLanes = budget * ChipExtendLanes / (ChipSeedLanes + ChipExtendLanes)
	if extendLanes < 1 {
		extendLanes = 1
	}
	seedLanes = budget - extendLanes
	if seedLanes < 1 {
		seedLanes = 1
	}
	return seedLanes, extendLanes
}

// Pipeline is a staged aligner bound to one reference and its segmented
// index. It is immutable after New and safe for concurrent use; each
// AlignBatch/AlignStream call spins up its own lane pools.
type Pipeline struct {
	params Params
	ref    dna.Seq
	index  *seed.SegmentedIndex

	// singles pools fused single-read lanes for AlignRead.
	singles sync.Pool
}

// New builds a Pipeline over ref and its index, resolving lane-count
// defaults. The index must have been built from ref.
func New(ref dna.Seq, index *seed.SegmentedIndex, p Params) (*Pipeline, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("pipeline: edit bound %d must be positive", p.K)
	}
	if index == nil {
		return nil, fmt.Errorf("pipeline: nil segment index")
	}
	switch p.Engine {
	case "":
		p.Engine = EngineBitSilla
	case EngineBitSilla, EngineSillaX, EngineBanded, EngineGenasm, EngineCascade:
	default:
		return nil, fmt.Errorf("pipeline: unknown engine %q", p.Engine)
	}
	switch p.Seeding.Scan {
	case "":
		p.Seeding.Scan = seed.ScanRolling
	case seed.ScanRolling, seed.ScanPerProbe:
	default:
		return nil, fmt.Errorf("pipeline: unknown scan mode %q", p.Seeding.Scan)
	}
	budget := p.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	ds, de := SplitLanes(budget)
	if p.SeedLanes <= 0 {
		p.SeedLanes = ds
	}
	if p.ExtendLanes <= 0 {
		p.ExtendLanes = de
	}
	if p.FilterLanes <= 0 {
		p.FilterLanes = p.ExtendLanes
	}
	if p.Window <= 0 {
		p.Window = DefaultWindow
	}
	if p.ChainMinLen == 0 {
		p.ChainMinLen = DefaultChainMinLen
	}
	pl := &Pipeline{params: p, ref: ref, index: index}
	pl.singles.New = func() any { return newSingleLane(pl) }
	return pl, nil
}

// Params returns the resolved configuration.
func (p *Pipeline) Params() Params { return p.params }

// Warnings reports configuration hazards worth a log line: conditions
// that keep results correct but silently cost large constant factors.
// Computed from the resolved params, so it is stable across calls.
func (p *Pipeline) Warnings() []string {
	var w []string
	if p.params.CycleFallback && (p.params.Engine == EngineBitSilla || p.params.Engine == "") {
		w = append(w, fmt.Sprintf("engine %q degraded to the cycle-level model (CycleFallback): expect ~25x slower extension; fallbacks are counted in Stats.EngineFallbacks", p.params.Engine))
	}
	return w
}

// NumSegments returns the segment count of the bound index.
func (p *Pipeline) NumSegments() int { return p.index.NumSegments() }

// claimChunk sizes the work-claiming granule: small enough that one lane
// stuck on expensive reads cannot strand a long tail behind it, large
// enough that the atomic cursor stays uncontended and each candidate
// batch amortizes its queue hop.
//
//genax:hotpath
func claimChunk(reads, workers int) int64 {
	c := reads / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 32 {
		c = 32
	}
	return int64(c)
}

// barrier is a reusable synchronization point: every party blocks in await
// until all parties of the current generation have arrived, then all are
// released together. The seed pool places one between segments so no lane
// starts claiming segment s+1 while another still seeds reads in s —
// exactly the chip's table-streaming boundary. Extend lanes are not
// parties: they drain candidates across segment boundaries freely, which
// is what makes the stages decoupled.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

//genax:hotpath
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
