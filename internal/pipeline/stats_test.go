package pipeline

import (
	"testing"

	"genax/internal/align"
	"genax/internal/extend"
)

// TestStatsMergeFields pins Merge field by field: every work counter must
// sum, and the per-batch bookkeeping fields (Reads, Aligned, ExactReads,
// Segments) must pass through untouched — they are set once at finalize,
// not folded across lanes.
func TestStatsMergeFields(t *testing.T) {
	routing := func(base int64) (r extend.Routing) {
		for i := range r.Legs {
			n := base + int64(i)*10
			r.Legs[i] = extend.LegStats{Routed: n, Accepted: n + 1, FellThrough: n + 2}
		}
		return r
	}
	sumRouting := func(a, b extend.Routing) extend.Routing {
		a.Merge(b)
		return a
	}
	dst := Stats{
		Reads: 3, Aligned: 2, ExactReads: 1, Segments: 5,
		IndexLookups: 10, CAMLookups: 20, SeedsEmitted: 30,
		HitsEmitted: 40, Extensions: 50, ExtensionCycles: 60, ReRuns: 70,
		Routing: routing(100),
	}
	src := Stats{
		Reads: 100, Aligned: 100, ExactReads: 100, Segments: 100,
		IndexLookups: 1, CAMLookups: 2, SeedsEmitted: 3,
		HitsEmitted: 4, Extensions: 5, ExtensionCycles: 6, ReRuns: 7,
		Routing: routing(1000),
	}
	dst.Merge(src)
	want := Stats{
		Reads: 3, Aligned: 2, ExactReads: 1, Segments: 5,
		IndexLookups: 11, CAMLookups: 22, SeedsEmitted: 33,
		HitsEmitted: 44, Extensions: 55, ExtensionCycles: 66, ReRuns: 77,
		Routing: sumRouting(routing(100), routing(1000)),
	}
	if dst != want {
		t.Errorf("Merge result %+v, want %+v", dst, want)
	}
	// Merging a zero block is the identity.
	dst.Merge(Stats{})
	if dst != want {
		t.Errorf("Merge(zero) changed stats: %+v", dst)
	}
}

// TestFinalizeSlotMinScore pins the single MinScore gate, in particular
// the Aligned && Score < MinScore edge: an alignment that was found (its
// extension work already counted) but scores below the floor must come
// out as a zero ReadResult, while a score exactly at the floor survives.
func TestFinalizeSlotMinScore(t *testing.T) {
	mk := func(score int) slot {
		return slot{res: align.Result{RefPos: 7, Score: score}, aligned: true}
	}
	below := mk(92)
	if rr := finalizeSlot(&below, 93); rr.Aligned || rr.Result.Score != 0 || rr.Result.Cigar != nil {
		t.Errorf("sub-MinScore slot leaked: %+v", rr)
	}
	at := mk(93)
	if rr := finalizeSlot(&at, 93); !rr.Aligned || rr.Result.Score != 93 {
		t.Errorf("at-floor slot dropped: %+v", rr)
	}
	empty := slot{}
	if rr := finalizeSlot(&empty, 0); rr.Aligned {
		t.Errorf("unaligned slot reported: %+v", rr)
	}
}

// TestBetterThanRank pins the deterministic merge rule: strict wins by
// score, position, and strand, and rank breaks exact ties — lower rank
// (earlier canonical candidate) always prevails, in either arrival order.
func TestBetterThanRank(t *testing.T) {
	base := align.Result{RefPos: 100, Score: 50}
	sl := slot{res: base, rank: 10, aligned: true}

	if !betterThan(align.Result{RefPos: 100, Score: 51}, 99, &sl) {
		t.Error("higher score lost")
	}
	if betterThan(align.Result{RefPos: 100, Score: 49}, 1, &sl) {
		t.Error("lower score won on rank")
	}
	if !betterThan(align.Result{RefPos: 99, Score: 50}, 99, &sl) {
		t.Error("leftmost tiebreak lost")
	}
	if betterThan(align.Result{RefPos: 100, Score: 50, Reverse: true}, 1, &sl) {
		t.Error("reverse strand won an exact positional tie")
	}
	// Exact tie: rank decides, regardless of arrival order.
	if !betterThan(base, 9, &sl) {
		t.Error("lower rank lost an exact tie")
	}
	if betterThan(base, 11, &sl) {
		t.Error("higher rank won an exact tie")
	}
	var fresh slot
	if !betterThan(base, 1<<40, &fresh) {
		t.Error("empty slot rejected a candidate")
	}
}
