//go:build race

package pipeline

// raceEnabled reports whether the race detector instruments this build;
// allocation-budget tests skip themselves under it because the
// instrumentation itself allocates.
const raceEnabled = true
