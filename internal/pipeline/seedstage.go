package pipeline

import (
	"genax/internal/dna"
	"genax/internal/hw"
	"genax/internal/seed"
)

// seedLane is one SeedStage worker's persistent state: the seeding
// hardware (CAM, scratch, counters) lives as long as the pool and is
// rebound to each segment's tables with bind, exactly like the chip
// streams per-segment tables into a lane's SRAM.
type seedLane struct {
	p     *Pipeline
	sd    *seed.Seeder
	stats Stats
}

func (p *Pipeline) newSeedLane() *seedLane { return &seedLane{p: p} }

// bind points the lane's seeding hardware at a segment's tables.
func (l *seedLane) bind(si *seed.SegmentIndex) {
	if l.sd == nil {
		l.sd = seed.NewSeeder(si, l.p.params.Seeding)
	} else {
		l.sd.Reset(si)
	}
}

// seedOne seeds one oriented read against the bound segment and appends
// its extension candidates to b in canonical order (seed order, then hit
// order). The seeder's result is scratch-backed and valid only until the
// next Seed call, so every hit is copied into the batch here, before the
// batch crosses a queue. Exact-match reads short-circuit: their hits are
// flagged candExact so the extend stage skips SillaX entirely (§V).
//
//genax:hotpath
func (l *seedLane) seedOne(q dna.Seq, readIdx int32, reverse bool, w *window, b *batch) {
	sd := l.sd
	before := sd.Stats
	seeds := sd.Seed(q)
	after := sd.Stats
	l.stats.IndexLookups += int64(after.IndexLookups - before.IndexLookups)
	l.stats.CAMLookups += int64(after.CAMLookups - before.CAMLookups)
	l.stats.SeedsEmitted += int64(after.SeedsEmitted - before.SeedsEmitted)
	l.stats.HitsEmitted += int64(after.HitsEmitted - before.HitsEmitted)
	exact := after.ExactReads > before.ExactReads
	if exact {
		// One claimant per read per segment, and the segment barrier
		// orders claims across segments, so this write cannot race.
		w.exact[readIdx] = true
	}
	workIdx := int32(-1)
	if w.traced {
		b.work = append(b.work, hw.LaneWork{
			SeedOps: int64(after.IndexLookups-before.IndexLookups) +
				int64(after.CAMLookups-before.CAMLookups),
		})
		workIdx = int32(len(b.work) - 1)
	}
	var flags uint8
	if reverse {
		flags |= candReverse
	}
	if exact {
		flags |= candExact
	}
	for _, s := range seeds {
		for _, h := range s.Positions {
			b.cands = append(b.cands, cand{
				read:      readIdx,
				seedStart: int32(s.Start),
				seedEnd:   int32(s.End),
				refPos:    h,
				workIdx:   workIdx,
				flags:     flags,
			})
		}
	}
}

// seedWorker is one SeedStage goroutine. Each worker receives every
// window on its private channel (so lanes never steal each other's copy),
// walks the reference segment by segment behind the window's barrier, and
// claims chunks of reads off the segment cursor. A chunk's candidates for
// one segment form one batch, drawn from the free list — the credit that
// implements backpressure — and routed to the extend lane owning that
// chunk's result slots.
func (p *Pipeline) seedWorker(pl *pool, winCh <-chan *window) {
	l := p.newSeedLane()
	inst := p.params.Instrument
	res := p.params.Residency
	for w := range winCh {
		for s, si := range p.index.Samples {
			// Announce the segment before touching its tables so a sharded
			// mapped index can admit the shard group (and block us while
			// the residency budget is spent elsewhere). The matching
			// Release sits after the barrier: by then every lane is done
			// reading segment s, so the group can be retired the moment
			// its last segment drains.
			if res != nil {
				res.Acquire(s)
			}
			l.bind(si)
			for {
				start := w.cursors[s].Add(w.chunk) - w.chunk
				if start >= int64(len(w.reads)) {
					break
				}
				end := start + w.chunk
				if end > int64(len(w.reads)) {
					end = int64(len(w.reads))
				}
				b := <-pl.free
				b.reset(w, int32(s))
				b.lane = int32((start / w.chunk) % int64(p.params.ExtendLanes))
				t0 := inst.now()
				for i := start; i < end; i++ {
					l.seedOne(w.reads[i], int32(i), false, w, b)
					l.seedOne(w.revs[i], int32(i), true, w, b)
				}
				if inst != nil {
					inst.Seed.record(t0, inst.now(), 1, int64(len(b.cands)))
				}
				if len(b.cands) == 0 && !w.traced {
					// Nothing to extend: return the credit directly.
					pl.free <- b
					continue
				}
				w.pending.Add(1)
				pl.seedOut <- b
				if inst != nil {
					inst.Seed.sample(len(pl.seedOut))
				}
			}
			w.bar.await()
			if res != nil {
				res.Release(s)
			}
		}
		w.seederDone()
	}
	pl.mu.Lock()
	pl.stats.merge(l.stats)
	pl.mu.Unlock()
}
