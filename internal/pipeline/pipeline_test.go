package pipeline

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/seed"
	"genax/internal/sim"
)

// smallParams scales the chip configuration to test-sized genomes.
func smallParams() Params {
	return Params{
		K:        24,
		Scoring:  align.BWAMEMDefaults(),
		Seeding:  seed.DefaultOptions(),
		MinScore: 30,
	}
}

// testPipeline builds a Pipeline over a noisy multi-segment workload.
func testPipeline(t *testing.T, p Params, seedVal int64, genome int, errRate float64) (*Pipeline, *sim.Workload) {
	t.Helper()
	wl := sim.NewWorkload(seedVal, genome,
		sim.VariantProfile{SNPRate: 0.001, IndelRate: 0.0002, MaxIndel: 6},
		sim.ReadProfile{Length: 101, Coverage: 2, ErrorRate: errRate, ReverseFraction: 0.5})
	idx, err := seed.BuildSegmentedIndex(wl.Ref, 8192, 256, 10)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(wl.Ref, idx, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl, wl
}

func workloadReads(wl *sim.Workload, n int) []dna.Seq {
	if n > len(wl.Reads) {
		n = len(wl.Reads)
	}
	reads := make([]dna.Seq, n)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	return reads
}

// sameResult asserts byte-identity of two read results.
func sameResult(t *testing.T, label string, i int, got, want ReadResult) {
	t.Helper()
	if got.Aligned != want.Aligned {
		t.Fatalf("%s: read %d aligned flag %v, want %v", label, i, got.Aligned, want.Aligned)
	}
	if !got.Aligned {
		return
	}
	g, w := got.Result, want.Result
	if g.Score != w.Score || g.RefPos != w.RefPos || g.Reverse != w.Reverse ||
		g.Cigar.String() != w.Cigar.String() {
		t.Fatalf("%s: read %d got %v, want %v", label, i, g, w)
	}
}

// TestStreamMatchesBatch is the golden equivalence of the refactor:
// AlignStream must produce byte-identical results to AlignBatch, in input
// order, for every window size and lane split — including windows far
// smaller than the batch and a deliberately starved extend stage.
func TestStreamMatchesBatch(t *testing.T) {
	base, wl := testPipeline(t, smallParams(), 410, 30000, 0.02)
	reads := workloadReads(wl, 90)
	want, wantStats := base.AlignBatch(reads)

	cases := []struct {
		name                   string
		seedLanes, extendLanes int
		window                 int
	}{
		{"1x1-window7", 1, 1, 7},
		{"4x2-window16", 4, 2, 16},
		{"8x1-window32", 8, 1, 32},
		{"2x4-wholebatch", 2, 4, 1024},
	}
	for _, tc := range cases {
		p := smallParams()
		p.SeedLanes, p.ExtendLanes, p.Window = tc.seedLanes, tc.extendLanes, tc.window
		pl, err := New(base.ref, base.index, p)
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan dna.Seq, len(reads))
		for _, r := range reads {
			in <- r
		}
		close(in)
		out, stats := pl.AlignStream(context.Background(), in)
		i := 0
		for rr := range out {
			if i >= len(want) {
				t.Fatalf("%s: more results than reads", tc.name)
			}
			sameResult(t, tc.name, i, rr, want[i])
			i++
		}
		if i != len(want) {
			t.Fatalf("%s: %d results, want %d", tc.name, i, len(want))
		}
		if *stats != wantStats {
			t.Errorf("%s: stream stats %+v, want %+v", tc.name, *stats, wantStats)
		}
	}
}

// TestStreamOrderAdversarialTiming starves the extend stage (one lane,
// noisy reads) while many seed lanes race ahead, and trickles the input so
// window boundaries land at awkward points. Results must still arrive in
// input order, byte-identical to the batch path.
func TestStreamOrderAdversarialTiming(t *testing.T) {
	p := smallParams()
	p.SeedLanes, p.ExtendLanes, p.Window = 8, 1, 13
	pl, wl := testPipeline(t, p, 411, 25000, 0.04)
	reads := workloadReads(wl, 70)
	want, _ := pl.AlignBatch(reads)

	in := make(chan dna.Seq)
	go func() {
		for i, r := range reads {
			if i%11 == 0 {
				time.Sleep(2 * time.Millisecond) // stall a window mid-fill
			}
			in <- r
		}
		close(in)
	}()
	out, _ := pl.AlignStream(context.Background(), in)
	i := 0
	for rr := range out {
		sameResult(t, "adversarial", i, rr, want[i])
		i++
	}
	if i != len(want) {
		t.Fatalf("%d results, want %d", i, len(want))
	}
}

// TestStreamCancel checks that cancelling the context stops admission
// between reads: every result that does come out is correct and in input
// order, already-admitted reads drain, and the result channel closes.
func TestStreamCancel(t *testing.T) {
	p := smallParams()
	p.Window = 8
	pl, wl := testPipeline(t, p, 412, 25000, 0.02)
	reads := workloadReads(wl, 200)
	want, _ := pl.AlignBatch(reads)

	in := make(chan dna.Seq, len(reads))
	for _, r := range reads {
		in <- r
	}
	close(in)
	ctx, cancel := context.WithCancel(context.Background())
	out, stats := pl.AlignStream(ctx, in)
	got := 0
	for rr := range out {
		sameResult(t, "cancel", got, rr, want[got])
		got++
		if got == 4 {
			cancel()
		}
	}
	cancel()
	if got > len(reads) {
		t.Fatalf("%d results for %d reads", got, len(reads))
	}
	if stats.Reads != got {
		t.Errorf("stats.Reads = %d, emitted %d", stats.Reads, got)
	}
}

// TestStreamCancelReleasesWorkersAndCredits pins what the serve layer's
// admission dispatcher depends on: a cancelled AlignStream session tears
// the whole stage graph down — every lane goroutine exits (no leak across
// repeated sessions) and every batch credit returns to the free list —
// and the session's Stats stay mergeable into a long-lived aggregate.
func TestStreamCancelReleasesWorkersAndCredits(t *testing.T) {
	p := smallParams()
	p.Window = 8
	pl, wl := testPipeline(t, p, 414, 25000, 0.02)
	reads := workloadReads(wl, 300)

	base := runtime.NumGoroutine()
	var agg Stats
	for iter := 0; iter < 5; iter++ {
		in := make(chan dna.Seq, len(reads))
		for _, r := range reads {
			in <- r
		}
		close(in)
		ctx, cancel := context.WithCancel(context.Background())
		out, stats := pl.AlignStream(ctx, in)
		got := 0
		for range out {
			got++
			if got == 3 {
				cancel()
			}
		}
		cancel()
		if stats.Reads != got {
			t.Fatalf("iter %d: stats.Reads = %d, emitted %d", iter, stats.Reads, got)
		}
		agg.Merge(*stats)
	}
	if agg.IndexLookups == 0 {
		t.Error("merged aggregate has no work counters; Merge lost the session stats")
	}
	// The stage goroutines unwind asynchronously after out closes; poll
	// back to the baseline instead of asserting an instant. Bounded
	// sleep count rather than a wall-clock deadline: ~5s worst case.
	for try := 0; runtime.NumGoroutine() > base; try++ {
		if try >= 1000 {
			buf := make([]byte, 1<<20)
			t.Fatalf("stage workers leaked across cancelled sessions: %d goroutines at start, %d now\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Credits: after a pool serves a window and shuts down, every batch
	// credit must be back on the free list — a lane that exited without
	// returning one would strangle later windows' admission.
	pool := pl.startPool()
	w := newWindow()
	w.reads = reads[:8]
	w.prepare(pl, false)
	pool.submit(w)
	<-w.done
	pool.shutdown()
	if len(pool.free) != cap(pool.free) {
		t.Errorf("batch credits leaked: %d of %d returned", len(pool.free), cap(pool.free))
	}
}

// TestStreamBoundedAdmission pins the bounded-memory contract: with a
// sleeping consumer, the stream can admit at most the two in-flight
// windows plus the result-channel buffer — far fewer than the input.
func TestStreamBoundedAdmission(t *testing.T) {
	p := smallParams()
	p.Window = 8
	pl, wl := testPipeline(t, p, 413, 25000, 0)
	reads := workloadReads(wl, 400)

	in := make(chan dna.Seq) // unbuffered: every send is an admission
	var sent atomic.Int64
	go func() {
		for _, r := range reads {
			in <- r
			sent.Add(1)
		}
		close(in)
	}()
	out, _ := pl.AlignStream(context.Background(), in)
	time.Sleep(300 * time.Millisecond) // consumer asleep: admission must stall
	// 64 results can park in the out buffer, two windows can be in
	// flight, and a window may be mid-fill; anything near len(reads)
	// means admission is unbounded.
	if n := sent.Load(); n > 64+4*int64(p.Window) {
		t.Errorf("admitted %d reads with no consumer; window is %d", n, p.Window)
	}
	drained := 0
	for range out {
		drained++
	}
	if drained != len(reads) {
		t.Fatalf("drained %d, want %d", drained, len(reads))
	}
}

// TestSplitLanes pins the 128:4 proportion, including the chip's own
// budget mapping exactly to its lane counts.
func TestSplitLanes(t *testing.T) {
	cases := []struct {
		budget, seed, ext int
	}{
		{132, 128, 4},
		{1, 1, 1},
		{2, 1, 1},
		{4, 3, 1},
		{8, 7, 1},
		{33, 32, 1},
		{66, 64, 2},
		{264, 256, 8},
		{0, 1, 1},
		{-3, 1, 1},
	}
	for _, tc := range cases {
		s, e := SplitLanes(tc.budget)
		if s != tc.seed || e != tc.ext {
			t.Errorf("SplitLanes(%d) = (%d, %d), want (%d, %d)", tc.budget, s, e, tc.seed, tc.ext)
		}
	}
}

// TestClaimChunk pins the claiming granule's bounds.
func TestClaimChunk(t *testing.T) {
	cases := []struct {
		reads, workers int
		want           int64
	}{
		{0, 4, 1},
		{10, 4, 1},
		{256, 4, 8},
		{100000, 4, 32},
		{64, 8, 1},
	}
	for _, tc := range cases {
		if got := claimChunk(tc.reads, tc.workers); got != tc.want {
			t.Errorf("claimChunk(%d, %d) = %d, want %d", tc.reads, tc.workers, got, tc.want)
		}
	}
}

// TestTracedParity checks the hw.LaneWork trace against the work counters:
// one item per (read, strand, segment), SeedOps summing to the lookup
// counters and ExtJobs to the extension count — and tracing must not
// perturb the results.
func TestTracedParity(t *testing.T) {
	p := smallParams()
	p.Workers = 4
	pl, wl := testPipeline(t, p, 414, 25000, 0.02)
	reads := workloadReads(wl, 50)
	want, wantStats := pl.AlignBatch(reads)
	got, stats, work := pl.AlignBatchTraced(reads)
	for i := range want {
		sameResult(t, "traced", i, got[i], want[i])
	}
	if stats != wantStats {
		t.Errorf("traced stats %+v, want %+v", stats, wantStats)
	}
	if len(work) != 2*len(reads)*pl.NumSegments() {
		t.Fatalf("%d work items, want %d", len(work), 2*len(reads)*pl.NumSegments())
	}
	var seedOps, extJobs, extCycles int64
	for _, wk := range work {
		seedOps += wk.SeedOps
		extJobs += int64(len(wk.ExtJobs))
		for _, c := range wk.ExtJobs {
			extCycles += c
		}
	}
	if seedOps != stats.IndexLookups+stats.CAMLookups {
		t.Errorf("trace SeedOps %d, want %d", seedOps, stats.IndexLookups+stats.CAMLookups)
	}
	if extJobs != stats.Extensions {
		t.Errorf("trace ExtJobs %d, want %d extensions", extJobs, stats.Extensions)
	}
	if extCycles != stats.ExtensionCycles {
		t.Errorf("trace cycles %d, want %d", extCycles, stats.ExtensionCycles)
	}
}

// TestInstrumentCounts checks the per-stage metrics with an injected
// deterministic clock: every stage must report work, and the extend stage
// must see exactly the post-filter candidate flow.
func TestInstrumentCounts(t *testing.T) {
	p := smallParams()
	inst := &Instrument{}
	var tick atomic.Int64
	inst.Now = func() int64 { return tick.Add(1000) }
	p.Instrument = inst
	pl, wl := testPipeline(t, p, 415, 25000, 0.02)
	reads := workloadReads(wl, 40)
	_, stats := pl.AlignBatch(reads)
	if inst.Seed.Batches.Load() == 0 || inst.Filter.Batches.Load() == 0 || inst.Extend.Batches.Load() == 0 {
		t.Fatalf("stage batch counts: seed %d filter %d extend %d",
			inst.Seed.Batches.Load(), inst.Filter.Batches.Load(), inst.Extend.Batches.Load())
	}
	if inst.Seed.BusyNanos.Load() <= 0 || inst.Extend.BusyNanos.Load() <= 0 {
		t.Error("injected clock produced no busy time")
	}
	if got := inst.Extend.Items.Load(); got < stats.Extensions {
		t.Errorf("extend stage saw %d candidates, fewer than %d extensions", got, stats.Extensions)
	}
}

// TestAlignReadAllocs is the satellite-1 regression: a warm pooled single
// lane may allocate only the adopted result cigars per call — a small
// constant, nothing like the old build-a-batch-pipeline-per-call cost.
func TestAlignReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	pl, wl := testPipeline(t, smallParams(), 416, 25000, 0)
	read := wl.Reads[0].Seq
	if _, ok := pl.AlignRead(read); !ok {
		t.Fatal("read unaligned")
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, ok := pl.AlignRead(read); !ok {
			t.Fatal("read unaligned")
		}
	})
	const budget = 8.0
	if avg > budget {
		t.Errorf("AlignRead allocates %.2f per call, budget %.1f", avg, budget)
	}
	t.Logf("AlignRead allocs: %.2f per call (budget %.1f)", avg, budget)
}

// TestAlignReadMatchesBatch checks the fused single-read path against the
// staged batch path on a read mix covering exact and noisy cases.
func TestAlignReadMatchesBatch(t *testing.T) {
	pl, wl := testPipeline(t, smallParams(), 417, 25000, 0.02)
	reads := workloadReads(wl, 30)
	want, _ := pl.AlignBatch(reads)
	for i, r := range reads {
		res, ok := pl.AlignRead(r)
		if ok != want[i].Aligned {
			t.Fatalf("read %d: AlignRead aligned %v, batch %v", i, ok, want[i].Aligned)
		}
		if ok {
			sameResult(t, "single", i, ReadResult{Result: res, Aligned: true}, want[i])
		}
	}
}

// TestSingleLaneSteadyStateAllocs pins the allocation budget of the fused
// stage path (the port of the old core steady-state test): with every
// lane buffer warm, aligning a read through seed → filter → extend may
// allocate only the adopted result cigars.
func TestSingleLaneSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	pl, wl := testPipeline(t, smallParams(), 418, 30000, 0.02)
	reads := workloadReads(wl, 30)
	l := newSingleLane(pl)
	sweep := func() {
		for i := range reads {
			l.alignRead(reads[i])
		}
	}
	sweep() // warm the lane's scratch buffers
	avg := testing.AllocsPerRun(10, sweep)
	perRead := avg / float64(len(reads))
	const budget = 12.0
	if perRead > budget {
		t.Errorf("steady-state fused path allocates %.2f per read, budget %.1f", perRead, budget)
	}
	t.Logf("steady-state allocs: %.2f per read (budget %.1f)", perRead, budget)
}

// TestMaxCandidatesThreshold checks the filter stage's hit-set cap: a
// tight threshold must bound extension work without breaking alignment of
// clean reads (their exact-path candidates bypass the cap).
func TestMaxCandidatesThreshold(t *testing.T) {
	p := smallParams()
	p.MaxCandidates = 1
	pl, wl := testPipeline(t, p, 419, 25000, 0.02)
	base, err := New(pl.ref, pl.index, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	reads := workloadReads(wl, 60)
	_, capped := pl.AlignBatch(reads)
	res, uncapped := base.AlignBatch(reads)
	if capped.Extensions > uncapped.Extensions {
		t.Errorf("threshold raised extension count: %d > %d", capped.Extensions, uncapped.Extensions)
	}
	aligned := 0
	for _, rr := range res {
		if rr.Aligned {
			aligned++
		}
	}
	if capped.Aligned < aligned*9/10 {
		t.Errorf("threshold dropped too many alignments: %d vs %d", capped.Aligned, aligned)
	}
}

// TestWindowReuse runs several batches through one pipeline value and
// interleaves streams, ensuring pooled windows and lanes reset cleanly.
func TestWindowReuse(t *testing.T) {
	pl, wl := testPipeline(t, smallParams(), 420, 25000, 0.02)
	reads := workloadReads(wl, 20)
	want, wantStats := pl.AlignBatch(reads)
	for round := 0; round < 3; round++ {
		got, stats := pl.AlignBatch(reads)
		for i := range want {
			sameResult(t, "reuse", i, got[i], want[i])
		}
		if stats != wantStats {
			t.Fatalf("round %d stats %+v, want %+v", round, stats, wantStats)
		}
	}
}
