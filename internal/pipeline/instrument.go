package pipeline

import "sync/atomic"

// StageMetrics accumulates one stage's activity. BusyNanos is wall time
// spent inside the stage's hot call (units are whatever the injected
// clock returns — nanoseconds with the usual wall clock); Batches and
// Items count processed batches and candidates; QueueSum/QueueMax/Samples
// describe downstream queue occupancy sampled at each send, the software
// analogue of the chip's hit-FIFO fill level (Fig 11).
type StageMetrics struct {
	BusyNanos atomic.Int64
	Batches   atomic.Int64
	Items     atomic.Int64
	QueueSum  atomic.Int64
	QueueMax  atomic.Int64
	Samples   atomic.Int64
}

// record charges one processed batch to the stage.
func (m *StageMetrics) record(t0, t1, batches, items int64) {
	m.BusyNanos.Add(t1 - t0)
	m.Batches.Add(batches)
	m.Items.Add(items)
}

// sample records the downstream queue depth observed after a send.
func (m *StageMetrics) sample(depth int) {
	d := int64(depth)
	m.QueueSum.Add(d)
	m.Samples.Add(1)
	for {
		cur := m.QueueMax.Load()
		if d <= cur || m.QueueMax.CompareAndSwap(cur, d) {
			return
		}
	}
}

// AvgQueue returns the mean sampled queue depth.
func (m *StageMetrics) AvgQueue() float64 {
	n := m.Samples.Load()
	if n == 0 {
		return 0
	}
	return float64(m.QueueSum.Load()) / float64(n)
}

// Instrument collects per-stage metrics for a Pipeline. The pipeline
// itself never reads a clock (the package is on genaxvet's determinism
// list); callers inject one via Now — genax-bench passes a wall-clock
// reader, tests can pass a counter.
type Instrument struct {
	// Now returns the current time in nanoseconds. Nil disables timing
	// but still counts batches, items, and queue depths. Every stage
	// worker calls it concurrently, so it must be safe for concurrent
	// use (time.Now().UnixNano is; a test counter needs an atomic).
	Now func() int64

	Seed, Filter, Extend StageMetrics

	// IndexBuild charges table construction, which happens before the
	// pipeline exists; core.New records it via RecordIndexBuild.
	IndexBuild StageMetrics
}

// now tolerates a nil Instrument or a nil clock.
func (i *Instrument) now() int64 {
	if i == nil || i.Now == nil {
		return 0
	}
	return i.Now()
}

// ClockNow reads the injected clock, tolerating a nil Instrument or clock
// (both read as 0). It exists so code outside the pipeline — the index
// build in core.New — can time itself against the same clock the stage
// workers use.
func (i *Instrument) ClockNow() int64 { return i.now() }

// RecordIndexBuild charges one index construction spanning [t0,t1] (clock
// units) covering segments segments. Safe on a nil Instrument.
func (i *Instrument) RecordIndexBuild(t0, t1 int64, segments int) {
	if i == nil {
		return
	}
	i.IndexBuild.record(t0, t1, 1, int64(segments))
}
