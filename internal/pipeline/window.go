package pipeline

import (
	"sync/atomic"

	"genax/internal/align"
	"genax/internal/dna"
)

// slot is a read's in-flight best alignment. rank is the canonical merge
// rank of the adopted candidate: segment in the high 32 bits, the
// candidate's post-filter batch index below. Adopting a candidate only
// when it strictly beats the incumbent under align.Result's total order —
// or ties it with a lower rank — makes the merge associative and
// commutative, so extend lanes may process batches in any interleaving
// and still reproduce the fused sequential loop byte for byte.
type slot struct {
	res     align.Result
	rank    int64
	aligned bool
}

// window is one admission unit of reads moving through the stage graph:
// the whole batch for AlignBatch, a bounded slice of the input stream for
// AlignStream. All its buffers are reused across windows.
type window struct {
	reads  []dna.Seq // caller's read sequences
	revs   []dna.Seq // reverse complements, backed by revBuf
	revBuf dna.Seq

	slots []slot
	exact []bool // read resolved via the exact-match fast path somewhere

	// cursors hand out chunk claims per segment; chunk is the claim size.
	cursors []atomic.Int64
	chunk   int64
	bar     *barrier

	// pending counts in-flight batches plus one sentinel held while any
	// seed lane is still producing; whoever drops it to zero closes done.
	pending atomic.Int64
	seeders atomic.Int32
	done    chan struct{}

	traced bool
}

func newWindow() *window { return &window{} }

// prepare readies the window for n admitted reads (already stored in
// w.reads[:n]) against a pipeline with the given lane counts, computing
// reverse complements into the reused backing buffer and resetting the
// per-segment cursors, merge slots, and completion protocol.
func (w *window) prepare(p *Pipeline, traced bool) {
	n := len(w.reads)
	total := 0
	for _, r := range w.reads {
		total += len(r)
	}
	if cap(w.revBuf) < total {
		w.revBuf = make(dna.Seq, 0, total)
	}
	buf := w.revBuf[:0]
	if cap(w.revs) < n {
		w.revs = make([]dna.Seq, n)
	}
	w.revs = w.revs[:n]
	for i, r := range w.reads {
		start := len(buf)
		buf = dna.AppendRevComp(buf, r)
		w.revs[i] = buf[start:len(buf):len(buf)]
	}
	w.revBuf = buf

	if cap(w.slots) < n {
		w.slots = make([]slot, n)
	}
	w.slots = w.slots[:n]
	for i := range w.slots {
		w.slots[i] = slot{}
	}
	if cap(w.exact) < n {
		w.exact = make([]bool, n)
	}
	w.exact = w.exact[:n]
	for i := range w.exact {
		w.exact[i] = false
	}

	segs := p.index.NumSegments()
	if cap(w.cursors) < segs {
		w.cursors = make([]atomic.Int64, segs)
	}
	w.cursors = w.cursors[:segs]
	for i := range w.cursors {
		w.cursors[i].Store(0)
	}
	w.chunk = claimChunk(n, p.params.SeedLanes)
	if w.bar == nil || w.bar.parties != p.params.SeedLanes {
		w.bar = newBarrier(p.params.SeedLanes)
	}

	w.pending.Store(1) // seeding sentinel
	w.seeders.Store(int32(p.params.SeedLanes))
	w.done = make(chan struct{})
	w.traced = traced
}

// finishBatch retires one unit of pending work; the last one (batch or
// seeding sentinel) completes the window. The atomic chain from every
// lane's final write to this close is the happens-before edge that lets
// the emitter read slots and exact flags without locks.
//
//genax:hotpath
func (w *window) finishBatch() {
	if w.pending.Add(-1) == 0 {
		close(w.done)
	}
}

// seederDone is called by each seed lane after its last segment pass over
// this window; the final lane removes the seeding sentinel.
//
//genax:hotpath
func (w *window) seederDone() {
	if w.seeders.Add(-1) == 0 {
		w.finishBatch()
	}
}
