package hw

// ChipConfig describes a GenAx die (§VI, Fig 11).
type ChipConfig struct {
	SeedingLanes int     // 128
	SillaXLanes  int     // 4
	ClockGHz     float64 // 2 GHz
	K            int     // 40

	IndexTableMB    float64 // 48
	PositionTableMB float64 // 18
	RefCacheKB      float64 // 4 x 512
	ReadBufferKB    float64 // 16

	SegmentCount int     // 512
	DDRChannels  int     // 8
	DDRGBps      float64 // 19.2 per channel
}

// DefaultChip returns the paper's GenAx configuration.
func DefaultChip() ChipConfig {
	return ChipConfig{
		SeedingLanes:    128,
		SillaXLanes:     4,
		ClockGHz:        2.0,
		K:               40,
		IndexTableMB:    48,
		PositionTableMB: 18,
		RefCacheKB:      4 * 512,
		ReadBufferKB:    16,
		SegmentCount:    512,
		DDRChannels:     8,
		DDRGBps:         19.2,
	}
}

// Area model constants calibrated to Table II:
//
//	seeding lanes (x128) 4.224 mm² -> 0.033 mm²/lane (512-entry CAM + FSM)
//	SillaX lanes  (x4)   5.36 mm²  -> 1.34 mm²/lane (traceback machine + lane glue)
//	on-chip SRAM  68 MB  163.2 mm² -> 2.4 mm²/MB in 28 nm
const (
	seedingLaneAreaMm2 = 4.224 / 128
	sillaXLaneAreaMm2  = 5.36 / 4
	sramAreaMm2PerMB   = 163.2 / 68
)

// Power model constants: SillaX lanes are the synthesized 1.54 W traceback
// machines; a seeding lane's CAM+FSM draws ~20 mW; SRAM ~45 mW/MB active.
// Together with Table II's areas this puts GenAx at ~11.7 W, 12x below the
// paper's measured 140 W Xeon (Fig 15b).
const (
	seedingLanePowerW = 0.020
	sramPowerWPerMB   = 0.045
)

// SRAMTotalMB returns the on-chip SRAM capacity.
func (c ChipConfig) SRAMTotalMB() float64 {
	return c.IndexTableMB + c.PositionTableMB + (c.RefCacheKB+c.ReadBufferKB)/1024
}

// AreaRow is one Table II line.
type AreaRow struct {
	Component string
	AreaMm2   float64
}

// AreaBreakdown reproduces Table II.
func (c ChipConfig) AreaBreakdown() []AreaRow {
	rows := []AreaRow{
		{"Seeding lanes", seedingLaneAreaMm2 * float64(c.SeedingLanes)},
		{"SillaX lanes", sillaXLaneAreaMm2 * float64(c.SillaXLanes)},
		{"On-chip SRAM", sramAreaMm2PerMB * c.SRAMTotalMB()},
	}
	total := 0.0
	for _, r := range rows {
		total += r.AreaMm2
	}
	return append(rows, AreaRow{"Total", total})
}

// TotalAreaMm2 returns the die area.
func (c ChipConfig) TotalAreaMm2() float64 {
	rows := c.AreaBreakdown()
	return rows[len(rows)-1].AreaMm2
}

// TotalPowerW returns the chip power.
func (c ChipConfig) TotalPowerW() float64 {
	sillax := MachinePower(TracebackPE, c.K, c.ClockGHz) * float64(c.SillaXLanes)
	seeding := seedingLanePowerW * float64(c.SeedingLanes)
	sram := sramPowerWPerMB * c.SRAMTotalMB()
	return sillax + seeding + sram
}

// Published baseline numbers carried from the paper (Table I, §VIII) for
// the comparison bars we cannot measure (GPU) or that anchor the measured
// ratios (CPU power).
const (
	// BWAMEMXeonReadsPerSec is derived from the paper's 31.7x speedup at
	// 4058 KReads/s GenAx throughput.
	BWAMEMXeonReadsPerSec = 4058e3 / 31.7
	// CUSHAW2GPUReadsPerSec from the 72.4x ratio.
	CUSHAW2GPUReadsPerSec = 4058e3 / 72.4
	// GenAxPaperReadsPerSec is the headline number.
	GenAxPaperReadsPerSec = 4058e3
	// XeonPowerW is the dual-socket E5-2697v3 RAPL measurement implied by
	// the 12x power reduction.
	XeonPowerW = 140.0
	// TitanXpPowerW is the GPU board power for Fig 15b.
	TitanXpPowerW = 180.0
	// SillaXPaperKHitsPerSec estimates Fig 14's SillaX bar: four lanes at
	// 2 GHz retiring one ~310-cycle 101 bp extension per lane at a time.
	SillaXPaperKHitsPerSec = 25800.0
	// SeqAnCPUKHitsPerSec and SWSharpGPUKHitsPerSec anchor Fig 14 via the
	// published ratios: SillaX is 62.9x over SeqAn and 5287x over SW#.
	SeqAnCPUKHitsPerSec   = SillaXPaperKHitsPerSec / 62.9
	SWSharpGPUKHitsPerSec = SillaXPaperKHitsPerSec / 5287.0
)
