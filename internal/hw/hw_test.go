package hw

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestEditMachineCalibration(t *testing.T) {
	// §VIII-A: edit machine @2 GHz is 0.012 mm² and 0.047 W for K=40.
	if a := MachineArea(EditPE, 40, 2.0); !approx(a, 0.012, 0.01) {
		t.Errorf("edit machine area @2GHz = %.4f mm², want 0.012", a)
	}
	p := MachinePower(EditPE, 40, 2.0)
	if !approx(p, 0.047, 0.15) { // leakage term adds a few percent
		t.Errorf("edit machine power @2GHz = %.4f W, want ~0.047", p)
	}
}

func TestTracebackMachineCalibration(t *testing.T) {
	if a := MachineArea(TracebackPE, 40, 2.0); !approx(a, 1.41, 0.01) {
		t.Errorf("traceback machine area @2GHz = %.3f mm², want 1.41", a)
	}
	if p := MachinePower(TracebackPE, 40, 2.0); !approx(p, 1.54, 0.15) {
		t.Errorf("traceback machine power @2GHz = %.3f W, want ~1.54", p)
	}
}

func TestEditPEAreaAt5GHz(t *testing.T) {
	// §VIII-C: 9.7 µm² at 5 GHz, 30x below a banded-SW PE.
	a := PEArea(EditPE, 5.0)
	if !approx(a, 9.7, 0.02) {
		t.Errorf("edit PE @5GHz = %.2f µm², want 9.7", a)
	}
	if ratio := BandedSWPEAreaUm2 / a; ratio < 25 || ratio > 35 {
		t.Errorf("banded-SW/Silla PE area ratio = %.1f, paper says ~30x", ratio)
	}
}

func TestSweepShape(t *testing.T) {
	// Fig 12: area and power grow monotonically past the 2 GHz knee, with
	// super-linear growth at high frequency.
	for _, m := range []Machine{EditPE, TracebackPE, ScoringPE} {
		pts := FrequencySweep(m, 1, 8, 0.5)
		if len(pts) != 15 {
			t.Fatalf("%v: %d points", m, len(pts))
		}
		optSeen := false
		for i := 1; i < len(pts); i++ {
			if pts[i].AreaUm2 < pts[i-1].AreaUm2 {
				t.Errorf("%v: area not monotone at %.1f GHz", m, pts[i].GHz)
			}
			if pts[i].PowerUw <= pts[i-1].PowerUw {
				t.Errorf("%v: power not increasing at %.1f GHz", m, pts[i].GHz)
			}
			if pts[i].Optimal {
				optSeen = true
				if pts[i].GHz != 2.0 {
					t.Errorf("%v: optimal at %.1f GHz, want 2.0", m, pts[i].GHz)
				}
			}
		}
		if !optSeen {
			t.Errorf("%v: no optimal point marked", m)
		}
		// Super-linear power: 8 GHz must cost more than 4x the 2 GHz power.
		if pts[14].PowerUw < 4*pts[2].PowerUw {
			t.Errorf("%v: power growth not super-linear (%.1f vs %.1f)", m, pts[14].PowerUw, pts[2].PowerUw)
		}
	}
}

func TestScoringBetweenEditAndTraceback(t *testing.T) {
	if PEArea(ScoringPE, 2) <= PEArea(EditPE, 2) || PEArea(ScoringPE, 2) >= PEArea(TracebackPE, 2) {
		t.Error("scoring PE area not between edit and traceback")
	}
}

func TestTableIIBreakdown(t *testing.T) {
	c := DefaultChip()
	rows := c.AreaBreakdown()
	want := map[string]float64{
		"Seeding lanes": 4.224,
		"SillaX lanes":  5.36,
		"On-chip SRAM":  163.2,
		"Total":         172.78,
	}
	for _, r := range rows {
		w, ok := want[r.Component]
		if !ok {
			t.Fatalf("unexpected component %q", r.Component)
		}
		if !approx(r.AreaMm2, w, 0.02) {
			t.Errorf("%s = %.3f mm², want %.3f", r.Component, r.AreaMm2, w)
		}
	}
	if !approx(c.TotalAreaMm2(), 172.78, 0.02) {
		t.Errorf("total = %.2f", c.TotalAreaMm2())
	}
}

func TestSRAMTotal(t *testing.T) {
	c := DefaultChip()
	if got := c.SRAMTotalMB(); !approx(got, 68, 0.02) {
		t.Errorf("SRAM = %.1f MB, want ~68", got)
	}
}

func TestPowerRatioVsXeon(t *testing.T) {
	// Fig 15b: 12x reduction vs the Xeon.
	c := DefaultChip()
	p := c.TotalPowerW()
	ratio := XeonPowerW / p
	if ratio < 10 || ratio > 14 {
		t.Errorf("power ratio = %.1f (GenAx %.1f W), paper says 12x", ratio, p)
	}
}

func TestThroughputModelPaperScale(t *testing.T) {
	// With coefficients in the range our pipeline simulation measures,
	// the model must land in the paper's throughput regime (4058 KReads/s
	// within ~2x) and show >25x over the published BWA-MEM rate.
	c := DefaultChip()
	p := PipelineProfile{
		ReadLen:                  101,
		ExactFraction:            0.75,
		SeedingOpsPerReadSegment: 60,
		ExtensionsPerRead:        4,
		ExtensionCycles:          330,
	}
	rep := c.Throughput(p, 787265109)
	if rep.ReadsPerSec < 2000e3 || rep.ReadsPerSec > 9000e3 {
		t.Errorf("model throughput %.0f reads/s out of the paper regime", rep.ReadsPerSec)
	}
	if ratio := rep.ReadsPerSec / BWAMEMXeonReadsPerSec; ratio < 15 || ratio > 75 {
		t.Errorf("speedup over BWA-MEM = %.1fx, want the 31.7x regime", ratio)
	}
	if rep.TotalSec <= 0 || rep.Bottleneck == "" {
		t.Errorf("degenerate report %+v", rep)
	}
	t.Logf("model: %.0f KReads/s, %.0fs total, bottleneck %s (seed %.0fs ext %.0fs tables %.0fs reads %.0fs)",
		rep.ReadsPerSec/1e3, rep.TotalSec, rep.Bottleneck, rep.SeedingSec, rep.ExtensionSec, rep.TableLoadSec, rep.ReadLoadSec)
}

func TestSillaXRawThroughput(t *testing.T) {
	c := DefaultChip()
	got := c.SillaXRawThroughput(330)
	if got < 20e6 || got > 30e6 {
		t.Errorf("SillaX raw throughput = %.1f Mhits/s, expected 20-30M", got/1e6)
	}
	if c.SillaXRawThroughput(0) != 0 {
		t.Error("zero cycles must yield zero throughput")
	}
	// Fig 14 anchors.
	if SillaXPaperKHitsPerSec/SeqAnCPUKHitsPerSec < 62 || SillaXPaperKHitsPerSec/SeqAnCPUKHitsPerSec > 64 {
		t.Error("SeqAn anchor ratio drifted")
	}
}

func TestBaselineConstants(t *testing.T) {
	if !approx(GenAxPaperReadsPerSec/BWAMEMXeonReadsPerSec, 31.7, 0.001) {
		t.Error("BWA-MEM anchor inconsistent")
	}
	if !approx(GenAxPaperReadsPerSec/CUSHAW2GPUReadsPerSec, 72.4, 0.001) {
		t.Error("CUSHAW2 anchor inconsistent")
	}
}
