package hw

import "testing"

func TestSimulateLanesEmpty(t *testing.T) {
	rep := SimulateLanes(DefaultChip(), nil)
	if rep.MakespanCycles != 0 || rep.Reads != 0 {
		t.Errorf("empty work: %+v", rep)
	}
}

func TestSimulateLanesSingleRead(t *testing.T) {
	cfg := DefaultChip()
	rep := SimulateLanes(cfg, []LaneWork{{SeedOps: 100, ExtJobs: []int64{300}}})
	if rep.MakespanCycles != 400 {
		t.Errorf("makespan = %d, want 400 (serial dependency)", rep.MakespanCycles)
	}
	if rep.Reads != 1 || rep.Extensions != 1 {
		t.Errorf("counts: %+v", rep)
	}
}

func TestSimulateLanesParallelism(t *testing.T) {
	// 128 identical seeding-only reads must run fully parallel on the
	// 128 lanes; 256 must take two waves.
	cfg := DefaultChip()
	mk := func(n int) []LaneWork {
		w := make([]LaneWork, n)
		for i := range w {
			w[i] = LaneWork{SeedOps: 100}
		}
		return w
	}
	if rep := SimulateLanes(cfg, mk(128)); rep.MakespanCycles != 100 {
		t.Errorf("128 reads: makespan %d, want 100", rep.MakespanCycles)
	}
	if rep := SimulateLanes(cfg, mk(256)); rep.MakespanCycles != 200 {
		t.Errorf("256 reads: makespan %d, want 200", rep.MakespanCycles)
	}
}

func TestSimulateLanesExtensionBottleneck(t *testing.T) {
	// Heavy extension work saturates the 4 SillaX lanes.
	cfg := DefaultChip()
	var work []LaneWork
	for i := 0; i < 64; i++ {
		work = append(work, LaneWork{SeedOps: 10, ExtJobs: []int64{1000}})
	}
	rep := SimulateLanes(cfg, work)
	if rep.Bottleneck != "extension" {
		t.Errorf("bottleneck = %s (%+v)", rep.Bottleneck, rep)
	}
	// 64 jobs x 1000 cycles on 4 lanes >= 16000 cycles.
	if rep.MakespanCycles < 16000 {
		t.Errorf("makespan %d below extension lower bound", rep.MakespanCycles)
	}
	if rep.ExtUtilization < 0.9 {
		t.Errorf("extension utilization %.2f, expected near 1", rep.ExtUtilization)
	}
}

func TestSimulateLanesUtilizationBounds(t *testing.T) {
	cfg := DefaultChip()
	work := []LaneWork{
		{SeedOps: 50, ExtJobs: []int64{10, 20}},
		{SeedOps: 200},
		{SeedOps: 0, ExtJobs: []int64{500}},
	}
	rep := SimulateLanes(cfg, work)
	for _, u := range []float64{rep.SeedUtilization, rep.ExtUtilization} {
		if u < 0 || u > 1 {
			t.Errorf("utilization %f out of bounds", u)
		}
	}
	if rep.Extensions != 3 {
		t.Errorf("extensions = %d", rep.Extensions)
	}
}
