// Package hw is the analytical hardware model standing in for the paper's
// 28 nm Synopsys DC synthesis and Ramulator runs (§VII). Every constant is
// calibrated to a number the paper reports: per-PE gate counts and the
// area/power/frequency curves of Fig 12, the GenAx area breakdown of
// Table II, the throughput and power comparisons of Fig 15, and the DDR4
// streaming model behind the segment-loading cost (§VI).
package hw

import "math"

// Machine selects which SillaX machine a PE belongs to.
type Machine int

// SillaX machine variants (§IV). Scoring is "comparable to the traceback
// machine" per §VIII-A, modelled at a small discount.
const (
	EditPE Machine = iota
	ScoringPE
	TracebackPE
)

// String names the machine.
func (m Machine) String() string {
	switch m {
	case EditPE:
		return "edit"
	case ScoringPE:
		return "scoring"
	default:
		return "traceback"
	}
}

// Calibration anchors from the paper (28 nm):
//   - edit machine @2 GHz:      0.012 mm², 0.047 W, 13 gates/PE (§IV-A, §VIII-A)
//   - edit PE @5 GHz:           9.7 µm² (§VIII-C, 30x below a banded-SW PE's 300 µm²)
//   - traceback machine @2 GHz: 1.41 mm², 1.54 W (§VIII-A)
//   - K = 40 -> 41x41 = 1681 PEs (§VIII-A)
const (
	calibPEs = 1681.0

	editAreaUm2At2GHz = 0.012 * 1e6 / calibPEs // ~7.14 µm²
	editPowerUwAt2GHz = 0.047 * 1e6 / calibPEs // ~28 µW
	editAreaUm2At5GHz = 9.7
	tbAreaUm2At2GHz   = 1.41 * 1e6 / calibPEs // ~839 µm²
	tbPowerUwAt2GHz   = 1.54 * 1e6 / calibPEs // ~916 µW
	scoringAreaScale  = 0.82                  // scoring PE lacks the pointer/counter registers
	scoringPowerScale = 0.85
	// Gate upsizing beyond the 2 GHz knee: area(f) = A2 * (1 + kUp*(f-2)²),
	// solved so the edit PE hits 9.7 µm² at 5 GHz.
	kneeGHz = 2.0
)

var kUp = (editAreaUm2At5GHz/editAreaUm2At2GHz - 1) / ((5 - kneeGHz) * (5 - kneeGHz))

// PEArea returns one PE's area in µm² at the given clock.
func PEArea(m Machine, ghz float64) float64 {
	base := editAreaUm2At2GHz
	switch m {
	case ScoringPE:
		base = tbAreaUm2At2GHz * scoringAreaScale
	case TracebackPE:
		base = tbAreaUm2At2GHz
	}
	if ghz <= kneeGHz {
		// Below the knee, relaxed timing lets synthesis shrink gates
		// mildly; model a gentle slope toward a floor.
		return base * (0.85 + 0.15*ghz/kneeGHz)
	}
	d := ghz - kneeGHz
	return base * (1 + kUp*d*d)
}

// PEPower returns one PE's power in µW at the given clock: dynamic power
// scales with frequency and with the upsized capacitance.
func PEPower(m Machine, ghz float64) float64 {
	base := editPowerUwAt2GHz
	switch m {
	case ScoringPE:
		base = tbPowerUwAt2GHz * scoringPowerScale
	case TracebackPE:
		base = tbPowerUwAt2GHz
	}
	sizing := PEArea(m, ghz) / PEArea(m, kneeGHz)
	leak := 0.08 * base * sizing
	return base*(ghz/kneeGHz)*sizing + leak
}

// NumPEs returns the PE count of a SillaX machine with edit bound k
// (the paper counts the full (K+1)² grid of grouped units).
func NumPEs(k int) int { return (k + 1) * (k + 1) }

// MachineArea returns the machine area in mm².
func MachineArea(m Machine, k int, ghz float64) float64 {
	return PEArea(m, ghz) * float64(NumPEs(k)) / 1e6
}

// MachinePower returns the machine power in W.
func MachinePower(m Machine, k int, ghz float64) float64 {
	return PEPower(m, ghz) * float64(NumPEs(k)) / 1e6
}

// SweepPoint is one sample of the Fig 12 frequency sweep.
type SweepPoint struct {
	GHz     float64
	AreaUm2 float64 // per PE
	PowerUw float64 // per PE
	Optimal bool    // the paper highlights 2 GHz as the inflection point
}

// FrequencySweep reproduces a Fig 12 series.
func FrequencySweep(m Machine, fmin, fmax, step float64) []SweepPoint {
	var out []SweepPoint
	for f := fmin; f <= fmax+1e-9; f += step {
		out = append(out, SweepPoint{
			GHz:     f,
			AreaUm2: PEArea(m, f),
			PowerUw: PEPower(m, f),
			Optimal: math.Abs(f-kneeGHz) < step/2,
		})
	}
	return out
}

// BandedSWPEAreaUm2 is the paper's figure for a banded Smith-Waterman PE
// at 5 GHz (§VIII-C), 30x the Silla edit PE.
const BandedSWPEAreaUm2 = 300.0
