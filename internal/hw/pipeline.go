package hw

// PipelineProfile carries the per-read work coefficients measured on a
// simulated workload (package core reports them); the throughput model
// scales them to a paper-sized run. This replaces the paper's Ramulator +
// synthesis performance model (§VII).
type PipelineProfile struct {
	ReadLen int
	// ExactFraction of reads resolve through the exact-match fast path
	// (~0.75 on real data per §V).
	ExactFraction float64
	// SeedingOpsPerReadSegment is the average index-table plus CAM
	// operations one read costs in one segment (one op per lane cycle).
	SeedingOpsPerReadSegment float64
	// ExtensionsPerRead is the average number of seed extensions a
	// non-exact read triggers (summed over the segments that hit).
	ExtensionsPerRead float64
	// ExtensionCycles is the average SillaX lane cycles per extension
	// (all five phases plus re-runs).
	ExtensionCycles float64
}

// ThroughputReport is the Fig 15a model output.
type ThroughputReport struct {
	ReadsPerSec float64
	// Component times for one full workload, seconds.
	SeedingSec, ExtensionSec, TableLoadSec, ReadLoadSec, TotalSec float64
	// Bottleneck names the limiting component.
	Bottleneck string
}

// Throughput evaluates the pipeline model for totalReads reads.
// Seeding lanes, SillaX lanes and DRAM streaming overlap (§VI processes
// segments as a pipeline), so total time is the maximum of the compute
// components plus the unhidden part of memory streaming.
func (c ChipConfig) Throughput(p PipelineProfile, totalReads float64) ThroughputReport {
	hz := c.ClockGHz * 1e9
	segs := float64(c.SegmentCount)

	// Every read visits every segment's tables (reads are re-seeded per
	// segment; most segments reject a read after a handful of empty
	// index lookups, which the measured coefficient captures).
	seedOps := totalReads * segs * p.SeedingOpsPerReadSegment
	seedingSec := seedOps / (float64(c.SeedingLanes) * hz)

	extOps := totalReads * (1 - p.ExactFraction) * p.ExtensionsPerRead * p.ExtensionCycles
	extensionSec := extOps / (float64(c.SillaXLanes) * hz)

	bw := float64(c.DDRChannels) * c.DDRGBps * 1e9
	// Before each segment its full table set — 48 MB index, 18 MB
	// positions, ~1.5 MB reference slice — streams in over the eight
	// DDR4 channels (§VI: spatially co-located, so streaming is
	// bandwidth-bound).
	perSegmentBytes := (c.IndexTableMB+c.PositionTableMB)*1e6 + 1.5e6
	tableLoadSec := segs * perSegmentBytes / bw

	// Reads stream once per segment epoch, 2-bit packed.
	readBytes := totalReads * float64(p.ReadLen) / 4 * segs
	readLoadSec := readBytes / bw

	compute := seedingSec
	bottleneck := "seeding"
	if extensionSec > compute {
		compute, bottleneck = extensionSec, "extension"
	}
	mem := tableLoadSec + readLoadSec
	total := compute
	if mem > compute {
		total, bottleneck = mem, "memory"
	}
	// Staging slack: segment turnaround cannot fully hide the first and
	// last epochs; charge 10% of the unoverlapped smaller component.
	small := mem
	if compute < mem {
		small = compute
	}
	total += 0.1 * small

	return ThroughputReport{
		ReadsPerSec:  totalReads / total,
		SeedingSec:   seedingSec,
		ExtensionSec: extensionSec,
		TableLoadSec: tableLoadSec,
		ReadLoadSec:  readLoadSec,
		TotalSec:     total,
		Bottleneck:   bottleneck,
	}
}

// SillaXRawThroughput returns the Fig 14 model: extensions (hits) per
// second for all SillaX lanes given the average cycles per extension.
func (c ChipConfig) SillaXRawThroughput(extensionCycles float64) float64 {
	if extensionCycles <= 0 {
		return 0
	}
	return float64(c.SillaXLanes) * c.ClockGHz * 1e9 / extensionCycles
}
