package hw

// The lane-level scheduling model of Fig 11: 128 seeding lanes feed hit
// buffers that four SillaX lanes drain. Given the per-(read,segment) work
// items the pipeline simulation measured, a discrete-event simulation
// yields the makespan and per-pool utilization — the evidence behind §VI's
// claim that four SillaX lanes "have sufficient throughput to process hits
// from all 128 seeding lanes".

// LaneWork is the work one read generates in one segment pass.
type LaneWork struct {
	// SeedOps is the seeding-lane occupancy in cycles (index lookups
	// plus CAM operations).
	SeedOps int64
	// ExtJobs lists the SillaX extension jobs spawned (cycles each).
	ExtJobs []int64
}

// LaneReport summarizes the simulation.
type LaneReport struct {
	MakespanCycles int64
	// SeedUtilization and ExtUtilization are busy fractions in [0,1].
	SeedUtilization, ExtUtilization float64
	// Bottleneck names the pool with the higher utilization.
	Bottleneck string
	// Jobs processed.
	Reads, Extensions int
}

// SimulateLanes schedules the work items FIFO onto the chip's lane pools:
// each read occupies the earliest-free seeding lane; extensions release
// when their read's seeding completes and occupy the earliest-free SillaX
// lane. Buffering between the pools is assumed deep enough (the 16 KB
// read buffer and hit FIFOs of Fig 11) that lanes never stall on space.
func SimulateLanes(cfg ChipConfig, work []LaneWork) LaneReport {
	rep := LaneReport{}
	if len(work) == 0 {
		return rep
	}
	seedFree := make([]int64, cfg.SeedingLanes)
	extFree := make([]int64, cfg.SillaXLanes)
	var seedBusy, extBusy int64

	// earliest returns the index of the lane with the smallest free time.
	earliest := func(lanes []int64) int {
		best := 0
		for i := 1; i < len(lanes); i++ {
			if lanes[i] < lanes[best] {
				best = i
			}
		}
		return best
	}

	var makespan int64
	for _, w := range work {
		rep.Reads++
		sl := earliest(seedFree)
		start := seedFree[sl]
		done := start + w.SeedOps
		seedFree[sl] = done
		seedBusy += w.SeedOps
		if done > makespan {
			makespan = done
		}
		for _, ext := range w.ExtJobs {
			rep.Extensions++
			el := earliest(extFree)
			s := extFree[el]
			if done > s {
				s = done // hit is only available once seeding finished
			}
			e := s + ext
			extFree[el] = e
			extBusy += ext
			if e > makespan {
				makespan = e
			}
		}
	}
	rep.MakespanCycles = makespan
	if makespan > 0 {
		rep.SeedUtilization = float64(seedBusy) / float64(makespan*int64(cfg.SeedingLanes))
		rep.ExtUtilization = float64(extBusy) / float64(makespan*int64(cfg.SillaXLanes))
	}
	if rep.SeedUtilization >= rep.ExtUtilization {
		rep.Bottleneck = "seeding"
	} else {
		rep.Bottleneck = "extension"
	}
	return rep
}
