package core

import (
	"testing"

	"genax/internal/dna"
)

// TestEngineConfigPlumbing pins the Config.Engine pass-through: the
// cycle-level oracle and the bit-parallel default must produce identical
// alignments through the public API, and an unknown selector must be
// rejected by New (via pipeline validation).
func TestEngineConfigPlumbing(t *testing.T) {
	wl := testWorkload(320, 25000, 0.03)
	reads := make([]dna.Seq, 50)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}

	cfg := smallConfig()
	cfg.Engine = EngineSillaX
	oracle, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.AlignBatch(reads)

	cfg = smallConfig() // Engine left empty: resolves to bitsilla
	def, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := def.AlignBatch(reads)
	for i := range want {
		if got[i].Aligned != want[i].Aligned {
			t.Fatalf("read %d: aligned %v vs %v", i, got[i].Aligned, want[i].Aligned)
		}
		if !want[i].Aligned {
			continue
		}
		g, w := got[i].Result, want[i].Result
		if g.Score != w.Score || g.RefPos != w.RefPos || g.Reverse != w.Reverse ||
			g.Cigar.String() != w.Cigar.String() {
			t.Fatalf("read %d: bitsilla %v vs sillax %v", i, g, w)
		}
	}

	cfg = smallConfig()
	cfg.Engine = "fpga"
	if _, err := New(wl.Ref, cfg); err == nil {
		t.Error("unknown engine accepted")
	}
}
