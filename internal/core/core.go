// Package core is the GenAx top level (§VI): it couples the seeding lanes
// (package seed) to the SillaX extension lanes (package sillax via package
// extend) and runs reads through the reference segment by segment, exactly
// like the chip streams per-segment tables into SRAM and drains the hit
// buffers through four traceback machines.
package core

import (
	"fmt"
	"runtime"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/extend"
	"genax/internal/hw"
	"genax/internal/seed"
	"genax/internal/sillax"
)

// Config parametrizes a GenAx instance.
type Config struct {
	// K is the SillaX edit bound (40 in the paper).
	K int
	// Scoring is the extension scheme (BWA-MEM defaults).
	Scoring align.Scoring
	// KmerLen is the index k-mer size (12 in the paper; smaller values
	// keep laptop-scale index tables dense).
	KmerLen int
	// SegmentLen cuts the reference for per-segment tables; Overlap must
	// cover readLen+K so no alignment straddles a boundary unseen.
	SegmentLen, Overlap int
	// Seeding carries the §V optimization switches.
	Seeding seed.Options
	// MinScore suppresses alignments below the BWA-MEM reporting floor.
	MinScore int
	// Workers bounds goroutines in AlignBatch (0 = GOMAXPROCS); it
	// models the 128 seeding / 4 SillaX lanes only in the statistics,
	// not in scheduling.
	Workers int
}

// DefaultConfig mirrors the paper, scaled to a laptop-sized reference.
func DefaultConfig() Config {
	return Config{
		K:          40,
		Scoring:    align.BWAMEMDefaults(),
		KmerLen:    12,
		SegmentLen: 1 << 20,
		Overlap:    256,
		Seeding:    seed.DefaultOptions(),
		MinScore:   30,
	}
}

// Stats aggregates pipeline work counters (the measured coefficients the
// hw throughput model consumes).
type Stats struct {
	Reads, Aligned, ExactReads int
	Segments                   int
	IndexLookups, CAMLookups   int64
	SeedsEmitted, HitsEmitted  int64
	Extensions                 int64
	ExtensionCycles            int64
	ReRuns                     int64
}

// ReadResult is the outcome for one read in a batch.
type ReadResult struct {
	Result  align.Result
	Aligned bool
}

// Aligner is a GenAx instance bound to one reference.
type Aligner struct {
	cfg   Config
	ref   dna.Seq
	index *seed.SegmentedIndex
}

// New builds the per-segment tables for ref.
func New(ref dna.Seq, cfg Config) (*Aligner, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: edit bound %d must be positive", cfg.K)
	}
	if cfg.SegmentLen < cfg.Overlap {
		return nil, fmt.Errorf("core: segment length %d below overlap %d", cfg.SegmentLen, cfg.Overlap)
	}
	idx, err := seed.BuildSegmentedIndex(ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen)
	if err != nil {
		return nil, err
	}
	return &Aligner{cfg: cfg, ref: ref, index: idx}, nil
}

// Config returns the configuration.
func (a *Aligner) Config() Config { return a.cfg }

// Ref returns the reference.
func (a *Aligner) Ref() dna.Seq { return a.ref }

// NumSegments returns the segment count.
func (a *Aligner) NumSegments() int { return a.index.NumSegments() }

// countingEngine wraps a SillaX lane, accumulating cycle and re-run
// counters across extensions.
type countingEngine struct {
	m      *sillax.TracebackMachine
	cycles *int64
	reruns *int64
}

//genax:hotpath
func (e countingEngine) Extend(ref, query dna.Seq) extend.Extension {
	res := e.m.Extend(ref, query)
	*e.cycles += int64(res.Cycles)
	*e.reruns += int64(res.ReRuns)
	return extend.Extension{Score: res.Score, QueryLen: res.QueryLen, RefLen: res.RefLen, Cigar: res.Cigar}
}

// lane is one worker's persistent state, mirroring a hardware lane: the
// SillaX traceback machine, the seeding lane (rebound to each segment's
// tables with bind), the extension stitcher, the anchor-dedup set, and the
// work counters all live as long as the batch.
type lane struct {
	a       *Aligner
	eng     countingEngine
	sd      *seed.Seeder
	st      extend.Stitcher
	stats   Stats
	anchors map[int64]struct{}
	// trace, when non-nil, collects per-(read,segment) lane work items
	// for the Fig 11 scheduling simulation.
	trace *[]hw.LaneWork
}

func (a *Aligner) newLane() *lane {
	l := &lane{a: a, anchors: make(map[int64]struct{})}
	l.eng = countingEngine{
		m:      sillax.NewTracebackMachine(a.cfg.K, a.cfg.Scoring),
		cycles: &l.stats.ExtensionCycles,
		reruns: &l.stats.ReRuns,
	}
	l.st = extend.Stitcher{Eng: l.eng}
	return l
}

// bind points the lane's seeding hardware at a segment's tables, streaming
// them in like the chip does; the seeder itself (CAM, scratch, counters)
// persists across segments.
func (l *lane) bind(si *seed.SegmentIndex) {
	if l.sd == nil {
		l.sd = seed.NewSeeder(si, l.a.cfg.Seeding)
	} else {
		l.sd.Reset(si)
	}
}

// merge folds another stats block's work counters into t.
//
//genax:hotpath
func (t *Stats) merge(s Stats) {
	t.IndexLookups += s.IndexLookups
	t.CAMLookups += s.CAMLookups
	t.SeedsEmitted += s.SeedsEmitted
	t.HitsEmitted += s.HitsEmitted
	t.Extensions += s.Extensions
	t.ExtensionCycles += s.ExtensionCycles
	t.ReRuns += s.ReRuns
}

// exactCigar materializes the single-run cigar of a whole-read exact match.
// It is the one allocation an adopted fast-path candidate is allowed, kept
// out of the annotated alignInSegment body on purpose.
func exactCigar(n int) align.Cigar {
	return align.Cigar{{Op: align.OpMatch, Len: n}}
}

// alignInSegment seeds and extends one oriented read against one segment,
// merging candidates into best. It reports whether the read took the
// exact-match fast path in this segment.
//
//genax:hotpath
func (l *lane) alignInSegment(q dna.Seq, reverse bool, best *ReadResult) bool {
	sd := l.sd
	before := sd.Stats
	seeds := sd.Seed(q)
	after := sd.Stats
	l.stats.IndexLookups += int64(after.IndexLookups - before.IndexLookups)
	l.stats.CAMLookups += int64(after.CAMLookups - before.CAMLookups)
	l.stats.SeedsEmitted += int64(after.SeedsEmitted - before.SeedsEmitted)
	l.stats.HitsEmitted += int64(after.HitsEmitted - before.HitsEmitted)
	exact := after.ExactReads > before.ExactReads
	var workItem hw.LaneWork
	if l.trace != nil {
		workItem.SeedOps = int64(after.IndexLookups-before.IndexLookups) +
			int64(after.CAMLookups-before.CAMLookups)
	}
	clear(l.anchors)
	for _, s := range seeds {
		if exact {
			// Whole-read exact match: no extension needed (§V). The cigar
			// is materialized only when the candidate is adopted, so the
			// fast path stays allocation-free for out-scored positions.
			for _, h := range s.Positions {
				res := align.Result{
					RefPos:  int(h),
					Score:   len(q) * l.a.cfg.Scoring.Match,
					Reverse: reverse,
				}
				if !best.Aligned || res.Better(best.Result) {
					res.Cigar = exactCigar(len(q))
					best.Result, best.Aligned = res, true
				}
			}
			continue
		}
		for _, h := range s.Positions {
			key := int64(int(h)-s.Start)<<1 | boolBit(reverse)
			if _, dup := l.anchors[key]; dup {
				continue
			}
			l.anchors[key] = struct{}{}
			cyclesBefore := l.stats.ExtensionCycles
			res := l.st.AlignAt(l.a.cfg.Scoring, l.a.ref, q, s.Start, s.End, int(h), l.a.cfg.K)
			res.Reverse = reverse
			l.stats.Extensions++
			if l.trace != nil {
				workItem.ExtJobs = append(workItem.ExtJobs, l.stats.ExtensionCycles-cyclesBefore)
			}
			if !best.Aligned || res.Better(best.Result) {
				best.Result, best.Aligned = res, true
			}
		}
	}
	if l.trace != nil {
		*l.trace = append(*l.trace, workItem)
	}
	return exact
}

//genax:hotpath
func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// AlignBatch maps all reads, processing the reference segment-major like
// the chip: for each segment, every read is seeded against that segment's
// tables and surviving hits are extended, keeping each read's best
// alignment across segments. Work is sharded over Workers goroutines.
func (a *Aligner) AlignBatch(reads []dna.Seq) ([]ReadResult, Stats) {
	res, stats, _ := a.alignBatch(reads, false)
	return res, stats
}

// AlignBatchTraced is AlignBatch plus the per-(read,segment) work items
// consumed by hw.SimulateLanes (the Fig 11 lane-scheduling model).
func (a *Aligner) AlignBatchTraced(reads []dna.Seq) ([]ReadResult, Stats, []hw.LaneWork) {
	return a.alignBatch(reads, true)
}

func (a *Aligner) alignBatch(reads []dna.Seq, traceWork bool) ([]ReadResult, Stats, []hw.LaneWork) {
	workers := a.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reads) && len(reads) > 0 {
		workers = len(reads)
	}
	results := make([]ReadResult, len(reads))
	exactFlags := make([]bool, len(reads))
	revs := make([]dna.Seq, len(reads))
	for i, r := range reads {
		revs[i] = r.RevComp()
	}
	total, allWork := a.runPool(workers, reads, revs, results, exactFlags, traceWork)
	total.Reads = len(reads)
	total.Segments = a.index.NumSegments()
	for i := range results {
		if results[i].Aligned && results[i].Result.Score < a.cfg.MinScore {
			results[i] = ReadResult{}
		}
		if results[i].Aligned {
			total.Aligned++
		}
		if exactFlags[i] {
			total.ExactReads++
		}
	}
	return results, total, allWork
}

// AlignRead maps a single read (both strands, all segments).
func (a *Aligner) AlignRead(read dna.Seq) (align.Result, bool) {
	res, _ := a.AlignBatch([]dna.Seq{read})
	if !res[0].Aligned {
		return align.Result{}, false
	}
	return res[0].Result, true
}
