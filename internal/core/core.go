// Package core is the GenAx top level (§VI): it binds a reference and its
// per-segment tables to the staged execution engine in internal/pipeline,
// which couples the seeding lanes (package seed) to the SillaX extension
// lanes (package sillax via package extend) through bounded queues —
// exactly like the chip streams per-segment tables into SRAM and drains
// the hit buffers through four traceback machines. This package is the
// stable API surface; the stage graph, lane pools, backpressure, and
// result merging all live in internal/pipeline.
package core

import (
	"context"
	"fmt"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/hw"
	"genax/internal/pipeline"
	"genax/internal/seed"
)

// Stats aggregates pipeline work counters (the measured coefficients the
// hw throughput model consumes).
type Stats = pipeline.Stats

// ReadResult is the outcome for one read in a batch.
type ReadResult = pipeline.ReadResult

// Instrument collects per-stage busy time and queue occupancy; see
// pipeline.Instrument.
type Instrument = pipeline.Instrument

// StageMetrics is one stage's share of an Instrument.
type StageMetrics = pipeline.StageMetrics

// Engine names the extension engine backing the extend lanes; see
// pipeline.Engine.
type Engine = pipeline.Engine

// Extension engine selectors.
const (
	// EngineBitSilla is the bit-parallel Silla machine (the default).
	EngineBitSilla = pipeline.EngineBitSilla
	// EngineSillaX is the cycle-level reference machine.
	EngineSillaX = pipeline.EngineSillaX
	// EngineBanded is the software banded Smith-Waterman baseline.
	EngineBanded = pipeline.EngineBanded
	// EngineGenasm is the GenASM bit-vector engine (certified fast path
	// plus bitsilla fallback).
	EngineGenasm = pipeline.EngineGenasm
	// EngineCascade is the adaptive exact → genasm → bitsilla cascade.
	EngineCascade = pipeline.EngineCascade
)

// Config parametrizes a GenAx instance.
type Config struct {
	// K is the SillaX edit bound (40 in the paper).
	K int
	// Scoring is the extension scheme (BWA-MEM defaults).
	Scoring align.Scoring
	// Engine selects the extension engine ("" = EngineBitSilla). The
	// cycle-level EngineSillaX stays available as the reference oracle
	// and for figure reproductions that need re-run accounting.
	Engine Engine
	// KmerLen is the index k-mer size (12 in the paper; smaller values
	// keep laptop-scale index tables dense).
	KmerLen int
	// SegmentLen cuts the reference for per-segment tables; Overlap must
	// cover readLen+K so no alignment straddles a boundary unseen.
	SegmentLen, Overlap int
	// Seeding carries the §V optimization switches.
	Seeding seed.Options
	// MinScore suppresses alignments below the BWA-MEM reporting floor.
	MinScore int
	// Workers is the total lane budget across the seed and extend pools
	// (0 = GOMAXPROCS), split in the chip's 128:4 proportion unless
	// SeedLanes/ExtendLanes override it.
	Workers int
	// SeedLanes and ExtendLanes pin the per-stage worker counts
	// explicitly (0 = derive from Workers via pipeline.SplitLanes).
	SeedLanes, ExtendLanes int
	// MaxCandidates caps extension candidates per (read, strand, segment)
	// after deduplication (0 = unlimited).
	MaxCandidates int
	// ChainMinLen gates the long-read anchor-chaining pass by read length
	// (0 = pipeline.DefaultChainMinLen, negative = disabled); see
	// pipeline.Params.ChainMinLen.
	ChainMinLen int
	// CycleFallback forces the bitsilla engine onto the cycle-level
	// model; kept for benchmarking the degrade the multi-word datapath
	// replaced. Counted in Stats.EngineFallbacks and surfaced by
	// Warnings.
	CycleFallback bool
	// StreamWindow bounds reads in flight per AlignStream window
	// (0 = pipeline.DefaultWindow).
	StreamWindow int
	// Instrument, when non-nil, collects per-stage metrics.
	Instrument *Instrument
	// Index, when non-nil, is a prebuilt segmented index (typically loaded
	// from the on-disk cache via internal/indexio) used instead of building
	// tables from ref. Its geometry must match KmerLen, SegmentLen,
	// Overlap, and len(ref); New rejects mismatches so a stale cache can
	// never silently misalign reads.
	Index *seed.SegmentedIndex
	// Residency, when non-nil, lets a mapped index bound how many shard
	// groups of its tables are resident while the seed stage walks the
	// segments (indexio.ShardResidency). Results are byte-identical with
	// or without it; see pipeline.Residency.
	Residency pipeline.Residency
}

// DefaultConfig mirrors the paper, scaled to a laptop-sized reference.
func DefaultConfig() Config {
	return Config{
		K:          40,
		Scoring:    align.BWAMEMDefaults(),
		KmerLen:    12,
		SegmentLen: 1 << 20,
		Overlap:    256,
		Seeding:    seed.DefaultOptions(),
		MinScore:   30,
	}
}

// Aligner is a GenAx instance bound to one reference.
type Aligner struct {
	cfg   Config
	ref   dna.Seq
	index *seed.SegmentedIndex
	pipe  *pipeline.Pipeline
}

// New builds the per-segment tables for ref and the staged pipeline over
// them.
func New(ref dna.Seq, cfg Config) (*Aligner, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: edit bound %d must be positive", cfg.K)
	}
	if cfg.SegmentLen < cfg.Overlap {
		return nil, fmt.Errorf("core: segment length %d below overlap %d", cfg.SegmentLen, cfg.Overlap)
	}
	idx := cfg.Index
	if idx != nil {
		switch {
		case idx.RefLen != len(ref):
			return nil, fmt.Errorf("core: prebuilt index covers %d bases, reference has %d", idx.RefLen, len(ref))
		case idx.SegLen != cfg.SegmentLen:
			return nil, fmt.Errorf("core: prebuilt index segment length %d, config wants %d", idx.SegLen, cfg.SegmentLen)
		case idx.Overlap != cfg.Overlap:
			return nil, fmt.Errorf("core: prebuilt index overlap %d, config wants %d", idx.Overlap, cfg.Overlap)
		case idx.K != cfg.KmerLen:
			return nil, fmt.Errorf("core: prebuilt index k-mer length %d, config wants %d", idx.K, cfg.KmerLen)
		}
	} else {
		t0 := cfg.Instrument.ClockNow()
		built, err := seed.BuildSegmentedIndex(ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen)
		if err != nil {
			return nil, err
		}
		idx = built
		cfg.Instrument.RecordIndexBuild(t0, cfg.Instrument.ClockNow(), idx.NumSegments())
	}
	pipe, err := pipeline.New(ref, idx, pipeline.Params{
		K:             cfg.K,
		Scoring:       cfg.Scoring,
		Engine:        cfg.Engine,
		Seeding:       cfg.Seeding,
		MinScore:      cfg.MinScore,
		Workers:       cfg.Workers,
		SeedLanes:     cfg.SeedLanes,
		ExtendLanes:   cfg.ExtendLanes,
		MaxCandidates: cfg.MaxCandidates,
		ChainMinLen:   cfg.ChainMinLen,
		CycleFallback: cfg.CycleFallback,
		Window:        cfg.StreamWindow,
		Instrument:    cfg.Instrument,
		Residency:     cfg.Residency,
	})
	if err != nil {
		return nil, err
	}
	return &Aligner{cfg: cfg, ref: ref, index: idx, pipe: pipe}, nil
}

// Config returns the configuration.
func (a *Aligner) Config() Config { return a.cfg }

// Warnings reports configuration hazards worth a log line (degraded
// engines and the like); empty for a healthy configuration.
func (a *Aligner) Warnings() []string { return a.pipe.Warnings() }

// Ref returns the reference.
func (a *Aligner) Ref() dna.Seq { return a.ref }

// NumSegments returns the segment count.
func (a *Aligner) NumSegments() int { return a.index.NumSegments() }

// Index returns the segmented index the aligner runs against — the one
// built by New or the prebuilt one passed via Config.Index. Callers (the
// index cache writer) must treat it as read-only: the pipeline's lanes
// borrow its tables concurrently.
func (a *Aligner) Index() *seed.SegmentedIndex { return a.index }

// AlignBatch maps all reads, processing the reference segment-major like
// the chip: for each segment, every read is seeded against that segment's
// tables and surviving hits are extended, keeping each read's best
// alignment across segments.
func (a *Aligner) AlignBatch(reads []dna.Seq) ([]ReadResult, Stats) {
	return a.pipe.AlignBatch(reads)
}

// AlignBatchTraced is AlignBatch plus the per-(read,segment) work items
// consumed by hw.SimulateLanes (the Fig 11 lane-scheduling model).
func (a *Aligner) AlignBatchTraced(reads []dna.Seq) ([]ReadResult, Stats, []hw.LaneWork) {
	return a.pipe.AlignBatchTraced(reads)
}

// AlignStream maps reads arriving on in, emitting results in input order
// with a bounded window of reads in flight; see pipeline.AlignStream.
func (a *Aligner) AlignStream(ctx context.Context, in <-chan dna.Seq) (<-chan ReadResult, *Stats) {
	return a.pipe.AlignStream(ctx, in)
}

// AlignRead maps a single read (both strands, all segments) through a
// pooled fused lane — no per-call pipeline construction.
func (a *Aligner) AlignRead(read dna.Seq) (align.Result, bool) {
	return a.pipe.AlignRead(read)
}
