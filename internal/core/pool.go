package core

import (
	"sync"
	"sync/atomic"

	"genax/internal/dna"
	"genax/internal/hw"
)

// This file is the lane-pool scheduler behind AlignBatch. It mirrors the
// chip (§VI): lanes are persistent hardware — only the per-segment tables
// stream in — so the pool spawns its worker goroutines once per batch and
// each worker keeps one long-lived lane (traceback machine, seeder, CAM,
// scratch) across every segment. Within a segment, reads are claimed
// dynamically in small chunks off an atomic cursor instead of being
// striped statically: ~75% of reads resolve through the exact-match fast
// path while the rest pay full SillaX extension, and with that bimodal
// cost a static stripe leaves fast workers idle behind slow ones.

// barrier is a reusable synchronization point: every party blocks in await
// until all parties of the current generation have arrived, then all are
// released together. The pool places one between segments so no lane
// starts claiming segment s+1 while another still extends reads in s —
// exactly the chip's table-streaming boundary, and what keeps each read's
// per-segment merge order (and therefore the output) deterministic.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

//genax:hotpath
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// claimChunk sizes the work-claiming granule: small enough that one worker
// stuck on expensive extensions cannot strand a long tail of reads behind
// it, large enough that the atomic cursor stays uncontended.
//
//genax:hotpath
func claimChunk(reads, workers int) int64 {
	c := reads / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 32 {
		c = 32
	}
	return int64(c)
}

// runPool drives the persistent lane pool over every segment of the index.
// Each worker claims chunks of the read range off the segment's cursor,
// aligns both strands of each claimed read, waits at the barrier, and
// moves on to the next segment with its lane intact. Results and flags are
// written only by the worker holding a read's claim; the barrier's
// happens-before edge hands them safely to the next segment's claimant.
func (a *Aligner) runPool(workers int, reads, revs []dna.Seq, results []ReadResult, exactFlags []bool, traceWork bool) (Stats, []hw.LaneWork) {
	var total Stats
	var allWork []hw.LaneWork
	var mu sync.Mutex
	cursors := make([]atomic.Int64, a.index.NumSegments())
	chunk := claimChunk(len(reads), workers)
	bar := newBarrier(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := a.newLane()
			var localTrace []hw.LaneWork
			if traceWork {
				l.trace = &localTrace
			}
			for s, si := range a.index.Samples {
				l.bind(si)
				for {
					start := cursors[s].Add(chunk) - chunk
					if start >= int64(len(reads)) {
						break
					}
					end := start + chunk
					if end > int64(len(reads)) {
						end = int64(len(reads))
					}
					for i := start; i < end; i++ {
						if l.alignInSegment(reads[i], false, &results[i]) {
							exactFlags[i] = true
						}
						if l.alignInSegment(revs[i], true, &results[i]) {
							exactFlags[i] = true
						}
					}
				}
				bar.await()
			}
			mu.Lock()
			if traceWork {
				allWork = append(allWork, localTrace...)
			}
			total.merge(l.stats)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total, allWork
}
