package core

import (
	"path/filepath"
	"testing"

	"genax/internal/dna"
	"genax/internal/indexio"
)

// TestMappedIndexMatchesHeap pins the tentpole acceptance gate inside the
// test suite: aligning over a heap-built index, a zero-copy mapped index,
// and a sharded mapped index under the tightest residency bound must be
// byte-identical — index hash, per-read results, and work counters — with
// the mapped runs using the file's own reference bytes (out-of-core: no
// heap copy of the genome).
func TestMappedIndexMatchesHeap(t *testing.T) {
	wl := testWorkload(311, 30000, 0.02)
	cfg := smallConfig()
	heap, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v2.gaxi")
	if err := indexio.WriteFileShards(path, heap.Index(), wl.Ref, 2); err != nil {
		t.Fatalf("WriteFileShards: %v", err)
	}
	m, err := indexio.OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()
	if m.Index().Hash() != heap.Index().Hash() {
		t.Fatalf("mapped index hash %016x != heap %016x", m.Index().Hash(), heap.Index().Hash())
	}

	reads := make([]dna.Seq, 0, 60)
	for i := 0; i < len(wl.Reads) && i < 60; i++ {
		reads = append(reads, wl.Reads[i].Seq)
	}
	want, wantStats := heap.AlignBatch(reads)

	check := func(name string, res *indexio.ShardResidency) {
		t.Helper()
		mcfg := cfg
		mcfg.Index = m.Index()
		if res != nil {
			mcfg.Residency = res
		}
		// The aligner runs entirely off the mapping: reference included.
		a, err := New(m.Ref(), mcfg)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		got, gotStats := a.AlignBatch(reads)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results vs %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].Aligned != want[i].Aligned {
				t.Fatalf("%s read %d: aligned %v vs %v", name, i, got[i].Aligned, want[i].Aligned)
			}
			if !want[i].Aligned {
				continue
			}
			g, w := got[i].Result, want[i].Result
			if g.RefPos != w.RefPos || g.Score != w.Score || g.Reverse != w.Reverse || g.Cigar.String() != w.Cigar.String() {
				t.Fatalf("%s read %d: (%d,%d,%v,%s) vs (%d,%d,%v,%s)",
					name, i, g.RefPos, g.Score, g.Reverse, g.Cigar, w.RefPos, w.Score, w.Reverse, w.Cigar)
			}
		}
		if gotStats.IndexLookups != wantStats.IndexLookups || gotStats.CAMLookups != wantStats.CAMLookups {
			t.Errorf("%s: work counters diverged: %d/%d vs heap %d/%d",
				name, gotStats.IndexLookups, gotStats.CAMLookups, wantStats.IndexLookups, wantStats.CAMLookups)
		}
	}

	check("mapped", nil)
	res := indexio.NewShardResidency(m, 1)
	check("sharded", res)
	admits, drops, _ := res.Stats()
	if admits == 0 || admits != drops {
		t.Errorf("sharded run admits %d, drops %d — residency never cycled", admits, drops)
	}
}
