package core

import (
	"testing"

	"genax/internal/dna"
	"genax/internal/sim"
)

// TestSegmentBoundaryReads pins the §V/§VI segmentation guarantee: reads
// drawn across segment boundaries must still align, because the overlap
// places every read-length window wholly inside some segment.
func TestSegmentBoundaryReads(t *testing.T) {
	wl := sim.NewWorkload(310, 40000, sim.VariantProfile{}, sim.ReadProfile{Length: 101, Coverage: 0})
	cfg := smallConfig() // SegmentLen 8192, Overlap 256
	a, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reads straddling every internal boundary at several offsets.
	var reads []dna.Seq
	var truePos []int
	for b := cfg.SegmentLen; b < len(wl.Ref); b += cfg.SegmentLen {
		for _, off := range []int{-100, -50, -1, 0, 1, 50} {
			p := b + off - 50
			if p < 0 || p+101 > len(wl.Ref) {
				continue
			}
			reads = append(reads, wl.Ref[p:p+101].Clone())
			truePos = append(truePos, p)
		}
	}
	if len(reads) == 0 {
		t.Fatal("no boundary reads constructed")
	}
	results, _ := a.AlignBatch(reads)
	for i, rr := range results {
		if !rr.Aligned {
			t.Fatalf("boundary read %d (pos %d) unaligned", i, truePos[i])
		}
		if rr.Result.Score != 101 {
			t.Errorf("boundary read %d score %d, want 101", i, rr.Result.Score)
		}
		if rr.Result.RefPos != truePos[i] {
			t.Errorf("boundary read %d mapped to %d, want %d", i, rr.Result.RefPos, truePos[i])
		}
	}
}

// TestReadAtReferenceEnds exercises clamping at position 0 and len(ref).
func TestReadAtReferenceEnds(t *testing.T) {
	wl := sim.NewWorkload(311, 20000, sim.VariantProfile{}, sim.ReadProfile{Length: 101, Coverage: 0})
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := wl.Ref[:101].Clone()
	last := wl.Ref[len(wl.Ref)-101:].Clone()
	results, _ := a.AlignBatch([]dna.Seq{first, last})
	if !results[0].Aligned || results[0].Result.RefPos != 0 {
		t.Errorf("first-window read: %+v", results[0])
	}
	if !results[1].Aligned || results[1].Result.RefPos != len(wl.Ref)-101 {
		t.Errorf("last-window read: %+v", results[1])
	}
}

// TestMutatedBoundaryRead forces extension (not the exact fast path)
// across a boundary.
func TestMutatedBoundaryRead(t *testing.T) {
	wl := sim.NewWorkload(312, 40000, sim.VariantProfile{}, sim.ReadProfile{Length: 101, Coverage: 0})
	cfg := smallConfig()
	a, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.SegmentLen - 50
	read := wl.Ref[p : p+101].Clone()
	read[10] = read[10] ^ 1
	read[80] = read[80] ^ 2
	results, stats := a.AlignBatch([]dna.Seq{read})
	if !results[0].Aligned {
		t.Fatal("mutated boundary read unaligned")
	}
	if stats.ExactReads != 0 {
		t.Error("mutated read took the exact path")
	}
	if got := results[0].Result.RefPos; got != p {
		t.Errorf("mapped to %d, want %d", got, p)
	}
	if results[0].Result.Score != 101-2-2*4 {
		t.Errorf("score %d, want 93", results[0].Result.Score)
	}
}
