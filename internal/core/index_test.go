package core

import (
	"bytes"
	"testing"

	"genax/internal/dna"
	"genax/internal/indexio"
	"genax/internal/seed"
)

// TestPrebuiltIndexMatchesInProcessBuild pins the index-cache contract end
// to end: an aligner running on an index that went through the on-disk
// serialization must produce results byte-identical to one that built its
// tables in process.
func TestPrebuiltIndexMatchesInProcessBuild(t *testing.T) {
	wl := testWorkload(310, 30000, 0.02)
	cfg := smallConfig()
	built, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := indexio.Write(&buf, built.Index(), wl.Ref); err != nil {
		t.Fatalf("Write: %v", err)
	}
	loaded, err := indexio.Read(bytes.NewReader(buf.Bytes()), wl.Ref)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if loaded.Hash() != built.Index().Hash() {
		t.Fatalf("cache round trip changed the index hash: %016x vs %016x", loaded.Hash(), built.Index().Hash())
	}
	cfg2 := cfg
	cfg2.Index = loaded
	cached, err := New(wl.Ref, cfg2)
	if err != nil {
		t.Fatal(err)
	}

	reads := make([]dna.Seq, 0, 60)
	for i := 0; i < len(wl.Reads) && i < 60; i++ {
		reads = append(reads, wl.Reads[i].Seq)
	}
	want, wantStats := built.AlignBatch(reads)
	got, gotStats := cached.AlignBatch(reads)
	if len(got) != len(want) {
		t.Fatalf("%d results vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Aligned != want[i].Aligned {
			t.Fatalf("read %d: aligned %v vs %v", i, got[i].Aligned, want[i].Aligned)
		}
		if !want[i].Aligned {
			continue
		}
		g, w := got[i].Result, want[i].Result
		if g.RefPos != w.RefPos || g.Score != w.Score || g.Reverse != w.Reverse || g.Cigar.String() != w.Cigar.String() {
			t.Fatalf("read %d: (%d,%d,%v,%s) vs (%d,%d,%v,%s)",
				i, g.RefPos, g.Score, g.Reverse, g.Cigar, w.RefPos, w.Score, w.Reverse, w.Cigar)
		}
	}
	if gotStats.IndexLookups != wantStats.IndexLookups || gotStats.CAMLookups != wantStats.CAMLookups {
		t.Errorf("work counters diverged: cached %d/%d vs built %d/%d",
			gotStats.IndexLookups, gotStats.CAMLookups, wantStats.IndexLookups, wantStats.CAMLookups)
	}
}

// TestPrebuiltIndexValidation: a prebuilt index whose geometry disagrees
// with the config must be rejected, field by field.
func TestPrebuiltIndexValidation(t *testing.T) {
	ref := make(dna.Seq, 20000)
	cfg := smallConfig()
	idx, err := seed.BuildSegmentedIndex(ref, cfg.SegmentLen, cfg.Overlap, cfg.KmerLen)
	if err != nil {
		t.Fatal(err)
	}
	good := cfg
	good.Index = idx
	if _, err := New(ref, good); err != nil {
		t.Fatalf("matching prebuilt index rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"kmer", func(c *Config) { c.KmerLen = cfg.KmerLen - 1 }},
		{"segment", func(c *Config) { c.SegmentLen = cfg.SegmentLen * 2 }},
		{"overlap", func(c *Config) { c.Overlap = cfg.Overlap - 1 }},
	} {
		bad := cfg
		bad.Index = idx
		tc.mut(&bad)
		if _, err := New(ref, bad); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
	}
	if _, err := New(ref[:len(ref)-1], good); err == nil {
		t.Error("reference length mismatch accepted")
	}
}
