package core

import (
	"sync"
	"testing"
)

// TestAlignReadConcurrentHammer drives the pooled AlignRead fast path —
// the serve layer's per-request fallback when coalescing is off — from
// many goroutines at once against a shared Aligner. Run under -race this
// is the data-race gate for the singleLane pool; in every build each
// result must match the AlignBatch oracle, so lane state bleeding between
// concurrent calls cannot hide.
func TestAlignReadConcurrentHammer(t *testing.T) {
	wl, reads := poolWorkload(t, 120)
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.AlignBatch(reads)

	iters := 10
	if raceEnabled {
		iters = 4 // instrumentation is ~10x; keep the race run minutes-free
	}
	const workers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr string
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for i := range reads {
					// Stagger the order per worker so different reads
					// share pooled lanes at the same instant.
					idx := (i*7 + w*13 + it) % len(reads)
					res, ok := a.AlignRead(reads[idx])
					if ok != want[idx].Aligned {
						mu.Lock()
						if firstErr == "" {
							firstErr = "aligned flag diverged from the batch oracle under concurrency"
						}
						mu.Unlock()
						return
					}
					if !ok {
						continue
					}
					o := want[idx].Result
					if res.Score != o.Score || res.RefPos != o.RefPos || res.Reverse != o.Reverse ||
						res.Cigar.String() != o.Cigar.String() {
						mu.Lock()
						if firstErr == "" {
							firstErr = "alignment diverged from the batch oracle under concurrency"
						}
						mu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != "" {
		t.Fatal(firstErr)
	}
}

// TestAlignReadConcurrentAllocs pins the pooled fast path's steady-state
// allocation cost after a concurrent burst has populated the lane pool:
// ≤ ~2.5 allocations per call on a mixed read set (the documented figure —
// only adopted result cigars allocate). A regression here multiplies
// straight into per-request serving cost.
func TestAlignReadConcurrentAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	wl, reads := poolWorkload(t, 60)
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent warmup: grow the singleLane pool the way serve traffic
	// does, so the measurement below reuses warm lanes rather than
	// crediting first-call scratch growth to the steady state.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range reads {
				a.AlignRead(r)
			}
		}()
	}
	wg.Wait()

	sweep := func() {
		for _, r := range reads {
			a.AlignRead(r)
		}
	}
	sweep()
	perCall := testing.AllocsPerRun(10, sweep) / float64(len(reads))
	const budget = 2.5
	if perCall > budget {
		t.Errorf("pooled AlignRead allocates %.2f per call, budget %.1f", perCall, budget)
	}
	t.Logf("pooled AlignRead allocs: %.2f per call (budget %.1f)", perCall, budget)
}
