//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-budget tests skip themselves under it because the
// instrumentation itself allocates, and hammer tests scale their
// iteration counts down.
const raceEnabled = false
