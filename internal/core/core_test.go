package core

import (
	"testing"

	"genax/internal/bwamem"
	"genax/internal/dna"
	"genax/internal/sim"
)

// smallConfig scales the chip configuration to test-sized genomes.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 24
	cfg.KmerLen = 10
	cfg.SegmentLen = 8192
	cfg.Overlap = 256
	cfg.Seeding.MinSeedLen = 19
	return cfg
}

func testWorkload(seed int64, n int, errRate float64) *sim.Workload {
	return sim.NewWorkload(seed, n,
		sim.VariantProfile{SNPRate: 0.001, IndelRate: 0.0002, MaxIndel: 6},
		sim.ReadProfile{Length: 101, Coverage: 2, ErrorRate: errRate, ReverseFraction: 0.5})
}

func TestNewValidation(t *testing.T) {
	ref := make(dna.Seq, 1000)
	cfg := smallConfig()
	cfg.K = 0
	if _, err := New(ref, cfg); err == nil {
		t.Error("K=0 accepted")
	}
	cfg = smallConfig()
	cfg.SegmentLen = 10
	if _, err := New(ref, cfg); err == nil {
		t.Error("segment shorter than overlap accepted")
	}
}

func TestAlignPerfectReads(t *testing.T) {
	wl := sim.NewWorkload(300, 30000, sim.VariantProfile{}, sim.ReadProfile{Length: 101, Coverage: 1, ErrorRate: 0, ReverseFraction: 0.5})
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSegments() < 3 {
		t.Fatalf("expected several segments, got %d", a.NumSegments())
	}
	reads := make([]dna.Seq, 40)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	results, stats := a.AlignBatch(reads)
	for i, rr := range results {
		rd := wl.Reads[i]
		if !rr.Aligned {
			t.Fatalf("read %s unaligned", rd.ID)
		}
		if rr.Result.Score != 101 {
			t.Errorf("read %s score %d", rd.ID, rr.Result.Score)
		}
		if rr.Result.RefPos != rd.TruePos &&
			!wl.Ref[rr.Result.RefPos:rr.Result.RefPos+101].Equal(wl.Ref[rd.TruePos:rd.TruePos+101]) {
			t.Errorf("read %s mapped to %d, true %d", rd.ID, rr.Result.RefPos, rd.TruePos)
		}
		if rr.Result.Reverse != rd.Reverse {
			t.Errorf("read %s strand mismatch", rd.ID)
		}
	}
	if stats.ExactReads != len(reads) {
		t.Errorf("ExactReads = %d, want %d (error-free workload)", stats.ExactReads, len(reads))
	}
	if stats.Aligned != len(reads) {
		t.Errorf("Aligned = %d", stats.Aligned)
	}
}

func TestAlignNoisyReadsAccuracy(t *testing.T) {
	wl := testWorkload(301, 30000, 0.02)
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 120
	reads := make([]dna.Seq, n)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	results, stats := a.AlignBatch(reads)
	aligned, near := 0, 0
	for i, rr := range results {
		if !rr.Aligned {
			continue
		}
		aligned++
		q := reads[i]
		if rr.Result.Reverse {
			q = q.RevComp()
		}
		if err := rr.Result.Cigar.Validate(wl.Ref[rr.Result.RefPos:], q); err != nil {
			t.Fatalf("read %d: invalid cigar: %v", i, err)
		}
		if d := rr.Result.RefPos - wl.Reads[i].TruePos; d >= -12 && d <= 12 {
			near++
		}
	}
	if aligned < n*95/100 {
		t.Errorf("aligned %d/%d", aligned, n)
	}
	if near < aligned*95/100 {
		t.Errorf("only %d/%d near true position", near, aligned)
	}
	if stats.Extensions == 0 || stats.ExtensionCycles == 0 {
		t.Errorf("extension stats empty: %+v", stats)
	}
	t.Logf("stats: %+v", stats)
}

// TestConcordanceWithBWAMEM is the §VIII-A validation: GenAx alignment
// scores must concur with the BWA-MEM-like software pipeline on (nearly)
// every read; the paper reports 0.0023%% variance with equal scores.
func TestConcordanceWithBWAMEM(t *testing.T) {
	wl := testWorkload(302, 40000, 0.02)
	cfg := smallConfig()
	a, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bw := bwamem.New(wl.Ref, bwamem.Options{
		Scoring:    cfg.Scoring,
		Band:       cfg.K,
		MinSeedLen: cfg.Seeding.MinSeedLen,
		MaxHits:    512,
		MinScore:   cfg.MinScore,
	})
	n := 150
	reads := make([]dna.Seq, n)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	results, _ := a.AlignBatch(reads)
	same, differ, bothAligned := 0, 0, 0
	for i := range reads {
		swRes, swOK := bw.Align(reads[i])
		gxOK := results[i].Aligned
		if swOK != gxOK {
			differ++
			continue
		}
		if !swOK {
			continue
		}
		bothAligned++
		if swRes.Score == results[i].Result.Score {
			same++
		} else {
			differ++
			t.Logf("read %d: genax score %d pos %d (%v) vs bwamem %d pos %d (%v)",
				i, results[i].Result.Score, results[i].Result.RefPos, results[i].Result.Cigar,
				swRes.Score, swRes.RefPos, swRes.Cigar)
		}
	}
	if bothAligned == 0 {
		t.Fatal("nothing aligned")
	}
	// The paper reports near-perfect concordance; allow a small residue
	// for band-vs-edit-bound boundary effects.
	if float64(differ) > 0.02*float64(n) {
		t.Errorf("%d/%d reads disagree with the software gold", differ, n)
	}
	t.Logf("concordance: %d/%d equal scores, %d differ", same, bothAligned, differ)
}

func TestAlignReadSingle(t *testing.T) {
	wl := testWorkload(303, 20000, 0)
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, ok := a.AlignRead(wl.Reads[0].Seq)
	if !ok {
		t.Fatal("unaligned")
	}
	if res.Score < 60 {
		t.Errorf("score %d", res.Score)
	}
}

func TestAlignBatchEmpty(t *testing.T) {
	wl := testWorkload(304, 20000, 0)
	a, _ := New(wl.Ref, smallConfig())
	results, stats := a.AlignBatch(nil)
	if len(results) != 0 || stats.Reads != 0 {
		t.Errorf("empty batch: %v %+v", results, stats)
	}
}

func TestMinScoreGate(t *testing.T) {
	wl := testWorkload(305, 20000, 0)
	cfg := smallConfig()
	cfg.MinScore = 1000 // impossible
	a, _ := New(wl.Ref, cfg)
	results, stats := a.AlignBatch([]dna.Seq{wl.Reads[0].Seq})
	if results[0].Aligned || stats.Aligned != 0 {
		t.Error("alignment reported despite impossible MinScore")
	}
}

// TestMinScoreEdge pins the Aligned && Score < MinScore edge on a read
// with a known exact score: a mutated boundary read scoring 91 must be
// suppressed at MinScore 92 — with its extension work still counted,
// since the gate sits after the merge, not inside the lanes — and
// reported untouched at MinScore 91.
func TestMinScoreEdge(t *testing.T) {
	wl := sim.NewWorkload(313, 40000, sim.VariantProfile{}, sim.ReadProfile{Length: 101, Coverage: 0})
	cfg := smallConfig()
	p := cfg.SegmentLen - 50
	read := wl.Ref[p : p+101].Clone()
	read[10] ^= 1
	read[80] ^= 2 // two SNPs: score 99*1 - 2*4 = 91

	cfg.MinScore = 91
	a, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, stats := a.AlignBatch([]dna.Seq{read})
	if !results[0].Aligned || results[0].Result.Score != 91 {
		t.Fatalf("at-floor read: %+v", results[0])
	}
	if stats.Aligned != 1 {
		t.Errorf("stats.Aligned = %d, want 1", stats.Aligned)
	}

	cfg.MinScore = 92
	a, err = New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, stats = a.AlignBatch([]dna.Seq{read})
	if results[0].Aligned || results[0].Result.Score != 0 || results[0].Result.Cigar != nil {
		t.Fatalf("sub-floor alignment leaked: %+v", results[0])
	}
	if stats.Aligned != 0 {
		t.Errorf("stats.Aligned = %d, want 0", stats.Aligned)
	}
	if stats.Extensions == 0 {
		t.Error("extension work uncounted: the gate must sit after the merge, not suppress the work")
	}

	// The single-read fast path shares the same gate.
	if _, ok := a.AlignRead(read); ok {
		t.Error("AlignRead leaked a sub-MinScore alignment")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	wl := testWorkload(306, 25000, 0.02)
	reads := make([]dna.Seq, 40)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	cfg1 := smallConfig()
	cfg1.Workers = 1
	cfg4 := smallConfig()
	cfg4.Workers = 4
	a1, _ := New(wl.Ref, cfg1)
	a4, _ := New(wl.Ref, cfg4)
	r1, _ := a1.AlignBatch(reads)
	r4, _ := a4.AlignBatch(reads)
	for i := range reads {
		if r1[i].Aligned != r4[i].Aligned {
			t.Fatalf("read %d aligned flag differs across worker counts", i)
		}
		if r1[i].Aligned && (r1[i].Result.Score != r4[i].Result.Score || r1[i].Result.RefPos != r4[i].Result.RefPos) {
			t.Fatalf("read %d result differs across worker counts: %v vs %v", i, r1[i].Result, r4[i].Result)
		}
	}
}
