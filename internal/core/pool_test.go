package core

import (
	"sync"
	"testing"

	"genax/internal/dna"
	"genax/internal/sim"
)

// poolWorkload builds a shared fixture: a multi-segment reference and a
// read mix whose cost is bimodal (exact fast-path reads plus noisy reads
// needing full SillaX extension), the regime dynamic claiming targets.
func poolWorkload(t *testing.T, n int) (*sim.Workload, []dna.Seq) {
	t.Helper()
	wl := testWorkload(310, 30000, 0.02)
	if n > len(wl.Reads) {
		n = len(wl.Reads)
	}
	reads := make([]dna.Seq, n)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	return wl, reads
}

// TestAlignBatchDeterministic asserts dynamic work claiming and the
// decoupled extend lanes cannot change output: results must be
// byte-identical (position, score, strand, cigar) between a single-lane
// pipeline and a wide one.
func TestAlignBatchDeterministic(t *testing.T) {
	wl, reads := poolWorkload(t, 60)
	cfg1 := smallConfig()
	cfg1.Workers = 1
	cfg8 := smallConfig()
	cfg8.Workers = 8
	a1, err := New(wl.Ref, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := New(wl.Ref, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	r1, s1 := a1.AlignBatch(reads)
	r8, s8 := a8.AlignBatch(reads)
	for i := range reads {
		if r1[i].Aligned != r8[i].Aligned {
			t.Fatalf("read %d: aligned flag differs across worker counts", i)
		}
		if !r1[i].Aligned {
			continue
		}
		x, y := r1[i].Result, r8[i].Result
		if x.Score != y.Score || x.RefPos != y.RefPos || x.Reverse != y.Reverse ||
			x.Cigar.String() != y.Cigar.String() {
			t.Fatalf("read %d: %v vs %v", i, x, y)
		}
	}
	// Work counters are claim-order independent too.
	if s1 != s8 {
		t.Errorf("stats differ across worker counts:\n1: %+v\n8: %+v", s1, s8)
	}
}

// TestAlignBatchConcurrentBatches exercises the atomic work cursors, the
// segment barrier, and the stage queues under the race detector: several
// batches run concurrently over one (read-only) Aligner, and every one
// must produce the same results.
func TestAlignBatchConcurrentBatches(t *testing.T) {
	wl, reads := poolWorkload(t, 48)
	cfg := smallConfig()
	cfg.Workers = 8
	a, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.AlignBatch(reads)
	const batches = 4
	got := make([][]ReadResult, batches)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			got[b], _ = a.AlignBatch(reads)
		}(b)
	}
	wg.Wait()
	for b := 0; b < batches; b++ {
		for i := range reads {
			if got[b][i].Aligned != want[i].Aligned {
				t.Fatalf("batch %d read %d: aligned flag diverged", b, i)
			}
			if want[i].Aligned && got[b][i].Result.String() != want[i].Result.String() {
				t.Fatalf("batch %d read %d: %v vs %v", b, i, got[b][i].Result, want[i].Result)
			}
		}
	}
}
