package core

import (
	"sync"
	"testing"

	"genax/internal/dna"
	"genax/internal/sim"
)

// poolWorkload builds a shared fixture: a multi-segment reference and a
// read mix whose cost is bimodal (exact fast-path reads plus noisy reads
// needing full SillaX extension), the regime dynamic claiming targets.
func poolWorkload(t *testing.T, n int) (*sim.Workload, []dna.Seq) {
	t.Helper()
	wl := testWorkload(310, 30000, 0.02)
	if n > len(wl.Reads) {
		n = len(wl.Reads)
	}
	reads := make([]dna.Seq, n)
	for i := range reads {
		reads[i] = wl.Reads[i].Seq
	}
	return wl, reads
}

// TestAlignBatchDeterministic asserts dynamic work claiming cannot change
// output: results must be byte-identical (position, score, strand, cigar)
// between a single-lane pool and a wide one.
func TestAlignBatchDeterministic(t *testing.T) {
	wl, reads := poolWorkload(t, 60)
	cfg1 := smallConfig()
	cfg1.Workers = 1
	cfg8 := smallConfig()
	cfg8.Workers = 8
	a1, err := New(wl.Ref, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := New(wl.Ref, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	r1, s1 := a1.AlignBatch(reads)
	r8, s8 := a8.AlignBatch(reads)
	for i := range reads {
		if r1[i].Aligned != r8[i].Aligned {
			t.Fatalf("read %d: aligned flag differs across worker counts", i)
		}
		if !r1[i].Aligned {
			continue
		}
		x, y := r1[i].Result, r8[i].Result
		if x.Score != y.Score || x.RefPos != y.RefPos || x.Reverse != y.Reverse ||
			x.Cigar.String() != y.Cigar.String() {
			t.Fatalf("read %d: %v vs %v", i, x, y)
		}
	}
	// Work counters are claim-order independent too.
	if s1 != s8 {
		t.Errorf("stats differ across worker counts:\n1: %+v\n8: %+v", s1, s8)
	}
}

// TestAlignBatchSteadyStateAllocs pins the allocation budget of the align
// hot path: with every lane buffer warm, aligning a read (both strands,
// all segments) may allocate only the adopted result cigars — the budget
// below is a hard ceiling, kept deliberately above the measured value but
// far below the pre-pool cost (hundreds of allocations per read).
func TestAlignBatchSteadyStateAllocs(t *testing.T) {
	wl, reads := poolWorkload(t, 30)
	a, err := New(wl.Ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	revs := make([]dna.Seq, len(reads))
	for i, r := range reads {
		revs[i] = r.RevComp()
	}
	l := a.newLane()
	sweep := func() {
		for _, si := range a.index.Samples {
			l.bind(si)
			for i := range reads {
				var best ReadResult
				l.alignInSegment(reads[i], false, &best)
				l.alignInSegment(revs[i], true, &best)
			}
		}
	}
	sweep() // warm the lane's scratch buffers
	avg := testing.AllocsPerRun(10, sweep)
	perRead := avg / float64(len(reads))
	const budget = 12.0
	if perRead > budget {
		t.Errorf("steady-state align path allocates %.2f per read, budget %.1f", perRead, budget)
	}
	t.Logf("steady-state allocs: %.2f per read (budget %.1f)", perRead, budget)
}

// TestAlignBatchConcurrentBatches exercises the atomic work cursors and
// the segment barrier under the race detector: several batches run
// concurrently over one (read-only) Aligner, and every one must produce
// the same results.
func TestAlignBatchConcurrentBatches(t *testing.T) {
	wl, reads := poolWorkload(t, 48)
	cfg := smallConfig()
	cfg.Workers = 8
	a, err := New(wl.Ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := a.AlignBatch(reads)
	const batches = 4
	got := make([][]ReadResult, batches)
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			got[b], _ = a.AlignBatch(reads)
		}(b)
	}
	wg.Wait()
	for b := 0; b < batches; b++ {
		for i := range reads {
			if got[b][i].Aligned != want[i].Aligned {
				t.Fatalf("batch %d read %d: aligned flag diverged", b, i)
			}
			if want[i].Aligned && got[b][i].Result.String() != want[i].Result.String() {
				t.Fatalf("batch %d read %d: %v vs %v", b, i, got[b][i].Result, want[i].Result)
			}
		}
	}
}

// TestClaimChunk pins the claiming granule's bounds.
func TestClaimChunk(t *testing.T) {
	cases := []struct {
		reads, workers int
		want           int64
	}{
		{0, 4, 1},
		{10, 4, 1},
		{256, 4, 8},
		{100000, 4, 32},
		{64, 8, 1},
	}
	for _, tc := range cases {
		if got := claimChunk(tc.reads, tc.workers); got != tc.want {
			t.Errorf("claimChunk(%d, %d) = %d, want %d", tc.reads, tc.workers, got, tc.want)
		}
	}
}
