// Package serve is the alignment-as-a-service front end over core.Aligner:
// it turns many small concurrent requests — the traffic shape of "millions
// of users" — into the large batches the staged pipeline is fast at, and
// serves multiple reference genomes from one process via a registry of
// mmap-backed index caches.
//
// The layer has three parts (DESIGN.md §14):
//
//   - Admission/coalescing. Each genome owns a bounded intake queue and a
//     dispatcher goroutine. A request either enters the queue immediately
//     or is rejected with 429 + Retry-After — the queue bound is the
//     admission limit, so overload sheds load instead of growing memory.
//     The dispatcher coalesces queued requests into a batch, flushing on
//     max-batch-size or max-delay (whichever comes first), runs the batch
//     through one core.Aligner.AlignStream session, and fans the in-order
//     results back out to the waiting requests. Per-request overhead
//     (pool spin-up, per-segment table streaming, cache residency)
//     amortizes across the whole batch. With CoalesceWindow zero the
//     layer degrades to per-request serving on the pooled AlignRead fast
//     path, bounded by the same admission limit.
//
//   - Genome registry. Genomes are named at construction; each resolves
//     to a content-addressed GAXI v2 index cache (indexio.CachePath) that
//     is opened zero-copy (indexio.OpenMapped) on first use — microseconds
//     when the cache is fresh, a bounded-concurrency build+write+map when
//     indexio.Probe reports it missing or stale (the staleness reason is
//     logged, never silently swallowed). Resident genomes are held under
//     an LRU budget: acquiring a cold genome past the budget evicts the
//     least-recently-used idle genome and unmaps its cache. A genome is
//     never evicted while a batch is in flight against it (refcount).
//
//   - Deadlines and drain. Each request carries its http.Request context;
//     requests whose context is already done when the dispatcher assembles
//     a batch are dropped (counted, not aligned), and when every member of
//     a batch carries a deadline the batch's AlignStream context expires at
//     the latest of them, so an abandoned batch stops admitting windows
//     instead of running to completion. StartDrain makes handlers reject
//     new work with 503 while in-flight requests finish; Close then stops
//     the dispatchers and unmaps every resident genome.
//
// The package obeys the stage-contract analyzer's discipline (genaxvet):
// every data channel states its capacity and every goroutine is
// WaitGroup-tracked or context-bounded. Unlike the kernel packages it is
// not on the determinism list — coalescing is inherently timer-driven —
// but the *results* it serves are byte-identical to offline AlignBatch,
// which `genax-bench -compare-serve` gates by hash.
package serve

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"genax/internal/core"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxBatch is the coalescing flush threshold: a batch is
	// dispatched as soon as this many requests are waiting.
	DefaultMaxBatch = 256
	// DefaultCoalesceWindow is the maximum time the first request of a
	// batch waits for company before the batch is flushed anyway.
	DefaultCoalesceWindow = 2 * time.Millisecond
	// DefaultMaxResident is the registry's LRU residency budget (genomes
	// mapped at once).
	DefaultMaxResident = 2
	// DefaultRetryAfter is the Retry-After hint attached to 429 responses.
	DefaultRetryAfter = time.Second
	// DefaultMaxReadBytes bounds the request body (one read's bases).
	DefaultMaxReadBytes = 1 << 20
)

// GenomeConfig names one reference genome the server can align against.
type GenomeConfig struct {
	// Name is the genome's URL-visible identifier (/align/<name>).
	Name string
	// Fasta is the reference FASTA path. The index cache is content-
	// addressed next to it (or under Config.CacheDir) exactly like
	// `genax index -out auto`, so a cache written by the CLI is found and
	// mapped by the server, and vice versa.
	Fasta string
	// Preload marks the genome for warm loading by Preload, so the first
	// request pays neither the build nor the map.
	Preload bool
}

// Config parametrizes a Server.
type Config struct {
	// Genomes is the served genome set; requests naming anything else get
	// 404. Names must be unique and non-empty.
	Genomes []GenomeConfig
	// Core is the aligner configuration template (geometry, engine, lane
	// budget, MinScore). Index, Residency and StreamWindow are owned by
	// the serve layer and overwritten per genome.
	Core core.Config
	// CacheDir overrides where index caches live ("" = next to each
	// FASTA).
	CacheDir string
	// MaxBatch caps a coalesced batch (0 = DefaultMaxBatch).
	MaxBatch int
	// CoalesceWindow is the flush delay bound: the first queued request
	// waits at most this long before its batch is dispatched, full or
	// not. Zero disables coalescing entirely — every request runs alone
	// on the pooled AlignRead fast path (the -compare-serve baseline).
	CoalesceWindow time.Duration
	// PerRequestSession, with CoalesceWindow zero, serves each request
	// through its own one-read AlignStream session instead of the pooled
	// AlignRead fast path. This is the "pipeline per request" architecture
	// the coalescing layer replaces — every request pays pool spin-up and
	// the per-segment streaming sweep alone — and exists so `genax-bench
	// -compare-serve` can measure exactly what coalescing amortizes.
	// Ignored when coalescing is on.
	PerRequestSession bool
	// QueueLimit bounds requests admitted per genome — queued requests in
	// coalescing mode, in-flight requests in per-request mode. Admission
	// beyond it is rejected with 429 + Retry-After (0 = 4*MaxBatch).
	QueueLimit int
	// MaxResident bounds genomes resident (mapped, aligner built) at
	// once; the registry evicts least-recently-used idle genomes beyond
	// it (0 = DefaultMaxResident). A genome with a batch in flight is
	// never evicted, so a burst touching more than MaxResident genomes
	// can transiently overshoot the budget rather than deadlock.
	MaxResident int
	// LoadConcurrency bounds concurrent index build/load work on registry
	// misses, so a cold burst across many genomes cannot run the machine
	// out of memory building every index at once (0 = 1).
	LoadConcurrency int
	// Shards partitions caches written on rebuild into this many shard
	// groups (0 = one group); see indexio.WriteFileShards.
	Shards int
	// RetryAfter is the hint attached to 429 responses (0 =
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// MaxReadBytes bounds the request body (0 = DefaultMaxReadBytes).
	MaxReadBytes int
	// Logf receives operational log lines (registry loads with staleness
	// reasons, evictions, drain transitions). Nil means log.Printf.
	Logf func(format string, args ...any)
}

// withDefaults resolves zero fields; keeps Config itself comparable to
// what the caller wrote.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4 * c.MaxBatch
	}
	if c.MaxResident <= 0 {
		c.MaxResident = DefaultMaxResident
	}
	if c.LoadConcurrency <= 0 {
		c.LoadConcurrency = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxReadBytes <= 0 {
		c.MaxReadBytes = DefaultMaxReadBytes
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server is a multi-genome alignment service. Construct with New, mount
// Handler on an http.Server, and shut down with StartDrain (stop admitting)
// followed by Close (stop dispatchers, unmap genomes) once in-flight
// requests have finished — http.Server.Shutdown provides exactly that
// barrier.
type Server struct {
	cfg      Config
	logf     func(string, ...any)
	reg      *registry
	batchers map[string]*batcher
	mux      *http.ServeMux

	base     context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	draining atomic.Bool
	closed   atomic.Bool
}

// New validates cfg, builds the genome registry and one coalescing
// dispatcher per genome, and returns a Server ready to mount. No genome is
// loaded yet; call Preload for warm starts or let the first request pay
// the (bounded-concurrency) load.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Genomes) == 0 {
		return nil, fmt.Errorf("serve: no genomes configured")
	}
	seen := make(map[string]bool, len(cfg.Genomes))
	for _, g := range cfg.Genomes {
		if g.Name == "" {
			return nil, fmt.Errorf("serve: genome with empty name (fasta %q)", g.Fasta)
		}
		if g.Fasta == "" {
			return nil, fmt.Errorf("serve: genome %q has no reference FASTA", g.Name)
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("serve: duplicate genome name %q", g.Name)
		}
		seen[g.Name] = true
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		logf:     cfg.Logf,
		reg:      newRegistry(cfg),
		batchers: make(map[string]*batcher, len(cfg.Genomes)),
		base:     base,
		cancel:   cancel,
	}
	for _, g := range cfg.Genomes {
		b := newBatcher(s, g.Name)
		s.batchers[g.Name] = b
		if cfg.CoalesceWindow > 0 {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				b.run(base)
			}()
		}
	}
	s.mux = s.buildMux()
	return s, nil
}

// Handler returns the HTTP surface: POST /align/{genome}, GET /statsz,
// GET /healthz.
func (s *Server) Handler() http.Handler { return s.mux }

// Preload warm-loads every genome marked GenomeConfig.Preload (all of
// them when none is marked and all is true), respecting the registry's
// load-concurrency bound sequentially. Loading more genomes than
// MaxResident is not an error — the LRU keeps the last ones resident.
func (s *Server) Preload(ctx context.Context, all bool) error {
	for _, g := range s.cfg.Genomes {
		if !g.Preload && !all {
			continue
		}
		e, err := s.reg.acquire(ctx, g.Name)
		if err != nil {
			return fmt.Errorf("serve: preload %q: %w", g.Name, err)
		}
		s.reg.release(e)
	}
	return nil
}

// StartDrain flips the server into drain mode: every subsequent request is
// rejected with 503 while requests already admitted keep running. Safe to
// call more than once.
func (s *Server) StartDrain() {
	if !s.draining.Swap(true) {
		s.logf("serve: draining (new requests rejected with 503)")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the dispatchers and unmaps every resident genome. Callers
// must first ensure no requests are in flight — StartDrain followed by
// http.Server.Shutdown gives that guarantee, because every queued request
// has a handler goroutine waiting on it and Shutdown returns only after
// all handlers do. Idempotent.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.cancel()
	s.wg.Wait()
	s.reg.closeAll()
}
