package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
)

// result is one request's outcome, fanned back from a batch flush.
type result struct {
	rr  core.ReadResult
	err error
}

// pending is one admitted request waiting in a genome's intake queue. The
// channel has capacity 1 so the dispatcher's delivery never blocks even if
// the handler has already abandoned the wait (deadline fired between
// admission and flush).
type pending struct {
	ctx  context.Context
	read dna.Seq
	res  chan result
}

// batcher is one genome's admission layer: a bounded intake queue, a
// dispatcher goroutine that coalesces queued requests into AlignStream
// batches (flush on MaxBatch or CoalesceWindow, whichever first), and the
// per-request fallback used when coalescing is disabled. The queue bound
// doubles as the admission limit — a full queue is a 429, never growth.
type batcher struct {
	srv  *Server
	name string

	// in is the intake queue (capacity QueueLimit). Handlers enqueue with
	// a non-blocking send; the dispatcher is the only receiver.
	in chan pending
	// slots bounds in-flight requests in per-request mode (coalescing
	// off), mirroring the queue bound so both modes shed at the same
	// admission limit.
	slots chan struct{}

	// Serve-layer counters, exported by /statsz.
	admitted  atomic.Int64 // requests admitted past the queue bound
	rejected  atomic.Int64 // requests shed with 429
	expired   atomic.Int64 // admitted requests dropped unaligned (context done)
	completed atomic.Int64 // requests answered with an alignment result
	batches   atomic.Int64 // coalesced flushes dispatched
	batched   atomic.Int64 // reads aligned via coalesced flushes
	maxBatch  atomic.Int64 // largest flush so far
	depth     atomic.Int64 // current queue depth (admitted, not yet collected)

	// pstats accumulates pipeline.Stats across flushes (and per-request
	// calls contribute nothing — AlignRead's fused lane keeps its own
	// counters out of the hot path by design).
	mu     sync.Mutex
	pstats core.Stats
}

func newBatcher(s *Server, name string) *batcher {
	return &batcher{
		srv:   s,
		name:  name,
		in:    make(chan pending, s.cfg.QueueLimit),
		slots: make(chan struct{}, s.cfg.QueueLimit),
	}
}

// enqueue admits one request into the coalescing queue, or reports false
// when the queue is at the admission limit (the handler answers 429).
func (b *batcher) enqueue(p pending) bool {
	select {
	case b.in <- p:
		b.admitted.Add(1)
		b.depth.Add(1)
		return true
	default:
		b.rejected.Add(1)
		return false
	}
}

// run is the dispatcher loop: wait for a first request, coalesce, flush,
// repeat. Bounded by the server's base context; Close cancels it after
// http.Server.Shutdown has guaranteed no handler is still waiting.
func (b *batcher) run(ctx context.Context) {
	for {
		select {
		case p := <-b.in:
			b.depth.Add(-1)
			b.flush(ctx, b.collect(ctx, p))
		case <-ctx.Done():
			return
		}
	}
}

// collect assembles one batch: the first request waits at most
// CoalesceWindow for company, and the batch closes early at MaxBatch.
func (b *batcher) collect(ctx context.Context, first pending) []pending {
	batch := make([]pending, 1, b.srv.cfg.MaxBatch)
	batch[0] = first
	timer := time.NewTimer(b.srv.cfg.CoalesceWindow)
	defer timer.Stop()
	for len(batch) < b.srv.cfg.MaxBatch {
		select {
		case p := <-b.in:
			b.depth.Add(-1)
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-ctx.Done():
			return batch
		}
	}
	return batch
}

// flush runs one coalesced batch through a fresh AlignStream session and
// fans the in-order results back to the waiting requests. Requests whose
// context is already done are dropped before alignment (their slot in the
// batch would be wasted work nobody collects). When every live request
// carries a deadline the session's context expires at the latest of them,
// so a batch all of whose clients have given up stops admitting windows
// instead of running to completion.
func (b *batcher) flush(ctx context.Context, batch []pending) {
	live := make([]pending, 0, len(batch))
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			b.expired.Add(1)
			p.res <- result{err: fmt.Errorf("request abandoned before dispatch: %w", err)}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	e, err := b.srv.reg.acquire(ctx, b.name)
	if err != nil {
		for _, p := range live {
			p.res <- result{err: err}
		}
		return
	}
	defer b.srv.reg.release(e)

	bctx := ctx
	if dl, ok := latestDeadline(live); ok {
		var cancel context.CancelFunc
		bctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}

	in := make(chan dna.Seq, len(live))
	for _, p := range live {
		in <- p.read
	}
	close(in)
	out, stats := e.aligner.AlignStream(bctx, in)
	i := 0
	for rr := range out {
		live[i].res <- result{rr: rr}
		i++
	}
	b.completed.Add(int64(i))
	// A cancelled session closes out short; tell the stragglers why.
	if i < len(live) {
		err := bctx.Err()
		if err == nil {
			err = context.Canceled
		}
		for ; i < len(live); i++ {
			b.expired.Add(1)
			live[i].res <- result{err: fmt.Errorf("batch cancelled: %w", err)}
		}
	}

	b.batches.Add(1)
	b.batched.Add(int64(len(live)))
	for {
		cur := b.maxBatch.Load()
		if int64(len(live)) <= cur || b.maxBatch.CompareAndSwap(cur, int64(len(live))) {
			break
		}
	}
	b.mu.Lock()
	b.pstats.Merge(*stats)
	b.mu.Unlock()
}

// latestDeadline returns the latest context deadline across live requests,
// or ok=false when any request has none (then the batch inherits the
// server context: no artificial bound).
func latestDeadline(live []pending) (time.Time, bool) {
	var latest time.Time
	for _, p := range live {
		dl, ok := p.ctx.Deadline()
		if !ok {
			return time.Time{}, false
		}
		if dl.After(latest) {
			latest = dl
		}
	}
	return latest, true
}

// alignOne is the per-request path (coalescing disabled): acquire the
// genome, run the pooled single-read fast lane, release. The slots channel
// caps concurrency at the same admission limit the queue would.
func (b *batcher) alignOne(ctx context.Context, read dna.Seq) (core.ReadResult, error) {
	select {
	case b.slots <- struct{}{}:
		defer func() { <-b.slots }()
		b.admitted.Add(1)
	default:
		b.rejected.Add(1)
		return core.ReadResult{}, errOverloaded
	}
	e, err := b.srv.reg.acquire(ctx, b.name)
	if err != nil {
		return core.ReadResult{}, err
	}
	defer b.srv.reg.release(e)
	res, ok := e.aligner.AlignRead(read)
	b.completed.Add(1)
	return core.ReadResult{Result: res, Aligned: ok}, nil
}

// alignSession is the uncoalesced baseline path (Config.PerRequestSession):
// every request spins up its own one-read AlignStream session, paying pool
// construction, the per-segment streaming sweep, and teardown alone. It
// exists so -compare-serve can measure exactly the overhead coalescing
// amortizes; production per-request serving uses alignOne instead.
func (b *batcher) alignSession(ctx context.Context, read dna.Seq) (core.ReadResult, error) {
	select {
	case b.slots <- struct{}{}:
		defer func() { <-b.slots }()
		b.admitted.Add(1)
	default:
		b.rejected.Add(1)
		return core.ReadResult{}, errOverloaded
	}
	e, err := b.srv.reg.acquire(ctx, b.name)
	if err != nil {
		return core.ReadResult{}, err
	}
	defer b.srv.reg.release(e)
	in := make(chan dna.Seq, 1)
	in <- read
	close(in)
	out, stats := e.aligner.AlignStream(ctx, in)
	var rr core.ReadResult
	got := false
	for r := range out {
		rr, got = r, true
	}
	b.mu.Lock()
	b.pstats.Merge(*stats)
	b.mu.Unlock()
	if !got {
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		b.expired.Add(1)
		return core.ReadResult{}, fmt.Errorf("session cancelled: %w", err)
	}
	b.completed.Add(1)
	return rr, nil
}

// errOverloaded marks admission-limit rejections; the HTTP layer maps it
// to 429 + Retry-After.
var errOverloaded = fmt.Errorf("serve: admission queue full")
