package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// logCapture collects registry log lines for assertion.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

func (lc *logCapture) contains(sub string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// TestRegistryRebuildThenCacheHit: the first load of a genome finds no
// cache (Probe's reason is logged), rebuilds and writes it; a second
// registry over the same cache dir maps it without rebuilding.
func TestRegistryRebuildThenCacheHit(t *testing.T) {
	wl := testWorkload(t, 60)
	lc := &logCapture{}
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond, Logf: lc.logf}, wl)

	e, err := s.reg.acquire(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	if e.aligner == nil || e.mapped == nil {
		t.Fatal("ready entry without aligner/mapped")
	}
	s.reg.release(e)
	if got := s.reg.rebuilds.Load(); got != 1 {
		t.Fatalf("rebuilds=%d, want 1 (cold cache dir)", got)
	}
	if !lc.contains("no cache file") {
		t.Fatalf("Probe staleness reason never logged; log: %v", lc.lines)
	}
	cacheDir := s.cfg.CacheDir
	fasta := s.cfg.Genomes[0].Fasta
	s.Close()

	// Second server, same dir: the content-addressed cache must be found
	// fresh and mapped, not rebuilt.
	lc2 := &logCapture{}
	s2, err := New(Config{
		Genomes:        []GenomeConfig{{Name: "g0", Fasta: fasta}},
		Core:           testCore(),
		CacheDir:       cacheDir,
		CoalesceWindow: time.Millisecond,
		Logf:           lc2.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2, err := s2.reg.acquire(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	s2.reg.release(e2)
	if got := s2.reg.rebuilds.Load(); got != 0 {
		t.Fatalf("rebuilds=%d on a warm cache dir, want 0; log: %v", got, lc2.lines)
	}
}

// TestRegistryCorruptCacheRebuilt: a cache file that fails Probe is
// rebuilt, and the staleness reason (here a checksum mismatch) appears in
// the registry's load-miss log rather than being silently swallowed.
func TestRegistryCorruptCacheRebuilt(t *testing.T) {
	wl := testWorkload(t, 69)
	lc := &logCapture{}
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond, Logf: lc.logf}, wl)
	e, err := s.reg.acquire(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	s.reg.release(e)
	cacheDir, fasta := s.cfg.CacheDir, s.cfg.Genomes[0].Fasta
	s.Close()

	// Flip one byte mid-file: the CRC footer no longer matches.
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.gaxi"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache files %v (err %v), want exactly one", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x5a
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	lc2 := &logCapture{}
	s2, err := New(Config{
		Genomes:        []GenomeConfig{{Name: "g0", Fasta: fasta}},
		Core:           testCore(),
		CacheDir:       cacheDir,
		CoalesceWindow: time.Millisecond,
		Logf:           lc2.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2, err := s2.reg.acquire(context.Background(), "g0")
	if err != nil {
		t.Fatalf("acquire over corrupt cache: %v", err)
	}
	s2.reg.release(e2)
	if got := s2.reg.rebuilds.Load(); got != 1 {
		t.Fatalf("rebuilds=%d over a corrupt cache, want 1", got)
	}
	if !lc2.contains("checksum mismatch") {
		t.Fatalf("staleness reason never logged; log: %v", lc2.lines)
	}
}

func TestRegistryUnknownGenome(t *testing.T) {
	wl := testWorkload(t, 61)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)
	_, err := s.reg.acquire(context.Background(), "nope")
	if !errors.Is(err, ErrUnknownGenome) {
		t.Fatalf("err=%v, want ErrUnknownGenome", err)
	}
}

// TestRegistryLRUEviction: with a one-genome budget, touching a second
// genome evicts the idle first one; touching the first again reloads it.
func TestRegistryLRUEviction(t *testing.T) {
	s := newTestServer(t, Config{
		CoalesceWindow: time.Millisecond,
		MaxResident:    1,
	}, testWorkload(t, 62), testWorkload(t, 63))

	ctx := context.Background()
	e0, err := s.reg.acquire(ctx, "g0")
	if err != nil {
		t.Fatal(err)
	}
	s.reg.release(e0)
	e1, err := s.reg.acquire(ctx, "g1")
	if err != nil {
		t.Fatal(err)
	}
	s.reg.release(e1)

	if got := s.reg.evictions.Load(); got != 1 {
		t.Fatalf("evictions=%d after exceeding budget, want 1", got)
	}
	s.reg.mu.Lock()
	st0, st1 := s.reg.entries["g0"].state, s.reg.entries["g1"].state
	m0 := s.reg.entries["g0"].mapped
	s.reg.mu.Unlock()
	if st0 != entryCold || m0 != nil {
		t.Fatalf("g0 not evicted to cold (state %d, mapped %v)", st0, m0 != nil)
	}
	if st1 != entryReady {
		t.Fatalf("g1 state %d, want ready", st1)
	}

	// Reload after eviction must work (and count a fresh load, not a
	// rebuild — the cache file survived the unmap).
	e0, err = s.reg.acquire(ctx, "g0")
	if err != nil {
		t.Fatalf("reacquire after eviction: %v", err)
	}
	s.reg.release(e0)
	if got := s.reg.rebuilds.Load(); got != 2 {
		t.Fatalf("rebuilds=%d, want 2 (one per distinct genome, none on reload)", got)
	}
}

// TestRegistryNoEvictionWhileInUse: an entry with a positive refcount is
// pinned; the budget overshoots (counted) instead of unmapping tables a
// batch is reading.
func TestRegistryNoEvictionWhileInUse(t *testing.T) {
	lc := &logCapture{}
	s := newTestServer(t, Config{
		CoalesceWindow: time.Millisecond,
		MaxResident:    1,
		Logf:           lc.logf,
	}, testWorkload(t, 64), testWorkload(t, 65))

	ctx := context.Background()
	e0, err := s.reg.acquire(ctx, "g0")
	if err != nil {
		t.Fatal(err)
	}
	// g0 stays acquired while g1 loads: nothing evictable.
	e1, err := s.reg.acquire(ctx, "g1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.reg.evictions.Load(); got != 0 {
		t.Fatalf("evicted %d entries while in use", got)
	}
	if got := s.reg.overBudget.Load(); got == 0 {
		t.Fatal("budget overshoot never counted")
	}
	s.reg.mu.Lock()
	st0 := s.reg.entries["g0"].state
	s.reg.mu.Unlock()
	if st0 != entryReady {
		t.Fatalf("g0 state %d while referenced, want ready", st0)
	}
	s.reg.release(e0)
	s.reg.release(e1)
}

// TestRegistrySingleFlight: concurrent acquires of a cold genome share one
// load.
func TestRegistrySingleFlight(t *testing.T) {
	wl := testWorkload(t, 66)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := s.reg.acquire(context.Background(), "g0")
			errs[i] = err
			if err == nil {
				s.reg.release(e)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := s.reg.loads.Load(); got != 1 {
		t.Fatalf("loads=%d for %d concurrent acquires, want 1", got, n)
	}
	if got := s.reg.hits.Load(); got != n {
		t.Fatalf("hits=%d, want %d", got, n)
	}
}

// TestRegistryLoadFailure: a genome whose FASTA is missing fails the load,
// reports the error to every waiter, and stays retryable (cold).
func TestRegistryLoadFailure(t *testing.T) {
	wl := testWorkload(t, 67)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)
	// Register a second, broken genome by hand.
	s.reg.mu.Lock()
	s.reg.entries["broken"] = &entry{name: "broken", fasta: filepath.Join(s.cfg.CacheDir, "missing.fasta")}
	s.reg.mu.Unlock()

	_, err := s.reg.acquire(context.Background(), "broken")
	if err == nil {
		t.Fatal("acquire of a genome with a missing FASTA succeeded")
	}
	s.reg.mu.Lock()
	st := s.reg.entries["broken"].state
	s.reg.mu.Unlock()
	if st != entryCold {
		t.Fatalf("failed entry state %d, want cold (retryable)", st)
	}
	// The healthy genome is unaffected.
	e, err := s.reg.acquire(context.Background(), "g0")
	if err != nil {
		t.Fatal(err)
	}
	s.reg.release(e)
}

// TestRegistryAcquireCtxCancel: a caller that gives up while a load is in
// flight gets its context error; the load itself completes for the next
// caller.
func TestRegistryAcquireCtxCancel(t *testing.T) {
	wl := testWorkload(t, 68)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.reg.mu.Lock()
	e := s.reg.entries["g0"]
	e.state = entryLoading
	e.ready = make(chan struct{})
	s.reg.mu.Unlock()

	if _, err := s.reg.acquire(ctx, "g0"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	// Unwedge the synthetic loading state so Close doesn't find it.
	s.reg.finishLoad(e, nil, nil, errors.New("synthetic"))
}
