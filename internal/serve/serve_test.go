package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/sim"
)

// testWorkload returns a tiny genome + read set sized so the whole suite
// stays fast: k=8 dense tables are 256 KiB per segment, not the 64 MiB a
// paper-scale k=12 would cost.
func testWorkload(t *testing.T, seed int64) *sim.Workload {
	t.Helper()
	rp := sim.DefaultReadProfile()
	rp.Coverage = 2
	return sim.NewWorkload(seed, 20000, sim.DefaultVariantProfile(), rp)
}

func testCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.KmerLen = 8
	cfg.SegmentLen = 8192
	cfg.Overlap = 256
	return cfg
}

// writeFasta materializes ref as a FASTA file the registry can load.
func writeFasta(t *testing.T, path string, ref dna.Seq) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dna.WriteFasta(f, []dna.FastaRecord{{Name: "chr", Seq: ref}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// newTestServer builds a Server over freshly written FASTAs, one per
// workload, registered under g0, g1, ...
func newTestServer(t *testing.T, cfg Config, wls ...*sim.Workload) *Server {
	t.Helper()
	dir := t.TempDir()
	for i, wl := range wls {
		path := filepath.Join(dir, fmt.Sprintf("g%d.fasta", i))
		writeFasta(t, path, wl.Ref)
		cfg.Genomes = append(cfg.Genomes, GenomeConfig{Name: fmt.Sprintf("g%d", i), Fasta: path})
	}
	if cfg.Core.K == 0 {
		cfg.Core = testCore()
	}
	cfg.CacheDir = dir
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postRead(t *testing.T, client *http.Client, url string, read dna.Seq) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "text/plain", bytes.NewReader([]byte(read.String())))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// sameAsOffline checks one served response against the offline result for
// the same read.
func sameAsOffline(t *testing.T, i int, body []byte, want core.ReadResult) {
	t.Helper()
	var got AlignResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("read %d: bad response %q: %v", i, body, err)
	}
	if got.Aligned != want.Aligned {
		t.Fatalf("read %d: served aligned=%v, offline %v", i, got.Aligned, want.Aligned)
	}
	if !want.Aligned {
		return
	}
	if got.Pos != want.Result.RefPos || got.Score != want.Result.Score ||
		got.Cigar != want.Result.Cigar.String() || got.Reverse != want.Result.Reverse {
		t.Fatalf("read %d: served (%d,%d,%s,rev=%v), offline (%d,%d,%s,rev=%v)",
			i, got.Pos, got.Score, got.Cigar, got.Reverse,
			want.Result.RefPos, want.Result.Score, want.Result.Cigar.String(), want.Result.Reverse)
	}
}

// TestServeCoalescedMatchesOffline is the core identity claim: many
// concurrent single-read requests, coalesced into batches, produce results
// byte-identical to offline AlignBatch.
func TestServeCoalescedMatchesOffline(t *testing.T) {
	wl := testWorkload(t, 42)
	s := newTestServer(t, Config{
		MaxBatch:       32,
		CoalesceWindow: 2 * time.Millisecond,
		QueueLimit:     1024, // above the read count: this test is about identity, not shedding
	}, wl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	offline, err := core.New(wl.Ref, testCore())
	if err != nil {
		t.Fatal(err)
	}
	reads := make([]dna.Seq, len(wl.Reads))
	for i, r := range wl.Reads {
		reads[i] = r.Seq
	}
	want, _ := offline.AlignBatch(reads)

	var wg sync.WaitGroup
	bodies := make([][]byte, len(reads))
	codes := make([]int, len(reads))
	for i := range reads {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postRead(t, ts.Client(), ts.URL+"/align/g0", reads[i])
			codes[i], bodies[i] = resp.StatusCode, body
		}()
	}
	wg.Wait()
	for i := range reads {
		if codes[i] != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", i, codes[i], bodies[i])
		}
		sameAsOffline(t, i, bodies[i], want[i])
	}

	snap := s.Snapshot()
	if len(snap.Genomes) != 1 {
		t.Fatalf("snapshot has %d genomes, want 1", len(snap.Genomes))
	}
	g := snap.Genomes[0]
	if g.Admitted != int64(len(reads)) || g.Completed != int64(len(reads)) {
		t.Fatalf("admitted=%d completed=%d, want both %d", g.Admitted, g.Completed, len(reads))
	}
	if g.Batches == 0 || g.BatchedReads != int64(len(reads)) {
		t.Fatalf("batches=%d batched=%d, want >0 and %d", g.Batches, g.BatchedReads, len(reads))
	}
	if g.MaxBatch < 2 {
		t.Fatalf("max batch %d: concurrent requests never coalesced", g.MaxBatch)
	}
	if g.Pipeline.Extensions == 0 {
		t.Fatal("pipeline stats never accumulated across flushes")
	}
}

// TestServePerRequestMatchesOffline covers the coalesce-window=0 fallback:
// the pooled AlignRead path must serve the same results.
func TestServePerRequestMatchesOffline(t *testing.T) {
	wl := testWorkload(t, 43)
	s := newTestServer(t, Config{CoalesceWindow: 0}, wl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	offline, err := core.New(wl.Ref, testCore())
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	if n > len(wl.Reads) {
		n = len(wl.Reads)
	}
	for i := 0; i < n; i++ {
		resp, body := postRead(t, ts.Client(), ts.URL+"/align/g0", wl.Reads[i].Seq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", i, resp.StatusCode, body)
		}
		res, ok := offline.AlignRead(wl.Reads[i].Seq)
		sameAsOffline(t, i, body, core.ReadResult{Result: res, Aligned: ok})
	}
}

func TestServeUnknownGenome404(t *testing.T) {
	wl := testWorkload(t, 44)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRead(t, ts.Client(), ts.URL+"/align/nope", wl.Reads[0].Seq)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered genome: status %d (%s), want 404", resp.StatusCode, body)
	}
}

func TestServeBadBody400(t *testing.T) {
	wl := testWorkload(t, 45)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{"", "not a read!"} {
		resp, err := ts.Client().Post(ts.URL+"/align/g0", "text/plain", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServeOverloadSheds verifies the admission limit: with a tiny queue
// and a dispatcher deliberately stalled in its coalescing window, excess
// requests get 429 with a Retry-After hint instead of queuing unboundedly.
func TestServeOverloadSheds(t *testing.T) {
	wl := testWorkload(t, 46)
	s := newTestServer(t, Config{
		MaxBatch:       4,
		CoalesceWindow: 100 * time.Millisecond,
		QueueLimit:     2,
	}, wl)
	// Warm the genome so flushes are fast once the window closes.
	if err := s.Preload(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	var wg sync.WaitGroup
	codes := make([]int, n)
	retryAfter := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postRead(t, ts.Client(), ts.URL+"/align/g0", wl.Reads[0].Seq)
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()
	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Fatal("429 without Retry-After header")
			}
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if shed == 0 {
		t.Fatalf("queue limit 2 with %d concurrent requests shed nothing", n)
	}
	if ok == 0 {
		t.Fatal("every request was shed; admitted requests should still complete")
	}
	if got := s.Snapshot().Genomes[0].Rejected; got != int64(shed) {
		t.Fatalf("rejected counter %d, want %d", got, shed)
	}
}

// TestServeExpiredRequestDropped: a request whose context is already dead
// when the dispatcher assembles its batch is dropped unaligned and
// answered with the context error.
func TestServeExpiredRequestDropped(t *testing.T) {
	wl := testWorkload(t, 47)
	s := newTestServer(t, Config{
		MaxBatch:       8,
		CoalesceWindow: 50 * time.Millisecond,
	}, wl)
	if err := s.Preload(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	b := s.batchers["g0"]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := pending{ctx: ctx, read: wl.Reads[0].Seq, res: make(chan result, 1)}
	live := pending{ctx: context.Background(), read: wl.Reads[1].Seq, res: make(chan result, 1)}
	if !b.enqueue(dead) || !b.enqueue(live) {
		t.Fatal("enqueue refused with an empty queue")
	}
	select {
	case r := <-dead.res:
		if r.err == nil {
			t.Fatal("expired request was aligned anyway")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired request never answered")
	}
	select {
	case r := <-live.res:
		if r.err != nil {
			t.Fatalf("live request in the same batch failed: %v", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live request never answered")
	}
	if got := b.expired.Load(); got != 1 {
		t.Fatalf("expired counter %d, want 1", got)
	}
}

// TestServeDrain: after StartDrain new requests get 503 and healthz flips,
// and Close after drain leaves no dispatcher running (Close would hang on
// a leaked one).
func TestServeDrain(t *testing.T) {
	wl := testWorkload(t, 48)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	s.StartDrain()
	resp, body := postRead(t, ts.Client(), ts.URL+"/align/g0", wl.Reads[0].Seq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("align while draining: status %d (%s), want 503", resp.StatusCode, body)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	s.Close() // must return promptly; t.Cleanup's second Close is a no-op
}

func TestServeStatszEndpoint(t *testing.T) {
	wl := testWorkload(t, 49)
	s := newTestServer(t, Config{CoalesceWindow: time.Millisecond}, wl)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRead(t, ts.Client(), ts.URL+"/align/g0", wl.Reads[0].Seq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align: %d (%s)", resp.StatusCode, body)
	}
	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("statsz is not valid JSON: %v\n%s", err, raw)
	}
	if len(snap.Genomes) != 1 || snap.Genomes[0].Name != "g0" {
		t.Fatalf("statsz genomes: %+v", snap.Genomes)
	}
	if snap.Registry.Loads == 0 {
		t.Fatal("statsz registry never counted the load")
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty genome set accepted")
	}
	if _, err := New(Config{Genomes: []GenomeConfig{{Name: "a", Fasta: "x"}, {Name: "a", Fasta: "y"}}}); err == nil {
		t.Fatal("duplicate genome names accepted")
	}
	if _, err := New(Config{Genomes: []GenomeConfig{{Name: "", Fasta: "x"}}}); err == nil {
		t.Fatal("empty genome name accepted")
	}
	if _, err := New(Config{Genomes: []GenomeConfig{{Name: "a"}}}); err == nil {
		t.Fatal("genome without FASTA accepted")
	}
}
