package serve

import (
	"sort"

	"genax/internal/core"
)

// GenomeStats is one genome's slice of the /statsz snapshot: registry
// residency, admission counters, and the pipeline work counters
// accumulated across its coalesced flushes.
type GenomeStats struct {
	Name       string `json:"name"`
	State      string `json:"state"` // "cold", "loading", or "ready"
	Refcnt     int    `json:"refcnt"`
	CacheBytes int    `json:"cache_bytes"`

	Admitted     int64 `json:"admitted"`
	Rejected     int64 `json:"rejected"`
	Expired      int64 `json:"expired"`
	Completed    int64 `json:"completed"`
	QueueDepth   int64 `json:"queue_depth"`
	Batches      int64 `json:"batches"`
	BatchedReads int64 `json:"batched_reads"`
	MaxBatch     int64 `json:"max_batch"`

	Pipeline core.Stats `json:"pipeline"`
}

// RegistryStats aggregates the registry's counters.
type RegistryStats struct {
	Hits       int64 `json:"hits"`
	Loads      int64 `json:"loads"`
	Rebuilds   int64 `json:"rebuilds"`
	Evictions  int64 `json:"evictions"`
	OverBudget int64 `json:"over_budget"`
}

// Snapshot is the /statsz payload.
type Snapshot struct {
	Draining         bool          `json:"draining"`
	CoalesceWindowUS int64         `json:"coalesce_window_us"`
	MaxBatchLimit    int           `json:"max_batch_limit"`
	QueueLimit       int           `json:"queue_limit"`
	MaxResident      int           `json:"max_resident"`
	Registry         RegistryStats `json:"registry"`
	Genomes          []GenomeStats `json:"genomes"`
}

// Snapshot captures the server's counters at this instant: per-genome
// admission/coalescing tallies and accumulated pipeline stats, plus the
// registry's load/eviction history. Safe to call concurrently with
// serving.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		Draining:         s.draining.Load(),
		CoalesceWindowUS: s.cfg.CoalesceWindow.Microseconds(),
		MaxBatchLimit:    s.cfg.MaxBatch,
		QueueLimit:       s.cfg.QueueLimit,
		MaxResident:      s.cfg.MaxResident,
		Registry: RegistryStats{
			Hits:       s.reg.hits.Load(),
			Loads:      s.reg.loads.Load(),
			Rebuilds:   s.reg.rebuilds.Load(),
			Evictions:  s.reg.evictions.Load(),
			OverBudget: s.reg.overBudget.Load(),
		},
	}
	for name, b := range s.batchers {
		gs := GenomeStats{
			Name:         name,
			Admitted:     b.admitted.Load(),
			Rejected:     b.rejected.Load(),
			Expired:      b.expired.Load(),
			Completed:    b.completed.Load(),
			QueueDepth:   b.depth.Load(),
			Batches:      b.batches.Load(),
			BatchedReads: b.batched.Load(),
			MaxBatch:     b.maxBatch.Load(),
		}
		b.mu.Lock()
		gs.Pipeline = b.pstats
		b.mu.Unlock()
		s.reg.mu.Lock()
		if e := s.reg.entries[name]; e != nil {
			switch e.state {
			case entryReady:
				gs.State = "ready"
			case entryLoading:
				gs.State = "loading"
			default:
				gs.State = "cold"
			}
			gs.Refcnt = e.refcnt
			gs.CacheBytes = e.bytes
		}
		s.reg.mu.Unlock()
		snap.Genomes = append(snap.Genomes, gs)
	}
	sort.Slice(snap.Genomes, func(i, j int) bool { return snap.Genomes[i].Name < snap.Genomes[j].Name })
	return snap
}
