package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"genax/internal/core"
	"genax/internal/dna"
	"genax/internal/indexio"
	"genax/internal/seed"
)

// ErrUnknownGenome reports a request naming a genome the server was not
// configured with; the HTTP layer maps it to 404.
var ErrUnknownGenome = errors.New("serve: unknown genome")

// entry states. An entry starts cold, moves to loading while a build/map is
// in flight, and to ready once an aligner is bound. A failed load or an
// eviction returns it to cold; the next acquire retries.
const (
	entryCold = iota
	entryLoading
	entryReady
)

// entry is one genome's registry slot. All fields except name/fasta are
// guarded by registry.mu.
type entry struct {
	name  string
	fasta string

	state   int
	ready   chan struct{} // closed when the in-flight load finishes (either way)
	loadErr error         // outcome of the last finished load while state is cold

	aligner *core.Aligner
	mapped  *indexio.Mapped
	bytes   int   // mapped cache size, for the statsz snapshot
	refcnt  int   // in-flight batches/requests pinning this entry
	lastUse int64 // LRU tick from registry.tick
}

// registry resolves genome names to resident aligners over mmap-backed
// index caches, under an LRU residency budget. acquire/release bracket
// every use; an entry is never evicted (its cache never unmapped) while
// its refcount is non-zero.
type registry struct {
	core        core.Config // template; Index/Residency/StreamWindow overwritten per genome
	cacheDir    string
	shards      int
	maxResident int
	streamWin   int
	logf        func(string, ...any)

	mu      sync.Mutex
	entries map[string]*entry
	tick    int64 // LRU clock, incremented per acquire

	// loadSem bounds concurrent index build/load work (LoadConcurrency).
	loadSem chan struct{}
	ctx     context.Context // bounds detached load goroutines
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// Counters for /statsz.
	hits       atomic.Int64 // acquires satisfied by a resident entry
	loads      atomic.Int64 // load attempts started
	rebuilds   atomic.Int64 // loads that had to rebuild the cache (Probe miss)
	evictions  atomic.Int64 // entries unmapped by the LRU
	overBudget atomic.Int64 // times residency exceeded the budget with nothing evictable
}

func newRegistry(cfg Config) *registry {
	ctx, cancel := context.WithCancel(context.Background())
	r := &registry{
		core:        cfg.Core,
		cacheDir:    cfg.CacheDir,
		shards:      cfg.Shards,
		maxResident: cfg.MaxResident,
		streamWin:   cfg.MaxBatch,
		logf:        cfg.Logf,
		entries:     make(map[string]*entry, len(cfg.Genomes)),
		loadSem:     make(chan struct{}, cfg.LoadConcurrency),
		ctx:         ctx,
		cancel:      cancel,
	}
	for _, g := range cfg.Genomes {
		r.entries[g.Name] = &entry{name: g.Name, fasta: g.Fasta, state: entryCold}
	}
	return r
}

// acquire resolves name to a ready entry with its refcount incremented, or
// an error: ErrUnknownGenome for unregistered names, ctx.Err() if the
// caller gives up waiting for an in-flight load, or the load's own failure.
// Callers must pair every successful acquire with release.
func (r *registry) acquire(ctx context.Context, name string) (*entry, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownGenome, name)
	}
	tried := false
	for {
		switch e.state {
		case entryReady:
			e.refcnt++
			r.tick++
			e.lastUse = r.tick
			r.mu.Unlock()
			r.hits.Add(1)
			return e, nil
		case entryCold:
			// A failed load parks the entry back here with loadErr set. A
			// fresh acquirer retries once (transient failures stay
			// retryable); the acquirer whose own attempt just failed
			// surfaces the error instead of spinning retries forever.
			if tried && e.loadErr != nil {
				err := e.loadErr
				r.mu.Unlock()
				return nil, err
			}
			tried = true
			// First toucher starts the load. The load runs detached from
			// this request's context so one impatient client cannot strand
			// the other waiters mid-build; the registry context bounds it
			// instead.
			e.state = entryLoading
			e.ready = make(chan struct{})
			e.loadErr = nil
			r.mu.Unlock()
			r.loads.Add(1)
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.load(e)
			}()
			r.mu.Lock()
		case entryLoading:
			ch := e.ready
			r.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			r.mu.Lock()
			// The load finished: ready on success, cold with loadErr on
			// failure. A concurrent acquire may already have restarted a
			// failed load (state back to loading) — loop either way, but
			// surface the failure we waited on rather than retrying
			// forever ourselves.
			if e.state == entryCold && e.loadErr != nil {
				err := e.loadErr
				r.mu.Unlock()
				return nil, err
			}
		}
	}
}

// release undoes one acquire.
func (r *registry) release(e *entry) {
	r.mu.Lock()
	e.refcnt--
	if e.refcnt < 0 {
		e.refcnt = 0 // defensive; indicates a release without acquire
	}
	r.mu.Unlock()
}

// load performs the bounded-concurrency build/map for e and publishes the
// outcome. Runs on a registry-tracked goroutine.
func (r *registry) load(e *entry) {
	select {
	case r.loadSem <- struct{}{}:
		defer func() { <-r.loadSem }()
	case <-r.ctx.Done():
		r.finishLoad(e, nil, nil, r.ctx.Err())
		return
	}
	al, m, err := r.doLoad(e.name, e.fasta)
	r.finishLoad(e, al, m, err)
}

// finishLoad publishes a load outcome and wakes waiters. On success the
// entry becomes ready and the LRU enforces the residency budget; on
// failure it returns to cold with the error recorded for the waiters.
func (r *registry) finishLoad(e *entry, al *core.Aligner, m *indexio.Mapped, err error) {
	r.mu.Lock()
	if err != nil {
		e.state = entryCold
		e.loadErr = err
	} else {
		e.state = entryReady
		e.aligner = al
		e.mapped = m
		e.bytes = m.SizeBytes()
		r.tick++
		e.lastUse = r.tick
		r.evictLocked(e)
	}
	close(e.ready)
	r.mu.Unlock()
	if err != nil {
		r.logf("serve: genome %q: load failed: %v", e.name, err)
	}
}

// evictLocked unmaps least-recently-used idle entries until residency fits
// the budget. Entries with in-flight work (refcnt > 0), loads in progress,
// and the just-loaded protect entry (its waiters have not taken their
// references yet — evicting it would livelock load→evict→reload) are never
// touched; if nothing is evictable the budget is overshot (counted and
// logged) rather than deadlocking the acquirer.
func (r *registry) evictLocked(protect *entry) {
	for {
		resident := 0
		var victim *entry
		for _, e := range r.entries {
			if e.state != entryReady && e.state != entryLoading {
				continue
			}
			resident++
			if e == protect || e.state != entryReady || e.refcnt != 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if resident <= r.maxResident {
			return
		}
		if victim == nil {
			r.overBudget.Add(1)
			r.logf("serve: residency %d over budget %d with every resident genome in use; overshooting", resident, r.maxResident)
			return
		}
		r.evictEntryLocked(victim)
	}
}

// evictEntryLocked drops one idle ready entry back to cold and unmaps its
// cache. Safe only because refcnt == 0: nothing can be aligning against
// the mapped tables.
func (r *registry) evictEntryLocked(e *entry) {
	m := e.mapped
	e.state = entryCold
	e.aligner = nil
	e.mapped = nil
	e.bytes = 0
	e.loadErr = nil
	r.evictions.Add(1)
	r.logf("serve: genome %q evicted (LRU, budget %d)", e.name, r.maxResident)
	if m != nil {
		if err := m.Close(); err != nil {
			r.logf("serve: genome %q: unmap: %v", e.name, err)
		}
	}
}

// closeAll stops in-flight loads and unmaps every resident genome. The
// caller (Server.Close) guarantees no acquirers remain.
func (r *registry) closeAll() {
	r.cancel()
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.state == entryReady {
			e.refcnt = 0
			r.evictions.Add(-1) // shutdown unmap is not an LRU eviction
			r.evictEntryLocked(e)
		}
	}
}

// doLoad reads the reference, resolves the content-addressed cache path,
// probes it (rebuilding and rewriting on any staleness, with the reason
// logged), maps it zero-copy, validates the mapping against the reference
// in hand, and binds an aligner to the mapped tables.
func (r *registry) doLoad(name, fasta string) (*core.Aligner, *indexio.Mapped, error) {
	ref, err := readFastaRef(fasta)
	if err != nil {
		return nil, nil, fmt.Errorf("reference %s: %w", fasta, err)
	}
	cc := r.core
	dir := r.cacheDir
	if dir == "" {
		dir = filepath.Dir(fasta)
	}
	path, err := indexio.CachePath(dir, ref, cc.KmerLen, cc.SegmentLen, cc.Overlap)
	if err != nil {
		return nil, nil, err
	}
	if reason := indexio.Probe(path, ref, cc.KmerLen, cc.SegmentLen, cc.Overlap); reason != "" {
		r.logf("serve: genome %q: index cache miss at %s: %s; rebuilding", name, path, reason)
		r.rebuilds.Add(1)
		sx, err := seed.BuildSegmentedIndex(ref, cc.SegmentLen, cc.Overlap, cc.KmerLen)
		if err != nil {
			return nil, nil, fmt.Errorf("build index: %w", err)
		}
		group := indexio.GroupSizeForShards(sx.NumSegments(), r.shards)
		if err := indexio.WriteFileShards(path, sx, ref, group); err != nil {
			return nil, nil, fmt.Errorf("write index cache %s: %w", path, err)
		}
	}
	m, err := indexio.OpenMapped(path)
	if err != nil {
		return nil, nil, fmt.Errorf("map index cache %s: %w", path, err)
	}
	// The mapping is internally consistent (CRCs, bounds); pin it to the
	// reference and geometry in hand like the CLI's -mmap path does.
	if len(ref) != len(m.Ref()) || m.RefHash() != indexio.RefHash(ref) {
		_ = m.Close()
		return nil, nil, fmt.Errorf("index cache %s was built from a different reference", path)
	}
	if m.K() != cc.KmerLen || m.SegLen() != cc.SegmentLen || m.Overlap() != cc.Overlap {
		_ = m.Close()
		return nil, nil, fmt.Errorf("index cache %s geometry (k=%d seg=%d overlap=%d) does not match config (k=%d seg=%d overlap=%d)",
			path, m.K(), m.SegLen(), m.Overlap(), cc.KmerLen, cc.SegmentLen, cc.Overlap)
	}
	// Serve from the mapped reference (out-of-core: the FASTA copy is
	// dropped). StreamWindow tracks the batch bound so one coalesced
	// flush is at most one pipeline window.
	cc.Index = m.Index()
	cc.StreamWindow = r.streamWin
	al, err := core.New(m.Ref(), cc)
	if err != nil {
		_ = m.Close()
		return nil, nil, err
	}
	for _, w := range al.Warnings() {
		r.logf("serve: genome %q: %s", name, w)
	}
	return al, m, nil
}

// readFastaRef loads a reference FASTA exactly like the genax CLI
// (ambiguous bases resolved with the same fixed seed, contigs
// concatenated), so the content-addressed cache written by `genax index`
// and the one written here land at the same path.
func readFastaRef(path string) (dna.Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := dna.ReadFasta(f, dna.FastaOptions{ResolveN: rand.New(rand.NewSource(1))})
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no sequences in %s", path)
	}
	var ref dna.Seq
	for _, rec := range recs {
		ref = append(ref, rec.Seq...)
	}
	return ref, nil
}
