package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"genax/internal/core"
	"genax/internal/dna"
)

// AlignResponse is the JSON body answering POST /align/{genome}.
type AlignResponse struct {
	// Aligned reports whether the read mapped at or above MinScore.
	Aligned bool `json:"aligned"`
	// Pos is the 0-based reference position of the alignment start
	// (omitted when unaligned).
	Pos int `json:"pos,omitempty"`
	// Score is the affine-gap alignment score.
	Score int `json:"score,omitempty"`
	// Cigar is the edit trace, query-complete.
	Cigar string `json:"cigar,omitempty"`
	// Reverse reports a reverse-complement-strand alignment.
	Reverse bool `json:"reverse,omitempty"`
}

// buildMux wires the HTTP surface. Request bodies are raw base strings
// (ACGT…, whitespace tolerated) — one read per request is exactly the
// traffic shape the coalescing layer exists to amortize.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /align/{genome}", s.handleAlign)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleAlign(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("genome")
	if _, ok := s.batchers[name]; !ok {
		http.Error(w, fmt.Sprintf("unknown genome %q", name), http.StatusNotFound)
		return
	}
	if s.draining.Load() {
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxReadBytes)))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("read longer than %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	read, err := dna.ParseSeq(strings.TrimSpace(string(body)))
	if err != nil || len(read) == 0 {
		http.Error(w, "body must be a non-empty base string (ACGT...)", http.StatusBadRequest)
		return
	}
	b := s.batchers[name]

	var res result
	switch {
	case s.cfg.CoalesceWindow <= 0 && s.cfg.PerRequestSession:
		rr, err := b.alignSession(r.Context(), read)
		res = result{rr: rr, err: err}
	case s.cfg.CoalesceWindow <= 0:
		rr, err := b.alignOne(r.Context(), read)
		res = result{rr: rr, err: err}
	default:
		p := pending{ctx: r.Context(), read: read, res: make(chan result, 1)}
		if !b.enqueue(p) {
			s.reject(w)
			return
		}
		select {
		case res = <-p.res:
		case <-r.Context().Done():
			// The dispatcher still owns p and will deliver into the
			// buffered channel; nothing leaks. The client just stopped
			// caring.
			s.writeContextErr(w, r.Context().Err())
			return
		}
	}
	switch {
	case res.err == nil:
		writeAlignResponse(w, res.rr)
	case errors.Is(res.err, errOverloaded):
		s.reject(w)
	case errors.Is(res.err, ErrUnknownGenome):
		http.Error(w, res.err.Error(), http.StatusNotFound)
	case errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled):
		s.writeContextErr(w, res.err)
	default:
		http.Error(w, res.err.Error(), http.StatusInternalServerError)
	}
}

// reject sheds one request: 429 with the configured Retry-After hint, the
// admission layer's promise that overload costs the client a retry, not
// the server its memory.
func (s *Server) reject(w http.ResponseWriter) {
	secs := int(s.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
}

// writeContextErr maps a request context failure to the HTTP status the
// client can act on: 504 for its own deadline, 503 for a cancellation
// (client went away or server shut the batch down).
func (s *Server) writeContextErr(w http.ResponseWriter, err error) {
	code := http.StatusServiceUnavailable
	if errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusGatewayTimeout
	}
	http.Error(w, err.Error(), code)
}

func writeAlignResponse(w http.ResponseWriter, rr core.ReadResult) {
	resp := AlignResponse{Aligned: rr.Aligned}
	if rr.Aligned {
		resp.Pos = rr.Result.RefPos
		resp.Score = rr.Result.Score
		resp.Cigar = rr.Result.Cigar.String()
		resp.Reverse = rr.Result.Reverse
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}
