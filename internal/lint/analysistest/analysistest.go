// Package analysistest runs a genaxvet analyzer over golden testdata
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// testdata layout (testdata/src/<import/path>/*.go) and expectation
// syntax (`// want "regexp"`) transfer unchanged.
//
// A // want comment names one or more quoted regular expressions; every
// diagnostic reported on that comment's line must match one of them, and
// every expectation must be consumed by a diagnostic. A clean file — an
// annotated hot-path function with no violations, say — simply carries no
// want comments and fails the test if anything is reported.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"genax/internal/lint/analysis"
	"genax/internal/lint/load"
)

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// expectation is one parsed // want regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads each package from dir/src/<path>, applies the analyzer, and
// compares diagnostics against the // want expectations in the sources.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		runOne(t, dir, a, path)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	srcDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
	names, err := filepath.Glob(filepath.Join(srcDir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("%s: no testdata sources in %s (%v)", pkgPath, srcDir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	files, err := load.ParseFiles(fset, srcDir, names)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	// Resolve the testdata package's imports (standard library only)
	// through real export data.
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && p != "unsafe" {
				imports = append(imports, p)
			}
		}
	}
	exports, err := load.ExportData(".", imports...)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}
	imp := load.NewImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	pkg, err := load.CheckFiles(fset, imp, pkgPath, files)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	expects := parseExpectations(t, fset, pkg)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkgPath, a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, filepath.Base(pos.Filename), pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unused expectation at (file, line) whose regexp
// matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.used && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}

// parseExpectations extracts // want comments from the package sources.
func parseExpectations(t *testing.T, fset *token.FileSet, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if !strings.HasPrefix(c.Text, "//") || idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWant(c.Text[idx+len("want "):])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					out = append(out, &expectation{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// parseWant parses the sequence of quoted regexps after "want".
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		var lit string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			lit = s[1 : end+1]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no regexps")
	}
	return out, nil
}
