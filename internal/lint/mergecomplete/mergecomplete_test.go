package mergecomplete_test

import (
	"testing"

	"genax/internal/lint/analysistest"
	"genax/internal/lint/mergecomplete"
)

func TestMergeComplete(t *testing.T) {
	// The rule applies inside the declared kernel packages and nowhere
	// else: otherpkg holds the same dropped field with no expectations.
	analysistest.Run(t, analysistest.TestData(), mergecomplete.Analyzer,
		"genax/internal/pipeline", "otherpkg")
}
