// Package mergecomplete implements the genaxvet analyzer that keeps the
// kernel's counter-merge methods exhaustive.
//
// Work counters (pipeline.Stats, extend.Routing) are folded across lanes
// by Merge methods, and the merge is what makes the totals
// partition-independent. The failure mode is silent: PR 6 added the
// Routing histogram and had to remember to extend Stats.merge by hand — a
// forgotten field simply merges to zero, and no runtime test that uses one
// lane can notice. This analyzer closes the hole: for every struct in a
// kernel package with a method named Merge or merge taking one value of
// the struct's own type, each field must provably flow from the argument —
// read through a selector path rooted at the parameter — or be annotated
// //genax:nomerge with the reason it is excluded.
//
// Coverage is structural: leaf fields (after flattening same-package
// nested structs and arrays of structs) are covered when a selector path
// reaching them is read; reading, passing, or assigning an ancestor whole
// (t.Routing.Merge(s.Routing), or delegating the entire argument as in
// Merge calling merge) covers the whole subtree. Fields whose struct types
// live in other packages are treated as leaves — their own package's
// Merge, if any, is checked in its own pass.
package mergecomplete

import (
	"go/ast"
	"go/token"
	"go/types"

	"genax/internal/lint/analysis"
	"genax/internal/lint/determinism"
	"genax/internal/lint/ssautil"
)

// Directive marks a field intentionally excluded from its struct's Merge
// (per-window outcome tallies, identity fields). It must appear in the
// field's doc or trailing line comment.
const Directive = "//genax:nomerge"

// Packages are the import paths whose Merge methods are checked — the
// deterministic kernel set, where partition-independent totals are part of
// the correctness contract.
var Packages = determinism.Packages

// Analyzer proves Merge methods fold (or explicitly exclude) every field.
var Analyzer = &analysis.Analyzer{
	Name: "mergecomplete",
	Doc:  "require Merge methods in kernel packages to fold every field or mark it //genax:nomerge",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	path := trimTestSuffix(pass.Pkg.Path())
	if !Packages[path] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Merge" && fd.Name.Name != "merge" {
				continue
			}
			checkMerge(pass, fd)
		}
	}
	return nil, nil
}

func trimTestSuffix(s string) string {
	const suf = "_test"
	if len(s) > len(suf) && s[len(s)-len(suf):] == suf {
		return s[:len(s)-len(suf)]
	}
	return s
}

// checkMerge verifies one Merge/merge method's field coverage.
func checkMerge(pass *analysis.Pass, fd *ast.FuncDecl) {
	recvType := receiverStruct(pass, fd)
	if recvType == nil {
		return
	}
	arg := mergeArg(pass, fd, recvType)
	if arg == nil {
		return // not the canonical Merge(T) shape; nothing to prove
	}

	covered := coveredPaths(pass, fd.Body, arg)
	if covered == nil {
		return // argument consumed whole (delegation): all fields flow
	}
	leaves := flatten(pass, recvType, nil, nil)
	for _, leaf := range leaves {
		if pathCovered(covered, leaf.path) {
			continue
		}
		if leaf.nomerge {
			continue
		}
		pass.Reportf(leaf.pos, "field %s of %s is not folded by %s and not annotated %s: it would merge silently to zero",
			leaf.name, recvName(pass, fd), fd.Name.Name, Directive)
	}
}

// receiverStruct resolves the receiver's named struct type.
func receiverStruct(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// mergeArg returns the parameter object when the method takes exactly one
// parameter of the receiver's type (by value or pointer).
func mergeArg(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Named) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return nil
	}
	pt := pass.TypeOf(params.List[0].Type)
	if p, ok := pt.(*types.Pointer); ok {
		pt = p.Elem()
	}
	if !types.Identical(pt, recv) {
		return nil
	}
	return pass.TypesInfo.Defs[params.List[0].Names[0]]
}

// coveredPaths walks the body and records every selector path read from
// the argument. It returns nil when the bare argument is consumed whole
// (passed to a call, assigned, ranged) — full delegation.
func coveredPaths(pass *analysis.Pass, body *ast.BlockStmt, arg types.Object) map[string]bool {
	covered := make(map[string]bool)
	whole := false

	// parent chains: climb from each use of arg through selectors/indexes.
	parents := make(map[ast.Node]ast.Node)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		for _, c := range children(n) {
			parents[c] = n
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != arg {
			return true
		}
		path := ""
		var cur ast.Node = id
		for {
			p := parents[cur]
			climbed := false
			switch pn := p.(type) {
			case *ast.SelectorExpr:
				if pn.X == cur {
					if path != "" {
						path += "."
					}
					path += pn.Sel.Name
					cur, climbed = pn, true
				}
			case *ast.IndexExpr:
				if pn.X == cur {
					cur, climbed = pn, true // element read keeps the path
				}
			case *ast.ParenExpr:
				cur, climbed = pn, true
			case *ast.UnaryExpr:
				cur, climbed = pn, true
			}
			if !climbed {
				break
			}
		}
		if path == "" {
			whole = true
			return true
		}
		covered[path] = true
		return true
	})
	if whole {
		return nil
	}
	return covered
}

// children returns a node's direct AST children (used to build the parent
// map without a full typed visitor).
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		out = append(out, c)
		return false
	})
	return out
}

// leaf is one flattened field the merge must cover.
type leaf struct {
	name    string // dotted path for the diagnostic
	path    string // selector path (array indexes elided)
	pos     token.Pos
	nomerge bool
}

// flatten expands a named struct into its mergeable leaves, recursing into
// same-package structs and arrays of structs; prefix carries the selector
// path so far. An annotated struct-typed field is excluded whole.
func flatten(pass *analysis.Pass, named *types.Named, prefix []string, fields []leaf) []leaf {
	st := named.Underlying().(*types.Struct)
	spec := structSpec(pass, named)
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		path := append(append([]string{}, prefix...), fld.Name())
		nomerge := fieldNomerge(spec, fld.Name())
		pos := fld.Pos()
		ft := fld.Type()
		if arr, ok := ft.Underlying().(*types.Array); ok {
			ft = arr.Elem()
		}
		if sub, ok := ft.(*types.Named); ok {
			if _, isStruct := sub.Underlying().(*types.Struct); isStruct && sub.Obj().Pkg() == named.Obj().Pkg() && !nomerge {
				fields = flatten(pass, sub, path, fields)
				continue
			}
		}
		fields = append(fields, leaf{name: join(path), path: join(path), pos: pos, nomerge: nomerge})
	}
	return fields
}

func join(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}

// pathCovered reports whether the leaf path or any ancestor prefix was
// read from the argument.
func pathCovered(covered map[string]bool, path string) bool {
	for i := len(path); i > 0; i-- {
		if i == len(path) || path[i] == '.' {
			if covered[path[:i]] {
				return true
			}
		}
	}
	return false
}

// structSpec finds the *ast.StructType declaring the named type in the
// current package's files, for annotation lookup. Returns nil for types
// declared elsewhere.
func structSpec(pass *analysis.Pass, named *types.Named) *ast.StructType {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != named.Obj().Name() {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// fieldNomerge reports whether the field's declaration carries the
// //genax:nomerge directive (in its doc or trailing comment; a directive
// on a multi-name declaration covers all its names).
func fieldNomerge(st *ast.StructType, name string) bool {
	if st == nil {
		return false
	}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return ssautil.HasDirective(f.Doc, Directive) || ssautil.HasDirective(f.Comment, Directive)
			}
		}
	}
	return false
}

// recvName renders the receiver type name for diagnostics.
func recvName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if named := receiverStruct(pass, fd); named != nil {
		return named.Obj().Name()
	}
	return "receiver"
}
