// Package otherpkg holds the same dropped-field shape as the kernel
// testdata with no expectations: the analyzer is scoped to the declared
// kernel packages and must stay silent here.
package otherpkg

type counters struct {
	Hits   int64
	Misses int64
}

func (c *counters) Merge(o counters) {
	c.Hits += o.Hits
}
