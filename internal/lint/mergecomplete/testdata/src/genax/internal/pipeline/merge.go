// Package pipeline (testdata) is the golden matrix for the mergecomplete
// analyzer; the import path impersonates the real kernel package so the
// analyzer's scoping applies.
package pipeline

// Counters drops a field from its Merge: the silent-zero bug the
// analyzer exists for.
type Counters struct {
	Hits   int64
	Misses int64 // want `Misses`
}

func (c *Counters) Merge(o Counters) {
	c.Hits += o.Hits
}

// Complete folds every field.
type Complete struct {
	A, B int64
}

func (c *Complete) Merge(o Complete) {
	c.A += o.A
	c.B += o.B
}

// Excluded carries the directive on its per-window field.
type Excluded struct {
	Work int64
	// Window is a per-window tally folded elsewhere.
	//
	//genax:nomerge
	Window int64
}

func (e *Excluded) Merge(o Excluded) {
	e.Work += o.Work
}

// leg/outer exercise flattening through arrays of same-package structs:
// the loop folds Routed but forgets Dropped.
type leg struct {
	Routed  int64
	Dropped int64 // want `Legs\.Dropped`
}

type outer struct {
	Legs [4]leg
}

func (o *outer) Merge(v outer) {
	for i := range o.Legs {
		o.Legs[i].Routed += v.Legs[i].Routed
	}
}

// subtree shows whole-ancestor coverage: passing v.Inner to a call covers
// every leaf under Inner.
type inner struct {
	X, Y int64
}

func (n *inner) Merge(o inner) {
	n.X += o.X
	n.Y += o.Y
}

type subtree struct {
	Inner inner
	Z     int64
}

func (s *subtree) Merge(o subtree) {
	s.Inner.Merge(o.Inner)
	s.Z += o.Z
}

// delegator consumes the argument whole: full delegation, nothing to
// prove here (the delegate is checked on its own).
type delegator struct {
	N int64
}

func (d *delegator) merge(o delegator) {
	d.N += o.N
}

func (d *delegator) Merge(o delegator) { d.merge(o) }

// notMerge has the wrong shape (two parameters) and is not a fold.
type notMerge struct {
	N int64
}

func (m *notMerge) Merge(o notMerge, scale int64) {
	m.N += o.N * scale
}
