// regress.go pins the real fix in internal/pipeline/stats.go: Stats
// splits per-window outcome tallies (folded by emitWindow/emitStream)
// from lane-local work counters (folded by merge). The per-window fields
// carry //genax:nomerge; everything else must flow through merge.
package pipeline

type routing struct {
	Routed, Accepted, FellThrough int64
}

func (r *routing) Merge(o routing) {
	r.Routed += o.Routed
	r.Accepted += o.Accepted
	r.FellThrough += o.FellThrough
}

type stats struct {
	// Per-window outcome tallies, folded as each window completes —
	// never by merge.
	//
	//genax:nomerge
	Reads, Aligned, ExactReads int
	// Identity of the index, set once per run, not a sum.
	//
	//genax:nomerge
	Segments     int
	IndexLookups int64
	SeedsEmitted int64
	Routing      routing
}

func (t *stats) merge(s stats) {
	t.IndexLookups += s.IndexLookups
	t.SeedsEmitted += s.SeedsEmitted
	t.Routing.Merge(s.Routing)
}

func (t *stats) Merge(s stats) { t.merge(s) }
