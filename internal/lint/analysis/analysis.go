// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API. The build environment for this
// repository is hermetic (no module proxy), so the upstream module cannot
// be vendored; this package mirrors its core types — Analyzer, Pass,
// Diagnostic — closely enough that the analyzers in the sibling packages
// port to the upstream multichecker unchanged. The driver side
// (package loading, diagnostic printing) lives in internal/lint/load and
// cmd/genaxvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics, Doc in
// usage output; Run is invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored at a position in the analyzed
// package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an Analyzer's
// Run function. Report appends a diagnostic; analyzers must not retain the
// Pass after Run returns.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if not found. It mirrors
// the helper most analyzers define over pass.TypesInfo.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by identifier id, consulting both
// the Defs and Uses maps.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}
