package stagecontract_test

import (
	"testing"

	"genax/internal/lint/analysistest"
	"genax/internal/lint/stagecontract"
)

func TestStageContract(t *testing.T) {
	// The contract applies inside genax/internal/pipeline and
	// genax/internal/serve and nowhere else: otherpkg holds the same
	// shapes with no expectations.
	analysistest.Run(t, analysistest.TestData(), stagecontract.Analyzer,
		"genax/internal/pipeline", "genax/internal/serve", "otherpkg")
}
