// Package serve (testdata) is the golden matrix for the stagecontract
// analyzer over the serving layer; the import path impersonates the real
// serve package so the contract applies. The shapes mirror the admission
// path: a bounded intake queue of value-typed pending requests, signal
// slots, a WaitGroup-tracked dispatcher, and context-bounded registry
// build goroutines.
package serve

import (
	"context"
	"sync"
)

type pending struct {
	read string
	res  chan result
}

type result struct{ err error }

type batcher struct {
	in    chan pending
	slots chan struct{}
	wg    sync.WaitGroup
}

// newBatcher states every data channel's capacity: the admission bound is
// the queue limit, and slots is a struct{} semaphore (exempt only when
// unbuffered-for-broadcast; as a semaphore its capacity is stated).
func newBatcher(queueLimit int) *batcher {
	return &batcher{
		in:    make(chan pending, queueLimit),
		slots: make(chan struct{}, queueLimit),
	}
}

// unboundedIntake drops the capacity: admission would be unbounded and
// the 429 backpressure path unreachable.
func unboundedIntake() chan pending {
	return make(chan pending) // want `unbounded make\(chan .*pending\)`
}

// drainSignal is close-broadcast only: exempt.
func drainSignal() chan struct{} {
	return make(chan struct{})
}

// startDispatcher is the accounted form: StartDrain's shutdown sequencing
// can wait for it.
func (b *batcher) startDispatcher() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for p := range b.in {
			p.res <- result{}
		}
	}()
}

// rogueDispatcher would outlive drain invisibly.
func (b *batcher) rogueDispatcher() {
	go func() { // want `unaccounted goroutine`
		for p := range b.in {
			p.res <- result{}
		}
	}()
}

// buildEntry mirrors the registry's build-on-miss goroutine: handing the
// spawned call a context bounds it.
func buildEntry(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

// enqueue hands off the caller's own pending value; value-element sends
// copy and stay outside the credit ledger, so no acquire is demanded.
func (b *batcher) enqueue(p pending) bool {
	select {
	case b.in <- p:
		return true
	default:
		return false
	}
}

// fabricatePointer shows the credit rule still binds in serve: a
// pointer-element send must trace to an acquire, a parameter, or a
// same-function mint.
func fabricatePointer(out chan *pending) {
	out <- &pending{} // want `not traceable to a credit acquire`
}

// forwardPointer re-circulates what the caller already holds.
func forwardPointer(out chan *pending, p *pending) {
	out <- p
}
