// Package pipeline (testdata) is the golden matrix for the stagecontract
// analyzer; the import path impersonates the real pipeline package so the
// contract applies.
package pipeline

import (
	"context"
	"sync"
)

type batch struct{ n int }

type pool struct {
	free chan *batch
	wg   sync.WaitGroup
}

func unbounded() chan int {
	return make(chan int) // want `unbounded make\(chan int\)`
}

func bounded() chan int {
	return make(chan int, 4)
}

// signal channels carry no data and are closed for broadcast: exempt.
func signal() chan struct{} {
	return make(chan struct{})
}

func spawnBad() {
	go func() { // want `unaccounted goroutine`
		println("x")
	}()
}

func spawnTracked(p *pool) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		println("x")
	}()
}

func worker(ctx context.Context) { _ = ctx }

func spawnCtx(ctx context.Context) {
	go worker(ctx)
}

// trackedWorker declares its accounting at the top of its own body, so a
// bare `go trackedWorker(p)` is visible as WaitGroup-tracked.
func trackedWorker(p *pool) {
	defer p.wg.Done()
	println("x")
}

func spawnTrackedDecl(p *pool) {
	p.wg.Add(1)
	go trackedWorker(p)
}

// mint is the one legal fresh-value send: the constructor seeding the
// credit pool it just made.
func mint() *pool {
	p := &pool{}
	p.free = make(chan *batch, 4)
	for i := 0; i < 4; i++ {
		p.free <- &batch{}
	}
	return p
}

// fabricate conjures a credit outside the constructor: capacity the
// channel bound does not account for.
func fabricate(p *pool) {
	p.free <- &batch{} // want `not traceable to a credit acquire`
}

// recirculate re-circulates an acquired credit downstream.
func recirculate(p *pool, out chan *batch) {
	b := <-p.free
	out <- b
}

// handoff forwards a credit the caller already holds.
func handoff(out chan *batch, b *batch) {
	out <- b
}

// drain ranges the upstream stage: every received batch is an acquire.
func drain(in chan *batch, out chan *batch) {
	for b := range in {
		out <- b
	}
}

// valueSend copies: value-element channels are outside the credit ledger.
func valueSend(out chan int) {
	out <- 42
}
