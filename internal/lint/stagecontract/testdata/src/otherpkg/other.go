// Package otherpkg holds the same unbounded-channel and bare-goroutine
// shapes with no expectations: the contract is scoped to
// genax/internal/pipeline and must stay silent here.
package otherpkg

func unbounded() chan int {
	return make(chan int)
}

func spawn() {
	go func() {
		println("x")
	}()
}
