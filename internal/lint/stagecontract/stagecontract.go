// Package stagecontract implements the genaxvet analyzer that enforces
// the staged-pipeline discipline in genax/internal/pipeline.
//
// The pipeline's memory bound and clean shutdown rest on three structural
// rules (DESIGN.md §7, §11):
//
//  1. Bounded channels. Every make(chan …) must state a capacity; the
//     stage graph's memory ceiling is the sum of those bounds plus the
//     credit pool. The one exception is chan struct{}: zero-size signal
//     channels that are closed for broadcast (window.done) carry no data
//     and impose no buffer.
//  2. Accounted goroutines. Every go statement must be either tracked by
//     a sync.WaitGroup — the spawned body's first statement is
//     `defer wg.Done()`, so shutdown's close-cascade / Wait sequencing can
//     see it — or handed a context.Context, making it cancel-bounded.
//     The package is deliberately select-free (the determinism analyzer
//     forbids multi-way selects), so "respects the stage context" means
//     close-cascade + WaitGroup or explicit ctx, not a select loop.
//  3. Credit-traceable sends. A send of a pointer-typed element (a
//     *batch, a *window) is a hand-off of owned storage; its value must be
//     traceable to a credit acquire — received from a channel (<-pl.free
//     or a range over the upstream stage), passed in by the caller who
//     already holds it, or freshly minted in the same function that makes
//     the channel (the constructor seeding the credit pool). Anything
//     else fabricates capacity the bound does not account for.
//
// The same discipline governs genax/internal/serve: the admission queue,
// waiter channels, and registry build slots are all bounded channels, the
// dispatcher and build goroutines are WaitGroup-tracked so StartDrain can
// sequence shutdown, and request hand-offs into the intake queue follow
// the same ownership rules as window hand-offs. The analyzer therefore
// runs over both packages' non-test files: tests legitimately build
// unbuffered admission channels to exercise backpressure.
package stagecontract

import (
	"go/ast"
	"go/types"
	"strings"

	"genax/internal/lint/analysis"
	"genax/internal/lint/ssautil"
)

// Packages holds the import paths the contract applies to: the staged
// pipeline itself and the serving layer built on top of it, whose
// admission queue and dispatcher follow the same bounded-channel /
// accounted-goroutine discipline (DESIGN.md §14).
var Packages = map[string]bool{
	"genax/internal/pipeline": true,
	"genax/internal/serve":    true,
}

// Analyzer enforces the bounded-channel / accounted-goroutine /
// credit-traceable-send contract.
var Analyzer = &analysis.Analyzer{
	Name: "stagecontract",
	Doc:  "enforce bounded channels, accounted goroutines, and credit-traceable sends in internal/pipeline and internal/serve",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !Packages[strings.TrimSuffix(pass.Pkg.Path(), "_test")] {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	fn := ssautil.New(pass.TypesInfo, fd)
	mints := chanMints(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMakeChan(pass, n)
		case *ast.GoStmt:
			checkGo(pass, fd.Name.Name, n)
		case *ast.SendStmt:
			checkSend(pass, fd.Name.Name, fn, mints, n)
		}
		return true
	})
}

// checkMakeChan flags make(chan T) without an explicit capacity, except
// struct{} signal channels.
func checkMakeChan(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	t := pass.TypeOf(call.Args[0])
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return
	}
	if len(call.Args) >= 2 {
		return // capacity stated; the bound is explicit
	}
	if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return // chan struct{}: close-broadcast signal, carries no data
	}
	pass.Reportf(call.Pos(), "unbounded make(chan %s): every pipeline data channel must state its capacity (the stage memory bound is the sum of channel bounds)", ch.Elem())
}

// checkGo flags goroutines that are neither WaitGroup-tracked nor
// context-bounded.
func checkGo(pass *analysis.Pass, name string, g *ast.GoStmt) {
	if hasCtxArg(pass, g.Call) {
		return
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if firstStmtIsDeferDone(pass, fun.Body) || usesContext(pass, fun.Body) {
			return
		}
	default:
		if fn := ssautil.Callee(pass.TypesInfo, g.Call); fn != nil {
			if decl := localDecl(pass, fn); decl != nil && decl.Body != nil && firstStmtIsDeferDone(pass, decl.Body) {
				return
			}
		}
	}
	pass.Reportf(g.Pos(), "unaccounted goroutine in %s: start with `defer wg.Done()` (WaitGroup-tracked for the shutdown cascade) or pass it the stage context", name)
}

// hasCtxArg reports whether any call argument is a context.Context.
func hasCtxArg(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContext(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// usesContext reports whether the body references any context.Context
// value (a captured ctx bounds the goroutine's work).
func usesContext(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && isContext(obj.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// firstStmtIsDeferDone reports whether the body's first statement is
// `defer x.Done()` with x a sync.WaitGroup.
func firstStmtIsDeferDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	df, ok := body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(df.Call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := pass.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// localDecl finds the FuncDecl for a same-package function.
func localDecl(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// chanMints records, per function body, the rendered form of every
// expression assigned a fresh make(chan …) — the constructor's own
// channels, on which a fresh mint send is the credit pool being seeded.
func chanMints(body *ast.BlockStmt) map[string]bool {
	mints := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if key := render(as.Lhs[i]); key != "" {
				mints[key] = true
			}
		}
		return true
	})
	return mints
}

// checkSend verifies a pointer-element send is traceable to a credit
// acquire.
func checkSend(pass *analysis.Pass, name string, fn *ssautil.Func, mints map[string]bool, s *ast.SendStmt) {
	ct := pass.TypeOf(s.Chan)
	ch, ok := ct.Underlying().(*types.Chan)
	if !ok {
		return
	}
	if _, isPtr := ch.Elem().Underlying().(*types.Pointer); !isPtr {
		return // value-element channels copy; the credit ledger tracks owned storage
	}
	o := fn.Origins(s.Value)
	if o.Has(ssautil.OriginReceive) || o.Has(ssautil.OriginParam) {
		return // re-circulating an acquired credit, or the caller's own
	}
	if o.Has(ssautil.OriginFresh) && mints[render(s.Chan)] {
		return // constructor seeding the pool it just made
	}
	pass.Reportf(s.Pos(), "send of %s in %s is not traceable to a credit acquire: the value must come from a channel receive, a parameter, or mint into a channel made in the same function", ch.Elem(), name)
}

// render flattens a selector/index chain to a comparison key
// (pl.free, pl.winChs[i] → pl.winChs[]).
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := render(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := render(e.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.ParenExpr:
		return render(e.X)
	}
	return ""
}
