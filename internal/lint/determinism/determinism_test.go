package determinism_test

import (
	"testing"

	"genax/internal/lint/analysistest"
	"genax/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	// The rules apply inside the declared deterministic packages and nowhere
	// else: otherpkg holds the same constructs with no expectations.
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer,
		"genax/internal/seed", "genax/internal/bitsilla", "otherpkg")
}
