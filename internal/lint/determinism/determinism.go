// Package determinism implements the genaxvet analyzer that keeps the
// declared-deterministic packages byte-reproducible.
//
// AlignBatch guarantees byte-identical output for any worker count, and
// the Fig 13/16 experiment tables are diffed against golden numbers. Both
// properties die quietly if nondeterminism leaks into the kernel packages,
// so the packages listed in Packages are declared deterministic and this
// analyzer forbids the usual entropy sources inside them (test files
// included — the determinism tests themselves must be reproducible):
//
//   - ranging over a map (iteration order is randomized per run)
//   - time.Now (and friends that read the wall clock)
//   - package-level math/rand functions (globally, randomly seeded);
//     explicitly seeded generators via rand.New(rand.NewSource(n)) stay
//     legal, as all simulation inputs are built that way
//   - select over multiple channels (the runtime picks a ready case
//     pseudo-randomly)
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"genax/internal/lint/analysis"
)

// Packages are the import paths declared deterministic. DESIGN.md
// documents the contract; extend the set when a new kernel package lands.
var Packages = map[string]bool{
	"genax/internal/align":    true,
	"genax/internal/bitsilla": true,
	"genax/internal/chain":    true,
	"genax/internal/core":     true,
	"genax/internal/extend":   true,
	"genax/internal/genasm":   true,
	"genax/internal/pipeline": true,
	"genax/internal/seed":     true,
	"genax/internal/silla":    true,
	"genax/internal/sillax":   true,
}

// seededConstructors are math/rand package-level functions that build
// explicitly seeded generators rather than drawing from the global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// clockFuncs are time package functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// Analyzer forbids nondeterministic constructs in the declared packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid nondeterministic constructs in the deterministic kernel packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// External test packages ("p_test") share the determinism contract of
	// the package they test.
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	if !Packages[path] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map %s in deterministic package %s: iteration order is randomized, iterate sorted keys instead", t, path)
					}
				}
			case *ast.SelectStmt:
				ready := 0
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						ready++
					}
				}
				if ready >= 2 {
					pass.Reportf(n.Pos(), "select over %d channels in deterministic package %s: the runtime picks a ready case pseudo-randomly", ready, path)
				}
			case *ast.CallExpr:
				checkCall(pass, path, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, path string, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if clockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "%s in deterministic package %s: wall-clock reads are not reproducible", fn.FullName(), path)
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "%s in deterministic package %s: the global generator is unseeded; use rand.New(rand.NewSource(seed))", fn.FullName(), path)
		}
	}
}
