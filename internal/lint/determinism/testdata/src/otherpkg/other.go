// Package otherpkg is not declared deterministic; the same constructs that
// are violations in the kernel packages are legal here.
package otherpkg

import (
	"math/rand"
	"time"
)

func allAllowed(m map[string]int) int64 {
	total := 0
	for _, v := range m {
		total += v
	}
	return time.Now().UnixNano() + int64(total) + int64(rand.Intn(10))
}
