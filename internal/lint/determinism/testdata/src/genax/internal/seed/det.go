package seed

import (
	"math/rand"
	"time"
)

func mapIter(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map`
		total += v
	}
	return total
}

func sortedIter(keys []string, m map[string]int) int {
	total := 0
	for _, k := range keys { // iterating a slice of sorted keys is the fix
		total += m[k]
	}
	return total
}

func clock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in deterministic package`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand.Intn in deterministic package`
}

func seededRand() int {
	r := rand.New(rand.NewSource(1)) // seeded constructors are legal
	return r.Intn(10)                // methods on a seeded generator too
}

func multiSelect(a, b chan int) int {
	select { // want `select over 2 channels`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleSelect(c chan int) int {
	select { // one channel plus default: no runtime lottery
	case v := <-c:
		return v
	default:
		return 0
	}
}
