// Package bitsilla's testdata twin: the bit-parallel kernel is on the
// determinism list, so entropy sources are flagged inside it while the
// word-parallel idioms the real kernel uses stay legal.
package bitsilla

import (
	"math/bits"
	"math/rand"
	"time"
)

func planeScan(rows [7]uint64) int {
	live := 0
	for p := 0; p < 7; p++ { // plain index loops are fine
		for rw := rows[p]; rw != 0; rw &= rw - 1 {
			live += bits.TrailingZeros64(rw)
		}
	}
	return live
}

func arrayRange(qeq [4]uint64) uint64 {
	var or uint64
	for _, w := range qeq { // ranging an array is deterministic
		or |= w
	}
	return or
}

func trailByCell(trail map[int]uint64) uint64 {
	var or uint64
	for _, w := range trail { // want `range over map`
		or |= w
	}
	return or
}

func cycleClock() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func randomTieBreak() int {
	return rand.Intn(2) // want `math/rand.Intn in deterministic package`
}

func seededFuzzInput() int {
	r := rand.New(rand.NewSource(60)) // seeded generators stay legal
	return r.Intn(4)
}
