// Package borrow implements the genaxvet analyzer that enforces the
// //genax:borrowed lifetime contract at compile time.
//
// Several kernel entry points return slices that alias storage they do not
// transfer: seed.SegmentIndex.Lookup and LookupAt hand out windows of the
// shared position table, Seeder.Seed returns seeds carved from the lane's
// hit-list arena, and the Seeder probe/intersect helpers return lane
// scratch. Such a view is valid only transiently — until the next call on
// the owner — and must never be mutated. PR 5 pinned those rules with
// runtime tests; this analyzer proves them for every caller.
//
// A function whose doc comment carries //genax:borrowed declares that the
// reference-typed values it returns are borrowed views. At every call site
// the analyzer taints the result through internal/lint/ssautil's value
// graph (assignment, slicing, field selection, composite wrapping, append
// all propagate) and rejects the operations that would let the view
// outlive or mutate its owner's frame:
//
//   - storing it to a struct field, array/slice/map element, dereferenced
//     pointer, or package-level variable (heap escape). Inside a function
//     that is itself annotated //genax:borrowed, stores rooted at the
//     method's own receiver stay legal: the owner reclaiming its scratch
//     is the arena pattern, not an escape.
//   - capturing it in a closure literal or go statement (the goroutine or
//     closure may run after the view is invalidated)
//   - appending to it (a spare-capacity append writes into, or retains,
//     the shared backing array)
//   - writing through it (element assignment mutates the owner's storage)
//   - sending it on a channel (escapes to a consumer with its own lifetime)
//   - returning it from a function not annotated //genax:borrowed
//     (the borrow would silently outlive the owning frame's contract)
//
// Inside a function that is itself annotated, borrowed calls reached
// through the method's own receiver are not treated as taint sources: the
// owner rearranging its own scratch (Seeder.exactMatch compacting a
// curBuf-backed candidate set in place) is the arena pattern, and the
// contract is enforced at every frame outside the owner instead.
//
// Passing a borrowed value to an ordinary call stays legal: that is a
// reborrow for the duration of the callee, the same transient loan the
// caller holds. The callee's own body is checked under the same rules, so
// a callee that stores its argument is caught when it, in turn, receives a
// tainted value — the contract is enforced frame by frame.
//
// Cross-package calls resolve through a process-wide registry of annotated
// functions keyed by their type-checker full name. The genaxvet driver
// pre-collects annotations from every loaded package before any analysis
// runs, so `genaxvet ./...` checks pipeline's use of seed.Lookup even
// though the packages are analyzed separately.
package borrow

import (
	"go/ast"
	"go/types"
	"sync"

	"genax/internal/lint/analysis"
	"genax/internal/lint/ssautil"
)

// Directive is the doc-comment annotation marking a function whose
// returned reference values are borrowed views.
const Directive = "//genax:borrowed"

// Analyzer enforces the //genax:borrowed lifetime contract.
var Analyzer = &analysis.Analyzer{
	Name: "borrow",
	Doc:  "forbid escapes and mutation of slices returned by //genax:borrowed functions",
	Run:  run,
}

// registry holds the full names of annotated functions across packages.
// The driver fills it via Collect before running the analyzer; run also
// collects from its own pass so single-package tests are self-contained.
var registry = struct {
	sync.Mutex
	m map[string]bool
}{m: make(map[string]bool)}

// Collect registers every //genax:borrowed function declared in files so
// later passes over other packages resolve cross-package calls. It is
// idempotent and safe for concurrent use.
func Collect(info *types.Info, files []*ast.File) {
	registry.Lock()
	defer registry.Unlock()
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !ssautil.HasDirective(fd.Doc, Directive) {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				registry.m[fn.FullName()] = true
			}
		}
	}
}

// borrowed reports whether the call statically resolves to an annotated
// function.
func borrowed(info *types.Info, call *ast.CallExpr) bool {
	fn := ssautil.Callee(info, call)
	if fn == nil {
		return false
	}
	registry.Lock()
	defer registry.Unlock()
	return registry.m[fn.FullName()]
}

func run(pass *analysis.Pass) (any, error) {
	Collect(pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		annotated := make(map[*ast.CommentGroup]bool)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			isBorrowed := ssautil.HasDirective(fd.Doc, Directive)
			if isBorrowed {
				annotated[fd.Doc] = true
				checkAnnotation(pass, fd)
			}
			if fd.Body != nil {
				checkFunc(pass, fd, isBorrowed)
			}
		}
		for _, cg := range f.Comments {
			if ssautil.HasDirective(cg, Directive) && !annotated[cg] {
				pass.Reportf(cg.Pos(), "misplaced %s directive: it must be part of a function declaration's doc comment", Directive)
			}
		}
	}
	return nil, nil
}

// checkAnnotation validates that an annotated function can actually lend
// something: at least one result must be reference-like.
func checkAnnotation(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			if t := pass.TypeOf(r.Type); t != nil && ssautil.RefLike(t) {
				return
			}
		}
	}
	pass.Reportf(fd.Pos(), "%s on %s, which returns no reference type that could be borrowed", Directive, fd.Name.Name)
}

// checkFunc analyzes one function body for borrow escapes.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, isBorrowed bool) {
	fn := ssautil.New(pass.TypesInfo, fd)
	// recvObj is the method receiver: the owner whose scratch an annotated
	// method may legally reclaim.
	var recvObj types.Object
	if isBorrowed && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}
	taint := fn.Taint(func(call *ast.CallExpr) bool {
		if !borrowed(pass.TypesInfo, call) {
			return false
		}
		// An annotated method is the owner's own frame: borrowed calls
		// reached through its receiver (sd.lookup, sd.intersect) hand back
		// the owner's scratch, which the owner may rearrange freely. The
		// contract is enforced at every caller outside the frame instead.
		if recvObj != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && rootedAt(pass, sel.X, recvObj) {
				return false
			}
		}
		return true
	})
	name := fd.Name.Name

	// funcLits tracks closure bodies so the outer walk can skip statements
	// already judged as captures.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCapture(pass, name, n, n.Body, taint, "closure")
			return false
		case *ast.GoStmt:
			checkCapture(pass, name, n, n.Call, taint, "goroutine")
			return false
		case *ast.AssignStmt:
			checkAssign(pass, name, n, taint, recvObj)
		case *ast.SendStmt:
			if taint.Expr(n.Value) {
				pass.Reportf(n.Pos(), "borrowed slice sent on a channel in %s: the consumer outlives the borrow", name)
			}
		case *ast.ReturnStmt:
			if isBorrowed {
				return true
			}
			for _, res := range n.Results {
				if taint.Expr(res) {
					pass.Reportf(res.Pos(), "borrowed slice returned from %s, which is not annotated %s: the view would outlive the owning frame", name, Directive)
				}
			}
		case *ast.CallExpr:
			checkAppend(pass, name, n, taint)
		}
		return true
	})
}

// checkAppend rejects appending TO a borrowed slice (spare-capacity appends
// write into the shared backing array; full ones retain it via the old
// header). Appending borrowed *elements* into an owned slice is a store and
// is caught by checkAssign through taint propagation.
func checkAppend(pass *analysis.Pass, name string, call *ast.CallExpr, taint *ssautil.Taint) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) > 0 && taint.Expr(call.Args[0]) {
		pass.Reportf(call.Pos(), "append to a borrowed slice in %s: may write into or retain the owner's backing array", name)
	}
}

// checkAssign rejects stores of tainted values to escaping locations and
// writes through tainted bases.
func checkAssign(pass *analysis.Pass, name string, as *ast.AssignStmt, taint *ssautil.Taint, recvObj types.Object) {
	rhsFor := func(i int) ast.Expr {
		if len(as.Lhs) == len(as.Rhs) {
			return as.Rhs[i]
		}
		if len(as.Rhs) == 1 {
			return as.Rhs[0]
		}
		return nil
	}
	for i, lhs := range as.Lhs {
		// Writing through a borrowed view mutates the owner's storage,
		// whatever the value being stored.
		if ix, ok := lhs.(*ast.IndexExpr); ok && taint.Expr(ix.X) {
			pass.Reportf(lhs.Pos(), "write through a borrowed slice in %s: mutates the owner's backing array", name)
			continue
		}
		rhs := rhsFor(i)
		if rhs == nil || !taint.Expr(rhs) {
			continue
		}
		if rt := pass.TypeOf(lhs); rt != nil && !ssautil.RefLike(rt) {
			continue // a scalar copied out of the view carries no reference
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			// Plain local rebinding keeps the borrow in-frame; package-level
			// variables escape it.
			if obj := pass.ObjectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(lhs.Pos(), "borrowed slice stored to package-level variable %s in %s", l.Name, name)
			}
		default:
			if rootedAt(pass, lhs, recvObj) {
				continue // the owner reclaiming its own scratch (arena pattern)
			}
			pass.Reportf(lhs.Pos(), "borrowed slice stored to %s in %s: the store outlives the borrow (copy into owned scratch instead)", describeLHS(lhs), name)
		}
	}
}

// checkCapture reports tainted free variables referenced inside a closure
// or go statement.
func checkCapture(pass *analysis.Pass, name string, at ast.Node, body ast.Node, taint *ssautil.Taint, kind string) {
	reported := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && taint.Obj(obj) {
			pass.Reportf(at.Pos(), "borrowed slice %s captured by %s in %s: it may be used after the owner invalidates it", id.Name, kind, name)
			reported = true
			return false
		}
		return true
	})
}

// rootedAt reports whether the assignable expression's root identifier is
// the given object (e.g. sd.arena or sd.curBuf[i] rooted at receiver sd).
func rootedAt(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.ObjectOf(x) == obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// describeLHS names the escaping store target for the diagnostic.
func describeLHS(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a container element"
	case *ast.StarExpr:
		return "a dereferenced pointer"
	}
	return "an escaping location"
}
