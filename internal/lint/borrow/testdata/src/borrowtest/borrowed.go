// Package borrowtest is the golden contract matrix for the borrow
// analyzer: an index type lending views of a shared table, with one
// function per legal and illegal way of handling the loan.
package borrowtest

// index mimics seed.SegmentIndex: a shared table handing out windows of
// its backing store.
type index struct {
	positions []int32
	start     []int32
	words     []uint64
}

// Lookup returns a window of the shared position table.
//
//genax:borrowed
func (ix *index) Lookup(km int) []int32 {
	return ix.positions[ix.start[km]:ix.start[km+1]]
}

type sink struct {
	held []int32
}

var global []int32

func storeField(ix *index, s *sink) {
	h := ix.Lookup(0)
	s.held = h // want `borrowed slice stored to a struct field`
}

func storeGlobal(ix *index) {
	global = ix.Lookup(1) // want `borrowed slice stored to package-level variable`
}

func storeElement(ix *index, table [][]int32) {
	table[0] = ix.Lookup(0) // want `borrowed slice stored to a container element`
}

func capture(ix *index) func() int32 {
	h := ix.Lookup(0)
	return func() int32 { // want `captured by closure`
		return h[0]
	}
}

func spawn(ix *index, done chan struct{}) {
	h := ix.Lookup(0)
	go func() { // want `captured by goroutine`
		_ = h[0]
		close(done)
	}()
}

func appendTo(ix *index) {
	h := ix.Lookup(0)
	h = append(h, 7) // want `append to a borrowed slice`
	_ = h
}

func send(ix *index, ch chan []int32) {
	ch <- ix.Lookup(0) // want `sent on a channel`
}

func ret(ix *index) []int32 {
	return ix.Lookup(0) // want `borrowed slice returned from ret`
}

// retBorrowed re-lends the view under its own annotation, so the return
// is the contract, not a leak.
//
//genax:borrowed
func retBorrowed(ix *index) []int32 {
	return ix.Lookup(0)
}

func mutate(ix *index) {
	h := ix.Lookup(0)
	h[0] = 9 // want `write through a borrowed slice`
}

// window shows the legal uses: reslicing stays in-frame, and a scalar
// element copied out of the view carries no reference.
func window(ix *index) int32 {
	h := ix.Lookup(0)
	w := h[1:]
	return w[0]
}

func sum(v []int32) int32 {
	var t int32
	for _, x := range v {
		t += x
	}
	return t
}

// reborrow passes the view down a call: the callee holds the same
// transient loan the caller does, checked in its own frame.
func reborrow(ix *index) int32 {
	return sum(ix.Lookup(0))
}

type lane struct {
	ix  *index
	buf []int32
}

// refresh caches a borrowed view in the lane's own slot: legal only
// because refresh is itself annotated and stores through its receiver
// (the arena pattern — the owner reclaiming its scratch).
//
//genax:borrowed
func (l *lane) refresh(src *index) []int32 {
	l.buf = src.Lookup(0)
	return l.buf
}

// leak is refresh without the annotation: the same store now outlives
// the frame's contract.
func (l *lane) leak(src *index) {
	l.buf = src.Lookup(0) // want `borrowed slice stored to a struct field`
}

//genax:borrowed
func badAnnotation() int { return 0 } // want `returns no reference type`

func misplaced(ix *index) {
	//genax:borrowed want `misplaced //genax:borrowed directive`
	_ = ix
}
