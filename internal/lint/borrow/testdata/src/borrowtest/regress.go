// regress.go pins the real pipeline call-site patterns the analyzer
// guards in internal/pipeline/seedstage.go: the seed stage copies every
// borrowed hit into the batch before the batch crosses a queue, and the
// regression here is a lane retaining the seeder's scratch instead.
package borrowtest

type batch struct {
	cands []int32
}

// copyOut mirrors seedLane.seedOne: scalar elements copied out of the
// view carry no reference, so filling the batch is clean.
func copyOut(ix *index, b *batch) {
	hits := ix.Lookup(0)
	for _, h := range hits {
		b.cands = append(b.cands, h)
	}
}

type seedLane struct {
	ix   *index
	held []int32
}

// retain is the leak the gate exists for: the lane keeps the view past
// the next Lookup, which reuses the backing store.
func (l *seedLane) retain() {
	l.held = l.ix.Lookup(0) // want `borrowed slice stored to a struct field`
}
