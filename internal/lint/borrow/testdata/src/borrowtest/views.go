// views.go pins the mapped-index accessor pattern introduced with the
// GAXI v2 loader: thin view accessors that lend the index's backing
// store wholesale (seed.SegmentIndex.StartTable / PositionTable /
// PresenceWords) instead of a window of it, possibly aliasing an mmap-ed
// file. The registry pre-pass keys on the //genax:borrowed annotation
// alone, so new accessors join the contract with no analyzer changes —
// this file is the regression proving the pre-pass picks them up, for a
// second element type too.
package borrowtest

// startTable mimics StartTable: the whole backing array, not a window.
//
//genax:borrowed
func (ix *index) startTable() []int32 { return ix.start }

// presence mimics PresenceWords: a different element type through the
// same pre-pass.
//
//genax:borrowed
func (ix *index) presence() []uint64 { return ix.words }

var globalWords []uint64

func holdTable(ix *index, s *sink) {
	s.held = ix.startTable() // want `borrowed slice stored to a struct field`
}

func holdWords(ix *index) {
	globalWords = ix.presence() // want `borrowed slice stored to package-level variable`
}

func writeTable(ix *index) {
	t := ix.startTable()
	t[0] = 1 // want `write through a borrowed slice`
}

// scanWords is the legal shape the seed stage uses: scalar elements
// copied out of the view carry no reference.
func scanWords(ix *index) int {
	n := 0
	for _, w := range ix.presence() {
		n += int(w & 1)
	}
	return n
}

// emitTables mirrors the v2 writer (indexio.WriteShards): the views flow
// down a call as arguments — a re-borrow in the callee's frame, not a
// leak.
func emitTables(ix *index) int32 {
	return sum(ix.startTable())
}
