package borrow_test

import (
	"testing"

	"genax/internal/lint/analysistest"
	"genax/internal/lint/borrow"
)

func TestBorrow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), borrow.Analyzer, "borrowtest")
}
