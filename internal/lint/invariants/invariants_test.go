package invariants_test

import (
	"testing"

	"genax/internal/lint/analysistest"
	"genax/internal/lint/invariants"
)

func TestInvariants(t *testing.T) {
	// invtest exercises the dropped-error rule (it applies everywhere);
	// the kernel-path package additionally exercises the bound-check rule.
	analysistest.Run(t, analysistest.TestData(), invariants.Analyzer,
		"invtest", "genax/internal/sillax")
}
