// Package invariants implements the genaxvet analyzer for two repo-wide
// API-robustness rules.
//
// Dropped errors: a call whose result set includes an error must not stand
// alone as an expression statement. Acknowledged discards (assigning to
// the blank identifier) and deferred cleanup calls are allowed, as are
// calls that cannot meaningfully fail: fmt printing to stdout/stderr and
// writes into strings.Builder / bytes.Buffer.
//
// Bound checks: exported entry points of the kernel packages that accept
// an edit-distance or segment-index parameter (k, kmer, margin, seg, ...)
// must bound-check it in their own body — a comparison against the
// parameter — before handing it to the machines. The SillaX grids are
// sized (K+1)², so an unchecked K reaching a constructor or an unchecked
// segment index reaching a table turns into a huge allocation or an
// out-of-range panic deep inside a lane. Test files are exempt from both
// rules (the determinism analyzer is the one that covers tests).
package invariants

import (
	"go/ast"
	"go/types"
	"strings"

	"genax/internal/lint/analysis"
)

// kernelPackages are the packages whose exported entry points must
// bound-check their edit-distance / segment-index parameters.
var kernelPackages = map[string]bool{
	"genax/internal/align":    true,
	"genax/internal/core":     true,
	"genax/internal/extend":   true,
	"genax/internal/indexio":  true,
	"genax/internal/pipeline": true,
	"genax/internal/seed":     true,
	"genax/internal/silla":    true,
	"genax/internal/sillax":   true,
}

// watchedParams are the integer parameter names that denote an edit bound
// or a segment/tile index at kernel entry points.
var watchedParams = map[string]bool{
	"k": true, "K": true, "kmer": true, "kmerLen": true,
	"margin": true, "seg": true, "segIdx": true, "segLen": true,
}

// Analyzer flags dropped errors and unchecked kernel bounds.
var Analyzer = &analysis.Analyzer{
	Name: "invariants",
	Doc:  "flag dropped error results and kernel entry points missing bound checks",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	errType := types.Universe.Lookup("error").Type()
	kernel := kernelPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedError(pass, errType, call)
				}
			case *ast.FuncDecl:
				if kernel {
					checkBounds(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// returnsError reports whether the call's result set includes an error.
func returnsError(pass *analysis.Pass, errType types.Type, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// checkDroppedError flags expression-statement calls that silently drop an
// error result.
func checkDroppedError(pass *analysis.Pass, errType types.Type, call *ast.CallExpr) {
	if !returnsError(pass, errType, call) {
		return
	}
	fn := calleeFunc(pass, call)
	if fn != nil && exemptCall(pass, fn, call) {
		return
	}
	name := "call"
	if fn != nil {
		name = fn.FullName()
	}
	pass.Reportf(call.Pos(), "error result of %s is dropped: handle it or discard it explicitly with _", name)
}

// calleeFunc resolves the statically-known callee of call, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// exemptCall lists calls whose error can be dropped without losing
// information.
func exemptCall(pass *analysis.Pass, fn *types.Func, call *ast.CallExpr) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// strings.Builder and bytes.Buffer writes are documented to never
		// return a non-nil error.
		return infallibleWriter(sig.Recv().Type())
	}
	if pkg.Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true // stdout diagnostics: nothing sensible to do on failure
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if infallibleWriter(pass.TypeOf(call.Args[0])) {
			return true
		}
		// Writes to the standard streams are best-effort diagnostics.
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
				(sel.Sel.Name == "Stderr" || sel.Sel.Name == "Stdout") {
				if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkgName.Imported().Path() == "os" {
					return true
				}
			}
		}
	}
	return false
}

// infallibleWriter reports whether t is *strings.Builder or *bytes.Buffer.
func infallibleWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// checkBounds enforces the bound-check rule on one function declaration.
func checkBounds(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	if !isEntryPoint(pass, fd) {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isIntType(pass.TypeOf(field.Type)) {
			continue
		}
		for _, nameID := range field.Names {
			if !watchedParams[nameID.Name] {
				continue
			}
			obj := pass.TypesInfo.Defs[nameID]
			if obj == nil || !hasComparison(pass, fd.Body, obj) {
				pass.Reportf(nameID.Pos(), "exported kernel entry point %s does not bound-check parameter %s before using it", fd.Name.Name, nameID.Name)
			}
		}
	}
}

// isEntryPoint limits the bound-check rule to functions that actually
// drive kernel machinery: they consume a sequence (slice parameter) or
// construct something fallible (pointer or error result). Pure arithmetic
// helpers like NumStates3D(k) stay exempt.
func isEntryPoint(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypeOf(field.Type); t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return true
			}
		}
	}
	if fd.Type.Results == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	for _, field := range fd.Type.Results.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, ok := t.(*types.Pointer); ok {
			return true
		}
		if types.Identical(t, errType) {
			return true
		}
	}
	return false
}

// hasComparison reports whether body contains an ordered comparison with
// the parameter object as an operand.
func hasComparison(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", ">", "<=", ">=":
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isIntType reports whether t is a basic integer type.
func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
