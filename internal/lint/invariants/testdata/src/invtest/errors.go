package invtest

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func pair() (int, error) { return 0, nil }

func drops() {
	mayFail()       // want `error result of invtest.mayFail is dropped`
	pair()          // want `error result of invtest.pair is dropped`
	fmt.Errorf("x") // want `error result of fmt.Errorf is dropped`
}

func handles() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit discard is an acknowledged decision
	_, _ = pair()
	fmt.Println("ok")           // stdout diagnostics are exempt
	fmt.Fprintf(os.Stderr, "x") // standard streams are exempt
	var sb strings.Builder      // infallible writers are exempt
	sb.WriteString("y")
	var buf bytes.Buffer
	buf.WriteByte('z')
	fmt.Fprintln(&sb, "w")
	return nil
}
