package sillax

// Machine stands in for the (K+1)²-sized SillaX grids: an unchecked edit
// bound reaching the constructor turns into a huge allocation.
type Machine struct{ k int }

func NewMachine(k int) *Machine { // want `exported kernel entry point NewMachine does not bound-check parameter k`
	return &Machine{k: k}
}

func NewCheckedMachine(k int) *Machine {
	if k < 0 {
		return nil
	}
	return &Machine{k: k}
}

func Distance(r, q []byte, k int) int { // want `exported kernel entry point Distance does not bound-check parameter k`
	return len(r) + len(q) + k
}

func CheckedDistance(r, q []byte, k int) int {
	if k < 0 {
		return -1
	}
	return len(r) + len(q) + k
}

// NumStates is pure arithmetic — no slice parameter, no pointer or error
// result — so the entry-point rule exempts it.
func NumStates(k int) int { return (k + 1) * (k + 1) }

// helper is unexported: callers inside the package own the invariant.
func helper(r []byte, k int) int { return len(r) + k }
