// Package hotpath implements the genaxvet analyzer that enforces the
// allocation contract of functions annotated //genax:hotpath.
//
// PR 1 made the AlignBatch steady state allocation-free: every lane owns
// its scratch (seeder buffers, CAM, traceback arena) and the per-read path
// through seed → CAM → extend → sillax reuses it. That property is easy to
// regress silently — one stray fmt call, closure, or map literal brings
// the garbage collector back into the inner loop. Functions on that path
// carry a //genax:hotpath doc directive, and this analyzer rejects the
// heap-allocating constructs of the contract inside them:
//
//   - defer statements (delay scratch reuse, allocate defer records)
//   - go statements (the pool owns all concurrency)
//   - closure literals (captured variables escape)
//   - make and new (scratch must be pre-sized by the constructor)
//   - map and slice composite literals
//   - &T{...} composite literals (escape to the heap)
//   - calls into fmt or strings (formatting allocates)
//   - interface boxing: a concrete value converted, passed, assigned, or
//     returned as an interface value
//
// The check is per-function: callees must themselves be annotated or
// reviewed. Value composite literals (T{...}) and append are allowed —
// they stay on the stack / reuse capacity in the steady state, and the
// alloc-budget tests catch capacity regressions at run time.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"genax/internal/lint/analysis"
)

// Directive is the doc-comment annotation marking a hot-path function.
const Directive = "//genax:hotpath"

// Analyzer rejects heap-allocating constructs in //genax:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject heap-allocating constructs in //genax:hotpath functions",
	Run:  run,
}

// hasDirective reports whether the comment group contains the directive as
// a stand-alone comment line.
func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		annotated := make(map[*ast.CommentGroup]bool)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc) {
				continue
			}
			annotated[fd.Doc] = true
			if fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
		for _, cg := range f.Comments {
			if hasDirective(cg) && !annotated[cg] {
				pass.Reportf(cg.Pos(), "misplaced %s directive: it must be part of a function declaration's doc comment", Directive)
			}
		}
	}
	return nil, nil
}

// checkFunc walks one annotated function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var sig *types.Signature
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	// Composite literals already reported as part of an enclosing &T{...}.
	reported := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in %s function %s: captured variables escape to the heap", Directive, name)
			return false // the closure has its own (non-hot) contract
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in %s function %s: allocates a defer record and delays scratch reuse", Directive, name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in %s function %s: the lane pool owns all concurrency", Directive, name)
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				reported[lit] = true
				pass.Reportf(n.Pos(), "&%s composite literal in %s function %s escapes to the heap", typeString(pass, lit), Directive, name)
			}
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in %s function %s", Directive, name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in %s function %s", Directive, name)
			}
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					checkBoxing(pass, name, pass.TypeOf(n.Lhs[i]), n.Rhs[i], "assigned")
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					checkBoxing(pass, name, sig.Results().At(i).Type(), res, "returned")
				}
			}
		}
		return true
	})
}

// checkCall rejects make/new, fmt/strings calls, interface conversions,
// and arguments boxed into interface parameters.
func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// Builtins: make and new always allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "make" || b.Name() == "new" {
				pass.Reportf(call.Pos(), "%s allocates in %s function %s: pre-size scratch in the constructor", b.Name(), Directive, name)
			}
			return
		}
	}
	// Conversions: T(x) where T is an interface boxes x.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, name, tv.Type, call.Args[0], "converted")
		}
		return
	}
	// Calls into formatting packages.
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "strings":
			pass.Reportf(call.Pos(), "call to %s in %s function %s: formatting allocates", fn.FullName(), Directive, name)
		}
	}
	// Arguments boxed into interface parameters.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, name, pt, arg, "passed")
	}
}

// checkBoxing reports expr when it is a concrete (non-interface, non-nil)
// value flowing into an interface-typed destination.
func checkBoxing(pass *analysis.Pass, name string, dst types.Type, expr ast.Expr, how string) {
	if dst == nil {
		return
	}
	if _, isTypeParam := dst.(*types.TypeParam); isTypeParam {
		return // instantiation-dependent; generics are not annotated
	}
	if !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(), "value of type %s %s as interface %s in %s function %s: boxing allocates",
		tv.Type, how, dst, Directive, name)
}

// calleeFunc resolves the called function object, if it is statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// typeString renders the composite literal's type for diagnostics.
func typeString(pass *analysis.Pass, lit *ast.CompositeLit) string {
	if t := pass.TypeOf(lit); t != nil {
		return t.String()
	}
	return "T"
}
