package hotpath_test

import (
	"testing"

	"genax/internal/lint/analysistest"
	"genax/internal/lint/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "hotpathtest")
}
