package hotpathtest

import (
	"fmt"
	"strings"
)

type scratch struct {
	buf []int
}

func release(s *scratch) { s.buf = s.buf[:0] }

// grow is annotated and clean: append, value composite literals, and calls
// into non-formatting packages are all allowed on the hot path.
//
//genax:hotpath
func grow(s *scratch, v int) scratch {
	s.buf = append(s.buf, v)
	release(s)
	return scratch{buf: s.buf}
}

//genax:hotpath
func alloc(s *scratch, n int) {
	defer release(s)            // want `defer in //genax:hotpath function alloc`
	go release(s)               // want `go statement in //genax:hotpath function alloc`
	f := func() { s.buf = nil } // want `closure literal in //genax:hotpath function alloc`
	f()
	s.buf = make([]int, n) // want `make allocates in //genax:hotpath function alloc`
	p := new(scratch)      // want `new allocates in //genax:hotpath function alloc`
	_ = p
	m := map[int]bool{} // want `map literal allocates in //genax:hotpath function alloc`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates in //genax:hotpath function alloc`
	_ = sl
	q := &scratch{} // want `&hotpathtest.scratch composite literal in //genax:hotpath function alloc escapes to the heap`
	_ = q
	fmt.Println(n)             // want `call to fmt.Println` `value of type int passed as interface`
	_ = strings.Repeat("a", n) // want `call to strings.Repeat`
}

type iface interface{ m() }

type impl struct{}

func (impl) m() {}

//genax:hotpath
func box(v impl) iface {
	var x iface
	x = v // want `value of type hotpathtest.impl assigned as interface hotpathtest.iface`
	_ = x
	var y any = nil // nil never boxes
	_ = y
	return v // want `value of type hotpathtest.impl returned as interface hotpathtest.iface`
}

//genax:hotpath want `misplaced //genax:hotpath directive`
type notAFunc struct{}
