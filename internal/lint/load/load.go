// Package load type-checks Go packages for the genaxvet analyzers without
// depending on golang.org/x/tools/go/packages (the build environment is
// hermetic). It shells out to `go list -export -deps -json`, which works
// offline: the go tool compiles dependencies into the build cache and
// reports per-package export-data files, which the standard library's gc
// importer can read through a lookup function. Target packages are then
// parsed from source and type-checked against that export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package path; test variants keep the path of the
	// package under test, external test packages carry a "_test" suffix.
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TestVariant marks the in-package test build (GoFiles plus
	// TestGoFiles) and external _test packages. Drivers typically restrict
	// diagnostics from a variant to its _test.go files, since the non-test
	// files were already analyzed in the base package.
	TestVariant bool
}

// Config parametrizes a load.
type Config struct {
	// Dir is the working directory for the go tool (the module root or any
	// directory inside it). Empty means the current directory.
	Dir string
	// Tests additionally loads each matched package's test variants.
	Tests bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	TestImports  []string
	XTestImports []string
	DepOnly      bool
}

const listFields = "-json=ImportPath,Name,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,TestImports,XTestImports,DepOnly"

// goList runs `go list` with the given extra arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", listFields}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses, and type-checks the packages matched by patterns.
func (c *Config) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	listed, err := goList(c.Dir, append([]string{"-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if c.Tests {
		// Test files may import packages (testing, etc.) that the non-test
		// build graph does not reach; list those separately for their
		// export data. In-module test dependencies matched by the original
		// patterns are already present.
		missing := make(map[string]bool)
		for _, p := range targets {
			for _, imp := range append(append([]string{}, p.TestImports...), p.XTestImports...) {
				if _, ok := exports[imp]; !ok && imp != "C" && imp != "unsafe" {
					missing[imp] = true
				}
			}
		}
		if len(missing) > 0 {
			extra := make([]string, 0, len(missing))
			for imp := range missing {
				extra = append(extra, imp)
			}
			sort.Strings(extra)
			more, err := goList(c.Dir, append([]string{"-deps", "--"}, extra...)...)
			if err != nil {
				return nil, err
			}
			for _, p := range more {
				if p.Export != "" {
					exports[p.ImportPath] = p.Export
				}
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var out []*Package
	for _, t := range targets {
		base, err := check(fset, imp, t.ImportPath, t.Name, t.Dir, t.GoFiles, false)
		if err != nil {
			return nil, err
		}
		out = append(out, base)
		if !c.Tests {
			continue
		}
		if len(t.TestGoFiles) > 0 {
			files := append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
			tv, err := check(fset, imp, t.ImportPath, t.Name, t.Dir, files, true)
			if err != nil {
				return nil, err
			}
			out = append(out, tv)
		}
		if len(t.XTestGoFiles) > 0 {
			xv, err := check(fset, imp, t.ImportPath+"_test", t.Name+"_test", t.Dir, t.XTestGoFiles, true)
			if err != nil {
				return nil, err
			}
			out = append(out, xv)
		}
	}
	return out, nil
}

// ExportData maps the given import paths — and everything they depend on —
// to their export-data files, compiling them into the build cache as
// needed. The analysistest harness uses it to type-check testdata packages
// against the real standard library.
func ExportData(dir string, importPaths ...string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(importPaths) == 0 {
		return exports, nil
	}
	pkgs, err := goList(dir, append([]string{"-deps", "--"}, importPaths...)...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter builds a types.Importer that resolves import paths through
// export-data files named by lookup (as produced by `go list -export`).
func NewImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo allocates the full set of types.Info maps the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ParseFiles parses the named files (relative to dir) into fset, keeping
// comments so analyzers can see directives.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckFiles type-checks already-parsed files as the package named by
// path, resolving imports through imp.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return &Package{
		ImportPath: path,
		Name:       tpkg.Name(),
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// check parses and type-checks one package build.
func check(fset *token.FileSet, imp types.Importer, path, name, dir string, fileNames []string, testVariant bool) (*Package, error) {
	files, err := ParseFiles(fset, dir, fileNames)
	if err != nil {
		return nil, err
	}
	pkg, err := CheckFiles(fset, imp, path, files)
	if err != nil {
		return nil, err
	}
	pkg.Name = name
	pkg.Dir = dir
	pkg.TestVariant = testVariant
	return pkg, nil
}
