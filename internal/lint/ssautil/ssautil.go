// Package ssautil is the shared dataflow layer under the genaxvet
// analyzers that reason about values instead of syntax (borrow,
// stagecontract). It builds, per function, a pruned SSA-style value graph:
// every local variable's assignment sites are collected into def-use
// chains, and queries over the graph — taint propagation from designated
// source expressions, origin classification of a value — are answered by a
// monotone fixed point over those chains. Control flow is joined
// conservatively (a variable is tainted if any of its reaching definitions
// is), which can only over-approximate: the analyzers built on top never
// miss an escape because of a branch, they at worst ask for a copy that a
// path-sensitive analysis could have proven unnecessary.
//
// The package depends only on go/ast and go/types, like the rest of the
// vendored analysis core, so it runs in the hermetic build environment;
// porting an analyzer to the upstream golang.org/x/tools/go/ssa layer
// replaces these queries one for one.
package ssautil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Func is the per-function value graph: for every local object, the
// expressions assigned to it, plus the range statements that bind it.
type Func struct {
	Body ast.Node
	Info *types.Info

	// defs maps each assigned local object to its definition records.
	defs map[types.Object][]def
	// params holds parameters and named results (and the method receiver),
	// which enter the frame from outside.
	params map[types.Object]bool
}

// def is one reaching definition: the assigned expression, or the range
// operand when the object is a range key/value binding.
type def struct {
	rhs ast.Expr
	// rangeOver marks rhs as the operand of a range statement binding this
	// object as its value (key bindings over slices are ints and carry no
	// reference, so only value bindings are recorded; a range key over a
	// channel is the received element and is recorded too).
	rangeOver bool
}

// New builds the value graph of one function given its declaration. decl
// may be an *ast.FuncDecl or *ast.FuncLit.
func New(info *types.Info, decl ast.Node) *Func {
	f := &Func{Info: info, defs: make(map[types.Object][]def), params: make(map[types.Object]bool)}
	var typ *ast.FuncType
	switch d := decl.(type) {
	case *ast.FuncDecl:
		f.Body = d.Body
		typ = d.Type
		if d.Recv != nil {
			f.addParams(d.Recv)
		}
	case *ast.FuncLit:
		f.Body = d.Body
		typ = d.Type
	default:
		f.Body = decl
	}
	if typ != nil {
		f.addParams(typ.Params)
		if typ.Results != nil {
			f.addParams(typ.Results)
		}
	}
	if f.Body != nil {
		f.collect(f.Body)
	}
	return f
}

func (f *Func) addParams(fl *ast.FieldList) {
	for _, field := range fl.List {
		for _, name := range field.Names {
			if obj := f.Info.Defs[name]; obj != nil {
				f.params[obj] = true
			}
		}
	}
}

// IsParam reports whether obj is a parameter, named result, or the
// receiver of the function.
func (f *Func) IsParam(obj types.Object) bool { return f.params[obj] }

// collect records every assignment and range binding in the body.
func (f *Func) collect(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			f.collectAssign(n.Lhs, n.Rhs)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				f.collectAssign(lhs, vs.Values)
			}
		case *ast.RangeStmt:
			if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
				if obj := f.Info.Defs[v]; obj != nil {
					f.defs[obj] = append(f.defs[obj], def{rhs: n.X, rangeOver: true})
				} else if obj := f.Info.Uses[v]; obj != nil {
					f.defs[obj] = append(f.defs[obj], def{rhs: n.X, rangeOver: true})
				}
			}
			if k, ok := n.Key.(*ast.Ident); ok && k.Name != "_" {
				// Range keys over channels are the received element.
				if t := f.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						if obj := f.Info.Defs[k]; obj != nil {
							f.defs[obj] = append(f.defs[obj], def{rhs: n.X, rangeOver: true})
						}
					}
				}
			}
		}
		return true
	})
}

func (f *Func) collectAssign(lhs, rhs []ast.Expr) {
	record := func(l ast.Expr, d def) {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := f.Info.Defs[id]
		if obj == nil {
			obj = f.Info.Uses[id]
		}
		if obj != nil {
			f.defs[obj] = append(f.defs[obj], d)
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			record(lhs[i], def{rhs: rhs[i]})
		}
		return
	}
	if len(rhs) == 1 {
		// x, y := f()  /  v, ok := <-ch  /  v, ok := m[k]
		for i := range lhs {
			record(lhs[i], def{rhs: rhs[0]})
		}
	}
}

// RefLike reports whether values of type t can carry a reference to
// another value's backing store: slices, pointers, maps, channels,
// functions, interfaces, type parameters, and any composite containing
// one. Plain numeric/bool/string types cannot retain a borrow.
func RefLike(t types.Type) bool {
	return refLike(t, 0)
}

func refLike(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // unknown or very deep: be conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface, *types.TypeParam:
		return true
	case *types.Array:
		return refLike(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return true
}

// Taint is the result of propagating a source predicate through the value
// graph: the set of local objects that may alias a source value.
type Taint struct {
	f        *Func
	isSource func(*ast.CallExpr) bool
	objs     map[types.Object]bool
}

// Taint computes the fixed point of source propagation: an object is
// tainted when any of its reaching definitions evaluates (possibly through
// slicing, field selection, composite wrapping, or append) to a value
// derived from a call matched by isSource.
func (f *Func) Taint(isSource func(*ast.CallExpr) bool) *Taint {
	t := &Taint{f: f, isSource: isSource, objs: make(map[types.Object]bool)}
	for changed := true; changed; {
		changed = false
		for obj, defs := range f.defs {
			if t.objs[obj] || !RefLike(obj.Type()) {
				continue
			}
			for _, d := range defs {
				if d.rangeOver {
					// The binding holds one element of the ranged value.
					if t.Expr(d.rhs) && RefLike(obj.Type()) {
						t.objs[obj] = true
						changed = true
					}
					continue
				}
				if t.Expr(d.rhs) {
					t.objs[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return t
}

// Obj reports whether the object is tainted.
func (t *Taint) Obj(obj types.Object) bool { return t.objs[obj] }

// Expr reports whether the expression may evaluate to a tainted value.
func (t *Taint) Expr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.f.Info.Uses[e]
		if obj == nil {
			obj = t.f.Info.Defs[e]
		}
		return obj != nil && t.objs[obj]
	case *ast.ParenExpr:
		return t.Expr(e.X)
	case *ast.StarExpr:
		return t.Expr(e.X)
	case *ast.UnaryExpr:
		return t.Expr(e.X)
	case *ast.SliceExpr:
		return t.Expr(e.X)
	case *ast.IndexExpr:
		// Indexing a tainted container yields a tainted value only when
		// the element can carry the reference.
		if typ := t.f.Info.TypeOf(e); typ != nil && !RefLike(typ) {
			return false
		}
		return t.Expr(e.X)
	case *ast.SelectorExpr:
		if typ := t.f.Info.TypeOf(e); typ != nil && !RefLike(typ) {
			return false
		}
		return t.Expr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if t.Expr(v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if t.isSource != nil && t.isSource(e) {
			return true
		}
		// Conversions pass the value through unchanged.
		if tv, ok := t.f.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.Expr(e.Args[0])
		}
		// append returns a slice aliasing (or retaining elements of) its
		// arguments.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := t.f.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				for _, arg := range e.Args {
					if t.Expr(arg) {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}

// Origin classifies where a value entered the current frame from.
type Origin uint8

const (
	// OriginFresh covers values constructed in this frame: composite
	// literals, make/new, and plain call results.
	OriginFresh Origin = 1 << iota
	// OriginReceive marks values received from a channel (<-ch or a range
	// over a channel).
	OriginReceive
	// OriginParam marks parameters, named results, and the receiver.
	OriginParam
	// OriginUnknown marks values the graph cannot classify (package-level
	// state, field loads, unresolved identifiers).
	OriginUnknown
)

// Has reports whether the set contains o.
func (s Origin) Has(o Origin) bool { return s&o != 0 }

// Origins reports every origin a value expression can be traced to
// through the function's def-use chains.
func (f *Func) Origins(e ast.Expr) Origin {
	return f.origins(e, make(map[types.Object]bool))
}

func (f *Func) origins(e ast.Expr, seen map[types.Object]bool) Origin {
	switch e := e.(type) {
	case *ast.Ident:
		obj := f.Info.Uses[e]
		if obj == nil {
			obj = f.Info.Defs[e]
		}
		if obj == nil {
			return OriginUnknown
		}
		return f.objOrigins(obj, seen)
	case *ast.ParenExpr:
		return f.origins(e.X, seen)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return OriginReceive
		}
		return f.origins(e.X, seen)
	case *ast.StarExpr:
		return f.origins(e.X, seen)
	case *ast.IndexExpr:
		return f.origins(e.X, seen)
	case *ast.SliceExpr:
		return f.origins(e.X, seen)
	case *ast.SelectorExpr:
		// A field load x.f: classify by the root value.
		return f.origins(e.X, seen)
	case *ast.CompositeLit:
		return OriginFresh
	case *ast.CallExpr:
		return OriginFresh
	}
	return OriginUnknown
}

func (f *Func) objOrigins(obj types.Object, seen map[types.Object]bool) Origin {
	if f.params[obj] {
		return OriginParam
	}
	if seen[obj] {
		return 0
	}
	seen[obj] = true
	defs := f.defs[obj]
	if len(defs) == 0 {
		return OriginUnknown
	}
	var out Origin
	for _, d := range defs {
		if d.rangeOver {
			// Ranging over a channel receives; ranging over anything else
			// reads elements of the ranged value.
			if t := f.Info.TypeOf(d.rhs); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					out |= OriginReceive
					continue
				}
			}
			out |= f.origins(d.rhs, seen)
			continue
		}
		out |= f.origins(d.rhs, seen)
	}
	return out
}

// HasDirective reports whether the comment group contains the given
// //genax:* directive as a stand-alone comment line.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// Callee resolves the *types.Func a call statically invokes, or nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
