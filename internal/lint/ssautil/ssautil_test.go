package ssautil_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"genax/internal/lint/ssautil"
)

const src = `package p

type T struct{ buf []int32 }

func source() []int32 { return nil }

func f(in chan []int32, p []int32) {
	s := source()
	alias := s[1:]
	wrapped := []([]int32){alias}
	n := s[0]
	recv := <-in
	fresh := make([]int32, 4)
	grown := append(fresh, s...)
	var fromParam []int32 = p
	_, _, _, _, _, _ = wrapped, n, recv, fresh, grown, fromParam
}
`

// load typechecks src and returns the info plus the FuncDecl named f.
func load(t *testing.T) (*types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return info, fd
		}
	}
	t.Fatal("no func f")
	return nil, nil
}

// obj resolves a local by name through the def map the taint exposes.
func obj(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var found types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				found = o
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no local %q", name)
	}
	return found
}

func TestTaintPropagation(t *testing.T) {
	info, fd := load(t)
	fn := ssautil.New(info, fd)
	taint := fn.Taint(func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source"
	})
	for name, tainted := range map[string]bool{
		"s":         true,  // direct source result
		"alias":     true,  // reslice of a tainted value
		"wrapped":   true,  // composite literal holding a tainted element
		"grown":     true,  // append retains tainted elements
		"n":         false, // scalar element copy
		"recv":      false, // channel receive, not the source
		"fresh":     false, // make in this frame
		"fromParam": false, // parameter, not the source
	} {
		if got := taint.Obj(obj(t, info, fd, name)); got != tainted {
			t.Errorf("taint(%s) = %v, expected %v", name, got, tainted)
		}
	}
}

func TestOrigins(t *testing.T) {
	info, fd := load(t)
	fn := ssautil.New(info, fd)
	for name, origin := range map[string]ssautil.Origin{
		"recv":      ssautil.OriginReceive,
		"fresh":     ssautil.OriginFresh,
		"s":         ssautil.OriginFresh,
		"fromParam": ssautil.OriginParam,
	} {
		o := obj(t, info, fd, name)
		var ident *ast.Ident
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == o && ident == nil {
				ident = id
			}
			return true
		})
		if ident == nil {
			t.Fatalf("no use of %q", name)
		}
		if got := fn.Origins(ident); !got.Has(origin) {
			t.Errorf("origins(%s) = %v, expected to include %v", name, got, origin)
		}
	}
}

func TestRefLike(t *testing.T) {
	info, fd := load(t)
	if rl := ssautil.RefLike(obj(t, info, fd, "n").Type()); rl {
		t.Errorf("int32 classified reference-like")
	}
	if rl := ssautil.RefLike(obj(t, info, fd, "s").Type()); !rl {
		t.Errorf("[]int32 not classified reference-like")
	}
}
