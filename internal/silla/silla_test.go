package silla

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genax/internal/dna"
	"genax/internal/sw"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func mutate(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		if len(out) == 0 {
			out = append(out, dna.Base(r.Intn(4)))
			continue
		}
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1:
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		case 2:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func TestPaperExample(t *testing.T) {
	// Figure 3: R = "AxBCD", Q = "yABCD" (mapped onto ACGT letters)
	// has edit distance 2 (insert+delete, or two substitutions).
	r := dna.MustParseSeq("ATGCC") // A x B C D with x=T, B=G, C=C, D=C? keep distinct below
	_ = r
	ref := dna.MustParseSeq("ACGTT")   // A x B C D -> A C G T T
	query := dna.MustParseSeq("GAGTT") // y A B C D -> G A G T T
	a := New(2)
	d, ok := a.Distance(ref, query)
	if !ok || d != 2 {
		t.Fatalf("paper example: got %d,%v want 2,true", d, ok)
	}
	if want := sw.EditDistance(ref, query); want != 2 {
		t.Fatalf("oracle disagrees: %d", want)
	}
}

func TestDistanceBasics(t *testing.T) {
	a := New(3)
	cases := []struct {
		r, q string
		want int
		ok   bool
	}{
		{"", "", 0, true},
		{"A", "A", 0, true},
		{"A", "C", 1, true},
		{"ACGT", "ACGT", 0, true},
		{"ACGT", "AGT", 1, true},
		{"ACGT", "AACGT", 1, true},
		{"ACGT", "TGCA", 0, false}, // true distance is 4 > K
		{"ACGA", "TCGA", 1, true},
		{"AAAA", "TTTT", 0, false},
		{"", "ACG", 3, true},
		{"ACG", "", 3, true},
		{"", "ACGT", 0, false},
	}
	for _, c := range cases {
		got, ok := a.Distance(dna.MustParseSeq(c.r), dna.MustParseSeq(c.q))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Distance(%q,%q) = %d,%v; want %d,%v", c.r, c.q, got, ok, c.want, c.ok)
		}
	}
}

func TestDistanceMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for _, k := range []int{0, 1, 2, 3, 5, 8, 12} {
		a := New(k)
		for trial := 0; trial < 200; trial++ {
			x := randSeq(r, r.Intn(60))
			y := mutate(r, x, r.Intn(k+3))
			want := sw.EditDistance(x, y)
			got, ok := a.Distance(x, y)
			if want <= k {
				if !ok || got != want {
					t.Fatalf("k=%d trial=%d: Silla %d,%v; DP %d (x=%v y=%v)", k, trial, got, ok, want, x, y)
				}
			} else if ok {
				t.Fatalf("k=%d trial=%d: Silla accepted distance %d but DP says %d > k (x=%v y=%v)", k, trial, got, want, x, y)
			}
		}
	}
}

func TestDistanceRandomUnrelated(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	a := New(10)
	for trial := 0; trial < 150; trial++ {
		x := randSeq(r, r.Intn(30))
		y := randSeq(r, r.Intn(30))
		want := sw.EditDistance(x, y)
		got, ok := a.Distance(x, y)
		if want <= 10 {
			if !ok || got != want {
				t.Fatalf("trial %d: got %d,%v want %d (x=%v y=%v)", trial, got, ok, want, x, y)
			}
		} else if ok {
			t.Fatalf("trial %d: accepted %d but true distance %d", trial, got, want)
		}
	}
}

func TestStringIndependence(t *testing.T) {
	// One automaton instance must serve many different string pairs with
	// no reconfiguration — the property LA lacks (§II).
	a := New(4)
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		x := randSeq(r, 20+r.Intn(20))
		y := mutate(r, x, r.Intn(4))
		want := sw.EditDistance(x, y)
		got, ok := a.Distance(x, y)
		if want <= 4 && (!ok || got != want) {
			t.Fatalf("reuse trial %d failed: %d,%v want %d", trial, got, ok, want)
		}
	}
}

func TestCollapsedEquals3D(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for _, k := range []int{0, 1, 2, 3, 5} {
		a := New(k)
		for trial := 0; trial < 150; trial++ {
			x := randSeq(r, r.Intn(25))
			y := mutate(r, x, r.Intn(k+2))
			d2, ok2 := a.Distance(x, y)
			d3, ok3 := Distance3D(x, y, k)
			if ok2 != ok3 || (ok2 && d2 != d3) {
				t.Fatalf("k=%d: collapsed (%d,%v) != 3D (%d,%v) for x=%v y=%v", k, d2, ok2, d3, ok3, x, y)
			}
		}
	}
}

// indel oracle: minimum insertions+deletions = n + m - 2*LCS.
func indelDistanceDP(a, b dna.Seq) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return n + m - 2*prev[m]
}

func TestIndelDistanceMatchesLCS(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for _, k := range []int{0, 1, 2, 4, 8} {
		a := New(k)
		for trial := 0; trial < 150; trial++ {
			x := randSeq(r, r.Intn(20))
			y := mutate(r, x, r.Intn(k+2))
			want := indelDistanceDP(x, y)
			got, ok := a.IndelDistance(x, y)
			if want <= k {
				if !ok || got != want {
					t.Fatalf("k=%d: indel Silla %d,%v; LCS oracle %d (x=%v y=%v)", k, got, ok, want, x, y)
				}
			} else if ok {
				t.Fatalf("k=%d: accepted %d but oracle %d > k", k, got, want)
			}
		}
	}
}

func TestNumStates(t *testing.T) {
	// §III-C: 3(K+1)²/2 collapsed vs (K+1)³/2 for 3D.
	if got := New(2).NumStates(); got != 13 { // 3*9/2 = 13 (integer division)
		t.Errorf("NumStates(K=2) = %d", got)
	}
	if got := New(40).NumStates(); got != 3*41*41/2 {
		t.Errorf("NumStates(K=40) = %d", got)
	}
	if got := NumStates3D(40); got != 41*41*41/2 {
		t.Errorf("NumStates3D(40) = %d", got)
	}
	if NumStates3D(40) <= New(40).NumStates() {
		t.Error("3D must be larger than collapsed")
	}
}

func TestTraceRecordsActivity(t *testing.T) {
	a := New(3)
	a.Trace = &Trace{}
	x := dna.MustParseSeq("ACGTACGT")
	y := dna.MustParseSeq("ACGAACGT")
	if _, ok := a.Distance(x, y); !ok {
		t.Fatal("distance failed")
	}
	if len(a.Trace.ActivePerCycle) == 0 {
		t.Fatal("no trace recorded")
	}
	if a.Trace.ActivePerCycle[0] != 1 {
		t.Errorf("cycle 0 active = %d, want 1 (start state only)", a.Trace.ActivePerCycle[0])
	}
}

func TestNewPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestDistanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	a := New(6)
	f := func(n, e uint8) bool {
		x := randSeq(r, int(n)%40)
		y := mutate(r, x, int(e)%8)
		want := sw.EditDistance(x, y)
		got, ok := a.Distance(x, y)
		if want <= 6 {
			return ok && got == want
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
