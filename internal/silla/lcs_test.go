package silla

import (
	"math/rand"
	"testing"
)

func lcsDP[T comparable](a, b []T) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func TestLCSLenBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abc", "abc", 3},
		{"abcde", "ace", 3},
		{"aggtab", "gxtxayb", 4},
		{"abc", "def", 0},
		{"xyx", "yxy", 2},
	}
	for _, c := range cases {
		if got := LCSLen([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("LCSLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSLenAgainstDP(t *testing.T) {
	r := rand.New(rand.NewSource(38))
	for trial := 0; trial < 200; trial++ {
		a := make([]byte, r.Intn(40))
		for i := range a {
			a[i] = byte('a' + r.Intn(4))
		}
		b := make([]byte, r.Intn(40))
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		want := lcsDP(a, b)
		if got := LCSLen(a, b); got != want {
			t.Fatalf("trial %d: LCSLen(%q,%q) = %d, want %d", trial, a, b, got, want)
		}
	}
}

func TestLCSLenSimilarStringsAreCheap(t *testing.T) {
	// Doubling means similar strings finish at small K.
	r := rand.New(rand.NewSource(39))
	a := make([]byte, 500)
	for i := range a {
		a[i] = byte('a' + r.Intn(4))
	}
	b := append([]byte(nil), a...)
	b[100] = 'z'
	if got := LCSLen(a, b); got != 499 {
		t.Errorf("near-identical LCS = %d, want 499", got)
	}
}
