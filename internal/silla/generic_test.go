package silla

import (
	"math/rand"
	"testing"
)

func TestDistanceOfMatchesDNASilla(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	for _, k := range []int{0, 1, 3, 6} {
		a := New(k)
		for trial := 0; trial < 150; trial++ {
			x := randSeq(r, r.Intn(30))
			y := mutate(r, x, r.Intn(k+2))
			d1, ok1 := a.Distance(x, y)
			d2, ok2 := DistanceOf(x, y, k)
			if ok1 != ok2 || (ok1 && d1 != d2) {
				t.Fatalf("k=%d: generic (%d,%v) != dna (%d,%v)", k, d2, ok2, d1, ok1)
			}
		}
	}
}

func TestDistanceStrings(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		want int
		ok   bool
	}{
		{"kitten", "sitting", 3, 3, true},
		{"kitten", "sitting", 2, 0, false},
		{"flaw", "lawn", 2, 2, true},
		{"", "", 0, 0, true},
		{"abc", "abc", 0, 0, true},
		{"intention", "execution", 5, 5, true},
		{"spell", "spel", 1, 1, true},
	}
	for _, c := range cases {
		got, ok := DistanceStrings(c.a, c.b, c.k)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("DistanceStrings(%q,%q,%d) = %d,%v; want %d,%v", c.a, c.b, c.k, got, ok, c.want, c.ok)
		}
	}
}

func TestDistanceOfRunes(t *testing.T) {
	a := []rune("héllo wörld")
	b := []rune("hello world")
	if d, ok := DistanceOf(a, b, 3); !ok || d != 2 {
		t.Errorf("rune distance = %d,%v; want 2,true", d, ok)
	}
}

func TestDistanceOfAgainstDP(t *testing.T) {
	// Random byte strings over a larger alphabet than DNA.
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(20)
		a := make([]byte, n)
		for i := range a {
			a[i] = byte('a' + r.Intn(6))
		}
		b := make([]byte, r.Intn(20))
		for i := range b {
			b[i] = byte('a' + r.Intn(6))
		}
		// DP oracle via the dna edit distance is alphabet-agnostic; use a
		// simple local DP here instead.
		want := editDP(a, b)
		got, ok := DistanceOf(a, b, 8)
		if want <= 8 {
			if !ok || got != want {
				t.Fatalf("trial %d: got %d,%v want %d (a=%q b=%q)", trial, got, ok, want, a, b)
			}
		} else if ok {
			t.Fatalf("trial %d: accepted %d but true %d", trial, got, want)
		}
	}
}

func editDP(a, b []byte) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			c := prev[j-1]
			if a[i-1] != b[j-1] {
				c++
			}
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
