// Package silla implements Silla, the String Independent Local Levenshtein
// Automaton of §III — the paper's core algorithmic contribution.
//
// Unlike a classical Levenshtein automaton (package la), whose K*N states
// encode positions of one fixed pattern, a Silla state (i,d) encodes only
// the number of insertions and deletions taken so far. The automaton is
// driven by retro comparisons: at cycle c, state (i,d) compares R[c-i] with
// Q[c-d] (the indel offsets realign the two cursors). One automaton
// therefore processes any pair of strings ("string independent"), has only
// O(K²) states, and every transition is between physically adjacent states
// ("local") — the properties the SillaX hardware (package sillax) builds on.
//
// Substitutions are handled with the collapsed-3D construction of §III-C:
// a second layer counts one substitution and a wait state merges the
// two-substitution case into state (i+1,d+1) of the first layer one cycle
// later, because both have the same total edit count and the same relative
// indel offset.
package silla

import "genax/internal/dna"

// Automaton is a Silla instance for a fixed maximum edit distance K.
// Scratch state is reused between calls, so an Automaton is not safe for
// concurrent use; allocate one per goroutine (they are small: O(K²)).
type Automaton struct {
	k int
	// Activation grids, flattened (K+1)x(K+1), indexed i*(k+1)+d.
	// layer0: zero recorded substitutions on the current parity;
	// layer1: one pending substitution; wait: the collapse buffer.
	layer0, layer1, wait []bool
	next0, next1, nextW  []bool
	// activeStates accumulates per-cycle active state counts when
	// tracing is enabled (used by the ablation benches).
	Trace *Trace
}

// Trace optionally records per-cycle activity for analysis.
type Trace struct {
	// ActivePerCycle[c] is the number of active states (all layers) at
	// the start of cycle c.
	ActivePerCycle []int
}

// New returns a Silla automaton with edit bound k >= 0.
func New(k int) *Automaton {
	if k < 0 {
		panic("silla: negative edit bound")
	}
	n := (k + 1) * (k + 1)
	return &Automaton{
		k:      k,
		layer0: make([]bool, n), layer1: make([]bool, n), wait: make([]bool, n),
		next0: make([]bool, n), next1: make([]bool, n), nextW: make([]bool, n),
	}
}

// K returns the edit bound.
func (a *Automaton) K() int { return a.k }

// NumStates returns the total number of automaton states, 3(K+1)²/2 per
// §III-C (regular states in two layers plus wait states, each a triangle
// of (K+1)²/2).
func (a *Automaton) NumStates() int { return 3 * (a.k + 1) * (a.k + 1) / 2 }

// NumStates3D returns the state count of the uncollapsed 3D Silla,
// (K+1)³/2, for the ablation comparison of §III-B.
func NumStates3D(k int) int { return (k + 1) * (k + 1) * (k + 1) / 2 }

func (a *Automaton) clear() {
	for i := range a.layer0 {
		a.layer0[i], a.layer1[i], a.wait[i] = false, false, false
		a.next0[i], a.next1[i], a.nextW[i] = false, false, false
	}
}

// Distance computes the Levenshtein distance between r and q. It reports
// ok=false when the distance exceeds K, in which case dist is unspecified.
func (a *Automaton) Distance(r, q dna.Seq) (dist int, ok bool) {
	k := a.k
	n, m := len(r), len(q)
	if diff := n - m; diff > k || -diff > k {
		return 0, false
	}
	a.clear()
	if a.Trace != nil {
		a.Trace.ActivePerCycle = a.Trace.ActivePerCycle[:0]
	}
	w := k + 1
	a.layer0[0] = true
	// Acceptance for state (i,d) happens at cycle c with c-i == n and
	// c-d == m; the last possible acceptance is at c = n + k.
	maxCycle := n + k
	if m+k > maxCycle {
		maxCycle = m + k
	}
	for c := 0; c <= maxCycle; c++ {
		if a.Trace != nil {
			count := 0
			for idx := range a.layer0 {
				if a.layer0[idx] {
					count++
				}
				if a.layer1[idx] {
					count++
				}
				if a.wait[idx] {
					count++
				}
			}
			a.Trace.ActivePerCycle = append(a.Trace.ActivePerCycle, count)
		}
		// Acceptance check: the unique candidate this cycle.
		ai, ad := c-n, c-m
		if ai >= 0 && ai <= k && ad >= 0 && ad <= k {
			idx := ai*w + ad
			if a.layer0[idx] {
				return ai + ad, ai+ad <= k
			}
			if a.layer1[idx] {
				return ai + ad + 1, ai+ad+1 <= k
			}
		}
		// Transition step.
		anyNext := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d <= k-i; d++ {
				idx := i*w + d
				l0, l1, wt := a.layer0[idx], a.layer1[idx], a.wait[idx]
				if !l0 && !l1 && !wt {
					continue
				}
				if wt {
					// Wait state fires into (i+1,d+1) of layer 0.
					if i+1 <= k && d+1 <= k && i+d+2 <= k {
						a.next0[(i+1)*w+d+1] = true
						anyNext = true
					}
				}
				if !l0 && !l1 {
					continue
				}
				qdPos := c - d
				match := riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < m && r[riPos] == q[qdPos]
				if match {
					if l0 {
						a.next0[idx] = true
					}
					if l1 {
						a.next1[idx] = true
					}
					anyNext = true
					continue
				}
				if l0 {
					if i+d+1 <= k {
						if i+1 <= k {
							a.next0[(i+1)*w+d] = true // insertion
						}
						if d+1 <= k {
							a.next0[i*w+d+1] = true // deletion
						}
						a.next1[idx] = true // substitution into layer 1
						anyNext = true
					}
				}
				if l1 {
					if i+d+2 <= k {
						if i+1 <= k {
							a.next1[(i+1)*w+d] = true
						}
						if d+1 <= k {
							a.next1[i*w+d+1] = true
						}
						a.nextW[idx] = true // second substitution: wait, then merge
						anyNext = true
					}
				}
			}
		}
		a.layer0, a.next0 = a.next0, a.layer0
		a.layer1, a.next1 = a.next1, a.layer1
		a.wait, a.nextW = a.nextW, a.wait
		for i := range a.next0 {
			a.next0[i], a.next1[i], a.nextW[i] = false, false, false
		}
		if !anyNext {
			break
		}
	}
	return 0, false
}

// IndelDistance computes the minimum number of insertions plus deletions
// aligning r and q when substitutions are forbidden — the indel Silla of
// §III-A with (K+1)²/2 states. It reports ok=false above the bound.
func (a *Automaton) IndelDistance(r, q dna.Seq) (dist int, ok bool) {
	k := a.k
	n, m := len(r), len(q)
	if diff := n - m; diff > k || -diff > k {
		return 0, false
	}
	a.clear()
	w := k + 1
	a.layer0[0] = true
	maxCycle := n + k
	if m+k > maxCycle {
		maxCycle = m + k
	}
	for c := 0; c <= maxCycle; c++ {
		ai, ad := c-n, c-m
		if ai >= 0 && ai <= k && ad >= 0 && ad <= k && a.layer0[ai*w+ad] {
			return ai + ad, true
		}
		anyNext := false
		for i := 0; i <= k; i++ {
			for d := 0; d <= k-i; d++ {
				idx := i*w + d
				if !a.layer0[idx] {
					continue
				}
				riPos, qdPos := c-i, c-d
				if riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < m && r[riPos] == q[qdPos] {
					a.next0[idx] = true
					anyNext = true
					continue
				}
				if i+d+1 <= k {
					if i+1 <= k {
						a.next0[(i+1)*w+d] = true
					}
					if d+1 <= k {
						a.next0[i*w+d+1] = true
					}
					anyNext = true
				}
			}
		}
		a.layer0, a.next0 = a.next0, a.layer0
		for i := range a.next0 {
			a.next0[i] = false
		}
		if !anyNext {
			break
		}
	}
	return 0, false
}
