package silla

// DistanceOf runs the collapsed-3D Silla over any comparable alphabet —
// the §VIII-C observation that Silla generalizes beyond genomics (spell
// correction, longest-common-subsequence-style problems): nothing in the
// automaton depends on the alphabet, only retro-comparison equality.
// It reports the edit distance between r and q when it is at most k.
func DistanceOf[T comparable](r, q []T, k int) (dist int, ok bool) {
	if k < 0 {
		panic("silla: negative edit bound")
	}
	n, m := len(r), len(q)
	if diff := n - m; diff > k || -diff > k {
		return 0, false
	}
	w := k + 1
	sz := w * w
	layer0 := make([]bool, sz)
	layer1 := make([]bool, sz)
	wait := make([]bool, sz)
	next0 := make([]bool, sz)
	next1 := make([]bool, sz)
	nextW := make([]bool, sz)
	layer0[0] = true
	maxCycle := n + k
	if m+k > maxCycle {
		maxCycle = m + k
	}
	for c := 0; c <= maxCycle; c++ {
		ai, ad := c-n, c-m
		if ai >= 0 && ai <= k && ad >= 0 && ad <= k {
			idx := ai*w + ad
			if layer0[idx] {
				return ai + ad, true
			}
			if layer1[idx] {
				return ai + ad + 1, ai+ad+1 <= k
			}
		}
		anyNext := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d+i <= k; d++ {
				idx := i*w + d
				l0, l1, wt := layer0[idx], layer1[idx], wait[idx]
				if !l0 && !l1 && !wt {
					continue
				}
				if wt && i+d+2 <= k {
					next0[(i+1)*w+d+1] = true
					anyNext = true
				}
				if !l0 && !l1 {
					continue
				}
				qdPos := c - d
				match := riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < m && r[riPos] == q[qdPos]
				if match {
					if l0 {
						next0[idx] = true
					}
					if l1 {
						next1[idx] = true
					}
					anyNext = true
					continue
				}
				if l0 && i+d+1 <= k {
					if i+1 <= k {
						next0[(i+1)*w+d] = true
					}
					if d+1 <= k {
						next0[i*w+d+1] = true
					}
					next1[idx] = true
					anyNext = true
				}
				if l1 && i+d+2 <= k {
					if i+1 <= k {
						next1[(i+1)*w+d] = true
					}
					if d+1 <= k {
						next1[i*w+d+1] = true
					}
					nextW[idx] = true
					anyNext = true
				}
			}
		}
		layer0, next0 = next0, layer0
		layer1, next1 = next1, layer1
		wait, nextW = nextW, wait
		for i := range next0 {
			next0[i], next1[i], nextW[i] = false, false, false
		}
		if !anyNext {
			break
		}
	}
	return 0, false
}

// DistanceStrings is DistanceOf over the bytes of two strings.
func DistanceStrings(a, b string, k int) (int, bool) {
	return DistanceOf([]byte(a), []byte(b), k)
}
