package silla

// LCSLen computes the length of the longest common subsequence of r and q
// — the §VIII-C extension: the indel-only Silla computes the indel
// distance D, and LCS = (|r| + |q| − D) / 2. The automaton is run with a
// doubling edit bound until the distance fits, so the cost adapts to how
// similar the strings are (O(N·D²) total work).
func LCSLen[T comparable](r, q []T) int {
	n, m := len(r), len(q)
	if n == 0 || m == 0 {
		return 0
	}
	lo := n - m
	if lo < 0 {
		lo = -lo
	}
	k := lo
	if k == 0 {
		k = 1
	}
	for {
		if d, ok := indelDistanceOf(r, q, k); ok {
			return (n + m - d) / 2
		}
		if k >= n+m {
			return 0
		}
		k *= 2
		if k > n+m {
			k = n + m
		}
	}
}

// indelDistanceOf is the generic indel-only Silla (§III-A).
func indelDistanceOf[T comparable](r, q []T, k int) (int, bool) {
	n, m := len(r), len(q)
	if diff := n - m; diff > k || -diff > k {
		return 0, false
	}
	w := k + 1
	cur := make([]bool, w*w)
	next := make([]bool, w*w)
	cur[0] = true
	maxCycle := n + k
	if m+k > maxCycle {
		maxCycle = m + k
	}
	for c := 0; c <= maxCycle; c++ {
		ai, ad := c-n, c-m
		if ai >= 0 && ai <= k && ad >= 0 && ad <= k && cur[ai*w+ad] {
			return ai + ad, true
		}
		anyNext := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d+i <= k; d++ {
				idx := i*w + d
				if !cur[idx] {
					continue
				}
				qdPos := c - d
				if riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < m && r[riPos] == q[qdPos] {
					next[idx] = true
					anyNext = true
					continue
				}
				if i+d+1 <= k {
					if i+1 <= k {
						next[(i+1)*w+d] = true
					}
					if d+1 <= k {
						next[i*w+d+1] = true
					}
					anyNext = true
				}
			}
		}
		cur, next = next, cur
		for i := range next {
			next[i] = false
		}
		if !anyNext {
			break
		}
	}
	return 0, false
}
