package silla

import "genax/internal/dna"

// Distance3D computes the bounded edit distance with the explicit
// three-dimensional Silla of §III-B, where the third axis counts
// substitutions directly: state (i,d,s) has edit count i+d+s and uses the
// same retro comparison as state (i,d). It exists to demonstrate (and test)
// that the collapsed two-layer construction of §III-C is exactly
// equivalent while needing only 3(K+1)²/2 states instead of (K+1)³/2.
func Distance3D(r, q dna.Seq, k int) (dist int, ok bool) {
	if k < 0 {
		panic("silla: negative edit bound")
	}
	n, m := len(r), len(q)
	if diff := n - m; diff > k || -diff > k {
		return 0, false
	}
	w := k + 1
	sz := w * w * w
	cur := make([]bool, sz)
	next := make([]bool, sz)
	at := func(i, d, s int) int { return (i*w+d)*w + s }
	cur[0] = true
	maxCycle := n + k
	if m+k > maxCycle {
		maxCycle = m + k
	}
	// Unlike the collapsed automaton, acceptance at a later cycle can
	// carry a smaller total (more indels but far fewer substitutions), so
	// we must scan every acceptance cycle and keep the minimum.
	best := k + 1
	for c := 0; c <= maxCycle; c++ {
		ai, ad := c-n, c-m
		if ai >= 0 && ai <= k && ad >= 0 && ad <= k {
			for s := 0; ai+ad+s <= k; s++ {
				if cur[at(ai, ad, s)] && ai+ad+s < best {
					best = ai + ad + s
					break
				}
			}
		}
		anyNext := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d+i <= k; d++ {
				qdPos := c - d
				match := riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < m && r[riPos] == q[qdPos]
				for s := 0; i+d+s <= k; s++ {
					if !cur[at(i, d, s)] {
						continue
					}
					if match {
						next[at(i, d, s)] = true
						anyNext = true
						continue
					}
					if i+d+s+1 <= k {
						if i+1 <= k {
							next[at(i+1, d, s)] = true
						}
						if d+1 <= k {
							next[at(i, d+1, s)] = true
						}
						next[at(i, d, s+1)] = true
						anyNext = true
					}
				}
			}
		}
		cur, next = next, cur
		for i := range next {
			next[i] = false
		}
		if !anyNext && best > k {
			break
		}
	}
	if best <= k {
		return best, true
	}
	return 0, false
}
