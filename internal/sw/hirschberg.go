package sw

import (
	"fmt"

	"genax/internal/align"
	"genax/internal/dna"
)

// Hirschberg computes an optimal global alignment with traceback in
// linear space by divide and conquer — the algorithm §VIII-C cites as the
// software route to O(K)-space traceback ("Hirschberg's algorithm reduces
// space to O(K), but increases time"), against which SillaX's O(K²)-space
// in-place traceback is positioned. As in Hirschberg's original
// formulation, gap costs are linear (per-base, no opening charge):
// construct it with a Scoring whose GapOpen is zero.
type Hirschberg struct {
	sc align.Scoring
	// rows of scratch reused across calls (not concurrency-safe).
	fwd, bwd, tmp []int32
}

// NewHirschberg returns a linear-space global aligner. It panics if the
// scoring scheme has a non-zero gap-open cost, which plain Hirschberg
// cannot split exactly (that requires Myers-Miller boundary bookkeeping).
func NewHirschberg(sc align.Scoring) *Hirschberg {
	if sc.GapOpen != 0 {
		panic(fmt.Sprintf("sw: Hirschberg requires linear gap costs, got open=%d", sc.GapOpen))
	}
	return &Hirschberg{sc: sc}
}

// Align returns an optimal global alignment of query against ref in
// O(len(query)) space (beyond the output trace).
func (hb *Hirschberg) Align(ref, query dna.Seq) align.Result {
	cig := hb.solve(ref, query)
	return align.Result{Score: cig.Score(hb.sc), Cigar: cig}
}

// lastRow fills dst with the final NW row of ref x query under linear
// gap costs.
func (hb *Hirschberg) lastRow(ref, query dna.Seq, dst []int32) {
	gap := int32(hb.sc.GapExtend)
	match := int32(hb.sc.Match)
	mismatch := int32(hb.sc.Mismatch)
	m := len(query)
	for j := 0; j <= m; j++ {
		dst[j] = -gap * int32(j)
	}
	for i := 1; i <= len(ref); i++ {
		diag := dst[0]
		dst[0] = -gap * int32(i)
		for j := 1; j <= m; j++ {
			var sub int32
			if ref[i-1] == query[j-1] {
				sub = diag + match
			} else {
				sub = diag - mismatch
			}
			best := sub
			if v := dst[j] - gap; v > best { // deletion (consume ref)
				best = v
			}
			if v := dst[j-1] - gap; v > best { // insertion (consume query)
				best = v
			}
			diag = dst[j]
			dst[j] = best
		}
	}
}

func (hb *Hirschberg) solve(ref, query dna.Seq) align.Cigar {
	n, m := len(ref), len(query)
	var out align.Cigar
	switch {
	case n == 0:
		return out.Append(align.OpIns, m)
	case m == 0:
		return out.Append(align.OpDel, n)
	case n == 1:
		return hb.solveBase(ref[0], query)
	}
	mid := n / 2
	if cap(hb.fwd) < m+1 {
		hb.fwd = make([]int32, m+1)
		hb.bwd = make([]int32, m+1)
	}
	fwd := hb.fwd[:m+1]
	bwd := hb.bwd[:m+1]
	hb.lastRow(ref[:mid], query, fwd)
	hb.lastRow(ref[mid:].Reverse(), query.Reverse(), bwd)
	bestJ := 0
	best := int32(-1 << 30)
	for j := 0; j <= m; j++ {
		if s := fwd[j] + bwd[m-j]; s > best {
			best, bestJ = s, j
		}
	}
	// The recursion reuses the scratch rows, so split before descending.
	left := hb.solve(ref[:mid], query[:bestJ])
	right := hb.solve(ref[mid:], query[bestJ:])
	return left.Concat(right)
}

// solveBase aligns a single reference base against the query optimally.
func (hb *Hirschberg) solveBase(r dna.Base, query dna.Seq) align.Cigar {
	gap := hb.sc.GapExtend
	// Aligning ref to query[at] replaces one deletion and one insertion
	// with a diagonal step: gain = s(at) + 2*gap over deleting the base.
	bestAt, bestGain := -1, 0
	for at, q := range query {
		var gain int
		if q == r {
			gain = hb.sc.Match + 2*gap
		} else {
			gain = -hb.sc.Mismatch + 2*gap
		}
		if gain > bestGain {
			bestAt, bestGain = at, gain
		}
	}
	var out align.Cigar
	if bestAt < 0 {
		out = out.Append(align.OpDel, 1)
		return out.Append(align.OpIns, len(query))
	}
	out = out.Append(align.OpIns, bestAt)
	if query[bestAt] == r {
		out = out.Append(align.OpMatch, 1)
	} else {
		out = out.Append(align.OpMismatch, 1)
	}
	return out.Append(align.OpIns, len(query)-bestAt-1)
}
