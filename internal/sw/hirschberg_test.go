package sw

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
)

func linearScoring() align.Scoring {
	return align.Scoring{Match: 1, Mismatch: 4, GapOpen: 0, GapExtend: 2}
}

func TestHirschbergPanicsOnAffine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("affine scoring accepted")
		}
	}()
	NewHirschberg(align.BWAMEMDefaults())
}

func TestHirschbergMatchesGotoh(t *testing.T) {
	sc := linearScoring()
	hb := NewHirschberg(sc)
	full := NewAligner(sc)
	r := rand.New(rand.NewSource(26))
	for trial := 0; trial < 300; trial++ {
		ref := randSeq(r, r.Intn(60))
		query := mutate(r, ref, r.Intn(8))
		want := full.Align(ref, query, Global)
		got := hb.Align(ref, query)
		if got.Score != want.Score {
			t.Fatalf("trial %d: Hirschberg %d, Gotoh %d (ref=%v query=%v)", trial, got.Score, want.Score, ref, query)
		}
		if err := got.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("trial %d: invalid cigar %v: %v", trial, got.Cigar, err)
		}
		if got.Cigar.RefLen() != len(ref) {
			t.Fatalf("trial %d: global cigar consumes %d/%d ref bases", trial, got.Cigar.RefLen(), len(ref))
		}
	}
}

func TestHirschbergUnitEditDistance(t *testing.T) {
	hb := NewHirschberg(align.Unit())
	r := rand.New(rand.NewSource(27))
	for trial := 0; trial < 150; trial++ {
		a := randSeq(r, r.Intn(50))
		b := randSeq(r, r.Intn(50))
		got := hb.Align(a, b)
		if want := -EditDistance(a, b); got.Score != want {
			t.Fatalf("trial %d: score %d, want %d", trial, got.Score, want)
		}
	}
}

func TestHirschbergLongStringsLinearSpace(t *testing.T) {
	// The point of the algorithm: a 20k x 20k alignment would need 400M
	// DP cells with quadratic-space traceback; here only rows are kept.
	sc := linearScoring()
	hb := NewHirschberg(sc)
	r := rand.New(rand.NewSource(28))
	ref := randSeq(r, 20000)
	query := mutate(r, ref, 40)
	res := hb.Align(ref, query)
	if err := res.Cigar.Validate(ref, query); err != nil {
		t.Fatalf("invalid cigar: %v", err)
	}
	if res.Cigar.Score(sc) != res.Score {
		t.Fatal("rescore mismatch")
	}
	if res.Score < 20000-40*(1+4+2+2) {
		t.Errorf("score %d implausibly low for 40 edits", res.Score)
	}
}

func TestHirschbergEdgeCases(t *testing.T) {
	hb := NewHirschberg(linearScoring())
	if got := hb.Align(dna.Seq{}, dna.Seq{}); got.Score != 0 || len(got.Cigar) != 0 {
		t.Errorf("empty-empty: %+v", got)
	}
	if got := hb.Align(dna.MustParseSeq("ACGT"), dna.Seq{}); got.Cigar.String() != "4D" {
		t.Errorf("empty query: %v", got.Cigar)
	}
	if got := hb.Align(dna.Seq{}, dna.MustParseSeq("AC")); got.Cigar.String() != "2I" {
		t.Errorf("empty ref: %v", got.Cigar)
	}
	if got := hb.Align(dna.MustParseSeq("G"), dna.MustParseSeq("G")); got.Cigar.String() != "1=" {
		t.Errorf("single match: %v", got.Cigar)
	}
}
