package sw

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

// mutate returns a copy of s with roughly e random edits applied.
func mutate(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		if len(out) == 0 {
			out = append(out, dna.Base(r.Intn(4)))
			continue
		}
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0: // substitution
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1: // insertion
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		case 2: // deletion
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func TestEditDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "ACGT", 4},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"ACGT", "AGT", 1},
		{"ACGT", "AACGT", 1},
		{"AAAA", "TTTT", 4},
		{"GCTAGC", "CTAGCG", 2},
	}
	for _, c := range cases {
		got := EditDistance(dna.MustParseSeq(c.a), dna.MustParseSeq(c.b))
		if got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		a := randSeq(r, r.Intn(40))
		b := mutate(r, a, r.Intn(6))
		if d1, d2 := EditDistance(a, b), EditDistance(b, a); d1 != d2 {
			t.Fatalf("asymmetric: %d vs %d for %v %v", d1, d2, a, b)
		}
	}
}

func TestMyersMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	lengths := []int{0, 1, 2, 63, 64, 65, 100, 127, 128, 129, 200}
	for _, n := range lengths {
		for trial := 0; trial < 10; trial++ {
			a := randSeq(r, n)
			b := mutate(r, a, r.Intn(10))
			want := EditDistance(a, b)
			if got := MyersDistance(a, b); got != want {
				t.Fatalf("MyersDistance len=%d trial=%d: got %d, want %d", n, trial, got, want)
			}
		}
	}
}

func TestMyersRandomPairs(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		a := randSeq(r, r.Intn(150))
		b := randSeq(r, r.Intn(150))
		if got, want := MyersDistance(a, b), EditDistance(a, b); got != want {
			t.Fatalf("trial %d: Myers %d, DP %d (|a|=%d |b|=%d)", trial, got, want, len(a), len(b))
		}
	}
}

func TestMyersBounded(t *testing.T) {
	a := dna.MustParseSeq("ACGTACGT")
	b := dna.MustParseSeq("ACGAACGA")
	if d, ok := MyersBounded(a, b, 2); !ok || d != 2 {
		t.Errorf("MyersBounded = %d, %v; want 2, true", d, ok)
	}
	if _, ok := MyersBounded(a, b, 1); ok {
		t.Error("MyersBounded accepted distance above bound")
	}
}

func TestBandedEditDistanceMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		a := randSeq(r, 20+r.Intn(60))
		b := mutate(r, a, r.Intn(8))
		want := EditDistance(a, b)
		for _, k := range []int{1, 2, 4, 8, 16} {
			got, ok := BandedEditDistance(a, b, k)
			if want <= k {
				if !ok || got != want {
					t.Fatalf("trial %d k=%d: got %d,%v want %d,true", trial, k, got, ok, want)
				}
			} else if ok && got < want {
				t.Fatalf("trial %d k=%d: banded reported %d below true distance %d", trial, k, got, want)
			}
		}
	}
}

func TestBandedEditDistanceLengthGap(t *testing.T) {
	a := randSeq(rand.New(rand.NewSource(14)), 30)
	b := a[:10]
	if _, ok := BandedEditDistance(a, b, 5); ok {
		t.Error("length difference 20 accepted with k=5")
	}
	if d, ok := BandedEditDistance(a, b, 20); !ok || d != 20 {
		t.Errorf("got %d,%v want 20,true", d, ok)
	}
}

// enumerateGlobal exhaustively scores every global alignment of ref[ri:] vs
// query[qi:]; prev is the preceding op for affine-gap accounting. It is the
// independent oracle for the Gotoh implementation (exponential, tiny inputs
// only).
func enumerateGlobal(ref, query dna.Seq, ri, qi int, prev align.Op, sc align.Scoring) int {
	if ri == len(ref) && qi == len(query) {
		return 0
	}
	best := -1 << 29
	if ri < len(ref) && qi < len(query) {
		var step int
		if ref[ri] == query[qi] {
			step = sc.Match
		} else {
			step = -sc.Mismatch
		}
		if v := step + enumerateGlobal(ref, query, ri+1, qi+1, align.OpMatch, sc); v > best {
			best = v
		}
	}
	if qi < len(query) {
		cost := sc.GapExtend
		if prev != align.OpIns {
			cost += sc.GapOpen
		}
		if v := -cost + enumerateGlobal(ref, query, ri, qi+1, align.OpIns, sc); v > best {
			best = v
		}
	}
	if ri < len(ref) {
		cost := sc.GapExtend
		if prev != align.OpDel {
			cost += sc.GapOpen
		}
		if v := -cost + enumerateGlobal(ref, query, ri+1, qi, align.OpDel, sc); v > best {
			best = v
		}
	}
	return best
}

// enumerateExtend is the oracle for Extend mode: best global score over all
// prefix pairs (clipping), never below zero (empty extension).
func enumerateExtend(ref, query dna.Seq, sc align.Scoring) int {
	best := 0
	for ri := 0; ri <= len(ref); ri++ {
		for qi := 0; qi <= len(query); qi++ {
			if v := enumerateGlobal(ref[:ri], query[:qi], 0, 0, 0, sc); v > best {
				best = v
			}
		}
	}
	return best
}

func TestGlobalAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	for trial := 0; trial < 150; trial++ {
		ref := randSeq(r, r.Intn(7))
		query := randSeq(r, r.Intn(7))
		want := enumerateGlobal(ref, query, 0, 0, 0, sc)
		res := al.Align(ref, query, Global)
		if res.Score != want {
			t.Fatalf("trial %d: Global score %d, oracle %d (ref=%v query=%v)", trial, res.Score, want, ref, query)
		}
		if err := res.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("trial %d: invalid cigar %v: %v", trial, res.Cigar, err)
		}
		if got := res.Cigar.Score(sc); got != want {
			t.Fatalf("trial %d: cigar rescore %d != %d (cigar %v)", trial, got, want, res.Cigar)
		}
	}
}

func TestExtendAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	for trial := 0; trial < 120; trial++ {
		ref := randSeq(r, r.Intn(7))
		query := randSeq(r, r.Intn(7))
		want := enumerateExtend(ref, query, sc)
		res := al.Align(ref, query, Extend)
		if res.Score != want {
			t.Fatalf("trial %d: Extend score %d, oracle %d (ref=%v query=%v)", trial, res.Score, want, ref, query)
		}
		if err := res.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("trial %d: invalid cigar %v: %v", trial, res.Cigar, err)
		}
	}
}

func TestGlobalUnitScoringIsEditDistance(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	al := NewAligner(align.Unit())
	for trial := 0; trial < 100; trial++ {
		a := randSeq(r, r.Intn(30))
		b := mutate(r, a, r.Intn(5))
		res := al.Align(a, b, Global)
		if want := -EditDistance(a, b); res.Score != want {
			t.Fatalf("unit global score %d, want %d", res.Score, want)
		}
	}
}

func TestLocalAlignment(t *testing.T) {
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	ref := dna.MustParseSeq("TTTTTACGTACGTTTTT")
	query := dna.MustParseSeq("GGACGTACGTGG")
	res := al.Align(ref, query, Local)
	if res.Score != 8 {
		t.Errorf("local score = %d, want 8", res.Score)
	}
	if res.RefPos != 5 {
		t.Errorf("local RefPos = %d, want 5", res.RefPos)
	}
	if err := res.Cigar.Validate(ref[res.RefPos:], query); err != nil {
		t.Errorf("invalid local cigar %v: %v", res.Cigar, err)
	}
	if res.Cigar.String() != "2S8=2S" {
		t.Errorf("local cigar = %v, want 2S8=2S", res.Cigar)
	}
}

func TestExtendClipsPoorTail(t *testing.T) {
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	ref := dna.MustParseSeq("ACGTACGTAAAAAAAA")
	query := dna.MustParseSeq("ACGTACGTTTTTTTTT")
	res := al.Align(ref, query, Extend)
	if res.Score != 8 {
		t.Errorf("score = %d, want 8", res.Score)
	}
	if res.Cigar.String() != "8=8S" {
		t.Errorf("cigar = %v, want 8=8S", res.Cigar)
	}
}

func TestAlignerScratchReuse(t *testing.T) {
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	r := rand.New(rand.NewSource(18))
	big := randSeq(r, 80)
	al.Align(big, mutate(r, big, 4), Global)
	// A smaller alignment after a bigger one must still be correct.
	a := dna.MustParseSeq("ACGT")
	res := al.Align(a, a, Global)
	if res.Score != 4 || res.Cigar.String() != "4=" {
		t.Errorf("after reuse: %v", res)
	}
}

func TestAlignEmptyInputs(t *testing.T) {
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	q := dna.MustParseSeq("ACG")
	res := al.Align(dna.Seq{}, q, Extend)
	if res.Score != 0 || res.Cigar.String() != "3S" {
		t.Errorf("empty-ref extend = %v", res)
	}
	res = al.Align(q, dna.Seq{}, Global)
	if res.Score != -(sc.GapOpen + 3*sc.GapExtend) {
		t.Errorf("empty-query global score = %d", res.Score)
	}
	res = al.Align(dna.Seq{}, dna.Seq{}, Global)
	if res.Score != 0 || len(res.Cigar) != 0 {
		t.Errorf("empty-empty = %v", res)
	}
}
