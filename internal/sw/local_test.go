package sw

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
)

// enumerateLocal is the exhaustive Smith-Waterman oracle: the best global
// score over every substring pair (zero for the empty alignment).
func enumerateLocal(ref, query dna.Seq, sc align.Scoring) int {
	best := 0
	for rs := 0; rs <= len(ref); rs++ {
		for re := rs; re <= len(ref); re++ {
			for qs := 0; qs <= len(query); qs++ {
				for qe := qs; qe <= len(query); qe++ {
					if v := enumerateGlobal(ref[rs:re], query[qs:qe], 0, 0, 0, sc); v > best {
						best = v
					}
				}
			}
		}
	}
	return best
}

func TestLocalAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	for trial := 0; trial < 60; trial++ {
		ref := randSeq(r, r.Intn(6))
		query := randSeq(r, r.Intn(6))
		want := enumerateLocal(ref, query, sc)
		res := al.Align(ref, query, Local)
		if res.Score != want {
			t.Fatalf("trial %d: Local %d, oracle %d (ref=%v query=%v)", trial, res.Score, want, ref, query)
		}
		if err := res.Cigar.Validate(ref[res.RefPos:], query); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLocalFindsEmbeddedMatchWithIndel(t *testing.T) {
	sc := align.BWAMEMDefaults()
	al := NewAligner(sc)
	ref := dna.MustParseSeq("TTTTTTACGTACGGGACGTACGTTTTTT")
	// query matches ref[6:23] with the GG deleted.
	query := dna.MustParseSeq("CCACGTACGGACGTACGCC")
	res := al.Align(ref, query, Local)
	if err := res.Cigar.Validate(ref[res.RefPos:], query); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if res.Cigar.Score(sc) != res.Score {
		t.Fatalf("rescore mismatch")
	}
	if res.Score < 8 {
		t.Errorf("score %d too low for a 15-base embedded match", res.Score)
	}
}
