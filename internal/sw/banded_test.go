package sw

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
)

func TestBandedExtendMatchesFullExtend(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	sc := align.BWAMEMDefaults()
	full := NewAligner(sc)
	for _, k := range []int{8, 16, 32} {
		banded := NewBandedAligner(sc, k)
		for trial := 0; trial < 100; trial++ {
			query := randSeq(r, 30+r.Intn(70))
			ref := mutate(r, query, r.Intn(5))
			want := full.Align(ref, query, Extend)
			got := banded.Extend(ref, query)
			// With few edits the optimum stays inside the band, so the
			// scores must agree exactly.
			if got.Score != want.Score {
				t.Fatalf("k=%d trial=%d: banded score %d, full %d", k, trial, got.Score, want.Score)
			}
			if err := got.Cigar.Validate(ref, query); err != nil {
				t.Fatalf("k=%d trial=%d: invalid cigar %v: %v", k, trial, got.Cigar, err)
			}
			if got.Cigar.Score(sc) != got.Score {
				t.Fatalf("k=%d trial=%d: cigar rescore %d != score %d", k, trial, got.Cigar.Score(sc), got.Score)
			}
		}
	}
}

func TestBandedExtendAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	sc := align.BWAMEMDefaults()
	banded := NewBandedAligner(sc, 6)
	for trial := 0; trial < 100; trial++ {
		ref := randSeq(r, r.Intn(7))
		query := randSeq(r, r.Intn(7))
		want := enumerateExtend(ref, query, sc)
		got := banded.Extend(ref, query)
		if got.Score != want {
			t.Fatalf("trial %d: banded %d, oracle %d (ref=%v query=%v)", trial, got.Score, want, ref, query)
		}
	}
}

func TestBandedExtendPerfectMatch(t *testing.T) {
	sc := align.BWAMEMDefaults()
	banded := NewBandedAligner(sc, 4)
	s := dna.MustParseSeq("ACGTACGTACGT")
	res := banded.Extend(s, s)
	if res.Score != 12 || res.Cigar.String() != "12=" {
		t.Errorf("perfect match: %v", res)
	}
}

func TestBandedExtendNarrowBandClips(t *testing.T) {
	// A 6-base insertion cannot fit in a band of radius 2; the aligner
	// must still return a valid (clipped or mismatched) alignment rather
	// than stepping outside the band.
	sc := align.BWAMEMDefaults()
	banded := NewBandedAligner(sc, 2)
	ref := dna.MustParseSeq("AAAACCCC")
	query := dna.MustParseSeq("AAAAGGGGGGCCCC")
	res := banded.Extend(ref, query)
	if err := res.Cigar.Validate(ref, query); err != nil {
		t.Fatalf("invalid cigar %v: %v", res.Cigar, err)
	}
	if res.Cigar.Score(sc) != res.Score {
		t.Fatalf("score mismatch: cigar %d vs %d", res.Cigar.Score(sc), res.Score)
	}
}

func TestBandedAlignerMinimumBand(t *testing.T) {
	ba := NewBandedAligner(align.BWAMEMDefaults(), 0)
	if ba.Band() != 1 {
		t.Errorf("Band() = %d, want clamp to 1", ba.Band())
	}
}

func TestBandedScratchReuse(t *testing.T) {
	sc := align.BWAMEMDefaults()
	ba := NewBandedAligner(sc, 8)
	r := rand.New(rand.NewSource(22))
	big := randSeq(r, 200)
	ba.Extend(big, mutate(r, big, 3))
	s := dna.MustParseSeq("ACGT")
	res := ba.Extend(s, s)
	if res.Score != 4 || res.Cigar.String() != "4=" {
		t.Errorf("after reuse: %v", res)
	}
}
