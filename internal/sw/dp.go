// Package sw implements the software approximate-string-matching baselines
// the paper compares against (§II, §VII, §VIII-C): full Smith-Waterman with
// affine gaps and traceback (Gotoh), a banded variant, and Myers' bit-vector
// edit distance. These serve three roles: CPU baselines for the Fig 14/15
// benchmarks, components of the BWA-MEM-like software pipeline, and oracles
// for the Silla/SillaX property tests.
package sw

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// Mode selects the boundary conditions of the affine-gap DP.
type Mode int

const (
	// Global aligns all of both sequences (Needleman-Wunsch / Gotoh).
	Global Mode = iota
	// Local finds the best-scoring pair of substrings (Smith-Waterman);
	// unaligned query ends are reported as soft clips.
	Local
	// Extend anchors both sequences at position 0 and maximizes the
	// score over every prefix pair — BWA-MEM's seed-extension step with
	// clipping (§IV-B): the best score seen anywhere wins and the
	// remaining query suffix is soft-clipped.
	Extend
)

// negInf is a sentinel low enough to never win a max but far from
// overflowing when penalties are subtracted from it.
const negInf = -1 << 29

// matrix identifiers for traceback.
const (
	matH = iota // match/mismatch (closed) state
	matI        // gap in reference (insertion: extra query base)
	matD        // gap in query (deletion: missing query base)
)

// Aligner runs affine-gap dynamic programming with traceback. The zero
// value is not usable; construct with NewAligner. Scratch buffers are
// reused across calls, so an Aligner is not safe for concurrent use.
type Aligner struct {
	sc align.Scoring
	// DP rows (query-major: row i covers ref prefix length i).
	h, e, f []int32
	// Traceback: from[m][idx] encodes, for matrix m at cell idx, which
	// matrix the optimal predecessor lives in (2 bits each).
	fromH, fromI, fromD []uint8
	cols                int
}

// NewAligner returns an Aligner for the given scoring scheme.
func NewAligner(sc align.Scoring) *Aligner {
	return &Aligner{sc: sc}
}

// Align aligns query against ref under the given mode and returns the best
// alignment with a full edit trace.
func (a *Aligner) Align(ref, query dna.Seq, mode Mode) align.Result {
	n, m := len(ref), len(query)
	cols := n + 1
	rows := m + 1
	size := cols * rows
	if cap(a.h) < size {
		a.h = make([]int32, size)
		a.e = make([]int32, size)
		a.f = make([]int32, size)
		a.fromH = make([]uint8, size)
		a.fromI = make([]uint8, size)
		a.fromD = make([]uint8, size)
	}
	a.cols = cols
	h, e, f := a.h[:size], a.e[:size], a.f[:size]
	fromH, fromI, fromD := a.fromH[:size], a.fromI[:size], a.fromD[:size]

	open := int32(a.sc.GapOpen + a.sc.GapExtend)
	ext := int32(a.sc.GapExtend)
	match := int32(a.sc.Match)
	mismatch := int32(a.sc.Mismatch)

	// Boundary conditions. Row index q = query prefix length, column
	// index r = ref prefix length. e = gap-in-ref (consumes query,
	// vertical in this layout), f = gap-in-query (consumes ref).
	idx := func(q, r int) int { return q*cols + r }
	h[0] = 0
	e[0], f[0] = negInf, negInf
	for r := 1; r <= n; r++ {
		i := idx(0, r)
		e[i] = negInf
		f[i] = -open - ext*int32(r-1)
		switch mode {
		case Local:
			h[i] = 0
		default:
			h[i] = f[i]
		}
		fromH[i] = matD
		fromD[i] = matD
	}
	for q := 1; q <= m; q++ {
		i := idx(q, 0)
		f[i] = negInf
		e[i] = -open - ext*int32(q-1)
		switch mode {
		case Local:
			h[i] = 0
		default:
			h[i] = e[i]
		}
		fromH[i] = matI
		fromI[i] = matI
	}

	bestScore := int32(negInf)
	bestQ, bestR := 0, 0
	if mode == Local || mode == Extend {
		bestScore = 0
	}
	for q := 1; q <= m; q++ {
		qb := query[q-1]
		rowi := idx(q, 0)
		prowi := idx(q-1, 0)
		for r := 1; r <= n; r++ {
			i := rowi + r
			up := rowi + r - 1 // (q, r-1): left neighbour (consumes ref)
			diag := prowi + r - 1
			vert := prowi + r // (q-1, r): consumes query

			// e: gap in reference (insertion). Extends from above.
			eo := h[vert] - open
			ee := e[vert] - ext
			if eo >= ee {
				e[i], fromI[i] = eo, matH
			} else {
				e[i], fromI[i] = ee, matI
			}
			// f: gap in query (deletion). Extends from the left.
			fo := h[up] - open
			fe := f[up] - ext
			if fo >= fe {
				f[i], fromD[i] = fo, matH
			} else {
				f[i], fromD[i] = fe, matD
			}
			// h: diagonal step plus best of the three states.
			var sub int32
			if ref[r-1] == qb {
				sub = h[diag] + match
			} else {
				sub = h[diag] - mismatch
			}
			hv, from := sub, uint8(matH)
			if e[i] > hv {
				hv, from = e[i], matI
			}
			if f[i] > hv {
				hv, from = f[i], matD
			}
			if mode == Local && hv < 0 {
				hv, from = 0, matH
			}
			h[i], fromH[i] = hv, from
			if mode == Local || mode == Extend {
				if hv > bestScore {
					bestScore, bestQ, bestR = hv, q, r
				}
			}
		}
	}
	if mode == Global {
		bestScore, bestQ, bestR = h[idx(m, n)], m, n
	}
	return a.traceback(ref, query, mode, int(bestScore), bestQ, bestR)
}

// traceback reconstructs the edit trace ending at cell (bq, br) in matrix H.
func (a *Aligner) traceback(ref, query dna.Seq, mode Mode, score, bq, br int) align.Result {
	cols := a.cols
	var rev align.Cigar
	if tail := len(query) - bq; tail > 0 && mode != Global {
		rev = rev.Append(align.OpClip, tail)
	}
	q, r := bq, br
	mat := matH
	for q > 0 || r > 0 {
		i := q*cols + r
		if mode == Local && mat == matH && a.h[i] == 0 {
			break
		}
		switch mat {
		case matH:
			if q == 0 {
				mat = matD
				continue
			}
			if r == 0 {
				mat = matI
				continue
			}
			from := a.fromH[i]
			if from == matH {
				if ref[r-1] == query[q-1] {
					rev = rev.Append(align.OpMatch, 1)
				} else {
					rev = rev.Append(align.OpMismatch, 1)
				}
				q--
				r--
			} else {
				mat = int(from)
			}
		case matI:
			rev = rev.Append(align.OpIns, 1)
			from := a.fromI[i]
			q--
			mat = int(from)
		case matD:
			rev = rev.Append(align.OpDel, 1)
			from := a.fromD[i]
			r--
			mat = int(from)
		}
	}
	if mode == Local && q > 0 {
		rev = rev.Append(align.OpClip, q)
	}
	cig := rev.Reverse()
	return align.Result{RefPos: r, Score: score, Cigar: cig}
}

// EditDistance computes the plain Levenshtein distance by full dynamic
// programming — the O(N²) oracle everything else is validated against.
func EditDistance(a, b dna.Seq) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			c := prev[j-1]
			if a[i-1] != b[j-1] {
				c++
			}
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
