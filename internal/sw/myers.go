package sw

import "genax/internal/dna"

// MyersDistance computes the global Levenshtein distance between a and b
// with Myers' bit-vector algorithm [Myers 1999, ref 15 of the paper],
// generalized to arbitrary pattern lengths with Hyyrö's block scheme.
// It runs in O(|a| * ceil(|b|/64)) time and is the strongest software
// edit-distance baseline available to short-read aligners.
func MyersDistance(a, b dna.Seq) int {
	m := len(b)
	if m == 0 {
		return len(a)
	}
	if len(a) == 0 {
		return m
	}
	nblk := (m + 63) / 64
	// peq[blk][base]: bitmask of pattern positions within the block that
	// hold the base.
	peq := make([][dna.NumBases]uint64, nblk)
	for j, base := range b {
		peq[j/64][base] |= 1 << uint(j%64)
	}
	pv := make([]uint64, nblk)
	mv := make([]uint64, nblk)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	lastBits := uint(m - (nblk-1)*64) // rows used in the final block
	scoreBit := uint64(1) << (lastBits - 1)

	score := m
	for _, ca := range a {
		hin := 1 // global alignment: row 0 increases by one per column
		for blk := 0; blk < nblk; blk++ {
			eq := peq[blk][ca]
			pvb, mvb := pv[blk], mv[blk]
			xv := eq | mvb
			if hin < 0 {
				eq |= 1
			}
			xh := (((eq & pvb) + pvb) ^ pvb) | eq
			ph := mvb | ^(xh | pvb)
			mh := pvb & xh
			var top uint64 = 1 << 63
			if blk == nblk-1 {
				top = scoreBit
			}
			hout := 0
			if ph&top != 0 {
				hout = 1
			} else if mh&top != 0 {
				hout = -1
			}
			ph <<= 1
			mh <<= 1
			if hin > 0 {
				ph |= 1
			} else if hin < 0 {
				mh |= 1
			}
			pv[blk] = mh | ^(xv | ph)
			mv[blk] = ph & xv
			hin = hout
		}
		score += hin
	}
	return score
}

// MyersBounded reports whether the edit distance of a and b is at most k,
// and the distance when it is. It simply delegates to MyersDistance — the
// bit-vector cost is already length-linear — but gives callers the same
// (dist, ok) contract as BandedEditDistance.
func MyersBounded(a, b dna.Seq, k int) (int, bool) {
	d := MyersDistance(a, b)
	if d > k {
		return 0, false
	}
	return d, true
}
