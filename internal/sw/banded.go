package sw

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// BandedEditDistance computes the Levenshtein distance between a and b
// restricted to a diagonal band of radius k (Ukkonen). It reports ok=false
// when the distance exceeds k, in which case dist is unspecified.
func BandedEditDistance(a, b dna.Seq, k int) (dist int, ok bool) {
	n, m := len(a), len(b)
	if diff := n - m; diff > k || -diff > k {
		return 0, false
	}
	width := 2*k + 1
	const inf = 1 << 29
	prev := make([]int, width)
	cur := make([]int, width)
	// Row i covers a-prefix length i; band column c maps to j = i + c - k.
	for c := range prev {
		if j := c - k; j >= 0 && j <= m && j <= k {
			prev[c] = j
		} else {
			prev[c] = inf
		}
	}
	for i := 1; i <= n; i++ {
		for c := 0; c < width; c++ {
			j := i + c - k
			if j < 0 || j > m {
				cur[c] = inf
				continue
			}
			if j == 0 {
				cur[c] = i
				continue
			}
			best := inf
			if prev[c] < inf { // diagonal: (i-1, j-1)
				d := prev[c]
				if a[i-1] != b[j-1] {
					d++
				}
				best = d
			}
			if c+1 < width && prev[c+1] < inf { // up: (i-1, j) deletion from a
				if d := prev[c+1] + 1; d < best {
					best = d
				}
			}
			if c-1 >= 0 && cur[c-1] < inf { // left: (i, j-1) insertion
				if d := cur[c-1] + 1; d < best {
					best = d
				}
			}
			cur[c] = best
		}
		prev, cur = cur, prev
	}
	d := prev[m-n+k]
	if d > k {
		return 0, false
	}
	return d, true
}

// BandedAligner runs the banded affine-gap extension DP — the "banded
// Smith-Waterman" that BWA-MEM and the paper's SeqAn CPU baseline use
// (§VIII-C: O(KN) time, 2K+1 band around the principal diagonal).
// Scratch buffers are reused; not safe for concurrent use.
type BandedAligner struct {
	sc    align.Scoring
	band  int
	h     []int32
	e     []int32
	f     []int32
	fromH []uint8
	fromI []uint8
	fromD []uint8
	cells int
}

// NewBandedAligner returns a banded aligner with band radius k (the band
// covers diagonals |q-r| <= k).
func NewBandedAligner(sc align.Scoring, k int) *BandedAligner {
	if k < 1 {
		k = 1
	}
	return &BandedAligner{sc: sc, band: k}
}

// Band returns the band radius.
func (ba *BandedAligner) Band() int { return ba.band }

// Cells returns the number of DP cells the last Extend call computed —
// the banded aligner's work unit, the software analogue of the Silla
// machines' cycle counts.
func (ba *BandedAligner) Cells() int { return ba.cells }

// Extend performs anchored extension (mode Extend of Aligner) inside the
// band: both sequences anchored at 0, best prefix-pair score wins, query
// suffix soft-clipped. It is the software twin of the SillaX scoring
// machine and the per-hit kernel of the BWA-MEM-like baseline.
func (ba *BandedAligner) Extend(ref, query dna.Seq) align.Result {
	n, m := len(ref), len(query)
	k := ba.band
	width := 2*k + 1
	rows := m + 1
	size := rows * width
	if cap(ba.h) < size {
		ba.h = make([]int32, size)
		ba.e = make([]int32, size)
		ba.f = make([]int32, size)
		ba.fromH = make([]uint8, size)
		ba.fromI = make([]uint8, size)
		ba.fromD = make([]uint8, size)
	}
	h, e, f := ba.h[:size], ba.e[:size], ba.f[:size]
	fromH, fromI, fromD := ba.fromH[:size], ba.fromI[:size], ba.fromD[:size]

	open := int32(ba.sc.GapOpen + ba.sc.GapExtend)
	ext := int32(ba.sc.GapExtend)
	match := int32(ba.sc.Match)
	mismatch := int32(ba.sc.Mismatch)

	// Cell (q, r) lives at row q, band column c = r - q + k.
	at := func(q, c int) int { return q*width + c }
	for i := range h[:size] {
		h[i], e[i], f[i] = negInf, negInf, negInf
	}
	cells := 0
	// Row 0: r from 0..min(n,k).
	for r := 0; r <= n && r <= k; r++ {
		cells++
		i := at(0, r+k)
		if r == 0 {
			h[i] = 0
		} else {
			f[i] = -open - ext*int32(r-1)
			h[i] = f[i]
			fromH[i] = matD
			fromD[i] = matD
		}
	}
	bestScore := int32(0)
	bestQ, bestC := 0, k
	for q := 1; q <= m; q++ {
		lo, hi := q-k, q+k
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if hi >= lo {
			cells += hi - lo + 1
		}
		for r := lo; r <= hi; r++ {
			c := r - q + k
			i := at(q, c)
			if r == 0 {
				ev := -open - ext*int32(q-1)
				e[i] = ev
				h[i] = ev
				fromH[i] = matI
				fromI[i] = matI
				continue
			}
			// e (insertion, consumes query): from (q-1, r) = row q-1, col c+1.
			e[i] = negInf
			if c+1 < width {
				vi := at(q-1, c+1)
				eo, ee := h[vi]-open, e[vi]-ext
				if eo >= ee {
					e[i], fromI[i] = eo, matH
				} else {
					e[i], fromI[i] = ee, matI
				}
			}
			// f (deletion, consumes ref): from (q, r-1) = row q, col c-1.
			f[i] = negInf
			if c-1 >= 0 {
				li := at(q, c-1)
				fo, fe := h[li]-open, f[li]-ext
				if fo >= fe {
					f[i], fromD[i] = fo, matH
				} else {
					f[i], fromD[i] = fe, matD
				}
			}
			// diagonal: (q-1, r-1) = row q-1, same col.
			di := at(q-1, c)
			var sub int32 = negInf
			if h[di] > negInf {
				if ref[r-1] == query[q-1] {
					sub = h[di] + match
				} else {
					sub = h[di] - mismatch
				}
			}
			hv, from := sub, uint8(matH)
			if e[i] > hv {
				hv, from = e[i], matI
			}
			if f[i] > hv {
				hv, from = f[i], matD
			}
			h[i], fromH[i] = hv, from
			if hv > bestScore {
				bestScore, bestQ, bestC = hv, q, c
			}
		}
	}
	ba.cells = cells
	return ba.traceback(ref, query, int(bestScore), bestQ, bestC)
}

func (ba *BandedAligner) traceback(ref, query dna.Seq, score, bq, bc int) align.Result {
	k := ba.band
	width := 2*k + 1
	var rev align.Cigar
	if tail := len(query) - bq; tail > 0 {
		rev = rev.Append(align.OpClip, tail)
	}
	q, c := bq, bc
	mat := matH
	for {
		r := q + c - k
		if q == 0 && r == 0 {
			break
		}
		i := q*width + c
		switch mat {
		case matH:
			if q == 0 {
				mat = matD
				continue
			}
			if r == 0 {
				mat = matI
				continue
			}
			from := ba.fromH[i]
			if from == matH {
				if ref[r-1] == query[q-1] {
					rev = rev.Append(align.OpMatch, 1)
				} else {
					rev = rev.Append(align.OpMismatch, 1)
				}
				q-- // diagonal: same band column
			} else {
				mat = int(from)
			}
		case matI:
			rev = rev.Append(align.OpIns, 1)
			from := ba.fromI[i]
			q--
			c++
			mat = int(from)
		case matD:
			rev = rev.Append(align.OpDel, 1)
			from := ba.fromD[i]
			c--
			mat = int(from)
		}
	}
	return align.Result{RefPos: 0, Score: score, Cigar: rev.Reverse()}
}
