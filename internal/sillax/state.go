package sillax

import "genax/internal/align"

// Neg is the exported "register empty" value shared by every Silla-style
// machine (including the bit-parallel engine in internal/bitsilla, which
// must agree bit for bit with the cycle model's empty-register compares).
const Neg = neg

// Costs is the integer decomposition of an align.Scoring as the machines
// consume it: match reward A, substitution penalty B, and the delayed-
// merging affine pair where Open already includes the first extension
// (a gap of length L costs Open + (L-1)*Ext).
type Costs struct {
	A, B, Open, Ext int32
}

// NewCosts decomposes sc into machine costs.
func NewCosts(sc align.Scoring) Costs {
	return Costs{
		A:    int32(sc.Match),
		B:    int32(sc.Mismatch),
		Open: int32(sc.GapOpen + sc.GapExtend),
		Ext:  int32(sc.GapExtend),
	}
}

// StreamCycles is the streaming-phase bound for ref length n and query
// length qn under edit bound k: past max(n,qn)+k nothing new can be
// consumed and the i+d<=k triangle caps how long states may still drift,
// so every live state is covered.
func StreamCycles(n, qn, k int) int {
	mc := n + k
	if qn+k > mc {
		mc = qn + k
	}
	return mc
}
