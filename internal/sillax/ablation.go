package sillax

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// NaiveMergeExtend is the ablation for §IV-B's delayed merging (Fig 8): a
// scoring machine whose PEs keep a single score register per state and
// merge open and closed gap paths by raw score in the same cycle. Because
// the register forgets whether the resident path has an open gap, the
// machine must guess a gap state when it branches; this variant assumes
// the resident path is closed and always pays the gap-open penalty.
// Whenever an open path with a lower current score would have overtaken a
// closed one on the next extension (the Fig 8 scenario), this machine
// under-scores — the tests exhibit concrete witnesses and the Extend
// result is NOT guaranteed to equal the affine-gap optimum.
func NaiveMergeExtend(ref, query dna.Seq, k int, sc align.Scoring) int {
	if k < 0 {
		panic("sillax: negative edit bound")
	}
	w := k + 1
	sz := w * w
	mk := func() []int32 {
		s := make([]int32, sz)
		for i := range s {
			s[i] = neg
		}
		return s
	}
	// One register per state and layer — no separate open-gap latches.
	cur0, cur1, wt := mk(), mk(), mk()
	nxt0, nxt1, nwt := mk(), mk(), mk()
	cur0[0] = 0
	a := int32(sc.Match)
	b := int32(sc.Mismatch)
	open := int32(sc.GapOpen + sc.GapExtend)

	best := int32(0)
	n, qn := len(ref), len(query)
	maxCycle := n + k
	if qn+k > maxCycle {
		maxCycle = qn + k
	}
	for c := 0; c <= maxCycle; c++ {
		any := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d+i <= k; d++ {
				idx := i*w + d
				if wv := wt[idx]; wv > neg {
					ti := (i+1)*w + d + 1
					if wv > nxt0[ti] {
						nxt0[ti] = wv
						any = true
					}
				}
				qdPos := c - d
				match := riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < qn && ref[riPos] == query[qdPos]
				for layer := 0; layer < 2; layer++ {
					var v int32
					var nxt []int32
					if layer == 0 {
						v, nxt = cur0[idx], nxt0
					} else {
						v, nxt = cur1[idx], nxt1
					}
					if v == neg {
						continue
					}
					any = true
					if match {
						if nv := v + a; nv > nxt[idx] {
							nxt[idx] = nv
							if nv > best {
								best = nv
							}
						}
					} else {
						if layer == 0 && i+d+1 <= k {
							if nv := v - b; nv > nxt1[idx] {
								nxt1[idx] = nv
								if nv > best {
									best = nv
								}
							}
						} else if layer == 1 && i+d+2 <= k {
							if nv := v - b; nv > nwt[idx] {
								nwt[idx] = nv
							}
						}
					}
					// Gap branches: with one register the machine cannot
					// tell open from closed paths, so it always charges a
					// fresh gap open — the information delayed merging
					// preserves.
					if i+1+d+layer <= k {
						if nv := v - open; nv > nxt[(i+1)*w+d] {
							nxt[(i+1)*w+d] = nv
						}
					}
					if i+d+1+layer <= k {
						if nv := v - open; nv > nxt[idx+1] {
							nxt[idx+1] = nv
						}
					}
				}
			}
		}
		cur0, nxt0 = nxt0, cur0
		cur1, nxt1 = nxt1, cur1
		wt, nwt = nwt, wt
		for i := range nxt0 {
			nxt0[i], nxt1[i], nwt[i] = neg, neg, neg
		}
		if !any {
			break
		}
	}
	return int(best)
}
