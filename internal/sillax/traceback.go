package sillax

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// tnode is one step of a pointer trail. Nodes are immutable and shared
// between paths, mirroring how the hardware chases 2-bit pointers: each
// node remembers which state wrote it and when, so the model can detect
// exactly the "broken pointer trail" events of §IV-C (a state's best
// register overwritten after the winning path left it).
type tnode struct {
	prev  *tnode
	op    align.Op
	state int32 // state id: (i*w+d)*2 + layer
	cycle int32 // cycle at which the register became live
	score int32
}

// treg is a score register with its trail.
type treg struct {
	v  int32
	nd *tnode
}

// nodeArena block-allocates trail nodes; Extend churns through hundreds of
// thousands per read, and the arena is reset (not freed) between calls.
// Nodes are therefore only valid until the next Extend.
type nodeArena struct {
	blocks [][]tnode
	n      int
}

const arenaBlock = 1 << 14

func (a *nodeArena) alloc(nd tnode) *tnode {
	bi, off := a.n/arenaBlock, a.n%arenaBlock
	if bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]tnode, arenaBlock))
	}
	p := &a.blocks[bi][off]
	*p = nd
	a.n++
	return p
}

// TracebackResult is the outcome of one traced seed extension.
type TracebackResult struct {
	// Score is the best clipped extension score.
	Score int
	// Cigar is the full edit trace including the trailing soft clip.
	Cigar align.Cigar
	// QueryLen and RefLen are the consumed prefix lengths.
	QueryLen, RefLen int
	// Cycles is the architectural cycle count over all five phases,
	// including re-execution after broken pointer trails.
	Cycles int
	// ReRuns is how many times the machine had to re-execute phase one
	// because a greedy state had overwritten part of the winning trail.
	ReRuns int
	// ReRunCycles is the total cycles spent in those re-executions.
	ReRunCycles int
}

// TracebackMachine extends the scoring machine with in-place traceback
// (§IV-C): every PE keeps a 2-bit pointer, a compressed match count, its
// best score and the cycle its best path left, and the controller re-runs
// the string phase when a pointer trail turns out to be broken.
//
// Not safe for concurrent use; allocate one per lane.
type TracebackMachine struct {
	k  int
	w  int
	sc align.Scoring

	m0, i0, d0    []treg
	m1, i1, d1    []treg
	wt            []treg
	nm0, ni0, nd0 []treg
	nm1, ni1, nd1 []treg
	nwt           []treg

	// Per-state pointer bookkeeping, indexed by state id. stBest is the
	// best score the state has seen (its clipping register); stPtrEdge is
	// its 2-bit traceback pointer — the edge of the last *incoming* score
	// accepted as best (§IV-C). Self-match growth raises stBest but
	// leaves the pointer alone. A trail entry is broken when the stored
	// pointer no longer names the edge the winning path arrived by;
	// same-edge overwrites are indel-placement ties that reconstruct an
	// equally-scoring alignment (the tie-break variance of §VIII-A).
	stBest    []int32
	stPtrEdge []align.Op

	// Cycles of the last Extend call (all five phases plus re-runs).
	Cycles int

	// lastBest retains the winning trail head of the last Extend call for
	// white-box tests; it is invalidated by the next Extend.
	lastBest *tnode

	arena nodeArena
	// revBuf is the reusable phase-5 walk buffer; the reported Cigar is a
	// fresh reversal of it, so results stay valid across Extend calls.
	revBuf align.Cigar
	// emptyRegs/emptyBest are prototype empty register files: clearing by
	// copy is a memmove, which the per-cycle next-register wipe and reset
	// both lean on — the grids hold (K+1)² entries and K=40 makes an
	// element-wise clear a real fraction of Extend's runtime.
	emptyRegs []treg
	emptyBest []int32
}

// NewTracebackMachine builds a traceback machine with edit bound k.
func NewTracebackMachine(k int, sc align.Scoring) *TracebackMachine {
	if k < 0 {
		panic("sillax: negative edit bound")
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	w := k + 1
	n := w * w
	mk := func() []treg { return make([]treg, n) }
	m := &TracebackMachine{
		k: k, w: w, sc: sc,
		m0: mk(), i0: mk(), d0: mk(), m1: mk(), i1: mk(), d1: mk(), wt: mk(),
		nm0: mk(), ni0: mk(), nd0: mk(), nm1: mk(), ni1: mk(), nd1: mk(), nwt: mk(),
		stBest:    make([]int32, 2*n),
		stPtrEdge: make([]align.Op, 2*n),
		emptyRegs: make([]treg, n),
		emptyBest: make([]int32, 2*n),
	}
	for i := range m.emptyRegs {
		m.emptyRegs[i] = treg{v: neg}
	}
	for i := range m.emptyBest {
		m.emptyBest[i] = neg
	}
	return m
}

// K returns the edit bound.
func (m *TracebackMachine) K() int { return m.k }

func (m *TracebackMachine) reset() {
	for _, regs := range [][]treg{
		m.m0, m.i0, m.d0, m.m1, m.i1, m.d1, m.wt,
		m.nm0, m.ni0, m.nd0, m.nm1, m.ni1, m.nd1, m.nwt,
	} {
		copy(regs, m.emptyRegs)
	}
	copy(m.stBest, m.emptyBest)
	clear(m.stPtrEdge)
	m.m0[0] = treg{v: 0}
	m.Cycles = 0
	m.arena.n = 0
}

//genax:hotpath
func best3(a, b, c treg) treg {
	r := a
	if b.v > r.v {
		r = b
	}
	if c.v > r.v {
		r = c
	}
	return r
}

// Extend runs a traced seed extension of query against ref, both anchored
// at position 0, with clipping.
//
//genax:hotpath
func (m *TracebackMachine) Extend(ref, query dna.Seq) TracebackResult {
	k, w := m.k, m.w
	n, qn := len(ref), len(query)
	m.reset()
	cs := NewCosts(m.sc)
	a, b, open, ext := cs.A, cs.B, cs.Open, cs.Ext

	var bestNode *tnode
	best := int32(0)
	bestI, bestD, bestCycle := 0, 0, 0

	maxCycle := StreamCycles(n, qn, k)
	for c := 0; c <= maxCycle; c++ {
		any := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d+i <= k; d++ {
				idx := i*w + d
				if wv := m.wt[idx]; wv.v > neg {
					ti := (i+1)*w + d + 1
					if wv.v > m.nm0[ti].v {
						m.nm0[ti] = wv
						m.noteBest(int32(ti*2), wv.v, align.OpMismatch, true)
						any = true
					}
				}
				qdPos := c - d
				match := riPos >= 0 && riPos < n && qdPos >= 0 && qdPos < qn && ref[riPos] == query[qdPos]
				for layer := 0; layer < 2; layer++ {
					var mv, iv, dv treg
					var nm, ni, nd []treg
					if layer == 0 {
						mv, iv, dv = m.m0[idx], m.i0[idx], m.d0[idx]
						nm, ni, nd = m.nm0, m.ni0, m.nd0
					} else {
						mv, iv, dv = m.m1[idx], m.i1[idx], m.d1[idx]
						nm, ni, nd = m.nm1, m.ni1, m.nd1
					}
					if mv.v == neg && iv.v == neg && dv.v == neg {
						continue
					}
					any = true
					top := best3(mv, iv, dv)
					sid := int32(idx*2 + layer)
					if match {
						v := top.v + a
						if v > nm[idx].v {
							nm[idx] = treg{v: v, nd: m.arena.alloc(tnode{prev: top.nd, op: align.OpMatch, state: sid, cycle: int32(c + 1), score: v})}
							m.noteBest(sid, v, align.OpMatch, false)
							if v > best {
								best, bestI, bestD, bestCycle = v, i, d, c+1
								bestNode = nm[idx].nd
							}
						}
					} else if top.v > neg {
						if layer == 0 {
							if i+d+1 <= k {
								v := top.v - b
								if v > m.nm1[idx].v {
									m.nm1[idx] = treg{v: v, nd: m.arena.alloc(tnode{prev: top.nd, op: align.OpMismatch, state: int32(idx*2 + 1), cycle: int32(c + 1), score: v})}
									m.noteBest(int32(idx*2+1), v, align.OpMismatch, true)
									if v > best {
										best, bestI, bestD, bestCycle = v, i, d, c+1
										bestNode = m.nm1[idx].nd
									}
								}
							}
						} else if i+d+2 <= k {
							v := top.v - b
							if v > m.nwt[idx].v {
								tid := int32(((i+1)*w + d + 1) * 2)
								m.nwt[idx] = treg{v: v, nd: m.arena.alloc(tnode{prev: top.nd, op: align.OpMismatch, state: tid, cycle: int32(c + 2), score: v})}
								if v > best {
									best, bestI, bestD, bestCycle = v, i+1, d+1, c+2
									bestNode = m.nwt[idx].nd
								}
							}
						}
					}
					if i+1+d+layer <= k {
						src := mv
						src.v -= open
						if dv.v-open > src.v {
							src = dv
							src.v = dv.v - open
						}
						if iv.v-ext > src.v {
							src = iv
							src.v = iv.v - ext
						}
						ti := (i+1)*w + d
						if src.v > ni[ti].v {
							ni[ti] = treg{v: src.v, nd: m.arena.alloc(tnode{prev: src.nd, op: align.OpIns, state: int32(ti*2 + layer), cycle: int32(c + 1), score: src.v})}
							m.noteBest(int32(ti*2+layer), src.v, align.OpIns, true)
						}
					}
					if i+d+1+layer <= k {
						src := mv
						src.v -= open
						if iv.v-open > src.v {
							src = iv
							src.v = iv.v - open
						}
						if dv.v-ext > src.v {
							src = dv
							src.v = dv.v - ext
						}
						ti := idx + 1
						if src.v > nd[ti].v {
							nd[ti] = treg{v: src.v, nd: m.arena.alloc(tnode{prev: src.nd, op: align.OpDel, state: int32(ti*2 + layer), cycle: int32(c + 1), score: src.v})}
							m.noteBest(int32(ti*2+layer), src.v, align.OpDel, true)
						}
					}
				}
			}
		}
		m.m0, m.nm0 = m.nm0, m.m0
		m.i0, m.ni0 = m.ni0, m.i0
		m.d0, m.nd0 = m.nd0, m.d0
		m.m1, m.nm1 = m.nm1, m.m1
		m.i1, m.ni1 = m.ni1, m.i1
		m.d1, m.nd1 = m.nd1, m.d1
		m.wt, m.nwt = m.nwt, m.wt
		copy(m.nm0, m.emptyRegs)
		copy(m.ni0, m.emptyRegs)
		copy(m.nd0, m.emptyRegs)
		copy(m.nm1, m.emptyRegs)
		copy(m.ni1, m.emptyRegs)
		copy(m.nd1, m.emptyRegs)
		copy(m.nwt, m.emptyRegs)
		if !any {
			break
		}
	}

	phase1 := maxCycle + 1
	res := TracebackResult{Score: int(best)}
	// Phase 5 walk: collect ops from the winner back to the origin,
	// detecting broken trails (§IV-C). A state's trail entry is broken
	// when its best register was overwritten after the winning path left
	// it; each break forces a re-run of phase one up to the departure
	// cycle of that greedy state.
	rev := m.revBuf[:0]
	if tail := qn - (bestCycle - bestD); best > 0 && tail > 0 {
		rev = rev.Append(align.OpClip, tail)
	} else if best == 0 {
		rev = rev.Append(align.OpClip, qn)
	}
	// Walking backward, the first node seen for a state is the visit's
	// departure, the last its arrival. The trail at a state is intact iff
	// the state's pointer still records this visit's arrival: changed
	// later (greedy overwrite) or never accepted (our arrival lost to an
	// older, then-better visit) both force a re-run up to the departure
	// cycle of that greedy state.
	var depCycle int32
	lastState := int32(-1)
	for nd := bestNode; nd != nil; nd = nd.prev {
		rev = rev.Append(nd.op, 1)
		if nd.state != lastState {
			depCycle = nd.cycle
			lastState = nd.state
		}
		arrival := nd.prev == nil || nd.prev.state != nd.state
		if arrival && nd.state != 0 && m.stPtrEdge[nd.state] != nd.op {
			res.ReRuns++
			rerun := int(depCycle)
			if rerun > phase1 {
				rerun = phase1
			}
			res.ReRunCycles += rerun
		}
	}
	m.lastBest = bestNode
	m.revBuf = rev
	res.Cigar = rev.Reverse()
	if best > 0 {
		res.QueryLen = bestCycle - bestD
		res.RefLen = bestCycle - bestI
	}
	res.Cycles = phase1 + 4*m.k + res.ReRunCycles
	m.Cycles = res.Cycles
	return res
}

// noteBest updates the per-state best register. incoming marks writes that
// arrive over an inter-state edge (gap step, substitution, wait delivery):
// only those move the state's traceback pointer; self-match growth raises
// the best score but the pointer — and the cycle register the controller
// uses to reconstruct match counts — stay tied to the same visit.
//
//genax:hotpath
func (m *TracebackMachine) noteBest(state, v int32, edge align.Op, incoming bool) {
	if v > m.stBest[state] {
		m.stBest[state] = v
		if incoming {
			m.stPtrEdge[state] = edge
		}
	}
}
