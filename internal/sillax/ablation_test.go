package sillax

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
)

func TestNaiveMergeUnderScoresLongGaps(t *testing.T) {
	// The Fig 8 scenario: a 3-base deletion costs open+3*extend = 9 under
	// proper affine accounting, but the naive single-register machine
	// pays a fresh open per base (3 * 7 = 21).
	sc := align.BWAMEMDefaults()
	ref := dna.MustParseSeq("ACGTACGTTTTACGTACGTACGT")
	query := dna.MustParseSeq("ACGTACGTACGTACGTACGT") // TTT deleted
	correct := NewScoringMachine(12, sc)
	want := correct.Extend(ref, query).Score
	if want != 20-9 {
		t.Fatalf("correct machine scored %d, want 11", want)
	}
	got := NaiveMergeExtend(ref, query, 12, sc)
	if got >= want {
		t.Fatalf("naive merge scored %d, not below the affine optimum %d — the ablation is vacuous", got, want)
	}
}

func TestNaiveMergeNeverOverscores(t *testing.T) {
	// Losing gap-state information can only lose score, never invent it.
	r := rand.New(rand.NewSource(74))
	sc := align.BWAMEMDefaults()
	correct := NewScoringMachine(10, sc)
	sawGap := false
	for trial := 0; trial < 200; trial++ {
		query := randSeq(r, 20+r.Intn(40))
		ref := mutate(r, query, r.Intn(5))
		want := correct.Extend(ref, query).Score
		got := NaiveMergeExtend(ref, query, 10, sc)
		if got > want {
			t.Fatalf("trial %d: naive %d above optimum %d", trial, got, want)
		}
		if got < want {
			sawGap = true
		}
	}
	if !sawGap {
		t.Error("no input separated naive from delayed merging in 200 trials")
	}
}

func TestNaiveMergeAgreesWithoutGaps(t *testing.T) {
	// On substitution-only alignments there are no gap states to confuse,
	// so both machines agree — isolating delayed merging as the cause.
	sc := align.BWAMEMDefaults()
	correct := NewScoringMachine(8, sc)
	r := rand.New(rand.NewSource(75))
	for trial := 0; trial < 100; trial++ {
		query := randSeq(r, 30+r.Intn(30))
		ref := query.Clone()
		for e := 0; e < r.Intn(4); e++ {
			p := r.Intn(len(ref))
			ref[p] = dna.Base((int(ref[p]) + 1 + r.Intn(3)) % 4)
		}
		want := correct.Extend(ref, query).Score
		got := NaiveMergeExtend(ref, query, 8, sc)
		if got != want {
			t.Fatalf("trial %d: substitution-only input separated the machines (%d vs %d)", trial, got, want)
		}
	}
}
