package sillax

import (
	"math/rand"
	"testing"
)

func TestComposeFourTilesDoubleK(t *testing.T) {
	// Fig 10: four triangles — one full square plus the forward triangles
	// of its right and lower neighbours — form a 2K+1 engine.
	ta := NewTileArray(4, 2) // baseK=4, 2x2 slots
	cm, err := ta.Compose(9) // 2*(4+1)-1
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	tiles := cm.Tiles()
	if len(tiles) != 4 {
		t.Fatalf("composed 2K engine uses %d triangles, want 4 (%v)", len(tiles), tiles)
	}
	want := map[string]bool{"(0,0)|0": true, "(0,0)|1": true, "(0,1)|0": true, "(1,0)|0": true}
	for _, id := range tiles {
		if !want[id.String()] {
			t.Errorf("unexpected tile %v", id)
		}
	}
	// The two remaining forward... flipped triangles stay free for
	// independent K engines.
	if free := ta.FreeTriangles(); free != 4 {
		t.Errorf("free triangles = %d, want 4", free)
	}
}

func TestComposedMatchesMonolithic(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	ta := NewTileArray(3, 2)
	cm, err := ta.Compose(7)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	mono := NewEditMachine(7)
	for trial := 0; trial < 200; trial++ {
		x := randSeq(r, r.Intn(40))
		y := mutate(r, x, r.Intn(9))
		d1, ok1 := cm.Distance(x, y)
		d2, ok2 := mono.Distance(x, y)
		if ok1 != ok2 || (ok1 && d1 != d2) {
			t.Fatalf("trial %d: composed (%d,%v) != monolithic (%d,%v)", trial, d1, ok1, d2, ok2)
		}
	}
	if cm.MuxCrossings == 0 {
		t.Error("composed engine reported no mux crossings")
	}
	if cm.Cycles() == 0 {
		t.Error("no cycles recorded")
	}
}

func TestComposeSingleTile(t *testing.T) {
	ta := NewTileArray(5, 2)
	cm, err := ta.Compose(5)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if len(cm.Tiles()) != 1 {
		t.Errorf("K engine uses %d triangles, want 1", len(cm.Tiles()))
	}
	if cm.MuxCrossings != 0 {
		// Single tile: count crossings anyway (none possible).
		x := randSeq(rand.New(rand.NewSource(81)), 20)
		cm.Distance(x, x)
		if cm.MuxCrossings != 0 {
			t.Errorf("single-tile engine crossed %d muxes", cm.MuxCrossings)
		}
	}
}

func TestComposeExhaustsDie(t *testing.T) {
	ta := NewTileArray(2, 2)
	// Eight triangles total. A 2K engine takes four.
	if _, err := ta.Compose(5); err != nil {
		t.Fatalf("first compose: %v", err)
	}
	// A second 2K engine needs (0,0)|0 again -> must fail.
	if _, err := ta.Compose(5); err == nil {
		t.Fatal("overlapping composition succeeded")
	}
	// But four independent K engines... only 4 triangles remain; each K
	// engine needs the forward triangle of a distinct slot — of which
	// (0,1)|1, (1,0)|1, (1,1)|0, (1,1)|1 remain; Compose(2) always asks
	// for slot (0,0). So a fresh die supports it.
	ta2 := NewTileArray(2, 2)
	if _, err := ta2.Compose(2); err != nil {
		t.Fatalf("K engine on fresh die: %v", err)
	}
}

func TestComposeBeyondDie(t *testing.T) {
	ta := NewTileArray(4, 2)
	if _, err := ta.Compose(ta.MaxK() + 1); err == nil {
		t.Error("composition beyond die maximum succeeded")
	}
	if ta.MaxK() != 9 {
		t.Errorf("MaxK = %d, want 9", ta.MaxK())
	}
}

func TestReleaseReturnsTiles(t *testing.T) {
	ta := NewTileArray(3, 2)
	cm, err := ta.Compose(7)
	if err != nil {
		t.Fatal(err)
	}
	before := ta.FreeTriangles()
	ta.Release(cm)
	if got := ta.FreeTriangles(); got != before+4 {
		t.Errorf("free after release = %d, want %d", got, before+4)
	}
	// Now the same composition succeeds again.
	if _, err := ta.Compose(7); err != nil {
		t.Errorf("recompose after release: %v", err)
	}
}

// TestComposeFailureLeaksNothing pins the claim-with-rollback contract:
// driving the die to exhaustion, a composition that fails mid-allocation
// must leave the free pool untouched, and releasing what did compose must
// restore the whole die for reuse.
func TestComposeFailureLeaksNothing(t *testing.T) {
	ta := NewTileArray(4, 2)
	var machines []*ComposedEditMachine
	for {
		cm, err := ta.Compose(ta.baseK)
		if err != nil {
			break
		}
		machines = append(machines, cm)
	}
	if len(machines) == 0 {
		t.Fatal("no composition succeeded on a fresh die")
	}
	free := ta.FreeTriangles()
	// A spanning engine needs tiles the single-K machines hold; the
	// failure must roll back whatever it had already claimed.
	if _, err := ta.Compose(2*ta.baseK + 1); err == nil {
		t.Fatal("composition on an exhausted die succeeded")
	}
	if got := ta.FreeTriangles(); got != free {
		t.Fatalf("failed Compose leaked tiles: free %d -> %d", free, got)
	}
	for _, cm := range machines {
		ta.Release(cm)
	}
	machines = machines[:0]
	// Reserve a tile late in a spanning composition's claim order, so the
	// failing Compose has made real progress before it hits the conflict
	// — the mid-allocation rollback, not the trivial first-tile one.
	ta.used[TileID{1, 0, Forward}] = true
	free = ta.FreeTriangles()
	if _, err := ta.Compose(ta.MaxK()); err == nil {
		t.Fatal("composition over a reserved tile succeeded")
	}
	if got := ta.FreeTriangles(); got != free {
		t.Fatalf("mid-allocation failure leaked tiles: free %d -> %d", free, got)
	}
	delete(ta.used, TileID{1, 0, Forward})
	cm, err := ta.Compose(ta.baseK)
	if err != nil {
		t.Fatalf("compose after rollback: %v", err)
	}
	machines = append(machines, cm)
	for _, cm := range machines {
		ta.Release(cm)
	}
	if got := ta.FreeTriangles(); got != ta.NumTriangles() {
		t.Fatalf("release returned %d of %d triangles", got, ta.NumTriangles())
	}
	// The whole die composes again: exhaustion and failure left no residue.
	if _, err := ta.Compose(ta.MaxK()); err != nil {
		t.Fatalf("max-K composition after full release: %v", err)
	}
}
