package sillax

import (
	"fmt"

	"genax/internal/dna"
)

// The composable-array model of §IV-D (Fig 10). A physical SillaX die
// carries a p×p grid of square tile slots; each slot holds two triangular
// engines — one forward-oriented, one flipped — and each triangle alone is
// a complete edit-distance-K engine. Reconfiguration muxes combine four
// triangles (one full square plus the forward triangles of its right and
// lower neighbours) into a single engine of edit distance 2K+1, and so on:
// a p×p array reaches p*(K+1)-1.

// Orientation of a triangular tile engine inside its square slot.
type Orientation int

// Tile orientations: Forward propagates activations from the origin corner
// outward; Flipped is the mirrored triangle completing the square.
const (
	Forward Orientation = iota
	Flipped
)

// TileID names one triangular engine on the die.
type TileID struct {
	Row, Col int
	Orient   Orientation
}

func (t TileID) String() string {
	return fmt.Sprintf("(%d,%d)|%d", t.Row, t.Col, int(t.Orient))
}

// TileArray manages the die's tile slots and builds composed engines.
type TileArray struct {
	baseK int
	p     int
	used  map[TileID]bool
}

// NewTileArray builds a p×p array of square slots whose triangles are
// edit-distance-baseK engines.
func NewTileArray(baseK, p int) *TileArray {
	if baseK < 0 || p < 1 {
		panic("sillax: invalid tile array shape")
	}
	return &TileArray{baseK: baseK, p: p, used: make(map[TileID]bool)}
}

// BaseK returns the per-tile edit bound.
func (ta *TileArray) BaseK() int { return ta.baseK }

// NumTriangles returns the total triangular engines on the die (2 p²).
func (ta *TileArray) NumTriangles() int { return 2 * ta.p * ta.p }

// FreeTriangles returns how many triangles are unallocated.
func (ta *TileArray) FreeTriangles() int {
	return ta.NumTriangles() - len(ta.used)
}

// MaxK returns the largest edit distance one composed engine can reach on
// this die: p*(K+1)-1 (§IV-D: "edit distances ranging from K to pK").
func (ta *TileArray) MaxK() int { return ta.p*(ta.baseK+1) - 1 }

// Release returns a composed machine's triangles to the free pool.
func (ta *TileArray) Release(cm *ComposedEditMachine) {
	for _, id := range cm.tiles {
		delete(ta.used, id)
	}
	cm.tiles = nil
}

// Compose allocates tiles for an engine of edit distance k and returns the
// composed machine. side = ceil((k+1)/(baseK+1)) square slots per axis are
// spanned; the triangles needed are exactly those intersecting the state
// triangle i+d <= k. It fails when the die cannot supply them.
func (ta *TileArray) Compose(k int) (*ComposedEditMachine, error) {
	if k > ta.MaxK() {
		return nil, fmt.Errorf("sillax: edit distance %d exceeds die maximum %d", k, ta.MaxK())
	}
	w := ta.baseK + 1
	side := (k + w) / w // ceil((k+1)/w)
	var need []TileID
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			// Forward triangle of slot (r,c) covers local i+d <= baseK,
			// i.e. global states from (r*w + c*w) up; it is needed when
			// its lowest state is inside the engine triangle.
			if r*w+c*w <= k {
				need = append(need, TileID{r, c, Forward})
			}
			// Flipped triangle covers local i+d > baseK; needed when any
			// of its states is inside: smallest i+d there is r*w+c*w+baseK+1.
			if r*w+c*w+w <= k {
				need = append(need, TileID{r, c, Flipped})
			}
		}
	}
	// Claim with rollback: a conflict mid-allocation releases every tile
	// this composition already took, so a failed Compose never leaks —
	// the die is exactly as free afterwards as it was before the call.
	for n, id := range need {
		if ta.used[id] {
			for _, claimed := range need[:n] {
				delete(ta.used, claimed)
			}
			return nil, fmt.Errorf("sillax: tile %v already allocated", id)
		}
		ta.used[id] = true
	}
	return newComposedEditMachine(ta.baseK, k, need), nil
}

// ComposedEditMachine is an edit machine whose state grid is distributed
// over triangular tiles. It behaves exactly like a monolithic EditMachine
// of the same K (the equivalence the tests pin down); in addition it
// counts inter-tile signal crossings, the mux overhead of §IV-D.
type ComposedEditMachine struct {
	k     int
	baseK int
	w     int
	tiles []TileID
	em    *EditMachine

	// MuxCrossings counts state-transition edges that cross a tile
	// boundary during the last Distance call — signals that traverse the
	// reconfiguration muxes instead of intra-tile wires.
	MuxCrossings int
}

func newComposedEditMachine(baseK, k int, tiles []TileID) *ComposedEditMachine {
	return &ComposedEditMachine{
		k: k, baseK: baseK, w: baseK + 1,
		tiles: tiles,
		em:    NewEditMachine(k),
	}
}

// K returns the composed edit bound.
func (cm *ComposedEditMachine) K() int { return cm.k }

// Tiles returns the allocated triangles.
func (cm *ComposedEditMachine) Tiles() []TileID { return cm.tiles }

// tileOf maps a global state to the triangle hosting it.
func (cm *ComposedEditMachine) tileOf(i, d int) TileID {
	r, c := i/cm.w, d/cm.w
	o := Forward
	if i%cm.w+d%cm.w > cm.baseK {
		o = Flipped
	}
	return TileID{r, c, o}
}

// Cycles reports the cycle count of the last Distance call.
func (cm *ComposedEditMachine) Cycles() int { return cm.em.Cycles }

// Distance computes the bounded edit distance on the composed array. The
// datapath is the monolithic edit machine — composition changes wiring,
// not semantics — while the mux counter audits every boundary crossing an
// edit transition would make.
func (cm *ComposedEditMachine) Distance(r, q dna.Seq) (int, bool) {
	cm.MuxCrossings = 0
	// Count boundary crossings along the state triangle once per call:
	// each ins edge (i,d)->(i+1,d), del edge (i,d)->(i,d+1) and merge
	// edge (i,d)->(i+1,d+1) that changes tiles runs through a mux.
	for i := 0; i <= cm.k; i++ {
		for d := 0; d+i <= cm.k; d++ {
			from := cm.tileOf(i, d)
			if i+1+d <= cm.k && cm.tileOf(i+1, d) != from {
				cm.MuxCrossings++
			}
			if i+d+1 <= cm.k && cm.tileOf(i, d+1) != from {
				cm.MuxCrossings++
			}
			if i+d+2 <= cm.k && cm.tileOf(i+1, d+1) != from {
				cm.MuxCrossings++
			}
		}
	}
	return cm.em.Distance(r, q)
}
