package sillax

import (
	"math/rand"
	"testing"

	"genax/internal/dna"
	"genax/internal/silla"
	"genax/internal/sw"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func mutate(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		if len(out) == 0 {
			out = append(out, dna.Base(r.Intn(4)))
			continue
		}
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1:
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		case 2:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func TestEditMachineMatchesSilla(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	for _, k := range []int{0, 1, 2, 4, 8} {
		em := NewEditMachine(k)
		ref := silla.New(k)
		for trial := 0; trial < 200; trial++ {
			x := randSeq(r, r.Intn(50))
			y := mutate(r, x, r.Intn(k+3))
			d1, ok1 := em.Distance(x, y)
			d2, ok2 := ref.Distance(x, y)
			if ok1 != ok2 || (ok1 && d1 != d2) {
				t.Fatalf("k=%d: machine (%d,%v) != silla (%d,%v) for x=%v y=%v", k, d1, ok1, d2, ok2, x, y)
			}
		}
	}
}

func TestEditMachineMatchesDP(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	em := NewEditMachine(6)
	for trial := 0; trial < 300; trial++ {
		x := randSeq(r, r.Intn(40))
		y := mutate(r, x, r.Intn(8))
		want := sw.EditDistance(x, y)
		got, ok := em.Distance(x, y)
		if want <= 6 {
			if !ok || got != want {
				t.Fatalf("trial %d: machine %d,%v; DP %d", trial, got, ok, want)
			}
		} else if ok {
			t.Fatalf("trial %d: accepted %d but DP %d > k", trial, got, want)
		}
	}
}

func TestEditMachineComparatorInvariant(t *testing.T) {
	// The diagonally shifted retro comparison latched at every active PE
	// must equal the directly recomputed comparison — the §IV-A datapath
	// claim that 2K+1 comparators suffice.
	r := rand.New(rand.NewSource(52))
	em := NewEditMachine(5)
	for trial := 0; trial < 50; trial++ {
		x := randSeq(r, 20+r.Intn(20))
		y := mutate(r, x, r.Intn(6))
		em.onCycle = func(c int) {
			if i, d := em.compInvariantViolation(x, y, c); i >= 0 {
				t.Fatalf("trial %d cycle %d: comparator invariant violated at PE (%d,%d)", trial, c, i, d)
			}
		}
		em.Distance(x, y)
		em.onCycle = nil
	}
}

func TestEditMachineCycleCount(t *testing.T) {
	// O(N) operation: the machine must finish within max(n,m)+K+1 cycles.
	em := NewEditMachine(4)
	x := dna.MustParseSeq("ACGTACGTACGTACGTACGT")
	y := x.Clone()
	if _, ok := em.Distance(x, y); !ok {
		t.Fatal("identity distance failed")
	}
	if em.Cycles > len(x)+4+1 {
		t.Errorf("cycles = %d, want <= N+K+1 = %d", em.Cycles, len(x)+5)
	}
	if em.Cycles < len(x) {
		t.Errorf("cycles = %d below string length %d", em.Cycles, len(x))
	}
}

func TestEditMachineNumPEs(t *testing.T) {
	// K=40 -> 1681 PEs per §VIII-A ("To support K = 40, SillaX uses
	// 1,681 processing elements").
	em := NewEditMachine(40)
	if got := em.NumPEs(); got != 3*41*41/2 {
		t.Errorf("NumPEs = %d", got)
	}
	// The paper quotes 41x41 = 1681 grid units; our NumPEs counts the
	// state machines inside them (2 regular + 1 wait per unit / 2).
	if 41*41 != 1681 {
		t.Fatal("arithmetic")
	}
}

func TestEditMachineStringIndependence(t *testing.T) {
	em := NewEditMachine(3)
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		x := randSeq(r, 10+r.Intn(30))
		y := mutate(r, x, r.Intn(4))
		want := sw.EditDistance(x, y)
		got, ok := em.Distance(x, y)
		if want <= 3 && (!ok || got != want) {
			t.Fatalf("reuse trial %d: got %d,%v want %d", trial, got, ok, want)
		}
	}
}

func TestEditMachineLengthGuard(t *testing.T) {
	em := NewEditMachine(2)
	if _, ok := em.Distance(make(dna.Seq, 10), make(dna.Seq, 20)); ok {
		t.Error("length difference beyond K accepted")
	}
}

func TestNewEditMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEditMachine(-1) did not panic")
		}
	}()
	NewEditMachine(-1)
}
