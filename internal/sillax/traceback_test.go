package sillax

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sw"
)

func TestTracebackScoreMatchesScoringMachine(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	sc := align.BWAMEMDefaults()
	for _, k := range []int{2, 4, 8, 16} {
		tm := NewTracebackMachine(k, sc)
		sm := NewScoringMachine(k, sc)
		for trial := 0; trial < 100; trial++ {
			query := randSeq(r, 10+r.Intn(60))
			ref := mutate(r, query, r.Intn(k/2+1))
			want := sm.Extend(ref, query)
			got := tm.Extend(ref, query)
			if got.Score != want.Score {
				t.Fatalf("k=%d trial=%d: traceback %d, scoring %d", k, trial, got.Score, want.Score)
			}
		}
	}
}

func TestTracebackCigarIsValidAndRescores(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(12, sc)
	for trial := 0; trial < 300; trial++ {
		query := randSeq(r, 10+r.Intn(90))
		ref := mutate(r, query, r.Intn(5))
		res := tm.Extend(ref, query)
		if err := res.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("trial %d: invalid cigar %v: %v (ref=%v query=%v)", trial, res.Cigar, err, ref, query)
		}
		if got := res.Cigar.Score(sc); got != res.Score {
			t.Fatalf("trial %d: cigar rescores to %d, machine reported %d (cigar=%v)", trial, got, res.Score, res.Cigar)
		}
		if got := res.Cigar.RefLen(); got != res.RefLen {
			t.Fatalf("trial %d: cigar consumes %d ref bases, machine reported %d", trial, got, res.RefLen)
		}
	}
}

func TestTracebackMatchesGotohScore(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(16, sc)
	full := sw.NewAligner(sc)
	for trial := 0; trial < 150; trial++ {
		query := randSeq(r, 30+r.Intn(70))
		ref := mutate(r, query, r.Intn(4))
		want := full.Align(ref, query, sw.Extend)
		got := tm.Extend(ref, query)
		if got.Score != want.Score {
			t.Fatalf("trial %d: machine %d, Gotoh %d", trial, got.Score, want.Score)
		}
	}
}

func TestTracebackPerfectRead(t *testing.T) {
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(8, sc)
	s := dna.MustParseSeq("ACGTACGTACGT")
	res := tm.Extend(s, s)
	if res.Cigar.String() != "12=" {
		t.Errorf("cigar = %v, want 12=", res.Cigar)
	}
	if res.ReRuns != 0 {
		t.Errorf("perfect read required %d re-runs", res.ReRuns)
	}
}

func TestTracebackKnownEdits(t *testing.T) {
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(8, sc)
	// One substitution in the middle.
	ref := dna.MustParseSeq("ACGTACGTACGTACGT")
	query := dna.MustParseSeq("ACGTACTTACGTACGT")
	res := tm.Extend(ref, query)
	if res.Cigar.String() != "6=1X9=" {
		t.Errorf("substitution cigar = %v, want 6=1X9=", res.Cigar)
	}
	if res.Score != 15-4 {
		t.Errorf("score = %d, want 11", res.Score)
	}
	// A two-base deletion (query missing two reference bases) followed by
	// enough matches that the gapped alignment strictly beats clipping.
	ref2 := dna.MustParseSeq("AACCGGTTAACCGGTTAACC")
	query2 := dna.MustParseSeq("AACCGGAACCGGTTAACC")
	res2 := tm.Extend(ref2, query2)
	if res2.Cigar.String() != "6=2D12=" {
		t.Errorf("deletion cigar = %v, want 6=2D12=", res2.Cigar)
	}
	if res2.Score != 18-8 {
		t.Errorf("score = %d, want 10", res2.Score)
	}
}

func TestTracebackFullClip(t *testing.T) {
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(2, sc)
	ref := dna.MustParseSeq("AAAAAAAA")
	query := dna.MustParseSeq("TTTTTTTT")
	res := tm.Extend(ref, query)
	if res.Score != 0 || res.Cigar.String() != "8S" {
		t.Errorf("hopeless read: score=%d cigar=%v", res.Score, res.Cigar)
	}
}

func TestTracebackEmptyInputs(t *testing.T) {
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(4, sc)
	res := tm.Extend(dna.Seq{}, dna.Seq{})
	if res.Score != 0 || len(res.Cigar) != 0 {
		t.Errorf("empty inputs: %+v", res)
	}
	res = tm.Extend(dna.MustParseSeq("ACGT"), dna.Seq{})
	if res.Score != 0 {
		t.Errorf("empty query score = %d", res.Score)
	}
	res = tm.Extend(dna.Seq{}, dna.MustParseSeq("ACGT"))
	if res.Score != 0 || res.Cigar.String() != "4S" {
		t.Errorf("empty ref: %+v", res)
	}
}

func TestTracebackCycleAccounting(t *testing.T) {
	sc := align.BWAMEMDefaults()
	k := 8
	tm := NewTracebackMachine(k, sc)
	q := make(dna.Seq, 101)
	res := tm.Extend(q, q)
	phase1 := 101 + k + 1
	if res.Cycles != phase1+4*k+res.ReRunCycles {
		t.Errorf("Cycles = %d, want phase1(%d)+4K(%d)+reruns(%d)", res.Cycles, phase1, 4*k, res.ReRunCycles)
	}
}

func TestTracebackReRunStatistics(t *testing.T) {
	// Broken pointer trails must (a) occur sometimes on noisy reads —
	// otherwise Fig 13 would be vacuous — and (b) never corrupt the
	// reported alignment.
	r := rand.New(rand.NewSource(73))
	sc := align.BWAMEMDefaults()
	tm := NewTracebackMachine(16, sc)
	total, broken := 0, 0
	for trial := 0; trial < 400; trial++ {
		query := randSeq(r, 60+r.Intn(42))
		ref := mutate(r, query, 2+r.Intn(6))
		res := tm.Extend(ref, query)
		total++
		if res.ReRuns > 0 {
			broken++
			if res.ReRunCycles <= 0 {
				t.Fatalf("trial %d: ReRuns=%d but ReRunCycles=%d", trial, res.ReRuns, res.ReRunCycles)
			}
		}
		if err := res.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("trial %d: broken trail corrupted cigar: %v", trial, err)
		}
		if res.Cigar.Score(sc) != res.Score {
			t.Fatalf("trial %d: score mismatch after re-run", trial)
		}
	}
	if broken == 0 {
		t.Error("no broken pointer trails in 400 noisy reads; re-run model is dead code")
	}
	if broken == total {
		t.Error("every read broke its trail; §VIII-A expects these to be rare-ish (7.59%)")
	}
	t.Logf("broken trails: %d/%d (%.2f%%)", broken, total, 100*float64(broken)/float64(total))
}
