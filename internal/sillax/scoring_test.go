package sillax

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sw"
)

// enumerateExtendBounded is the exhaustive oracle: the best affine-gap
// score over every alignment of every prefix pair using at most k edits.
func enumerateExtendBounded(ref, query dna.Seq, sc align.Scoring, k int) int {
	best := 0
	var rec func(ri, qi, edits, score int, prev align.Op)
	rec = func(ri, qi, edits, score int, prev align.Op) {
		if score > best {
			best = score
		}
		if edits > k {
			return
		}
		if ri < len(ref) && qi < len(query) {
			if ref[ri] == query[qi] {
				rec(ri+1, qi+1, edits, score+sc.Match, align.OpMatch)
			} else if edits < k {
				rec(ri+1, qi+1, edits+1, score-sc.Mismatch, align.OpMismatch)
			}
		}
		if qi < len(query) && edits < k {
			cost := sc.GapExtend
			if prev != align.OpIns {
				cost += sc.GapOpen
			}
			rec(ri, qi+1, edits+1, score-cost, align.OpIns)
		}
		if ri < len(ref) && edits < k {
			cost := sc.GapExtend
			if prev != align.OpDel {
				cost += sc.GapOpen
			}
			rec(ri+1, qi, edits+1, score-cost, align.OpDel)
		}
	}
	rec(0, 0, 0, 0, 0)
	return best
}

func TestScoringAgainstBoundedEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	sc := align.BWAMEMDefaults()
	for _, k := range []int{0, 1, 2, 3, 4} {
		sm := NewScoringMachine(k, sc)
		for trial := 0; trial < 150; trial++ {
			ref := randSeq(r, r.Intn(8))
			query := randSeq(r, r.Intn(8))
			want := enumerateExtendBounded(ref, query, sc, k)
			got := sm.Extend(ref, query)
			if got.Score != want {
				t.Fatalf("k=%d trial=%d: machine %d, oracle %d (ref=%v query=%v)", k, trial, got.Score, want, ref, query)
			}
		}
	}
}

func TestScoringMatchesUnboundedExtendForGenerousK(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	sc := align.BWAMEMDefaults()
	full := sw.NewAligner(sc)
	sm := NewScoringMachine(16, sc)
	for trial := 0; trial < 150; trial++ {
		query := randSeq(r, 20+r.Intn(60))
		ref := mutate(r, query, r.Intn(4))
		want := full.Align(ref, query, sw.Extend)
		got := sm.Extend(ref, query)
		if got.Score != want.Score {
			t.Fatalf("trial %d: machine %d, Gotoh %d (ref=%v query=%v)", trial, got.Score, want.Score, ref, query)
		}
	}
}

func TestScoringPerfectRead(t *testing.T) {
	sc := align.BWAMEMDefaults()
	sm := NewScoringMachine(8, sc)
	s := dna.MustParseSeq("ACGTACGTACGTACG")
	res := sm.Extend(s, s)
	if res.Score != len(s) {
		t.Errorf("score = %d, want %d", res.Score, len(s))
	}
	if res.QueryLen != len(s) || res.RefLen != len(s) {
		t.Errorf("consumed = (%d,%d), want (%d,%d)", res.QueryLen, res.RefLen, len(s), len(s))
	}
}

func TestScoringClipsHopelessRead(t *testing.T) {
	sc := align.BWAMEMDefaults()
	sm := NewScoringMachine(4, sc)
	ref := dna.MustParseSeq("AAAAAAAAAA")
	query := dna.MustParseSeq("TTTTTTTTTT")
	res := sm.Extend(ref, query)
	if res.Score != 0 {
		t.Errorf("score = %d, want 0 (fully clipped)", res.Score)
	}
	if res.QueryLen != 0 {
		t.Errorf("QueryLen = %d, want 0", res.QueryLen)
	}
}

func TestScoringUnitSchemeTracksEditDistance(t *testing.T) {
	// Under unit scoring the best extension is trivially 0 (no reward),
	// so instead check a mixed scheme degenerating toward edit distance
	// still agrees with the bounded oracle.
	sc := align.Scoring{Match: 1, Mismatch: 1, GapOpen: 0, GapExtend: 1}
	r := rand.New(rand.NewSource(62))
	sm := NewScoringMachine(3, sc)
	for trial := 0; trial < 100; trial++ {
		ref := randSeq(r, r.Intn(7))
		query := randSeq(r, r.Intn(7))
		want := enumerateExtendBounded(ref, query, sc, 3)
		if got := sm.Extend(ref, query); got.Score != want {
			t.Fatalf("trial %d: %d vs %d (ref=%v query=%v)", trial, got.Score, want, ref, query)
		}
	}
}

func TestScoringDelayedMergeRegression(t *testing.T) {
	// Figure 8's scenario: a path that already opened a gap must be able
	// to beat a higher-scoring closed path when the gap continues.
	// ref  = A C G T T T A C G T
	// query= A C G T ---- A C G T (4-base deletion in the query)
	// wait: deletion means ref has extra bases. Use BWA scoring.
	sc := align.BWAMEMDefaults()
	sm := NewScoringMachine(8, sc)
	ref := dna.MustParseSeq("ACGTTTTACGT")
	query := dna.MustParseSeq("ACGTACGT")
	res := sm.Extend(ref, query)
	// Best alignment: 4 matches, 3-base deletion (cost 6+3=9), 4 matches
	// => 8 - 9 = -1; clipping prefers the first 4 matches (score 4).
	if res.Score != 4 {
		t.Errorf("score = %d, want 4", res.Score)
	}
	// With a cheaper gap the full alignment must win.
	cheap := align.Scoring{Match: 2, Mismatch: 4, GapOpen: 1, GapExtend: 1}
	sm2 := NewScoringMachine(8, cheap)
	res2 := sm2.Extend(ref, query)
	if res2.Score != 16-1-3 {
		t.Errorf("cheap-gap score = %d, want 12", res2.Score)
	}
}

func TestScoringNaiveMergeWouldBeWrong(t *testing.T) {
	// Ablation for §IV-B delayed merging: merging open and closed paths
	// by raw score at the state loses when the closed path then opens a
	// new gap. Construct: query needs a 2-base deletion; midway there is
	// an alternative closed path of equal score. The exact-affine oracle
	// and the machine agree; a naive single-register merge would not.
	sc := align.Scoring{Match: 1, Mismatch: 3, GapOpen: 4, GapExtend: 1}
	sm := NewScoringMachine(6, sc)
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 200; trial++ {
		ref := randSeq(r, 3+r.Intn(5))
		query := randSeq(r, 3+r.Intn(5))
		want := enumerateExtendBounded(ref, query, sc, 6)
		if got := sm.Extend(ref, query); got.Score != want {
			t.Fatalf("trial %d: machine %d oracle %d (ref=%v query=%v)", trial, got.Score, want, ref, query)
		}
	}
}

func TestScoringCycleModel(t *testing.T) {
	sm := NewScoringMachine(8, align.BWAMEMDefaults())
	q := make(dna.Seq, 101)
	sm.Extend(q, q)
	want := 101 + 8 + 1 + 8 // stream + pipeline margin + backprop
	if sm.Cycles != want {
		t.Errorf("Cycles = %d, want %d", sm.Cycles, want)
	}
}

func TestScoringConsumedLengthsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	sc := align.BWAMEMDefaults()
	sm := NewScoringMachine(10, sc)
	for trial := 0; trial < 100; trial++ {
		query := randSeq(r, 30+r.Intn(40))
		ref := mutate(r, query, r.Intn(4))
		res := sm.Extend(ref, query)
		if res.QueryLen < 0 || res.QueryLen > len(query) {
			t.Fatalf("QueryLen %d out of range [0,%d]", res.QueryLen, len(query))
		}
		if res.RefLen < 0 || res.RefLen > len(ref) {
			t.Fatalf("RefLen %d out of range [0,%d]", res.RefLen, len(ref))
		}
		// Consumed lengths can differ by at most K (indel bound).
		if diff := res.QueryLen - res.RefLen; diff > 10 || diff < -10 {
			t.Fatalf("consumed lengths differ by %d > K", diff)
		}
	}
}
