// Package sillax models the SillaX accelerator of §IV at cycle level: the
// edit machine (Fig 5/6), the affine-gap scoring machine with delayed
// merging and clipping (Fig 7/8), the traceback machine with pointer
// trails and re-execution (Fig 9), and composable tiles (Fig 10).
//
// The models are architectural, not RTL: one Step call is one clock cycle,
// PEs hold exactly the registers the paper describes, and all communication
// is between grid neighbours (the retro comparisons enter at the periphery
// and shift diagonally inward). Gate/area/power numbers live in package hw;
// this package supplies the cycle counts they are multiplied with.
package sillax

import (
	"genax/internal/dna"
)

// sentinel marks shift-register slots holding no valid character (before
// the stream starts or after it ends); comparisons against it always fail.
const sentinel dna.Base = 0xFF

// EditMachine is the SillaX edit machine: a (K+1)x(K+1) triangular PE grid
// computing bounded edit distance in one pass over the inputs. Each PE is
// the 13-gate element of Fig 6; the machine feeds 2K+1 peripheral
// comparators from two shift registers and shifts results diagonally
// inward, so a retro comparison is computed once and reused along its
// diagonal (§IV-A).
//
// Not safe for concurrent use; allocate one per lane.
type EditMachine struct {
	k int
	w int // k+1, grid stride

	// Shift registers: rShift[i] = R[c-i], qShift[d] = Q[c-d].
	rShift, qShift []dna.Base

	// comp[i*w+d] is the latched retro comparison available to PE (i,d)
	// this cycle; compNext is its double buffer.
	comp, compNext []bool

	// Activation flip-flops per PE: two regular layers plus wait states.
	l0, l1, wt          []bool
	next0, next1, nextW []bool

	// Cycles counts clock cycles consumed by the last Distance call,
	// including pipeline fill.
	Cycles int

	// onCycle, when set, is invoked after the comparator refresh of each
	// cycle; the test suite uses it to assert datapath invariants.
	onCycle func(c int)
}

// NewEditMachine builds an edit machine with edit bound k.
func NewEditMachine(k int) *EditMachine {
	if k < 0 {
		panic("sillax: negative edit bound")
	}
	w := k + 1
	n := w * w
	return &EditMachine{
		k: k, w: w,
		rShift: make([]dna.Base, w), qShift: make([]dna.Base, w),
		comp: make([]bool, n), compNext: make([]bool, n),
		l0: make([]bool, n), l1: make([]bool, n), wt: make([]bool, n),
		next0: make([]bool, n), next1: make([]bool, n), nextW: make([]bool, n),
	}
}

// K returns the edit bound.
func (m *EditMachine) K() int { return m.k }

// NumPEs returns the number of processing elements (regular states of both
// layers plus wait states grouped into units, §III-C).
func (m *EditMachine) NumPEs() int { return 3 * m.w * m.w / 2 }

//genax:hotpath
func (m *EditMachine) reset() {
	for i := range m.l0 {
		m.l0[i], m.l1[i], m.wt[i] = false, false, false
		m.next0[i], m.next1[i], m.nextW[i] = false, false, false
		m.comp[i], m.compNext[i] = false, false
	}
	for i := range m.rShift {
		m.rShift[i], m.qShift[i] = sentinel, sentinel
	}
	m.l0[0] = true
	m.Cycles = 0
}

// shiftIn advances both shift registers, admitting the cycle-c characters.
//
//genax:hotpath
func (m *EditMachine) shiftIn(r, q dna.Seq, c int) {
	copy(m.rShift[1:], m.rShift[:m.k])
	copy(m.qShift[1:], m.qShift[:m.k])
	if c < len(r) {
		m.rShift[0] = r[c]
	} else {
		m.rShift[0] = sentinel
	}
	if c < len(q) {
		m.qShift[0] = q[c]
	} else {
		m.qShift[0] = sentinel
	}
}

// refreshComparisons implements the comparator periphery and the diagonal
// shift: PEs (i,0) and (0,d) get fresh comparisons from the 2K+1
// comparators; interior PE (i,d) latches what PE (i-1,d-1) held last cycle.
//
//genax:hotpath
func (m *EditMachine) refreshComparisons() {
	w := m.w
	// Interior first (reads old comp values).
	for i := w - 1; i >= 1; i-- {
		for d := w - 1; d >= 1; d-- {
			m.compNext[i*w+d] = m.comp[(i-1)*w+d-1]
		}
	}
	// Periphery: R[c-i] vs Q[c] and R[c] vs Q[c-d].
	q0 := m.qShift[0]
	r0 := m.rShift[0]
	for i := 0; i < w; i++ {
		ri := m.rShift[i]
		m.compNext[i*w] = ri != sentinel && q0 != sentinel && ri == q0
	}
	for d := 1; d < w; d++ {
		qd := m.qShift[d]
		m.compNext[d] = r0 != sentinel && qd != sentinel && r0 == qd
	}
	m.comp, m.compNext = m.compNext, m.comp
}

// Distance runs the machine over r and q and reports their edit distance
// when it is at most K. Cycle count is left in m.Cycles.
//
//genax:hotpath
func (m *EditMachine) Distance(r, q dna.Seq) (dist int, ok bool) {
	k, w := m.k, m.w
	n, q2 := len(r), len(q)
	if diff := n - q2; diff > k || -diff > k {
		return 0, false
	}
	m.reset()
	maxCycle := n + k
	if q2+k > maxCycle {
		maxCycle = q2 + k
	}
	for c := 0; c <= maxCycle; c++ {
		m.Cycles++
		m.shiftIn(r, q, c)
		m.refreshComparisons()
		if m.onCycle != nil {
			m.onCycle(c)
		}
		// Acceptance: the unique state whose cursors sit exactly at the
		// ends of both strings this cycle.
		ai, ad := c-n, c-q2
		if ai >= 0 && ai <= k && ad >= 0 && ad <= k {
			idx := ai*w + ad
			if m.l0[idx] {
				return ai + ad, true
			}
			if m.l1[idx] {
				return ai + ad + 1, ai+ad+1 <= k
			}
		}
		anyNext := false
		for i := 0; i <= k; i++ {
			for d := 0; d+i <= k; d++ {
				idx := i*w + d
				l0, l1, wt := m.l0[idx], m.l1[idx], m.wt[idx]
				if !l0 && !l1 && !wt {
					continue
				}
				if wt && i+d+2 <= k {
					m.next0[(i+1)*w+d+1] = true
					anyNext = true
				}
				if !l0 && !l1 {
					continue
				}
				if m.comp[idx] {
					if l0 {
						m.next0[idx] = true
					}
					if l1 {
						m.next1[idx] = true
					}
					anyNext = true
					continue
				}
				if l0 && i+d+1 <= k {
					if i+1 <= k {
						m.next0[(i+1)*w+d] = true
					}
					if d+1 <= k {
						m.next0[i*w+d+1] = true
					}
					m.next1[idx] = true
					anyNext = true
				}
				if l1 && i+d+2 <= k {
					if i+1 <= k {
						m.next1[(i+1)*w+d] = true
					}
					if d+1 <= k {
						m.next1[i*w+d+1] = true
					}
					m.nextW[idx] = true
					anyNext = true
				}
			}
		}
		m.l0, m.next0 = m.next0, m.l0
		m.l1, m.next1 = m.next1, m.l1
		m.wt, m.nextW = m.nextW, m.wt
		for i := range m.next0 {
			m.next0[i], m.next1[i], m.nextW[i] = false, false, false
		}
		if !anyNext {
			break
		}
	}
	return 0, false
}

// compInvariantViolation checks, for every active regular PE, that its
// latched comparison equals the recomputed retro comparison. It exists for
// the test suite; it returns the first violating state or (-1,-1).
func (m *EditMachine) compInvariantViolation(r, q dna.Seq, c int) (int, int) {
	for i := 0; i <= m.k; i++ {
		for d := 0; d+i <= m.k; d++ {
			idx := i*m.w + d
			if !m.l0[idx] && !m.l1[idx] {
				continue
			}
			ri, qd := c-i, c-d
			want := ri >= 0 && ri < len(r) && qd >= 0 && qd < len(q) && r[ri] == q[qd]
			if m.comp[idx] != want {
				return i, d
			}
		}
	}
	return -1, -1
}
