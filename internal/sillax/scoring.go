package sillax

import (
	"genax/internal/align"
	"genax/internal/dna"
)

// neg is the "register empty" value; far enough from the int32 edge that
// subtracting penalties cannot wrap.
const neg int32 = -1 << 29

// ExtendResult is the outcome of one seed extension on the scoring machine.
type ExtendResult struct {
	// Score is the best clipped extension score (>= 0; zero means the
	// whole query is soft-clipped).
	Score int
	// QueryLen and RefLen are the prefix lengths consumed by the
	// best-scoring extension.
	QueryLen, RefLen int
	// Cycles is the architectural cycle count: the streaming phase plus
	// the K-cycle best-score back-propagation of §IV-B.
	Cycles int
}

// ScoringMachine is the SillaX scoring machine (§IV-B): the edit machine
// grid where every PE carries score registers (Fig 7) and gap-open versus
// gap-extend paths are kept apart for one cycle ("delayed merging", Fig 8)
// so that affine gap penalties are applied exactly. Clipping is supported
// by per-state best registers whose maximum is collected in a back-
// propagation phase after the strings have streamed through.
//
// Not safe for concurrent use; allocate one per lane.
type ScoringMachine struct {
	k  int
	w  int
	sc align.Scoring

	// Score registers per regular state: m (closed: last op match/sub),
	// iv (open insertion), dv (open deletion); layers 0 and 1; wt is the
	// wait-state score buffer of the collapsed third dimension.
	m0, i0, d0 []int32
	m1, i1, d1 []int32
	wt         []int32
	// Double buffers.
	nm0, ni0, nd0 []int32
	nm1, ni1, nd1 []int32
	nwt           []int32

	// Cycles of the last Extend call.
	Cycles int
}

// NewScoringMachine builds a scoring machine with edit bound k.
func NewScoringMachine(k int, sc align.Scoring) *ScoringMachine {
	if k < 0 {
		panic("sillax: negative edit bound")
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	w := k + 1
	n := w * w
	mk := func() []int32 { return make([]int32, n) }
	return &ScoringMachine{
		k: k, w: w, sc: sc,
		m0: mk(), i0: mk(), d0: mk(), m1: mk(), i1: mk(), d1: mk(), wt: mk(),
		nm0: mk(), ni0: mk(), nd0: mk(), nm1: mk(), ni1: mk(), nd1: mk(), nwt: mk(),
	}
}

// K returns the edit bound.
func (m *ScoringMachine) K() int { return m.k }

//genax:hotpath
func (m *ScoringMachine) reset() {
	for i := range m.m0 {
		m.m0[i], m.i0[i], m.d0[i] = neg, neg, neg
		m.m1[i], m.i1[i], m.d1[i] = neg, neg, neg
		m.wt[i] = neg
		m.nm0[i], m.ni0[i], m.nd0[i] = neg, neg, neg
		m.nm1[i], m.ni1[i], m.nd1[i] = neg, neg, neg
		m.nwt[i] = neg
	}
	m.m0[0] = 0
	m.Cycles = 0
}

//genax:hotpath
func max3(a, b, c int32) int32 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// Extend streams ref and query through the machine anchored at position 0
// of both and returns the best clipped extension score — the hardware twin
// of BWA-MEM's seed-extension with clipping.
//
//genax:hotpath
func (m *ScoringMachine) Extend(ref, query dna.Seq) ExtendResult {
	k, w := m.k, m.w
	n, q2 := len(ref), len(query)
	m.reset()
	cs := NewCosts(m.sc)
	a, b, open, ext := cs.A, cs.B, cs.Open, cs.Ext

	best := int32(0)
	bestI, bestD, bestCycle := 0, 0, 0

	maxCycle := StreamCycles(n, q2, k)
	// Streaming bound: past max(n,q)+... nothing new can be consumed, but
	// states may still drift for a few cycles; the triangle caps i+d at k
	// so maxCycle covers every live state.
	for c := 0; c <= maxCycle; c++ {
		any := false
		for i := 0; i <= k; i++ {
			riPos := c - i
			for d := 0; d+i <= k; d++ {
				idx := i*w + d
				// Wait-state delivery: the merged two-substitution path
				// arrives closed at layer 0 of (i+1,d+1).
				if wv := m.wt[idx]; wv > neg {
					ti := (i+1)*w + d + 1
					if wv > m.nm0[ti] {
						m.nm0[ti] = wv
						any = true
					}
				}
				qdPos := c - d
				match := riPos >= 0 && riPos < len(ref) && qdPos >= 0 && qdPos < len(query) && ref[riPos] == query[qdPos]
				for layer := 0; layer < 2; layer++ {
					var mv, iv, dv int32
					var nm, ni, nd []int32
					if layer == 0 {
						mv, iv, dv = m.m0[idx], m.i0[idx], m.d0[idx]
						nm, ni, nd = m.nm0, m.ni0, m.nd0
					} else {
						mv, iv, dv = m.m1[idx], m.i1[idx], m.d1[idx]
						nm, ni, nd = m.nm1, m.ni1, m.nd1
					}
					if mv == neg && iv == neg && dv == neg {
						continue
					}
					any = true
					top := max3(mv, iv, dv)
					if match {
						// Taking the match closes every path; the state's
						// clipping register sees the new closed score.
						if v := top + a; v > nm[idx] {
							nm[idx] = v
							nv := v
							if nv > best {
								best, bestI, bestD, bestCycle = nv, i, d, c+1
							}
						}
					} else if top > neg {
						// Substitution branch (the third dimension).
						if layer == 0 {
							if i+d+1 <= k {
								if v := top - b; v > m.nm1[idx] {
									m.nm1[idx] = v
									if v > best {
										best, bestI, bestD, bestCycle = v, i, d, c+1
									}
								}
							}
						} else if i+d+2 <= k {
							if v := top - b; v > m.nwt[idx] {
								m.nwt[idx] = v
								// The wait value becomes a closed score at
								// (i+1,d+1) next cycle; account for best
								// there (same score, same clip point).
								if v > best {
									best, bestI, bestD, bestCycle = v, i+1, d+1, c+2
								}
							}
						}
					}
					// Gap branches fire even on a match (§IV-B:
					// "conservatively activates the outgoing insertion and
					// deletion transitions"), with delayed merging: open
					// paths extend cheaply, closed ones pay the open cost.
					if i+1+d+layer <= k {
						v := max3(mv-open, dv-open, iv-ext)
						ti := (i+1)*w + d
						if v > ni[ti] {
							ni[ti] = v
						}
					}
					if i+d+1+layer <= k {
						v := max3(mv-open, iv-open, dv-ext)
						ti := idx + 1
						if v > nd[ti] {
							nd[ti] = v
						}
					}
				}
			}
		}
		m.m0, m.nm0 = m.nm0, m.m0
		m.i0, m.ni0 = m.ni0, m.i0
		m.d0, m.nd0 = m.nd0, m.d0
		m.m1, m.nm1 = m.nm1, m.m1
		m.i1, m.ni1 = m.ni1, m.i1
		m.d1, m.nd1 = m.nd1, m.d1
		m.wt, m.nwt = m.nwt, m.wt
		for i := range m.nm0 {
			m.nm0[i], m.ni0[i], m.nd0[i] = neg, neg, neg
			m.nm1[i], m.ni1[i], m.nd1[i] = neg, neg, neg
			m.nwt[i] = neg
		}
		if !any {
			break
		}
	}
	// Streaming phase plus the K-cycle back-propagation that funnels the
	// per-state best registers to node (0,0|0).
	m.Cycles = maxCycle + 1 + m.k
	res := ExtendResult{Score: int(best), Cycles: m.Cycles}
	if best > 0 {
		res.QueryLen = bestCycle - bestD
		res.RefLen = bestCycle - bestI
	}
	return res
}
