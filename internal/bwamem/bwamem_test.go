package bwamem

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sim"
)

func testWorkload(seed int64, genomeLen int, errRate float64) *sim.Workload {
	return sim.NewWorkload(seed, genomeLen,
		sim.VariantProfile{SNPRate: 0.001, IndelRate: 0.0002, MaxIndel: 6},
		sim.ReadProfile{Length: 101, Coverage: 2, ErrorRate: errRate, ReverseFraction: 0.5})
}

func TestAlignPerfectReads(t *testing.T) {
	w := testWorkload(200, 20000, 0)
	// Variant-free donor for exactness.
	wl := sim.NewWorkload(201, 20000, sim.VariantProfile{}, sim.ReadProfile{Length: 101, Coverage: 1, ErrorRate: 0, ReverseFraction: 0.5})
	_ = w
	a := New(wl.Ref, DefaultOptions())
	for _, rd := range wl.Reads[:50] {
		res, ok := a.Align(rd.Seq)
		if !ok {
			t.Fatalf("read %s unaligned", rd.ID)
		}
		if res.Score != 101 {
			t.Errorf("read %s score %d, want 101", rd.ID, res.Score)
		}
		if res.RefPos != rd.TruePos {
			// Multi-mapping is possible in random genomes but unlikely;
			// tolerate only exact-score ties.
			if !wl.Ref[res.RefPos : res.RefPos+101].Equal(wl.Ref[rd.TruePos : rd.TruePos+101]) {
				t.Errorf("read %s mapped to %d, true %d", rd.ID, res.RefPos, rd.TruePos)
			}
		}
		if res.Reverse != rd.Reverse {
			t.Errorf("read %s strand %v, true %v", rd.ID, res.Reverse, rd.Reverse)
		}
	}
}

func TestAlignNoisyReads(t *testing.T) {
	wl := testWorkload(202, 30000, 0.02)
	a := New(wl.Ref, DefaultOptions())
	aligned, correct := 0, 0
	n := 200
	if n > len(wl.Reads) {
		n = len(wl.Reads)
	}
	for _, rd := range wl.Reads[:n] {
		res, ok := a.Align(rd.Seq)
		if !ok {
			continue
		}
		aligned++
		if err := res.Cigar.Validate(a.Ref()[res.RefPos:], orient(rd, res)); err != nil {
			t.Fatalf("read %s: invalid cigar: %v", rd.ID, err)
		}
		if res.Cigar.Score(a.Options().Scoring) != res.Score {
			t.Fatalf("read %s: cigar rescore mismatch", rd.ID)
		}
		if abs(res.RefPos-rd.TruePos) <= 12 {
			correct++
		}
	}
	if frac := float64(aligned) / float64(n); frac < 0.95 {
		t.Errorf("only %.1f%% of noisy reads aligned", 100*frac)
	}
	if frac := float64(correct) / float64(aligned); frac < 0.95 {
		t.Errorf("only %.1f%% of aligned reads near true position", 100*frac)
	}
	t.Logf("aligned %d/%d, correct %d", aligned, n, correct)
}

// orient returns the query sequence the reported cigar applies to: the
// reverse complement for reverse-strand alignments.
func orient(rd sim.Read, res align.Result) dna.Seq {
	if res.Reverse {
		return rd.Seq.RevComp()
	}
	return rd.Seq
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestAlignGarbageRead(t *testing.T) {
	wl := testWorkload(203, 20000, 0)
	a := New(wl.Ref, DefaultOptions())
	// A read from a different random universe should rarely clear the
	// score-30 floor; and must never produce an invalid result.
	r := rand.New(rand.NewSource(77))
	garbage := sim.RandomGenome(r, 101)
	res, ok := a.Align(garbage)
	if ok && res.Score < a.Options().MinScore {
		t.Errorf("reported alignment below MinScore: %d", res.Score)
	}
}

func TestAlignTooShortRead(t *testing.T) {
	wl := testWorkload(204, 20000, 0)
	a := New(wl.Ref, DefaultOptions())
	if _, ok := a.Align(wl.Ref[50:60].Clone()); ok {
		t.Error("10-base read aligned despite 19-base seed floor")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	wl := testWorkload(205, 20000, 0.01)
	a := New(wl.Ref, DefaultOptions())
	b := a.Clone()
	res1, ok1 := a.Align(wl.Reads[0].Seq)
	res2, ok2 := b.Align(wl.Reads[0].Seq)
	if ok1 != ok2 || res1.Score != res2.Score || res1.RefPos != res2.RefPos {
		t.Error("clone disagrees with original")
	}
	if b.Stats.Reads != 1 || a.Stats.Reads != 1 {
		t.Error("stats shared between clones")
	}
}

func TestStatsCount(t *testing.T) {
	wl := testWorkload(206, 20000, 0.02)
	a := New(wl.Ref, DefaultOptions())
	for _, rd := range wl.Reads[:20] {
		a.Align(rd.Seq)
	}
	if a.Stats.Reads != 20 {
		t.Errorf("Reads = %d", a.Stats.Reads)
	}
	if a.Stats.Extensions == 0 {
		t.Error("no extensions recorded")
	}
}
