// Package bwamem is a from-scratch software read aligner in the BWA-MEM
// mould: SMEM seeding over an FM-index followed by banded affine-gap
// Smith-Waterman extension with clipping. It plays the role the real
// BWA-MEM plays in the paper — the gold standard GenAx is validated
// against (§VIII-A) and the CPU baseline it is benchmarked against
// (Fig 15).
package bwamem

import (
	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/extend"
	"genax/internal/fmindex"
	"genax/internal/sw"
)

// Options configure the aligner.
type Options struct {
	Scoring    align.Scoring
	Band       int // banded-SW radius (the edit budget), 40 like GenAx
	MinSeedLen int // minimum SMEM length, BWA-MEM default 19
	MaxHits    int // per-seed hit cap (0 = unlimited)
	MinScore   int // do not report alignments below this (BWA default 30)
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Scoring:    align.BWAMEMDefaults(),
		Band:       40,
		MinSeedLen: 19,
		MaxHits:    512,
		MinScore:   30,
	}
}

// Stats counts aligner work.
type Stats struct {
	Reads      int
	Extensions int // seed extensions performed
	Aligned    int // reads with a reported alignment
}

// Aligner is a single-threaded alignment engine. The index is shared and
// read-only; Clone cheap-copies the engine for another goroutine.
type Aligner struct {
	ref  dna.Seq
	idx  *fmindex.SMEMIndex
	st   extend.Stitcher
	opts Options
	// Stats accumulates across Align calls.
	Stats Stats
}

// New indexes ref and returns an aligner.
func New(ref dna.Seq, opts Options) *Aligner {
	if opts.MinSeedLen < 1 {
		opts.MinSeedLen = 19
	}
	if opts.Band < 1 {
		opts.Band = 40
	}
	return &Aligner{
		ref:  ref,
		idx:  fmindex.BuildSMEMIndex(ref),
		st:   extend.Stitcher{Eng: extend.BandedEngine{A: sw.NewBandedAligner(opts.Scoring, opts.Band)}},
		opts: opts,
	}
}

// Clone returns an aligner sharing the index but with private scratch
// state, for use on another goroutine.
func (a *Aligner) Clone() *Aligner {
	return &Aligner{
		ref:  a.ref,
		idx:  a.idx,
		st:   extend.Stitcher{Eng: extend.BandedEngine{A: sw.NewBandedAligner(a.opts.Scoring, a.opts.Band)}},
		opts: a.opts,
	}
}

// Options returns the configuration.
func (a *Aligner) Options() Options { return a.opts }

// Ref returns the indexed reference.
func (a *Aligner) Ref() dna.Seq { return a.ref }

// Align maps one read against both strands and returns the best
// alignment. ok is false when no alignment reaches MinScore.
func (a *Aligner) Align(read dna.Seq) (align.Result, bool) {
	a.Stats.Reads++
	best := align.Result{Score: -1 << 30}
	found := false
	for _, strand := range []bool{false, true} {
		q := read
		if strand {
			q = read.RevComp()
		}
		res, ok := a.alignStrand(q)
		if !ok {
			continue
		}
		res.Reverse = strand
		if !found || res.Better(best) {
			best, found = res, true
		}
	}
	if !found || best.Score < a.opts.MinScore {
		return align.Result{}, false
	}
	a.Stats.Aligned++
	return best, true
}

// alignStrand seeds and extends one orientation of the read.
func (a *Aligner) alignStrand(q dna.Seq) (align.Result, bool) {
	smems := a.idx.SMEMs(q, a.opts.MinSeedLen, a.opts.MaxHits)
	if len(smems) == 0 {
		return align.Result{}, false
	}
	seen := make(map[int]struct{})
	best := align.Result{Score: -1 << 30}
	found := false
	for _, s := range smems {
		for _, h := range s.Hits {
			anchor := int(h) - s.Start
			if _, dup := seen[anchor]; dup {
				continue
			}
			seen[anchor] = struct{}{}
			res := a.st.AlignAt(a.opts.Scoring, a.ref, q, s.Start, s.End, int(h), a.opts.Band)
			a.Stats.Extensions++
			if !found || res.Better(best) {
				best, found = res, true
			}
		}
	}
	return best, found
}
