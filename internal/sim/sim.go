// Package sim generates the synthetic workloads that stand in for the
// paper's GRCh38 reference and Illumina platinum reads (§VII): a random
// reference genome, a donor genome derived from it by variant injection
// (SNPs and short indels), and Illumina-style reads sampled from the donor
// with a per-base sequencing-error model and ground-truth labels.
package sim

import (
	"fmt"
	"math/rand"

	"genax/internal/dna"
)

// RandomGenome returns a uniform random genome of n bases.
func RandomGenome(r *rand.Rand, n int) dna.Seq {
	g := make(dna.Seq, n)
	for i := range g {
		g[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return g
}

// VariantType distinguishes injected variants.
type VariantType int

// Variant kinds.
const (
	SNP VariantType = iota
	Insertion
	Deletion
)

// Variant is one difference between the donor and the reference.
type Variant struct {
	// RefPos is the 0-based reference position the variant applies at.
	RefPos int
	Type   VariantType
	// Alt is the substituted or inserted sequence (nil for deletions).
	Alt dna.Seq
	// DelLen is the number of reference bases deleted.
	DelLen int
}

// VariantProfile controls variant injection rates (events per base).
type VariantProfile struct {
	SNPRate   float64 // human-like default ~0.001
	IndelRate float64 // ~0.0001
	MaxIndel  int     // maximum indel length (default 8)
}

// DefaultVariantProfile matches human germline variation rates.
func DefaultVariantProfile() VariantProfile {
	return VariantProfile{SNPRate: 0.001, IndelRate: 0.0001, MaxIndel: 8}
}

// Donor is a variant-carrying genome with the reference coordinate map
// needed to score alignments against ground truth.
type Donor struct {
	Seq      dna.Seq
	Variants []Variant
	// refPosOf[i] = reference coordinate that donor base i aligns to
	// (for inserted bases: the position of the next reference base).
	refPosOf []int32
}

// RefPos maps a donor coordinate to its reference coordinate.
func (d *Donor) RefPos(donorPos int) int {
	if donorPos < 0 || donorPos >= len(d.refPosOf) {
		return -1
	}
	return int(d.refPosOf[donorPos])
}

// MakeDonor injects variants into ref according to the profile.
func MakeDonor(r *rand.Rand, ref dna.Seq, p VariantProfile) *Donor {
	if p.MaxIndel < 1 {
		p.MaxIndel = 8
	}
	d := &Donor{}
	i := 0
	for i < len(ref) {
		roll := r.Float64()
		switch {
		case roll < p.SNPRate:
			alt := dna.Base((int(ref[i]) + 1 + r.Intn(3)) % 4)
			d.Variants = append(d.Variants, Variant{RefPos: i, Type: SNP, Alt: dna.Seq{alt}})
			d.Seq = append(d.Seq, alt)
			d.refPosOf = append(d.refPosOf, int32(i))
			i++
		case roll < p.SNPRate+p.IndelRate/2:
			l := 1 + r.Intn(p.MaxIndel)
			ins := RandomGenome(r, l)
			d.Variants = append(d.Variants, Variant{RefPos: i, Type: Insertion, Alt: ins})
			for _, b := range ins {
				d.Seq = append(d.Seq, b)
				d.refPosOf = append(d.refPosOf, int32(i))
			}
		case roll < p.SNPRate+p.IndelRate:
			l := 1 + r.Intn(p.MaxIndel)
			if i+l > len(ref) {
				l = len(ref) - i
			}
			d.Variants = append(d.Variants, Variant{RefPos: i, Type: Deletion, DelLen: l})
			i += l
		default:
			d.Seq = append(d.Seq, ref[i])
			d.refPosOf = append(d.refPosOf, int32(i))
			i++
		}
	}
	return d
}

// ReadProfile configures read simulation.
type ReadProfile struct {
	Length    int     // 101 for Illumina short reads in the paper
	Coverage  float64 // mean coverage depth (50x in the paper's dataset)
	ErrorRate float64 // per-base sequencing error (~2% worst case)
	// IndelErrorFrac is the fraction of sequencing errors that are
	// single-base indels instead of substitutions (small on Illumina;
	// raise it to stress CIGAR-diverse traceback paths).
	IndelErrorFrac float64
	// ReverseFraction of reads are drawn from the reverse strand (0.5).
	ReverseFraction float64
}

// DefaultReadProfile matches the paper's ERR194147 workload shape.
func DefaultReadProfile() ReadProfile {
	return ReadProfile{Length: 101, Coverage: 5, ErrorRate: 0.02, ReverseFraction: 0.5}
}

// Read is a simulated read with ground truth.
type Read struct {
	ID  string
	Seq dna.Seq
	// TruePos is the reference coordinate of the read's first donor base
	// (of the forward-strand orientation).
	TruePos int
	// Reverse marks reverse-strand reads (Seq is the reverse complement
	// of the donor fragment).
	Reverse bool
	// Errors is the number of sequencing errors injected.
	Errors int
}

// Simulate draws reads from the donor at the configured coverage.
func Simulate(r *rand.Rand, donor *Donor, p ReadProfile) []Read {
	if p.Length <= 0 || len(donor.Seq) < p.Length {
		return nil
	}
	n := int(p.Coverage * float64(len(donor.Seq)) / float64(p.Length))
	margin := 8 // slack so indel errors keep the read at full length
	if len(donor.Seq) < p.Length+margin {
		margin = 0
	}
	reads := make([]Read, 0, n)
	for i := 0; i < n; i++ {
		start := r.Intn(len(donor.Seq) - p.Length - margin + 1)
		src := donor.Seq[start : start+p.Length+margin]
		frag := make(dna.Seq, 0, p.Length)
		errs := 0
		for si := 0; len(frag) < p.Length && si < len(src); {
			if r.Float64() >= p.ErrorRate {
				frag = append(frag, src[si])
				si++
				continue
			}
			errs++
			if margin > 0 && r.Float64() < p.IndelErrorFrac {
				if r.Intn(2) == 0 {
					// Insertion error: emit a random base, keep cursor.
					frag = append(frag, dna.Base(r.Intn(dna.NumBases)))
				} else {
					// Deletion error: skip a donor base.
					si++
				}
				continue
			}
			frag = append(frag, dna.Base((int(src[si])+1+r.Intn(3))%4))
			si++
		}
		for len(frag) < p.Length { // ran off the margin: pad randomly
			frag = append(frag, dna.Base(r.Intn(dna.NumBases)))
		}
		rd := Read{
			ID:      fmt.Sprintf("read%06d", i),
			TruePos: donor.RefPos(start),
			Errors:  errs,
		}
		if r.Float64() < p.ReverseFraction {
			rd.Seq = frag.RevComp()
			rd.Reverse = true
		} else {
			rd.Seq = frag
		}
		reads = append(reads, rd)
	}
	return reads
}

// LongReadProfile configures long-read simulation (PacBio/ONT-style:
// kilobase fragments, error rates an order of magnitude above Illumina,
// indel-dominated error spectra).
type LongReadProfile struct {
	// MeanLength is the target mean read length; individual reads are
	// drawn uniformly from [MeanLength/2, 3*MeanLength/2).
	MeanLength int
	// MinLength floors the draw (default MeanLength/2).
	MinLength int
	Coverage  float64 // mean coverage depth
	ErrorRate float64 // per-base sequencing error (~10% on older chemistry)
	// IndelErrorFrac is the fraction of errors that are single-base
	// indels; long-read platforms are indel-dominated (~0.7).
	IndelErrorFrac float64
	// ReverseFraction of reads are drawn from the reverse strand (0.5).
	ReverseFraction float64
}

// DefaultLongReadProfile is a nanopore-like shape scaled to fit the
// synthetic genomes the benches use.
func DefaultLongReadProfile() LongReadProfile {
	return LongReadProfile{MeanLength: 10000, Coverage: 2, ErrorRate: 0.1, IndelErrorFrac: 0.7, ReverseFraction: 0.5}
}

// SimulateLong draws variable-length long reads from the donor. The error
// loop is the Illumina model's, applied per base over kilobase spans with
// a proportional margin, so indel-heavy reads still come out full length.
func SimulateLong(r *rand.Rand, donor *Donor, p LongReadProfile) []Read {
	if p.MeanLength <= 0 {
		return nil
	}
	minLen := p.MinLength
	if minLen <= 0 {
		minLen = p.MeanLength / 2
		if minLen < 1 {
			minLen = 1
		}
	}
	if len(donor.Seq) < minLen {
		return nil
	}
	n := int(p.Coverage * float64(len(donor.Seq)) / float64(p.MeanLength))
	reads := make([]Read, 0, n)
	for i := 0; i < n; i++ {
		length := minLen + r.Intn(p.MeanLength+1)
		if length > len(donor.Seq) {
			length = len(donor.Seq)
		}
		// Margin proportional to the expected deletion-error count, so a
		// read drawn near the donor end still fills without random pad.
		margin := int(float64(length)*p.ErrorRate*p.IndelErrorFrac) + 8
		if length+margin > len(donor.Seq) {
			margin = len(donor.Seq) - length
		}
		start := r.Intn(len(donor.Seq) - length - margin + 1)
		src := donor.Seq[start : start+length+margin]
		frag := make(dna.Seq, 0, length)
		errs := 0
		for si := 0; len(frag) < length && si < len(src); {
			if r.Float64() >= p.ErrorRate {
				frag = append(frag, src[si])
				si++
				continue
			}
			errs++
			if margin > 0 && r.Float64() < p.IndelErrorFrac {
				if r.Intn(2) == 0 {
					frag = append(frag, dna.Base(r.Intn(dna.NumBases)))
				} else {
					si++
				}
				continue
			}
			frag = append(frag, dna.Base((int(src[si])+1+r.Intn(3))%4))
			si++
		}
		for len(frag) < length { // ran off the margin: pad randomly
			frag = append(frag, dna.Base(r.Intn(dna.NumBases)))
		}
		rd := Read{
			ID:      fmt.Sprintf("long%06d", i),
			TruePos: donor.RefPos(start),
			Errors:  errs,
		}
		if r.Float64() < p.ReverseFraction {
			rd.Seq = frag.RevComp()
			rd.Reverse = true
		} else {
			rd.Seq = frag
		}
		reads = append(reads, rd)
	}
	return reads
}

// Workload bundles a complete synthetic experiment input.
type Workload struct {
	Ref   dna.Seq
	Donor *Donor
	Reads []Read
}

// NewWorkload builds a reference, donor and read set from one seed.
func NewWorkload(seed int64, genomeLen int, vp VariantProfile, rp ReadProfile) *Workload {
	r := rand.New(rand.NewSource(seed))
	ref := RandomGenome(r, genomeLen)
	donor := MakeDonor(r, ref, vp)
	return &Workload{Ref: ref, Donor: donor, Reads: Simulate(r, donor, rp)}
}

// NewLongReadWorkload builds a reference, donor and long-read set from
// one seed.
func NewLongReadWorkload(seed int64, genomeLen int, vp VariantProfile, lp LongReadProfile) *Workload {
	r := rand.New(rand.NewSource(seed))
	ref := RandomGenome(r, genomeLen)
	donor := MakeDonor(r, ref, vp)
	return &Workload{Ref: ref, Donor: donor, Reads: SimulateLong(r, donor, lp)}
}
