package sim

import (
	"math/rand"
	"testing"

	"genax/internal/dna"
	"genax/internal/sw"
)

func TestRandomGenome(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := RandomGenome(r, 10000)
	if len(g) != 10000 {
		t.Fatalf("length %d", len(g))
	}
	var counts [4]int
	for _, b := range g {
		counts[b]++
	}
	for b, c := range counts {
		if c < 2000 || c > 3000 {
			t.Errorf("base %d count %d far from uniform", b, c)
		}
	}
}

func TestMakeDonorNoVariants(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ref := RandomGenome(r, 5000)
	d := MakeDonor(r, ref, VariantProfile{})
	if !d.Seq.Equal(ref) {
		t.Error("zero-rate donor differs from reference")
	}
	if len(d.Variants) != 0 {
		t.Errorf("%d variants injected at zero rate", len(d.Variants))
	}
	for i := 0; i < len(ref); i += 97 {
		if d.RefPos(i) != i {
			t.Fatalf("RefPos(%d) = %d", i, d.RefPos(i))
		}
	}
}

func TestMakeDonorVariantsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ref := RandomGenome(r, 50000)
	d := MakeDonor(r, ref, VariantProfile{SNPRate: 0.01, IndelRate: 0.002, MaxIndel: 6})
	if len(d.Variants) == 0 {
		t.Fatal("no variants at high rates")
	}
	// The edit distance between donor and ref must be explained by the
	// variant weights.
	weight := 0
	for _, v := range d.Variants {
		switch v.Type {
		case SNP:
			weight++
		case Insertion:
			weight += len(v.Alt)
		case Deletion:
			weight += v.DelLen
		}
	}
	dist := sw.MyersDistance(ref, d.Seq)
	if dist > weight {
		t.Errorf("edit distance %d exceeds variant weight %d", dist, weight)
	}
	if dist == 0 {
		t.Error("donor identical to reference despite variants")
	}
	// Coordinate map: donor base maps to a ref base that is equal unless
	// a SNP/insertion covers it; sample and require most to match.
	same := 0
	for i := 0; i < len(d.Seq); i += 13 {
		rp := d.RefPos(i)
		if rp >= 0 && rp < len(ref) && ref[rp] == d.Seq[i] {
			same++
		}
	}
	if frac := float64(same) / float64(len(d.Seq)/13); frac < 0.95 {
		t.Errorf("only %.2f%% of sampled donor bases map to equal ref bases", 100*frac)
	}
}

func TestDonorRefPosBounds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := MakeDonor(r, RandomGenome(r, 100), VariantProfile{})
	if d.RefPos(-1) != -1 || d.RefPos(len(d.Seq)) != -1 {
		t.Error("out-of-range RefPos did not return -1")
	}
}

func TestSimulateReads(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ref := RandomGenome(r, 20000)
	donor := MakeDonor(r, ref, DefaultVariantProfile())
	reads := Simulate(r, donor, ReadProfile{Length: 101, Coverage: 10, ErrorRate: 0.02, ReverseFraction: 0.5})
	wantN := int(10 * float64(len(donor.Seq)) / 101)
	if len(reads) != wantN {
		t.Fatalf("%d reads, want %d", len(reads), wantN)
	}
	nRev, nErr := 0, 0
	for _, rd := range reads {
		if len(rd.Seq) != 101 {
			t.Fatalf("read length %d", len(rd.Seq))
		}
		if rd.TruePos < 0 || rd.TruePos >= len(ref) {
			t.Fatalf("TruePos %d out of range", rd.TruePos)
		}
		if rd.Reverse {
			nRev++
		}
		nErr += rd.Errors
	}
	if nRev < len(reads)/3 || nRev > 2*len(reads)/3 {
		t.Errorf("reverse fraction %d/%d far from half", nRev, len(reads))
	}
	avgErr := float64(nErr) / float64(len(reads))
	if avgErr < 1.0 || avgErr > 3.5 { // 2% of 101 ~= 2 per read
		t.Errorf("average errors per read %.2f, expected ~2", avgErr)
	}
}

func TestSimulatedReadAlignsNearTruePos(t *testing.T) {
	// An error-free forward read from a variant-free donor must match the
	// reference exactly at TruePos.
	r := rand.New(rand.NewSource(6))
	ref := RandomGenome(r, 20000)
	donor := MakeDonor(r, ref, VariantProfile{})
	reads := Simulate(r, donor, ReadProfile{Length: 101, Coverage: 2, ErrorRate: 0, ReverseFraction: 0})
	for _, rd := range reads[:20] {
		if !rd.Seq.Equal(ref[rd.TruePos : rd.TruePos+101]) {
			t.Fatalf("read %s does not match reference at TruePos", rd.ID)
		}
	}
}

func TestReverseReadsAreRevComp(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ref := RandomGenome(r, 20000)
	donor := MakeDonor(r, ref, VariantProfile{})
	reads := Simulate(r, donor, ReadProfile{Length: 50, Coverage: 2, ErrorRate: 0, ReverseFraction: 1})
	for _, rd := range reads[:20] {
		if !rd.Reverse {
			t.Fatal("expected reverse read")
		}
		if !rd.Seq.RevComp().Equal(ref[rd.TruePos : rd.TruePos+50]) {
			t.Fatalf("revcomp of read %s does not match reference", rd.ID)
		}
	}
}

func TestSimulateEmptyAndShort(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	donor := MakeDonor(r, RandomGenome(r, 50), VariantProfile{})
	if got := Simulate(r, donor, ReadProfile{Length: 101, Coverage: 5}); got != nil {
		t.Errorf("donor shorter than read length produced %d reads", len(got))
	}
	if got := Simulate(r, donor, ReadProfile{Length: 0, Coverage: 5}); got != nil {
		t.Error("zero read length produced reads")
	}
}

func TestSimulateLongReads(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ref := RandomGenome(r, 60000)
	donor := MakeDonor(r, ref, DefaultVariantProfile())
	lp := LongReadProfile{MeanLength: 2000, Coverage: 4, ErrorRate: 0.1, IndelErrorFrac: 0.7, ReverseFraction: 0.5}
	reads := SimulateLong(r, donor, lp)
	wantN := int(4 * float64(len(donor.Seq)) / 2000)
	if len(reads) != wantN {
		t.Fatalf("%d reads, want %d", len(reads), wantN)
	}
	nRev := 0
	var totalLen, totalErr int
	for _, rd := range reads {
		if len(rd.Seq) < 1000 || len(rd.Seq) > 3000 {
			t.Fatalf("read length %d outside [MeanLength/2, 3*MeanLength/2]", len(rd.Seq))
		}
		if rd.TruePos < 0 || rd.TruePos >= len(ref) {
			t.Fatalf("TruePos %d out of range", rd.TruePos)
		}
		if rd.Reverse {
			nRev++
		}
		totalLen += len(rd.Seq)
		totalErr += rd.Errors
	}
	if mean := float64(totalLen) / float64(len(reads)); mean < 1700 || mean > 2300 {
		t.Errorf("mean read length %.0f far from 2000", mean)
	}
	if rate := float64(totalErr) / float64(totalLen); rate < 0.07 || rate > 0.14 {
		t.Errorf("observed error rate %.3f far from 0.1", rate)
	}
	if nRev < len(reads)/3 || nRev > 2*len(reads)/3 {
		t.Errorf("reverse fraction %d/%d far from half", nRev, len(reads))
	}
}

func TestSimulateLongErrorFree(t *testing.T) {
	// Error-free forward long reads from a variant-free donor must match
	// the reference exactly at TruePos.
	r := rand.New(rand.NewSource(10))
	ref := RandomGenome(r, 30000)
	donor := MakeDonor(r, ref, VariantProfile{})
	reads := SimulateLong(r, donor, LongReadProfile{MeanLength: 1500, Coverage: 1, ErrorRate: 0, ReverseFraction: 0})
	if len(reads) == 0 {
		t.Fatal("no reads")
	}
	for _, rd := range reads {
		if !rd.Seq.Equal(ref[rd.TruePos : rd.TruePos+len(rd.Seq)]) {
			t.Fatalf("read %s does not match reference at TruePos", rd.ID)
		}
	}
}

func TestSimulateLongEdges(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	donor := MakeDonor(r, RandomGenome(r, 200), VariantProfile{})
	if got := SimulateLong(r, donor, LongReadProfile{MeanLength: 0, Coverage: 5}); got != nil {
		t.Error("zero mean length produced reads")
	}
	if got := SimulateLong(r, donor, LongReadProfile{MeanLength: 2000, MinLength: 500, Coverage: 5}); got != nil {
		t.Errorf("donor shorter than MinLength produced %d reads", len(got))
	}
	// Donor shorter than the drawn span: reads clamp to the donor.
	reads := SimulateLong(r, donor, LongReadProfile{MeanLength: 300, MinLength: 150, Coverage: 20, ErrorRate: 0.05, IndelErrorFrac: 0.7})
	for _, rd := range reads {
		if len(rd.Seq) > 200 {
			t.Fatalf("read longer than donor: %d", len(rd.Seq))
		}
	}
}

func TestNewLongReadWorkloadDeterministic(t *testing.T) {
	lp := LongReadProfile{MeanLength: 1200, Coverage: 1, ErrorRate: 0.08, IndelErrorFrac: 0.7}
	w1 := NewLongReadWorkload(43, 20000, DefaultVariantProfile(), lp)
	w2 := NewLongReadWorkload(43, 20000, DefaultVariantProfile(), lp)
	if !w1.Ref.Equal(w2.Ref) || len(w1.Reads) != len(w2.Reads) {
		t.Fatal("long-read workload not deterministic for equal seeds")
	}
	for i := range w1.Reads {
		if !w1.Reads[i].Seq.Equal(w2.Reads[i].Seq) {
			t.Fatalf("read %d differs", i)
		}
	}
}

func TestNewWorkloadDeterministic(t *testing.T) {
	w1 := NewWorkload(42, 5000, DefaultVariantProfile(), ReadProfile{Length: 50, Coverage: 2, ErrorRate: 0.01})
	w2 := NewWorkload(42, 5000, DefaultVariantProfile(), ReadProfile{Length: 50, Coverage: 2, ErrorRate: 0.01})
	if !w1.Ref.Equal(w2.Ref) || len(w1.Reads) != len(w2.Reads) {
		t.Fatal("workload not deterministic for equal seeds")
	}
	for i := range w1.Reads {
		if !w1.Reads[i].Seq.Equal(w2.Reads[i].Seq) {
			t.Fatalf("read %d differs", i)
		}
	}
	var _ dna.Seq = w1.Donor.Seq
}
