// Package la implements the classical string-dependent Levenshtein
// Automaton that §II of the paper contrasts Silla against. An LA is built
// for one fixed pattern and accepts exactly the strings within edit
// distance K of it; it has (K+1)·(N+1) states, so its size grows with the
// pattern and the automaton must be reprogrammed ("context switched") for
// every new read — the costs that motivated Silla.
package la

import "genax/internal/dna"

// Automaton is a Levenshtein automaton compiled for one pattern.
type Automaton struct {
	pattern dna.Seq
	k       int
	// programmed counts how many states were configured when the
	// automaton was built — the hardware context-switch cost model.
	programmed int
	cur, next  []int
}

const inf = 1 << 29

// New compiles an automaton accepting strings within edit distance k of
// pattern. Compilation touches every state once, which is the per-read
// reprogramming cost a hardware LA accelerator pays (§II: "the hardware
// needs to be reprogrammed every time the string changes").
func New(pattern dna.Seq, k int) *Automaton {
	if k < 0 {
		panic("la: negative edit bound")
	}
	a := &Automaton{
		pattern:    pattern.Clone(),
		k:          k,
		programmed: (k + 1) * (len(pattern) + 1),
		cur:        make([]int, len(pattern)+1),
		next:       make([]int, len(pattern)+1),
	}
	return a
}

// K returns the edit bound.
func (a *Automaton) K() int { return a.k }

// NumStates returns the automaton size, (K+1)·(N+1) — linear in the
// pattern length, unlike Silla's (K+1)² (§II, Figure 1).
func (a *Automaton) NumStates() int { return a.programmed }

// Pattern returns the compiled pattern.
func (a *Automaton) Pattern() dna.Seq { return a.pattern }

// Match runs the automaton over input and reports the edit distance
// between input and the pattern when it is at most K.
func (a *Automaton) Match(input dna.Seq) (dist int, ok bool) {
	p := a.pattern
	n := len(p)
	cur := a.cur
	// Initial epsilon closure: deleting leading pattern characters.
	for j := 0; j <= n; j++ {
		if j <= a.k {
			cur[j] = j
		} else {
			cur[j] = inf
		}
	}
	for _, c := range input {
		next := a.next
		// Insertion: consume input without advancing the pattern.
		next[0] = cur[0] + 1
		for j := 1; j <= n; j++ {
			v := cur[j] + 1 // insertion
			step := cur[j-1]
			if p[j-1] != c {
				step++ // substitution
			}
			if step < v {
				v = step
			}
			next[j] = v
		}
		// Epsilon closure: deletions advance the pattern for free input.
		for j := 1; j <= n; j++ {
			if d := next[j-1] + 1; d < next[j] {
				next[j] = d
			}
		}
		// Prune states beyond the bound so the active set stays honest.
		for j := 0; j <= n; j++ {
			if next[j] > a.k {
				next[j] = inf
			}
		}
		a.cur, a.next = next, cur
		cur = a.cur
	}
	if cur[n] <= a.k {
		return cur[n], true
	}
	return 0, false
}

// ContextSwitchStates models a hardware LA accelerator processing a batch:
// it returns the total number of states programmed when each of the reads
// requires its own automaton (the per-read reprogramming the paper calls
// prohibitive), versus the constant cost of one Silla.
func ContextSwitchStates(readLens []int, k int) (laStates int, sillaStates int) {
	for _, n := range readLens {
		laStates += (k + 1) * (n + 1)
	}
	return laStates, 3 * (k + 1) * (k + 1) / 2
}
