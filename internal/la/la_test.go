package la

import (
	"math/rand"
	"testing"

	"genax/internal/dna"
	"genax/internal/sw"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func TestMatchBasics(t *testing.T) {
	a := New(dna.MustParseSeq("ACGT"), 2)
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"ACGT", 0, true},
		{"ACGA", 1, true},
		{"ACG", 1, true},
		{"ACGTT", 1, true},
		{"AAAA", 0, false},
		{"", 0, false},
		{"AC", 2, true},
	}
	for _, c := range cases {
		got, ok := a.Match(dna.MustParseSeq(c.in))
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Match(%q) = %d,%v; want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestMatchAgainstDP(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for trial := 0; trial < 200; trial++ {
		p := randSeq(r, r.Intn(30))
		in := randSeq(r, r.Intn(30))
		for _, k := range []int{0, 1, 3, 6} {
			a := New(p, k)
			want := sw.EditDistance(p, in)
			got, ok := a.Match(in)
			if want <= k {
				if !ok || got != want {
					t.Fatalf("k=%d: LA %d,%v; DP %d (p=%v in=%v)", k, got, ok, want, p, in)
				}
			} else if ok {
				t.Fatalf("k=%d: LA accepted %d but DP %d > k", k, got, want)
			}
		}
	}
}

func TestAutomatonReusableAcrossInputs(t *testing.T) {
	p := dna.MustParseSeq("ACGTACGTAC")
	a := New(p, 3)
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		in := randSeq(r, 8+r.Intn(5))
		want := sw.EditDistance(p, in)
		got, ok := a.Match(in)
		if want <= 3 && (!ok || got != want) {
			t.Fatalf("trial %d: %d,%v want %d", trial, got, ok, want)
		}
	}
}

func TestNumStatesGrowsWithPattern(t *testing.T) {
	short := New(make(dna.Seq, 10), 4)
	long := New(make(dna.Seq, 1000), 4)
	if short.NumStates() != 5*11 {
		t.Errorf("short states = %d, want 55", short.NumStates())
	}
	if long.NumStates() != 5*1001 {
		t.Errorf("long states = %d", long.NumStates())
	}
	if long.NumStates() <= short.NumStates() {
		t.Error("LA size must grow with the pattern — that is its flaw")
	}
}

func TestContextSwitchStates(t *testing.T) {
	lens := []int{101, 101, 101}
	laTotal, sillaTotal := ContextSwitchStates(lens, 40)
	if laTotal != 3*41*102 {
		t.Errorf("laStates = %d", laTotal)
	}
	if sillaTotal != 3*41*41/2 {
		t.Errorf("sillaStates = %d", sillaTotal)
	}
	if laTotal <= sillaTotal {
		t.Error("per-read LA reprogramming must exceed the one-time Silla cost")
	}
}

func TestNewPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with k=-1 did not panic")
		}
	}()
	New(dna.MustParseSeq("ACGT"), -1)
}
