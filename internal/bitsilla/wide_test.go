package bitsilla

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

// mutateGappy applies `runs` gap runs of up to maxRun bases each (deletion
// or insertion, evenly) plus a sprinkle of substitutions. Random point
// mutations almost never push the diagonal offsets past bit 63, so the
// cross-word shift paths of the wide datapath are exercised with long
// coherent gaps instead.
func mutateGappy(r *rand.Rand, s dna.Seq, maxRun, runs int) dna.Seq {
	out := s.Clone()
	for g := 0; g < runs; g++ {
		if len(out) == 0 {
			break
		}
		p := r.Intn(len(out))
		run := 1 + r.Intn(maxRun)
		if r.Intn(2) == 0 { // deletion run
			if p+run > len(out) {
				run = len(out) - p
			}
			out = append(out[:p], out[p+run:]...)
		} else { // insertion run
			ins := randSeq(r, run)
			out = append(out[:p], append(ins, out[p:]...)...)
		}
	}
	for s := 0; s < 4 && len(out) > 0; s++ {
		p := r.Intn(len(out))
		out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
	}
	return out
}

// TestBitsillaWideGappyRandom drives the multi-word engine with gap-heavy
// inputs whose diagonal offsets cross word boundaries in both dimensions,
// differentially against the cycle oracle.
func TestBitsillaWideGappyRandom(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	sc := align.BWAMEMDefaults()
	for _, tc := range []struct {
		k, refLen, maxRun, trials int
	}{
		{64, 160, 50, 12},
		{65, 160, 55, 12},
		{127, 240, 90, 5},
		{128, 240, 100, 5},
		{191, 260, 80, 3},
	} {
		bm := New(tc.k, sc)
		tm := sillax.NewTracebackMachine(tc.k, sc)
		for trial := 0; trial < tc.trials; trial++ {
			ref := randSeq(r, tc.refLen)
			query := mutateGappy(r, ref, tc.maxRun, 1+r.Intn(3))
			checkSame(t, tc.k, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
		}
	}
}

// TestBitsillaWideMuxCrossings pins the §IV-D composition accounting: a
// 100-base deletion block pushes the deletion offset through bit 63 of
// word 0, so the d+1 transitions must cross into word 1 and be counted,
// while the result stays byte-identical to the oracle. The count itself
// must be deterministic across machines.
func TestBitsillaWideMuxCrossings(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	sc := align.BWAMEMDefaults()
	k := 128
	// 150-base flanks around a 100-base deletion: the through-alignment
	// (score 300 - open - 100*ext) beats clipping at the first flank
	// (score 150), so the optimal path really carries d past bit 63.
	ref := randSeq(r, 400)
	query := append(ref[:150].Clone(), ref[250:]...)
	got := New(k, sc).Extend(ref, query)
	want := sillax.NewTracebackMachine(k, sc).Extend(ref, query)
	checkSame(t, k, ref, query, got, want)
	if got.QueryLen != 300 || got.RefLen != 400 {
		t.Fatalf("deletion block not aligned through: q=%d r=%d cigar=%s", got.QueryLen, got.RefLen, got.Cigar)
	}
	if got.MuxCrossings == 0 {
		t.Fatal("100-base deletion block crossed no word boundary: MuxCrossings = 0")
	}
	again := New(k, sc).Extend(ref, query)
	if again.MuxCrossings != got.MuxCrossings {
		t.Fatalf("MuxCrossings nondeterministic: %d then %d", got.MuxCrossings, again.MuxCrossings)
	}

	// An insertion block moves the i offset across its word boundary
	// instead: the row-summary striping, not the d-shift, carries it.
	ins := randSeq(r, 100)
	query2 := append(ref[:200].Clone(), append(ins, ref[200:]...)...)
	got2 := New(k, sc).Extend(ref, query2)
	want2 := sillax.NewTracebackMachine(k, sc).Extend(ref, query2)
	checkSame(t, k, ref, query2, got2, want2)
}

// TestBitsillaWideWindowReplay shrinks the checkpoint window far below the
// walk length so the backward pass must restore checkpoints and re-execute
// windows to regenerate evicted trail slots. Results must match both the
// oracle and a default-window machine, and the machine must stay reusable
// after a replay-heavy walk.
func TestBitsillaWideWindowReplay(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	sc := align.BWAMEMDefaults()
	for _, winC := range []int{2, 3, 7} {
		bm := New(64, sc)
		bm.wide.winC = winC
		ref := New(64, sc) // default-window reference machine
		tm := sillax.NewTracebackMachine(64, sc)
		for trial := 0; trial < 12; trial++ {
			rs := randSeq(r, 120+r.Intn(60))
			qs := mutateGappy(r, rs, 40, 1+r.Intn(2))
			got := bm.Extend(rs, qs)
			want := tm.Extend(rs, qs)
			checkSame(t, 64, rs, qs, got, want)
			def := ref.Extend(rs, qs)
			if def.Score != got.Score || def.Cigar.String() != got.Cigar.String() ||
				def.MuxCrossings != got.MuxCrossings {
				t.Fatalf("winC=%d diverges from default window: (%d %s mux=%d) vs (%d %s mux=%d)",
					winC, got.Score, got.Cigar, got.MuxCrossings,
					def.Score, def.Cigar, def.MuxCrossings)
			}
		}
	}
}

// TestBitsillaWideAltScoring varies the affine scheme at multi-word bounds
// so the delayed-merging priorities race identically across word edges.
func TestBitsillaWideAltScoring(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	for _, sc := range []align.Scoring{
		{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2},
		{Match: 1, Mismatch: 1, GapOpen: 1, GapExtend: 1},
	} {
		for _, k := range []int{64, 127} {
			bm := New(k, sc)
			tm := sillax.NewTracebackMachine(k, sc)
			for trial := 0; trial < 6; trial++ {
				ref := randSeq(r, 140)
				query := mutateGappy(r, ref, 60, 1+r.Intn(2))
				checkSame(t, k, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
			}
		}
	}
}

func TestBitsillaWideCycleAccounting(t *testing.T) {
	sc := align.BWAMEMDefaults()
	k := 96
	bm := New(k, sc)
	ref := randSeq(rand.New(rand.NewSource(94)), 200)
	res := bm.Extend(ref, ref)
	want := sillax.StreamCycles(len(ref), len(ref), k) + 1 + 4*k
	if res.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, want)
	}
	if res.Fallback {
		t.Fatal("wide path reported Fallback")
	}
}

// TestBitsillaWideSteadyStateAllocs pins the warm wide path: once the
// trail ring and checkpoints are grown, Extend allocates nothing beyond
// the Cigar reversal.
func TestBitsillaWideSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	sc := align.BWAMEMDefaults()
	bm := New(96, sc)
	ref := randSeq(r, 300)
	query := mutateGappy(r, ref, 70, 2)
	bm.Extend(ref, query) // grow ring + checkpoints + walk scratch
	allocs := testing.AllocsPerRun(10, func() {
		bm.Extend(ref, query)
	})
	if allocs > 1 { // the fresh Cigar reversal
		t.Fatalf("steady-state wide Extend allocates %.1f times per call, want <= 1", allocs)
	}
}

// TestBitsillaWideMachineReuse alternates disparate inputs through one
// machine; stale liveness or trail bits from a prior call would surface as
// oracle divergence.
func TestBitsillaWideMachineReuse(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	sc := align.BWAMEMDefaults()
	bm := New(80, sc)
	tm := sillax.NewTracebackMachine(80, sc)
	for trial := 0; trial < 12; trial++ {
		var ref, query dna.Seq
		switch trial % 3 {
		case 0:
			ref = randSeq(r, 250)
			query = mutateGappy(r, ref, 70, 2)
		case 1:
			ref = randSeq(r, 10)
			query = randSeq(r, 10)
		default:
			ref = randSeq(r, 120)
			query = mutate(r, ref, r.Intn(12))
		}
		checkSame(t, 80, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
	}
}

// TestBitsillaWideEdgeCases mirrors the single-word edge table at a
// multi-word bound.
func TestBitsillaWideEdgeCases(t *testing.T) {
	sc := align.BWAMEMDefaults()
	tm := sillax.NewTracebackMachine(70, sc)
	bm := New(70, sc)
	for _, tc := range []struct{ ref, query dna.Seq }{
		{nil, nil},
		{nil, dna.Seq{0, 1, 2, 3}},
		{dna.Seq{0, 1, 2, 3}, nil},
		{dna.Seq{2}, dna.Seq{2}},
		{dna.Seq{2}, dna.Seq{3}},
	} {
		checkSame(t, 70, tc.ref, tc.query, bm.Extend(tc.ref, tc.query), tm.Extend(tc.ref, tc.query))
	}
}

func BenchmarkExtendWide(b *testing.B) {
	r := rand.New(rand.NewSource(97))
	sc := align.BWAMEMDefaults()
	ref := randSeq(r, 1400)
	query := mutateGappy(r, ref[:1200], 60, 3)
	m := New(96, sc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Extend(ref, query)
	}
}
