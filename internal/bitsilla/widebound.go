package bitsilla

// The witness prepass of the wide datapath. Futility pruning against the
// running best is structurally toothless on long reads: at cycle c the
// best is ≈ a·c while the completion bound grants a·(cycles remaining) of
// slack, so every state in the (i+d <= K) triangle survives until the
// read's tail and the scan degenerates to the cycle model's dense sweep.
// Pruning against a certified lower bound L on the PASS'S FINAL score is
// just as exact — see the invariants below — and for a well-matching read
// a near-optimal L collapses the live set to a narrow corridor around the
// true alignment for the whole pass.
//
// Exactness: an offer of value v into a cell with min(remR, remQ) = rem
// can contribute at most v + a·rem to the final best (every remaining
// cycle gains at most a). Dropping offers with v + a·rem < L keeps every
// cell of every final-score-achieving chain (those have v + a·rem >= S >=
// L), and the value-determining ancestry of such cells is closed under the
// same property — a predecessor's bound is never below its successor's.
// Offers of equal value into the same cell share coordinates and therefore
// share prune status, so the strict-greater races that pick trail codes
// are decided among exactly the same contenders; the reported best, its
// chain, and every trail word the walk reads are byte-identical to the
// unpruned pass for ANY L <= S. L > S would be unsound; L is therefore
// always the score of one concrete machine-legal witness alignment.
//
// The witness is a banded affine extension DP over diagonals
// |qPos - refPos| <= wideBandHalf, anchored at the origin like the
// machine, scored with the machine's costs, free to end anywhere (the
// machine clips the query tail for free). Machine legality is enforced by
// carrying each cell's edit budget u = i + d + layer: every substitution,
// insertion and deletion costs one unit (exactly the i+d+1+layer <= k
// branch guards of stepWide) and cells whose budget exceeds K are killed —
// the budget is monotone along a path, so a killed prefix can never
// redeem itself. Only closed cells (last op match or substitution) feed L,
// because the machine never records a best from its gap planes. Paths the
// band or the budget cannot reach only lower L, never break it.

import "genax/internal/dna"

// wideBandHalf is the diagonal half-width of the witness prepass. Wide
// enough for the cumulative indel drift of a kilobase read; drift beyond
// it costs pruning sharpness, never correctness.
const wideBandHalf = 32

// wideBandW is the witness band width in diagonals.
const wideBandW = 2*wideBandHalf + 1

// wideBoundBuf is the witness DP's rolling state: previous-row closed (h),
// insertion (i) and deletion (d) scores with their edit budgets, plus the
// next row's h/i staging. Fixed-size — the prepass never allocates.
type wideBoundBuf struct {
	h, i, d    [wideBandW]int32
	uh, ui, ud [wideBandW]int32
	h2, i2     [wideBandW]int32
	uh2, ui2   [wideBandW]int32
}

// wideBound computes the certified lower bound L for one extension.
//
//genax:hotpath
func (m *Machine) wideBound(ref, query dna.Seq) int32 {
	n, qn := len(ref), len(query)
	if n == 0 || qn == 0 {
		return 0
	}
	a, b, open, ext := m.cs.A, m.cs.B, m.cs.Open, m.cs.Ext
	k := int32(m.k)
	pp := &m.wide.pp
	const B = wideBandHalf

	for j := 0; j < wideBandW; j++ {
		pp.h[j], pp.i[j], pp.d[j] = negScore, negScore, negScore
	}
	pp.h[B], pp.uh[B] = 0, 0
	// Leading deletions: ref consumed before any query, descending so each
	// cell sees the fresher deletion one diagonal up.
	for j := B - 1; j >= 0; j-- {
		r := B - j // = -delta = ref bases consumed
		if r > n {
			break
		}
		v, u := negScore, int32(0)
		if pp.h[j+1] > negScore {
			v, u = pp.h[j+1]-open, pp.uh[j+1]+1
		}
		if pp.d[j+1] > negScore && pp.d[j+1]-ext > v {
			v, u = pp.d[j+1]-ext, pp.ud[j+1]+1
		}
		if v > negScore && u <= k {
			pp.d[j], pp.ud[j] = v, u
		}
	}

	best := int32(0)
	for q := 1; q <= qn; q++ {
		qb := query[q-1] & 3
		for j := 0; j < wideBandW; j++ {
			r := q - (j - B)
			hv, hu := negScore, int32(0)
			iv, iu := negScore, int32(0)
			// Insertion: consume query only, from one diagonal down in the
			// previous row; gap-switch from a deletion opens a fresh gap.
			if j > 0 && r >= 0 && r <= n {
				if pp.h[j-1] > negScore {
					iv, iu = pp.h[j-1]-open, pp.uh[j-1]+1
				}
				if pp.i[j-1] > negScore && pp.i[j-1]-ext > iv {
					iv, iu = pp.i[j-1]-ext, pp.ui[j-1]+1
				}
				if pp.d[j-1] > negScore && pp.d[j-1]-open > iv {
					iv, iu = pp.d[j-1]-open, pp.ud[j-1]+1
				}
				if iv > negScore && iu > k {
					iv = negScore
				}
			}
			// Closed: consume both, from the same diagonal in the previous
			// row, out of whichever state scored best (smaller budget on
			// ties — same score, strictly more headroom).
			if r >= 1 && r <= n {
				pv, pu := pp.h[j], pp.uh[j]
				if pp.i[j] > pv || (pp.i[j] == pv && pp.i[j] > negScore && pp.ui[j] < pu) {
					pv, pu = pp.i[j], pp.ui[j]
				}
				if pp.d[j] > pv || (pp.d[j] == pv && pp.d[j] > negScore && pp.ud[j] < pu) {
					pv, pu = pp.d[j], pp.ud[j]
				}
				if pv > negScore {
					if qb == ref[r-1]&3 {
						hv, hu = pv+a, pu
					} else {
						hv, hu = pv-b, pu+1
					}
					if hu > k {
						hv = negScore
					}
				}
			}
			pp.h2[j], pp.uh2[j] = hv, hu
			pp.i2[j], pp.ui2[j] = iv, iu
			if hv > best {
				best = hv
			}
		}
		// Deletion sweep: consume ref only, within the current row,
		// descending so diagonal delta feeds delta-1.
		for j := wideBandW - 1; j >= 0; j-- {
			r := q - (j - B)
			v, u := negScore, int32(0)
			if r >= 1 && r <= n && j+1 < wideBandW {
				if pp.h2[j+1] > negScore {
					v, u = pp.h2[j+1]-open, pp.uh2[j+1]+1
				}
				if pp.i2[j+1] > negScore && pp.i2[j+1]-open > v {
					v, u = pp.i2[j+1]-open, pp.ui2[j+1]+1
				}
				if pp.d[j+1] > negScore && pp.d[j+1]-ext > v {
					v, u = pp.d[j+1]-ext, pp.ud[j+1]+1
				}
				if v > negScore && u > k {
					v = negScore
				}
			}
			pp.d[j], pp.ud[j] = v, u
		}
		pp.h, pp.uh = pp.h2, pp.uh2
		pp.i, pp.ui = pp.i2, pp.ui2
	}
	return best
}

// wideSuffixFree marks suffix-table cells whose ref position is outside
// the lattice; the huge value makes the suffix threshold vacuous there,
// deferring to the generic remaining-matches floor.
const wideSuffixFree = int32(1) << 28

// wideSuffixBound fills the suffix bound table for one extension: for
// every position (refPos, qPos) with |refPos - qPos| <= K and entry state
// (closed, insertion, deletion), an UPPER bound on the score any state
// there can still add — the free-end banded affine DP run backward, with
// no edit budget (dropping a constraint only raises an upper bound). A
// state of value v at that position can contribute at most v + U to the
// pass's final best, so offers with v + U < L die without touching
// anything the witness argument protects: a cell on any final-score-
// achieving chain has v + achievable >= S, and U >= achievable by
// soundness, so the whole value-determining ancestry clears the
// threshold. The closed bound is floored at zero because a closed value
// was already a best candidate when written — that floor is what keeps
// every potential recording alive.
//
// The band is the FULL +-K diagonal range, not the witness prepass's
// narrow corridor: every machine path keeps |d - i| <= i + d <= K, so a
// position outside the band is unreachable and a move across the band
// edge is machine-illegal — the boundary is a true -inf, which is what
// makes the interior tight. (A generous band-exit bound would leak
// inward at -ext per diagonal and cap the whole table near the generic
// floor.) Layout: (qPos*(2K+1) + j)*3 + state, with
// j = refPos - qPos + K and states closed/ins/del.
func (m *Machine) wideSuffixBound(ref, query dna.Seq) {
	n, qn := len(ref), len(query)
	a, b, open, ext := m.cs.A, m.cs.B, m.cs.Open, m.cs.Ext
	kk := m.k
	w := 2*kk + 1
	need := (qn + 1) * w * 3
	wd := m.wide
	if cap(wd.stab) < need {
		wd.stab = make([]int32, need)
	}
	tab := wd.stab[:need]
	wd.stab = tab
	// Query exhausted: nothing can close (a close consumes query), so
	// gap states have no future and closed states gain nothing more.
	for j := 0; j < w; j++ {
		r := qn + j - kk
		o := (qn*w + j) * 3
		if r < 0 || r > n {
			tab[o], tab[o+1], tab[o+2] = wideSuffixFree, wideSuffixFree, wideSuffixFree
			continue
		}
		tab[o], tab[o+1], tab[o+2] = 0, negScore, negScore
	}
	for q := qn - 1; q >= 0; q-- {
		row, nxt := q*w*3, (q+1)*w*3
		for j := w - 1; j >= 0; j-- {
			r := q + j - kk
			o := row + j*3
			if r < 0 || r > n {
				tab[o], tab[o+1], tab[o+2] = wideSuffixFree, wideSuffixFree, wideSuffixFree
				continue
			}
			// Close: consume both, same diagonal in the next row.
			dg := int32(negScore)
			if r < n {
				nm := tab[nxt+j*3]
				if ref[r]&3 == query[q]&3 {
					dg = nm + a
				} else {
					dg = nm - b
				}
			}
			// Insertion entry: consume query, one diagonal down in the
			// next row. A band exit is machine-illegal, never bounded.
			uin := int32(negScore)
			if j > 0 {
				uin = tab[nxt+(j-1)*3+1]
			}
			// Deletion entry: consume ref, within this row; computed
			// first by the descending sweep.
			udn := int32(negScore)
			if r < n && j+1 < w {
				udn = tab[row+(j+1)*3+2]
			}
			um := int32(0)
			if dg > um {
				um = dg
			}
			ui, ud := dg, dg
			if v := uin - open; v > um {
				um = v
			}
			if v := udn - open; v > um {
				um = v
			}
			if v := uin - ext; v > ui {
				ui = v
			}
			if v := udn - open; v > ui {
				ui = v
			}
			if v := uin - open; v > ud {
				ud = v
			}
			if v := udn - ext; v > ud {
				ud = v
			}
			tab[o], tab[o+1], tab[o+2] = um, ui, ud
		}
	}
}
