// Package bitsilla is the bit-parallel rendering of the SillaX traceback
// machine (§IV): the same bounded-edit clipped extension with affine-gap
// scoring and a full-query CIGAR, but with the PE grid's activations and
// comparator outputs packed into uint64 words so each cycle touches
// O(K/64+1) words per live grid row instead of (K+1)² scalar registers.
// GenASM and Scrooge demonstrated that edit-automaton semantics collapse
// into word-parallel bit-vector updates; this package applies the idiom to
// the paper's three-dimensional (i, d, substitution-layer) state space.
//
// The engine is byte-identical to sillax.TracebackMachine by construction:
//
//   - Score registers live exactly one machine cycle (the cycle model wipes
//     its next-planes every swap), so a register's writer is uniquely named
//     by (cycle, i, d, plane). bitsilla stores each write's 2-bit source
//     code in two packed bit-planes per step — a time-indexed trail that
//     later overwrites cannot corrupt, which is why traceback here never
//     re-executes (the §IV-C broken-trail re-runs are a property of the
//     chip's in-place 2-bit pointers, not of the alignment semantics).
//   - Same-cycle write races resolve by the same strict-greater compares in
//     the same scan order (i ascending, d ascending; wait-delivery before
//     layer 0 before layer 1), so every tie breaks identically.
//   - Futile offers — values that could not strictly beat the best score
//     already standing even by matching every remaining base — are
//     dropped. v+potential is non-increasing along every transition and
//     best is monotone, so a pruned lineage can never update best nor
//     appear on the traceback walk, and any viable offer racing for the
//     same register carries a value above the pruning bar, so it wins the
//     register whether or not futile competitors were dropped. The cycle
//     model streams those states anyway; dropping them keeps the live set
//     in a band around the current optimum.
//
// The per-state liveness masks are the software twin of the hardware's
// activation wires: one uint64 per grid row and plane, with the comparator
// periphery reduced to four query-equality shift registers (qeq) indexed by
// the streamed reference base — a row's PEs compare in one AND.
//
// Machines are not safe for concurrent use; allocate one per lane.
package bitsilla

import (
	"math/bits"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

// MaxWordK is the largest edit bound the single-word datapath supports:
// one uint64 per grid row holds all K+1 diagonal offsets. Larger bounds
// route to the multi-word datapath (wide.go): the same semantics with
// state striped across ceil((K+1)/64) words per row — the §IV-D tile
// composition, with cross-word shifts counted as mux crossings. The
// cycle-level degrade that used to serve K > MaxWordK remains available
// explicitly via NewCycleFallback.
const MaxWordK = 63

// Register planes. Layer l's closed/insertion/deletion planes are
// 3l, 3l+1, 3l+2; pWT is the collapsed wait state of the merged
// two-substitution path (Fig 6).
const (
	pM0 = iota
	pI0
	pD0
	pM1
	pI1
	pD1
	pWT
	numPlanes
)

// planeWords is the trail stride per (cycle, row): two code-bit words
// (lo, hi) for each plane.
const planeWords = 2 * numPlanes

// codeWait is the trail code of a wait-state delivery into a layer-0
// closed register; codes 0..2 name the m/i/d source register.
const codeWait = 3

const negScore = sillax.Neg

// Result is the outcome of one bit-parallel seed extension. It matches
// sillax.TracebackResult field for field where the semantics overlap;
// re-run accounting does not exist here (the time-indexed trail cannot
// break), so Cycles is the five-phase architectural count without the
// re-execution term — figure reproductions that need re-run statistics
// keep using the cycle model.
type Result struct {
	// Score is the best clipped extension score.
	Score int
	// Cigar is the full edit trace including the trailing soft clip.
	Cigar align.Cigar
	// QueryLen and RefLen are the consumed prefix lengths.
	QueryLen, RefLen int
	// Cycles is the architectural cycle count (streaming phase plus the
	// 4K traceback phases of §IV-C, without re-runs).
	Cycles int
	// MuxCrossings counts accepted writes whose d+1 shift crossed a
	// 64-bit word boundary on the multi-word datapath — signals through
	// the §IV-D reconfiguration muxes, the software twin of
	// sillax.ComposedEditMachine.MuxCrossings. Zero on the single-word
	// datapath (one word per row — no boundaries to cross).
	MuxCrossings int64
	// Fallback reports that this call was served by the cycle-level
	// machine (NewCycleFallback) instead of a bit-parallel datapath.
	Fallback bool
}

// Machine is the bit-parallel Silla extension engine.
type Machine struct {
	k  int
	w  int
	wn int // w*w, the per-plane register count
	sc align.Scoring
	cs sillax.Costs

	// cur/nxt are the score planes, flat plane-major (p*wn + i*w + d);
	// live/nlive mask which registers hold a real value this cycle
	// (word p*w+i, bit d), and rows summarizes which rows of each plane
	// have any live bit — the scan only visits live rows and live cells.
	cur, nxt    []int32
	live, nlive []uint64
	rows        [numPlanes]uint64

	// qeq is the comparator periphery: bit d of qeq[b] reports whether
	// query[c-d] == b at the current cycle c, maintained by one shift-in
	// per cycle. A whole row's match wires are then qeq[ref[c-i]].
	qeq [dna.NumBases]uint64

	// trail holds the 2-bit write codes as two bit-plane words per
	// (cycle, row, plane). Entries are only ever read for registers that
	// were written this Extend, so the slab is never cleared — every
	// accepted write rewrites both of its code bits.
	trail []uint64

	// revBuf is the reusable backward-walk buffer; the reported Cigar is
	// a fresh reversal of it, so results stay valid across Extend calls.
	revBuf align.Cigar

	// wide is the multi-word datapath state for k > MaxWordK (wide.go).
	wide *wideState

	// fallback is the cycle-level machine behind NewCycleFallback.
	fallback *sillax.TracebackMachine
}

// New builds a bit-parallel machine with edit bound k.
func New(k int, sc align.Scoring) *Machine {
	if k < 0 {
		panic("bitsilla: negative edit bound")
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{k: k, w: k + 1, wn: (k + 1) * (k + 1), sc: sc, cs: sillax.NewCosts(sc)}
	if k > MaxWordK {
		m.initWide()
		return m
	}
	m.cur = make([]int32, numPlanes*m.wn)
	m.nxt = make([]int32, numPlanes*m.wn)
	m.live = make([]uint64, numPlanes*m.w)
	m.nlive = make([]uint64, numPlanes*m.w)
	return m
}

// NewCycleFallback builds a machine that serves every Extend with the
// cycle-level traceback model — the pre-multi-word degrade path for
// K > MaxWordK, kept constructible so the fallback cost stays measurable
// (genax-bench -compare-longread baselines against it) and so deployments
// can pin the cycle model without switching engines. Results are
// byte-identical to the bit-parallel datapaths; Result.Fallback is set so
// the pipeline can count how much work ran at model speed.
func NewCycleFallback(k int, sc align.Scoring) *Machine {
	if k < 0 {
		panic("bitsilla: negative edit bound")
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{k: k, w: k + 1, wn: (k + 1) * (k + 1), sc: sc, cs: sillax.NewCosts(sc)}
	m.fallback = sillax.NewTracebackMachine(k, sc)
	return m
}

// K returns the edit bound.
func (m *Machine) K() int { return m.k }

// ensureTrail grows the trail slab to at least n words. Growth is kept
// out of the annotated hot path; steady state reuses the slab.
func (m *Machine) ensureTrail(n int) {
	if cap(m.trail) < n {
		m.trail = make([]uint64, n)
	}
	m.trail = m.trail[:n]
}

// reset clears the live masks of the previous call (scores are masked by
// liveness, so only masks need wiping — the O(K²) register clears of the
// cycle model are exactly the work this engine deletes) and arms the
// origin state (0,0|layer 0, closed) with score zero. The next-side masks
// hold a per-cycle invariant: Extend leaves them cleared after every swap,
// so between calls they are already zero.
//
//genax:hotpath
func (m *Machine) reset() {
	for p := 0; p < numPlanes; p++ {
		pw := p * m.w
		for rw := m.rows[p]; rw != 0; rw &= rw - 1 {
			m.live[pw+bits.TrailingZeros64(rw)] = 0
		}
		m.rows[p] = 0
	}
	for b := range m.qeq {
		m.qeq[b] = 0
	}
	m.cur[0] = 0
	m.live[0] = 1
	m.rows[pM0] = 1
}

// futileThr is the lowest non-futile offer for a target register with
// remR reference and remQ query bases left to consume: below it, even
// matching every remaining pair cannot strictly beat the best score
// already standing. Registers written from now on can only matter if
// they are ancestors of a future best endpoint, and best updates are
// strict-greater, so the bar is best+1 minus the maximum remaining
// gain; a path at best+1-a*rem exactly (a pure-match tail of a future
// optimum) is kept. remaining is capped so the product stays far from
// the Neg sentinel.
//
//genax:hotpath
func futileThr(remR, remQ int, a, best int32) int32 {
	rem := remR
	if remQ < rem {
		rem = remQ
	}
	if rem < 0 {
		rem = 0
	}
	if rem > 1<<20 {
		rem = 1 << 20 // a lower threshold only prunes less; never overflows
	}
	return best + 1 - a*int32(rem)
}

// trailCode reads back the 2-bit source code of the register (i,d) of
// plane p that became live at cycle t.
//
//genax:hotpath
func (m *Machine) trailCode(p, t, i, d int) int {
	o := (t*m.w+i)*planeWords + 2*p
	bit := uint64(1) << uint(d)
	code := 0
	if m.trail[o]&bit != 0 {
		code = 1
	}
	if m.trail[o+1]&bit != 0 {
		code |= 2
	}
	return code
}

// Extend runs a bit-parallel traced seed extension of query against ref,
// both anchored at position 0, with clipping. The returned Result is
// byte-identical to sillax.TracebackMachine.Extend on the same inputs
// (Score, QueryLen, RefLen, Cigar), enforced by the differential tests.
//
// The register-offer sequence below (compare against the target's current
// next-cycle value with strict greater, record value, liveness bit, row
// summary and 2-bit trail code) is open-coded at each of its six sites —
// wait delivery, match, the two substitution branches and the two gap
// branches — because a call per offer dominated the cycle loop.
//
//genax:hotpath
func (m *Machine) Extend(ref, query dna.Seq) Result {
	if m.fallback != nil {
		tr := m.fallback.Extend(ref, query)
		return Result{Score: tr.Score, Cigar: tr.Cigar, QueryLen: tr.QueryLen, RefLen: tr.RefLen, Cycles: tr.Cycles, Fallback: true}
	}
	if m.wide != nil {
		return m.extendWide(ref, query)
	}
	k, w, wn := m.k, m.w, m.wn
	n, qn := len(ref), len(query)
	maxCycle := sillax.StreamCycles(n, qn, k)
	m.ensureTrail((maxCycle + 2) * w * planeWords)
	m.reset()
	a, b, open, ext := m.cs.A, m.cs.B, m.cs.Open, m.cs.Ext

	best := int32(0)
	bestI, bestD, bestCycle := 0, 0, 0
	bestPlane := pM0

	for c := 0; c <= maxCycle; c++ {
		// Shift the comparator periphery: after this, bit d of qeq[x]
		// says query[c-d] == x (out-of-range positions stay 0, which is
		// how the phantom mismatches past the string ends arise — the
		// cycle model behaves identically).
		m.qeq[0] <<= 1
		m.qeq[1] <<= 1
		m.qeq[2] <<= 1
		m.qeq[3] <<= 1
		if c < qn {
			m.qeq[query[c]&3] |= 1
		}
		any := false
		t := c + 1
		tw := t * w
		cur, nxt := m.cur, m.nxt
		live, nlive := m.live, m.nlive
		trail := m.trail
		var nr [numPlanes]uint64
		rowsAny := m.rows[pM0] | m.rows[pI0] | m.rows[pD0] |
			m.rows[pM1] | m.rows[pI1] | m.rows[pD1] | m.rows[pWT]
		for rw := rowsAny; rw != 0; rw &= rw - 1 {
			i := bits.TrailingZeros64(rw)
			var rm [numPlanes]uint64
			combined := uint64(0)
			for p := 0; p < numPlanes; p++ {
				v := live[p*w+i]
				rm[p] = v
				combined |= v
			}
			var matchRow uint64
			riPos := c - i
			if riPos >= 0 && riPos < n {
				matchRow = m.qeq[ref[riPos]&3]
			}
			remR := n - riPos // reference bases not yet consumed by this row
			base := i * w
			rowBit := uint64(1) << uint(i)
			for cm := combined; cm != 0; cm &= cm - 1 {
				d := bits.TrailingZeros64(cm)
				bit := uint64(1) << uint(d)
				idx := base + d
				remQ := qn - c + d
				thrDiag := futileThr(remR-1, remQ-1, a, best) // match/sub/wait targets
				// Wait-state delivery: the merged two-substitution
				// path arrives closed at layer 0 of (i+1,d+1).
				if rm[pWT]&bit != 0 {
					v := cur[pWT*wn+idx]
					ti := idx + w + 1
					tb := bit << 1
					ok := v > negScore
					if nlive[i+1]&tb != 0 {
						ok = v > nxt[ti]
					}
					if ok {
						nxt[ti] = v
						nlive[i+1] |= tb
						nr[pM0] |= rowBit << 1
						o := (tw + i + 1) * planeWords
						trail[o] |= tb // codeWait = 3: both bits set
						trail[o+1] |= tb
						any = true
					}
				}
				for layer := 0; layer < 2; layer++ {
					pm := 3 * layer
					mv, iv, dv := negScore, negScore, negScore
					if rm[pm]&bit != 0 {
						mv = cur[pm*wn+idx]
					}
					if rm[pm+1]&bit != 0 {
						iv = cur[(pm+1)*wn+idx]
					}
					if rm[pm+2]&bit != 0 {
						dv = cur[(pm+2)*wn+idx]
					}
					if mv == negScore && iv == negScore && dv == negScore {
						continue
					}
					any = true
					top, topCode := mv, uint64(0)
					if iv > top {
						top, topCode = iv, 1
					}
					if dv > top {
						top, topCode = dv, 2
					}
					if matchRow&bit != 0 {
						v := top + a
						if v >= thrDiag {
							ti := pm*wn + idx
							li := pm*w + i
							ok := v > negScore
							if nlive[li]&bit != 0 {
								ok = v > nxt[ti]
							}
							if ok {
								nxt[ti] = v
								nlive[li] |= bit
								nr[pm] |= rowBit
								o := (tw+i)*planeWords + 2*pm
								lo := trail[o] &^ bit
								hi := trail[o+1] &^ bit
								if topCode&1 != 0 {
									lo |= bit
								}
								if topCode&2 != 0 {
									hi |= bit
								}
								trail[o], trail[o+1] = lo, hi
								if v > best {
									best, bestI, bestD, bestCycle, bestPlane = v, i, d, t, pm
								}
							}
						}
					} else if top > negScore {
						// Substitution branch (the third dimension).
						if layer == 0 {
							if i+d+1 <= k {
								v := top - b
								if v >= thrDiag {
									ti := pM1*wn + idx
									li := pM1*w + i
									ok := v > negScore
									if nlive[li]&bit != 0 {
										ok = v > nxt[ti]
									}
									if ok {
										nxt[ti] = v
										nlive[li] |= bit
										nr[pM1] |= rowBit
										o := (tw+i)*planeWords + 2*pM1
										lo := trail[o] &^ bit
										hi := trail[o+1] &^ bit
										if topCode&1 != 0 {
											lo |= bit
										}
										if topCode&2 != 0 {
											hi |= bit
										}
										trail[o], trail[o+1] = lo, hi
										if v > best {
											best, bestI, bestD, bestCycle, bestPlane = v, i, d, t, pM1
										}
									}
								}
							}
						} else if i+d+2 <= k {
							v := top - b
							if v >= thrDiag {
								ti := pWT*wn + idx
								li := pWT*w + i
								ok := v > negScore
								if nlive[li]&bit != 0 {
									ok = v > nxt[ti]
								}
								if ok {
									nxt[ti] = v
									nlive[li] |= bit
									nr[pWT] |= rowBit
									o := (tw+i)*planeWords + 2*pWT
									lo := trail[o] &^ bit
									hi := trail[o+1] &^ bit
									if topCode&1 != 0 {
										lo |= bit
									}
									if topCode&2 != 0 {
										hi |= bit
									}
									trail[o], trail[o+1] = lo, hi
									if v > best {
										// The wait value becomes a closed
										// score at (i+1,d+1) next cycle;
										// best points there (same score,
										// same clip point).
										best, bestI, bestD, bestCycle, bestPlane = v, i+1, d+1, t+1, pM0
									}
								}
							}
						}
					}
					// Gap branches fire even on a match (§IV-B), with
					// delayed merging: open paths extend cheaply,
					// closed ones pay the open cost. Source priorities
					// replicate the cycle model's compare order.
					if i+1+d+layer <= k {
						v, code := mv-open, uint64(0)
						if dv-open > v {
							v, code = dv-open, 2
						}
						if iv-ext > v {
							v, code = iv-ext, 1
						}
						if v >= futileThr(remR, remQ-1, a, best) {
							pi := pm + 1
							ti := pi*wn + idx + w
							li := pi*w + i + 1
							ok := v > negScore
							if nlive[li]&bit != 0 {
								ok = v > nxt[ti]
							}
							if ok {
								nxt[ti] = v
								nlive[li] |= bit
								nr[pi] |= rowBit << 1
								o := (tw+i+1)*planeWords + 2*pi
								lo := trail[o] &^ bit
								hi := trail[o+1] &^ bit
								if code&1 != 0 {
									lo |= bit
								}
								if code&2 != 0 {
									hi |= bit
								}
								trail[o], trail[o+1] = lo, hi
							}
						}
					}
					if i+d+1+layer <= k {
						v, code := mv-open, uint64(0)
						if iv-open > v {
							v, code = iv-open, 1
						}
						if dv-ext > v {
							v, code = dv-ext, 2
						}
						if v >= futileThr(remR-1, remQ, a, best) {
							pd := pm + 2
							ti := pd*wn + idx + 1
							li := pd*w + i
							tb := bit << 1
							ok := v > negScore
							if nlive[li]&tb != 0 {
								ok = v > nxt[ti]
							}
							if ok {
								nxt[ti] = v
								nlive[li] |= tb
								nr[pd] |= rowBit
								o := (tw+i)*planeWords + 2*pd
								lo := trail[o] &^ tb
								hi := trail[o+1] &^ tb
								if code&1 != 0 {
									lo |= tb
								}
								if code&2 != 0 {
									hi |= tb
								}
								trail[o], trail[o+1] = lo, hi
							}
						}
					}
				}
			}
		}
		m.cur, m.nxt = nxt, cur
		m.live, m.nlive = nlive, live
		old := m.rows
		m.rows = nr
		// The vacated masks (now the next side) are cleared here, which
		// is what maintains reset's between-calls invariant.
		for p := 0; p < numPlanes; p++ {
			pw := p * w
			for rw := old[p]; rw != 0; rw &= rw - 1 {
				live[pw+bits.TrailingZeros64(rw)] = 0
			}
		}
		if !any {
			break
		}
	}

	res := Result{Score: int(best), Cycles: maxCycle + 1 + 4*k}
	rev := m.revBuf[:0]
	if tail := qn - (bestCycle - bestD); best > 0 && tail > 0 {
		rev = rev.Append(align.OpClip, tail)
	} else if best == 0 {
		rev = rev.Append(align.OpClip, qn)
	}
	if best > 0 {
		// Backward walk over the time-indexed trail. Every visited
		// register was written this Extend at exactly the cycle the walk
		// holds, so each code read names the true source; there is no
		// re-execution.
		t, i, d, p := bestCycle, bestI, bestD, bestPlane
		for t > 0 {
			switch p {
			case pM0:
				code := m.trailCode(pM0, t, i, d)
				if code == codeWait {
					// Wait delivery: the second substitution of the
					// merged pair, one X spanning the two-cycle hop
					// back to the wait state's layer-1 source.
					rev = rev.Append(align.OpMismatch, 1)
					i--
					d--
					t -= 2
					p = 3 + m.trailCode(pWT, t+1, i, d)
				} else {
					rev = rev.Append(align.OpMatch, 1)
					p = code
					t--
				}
			case pM1:
				// Written either by layer 1's own match or by layer 0's
				// first substitution; the comparator output at the write
				// cycle is recomputable from the strings and names the
				// branch (they are mutually exclusive on the match bit).
				code := m.trailCode(pM1, t, i, d)
				rp, qp := t-1-i, t-1-d
				if rp >= 0 && rp < n && qp >= 0 && qp < qn && ref[rp] == query[qp] {
					rev = rev.Append(align.OpMatch, 1)
					p = 3 + code
				} else {
					rev = rev.Append(align.OpMismatch, 1)
					p = code
				}
				t--
			case pI0, pI1:
				rev = rev.Append(align.OpIns, 1)
				code := m.trailCode(p, t, i, d)
				if p == pI1 {
					code += 3
				}
				p = code
				i--
				t--
			default: // pD0, pD1
				rev = rev.Append(align.OpDel, 1)
				code := m.trailCode(p, t, i, d)
				if p == pD1 {
					code += 3
				}
				p = code
				d--
				t--
			}
		}
	}
	m.revBuf = rev
	res.Cigar = rev.Reverse()
	if best > 0 {
		res.QueryLen = bestCycle - bestD
		res.RefLen = bestCycle - bestI
	}
	return res
}
