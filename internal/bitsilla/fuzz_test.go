package bitsilla

import (
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

// FuzzBitsillaVsSillaX differentially fuzzes the bit-parallel engine
// against the cycle-level oracle: for any edit bound and any pair of
// sequences, the two machines must agree byte for byte on score, consumed
// lengths and cigar, and the cigar must reconcile with the strings. The
// checked-in corpus doubles as a regression gate in CI (go test runs every
// seed even without -fuzz).
func FuzzBitsillaVsSillaX(f *testing.F) {
	// Edit bounds spanning single-bit, narrow-word and tile-composition
	// regimes; reads ending on, before and after the w=k+1 tile widths;
	// empty and all-clip inputs.
	f.Add(uint8(1), []byte("ACGT"), []byte("ACGT"))
	f.Add(uint8(2), []byte("TTTTTTTT"), []byte("CCCCCCCC"))
	f.Add(uint8(4), []byte("ACGTACGTACGTACGTACGT"), []byte("ACGTACTACGTACGTACGT"))
	f.Add(uint8(4), []byte("ACGTACGTAC"), []byte("ACGTACGGTACGT"))
	f.Add(uint8(8), []byte("ACACACACACACACACAC"), []byte("ACACACACTACACACAC"))
	f.Add(uint8(8), []byte{}, []byte("ACGT"))
	f.Add(uint8(8), []byte("GGGG"), []byte{})
	f.Add(uint8(9), []byte("ACGTACGTACG"), []byte("ACGTACGTACG"))
	f.Add(uint8(19), []byte("ACGTACGTACGTACGTACGTA"), []byte("ACGTACGTACGTACGTACGT"))
	f.Fuzz(func(t *testing.T, kRaw uint8, refB, qB []byte) {
		k := int(kRaw) % (MaxWordK + 1)
		if len(refB) > 300 {
			refB = refB[:300]
		}
		if len(qB) > 300 {
			qB = qB[:300]
		}
		ref := make(dna.Seq, len(refB))
		for i, b := range refB {
			ref[i] = dna.Base(b & 3)
		}
		query := make(dna.Seq, len(qB))
		for i, b := range qB {
			query[i] = dna.Base(b & 3)
		}
		sc := align.BWAMEMDefaults()
		got := New(k, sc).Extend(ref, query)
		want := sillax.NewTracebackMachine(k, sc).Extend(ref, query)
		if got.Score != want.Score || got.QueryLen != want.QueryLen ||
			got.RefLen != want.RefLen || got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("k=%d ref=%v query=%v:\nbitsilla (score=%d q=%d r=%d cigar=%s)\nsillax   (score=%d q=%d r=%d cigar=%s)",
				k, ref, query,
				got.Score, got.QueryLen, got.RefLen, got.Cigar,
				want.Score, want.QueryLen, want.RefLen, want.Cigar)
		}
		if err := got.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("k=%d: invalid cigar %s: %v", k, got.Cigar, err)
		}
	})
}
