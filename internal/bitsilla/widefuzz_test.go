package bitsilla

import (
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

// FuzzBitsillaWideVsSillaX differentially fuzzes the multi-word datapath
// against the cycle-level oracle: the edit bound is mapped into
// [MaxWordK+1, 191] so every execution takes the wide path, and a fuzzed
// window size (mapped into [2, 64]) forces checkpoint replay on longer
// inputs. The checked-in corpus doubles as a regression gate in CI
// (go test replays every seed even without -fuzz).
func FuzzBitsillaWideVsSillaX(f *testing.F) {
	// Seeds straddle word edges (k = 64, 65, 127, 128, 191 via the kRaw
	// mapping below), include gap blocks long enough to cross bit 63, and
	// cover empty/all-clip inputs and tiny replay windows.
	f.Add(uint8(0), uint8(0), []byte("ACGTACGT"), []byte("ACGTACGT"))
	f.Add(uint8(1), uint8(2), []byte("TTTTTTTTTTTTTTTT"), []byte("CCCCCCCC"))
	f.Add(uint8(63), uint8(1), []byte("ACGTACGTACGTACGTACGT"), []byte("ACGTACTACGTACGTACGT"))
	f.Add(uint8(64), uint8(3), []byte{}, []byte("ACGT"))
	f.Add(uint8(127), uint8(62), []byte("GGGG"), []byte{})
	f.Add(uint8(128), uint8(5), []byte("ACACACACACACACACACACACACAC"), []byte("ACAC"))
	f.Fuzz(func(t *testing.T, kRaw, winRaw uint8, refB, qB []byte) {
		k := MaxWordK + 1 + int(kRaw)%(191-MaxWordK)
		if len(refB) > 400 {
			refB = refB[:400]
		}
		if len(qB) > 400 {
			qB = qB[:400]
		}
		ref := make(dna.Seq, len(refB))
		for i, b := range refB {
			ref[i] = dna.Base(b & 3)
		}
		query := make(dna.Seq, len(qB))
		for i, b := range qB {
			query[i] = dna.Base(b & 3)
		}
		sc := align.BWAMEMDefaults()
		m := New(k, sc)
		m.wide.winC = 2 + int(winRaw)%63
		got := m.Extend(ref, query)
		want := sillax.NewTracebackMachine(k, sc).Extend(ref, query)
		if got.Score != want.Score || got.QueryLen != want.QueryLen ||
			got.RefLen != want.RefLen || got.Cigar.String() != want.Cigar.String() {
			t.Fatalf("k=%d winC=%d ref=%v query=%v:\nbitsilla (score=%d q=%d r=%d cigar=%s)\nsillax   (score=%d q=%d r=%d cigar=%s)",
				k, m.wide.winC, ref, query,
				got.Score, got.QueryLen, got.RefLen, got.Cigar,
				want.Score, want.QueryLen, want.RefLen, want.Cigar)
		}
		if err := got.Cigar.Validate(ref, query); err != nil {
			t.Fatalf("k=%d: invalid cigar %s: %v", k, got.Cigar, err)
		}
	})
}
