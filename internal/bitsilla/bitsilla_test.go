package bitsilla

import (
	"math/rand"
	"testing"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func mutate(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		if len(out) == 0 {
			out = append(out, dna.Base(r.Intn(4)))
			continue
		}
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1:
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		case 2:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

// checkSame asserts the bit-parallel result is byte-identical to the cycle
// model's on the observable fields (Score, QueryLen, RefLen, Cigar).
func checkSame(t *testing.T, k int, ref, query dna.Seq, got Result, want sillax.TracebackResult) {
	t.Helper()
	if got.Score != want.Score || got.QueryLen != want.QueryLen || got.RefLen != want.RefLen ||
		got.Cigar.String() != want.Cigar.String() {
		t.Fatalf("k=%d ref=%v query=%v:\nbitsilla (score=%d q=%d r=%d cigar=%s)\nsillax   (score=%d q=%d r=%d cigar=%s)",
			k, ref, query,
			got.Score, got.QueryLen, got.RefLen, got.Cigar,
			want.Score, want.QueryLen, want.RefLen, want.Cigar)
	}
}

// diffK covers small bounds, the composed-tile bounds of the TileArray
// (p tiles of base bound b give k = p*(b+1)-1: 9 and 19), the production
// default 40, the single-word limit 63, and multi-word bounds straddling
// every word edge the wide datapath has: 64/65 (first bit of word 1 and
// one past it), 127/128 (the word 1 -> word 2 edge) and 191 (three full
// words).
var diffK = []int{0, 1, 2, 3, 4, 8, 9, 16, 19, 40, 63, 64, 65, 127, 128, 191}

// diffTrials scales trial counts down as k grows: the sillax oracle moves
// 7*(k+1)^2 16-byte registers every cycle, so one k=191 trial costs about
// as much as seventy k=63 trials.
func diffTrials(k int) int {
	switch {
	case k <= MaxWordK:
		return 120
	case k < 127:
		return 30
	case k < 191:
		return 12
	default:
		return 6
	}
}

func TestBitsillaMatchesTracebackRandom(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	sc := align.BWAMEMDefaults()
	for _, k := range diffK {
		bm := New(k, sc)
		tm := sillax.NewTracebackMachine(k, sc)
		for trial := 0; trial < diffTrials(k); trial++ {
			ref := randSeq(r, r.Intn(90))
			query := mutate(r, ref, r.Intn(k+3))
			checkSame(t, k, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
		}
	}
}

// TestBitsillaMatchesTracebackAltScoring varies the affine scheme so the
// delayed-merging priorities are exercised under different cost ratios.
func TestBitsillaMatchesTracebackAltScoring(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, sc := range []align.Scoring{
		{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2},
		{Match: 1, Mismatch: 1, GapOpen: 1, GapExtend: 1},
		{Match: 5, Mismatch: 4, GapOpen: 8, GapExtend: 1},
	} {
		for _, k := range []int{2, 4, 8, 19} {
			bm := New(k, sc)
			tm := sillax.NewTracebackMachine(k, sc)
			for trial := 0; trial < 80; trial++ {
				ref := randSeq(r, r.Intn(70))
				query := mutate(r, ref, r.Intn(k+3))
				checkSame(t, k, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
			}
		}
	}
}

// TestBitsillaTileBoundarySpans sweeps read lengths across the w=k+1 tile
// widths around composed-tile bounds so extensions that end exactly on,
// just before, and just after a tile boundary are all covered.
func TestBitsillaTileBoundarySpans(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	sc := align.BWAMEMDefaults()
	for _, k := range []int{4, 9, 19} {
		bm := New(k, sc)
		tm := sillax.NewTracebackMachine(k, sc)
		for n := 0; n <= 3*(k+1)+2; n++ {
			ref := randSeq(r, n)
			for _, e := range []int{0, 1, k / 2, k} {
				query := mutate(r, ref, e)
				checkSame(t, k, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
			}
		}
	}
}

func TestBitsillaGoldenCigars(t *testing.T) {
	sc := align.BWAMEMDefaults()
	seq := func(s string) dna.Seq {
		q, err := dna.ParseSeq(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return q
	}
	cases := []struct {
		k          int
		ref, query string
		cigar      string
	}{
		{4, "ACGTACGTACGTACGT", "ACGTACGTACGTACGT", "16="},
		{4, "ACGTACGTACGTACGT", "ACGTACTTACGTACGT", "6=1X9="},
		{4, "ACGTACGTACGTACGTACGT", "ACGTACTACGTACGTACGT", "6=1D13="},
		{4, "ACGTACGTACGTACGTACGT", "ACGTACGGTACGTACGTACGT", "6=1I14="},
		{2, "TTTTTTTT", "CCCCCCCC", "8S"},
	}
	for _, tc := range cases {
		bm := New(tc.k, sc)
		tm := sillax.NewTracebackMachine(tc.k, sc)
		ref, query := seq(tc.ref), seq(tc.query)
		got := bm.Extend(ref, query)
		checkSame(t, tc.k, ref, query, got, tm.Extend(ref, query))
		if got.Cigar.String() != tc.cigar {
			t.Errorf("k=%d %s vs %s: cigar %s, want %s", tc.k, tc.ref, tc.query, got.Cigar, tc.cigar)
		}
		if err := got.Cigar.Validate(ref, query); err != nil {
			t.Errorf("k=%d: invalid cigar %s: %v", tc.k, got.Cigar, err)
		}
	}
}

func TestBitsillaEdgeCases(t *testing.T) {
	sc := align.BWAMEMDefaults()
	r := rand.New(rand.NewSource(63))
	for _, k := range []int{0, 1, 4, 40} {
		bm := New(k, sc)
		tm := sillax.NewTracebackMachine(k, sc)
		cases := [][2]dna.Seq{
			{nil, nil},
			{randSeq(r, 20), nil},
			{nil, randSeq(r, 20)},
			{randSeq(r, 1), randSeq(r, 1)},
			{randSeq(r, 1), randSeq(r, 60)},
			{randSeq(r, 60), randSeq(r, 1)},
		}
		for _, c := range cases {
			checkSame(t, k, c[0], c[1], bm.Extend(c[0], c[1]), tm.Extend(c[0], c[1]))
		}
	}
}

// TestBitsillaMachineReuse interleaves long and short extensions on one
// machine so stale trail/score contents from earlier calls would surface.
func TestBitsillaMachineReuse(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	sc := align.BWAMEMDefaults()
	bm := New(8, sc)
	tm := sillax.NewTracebackMachine(8, sc)
	lens := []int{80, 3, 50, 0, 7, 64, 1}
	for trial := 0; trial < 40; trial++ {
		n := lens[trial%len(lens)]
		ref := randSeq(r, n)
		query := mutate(r, ref, r.Intn(6))
		checkSame(t, 8, ref, query, bm.Extend(ref, query), tm.Extend(ref, query))
	}
}

// TestBitsillaCycleFallback pins the explicit cycle-model escape hatch:
// NewCycleFallback routes every Extend through the sillax oracle (marked
// via Result.Fallback so the pipeline can count the degrade), while New
// at the same bound takes the multi-word fast path and must not set the
// flag.
func TestBitsillaCycleFallback(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	sc := align.BWAMEMDefaults()
	for _, k := range []int{8, MaxWordK + 1} {
		fb := NewCycleFallback(k, sc)
		fast := New(k, sc)
		tm := sillax.NewTracebackMachine(k, sc)
		for trial := 0; trial < 10; trial++ {
			ref := randSeq(r, 120)
			query := mutate(r, ref, r.Intn(20))
			got := fb.Extend(ref, query)
			if !got.Fallback {
				t.Fatalf("k=%d: cycle-fallback machine did not set Result.Fallback", k)
			}
			checkSame(t, k, ref, query, got, tm.Extend(ref, query))
			direct := fast.Extend(ref, query)
			if direct.Fallback {
				t.Fatalf("k=%d: New() machine reported Fallback", k)
			}
			checkSame(t, k, ref, query, direct, tm.Extend(ref, query))
		}
	}
}

func TestBitsillaCycleAccounting(t *testing.T) {
	sc := align.BWAMEMDefaults()
	k := 4
	bm := New(k, sc)
	ref := randSeq(rand.New(rand.NewSource(66)), 30)
	res := bm.Extend(ref, ref)
	want := sillax.StreamCycles(len(ref), len(ref), k) + 1 + 4*k
	if res.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, want)
	}
}

// TestBitsillaSteadyStateAllocs pins the zero-allocation hot path: after a
// warm-up call has grown the trail slab and walk buffer, Extend must not
// allocate beyond the reported Cigar's reversal.
func TestBitsillaSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	sc := align.BWAMEMDefaults()
	bm := New(40, sc)
	ref := randSeq(r, 150)
	query := mutate(r, ref, 6)
	bm.Extend(ref, query) // grow trail + walk scratch
	allocs := testing.AllocsPerRun(50, func() {
		bm.Extend(ref, query)
	})
	if allocs > 1 { // the fresh Cigar reversal
		t.Fatalf("steady-state Extend allocates %.1f times per call, want <= 1", allocs)
	}
}

func TestBitsillaPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, align.BWAMEMDefaults())
}

func BenchmarkExtend(b *testing.B) {
	r := rand.New(rand.NewSource(70))
	sc := align.BWAMEMDefaults()
	ref := randSeq(r, 141)
	query := mutate(r, ref[:101], 3)
	b.Run("bitsilla", func(b *testing.B) {
		m := New(40, sc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Extend(ref, query)
		}
	})
	b.Run("sillax", func(b *testing.B) {
		m := sillax.NewTracebackMachine(40, sc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Extend(ref, query)
		}
	})
}
