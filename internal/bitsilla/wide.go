package bitsilla

// The multi-word ("wide") datapath: the same bit-parallel SillaX semantics
// as the single-word engine, with every per-row quantity striped across
// nw = ceil((K+1)/64) machine words along the diagonal-offset axis d. This
// is the software rendering of §IV-D tile composition — each 64-bit word is
// one K-tile of the composed engine, and a shift whose source and target
// bits live in different words is a signal through the reconfiguration
// muxes, counted exactly like sillax.ComposedEditMachine.MuxCrossings.
//
// Liveness words, comparator shift registers and the packed trail all gain
// a word dimension; carries propagate across word boundaries in the qeq
// shift (word w takes word w-1's top bit) and in the two d+1 transitions
// (wait delivery and deletion), whose target bit wraps into the next word
// when the source sits on bit 63.
//
// Unlike the single-word planes, the wide score and liveness arrays are
// laid out plane-interleaved: the seven plane values of one (i, d) register
// sit in planeStride consecutive slots, and the seven liveness words of one
// (i, vw) stripe share one cache line. On a long read the live set
// saturates the whole (i+d <= K) triangle for most of the pass — futility
// pruning only bites once a*min(remR, remQ) drops under the triangle's
// score spread — so the scan touches every plane of every live site every
// cycle, and the plane-major layout of the narrow engine would turn each
// site into seven cache misses.
//
// The one structure that cannot simply grow a word dimension is the
// time-indexed trail: at long-read scale (10 kb reads, K≈100-200) a full
// cycles × rows × planes × words slab runs to hundreds of megabytes per
// lane. The wide engine instead keeps a ring of 2C trail slots (C cycles
// per window) plus a machine-state checkpoint at the head of every window.
// C is sized per pass: whenever 2C cycles cover the whole pass within
// wideTrailBudget, the backward walk finds every window still resident and
// replays nothing; past the budget the ring falls back to the fixed
// wideWindow and the walk restores the checkpoint for each missing window
// and re-executes its cycles, regenerating exactly the trail words it is
// about to read. Replay is deterministic because a checkpoint captures the
// whole step input: score planes, liveness, row summaries, comparator
// registers and the running best (which the futility pruning reads). The
// total replay cost is bounded by one extra forward pass; memory stays
// within the budget either way.

import (
	"math/bits"

	"genax/internal/align"
	"genax/internal/dna"
	"genax/internal/sillax"
)

// wideWindow is the trail window (cycles per checkpoint) used when the
// whole pass does not fit wideTrailBudget. Ring memory grows with it,
// replay overhead shrinks with it.
const wideWindow = 256

// wideTrailBudget bounds the trail ring per machine. Auto-sized windows
// grow until the ring hits this, which keeps kilobase reads entirely
// resident (no replay) while a 10 kb read at K≈191 still runs in tens of
// megabytes per extend lane.
const wideTrailBudget = 32 << 20

// planeStride is the interleave stride of the wide score and liveness
// arrays: numPlanes rounded to a power of two so index arithmetic is a
// shift and one (i, d) site spans exactly half a cache line.
const planeStride = 8

// wideSnap is one window-head checkpoint of the forward pass.
type wideSnap struct {
	cur  []int32
	live []uint64
	rows []uint64
	qeq  []uint64 // dna.NumBases * nw words

	best                           int32
	bestI, bestD, bestCycle, bPlan int
	mux                            int64
}

// wideState is the k > MaxWordK extension of Machine: word counts, the
// striped comparator and row summaries, the trail ring with its
// checkpoints, and the forward-pass cursor shared between Extend and
// replay.
type wideState struct {
	nw   int // words per (plane, row) along d; also row-summary words along i
	winC int // configured checkpoint window in cycles (0 = auto-size per pass)
	win  int // effective window of the current pass, set by ensureWide

	qeq   [dna.NumBases][]uint64
	rows  []uint64 // numPlanes * nw row-summary words
	nrows []uint64 // next-cycle row summaries, cleared at each step's start
	trail []uint64 // ring of 2*win trail slots

	snaps    []wideSnap
	resLoWin int // lowest window whose trail slots are currently resident

	// Forward-pass state, persisted as fields so checkpoint restore and
	// replay see exactly what the original pass saw.
	best                              int32
	bestI, bestD, bestCycle, bestPlan int
	mux                               int64
	ref, query                        dna.Seq
	maxCycle                          int

	// bound is the pass's certified lower bound on the final best score
	// (wideBound); constant across the pass, so replay sees the same
	// pruning floor without checkpointing it.
	bound int32
	// stab is the pass's suffix bound table (wideSuffixBound): per
	// in-band position and entry state, an upper bound on the score any
	// state there can still add. Like bound it is constant across the
	// pass, so replay reproduces the same pruning without checkpoints.
	stab []int32
	pp   wideBoundBuf
}

// initWide sizes the wide datapath for edit bound m.k.
func (m *Machine) initWide() {
	nw := (m.w + 63) / 64
	m.cur = make([]int32, m.wn*planeStride)
	m.nxt = make([]int32, m.wn*planeStride)
	m.live = make([]uint64, m.w*nw*planeStride)
	m.nlive = make([]uint64, m.w*nw*planeStride)
	wd := &wideState{nw: nw}
	for b := 0; b < dna.NumBases; b++ {
		wd.qeq[b] = make([]uint64, nw)
	}
	wd.rows = make([]uint64, numPlanes*nw)
	wd.nrows = make([]uint64, numPlanes*nw)
	m.wide = wd
}

// ensureWide picks the pass's effective window and sizes the trail ring
// and the checkpoint list for maxCycle+1 cycles. Growth-only: steady state
// reuses every buffer.
func (m *Machine) ensureWide(maxCycle int) {
	wd := m.wide
	slotWords := m.w * planeWords * wd.nw
	win := wd.winC
	if win == 0 {
		// Auto: a ring of 2*win slots holds the whole pass when
		// win >= (maxCycle+1)/2 — then the walk never replays. Cap by the
		// ring budget (16 bytes per ring word across both windows), floor
		// at the fixed replay window.
		win = maxCycle/2 + 1
		if maxWin := wideTrailBudget / (16 * slotWords); win > maxWin {
			win = maxWin
		}
		if win < wideWindow {
			win = wideWindow
		}
	}
	if win < 2 {
		win = 2 // the walk reads cycles t and t-1; one-cycle windows cannot hold the pair
	}
	wd.win = win
	ringLen := 2 * win * slotWords
	if cap(wd.trail) < ringLen {
		wd.trail = make([]uint64, ringLen)
	}
	wd.trail = wd.trail[:ringLen]
	nSnaps := maxCycle/win + 1
	for len(wd.snaps) < nSnaps {
		wd.snaps = append(wd.snaps, wideSnap{
			cur:  make([]int32, m.wn*planeStride),
			live: make([]uint64, m.w*wd.nw*planeStride),
			rows: make([]uint64, numPlanes*wd.nw),
			qeq:  make([]uint64, dna.NumBases*wd.nw),
		})
	}
}

// resetWide clears the previous call's liveness (masks only — scores are
// masked by liveness, like the single-word path) and arms the origin state.
//
//genax:hotpath
func (m *Machine) resetWide() {
	wd := m.wide
	nw := wd.nw
	for iw := 0; iw < nw; iw++ {
		rowsAny := wd.rows[pM0*nw+iw] | wd.rows[pI0*nw+iw] | wd.rows[pD0*nw+iw] |
			wd.rows[pM1*nw+iw] | wd.rows[pI1*nw+iw] | wd.rows[pD1*nw+iw] | wd.rows[pWT*nw+iw]
		for rw := rowsAny; rw != 0; rw &= rw - 1 {
			i := iw<<6 + bits.TrailingZeros64(rw)
			lb := i * nw * planeStride
			for x := lb; x < lb+nw*planeStride; x++ {
				m.live[x] = 0
			}
		}
	}
	for x := range wd.rows {
		wd.rows[x] = 0
	}
	for b := 0; b < dna.NumBases; b++ {
		q := wd.qeq[b]
		for x := range q {
			q[x] = 0
		}
	}
	m.cur[0] = 0
	m.live[0] = 1
	wd.rows[pM0*nw] = 1
}

// saveSnap checkpoints the state ahead of window j's first cycle.
func (m *Machine) saveSnap(j int) {
	wd := m.wide
	s := &wd.snaps[j]
	copy(s.cur, m.cur)
	copy(s.live, m.live)
	copy(s.rows, wd.rows)
	for b := 0; b < dna.NumBases; b++ {
		copy(s.qeq[b*wd.nw:(b+1)*wd.nw], wd.qeq[b])
	}
	s.best, s.bestI, s.bestD, s.bestCycle, s.bPlan = wd.best, wd.bestI, wd.bestD, wd.bestCycle, wd.bestPlan
	s.mux = wd.mux
}

// restoreSnap rewinds the machine to window j's head for replay.
//
//genax:hotpath
func (m *Machine) restoreSnap(j int) {
	wd := m.wide
	s := &wd.snaps[j]
	copy(m.cur, s.cur)
	copy(m.live, s.live)
	copy(wd.rows, s.rows)
	for b := 0; b < dna.NumBases; b++ {
		copy(wd.qeq[b], s.qeq[b*wd.nw:(b+1)*wd.nw])
	}
	wd.best, wd.bestI, wd.bestD, wd.bestCycle, wd.bestPlan = s.best, s.bestI, s.bestD, s.bestCycle, s.bPlan
	wd.mux = s.mux
}

// replayWindow re-executes window j's cycles from its checkpoint,
// regenerating that window's trail slots in the ring. The next-side masks
// are all zero at every window head (each step clears what it vacates), so
// restore + re-step reproduces the original writes bit for bit.
//
//genax:hotpath
func (m *Machine) replayWindow(j int) {
	wd := m.wide
	m.restoreSnap(j)
	for c := j * wd.win; c < (j+1)*wd.win; c++ {
		if c > wd.maxCycle || !m.stepWide(c) {
			break
		}
	}
}

// wideTrailCode reads the 2-bit source code of the register (i,d) of plane
// p written at cycle t, replaying older windows into the ring on demand.
// The walk's read cycles never increase, so the resident pair only ever
// slides downward.
//
//genax:hotpath
func (m *Machine) wideTrailCode(p, t, i, d int) int {
	wd := m.wide
	for win := (t - 1) / wd.win; wd.resLoWin > win; {
		m.replayWindow(wd.resLoWin - 1)
		wd.resLoWin--
	}
	slot := t % (2 * wd.win)
	o := (slot*m.w+i)*planeWords*wd.nw + 2*p*wd.nw + d>>6
	bit := uint64(1) << uint(d&63)
	code := 0
	if wd.trail[o]&bit != 0 {
		code = 1
	}
	if wd.trail[o+wd.nw]&bit != 0 {
		code |= 2
	}
	return code
}

// stepWide executes one machine cycle of the wide datapath: shift the
// striped comparator, then scan TARGET registers ("pull"). For every
// register (i, d) reachable this cycle it resolves all competing offers in
// registers — the wait delivery from (i-1, d-1), match and substitution
// from (i, d), the insertion gap from (i-1, d) and the deletion gap from
// (i, d-1) — and commits each plane with one score store, accumulating
// liveness and the 2-bit trail codes per 64-register word so the
// per-offer read-modify-writes of a source-major scan collapse into one
// masked store per (plane, word). Every target plane has exactly one
// writing source except pM0, where the wait delivery lands first and the
// match must beat it strictly — the same strict-greater race, in the same
// (i-1, d-1) < (i-1, d) < (i, d-1) < (i, d) scan order, as the
// source-major formulation, so every tie breaks exactly like the cycle
// model. All consuming offers into (i, d) share one futility threshold
// (their source rem differences cancel against the consumed base).
// Closing offers see the same pruning floor at the same scan position as
// a source-major scan, so the best chain and every trail word the
// backward walk reads are byte-identical; gap and wait offers are checked
// against a floor that may have risen since their source's scan slot,
// which prunes strictly more — exact by the wideBound argument, since a
// pruned offer's completion bound is below a floor that never exceeds the
// pass's final score. The two d+1 transitions cross into the next word
// when the source bit is 63; each accepted crossing is one mux crossing
// in the §IV-D composition sense.
//
//genax:hotpath
func (m *Machine) stepWide(c int) bool {
	wd := m.wide
	k, w, nw := m.k, m.w, wd.nw
	ref, query := wd.ref, wd.query
	n, qn := len(ref), len(query)
	a, b, open, ext := m.cs.A, m.cs.B, m.cs.Open, m.cs.Ext

	// Shift the comparator periphery with cross-word carries: after this,
	// bit d of word d/64 of qeq[x] says query[c-d] == x.
	for x := 0; x < dna.NumBases; x++ {
		q := wd.qeq[x]
		for wq := nw - 1; wq > 0; wq-- {
			q[wq] = q[wq]<<1 | q[wq-1]>>63
		}
		q[0] <<= 1
	}
	if c < qn {
		wd.qeq[query[c]&3][0] |= 1
	}

	any := false
	t := c + 1
	slot := t % (2 * wd.win)
	sbase := slot * w * planeWords * nw
	cur, nxt := m.cur, m.nxt
	live, nlive := m.live, m.nlive
	trail := wd.trail
	rows, nr := wd.rows, wd.nrows
	for x := range nr {
		nr[x] = 0
	}
	best := wd.best
	bestI, bestD, bestCycle, bestPlan := wd.bestI, wd.bestD, wd.bestCycle, wd.bestPlan
	mux := wd.mux
	// pb is the pruning floor: the running best, raised to the certified
	// witness bound. futileThr(.., pb) = max(best+1, bound) - a*rem, which
	// keeps every state able to TIE the witness (the canonical winner may
	// be one of them) while the plain best-so-far comparison stays
	// tie-pruning, exactly like the single-word engine.
	pb := best
	if wd.bound-1 > pb {
		pb = wd.bound - 1
	}
	// The suffix bound table sharpens the floor per target: an offer of
	// value v into a position with suffix headroom U can contribute at
	// most v + U, so v must reach pb+1 - U. The generic futileThr floor
	// stays as the fallback for positions off the table's band.
	stab := wd.stab
	sw := 2*k + 1
	useU := len(stab) >= (qn+1)*sw*3

	// Target rows: sources in row i write row i (match, substitution,
	// deletion gap) and row i+1 (insertion gap, wait delivery).
	rcarry := uint64(0)
	for iw := 0; iw < nw; iw++ {
		vR := rows[pM0*nw+iw] | rows[pI0*nw+iw] | rows[pD0*nw+iw] |
			rows[pM1*nw+iw] | rows[pI1*nw+iw] | rows[pD1*nw+iw]
		wR := rows[pWT*nw+iw]
		tg := vR | (vR|wR)<<1 | rcarry
		rcarry = (vR | wR) >> 63
		for rw := tg; rw != 0; rw &= rw - 1 {
			i := iw<<6 + bits.TrailingZeros64(rw)
			if i >= w {
				continue
			}
			riPos := c - i
			base := i * w
			tbase := sbase + i*planeWords*nw
			srow := i * nw * planeStride
			urow := srow - nw*planeStride
			iWord, iBit := i>>6, uint64(1)<<uint(i&63)
			var mrow []uint64
			if riPos >= 0 && riPos < n {
				mrow = wd.qeq[ref[riPos]&3]
			}
			// Cross-word carries: the previous word's top source bit per
			// plane, feeding the two d+1 transitions (mux crossings).
			var cr0, cr1, cr2, cr3, cr4, cr5, crW, crT uint64
			// tp collects which planes row i accepted into, flushed to the
			// row summaries once per row.
			var tp uint64
			for vw := 0; vw < nw; vw++ {
				lb := srow + vw*planeStride
				lv := live[lb : lb+planeStride]
				s0, s1, s2 := lv[pM0], lv[pI0], lv[pD0]
				s3, s4, s5 := lv[pM1], lv[pI1], lv[pD1]
				var u0, u1, u2, u3, u4, u5, u6 uint64
				if i > 0 {
					ub := urow + vw*planeStride
					uv := live[ub : ub+planeStride]
					u0, u1, u2 = uv[pM0], uv[pI0], uv[pD0]
					u3, u4, u5 = uv[pM1], uv[pI1], uv[pD1]
					u6 = uv[pWT]
				}
				sAll := s0 | s1 | s2 | s3 | s4 | s5
				uAll := u0 | u1 | u2 | u3 | u4 | u5
				T := sAll | uAll | (sAll|u6)<<1 | crT
				if T == 0 {
					cr0, cr1, cr2, cr3, cr4, cr5 = s0>>63, s1>>63, s2>>63, s3>>63, s4>>63, s5>>63
					crW, crT = u6>>63, (sAll|u6)>>63
					continue
				}
				// Source (., d-1) liveness, aligned to the target bit.
				sh0 := s0<<1 | cr0
				sh1 := s1<<1 | cr1
				sh2 := s2<<1 | cr2
				sh3 := s3<<1 | cr3
				sh4 := s4<<1 | cr4
				sh5 := s5<<1 | cr5
				shW := u6<<1 | crW
				cr0, cr1, cr2, cr3, cr4, cr5 = s0>>63, s1>>63, s2>>63, s3>>63, s4>>63, s5>>63
				crW, crT = u6>>63, (sAll|u6)>>63
				var matchRow uint64
				if mrow != nil {
					matchRow = mrow[vw]
				}
				var nlA, tLo, tHi [numPlanes]uint64
				dBase := vw << 6
				for tm := T; tm != 0; tm &= tm - 1 {
					db := bits.TrailingZeros64(tm)
					d := dBase + db
					if d >= w {
						break
					}
					bit := uint64(1) << uint(db)
					cbT := (base + d) * planeStride
					cT := cur[cbT : cbT+planeStride]
					nT := nxt[cbT : cbT+planeStride]
					thr := futileThr(n-c+i-1, qn-c+d-1, a, pb)
					thrM, thrI, thrD := thr, thr, thr
					if useU {
						qp := c + 1 - d
						j := d - i + k
						if uint(j) < uint(sw) && uint(qp) <= uint(qn) {
							o := (qp*sw + j) * 3
							if u := pb + 1 - stab[o]; u > thrM {
								thrM = u
							}
							if u := pb + 1 - stab[o+1]; u > thrI {
								thrI = u
							}
							if u := pb + 1 - stab[o+2]; u > thrD {
								thrD = u
							}
						}
					}
					crossed := db == 0 && vw > 0
					if sAll&bit != 0 {
						any = true
					}
					isM := matchRow&bit != 0

					// pM0: the wait delivery from (i-1, d-1) lands first
					// (unthresholded, value already paid), then the layer-0
					// match, which must beat it strictly. The delivery's mux
					// crossing counts at delivery, as in the source scan,
					// even when the match overwrites it.
					v0, code0 := int32(negScore), uint64(3)
					if shW&bit != 0 {
						v0 = cur[cbT-(w+1)*planeStride+pWT]
						any = true
						if crossed {
							mux++
						}
					}
					mv0, iv0, dv0 := int32(negScore), int32(negScore), int32(negScore)
					if s0&bit != 0 {
						mv0 = cT[pM0]
					}
					if s1&bit != 0 {
						iv0 = cT[pI0]
					}
					if s2&bit != 0 {
						dv0 = cT[pD0]
					}
					top0, tc0 := mv0, uint64(0)
					if iv0 > top0 {
						top0, tc0 = iv0, 1
					}
					if dv0 > top0 {
						top0, tc0 = dv0, 2
					}
					mv1, iv1, dv1 := int32(negScore), int32(negScore), int32(negScore)
					if s3&bit != 0 {
						mv1 = cT[pM1]
					}
					if s4&bit != 0 {
						iv1 = cT[pI1]
					}
					if s5&bit != 0 {
						dv1 = cT[pD1]
					}
					top1, tc1 := mv1, uint64(0)
					if iv1 > top1 {
						top1, tc1 = iv1, 1
					}
					if dv1 > top1 {
						top1, tc1 = dv1, 2
					}
					if isM && top0 > negScore {
						v := top0 + a
						if v >= thrM && v > v0 {
							v0, code0 = v, tc0
							if v > best {
								best, bestI, bestD, bestCycle, bestPlan = v, i, d, t, pM0
								if best > pb {
									pb = best
								}
							}
						}
					}
					if v0 > negScore {
						nT[pM0] = v0
						nlA[pM0] |= bit
						if code0&1 != 0 {
							tLo[pM0] |= bit
						}
						if code0&2 != 0 {
							tHi[pM0] |= bit
						}
					}
					// pM1: layer-1 match or layer-0 substitution (the third
					// dimension) — exclusive on matchRow, both sourced at
					// (i, d). pWT: the layer-1 substitution's wait state.
					if isM {
						if top1 > negScore {
							v := top1 + a
							if v >= thrM {
								nT[pM1] = v
								nlA[pM1] |= bit
								if tc1&1 != 0 {
									tLo[pM1] |= bit
								}
								if tc1&2 != 0 {
									tHi[pM1] |= bit
								}
								if v > best {
									best, bestI, bestD, bestCycle, bestPlan = v, i, d, t, pM1
									if best > pb {
										pb = best
									}
								}
							}
						}
					} else {
						if top0 > negScore && i+d+1 <= k {
							v := top0 - b
							if v >= thrM {
								nT[pM1] = v
								nlA[pM1] |= bit
								if tc0&1 != 0 {
									tLo[pM1] |= bit
								}
								if tc0&2 != 0 {
									tHi[pM1] |= bit
								}
								if v > best {
									best, bestI, bestD, bestCycle, bestPlan = v, i, d, t, pM1
									if best > pb {
										pb = best
									}
								}
							}
						}
						if top1 > negScore && i+d+2 <= k {
							v := top1 - b
							if v >= thrM {
								nT[pWT] = v
								nlA[pWT] |= bit
								if tc1&1 != 0 {
									tLo[pWT] |= bit
								}
								if tc1&2 != 0 {
									tHi[pWT] |= bit
								}
								if v > best {
									// The wait value becomes a closed score at
									// (i+1,d+1) next cycle; best points there
									// (same score, same clip point).
									best, bestI, bestD, bestCycle, bestPlan = v, i+1, d+1, t+1, pM0
									if best > pb {
										pb = best
									}
								}
							}
						}
					}
					// Gap branches fire even on a match (§IV-B), with
					// delayed merging; source priorities replicate the cycle
					// model's compare order. Both gap targets of (i, d) share
					// the legality bound i+d+layer <= k of their sources, and
					// each gap plane has a single writing source, so the two
					// layers of one source site share its subslice.
					if i+d <= k {
						if (u0|u1|u2|u3|u4|u5)&bit != 0 {
							cbU := cbT - w*planeStride
							uU := cur[cbU : cbU+planeStride]
							if (u0|u1|u2)&bit != 0 {
								mu, iu, du := int32(negScore), int32(negScore), int32(negScore)
								if u0&bit != 0 {
									mu = uU[pM0]
								}
								if u1&bit != 0 {
									iu = uU[pI0]
								}
								if u2&bit != 0 {
									du = uU[pD0]
								}
								v, code := mu-open, uint64(0)
								if du-open > v {
									v, code = du-open, 2
								}
								if iu-ext > v {
									v, code = iu-ext, 1
								}
								if v > negScore && v >= thrI {
									nT[pI0] = v
									nlA[pI0] |= bit
									if code&1 != 0 {
										tLo[pI0] |= bit
									}
									if code&2 != 0 {
										tHi[pI0] |= bit
									}
								}
							}
							if i+d+1 <= k && (u3|u4|u5)&bit != 0 {
								mu, iu, du := int32(negScore), int32(negScore), int32(negScore)
								if u3&bit != 0 {
									mu = uU[pM1]
								}
								if u4&bit != 0 {
									iu = uU[pI1]
								}
								if u5&bit != 0 {
									du = uU[pD1]
								}
								v, code := mu-open, uint64(0)
								if du-open > v {
									v, code = du-open, 2
								}
								if iu-ext > v {
									v, code = iu-ext, 1
								}
								if v > negScore && v >= thrI {
									nT[pI1] = v
									nlA[pI1] |= bit
									if code&1 != 0 {
										tLo[pI1] |= bit
									}
									if code&2 != 0 {
										tHi[pI1] |= bit
									}
								}
							}
						}
						if (sh0|sh1|sh2|sh3|sh4|sh5)&bit != 0 {
							sD := cur[cbT-planeStride : cbT]
							if (sh0|sh1|sh2)&bit != 0 {
								mv, iv, dv := int32(negScore), int32(negScore), int32(negScore)
								if sh0&bit != 0 {
									mv = sD[pM0]
								}
								if sh1&bit != 0 {
									iv = sD[pI0]
								}
								if sh2&bit != 0 {
									dv = sD[pD0]
								}
								v, code := mv-open, uint64(0)
								if iv-open > v {
									v, code = iv-open, 1
								}
								if dv-ext > v {
									v, code = dv-ext, 2
								}
								if v > negScore && v >= thrD {
									nT[pD0] = v
									nlA[pD0] |= bit
									if code&1 != 0 {
										tLo[pD0] |= bit
									}
									if code&2 != 0 {
										tHi[pD0] |= bit
									}
									if crossed {
										mux++
									}
								}
							}
							if i+d+1 <= k && (sh3|sh4|sh5)&bit != 0 {
								mv, iv, dv := int32(negScore), int32(negScore), int32(negScore)
								if sh3&bit != 0 {
									mv = sD[pM1]
								}
								if sh4&bit != 0 {
									iv = sD[pI1]
								}
								if sh5&bit != 0 {
									dv = sD[pD1]
								}
								v, code := mv-open, uint64(0)
								if iv-open > v {
									v, code = iv-open, 1
								}
								if dv-ext > v {
									v, code = dv-ext, 2
								}
								if v > negScore && v >= thrD {
									nT[pD1] = v
									nlA[pD1] |= bit
									if code&1 != 0 {
										tLo[pD1] |= bit
									}
									if code&2 != 0 {
										tHi[pD1] |= bit
									}
									if crossed {
										mux++
									}
								}
							}
						}
					}
				}
				// Commit the word: one masked store per touched plane.
				nlv := nlive[lb : lb+planeStride]
				for p := 0; p < numPlanes; p++ {
					acc := nlA[p]
					if acc == 0 {
						continue
					}
					nlv[p] |= acc
					tp |= uint64(1) << uint(p)
					o := tbase + 2*p*nw + vw
					trail[o] = trail[o]&^acc | tLo[p]
					trail[o+nw] = trail[o+nw]&^acc | tHi[p]
				}
			}
			for p := 0; p < numPlanes; p++ {
				if tp&(uint64(1)<<uint(p)) != 0 {
					nr[p*nw+iWord] |= iBit
				}
			}
		}
	}

	m.cur, m.nxt = nxt, cur
	m.live, m.nlive = nlive, live
	wd.rows, wd.nrows = nr, rows
	// Clear the vacated masks (now the next side), maintaining the
	// between-cycles invariant that the next side is all zero. One pass
	// over the union of the old row summaries clears all planes of a row
	// in one contiguous run.
	for iw := 0; iw < nw; iw++ {
		rowsAny := rows[pM0*nw+iw] | rows[pI0*nw+iw] | rows[pD0*nw+iw] |
			rows[pM1*nw+iw] | rows[pI1*nw+iw] | rows[pD1*nw+iw] | rows[pWT*nw+iw]
		for rw := rowsAny; rw != 0; rw &= rw - 1 {
			i := iw<<6 + bits.TrailingZeros64(rw)
			lb := i * nw * planeStride
			z := live[lb : lb+nw*planeStride]
			for x := range z {
				z[x] = 0
			}
		}
	}
	wd.best = best
	wd.bestI, wd.bestD, wd.bestCycle, wd.bestPlan = bestI, bestD, bestCycle, bestPlan
	wd.mux = mux
	return any
}

// extendWide runs the forward pass over the trail ring, then the same
// backward walk as the single-word engine, replaying windows on demand.
func (m *Machine) extendWide(ref, query dna.Seq) Result {
	wd := m.wide
	n, qn := len(ref), len(query)
	maxCycle := sillax.StreamCycles(n, qn, m.k)
	wd.ref, wd.query = ref, query
	wd.maxCycle = maxCycle
	wd.bound = m.wideBound(ref, query)
	m.wideSuffixBound(ref, query)
	m.ensureWide(maxCycle)
	m.resetWide()
	wd.best, wd.bestI, wd.bestD, wd.bestCycle, wd.bestPlan = 0, 0, 0, 0, pM0
	wd.mux = 0
	C := wd.win
	jLast := 0
	for c := 0; c <= maxCycle; c++ {
		if c%C == 0 {
			m.saveSnap(c / C)
		}
		jLast = c / C
		if !m.stepWide(c) {
			break
		}
	}
	wd.resLoWin = jLast - 1
	if wd.resLoWin < 0 {
		wd.resLoWin = 0
	}

	best := wd.best
	bestI, bestD, bestCycle, bestPlane := wd.bestI, wd.bestD, wd.bestCycle, wd.bestPlan
	res := Result{Score: int(best), Cycles: maxCycle + 1 + 4*m.k, MuxCrossings: wd.mux}
	rev := m.revBuf[:0]
	if tail := qn - (bestCycle - bestD); best > 0 && tail > 0 {
		rev = rev.Append(align.OpClip, tail)
	} else if best == 0 {
		rev = rev.Append(align.OpClip, qn)
	}
	if best > 0 {
		t, i, d, p := bestCycle, bestI, bestD, bestPlane
		for t > 0 {
			switch p {
			case pM0:
				code := m.wideTrailCode(pM0, t, i, d)
				if code == codeWait {
					rev = rev.Append(align.OpMismatch, 1)
					i--
					d--
					t -= 2
					p = 3 + m.wideTrailCode(pWT, t+1, i, d)
				} else {
					rev = rev.Append(align.OpMatch, 1)
					p = code
					t--
				}
			case pM1:
				code := m.wideTrailCode(pM1, t, i, d)
				rp, qp := t-1-i, t-1-d
				if rp >= 0 && rp < n && qp >= 0 && qp < qn && ref[rp] == query[qp] {
					rev = rev.Append(align.OpMatch, 1)
					p = 3 + code
				} else {
					rev = rev.Append(align.OpMismatch, 1)
					p = code
				}
				t--
			case pI0, pI1:
				rev = rev.Append(align.OpIns, 1)
				code := m.wideTrailCode(p, t, i, d)
				if p == pI1 {
					code += 3
				}
				p = code
				i--
				t--
			default: // pD0, pD1
				rev = rev.Append(align.OpDel, 1)
				code := m.wideTrailCode(p, t, i, d)
				if p == pD1 {
					code += 3
				}
				p = code
				d--
				t--
			}
		}
	}
	m.revBuf = rev
	res.Cigar = rev.Reverse()
	if best > 0 {
		res.QueryLen = bestCycle - bestD
		res.RefLen = bestCycle - bestI
	}
	wd.ref, wd.query = nil, nil
	return res
}
