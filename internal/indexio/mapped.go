package indexio

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"genax/internal/dna"
	"genax/internal/seed"
)

// Mapped is a v2 index opened in place. Index() and Ref() are zero-copy
// views into the mapping (or into one heap buffer on platforms without
// mmap): nothing is deserialized, so opening costs O(header) regardless of
// genome size, the OS demand-faults only the pages lookups touch, and
// concurrent processes aligning against the same cache share one physical
// copy of the tables.
//
// Lifetime contract (the mapped flavor of //genax:borrowed): every slice
// reachable from Index() and Ref() borrows the mapping. Close unmaps it,
// so Close must only be called after every pipeline consuming the index
// has fully drained — lanes park no references between batches, but a
// Close racing an in-flight batch is a use-after-unmap. The CLIs close on
// exit after AlignBatch/AlignStream return; tests that need earlier
// teardown must join their pipelines first.
type Mapped struct {
	data   []byte
	hdr    *v2Header
	sx     *seed.SegmentedIndex
	ref    dna.Seq
	mapped bool // true when data is an mmap, false when a heap fallback
	closed bool
}

// OpenMapped opens the v2 cache at path for in-place use. The header CRC
// and section-table bounds are verified; section bodies are NOT summed
// (that would fault in every page and defeat the lazy load — call Verify
// for a full check). Corruption in unsummed table bytes is contained by
// the seed package's clamp-safe lookups and by the cheap per-segment
// start/position consistency check done here. v1 files cannot be mapped —
// their uvarint encoding requires decode — so they are rejected with a
// pointer at Read.
//
// The caller should compare RefHash()/geometry against its own inputs
// before aligning; OpenMapped itself only proves internal consistency.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < v2FixedHeader+8 {
		return nil, fmt.Errorf("indexio: file too short (%d bytes) to be a v2 index cache", size)
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("indexio: file size %d exceeds address space", size)
	}
	m := &Mapped{}
	if mmapSupported && hostLittleEndian {
		m.data, err = mmapFile(f, int(size))
		if err == nil {
			m.mapped = true
		}
	}
	if !m.mapped {
		// No mmap (platform) or no zero-copy views (byte order): fall back
		// to one heap read. Views still borrow from this single buffer when
		// the host is little-endian; otherwise tables are decoded below.
		m.data, err = io.ReadAll(f)
		if err != nil {
			return nil, err
		}
	}
	fail := func(err error) (*Mapped, error) {
		_ = m.Close()
		return nil, err
	}
	if len(m.data) >= 8 && string(m.data[:4]) == Magic {
		if v := le32(m.data[4:]); v == VersionV1 {
			return fail(fmt.Errorf("indexio: v1 caches cannot be mapped (uvarint encoding requires decode); load with Read or rebuild the cache"))
		}
	}
	h, err := parseV2Header(m.data)
	if err != nil {
		return fail(err)
	}
	m.hdr = h

	refSec := h.refSection()
	m.ref = seqView(m.data[refSec.off : refSec.off+refSec.len])
	sx := &seed.SegmentedIndex{
		RefLen:  h.refLen,
		SegLen:  h.segLen,
		Overlap: h.overlap,
		K:       h.k,
		Samples: make([]*seed.SegmentIndex, h.numSegs),
	}
	for id := 0; id < h.numSegs; id++ {
		start, positions, presence := h.segSections(id)
		var tab seed.Tables
		if hostLittleEndian {
			tab = seed.Tables{
				Start:     int32View(m.data[start.off : start.off+start.len]),
				Positions: int32View(m.data[positions.off : positions.off+positions.len]),
				Presence:  uint64View(m.data[presence.off : presence.off+presence.len]),
			}
		} else {
			tab = seed.Tables{
				Start:     decodeInt32s(m.data[start.off : start.off+start.len]),
				Positions: decodeInt32s(m.data[positions.off : positions.off+positions.len]),
				Presence:  decodeUint64s(m.data[presence.off : presence.off+presence.len]),
			}
		}
		// One-load sanity check linking the two tables: the start table's
		// final fill must equal the position count, or every lookup in the
		// tail would clamp. Costs a single page fault, not a scan.
		if n := len(tab.Start); n > 0 && int(tab.Start[n-1]) != len(tab.Positions) {
			return fail(fmt.Errorf("indexio: segment %d start table fills %d positions, section holds %d", id, tab.Start[n-1], len(tab.Positions)))
		}
		off, end := segSpan(id, h.segLen, h.overlap, h.refLen)
		si, err := seed.NewSegmentIndexFromTables(m.ref[off:end], id, off, h.k, tab, false)
		if err != nil {
			return fail(fmt.Errorf("indexio: segment %d: %w", id, err))
		}
		sx.Samples[id] = si
	}
	m.sx = sx
	return m, nil
}

// le32 reads a little-endian uint32 without pulling binary into the hot
// open path signature; kept tiny and local.
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Index returns the segmented index viewing the mapping. Borrowed: valid
// until Close.
func (m *Mapped) Index() *seed.SegmentedIndex { return m.sx }

// Ref returns the stored reference as a zero-copy view. Borrowed: valid
// until Close.
func (m *Mapped) Ref() dna.Seq { return m.ref }

// RefHash returns the reference hash pinned in the header.
func (m *Mapped) RefHash() uint64 { return m.hdr.refHash }

// K, SegLen, and Overlap expose the stored geometry so callers can check
// their flags against the file before aligning.
func (m *Mapped) K() int       { return m.hdr.k }
func (m *Mapped) SegLen() int  { return m.hdr.segLen }
func (m *Mapped) Overlap() int { return m.hdr.overlap }

// IsMapped reports whether the data is an actual memory map (false on the
// heap fallback path).
func (m *Mapped) IsMapped() bool { return m.mapped }

// SizeBytes returns the byte size of the backing file/mapping.
func (m *Mapped) SizeBytes() int { return len(m.data) }

// ShardGroupSize returns the header's residency partition: segments per
// shard group.
func (m *Mapped) ShardGroupSize() int { return m.hdr.groupSize }

// NumShardGroups returns the number of shard groups.
func (m *Mapped) NumShardGroups() int { return m.hdr.numShardGroups() }

// GroupOf returns the shard group segment seg belongs to.
func (m *Mapped) GroupOf(seg int) int { return seg / m.hdr.groupSize }

// groupBytes returns the contiguous byte range holding every section of
// shard group g (segment sections are laid out in ascending id order, so a
// group is one run of pages, padding included).
func (m *Mapped) groupBytes(g int) []byte {
	gs := m.hdr.groupSize
	first, last := g*gs, min((g+1)*gs, m.hdr.numSegs)-1
	lo, _, _ := m.hdr.segSections(first)
	_, _, hi := m.hdr.segSections(last)
	return m.data[lo.off:alignUp(int(hi.off+hi.len))]
}

// adviseGroup passes residency advice for one shard group to the kernel.
// Advisory only — see mmap_linux.go — and a no-op on the heap fallback.
func (m *Mapped) adviseGroup(g int, resident bool) {
	if !m.mapped || g < 0 || g >= m.NumShardGroups() {
		return
	}
	if resident {
		adviseWillNeed(m.groupBytes(g))
	} else {
		adviseDontNeed(m.groupBytes(g))
	}
}

// Verify checks every section body against its header CRC and every
// segment's tables against the full structural invariants — the eager
// integrity pass OpenMapped deliberately skips. It faults in the whole
// file; use it from `genax index -verify` or before trusting a cache of
// unknown provenance, not on the serving path.
func (m *Mapped) Verify() error {
	if m.closed {
		return fmt.Errorf("indexio: Verify on closed mapping")
	}
	for i, s := range m.hdr.sections {
		if got := crc32.ChecksumIEEE(m.data[s.off : s.off+s.len]); got != s.crc {
			return fmt.Errorf("indexio: section %d (kind %d, seg %d) checksum mismatch (header %08x, computed %08x)", i, s.kind, s.seg, s.crc, got)
		}
	}
	for id, si := range m.sx.Samples {
		if err := si.ValidateTables(); err != nil {
			return fmt.Errorf("indexio: segment %d: %w", id, err)
		}
	}
	return nil
}

// Close releases the mapping. Every view handed out by Index()/Ref() is
// invalid afterwards; callers must drain all pipelines first (see the type
// comment). Idempotent.
func (m *Mapped) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data, m.sx, m.ref, m.hdr = nil, nil, nil, nil
	if m.mapped {
		return munmap(data)
	}
	return nil
}
