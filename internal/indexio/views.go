package indexio

import (
	"encoding/binary"
	"unsafe"

	"genax/internal/dna"
)

// The v2 tables are stored little-endian and element-aligned (sections
// start on 4 KiB boundaries), so on a little-endian host a stored table
// can be *viewed* as its Go slice type without copying or decoding — the
// whole point of the mapped load path. On a big-endian host the views
// would read garbage, so every caller gates on hostLittleEndian and falls
// back to the copying decoders below.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32View reinterprets b (little-endian, 4-aligned) as []int32 in place.
func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// uint64View reinterprets b (little-endian, 8-aligned) as []uint64 in place.
func uint64View(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// seqView reinterprets b as a dna.Seq in place; dna.Base is a byte code,
// so this view is endian-independent.
func seqView(b []byte) dna.Seq {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*dna.Base)(unsafe.Pointer(&b[0])), len(b))
}

// decodeInt32s copies b into a fresh heap []int32. On little-endian hosts
// the copy is one memmove through a view of the source.
func decodeInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	if hostLittleEndian {
		copy(out, int32View(b))
		return out
	}
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// decodeUint64s copies b into a fresh heap []uint64.
func decodeUint64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	if hostLittleEndian {
		copy(out, uint64View(b))
		return out
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}
