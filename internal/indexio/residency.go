package indexio

import (
	"fmt"
	"sync"
)

// ShardResidency streams a mapped index one shard group at a time: the
// seed stage announces which segment each lane is about to walk
// (Acquire) and when it is done (Release), and the controller bounds how
// many shard groups may be resident at once — the index analog of the
// credit accounting every other pipeline stage already does. It
// implements pipeline.Residency.
//
// Protocol: a lane calls Acquire(s) before binding segment s and
// Release(s) after the per-segment barrier. Acquire blocks while the
// segment's group is non-resident and the residency budget is exhausted;
// a group is retired — refcount zero after its *last* segment releases —
// before the next group is admitted, so the seed walk's ascending
// segment order plus release-before-acquire makes maxResident=1 live:
// the chip's "one segment's tables in SRAM at a time" regime.
//
// Residency transitions are kernel advice (madvise), so correctness
// never depends on them: an access to a retired group's pages refaults
// transparently. The controller only bounds the working set and counts
// the traffic.
type ShardResidency struct {
	m   *Mapped
	mu  sync.Mutex
	cnd *sync.Cond

	refs     []int // active lanes per group
	resident []bool
	nRes     int
	maxRes   int

	admits int // groups made resident (shard-group "fetches")
	drops  int // groups retired
	waits  int // Acquire calls that had to block
}

// NewShardResidency bounds m's residency to maxResident shard groups
// (minimum 1). The seed stage admits one window at a time (its per-window
// barrier holds all lanes in lockstep), so even maxResident=1 cannot
// deadlock: the ascending walk guarantees the held group's last segment
// is always released before any lane needs the next group admitted.
func NewShardResidency(m *Mapped, maxResident int) *ShardResidency {
	if maxResident < 1 {
		maxResident = 1
	}
	n := m.NumShardGroups()
	r := &ShardResidency{
		m:        m,
		refs:     make([]int, n),
		resident: make([]bool, n),
		maxRes:   maxResident,
	}
	r.cnd = sync.NewCond(&r.mu)
	return r
}

// Acquire blocks until segment seg's shard group is resident and pins it
// for the calling lane.
func (r *ShardResidency) Acquire(seg int) {
	g := r.m.GroupOf(seg)
	if g < 0 || g >= len(r.refs) {
		return
	}
	r.mu.Lock()
	waited := false
	for !r.resident[g] && r.nRes >= r.maxRes {
		waited = true
		r.cnd.Wait()
	}
	if waited {
		r.waits++
	}
	if !r.resident[g] {
		r.resident[g] = true
		r.nRes++
		r.admits++
		r.mu.Unlock()
		// Advice outside the lock: WILLNEED may start I/O.
		r.m.adviseGroup(g, true)
		r.mu.Lock()
	}
	r.refs[g]++
	r.mu.Unlock()
}

// Release unpins segment seg for the calling lane; when the group's last
// segment has fully released, the group is retired and its residency
// credit returned.
func (r *ShardResidency) Release(seg int) {
	g := r.m.GroupOf(seg)
	if g < 0 || g >= len(r.refs) {
		return
	}
	lastSeg := min((g+1)*r.m.ShardGroupSize(), len(r.m.Index().Samples)) - 1
	r.mu.Lock()
	r.refs[g]--
	retire := r.refs[g] == 0 && seg == lastSeg && r.resident[g]
	if retire {
		r.resident[g] = false
		r.nRes--
		r.drops++
	}
	r.mu.Unlock()
	if retire {
		r.m.adviseGroup(g, false)
		r.cnd.Broadcast()
	}
}

// Stats reports the admission/retire/wait counters.
func (r *ShardResidency) Stats() (admits, drops, waits int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admits, r.drops, r.waits
}

// String renders the counters for -stats output.
func (r *ShardResidency) String() string {
	a, d, w := r.Stats()
	return fmt.Sprintf("shard residency: %d groups (size %d), max resident %d, admits %d, drops %d, blocked acquires %d",
		r.m.NumShardGroups(), r.m.ShardGroupSize(), r.maxRes, a, d, w)
}
