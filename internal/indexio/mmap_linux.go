//go:build linux

package indexio

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map files at all; the
// fallback build returns false and OpenMapped degrades to a heap read.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so every process
// aligning against the same cache shares one copy of the page cache.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }

// adviseWillNeed hints the kernel to start faulting b in — issued when a
// shard group becomes resident, so the seed stage's first lookups don't
// serialize on major faults.
func adviseWillNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
	}
}

// adviseDontNeed tells the kernel a shard group's pages are cold. Purely
// advisory: the mapping stays valid and a stray access refaults
// transparently, so correctness never depends on the kernel honoring it —
// it only bounds resident set size.
func adviseDontNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
	}
}
