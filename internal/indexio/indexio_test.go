package indexio

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genax/internal/dna"
	"genax/internal/seed"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(4))
	}
	return s
}

func buildIndex(t *testing.T, ref dna.Seq, segLen, overlap, k int) *seed.SegmentedIndex {
	t.Helper()
	sx, err := seed.BuildSegmentedIndex(ref, segLen, overlap, k)
	if err != nil {
		t.Fatalf("BuildSegmentedIndex: %v", err)
	}
	return sx
}

func TestRoundTripHashIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		refLen, segLen, overlap, k int
	}{
		{10_000, 2048, 128, 6},
		{5000, 5000, 0, 4},  // single segment, no overlap
		{4097, 1024, 64, 8}, // ragged tail segment
		{100, 4096, 32, 12}, // segment shorter than segLen
		{3, 1024, 16, 5},    // reference shorter than k: empty windows
	} {
		ref := randSeq(r, tc.refLen)
		sx := buildIndex(t, ref, tc.segLen, tc.overlap, tc.k)
		var buf bytes.Buffer
		if err := Write(&buf, sx, ref); err != nil {
			t.Fatalf("%+v: Write: %v", tc, err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()), ref)
		if err != nil {
			t.Fatalf("%+v: Read: %v", tc, err)
		}
		if got.Hash() != sx.Hash() {
			t.Errorf("%+v: loaded hash %016x != built hash %016x", tc, got.Hash(), sx.Hash())
		}
		if got.NumSegments() != sx.NumSegments() {
			t.Errorf("%+v: %d segments loaded, want %d", tc, got.NumSegments(), sx.NumSegments())
		}
		// The rebound index must answer lookups identically, through the
		// same reference backing.
		for id, si := range got.Samples {
			want := sx.Samples[id]
			if si.Offset != want.Offset || len(si.Ref) != len(want.Ref) {
				t.Fatalf("%+v seg %d: geometry (%d,%d) want (%d,%d)", tc, id, si.Offset, len(si.Ref), want.Offset, len(want.Ref))
			}
			for trial := 0; trial < 200; trial++ {
				pos := r.Intn(tc.refLen)
				if pos+tc.k > len(ref) {
					continue
				}
				hits, ok := si.LookupAt(ref, pos)
				wantHits, wantOK := want.LookupAt(ref, pos)
				if ok != wantOK || len(hits) != len(wantHits) {
					t.Fatalf("%+v seg %d pos %d: lookup diverged", tc, id, pos)
				}
				for i := range hits {
					if hits[i] != wantHits[i] {
						t.Fatalf("%+v seg %d pos %d: hit %d = %d, want %d", tc, id, pos, i, hits[i], wantHits[i])
					}
				}
			}
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ref := randSeq(r, 6000)
	sx := buildIndex(t, ref, 2048, 64, 6)
	var buf bytes.Buffer
	if err := Write(&buf, sx, ref); err != nil {
		t.Fatalf("Write: %v", err)
	}
	good := buf.Bytes()

	// Every single-byte flip must be caught by the CRC.
	for _, at := range []int{0, 5, 9, 40, headerSize + 3, len(good) / 2, len(good) - 5} {
		bad := append([]byte(nil), good...)
		bad[at] ^= 0x5a
		if _, err := Read(bytes.NewReader(bad), ref); err == nil {
			t.Errorf("flip at %d: Read succeeded on corrupt file", at)
		}
	}
	// Truncation at any point must fail, not panic.
	for _, n := range []int{0, 3, headerSize - 1, headerSize + 4, len(good) - 1} {
		if _, err := Read(bytes.NewReader(good[:n]), ref); err == nil {
			t.Errorf("truncate to %d: Read succeeded", n)
		}
	}
	// A different reference of the same length must be rejected by hash.
	other := append(dna.Seq(nil), ref...)
	other[100] ^= 1
	if _, err := Read(bytes.NewReader(good), other); err == nil || !strings.Contains(err.Error(), "reference hash") {
		t.Errorf("mutated reference: err = %v, want hash mismatch", err)
	}
	// A shorter reference is rejected before hashing.
	if _, err := Read(bytes.NewReader(good), ref[:100]); err == nil {
		t.Error("short reference: Read succeeded")
	}
}

func TestVersionAndMagicChecked(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ref := randSeq(r, 1000)
	sx := buildIndex(t, ref, 1024, 0, 4)
	var buf bytes.Buffer
	if err := Write(&buf, sx, ref); err != nil {
		t.Fatalf("Write: %v", err)
	}
	reseal := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), buf.Bytes()...)
		mutate(b)
		// Recompute the CRC so the mutation reaches the semantic check.
		crc := crc32.ChecksumIEEE(b[:len(b)-4])
		b[len(b)-4], b[len(b)-3], b[len(b)-2], b[len(b)-1] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
		return b
	}
	bad := reseal(func(b []byte) { copy(b, "NOPE") })
	if _, err := Read(bytes.NewReader(bad), ref); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
	bad = reseal(func(b []byte) { b[4] = 99 })
	if _, err := Read(bytes.NewReader(bad), ref); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v", err)
	}
}

func TestFileRoundTripAndCachePath(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	ref := randSeq(r, 4000)
	sx := buildIndex(t, ref, 1500, 100, 7)
	dir := t.TempDir()
	path, err := CachePath(dir, ref, 7, 1500, 100)
	if err != nil {
		t.Fatalf("CachePath: %v", err)
	}
	if filepath.Dir(path) != dir || !strings.HasSuffix(path, ".gaxi") {
		t.Fatalf("CachePath = %q", path)
	}
	if err := WriteFile(path, sx, ref); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path, ref)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Hash() != sx.Hash() {
		t.Errorf("file round trip hash %016x != %016x", got.Hash(), sx.Hash())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("cache dir holds %d entries, want 1", len(entries))
	}
	// Geometry is part of the name: different k yields a different file.
	other, err := CachePath(dir, ref, 8, 1500, 100)
	if err != nil {
		t.Fatalf("CachePath: %v", err)
	}
	if other == path {
		t.Error("different k produced the same cache path")
	}
	if _, err := CachePath(dir, ref, 0, 1500, 100); err == nil {
		t.Error("CachePath accepted k=0")
	}
	if _, err := CachePath(dir, ref, 7, 0, 100); err == nil {
		t.Error("CachePath accepted segLen=0")
	}
	if _, err := CachePath(dir, ref, 7, 1500, -1); err == nil {
		t.Error("CachePath accepted negative overlap")
	}
}
