//go:build !linux

package indexio

import (
	"fmt"
	"os"
)

// Non-Linux builds have no mmap wiring; OpenMapped reads the file into
// heap bytes instead and all views borrow from that buffer. Residency
// advice becomes a no-op — the heap copy is already resident.
const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, fmt.Errorf("indexio: mmap unsupported on this platform")
}

func munmap(b []byte) error { return nil }

func adviseWillNeed(b []byte) {}

func adviseDontNeed(b []byte) {}
