package indexio

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genax/internal/dna"
	"genax/internal/seed"
)

// -update regenerates the checked-in format fixtures (testdata/*.gaxi).
var updateFixtures = flag.Bool("update", false, "rewrite testdata fixtures")

func writeV2File(t *testing.T, dir string, sx *seed.SegmentedIndex, ref dna.Seq, groupSize int) string {
	t.Helper()
	path := filepath.Join(dir, "test.gaxi")
	if err := WriteFileShards(path, sx, ref, groupSize); err != nil {
		t.Fatalf("WriteFileShards: %v", err)
	}
	return path
}

// TestMappedParity is the core v2 guarantee: an index opened in place must
// be indistinguishable from the heap-loaded one — same Hash, same lookups,
// same reference bytes — across shard partitions, and Verify must pass on
// a freshly written file.
func TestMappedParity(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ref := randSeq(r, 9000)
	sx := buildIndex(t, ref, 2048, 128, 6)
	for _, groupSize := range []int{0, 1, 2, 5} {
		path := writeV2File(t, t.TempDir(), sx, ref, groupSize)
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("groupSize %d: OpenMapped: %v", groupSize, err)
		}
		if got := m.Index().Hash(); got != sx.Hash() {
			t.Errorf("groupSize %d: mapped hash %016x != built %016x", groupSize, got, sx.Hash())
		}
		if m.RefHash() != RefHash(ref) || len(m.Ref()) != len(ref) {
			t.Fatalf("groupSize %d: ref identity diverged", groupSize)
		}
		for i, b := range m.Ref() {
			if b != ref[i] {
				t.Fatalf("groupSize %d: ref byte %d = %d, want %d", groupSize, i, b, ref[i])
			}
		}
		if m.K() != 6 || m.SegLen() != 2048 || m.Overlap() != 128 {
			t.Fatalf("groupSize %d: geometry accessors %d/%d/%d", groupSize, m.K(), m.SegLen(), m.Overlap())
		}
		wantGS := groupSize
		if wantGS <= 0 || wantGS > sx.NumSegments() {
			wantGS = sx.NumSegments()
		}
		if m.ShardGroupSize() != wantGS {
			t.Errorf("groupSize %d: header stores %d", groupSize, m.ShardGroupSize())
		}
		for id, si := range m.Index().Samples {
			want := sx.Samples[id]
			for trial := 0; trial < 300; trial++ {
				pos := r.Intn(len(ref) - 6)
				hits, ok := si.LookupAt(m.Ref(), pos)
				wantHits, wantOK := want.LookupAt(ref, pos)
				if ok != wantOK || len(hits) != len(wantHits) {
					t.Fatalf("groupSize %d seg %d pos %d: lookup diverged", groupSize, id, pos)
				}
				for i := range hits {
					if hits[i] != wantHits[i] {
						t.Fatalf("groupSize %d seg %d pos %d: hit %d", groupSize, id, pos, i)
					}
				}
			}
		}
		if err := m.Verify(); err != nil {
			t.Errorf("groupSize %d: Verify: %v", groupSize, err)
		}
		if err := m.Close(); err != nil {
			t.Errorf("groupSize %d: Close: %v", groupSize, err)
		}
		if err := m.Close(); err != nil {
			t.Errorf("groupSize %d: second Close: %v", groupSize, err)
		}
	}
}

// resealV2 applies mutate to a copy of a v2 file and recomputes both the
// header CRC and the whole-file footer CRC, so the mutation reaches the
// semantic bounds checks instead of being caught by a checksum.
func resealV2(t *testing.T, good []byte, mutate func([]byte)) []byte {
	t.Helper()
	b := append([]byte(nil), good...)
	mutate(b)
	headerLen := int(binary.LittleEndian.Uint32(b[60:]))
	binary.LittleEndian.PutUint32(b[headerLen-4:], crc32.ChecksumIEEE(b[:headerLen-4]))
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
	return b
}

// TestInflatedSectionLengthRejected pins the satellite fix: a corrupt (or
// hostile) section length that passes both checksums must be rejected by
// the bounds checks before any table-sized allocation or view is created —
// on the heap path and the mapped path alike.
func TestInflatedSectionLengthRejected(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	ref := randSeq(r, 5000)
	sx := buildIndex(t, ref, 2048, 64, 6)
	var buf bytes.Buffer
	if err := Write(&buf, sx, ref); err != nil {
		t.Fatalf("Write: %v", err)
	}
	good := buf.Bytes()

	// Entry 1 is segment 0's start table; its length field is at
	// 64 + 32·1 + 16. Inflate it to a multi-GiB claim.
	lenAt := v2FixedHeader + v2SectionEntry + 16
	cases := map[string]func([]byte){
		"inflated length": func(b []byte) {
			binary.LittleEndian.PutUint64(b[lenAt:], 8<<30)
		},
		"length past footer": func(b []byte) {
			binary.LittleEndian.PutUint64(b[lenAt:], uint64(len(good)))
		},
		"misaligned offset": func(b []byte) {
			off := binary.LittleEndian.Uint64(b[lenAt-8:])
			binary.LittleEndian.PutUint64(b[lenAt-8:], off+8)
		},
		"overlapping offset": func(b []byte) {
			binary.LittleEndian.PutUint64(b[lenAt-8:], 0)
		},
		"wrong kind": func(b []byte) {
			binary.LittleEndian.PutUint32(b[v2FixedHeader+v2SectionEntry:], sectionPresence)
		},
		"inflated segment count": func(b []byte) {
			binary.LittleEndian.PutUint64(b[48:], 1<<40)
		},
		"zero group size": func(b []byte) {
			binary.LittleEndian.PutUint32(b[56:], 0)
		},
	}
	dir := t.TempDir()
	for name, mutate := range cases {
		bad := resealV2(t, good, mutate)
		if _, err := Read(bytes.NewReader(bad), ref); err == nil {
			t.Errorf("%s: heap Read accepted", name)
		}
		path := filepath.Join(dir, "bad.gaxi")
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenMapped(path); err == nil {
			_ = m.Close()
			t.Errorf("%s: OpenMapped accepted", name)
		}
	}
	// Corruption in a table body (past the header CRC's reach) must fail
	// the heap path's footer CRC, and Verify on the mapped path.
	bodyAt := alignUp(int(binary.LittleEndian.Uint32(good[60:]))) + 100
	bad := append([]byte(nil), good...)
	bad[bodyAt] ^= 0x5a
	if _, err := Read(bytes.NewReader(bad), ref); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("body flip: heap Read err = %v, want checksum mismatch", err)
	}
	path := filepath.Join(dir, "bodyflip.gaxi")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("body flip: OpenMapped rejected (header is intact): %v", err)
	}
	if err := m.Verify(); err == nil {
		t.Error("body flip: Verify passed on corrupt section")
	}
	_ = m.Close()
}

// TestV1StillReadable pins v1→v2 coexistence in-process: a legacy file
// minted by the retained v1 writer must load through the same Read
// dispatcher and hash-match the live build.
func TestV1StillReadable(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	ref := randSeq(r, 4000)
	sx := buildIndex(t, ref, 1500, 100, 7)
	var buf bytes.Buffer
	if err := writeV1(&buf, sx, ref); err != nil {
		t.Fatalf("writeV1: %v", err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:]); v != VersionV1 {
		t.Fatalf("writeV1 stamped version %d", v)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), ref)
	if err != nil {
		t.Fatalf("Read(v1): %v", err)
	}
	if got.Hash() != sx.Hash() {
		t.Errorf("v1 round trip hash %016x != %016x", got.Hash(), sx.Hash())
	}
	// v1 cannot be mapped; the error should point at the decode path.
	path := filepath.Join(t.TempDir(), "v1.gaxi")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil || !strings.Contains(err.Error(), "v1") {
		t.Errorf("OpenMapped(v1) err = %v, want v1 rejection", err)
	}
}

// fixtureRef regenerates the deterministic reference the checked-in v1
// fixture was built from (math/rand's seeded sequence is stable across
// releases).
func fixtureRef() dna.Seq {
	return randSeq(rand.New(rand.NewSource(1848)), 2000)
}

// TestV1FixtureLoads guards the on-disk legacy bytes themselves: the
// checked-in v1 fixture must keep loading even if writeV1 drifts or is
// eventually deleted. Regenerate with: go test ./internal/indexio -run
// V1Fixture -update (and commit the new file only with a format-change
// rationale).
func TestV1FixtureLoads(t *testing.T) {
	const path = "testdata/v1-tiny.gaxi"
	ref := fixtureRef()
	sx := buildIndex(t, ref, 800, 64, 5)
	if *updateFixtures {
		var buf bytes.Buffer
		if err := writeV1(&buf, sx, ref); err != nil {
			t.Fatalf("writeV1: %v", err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fixture missing (regenerate with -update): %v", err)
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != VersionV1 {
		t.Fatalf("fixture is version %d, want %d", v, VersionV1)
	}
	got, err := Read(bytes.NewReader(raw), ref)
	if err != nil {
		t.Fatalf("Read(fixture): %v", err)
	}
	if got.Hash() != sx.Hash() {
		t.Errorf("fixture hash %016x != rebuilt %016x", got.Hash(), sx.Hash())
	}
}

// TestCachePathVersioned pins the format version into the content address
// so caches from different releases can never collide.
func TestCachePathVersioned(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	ref := randSeq(r, 1000)
	cur, err := CachePath("", ref, 6, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cur, "-v2.gaxi") {
		t.Errorf("CachePath %q does not pin the current version", cur)
	}
	v1, err := cachePathVersion("", ref, 6, 512, 32, VersionV1)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == cur {
		t.Errorf("v1 and v2 cache paths collide: %q", cur)
	}
}

// TestProbeReasons drives every staleness class through Probe and checks
// the one-line reasons genax index prints.
func TestProbeReasons(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	ref := randSeq(r, 5000)
	sx := buildIndex(t, ref, 2048, 64, 6)
	dir := t.TempDir()
	path := writeV2File(t, dir, sx, ref, 2)

	if reason := Probe(path, ref, 6, 2048, 64); reason != "" {
		t.Errorf("fresh cache: %q", reason)
	}
	if reason := Probe(filepath.Join(dir, "absent.gaxi"), ref, 6, 2048, 64); reason != "no cache file" {
		t.Errorf("missing: %q", reason)
	}
	if reason := Probe(path, ref, 8, 2048, 64); !strings.Contains(reason, "geometry mismatch") {
		t.Errorf("k mismatch: %q", reason)
	}
	other := append(dna.Seq(nil), ref...)
	other[0] ^= 1
	if reason := Probe(path, other, 6, 2048, 64); !strings.Contains(reason, "reference hash mismatch") {
		t.Errorf("ref mismatch: %q", reason)
	}
	if reason := Probe(path, ref[:100], 6, 2048, 64); !strings.Contains(reason, "reference length") {
		t.Errorf("ref length: %q", reason)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x5a
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if reason := Probe(path, ref, 6, 2048, 64); !strings.Contains(reason, "checksum mismatch") {
		t.Errorf("corrupt: %q", reason)
	}
	// A v1 cache probes as usable when its geometry matches: still
	// readable this release.
	var v1buf bytes.Buffer
	if err := writeV1(&v1buf, sx, ref); err != nil {
		t.Fatal(err)
	}
	v1path := filepath.Join(dir, "v1.gaxi")
	if err := os.WriteFile(v1path, v1buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if reason := Probe(v1path, ref, 6, 2048, 64); reason != "" {
		t.Errorf("matching v1 cache: %q", reason)
	}
	// An unknown future version reports itself.
	fut := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(fut[4:], 9)
	binary.LittleEndian.PutUint32(fut[len(fut)-4:], crc32.ChecksumIEEE(fut[:len(fut)-4]))
	futPath := filepath.Join(dir, "future.gaxi")
	if err := os.WriteFile(futPath, fut, 0o644); err != nil {
		t.Fatal(err)
	}
	if reason := Probe(futPath, ref, 6, 2048, 64); !strings.Contains(reason, "version 9") {
		t.Errorf("future version: %q", reason)
	}
}

// TestProbeFixtureAndCorruptHeader covers the two probe inputs the serve
// registry meets in the wild but TestProbeReasons synthesizes: the
// checked-in v1-era fixture bytes (readable legacy when the geometry
// matches, a distinct geometry reason when it does not) and a v2 file
// whose *header* is corrupted — resealed CRC so the magic check itself,
// not the checksum, must produce the reason the registry logs.
func TestProbeFixtureAndCorruptHeader(t *testing.T) {
	ref := fixtureRef()
	const fixture = "testdata/v1-tiny.gaxi"
	if reason := Probe(fixture, ref, 5, 800, 64); reason != "" {
		t.Errorf("checked-in v1 fixture with matching geometry: %q, want usable", reason)
	}
	if reason := Probe(fixture, ref, 7, 800, 64); !strings.Contains(reason, "geometry mismatch") {
		t.Errorf("checked-in v1 fixture with wrong k: %q, want geometry mismatch", reason)
	}

	r := rand.New(rand.NewSource(26))
	vref := randSeq(r, 4000)
	sx := buildIndex(t, vref, 2048, 64, 6)
	dir := t.TempDir()
	path := writeV2File(t, dir, sx, vref, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	copy(bad, "XAXI")
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	reason := Probe(path, vref, 6, 2048, 64)
	if !strings.Contains(reason, "bad magic") {
		t.Errorf("corrupted header: %q, want bad magic", reason)
	}
	if strings.Contains(reason, "checksum") {
		t.Errorf("corrupted-header reason %q blames the checksum; the CRC was resealed", reason)
	}
}

// TestShardResidencyProtocol simulates the seed stage's lane discipline —
// every lane acquires and releases every segment in ascending order behind
// a barrier — and checks the residency bound, the counters, and that the
// walk completes (no deadlock) at the tightest budget.
// residencyLaneWalk is one lane of TestShardResidencyProtocol: walk every
// segment ascending under the Acquire/Release protocol, touching a
// borrowed lookup strictly within this frame (the same discipline the
// real seed lanes follow).
func residencyLaneWalk(m *Mapped, res *ShardResidency) int {
	sum := 0
	for s := range m.Index().Samples {
		res.Acquire(s)
		si := m.Index().Samples[s]
		if hits := si.Lookup(0); len(hits) > 0 {
			sum += int(hits[0])
		}
		res.Release(s)
	}
	return sum
}

func TestShardResidencyProtocol(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	ref := randSeq(r, 8192)
	sx := buildIndex(t, ref, 1024, 64, 5) // 8 segments
	path := writeV2File(t, t.TempDir(), sx, ref, 2)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.NumShardGroups() != 4 {
		t.Fatalf("NumShardGroups = %d, want 4", m.NumShardGroups())
	}

	for _, lanes := range []int{1, 4} {
		res := NewShardResidency(m, 1)
		done := make(chan int, lanes)
		for l := 0; l < lanes; l++ {
			go func() { done <- residencyLaneWalk(m, res) }()
		}
		for l := 0; l < lanes; l++ {
			<-done
		}
		admits, drops, _ := res.Stats()
		if admits < m.NumShardGroups() {
			t.Errorf("lanes %d: %d admits for %d groups", lanes, admits, m.NumShardGroups())
		}
		if drops != admits {
			t.Errorf("lanes %d: admits %d != drops %d after drain", lanes, admits, drops)
		}
		if !strings.Contains(res.String(), "shard residency") {
			t.Errorf("String() = %q", res.String())
		}
	}
}
