// Package indexio serializes a seed.SegmentedIndex to a versioned,
// checksummed binary file so multi-run workloads stop paying the index
// rebuild: `genax index -out` writes the cache, and `genax align` /
// genax-bench load it back after validating that it matches the reference
// and geometry in hand.
//
// Two formats coexist for one release:
//
//   - GAXI v2 (current, written by Write): page-aligned, little-endian,
//     fixed-width sections directly usable in place — see v2.go for the
//     layout and OpenMapped for the zero-copy load path. v2 stores the
//     reference itself, so a mapped index is self-contained and the genome
//     never needs a heap copy (out-of-core operation).
//
//   - GAXI v1 (legacy, still read): compact uvarint sparse runs, reference
//     NOT stored. Layout (all integers little-endian unless marked
//     uvarint):
//
//     offset  size  field
//     0       4     magic "GAXI"
//     4       4     format version (1)
//     8       4     k-mer length k
//     12      8     segment length
//     20      8     overlap
//     28      8     reference length (bases)
//     36      8     FNV-1a hash of the reference bases
//     44      8     number of segments
//     52      ...   per-segment run blocks (see below)
//     end-4   4     CRC-32 (IEEE) of everything before it
//
//     Each v1 segment block stores the index's sparse runs — only the
//     k-mers that occur, not the 4^k table:
//
//     uvarint       number of runs R
//     R times:      k-mer delta (uvarint: first k-mer, then gap-1 to the
//     previous — runs are strictly ascending), occurrence
//     count (uvarint)
//     uvarint       number of positions P (must equal the window count)
//     P times:      position delta (uvarint: per run, first position, then
//     gap-1 — each run's positions are strictly ascending)
//
// Both formats are self-validating — a cache built from a different
// reference, geometry, or code version is rejected, never silently used —
// and both check the trailing CRC before decoding any length-prefixed
// structure, so a corrupt length field can never drive a table-sized
// allocation.
package indexio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"

	"genax/internal/dna"
	"genax/internal/seed"
)

// Magic identifies an index cache file.
const Magic = "GAXI"

// Version is the current format version, written by Write. Read accepts
// this and VersionV1; everything else is rejected.
const Version = 2

// VersionV1 is the legacy uvarint sparse-run format, kept readable for one
// release. Only Read understands it; Write always emits the current
// version.
const VersionV1 = 1

// headerSize is the fixed-size prefix before the v1 segment blocks.
const headerSize = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8

// RefHash returns the FNV-1a digest of the reference bases — the identity
// the cache header pins, so a file can never be loaded against a different
// genome.
func RefHash(ref dna.Seq) uint64 {
	h := fnv.New64a()
	var buf [4096]byte
	for i := 0; i < len(ref); {
		n := len(buf)
		if rem := len(ref) - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			buf[j] = byte(ref[i+j])
		}
		_, _ = h.Write(buf[:n])
		i += n
	}
	return h.Sum64()
}

// Write serializes sx, built from ref, to w in the current (v2) format
// with a single shard group. Use WriteShards to partition the segments
// into shard groups for bounded-residency streaming.
func Write(w io.Writer, sx *seed.SegmentedIndex, ref dna.Seq) error {
	return WriteShards(w, sx, ref, 0)
}

// writeV1 serializes sx in the legacy v1 format. It is retained so the
// v1→v2 coexistence tests can mint legacy inputs (and regenerate the
// checked-in fixture) without carrying handwritten binaries; production
// code always writes the current version.
func writeV1(w io.Writer, sx *seed.SegmentedIndex, ref dna.Seq) error {
	if sx == nil {
		return fmt.Errorf("indexio: nil index")
	}
	if sx.RefLen != len(ref) {
		return fmt.Errorf("indexio: index covers %d bases, reference has %d", sx.RefLen, len(ref))
	}
	buf := make([]byte, 0, headerSize)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, VersionV1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sx.K))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sx.SegLen))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sx.Overlap))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sx.RefLen))
	buf = binary.LittleEndian.AppendUint64(buf, RefHash(ref))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sx.NumSegments()))
	var kmers []dna.Kmer
	var counts []int32
	for _, si := range sx.Samples {
		kmers, counts = si.AppendRuns(kmers[:0], counts[:0])
		buf = binary.AppendUvarint(buf, uint64(len(kmers)))
		prevKm := uint64(0)
		for i, km := range kmers {
			d := uint64(km)
			if i > 0 {
				d = uint64(km) - prevKm - 1
			}
			prevKm = uint64(km)
			buf = binary.AppendUvarint(buf, d)
			buf = binary.AppendUvarint(buf, uint64(counts[i]))
		}
		positions := si.PositionTable()
		buf = binary.AppendUvarint(buf, uint64(len(positions)))
		at := 0
		for i := range kmers {
			prev := int64(-1)
			for _, p := range positions[at : at+int(counts[i])] {
				buf = binary.AppendUvarint(buf, uint64(int64(p)-prev-1))
				prev = int64(p)
			}
			at += int(counts[i])
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// WriteFile writes the cache to path via a same-directory temp file and
// rename, so a crashed or concurrent writer can never leave a torn cache
// at the final name.
func WriteFile(path string, sx *seed.SegmentedIndex, ref dna.Seq) error {
	return WriteFileShards(path, sx, ref, 0)
}

// WriteFileShards is WriteFile with an explicit shard-group size; see
// WriteShards.
func WriteFileShards(path string, sx *seed.SegmentedIndex, ref dna.Seq, groupSize int) error {
	tmp, err := os.CreateTemp(filepathDir(path), ".gaxi-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if err := WriteShards(tmp, sx, ref, groupSize); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// filepathDir is filepath.Dir without pulling in path/filepath for one
// call on slash-free inputs too.
func filepathDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			if i == 0 {
				return path[:1]
			}
			return path[:i]
		}
	}
	return "."
}

// decoder tracks a position in the payload with sticky error reporting.
type decoder struct {
	buf []byte
	at  int
	err error
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.at:])
	if n <= 0 {
		d.err = fmt.Errorf("indexio: truncated or malformed %s at byte %d", what, d.at)
		return 0
	}
	d.at += n
	return v
}

// Read parses an index cache and re-binds it to ref, which must be the
// exact reference the cache was built from (verified by length and hash).
// Both format versions load here; the returned index is always a fresh
// heap copy validated segment by segment (use OpenMapped for the zero-copy
// path). Any corruption the CRC or structural checks catch surfaces as an
// error, never a panic, and the trailing CRC is verified before any
// length-prefixed structure is decoded.
func Read(r io.Reader, ref dna.Seq) (*seed.SegmentedIndex, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < 12 {
		return nil, fmt.Errorf("indexio: file too short (%d bytes) to be an index cache", len(raw))
	}
	payload, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("indexio: checksum mismatch (file %08x, computed %08x): cache is corrupt", sum, got)
	}
	if string(payload[:4]) != Magic {
		return nil, fmt.Errorf("indexio: bad magic %q", payload[:4])
	}
	switch v := binary.LittleEndian.Uint32(payload[4:]); v {
	case VersionV1:
		return readV1(payload, ref)
	case Version:
		return readV2(raw, ref)
	default:
		return nil, fmt.Errorf("indexio: unsupported format version %d (want %d or %d)", v, VersionV1, Version)
	}
}

// readV1 decodes the legacy uvarint sparse-run format. payload is the file
// minus its (already verified) CRC footer, with magic and version checked.
func readV1(payload []byte, ref dna.Seq) (*seed.SegmentedIndex, error) {
	if len(payload) < headerSize {
		return nil, fmt.Errorf("indexio: v1 file too short (%d bytes)", len(payload))
	}
	k := int(binary.LittleEndian.Uint32(payload[8:]))
	segLen := int(int64(binary.LittleEndian.Uint64(payload[12:])))
	overlap := int(int64(binary.LittleEndian.Uint64(payload[20:])))
	refLen := int(int64(binary.LittleEndian.Uint64(payload[28:])))
	refHash := binary.LittleEndian.Uint64(payload[36:])
	numSegs := binary.LittleEndian.Uint64(payload[44:])
	if k < 1 || k > dna.MaxK {
		return nil, fmt.Errorf("indexio: k-mer length %d out of range [1,%d]", k, dna.MaxK)
	}
	if segLen < 1 || overlap < 0 || refLen < 0 {
		return nil, fmt.Errorf("indexio: invalid geometry (segLen %d, overlap %d, refLen %d)", segLen, overlap, refLen)
	}
	if refLen != len(ref) {
		return nil, fmt.Errorf("indexio: cache built for a %d-base reference, have %d bases", refLen, len(ref))
	}
	if h := RefHash(ref); h != refHash {
		return nil, fmt.Errorf("indexio: reference hash mismatch (cache %016x, have %016x): cache was built from a different reference", refHash, h)
	}
	wantSegs := 0
	for off := 0; off < refLen; off += segLen {
		wantSegs++
	}
	if numSegs != uint64(wantSegs) {
		return nil, fmt.Errorf("indexio: %d segments in file, geometry implies %d", numSegs, wantSegs)
	}
	sx := &seed.SegmentedIndex{
		RefLen:  refLen,
		SegLen:  segLen,
		Overlap: overlap,
		K:       k,
		Samples: make([]*seed.SegmentIndex, wantSegs),
	}
	d := &decoder{buf: payload, at: headerSize}
	var kmers []dna.Kmer
	var counts []int32
	for id := 0; id < wantSegs; id++ {
		off := id * segLen
		end := off + segLen + overlap
		if end > refLen {
			end = refLen
		}
		runs := d.uvarint("run count")
		if d.err != nil {
			return nil, d.err
		}
		if runs > uint64(end-off) {
			return nil, fmt.Errorf("indexio: segment %d claims %d runs for %d bases", id, runs, end-off)
		}
		kmers, counts = kmers[:0], counts[:0]
		prevKm := uint64(0)
		for i := uint64(0); i < runs; i++ {
			d1 := d.uvarint("k-mer delta")
			cnt := d.uvarint("run length")
			if d.err != nil {
				return nil, d.err
			}
			km := d1
			if i > 0 {
				km = prevKm + 1 + d1
			}
			prevKm = km
			if km>>(2*uint(k)) != 0 || cnt == 0 || cnt > uint64(end-off) {
				return nil, fmt.Errorf("indexio: segment %d run %d out of range (k-mer %d, count %d)", id, i, km, cnt)
			}
			kmers = append(kmers, dna.Kmer(km))
			counts = append(counts, int32(cnt))
		}
		np := d.uvarint("position count")
		if d.err != nil {
			return nil, d.err
		}
		if np > uint64(end-off) {
			return nil, fmt.Errorf("indexio: segment %d claims %d positions for %d bases", id, np, end-off)
		}
		positions := make([]int32, 0, np)
		got := uint64(0)
		for i := range kmers {
			prev := int64(-1)
			for j := int32(0); j < counts[i]; j++ {
				if got >= np {
					return nil, fmt.Errorf("indexio: segment %d run counts exceed position count %d", id, np)
				}
				dp := d.uvarint("position delta")
				if d.err != nil {
					return nil, d.err
				}
				p := prev + 1 + int64(dp)
				if p >= int64(end-off) {
					return nil, fmt.Errorf("indexio: segment %d position %d outside the segment", id, p)
				}
				positions = append(positions, int32(p))
				prev = p
				got++
			}
		}
		if got != np {
			return nil, fmt.Errorf("indexio: segment %d stores %d positions, runs account for %d", id, np, got)
		}
		si, err := seed.NewSegmentIndexFromRuns(ref[off:end], id, off, k, kmers, counts, positions)
		if err != nil {
			return nil, fmt.Errorf("indexio: segment %d: %w", id, err)
		}
		sx.Samples[id] = si
	}
	if d.at != len(payload) {
		return nil, fmt.Errorf("indexio: %d trailing bytes after last segment", len(payload)-d.at)
	}
	return sx, nil
}

// ReadFile loads the cache at path; see Read.
func ReadFile(path string, ref dna.Seq) (*seed.SegmentedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, ref)
}

// CachePath names the cache file for a (reference, geometry, format
// version) triple inside dir:
// genax-<refhash>-k<k>-s<segLen>-o<overlap>-v<version>.gaxi. The format
// version is part of the content address, so caches written by different
// releases can never collide: a v1 cache and a v2 cache of the same index
// live at different names, and a version bump simply re-populates the dir.
// Callers that let users pick an explicit path skip this; the auto-load
// paths (genax align, genax-bench) use it so the cache key can never be
// mismatched by hand.
func CachePath(dir string, ref dna.Seq, k, segLen, overlap int) (string, error) {
	if k < 1 || segLen < 1 {
		return "", fmt.Errorf("indexio: invalid cache geometry (k=%d, segment=%d)", k, segLen)
	}
	return cachePathVersion(dir, ref, k, segLen, overlap, Version)
}

// cachePathVersion is CachePath pinned to an explicit format version.
func cachePathVersion(dir string, ref dna.Seq, k, segLen, overlap, version int) (string, error) {
	if k < 1 || k > dna.MaxK {
		return "", fmt.Errorf("indexio: k-mer length %d out of range [1,%d]", k, dna.MaxK)
	}
	if segLen < 1 {
		return "", fmt.Errorf("indexio: segment length %d must be positive", segLen)
	}
	if overlap < 0 {
		return "", fmt.Errorf("indexio: negative overlap %d", overlap)
	}
	name := fmt.Sprintf("genax-%016x-k%d-s%d-o%d-v%d.gaxi", RefHash(ref), k, segLen, overlap, version)
	if dir == "" {
		return name, nil
	}
	return dir + string(os.PathSeparator) + name, nil
}
