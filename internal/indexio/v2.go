package indexio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"genax/internal/dna"
	"genax/internal/seed"
)

// GAXI v2: the mmap-able format. Where v1 optimizes for file size (uvarint
// sparse runs that must be decoded into fresh heap), v2 optimizes for load
// time and sharing: every table is stored exactly as the seed stage
// consumes it — fixed-width, little-endian, 4 KiB-aligned — so OpenMapped
// can hand the pipeline zero-copy views of the page cache and cold start
// is O(header), not O(index). This is the software analog of the chip
// streaming its segment tables over DDR4 instead of rebuilding them: the
// file *is* the in-memory layout, and the OS demand-faults only the pages
// a shard group actually touches.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "GAXI"
//	4       4     format version (2)
//	8       4     k-mer length k
//	12      4     section count S (= 1 + 3·numSegments)
//	16      8     segment length
//	24      8     overlap
//	32      8     reference length (bases)
//	40      8     FNV-1a hash of the reference bases
//	48      8     number of segments
//	56      4     shard group size (segments per resident group, ≥ 1)
//	60      4     header length H (= 64 + 32·S + 4)
//	64      32·S  section table (see below)
//	H-4     4     header CRC-32 (IEEE) over bytes [0, H-4)
//	...           zero padding to the next 4 KiB boundary
//	              sections, each starting on a 4 KiB boundary,
//	              zero-padded to the next boundary
//	end-4   4     CRC-32 (IEEE) of everything before it
//
// Section table entry (32 bytes):
//
//	offset  size  field
//	0       4     kind (1 ref bases, 2 start table, 3 positions, 4 presence)
//	4       4     segment id (0 for the ref section)
//	8       8     absolute file offset (4 KiB-aligned)
//	16      8     data length in bytes (before padding)
//	24      4     CRC-32 (IEEE) of the section data
//	28      4     reserved (0)
//
// Sections appear in file order: ref first, then (start, positions,
// presence) per segment in ascending segment id. Section bodies:
//
//	ref        refLen bytes, one base per byte (dna.Base is a byte code)
//	start      (4^k+1) int32 — the dense start table
//	positions  n int32 — every occurrence list concatenated in k-mer order
//	presence   ⌈4^k/64⌉ uint64 — the presence bitmap
//
// Integrity model: the heap Read path verifies the whole-file trailing CRC
// before decoding anything (same contract as v1). OpenMapped verifies only
// the header CRC plus section-table bounds — touching every page would
// defeat the lazy load — and relies on (a) per-section CRCs for on-demand
// Verify, and (b) the seed package's clamp-safe lookups, which return "no
// hits" rather than panic if a mapped table is corrupt beyond what the
// header can see.
const (
	v2Align        = 4096
	v2FixedHeader  = 64
	v2SectionEntry = 32

	sectionRef       = 1
	sectionStart     = 2
	sectionPositions = 3
	sectionPresence  = 4
)

// v2Section is one parsed section-table entry.
type v2Section struct {
	kind, seg uint32
	off, len  uint64
	crc       uint32
}

// v2Header is the parsed and bounds-checked v2 header.
type v2Header struct {
	k, segLen, overlap, refLen int
	refHash                    uint64
	numSegs                    int
	groupSize                  int
	headerLen                  int
	sections                   []v2Section
}

// refSection returns the reference section (always sections[0]).
func (h *v2Header) refSection() v2Section { return h.sections[0] }

// segSections returns the (start, positions, presence) sections of seg.
func (h *v2Header) segSections(seg int) (start, positions, presence v2Section) {
	at := 1 + 3*seg
	return h.sections[at], h.sections[at+1], h.sections[at+2]
}

// numShardGroups returns how many shard groups the header's partition
// yields.
func (h *v2Header) numShardGroups() int {
	if h.numSegs == 0 {
		return 0
	}
	return (h.numSegs + h.groupSize - 1) / h.groupSize
}

// alignUp rounds n up to the next v2Align boundary.
func alignUp(n int) int { return (n + v2Align - 1) &^ (v2Align - 1) }

// wantSegments is the segment count the (refLen, segLen) geometry implies —
// the same walk seed.BuildSegmentedIndex performs.
func wantSegments(refLen, segLen int) int {
	n := 0
	for off := 0; off < refLen; off += segLen {
		n++
	}
	return n
}

// segSpan returns the [off, end) reference range of segment id.
func segSpan(id, segLen, overlap, refLen int) (off, end int) {
	off = id * segLen
	end = off + segLen + overlap
	if end > refLen {
		end = refLen
	}
	return off, end
}

// emitter streams a section body through fn in scratch-sized chunks; the
// same emitters drive both the CRC pass and the write pass so the checksums
// can never drift from the bytes on disk.
type emitter func(scratch []byte, fn func([]byte) error) error

func emitSeq(s dna.Seq) emitter {
	return func(scratch []byte, fn func([]byte) error) error {
		for i := 0; i < len(s); {
			n := min(len(scratch), len(s)-i)
			for j := 0; j < n; j++ {
				scratch[j] = byte(s[i+j])
			}
			if err := fn(scratch[:n]); err != nil {
				return err
			}
			i += n
		}
		return nil
	}
}

func emitInt32s(v []int32) emitter {
	return func(scratch []byte, fn func([]byte) error) error {
		per := len(scratch) / 4
		for i := 0; i < len(v); {
			n := min(per, len(v)-i)
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint32(scratch[4*j:], uint32(v[i+j]))
			}
			if err := fn(scratch[:4*n]); err != nil {
				return err
			}
			i += n
		}
		return nil
	}
}

func emitUint64s(v []uint64) emitter {
	return func(scratch []byte, fn func([]byte) error) error {
		per := len(scratch) / 8
		for i := 0; i < len(v); {
			n := min(per, len(v)-i)
			for j := 0; j < n; j++ {
				binary.LittleEndian.PutUint64(scratch[8*j:], v[i+j])
			}
			if err := fn(scratch[:8*n]); err != nil {
				return err
			}
			i += n
		}
		return nil
	}
}

// crcWriter tracks the running whole-file CRC alongside the writes.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// WriteShards serializes sx, built from ref, to w in the v2 format,
// partitioning the segments into shard groups of groupSize segments each
// (the last group may be short). groupSize <= 0 or >= the segment count
// puts every segment in one group — plain mmap with no streaming
// partition. The group size is a residency hint baked into the header, not
// a data layout change: the tables are identical regardless, which is why
// the index hash is invariant across shard settings.
func WriteShards(w io.Writer, sx *seed.SegmentedIndex, ref dna.Seq, groupSize int) error {
	if sx == nil {
		return fmt.Errorf("indexio: nil index")
	}
	if sx.RefLen != len(ref) {
		return fmt.Errorf("indexio: index covers %d bases, reference has %d", sx.RefLen, len(ref))
	}
	numSegs := sx.NumSegments()
	if groupSize <= 0 || groupSize > numSegs {
		groupSize = numSegs
	}
	if groupSize < 1 {
		groupSize = 1
	}

	type section struct {
		v2Section
		emit emitter
	}
	sections := make([]section, 0, 1+3*numSegs)
	add := func(kind uint32, seg int, length int, e emitter) {
		sections = append(sections, section{
			v2Section: v2Section{kind: kind, seg: uint32(seg), len: uint64(length)},
			emit:      e,
		})
	}
	add(sectionRef, 0, len(ref), emitSeq(ref))
	for id, si := range sx.Samples {
		start := si.StartTable()
		positions := si.PositionTable()
		presence := si.PresenceWords()
		add(sectionStart, id, 4*len(start), emitInt32s(start))
		add(sectionPositions, id, 4*len(positions), emitInt32s(positions))
		add(sectionPresence, id, 8*len(presence), emitUint64s(presence))
	}

	headerLen := v2FixedHeader + v2SectionEntry*len(sections) + 4
	at := alignUp(headerLen)
	for i := range sections {
		sections[i].off = uint64(at)
		at = alignUp(at + int(sections[i].len))
	}

	// Pass 1: per-section CRCs, streamed through the same emitters the
	// write pass uses.
	scratch := make([]byte, 64<<10)
	for i := range sections {
		crc := uint32(0)
		err := sections[i].emit(scratch, func(b []byte) error {
			crc = crc32.Update(crc, crc32.IEEETable, b)
			return nil
		})
		if err != nil {
			return err
		}
		sections[i].crc = crc
	}

	// Header, CRC'd and padded to the first section boundary.
	hdr := make([]byte, alignUp(headerLen))
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(sx.K))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(sx.SegLen))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(sx.Overlap))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(sx.RefLen))
	binary.LittleEndian.PutUint64(hdr[40:], RefHash(ref))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(numSegs))
	binary.LittleEndian.PutUint32(hdr[56:], uint32(groupSize))
	binary.LittleEndian.PutUint32(hdr[60:], uint32(headerLen))
	for i, s := range sections {
		e := hdr[v2FixedHeader+v2SectionEntry*i:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint32(e[4:], s.seg)
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.len)
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}
	binary.LittleEndian.PutUint32(hdr[headerLen-4:], crc32.ChecksumIEEE(hdr[:headerLen-4]))

	// Pass 2: write everything through the whole-file CRC.
	cw := &crcWriter{w: w}
	if _, err := cw.Write(hdr); err != nil {
		return err
	}
	zeros := make([]byte, v2Align)
	written := len(hdr)
	for i := range sections {
		err := sections[i].emit(scratch, func(b []byte) error {
			n, err := cw.Write(b)
			written += n
			return err
		})
		if err != nil {
			return err
		}
		for pad := alignUp(written) - written; pad > 0; {
			n := min(pad, len(zeros))
			if _, err := cw.Write(zeros[:n]); err != nil {
				return err
			}
			written += n
			pad -= n
		}
	}
	var footer [4]byte
	binary.LittleEndian.PutUint32(footer[:], cw.crc)
	_, err := w.Write(footer[:])
	return err
}

// parseV2Header decodes and fully bounds-checks a v2 header against the
// file size. Every offset/length pair in the section table is verified to
// lie inside the file, be page-aligned, match the geometry-implied table
// sizes, and not overlap its neighbors — so a corrupt or hostile length
// field is rejected here, before any caller sizes an allocation or a view
// from it. Only the section-table slice (bounded by the checked segment
// count) is allocated.
func parseV2Header(data []byte) (*v2Header, error) {
	if len(data) < v2FixedHeader+4+4 {
		return nil, fmt.Errorf("indexio: v2 file too short (%d bytes)", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("indexio: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("indexio: unsupported format version %d (want %d)", v, Version)
	}
	h := &v2Header{
		k:       int(binary.LittleEndian.Uint32(data[8:])),
		segLen:  int(int64(binary.LittleEndian.Uint64(data[16:]))),
		overlap: int(int64(binary.LittleEndian.Uint64(data[24:]))),
		refLen:  int(int64(binary.LittleEndian.Uint64(data[32:]))),
		refHash: binary.LittleEndian.Uint64(data[40:]),
	}
	sectionCount := binary.LittleEndian.Uint32(data[12:])
	numSegs := binary.LittleEndian.Uint64(data[48:])
	h.groupSize = int(binary.LittleEndian.Uint32(data[56:]))
	h.headerLen = int(binary.LittleEndian.Uint32(data[60:]))
	if h.k < 1 || h.k > dna.MaxK {
		return nil, fmt.Errorf("indexio: k-mer length %d out of range [1,%d]", h.k, dna.MaxK)
	}
	if h.segLen < 1 || h.overlap < 0 || h.refLen < 0 {
		return nil, fmt.Errorf("indexio: invalid geometry (segLen %d, overlap %d, refLen %d)", h.segLen, h.overlap, h.refLen)
	}
	want := wantSegments(h.refLen, h.segLen)
	if numSegs != uint64(want) {
		return nil, fmt.Errorf("indexio: %d segments in file, geometry implies %d", numSegs, want)
	}
	h.numSegs = want
	if h.groupSize < 1 || (h.numSegs > 0 && h.groupSize > h.numSegs) {
		return nil, fmt.Errorf("indexio: shard group size %d invalid for %d segments", h.groupSize, h.numSegs)
	}
	if uint64(sectionCount) != uint64(1+3*h.numSegs) {
		return nil, fmt.Errorf("indexio: %d sections in file, %d segments imply %d", sectionCount, h.numSegs, 1+3*h.numSegs)
	}
	if h.headerLen != v2FixedHeader+v2SectionEntry*int(sectionCount)+4 {
		return nil, fmt.Errorf("indexio: header length %d inconsistent with %d sections", h.headerLen, sectionCount)
	}
	if h.headerLen+4 > len(data) {
		return nil, fmt.Errorf("indexio: header (%d bytes) exceeds file (%d bytes)", h.headerLen, len(data))
	}
	stored := binary.LittleEndian.Uint32(data[h.headerLen-4:])
	if got := crc32.ChecksumIEEE(data[:h.headerLen-4]); got != stored {
		return nil, fmt.Errorf("indexio: header checksum mismatch (file %08x, computed %08x): cache is corrupt", stored, got)
	}

	codec, err := dna.NewKmerCodec(h.k)
	if err != nil {
		return nil, err
	}
	numKmers := codec.NumKmers()
	startBytes := uint64(numKmers+1) * 4
	presenceBytes := uint64((numKmers+63)/64) * 8

	h.sections = make([]v2Section, sectionCount)
	limit := uint64(len(data) - 4) // sections end before the file CRC footer
	prevEnd := uint64(alignUp(h.headerLen))
	for i := range h.sections {
		e := data[v2FixedHeader+v2SectionEntry*i:]
		s := v2Section{
			kind: binary.LittleEndian.Uint32(e[0:]),
			seg:  binary.LittleEndian.Uint32(e[4:]),
			off:  binary.LittleEndian.Uint64(e[8:]),
			len:  binary.LittleEndian.Uint64(e[16:]),
			crc:  binary.LittleEndian.Uint32(e[24:]),
		}
		wantKind, wantSeg := uint32(sectionRef), uint32(0)
		if i > 0 {
			wantSeg = uint32((i - 1) / 3)
			wantKind = uint32(sectionStart + (i-1)%3)
		}
		if s.kind != wantKind || s.seg != wantSeg {
			return nil, fmt.Errorf("indexio: section %d is (kind %d, seg %d), layout requires (kind %d, seg %d)", i, s.kind, s.seg, wantKind, wantSeg)
		}
		if s.off%v2Align != 0 {
			return nil, fmt.Errorf("indexio: section %d offset %d not %d-aligned", i, s.off, v2Align)
		}
		if s.off < prevEnd || s.len > limit || s.off > limit-s.len {
			return nil, fmt.Errorf("indexio: section %d [%d, %d+%d) outside file or overlapping", i, s.off, s.off, s.len)
		}
		segOff, segEnd := segSpan(int(s.seg), h.segLen, h.overlap, h.refLen)
		switch s.kind {
		case sectionRef:
			if s.len != uint64(h.refLen) {
				return nil, fmt.Errorf("indexio: ref section holds %d bytes, reference has %d", s.len, h.refLen)
			}
		case sectionStart:
			if s.len != startBytes {
				return nil, fmt.Errorf("indexio: segment %d start table holds %d bytes, k=%d needs %d", s.seg, s.len, h.k, startBytes)
			}
		case sectionPositions:
			maxPos := uint64(segEnd-segOff) * 4
			if s.len%4 != 0 || s.len > maxPos {
				return nil, fmt.Errorf("indexio: segment %d claims %d position bytes for %d bases", s.seg, s.len, segEnd-segOff)
			}
		case sectionPresence:
			if s.len != presenceBytes {
				return nil, fmt.Errorf("indexio: segment %d presence bitmap holds %d bytes, k=%d needs %d", s.seg, s.len, h.k, presenceBytes)
			}
		}
		prevEnd = s.off + s.len
		h.sections[i] = s
	}
	return h, nil
}

// readV2 decodes a v2 file into a fresh heap-backed index bound to ref.
// raw is the whole file with its trailing CRC already verified; magic and
// version are checked again by the header parse.
func readV2(raw []byte, ref dna.Seq) (*seed.SegmentedIndex, error) {
	h, err := parseV2Header(raw)
	if err != nil {
		return nil, err
	}
	if h.refLen != len(ref) {
		return nil, fmt.Errorf("indexio: cache built for a %d-base reference, have %d bases", h.refLen, len(ref))
	}
	if got := RefHash(ref); got != h.refHash {
		return nil, fmt.Errorf("indexio: reference hash mismatch (cache %016x, have %016x): cache was built from a different reference", h.refHash, got)
	}
	sx := &seed.SegmentedIndex{
		RefLen:  h.refLen,
		SegLen:  h.segLen,
		Overlap: h.overlap,
		K:       h.k,
		Samples: make([]*seed.SegmentIndex, h.numSegs),
	}
	for id := 0; id < h.numSegs; id++ {
		start, positions, presence := h.segSections(id)
		tab := seed.Tables{
			Start:     decodeInt32s(raw[start.off : start.off+start.len]),
			Positions: decodeInt32s(raw[positions.off : positions.off+positions.len]),
			Presence:  decodeUint64s(raw[presence.off : presence.off+presence.len]),
		}
		off, end := segSpan(id, h.segLen, h.overlap, h.refLen)
		si, err := seed.NewSegmentIndexFromTables(ref[off:end], id, off, h.k, tab, true)
		if err != nil {
			return nil, fmt.Errorf("indexio: segment %d: %w", id, err)
		}
		sx.Samples[id] = si
	}
	return sx, nil
}

// Probe inspects the cache file at path against the (reference, geometry)
// pair in hand and reports why it cannot be used: the empty string means
// the cache is present, intact, and matches, so a rebuild would be wasted
// work. It never builds the index — cost is one file read plus checksums —
// and it never errors: every failure mode, I/O included, folds into the
// reason string, because the only decision the caller makes is
// rebuild-or-not plus what to print.
func Probe(path string, ref dna.Seq, k, segLen, overlap int) string {
	if k < 1 || segLen < 1 {
		return fmt.Sprintf("invalid geometry request (k=%d, segment=%d)", k, segLen)
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "no cache file"
	}
	if err != nil {
		return fmt.Sprintf("unreadable: %v", err)
	}
	if len(raw) < 12 {
		return fmt.Sprintf("file too short (%d bytes)", len(raw))
	}
	payload, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return fmt.Sprintf("checksum mismatch (file %08x, computed %08x)", sum, got)
	}
	if string(payload[:4]) != Magic {
		return fmt.Sprintf("bad magic %q", payload[:4])
	}
	var ck, cs, co, crefLen int
	var crefHash uint64
	switch v := binary.LittleEndian.Uint32(payload[4:]); v {
	case VersionV1:
		if len(payload) < headerSize {
			return fmt.Sprintf("v1 file too short (%d bytes)", len(payload))
		}
		ck = int(binary.LittleEndian.Uint32(payload[8:]))
		cs = int(int64(binary.LittleEndian.Uint64(payload[12:])))
		co = int(int64(binary.LittleEndian.Uint64(payload[20:])))
		crefLen = int(int64(binary.LittleEndian.Uint64(payload[28:])))
		crefHash = binary.LittleEndian.Uint64(payload[36:])
	case Version:
		h, err := parseV2Header(raw)
		if err != nil {
			return err.Error()
		}
		ck, cs, co, crefLen, crefHash = h.k, h.segLen, h.overlap, h.refLen, h.refHash
	default:
		return fmt.Sprintf("unsupported format version %d (current %d)", v, Version)
	}
	if ck != k || cs != segLen || co != overlap {
		return fmt.Sprintf("geometry mismatch (cache k=%d seg=%d overlap=%d, want k=%d seg=%d overlap=%d)", ck, cs, co, k, segLen, overlap)
	}
	if crefLen != len(ref) {
		return fmt.Sprintf("reference length mismatch (cache %d bases, have %d)", crefLen, len(ref))
	}
	if got := RefHash(ref); got != crefHash {
		return fmt.Sprintf("reference hash mismatch (cache %016x, have %016x)", crefHash, got)
	}
	return ""
}

// FileVersion reads a cache file's format version stamp (magic plus the
// version word, first 8 bytes) without loading or validating the rest.
// Callers use it to decide whether a Probe-fresh cache can also be mapped
// (v1 files pass Probe but only v2 supports OpenMapped).
func FileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	if string(hdr[:4]) != Magic {
		return 0, fmt.Errorf("indexio: bad magic %q", hdr[:4])
	}
	return int(binary.LittleEndian.Uint32(hdr[4:])), nil
}

// GroupSizeForShards converts a user-facing shard count (the -shards flag:
// "partition the cache into N groups") into the segments-per-group value
// the v2 header stores. It is the single flag→header conversion, shared by
// every writer and staleness probe so they cannot disagree: shards <= 0 or
// an empty index collapses to one all-spanning group, and a shard count
// beyond the segment count clamps to one segment per group.
func GroupSizeForShards(numSegs, shards int) int {
	if shards <= 0 || numSegs == 0 {
		return numSegs
	}
	if shards > numSegs {
		shards = numSegs
	}
	return (numSegs + shards - 1) / shards
}
