// Package align defines the shared alignment vocabulary: affine-gap scoring
// parameters, CIGAR strings, and alignment results. Both the hardware models
// (sillax) and the software baselines (sw, bwamem) speak these types, which
// is what makes the concordance experiments of §VIII-A possible.
package align

import "fmt"

// Scoring holds affine-gap scoring parameters. Penalties are stored as
// non-negative magnitudes; a gap of length L costs GapOpen + L*GapExtend
// (the paper's G = g_open + g_extend * id from §IV-B).
type Scoring struct {
	Match     int // reward per matching base (> 0)
	Mismatch  int // penalty per substitution (>= 0)
	GapOpen   int // one-time penalty per indel run (>= 0)
	GapExtend int // penalty per inserted/deleted base (>= 0)
}

// BWAMEMDefaults returns the BWA-MEM default scoring scheme used throughout
// the paper's evaluation: +1 match, -4 mismatch, -6 gap open, -1 gap extend.
func BWAMEMDefaults() Scoring {
	return Scoring{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 1}
}

// Unit returns edit-distance scoring (0 match, -1 for every edit, no gap
// open), under which the scoring machine degenerates into the edit machine.
func Unit() Scoring {
	return Scoring{Match: 0, Mismatch: 1, GapOpen: 0, GapExtend: 1}
}

// Validate checks the parameters for internal consistency.
func (s Scoring) Validate() error {
	if s.Match <= 0 && s != Unit() {
		return fmt.Errorf("align: match reward must be positive, got %d", s.Match)
	}
	if s.Mismatch < 0 || s.GapOpen < 0 || s.GapExtend < 0 {
		return fmt.Errorf("align: penalties must be non-negative magnitudes: %+v", s)
	}
	if s.GapExtend == 0 {
		return fmt.Errorf("align: gap extend penalty must be positive, got 0")
	}
	return nil
}

// GapCost returns the cost (a non-negative magnitude) of a gap of length l.
func (s Scoring) GapCost(l int) int {
	if l <= 0 {
		return 0
	}
	return s.GapOpen + l*s.GapExtend
}
