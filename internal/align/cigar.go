package align

import (
	"fmt"
	"strings"

	"genax/internal/dna"
)

// Op is a CIGAR operation. We use the extended SAM alphabet so that the
// traceback machines can report exact edit traces (=/X instead of M).
type Op byte

// CIGAR operations. OpIns consumes query only (a base inserted into the
// read relative to the reference — Silla's "insertion"); OpDel consumes
// reference only (Silla's "deletion"); OpClip consumes query only and is
// produced by BWA-MEM-style soft clipping.
const (
	OpMatch    Op = '='
	OpMismatch Op = 'X'
	OpIns      Op = 'I'
	OpDel      Op = 'D'
	OpClip     Op = 'S'
)

// ConsumesQuery reports whether the op advances the query (read) cursor.
func (o Op) ConsumesQuery() bool { return o != OpDel }

// ConsumesRef reports whether the op advances the reference cursor.
func (o Op) ConsumesRef() bool { return o == OpMatch || o == OpMismatch || o == OpDel }

// IsEdit reports whether the op counts toward Levenshtein distance.
func (o Op) IsEdit() bool { return o == OpMismatch || o == OpIns || o == OpDel }

func (o Op) valid() bool {
	switch o {
	case OpMatch, OpMismatch, OpIns, OpDel, OpClip:
		return true
	}
	return false
}

// Run is a maximal run of one operation.
type Run struct {
	Op  Op
	Len int
}

// Cigar is an edit trace as a sequence of runs.
type Cigar []Run

// Append adds n ops of kind o, coalescing with the final run when possible.
// It returns the extended cigar (append semantics).
func (c Cigar) Append(o Op, n int) Cigar {
	if n <= 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1].Op == o {
		c[len(c)-1].Len += n
		return c
	}
	return append(c, Run{o, n})
}

// String renders the cigar in SAM-like run-length form, e.g. "5=1X3=2I".
func (c Cigar) String() string {
	if len(c) == 0 {
		return "*"
	}
	var sb strings.Builder
	for _, r := range c {
		fmt.Fprintf(&sb, "%d%c", r.Len, r.Op)
	}
	return sb.String()
}

// ParseCigar parses the output of String. "*" parses to an empty cigar.
func ParseCigar(s string) (Cigar, error) {
	if s == "*" {
		return nil, nil
	}
	var c Cigar
	n := 0
	sawDigit := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch >= '0' && ch <= '9' {
			n = n*10 + int(ch-'0')
			sawDigit = true
			continue
		}
		op := Op(ch)
		if !op.valid() || !sawDigit || n == 0 {
			return nil, fmt.Errorf("align: invalid cigar %q at byte %d", s, i)
		}
		c = append(c, Run{op, n})
		n, sawDigit = 0, false
	}
	if sawDigit {
		return nil, fmt.Errorf("align: cigar %q ends mid-run", s)
	}
	return c, nil
}

// QueryLen returns how many query bases the cigar consumes.
func (c Cigar) QueryLen() int {
	n := 0
	for _, r := range c {
		if r.Op.ConsumesQuery() {
			n += r.Len
		}
	}
	return n
}

// RefLen returns how many reference bases the cigar consumes.
func (c Cigar) RefLen() int {
	n := 0
	for _, r := range c {
		if r.Op.ConsumesRef() {
			n += r.Len
		}
	}
	return n
}

// Edits returns the Levenshtein weight of the trace (substitutions plus
// inserted plus deleted bases; clips do not count).
func (c Cigar) Edits() int {
	n := 0
	for _, r := range c {
		if r.Op.IsEdit() {
			n += r.Len
		}
	}
	return n
}

// Matches returns the number of matching bases.
func (c Cigar) Matches() int {
	n := 0
	for _, r := range c {
		if r.Op == OpMatch {
			n += r.Len
		}
	}
	return n
}

// Score evaluates the trace under the affine scheme s. Clipped bases score
// zero, matching BWA-MEM soft-clip semantics.
func (c Cigar) Score(s Scoring) int {
	score := 0
	for _, r := range c {
		switch r.Op {
		case OpMatch:
			score += r.Len * s.Match
		case OpMismatch:
			score -= r.Len * s.Mismatch
		case OpIns, OpDel:
			score -= s.GapCost(r.Len)
		}
	}
	return score
}

// Clone returns a copy of the cigar sharing no storage with c; engines
// that build results in reusable scratch clone them before returning.
func (c Cigar) Clone() Cigar {
	if len(c) == 0 {
		return nil
	}
	out := make(Cigar, len(c))
	copy(out, c)
	return out
}

// Reverse returns the run-reversed cigar (used when stitching a left
// extension computed on reversed strings onto a right extension).
func (c Cigar) Reverse() Cigar {
	out := make(Cigar, 0, len(c))
	for i := len(c) - 1; i >= 0; i-- {
		out = out.Append(c[i].Op, c[i].Len)
	}
	return out
}

// ConcatReversed appends the run-reversal of d onto c, coalescing at the
// seam — equivalent to c.Concat(d.Reverse()) without materializing the
// reversed copy (the stitching hot path reverses every left extension).
func (c Cigar) ConcatReversed(d Cigar) Cigar {
	for i := len(d) - 1; i >= 0; i-- {
		c = c.Append(d[i].Op, d[i].Len)
	}
	return c
}

// Concat appends another cigar, coalescing at the seam.
func (c Cigar) Concat(d Cigar) Cigar {
	for _, r := range d {
		c = c.Append(r.Op, r.Len)
	}
	return c
}

// Validate checks the trace against the actual sequences: every '=' run
// must cover equal bases, every 'X' run differing bases, and the trace must
// consume exactly the query and exactly ref[0:RefLen]. This is the master
// invariant used by the traceback tests.
func (c Cigar) Validate(ref, query dna.Seq) error {
	ri, qi := 0, 0
	for runIdx, r := range c {
		if !r.Op.valid() || r.Len <= 0 {
			return fmt.Errorf("align: run %d invalid: %d%c", runIdx, r.Len, r.Op)
		}
		for k := 0; k < r.Len; k++ {
			switch r.Op {
			case OpMatch, OpMismatch:
				if ri >= len(ref) || qi >= len(query) {
					return fmt.Errorf("align: run %d overruns sequences (ref %d/%d, query %d/%d)", runIdx, ri, len(ref), qi, len(query))
				}
				eq := ref[ri] == query[qi]
				if eq != (r.Op == OpMatch) {
					return fmt.Errorf("align: run %d op %c contradicts bases ref[%d]=%v query[%d]=%v", runIdx, r.Op, ri, ref[ri], qi, query[qi])
				}
				ri++
				qi++
			case OpIns, OpClip:
				if qi >= len(query) {
					return fmt.Errorf("align: run %d overruns query", runIdx)
				}
				qi++
			case OpDel:
				if ri >= len(ref) {
					return fmt.Errorf("align: run %d overruns reference", runIdx)
				}
				ri++
			}
		}
	}
	if qi != len(query) {
		return fmt.Errorf("align: cigar consumes %d of %d query bases", qi, len(query))
	}
	return nil
}
