package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genax/internal/dna"
)

func TestScoringValidate(t *testing.T) {
	if err := BWAMEMDefaults().Validate(); err != nil {
		t.Errorf("BWAMEMDefaults invalid: %v", err)
	}
	if err := Unit().Validate(); err != nil {
		t.Errorf("Unit invalid: %v", err)
	}
	bad := []Scoring{
		{Match: 0, Mismatch: 4, GapOpen: 6, GapExtend: 1},
		{Match: 1, Mismatch: -1, GapOpen: 6, GapExtend: 1},
		{Match: 1, Mismatch: 4, GapOpen: 6, GapExtend: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scoring %+v accepted", s)
		}
	}
}

func TestGapCost(t *testing.T) {
	s := BWAMEMDefaults()
	if got := s.GapCost(0); got != 0 {
		t.Errorf("GapCost(0) = %d", got)
	}
	if got := s.GapCost(1); got != 7 {
		t.Errorf("GapCost(1) = %d, want 7", got)
	}
	if got := s.GapCost(3); got != 9 {
		t.Errorf("GapCost(3) = %d, want 9", got)
	}
}

func TestCigarStringAndParse(t *testing.T) {
	var c Cigar
	c = c.Append(OpMatch, 5)
	c = c.Append(OpMatch, 2) // coalesce
	c = c.Append(OpMismatch, 1)
	c = c.Append(OpIns, 2)
	c = c.Append(OpDel, 1)
	c = c.Append(OpClip, 3)
	want := "7=1X2I1D3S"
	if c.String() != want {
		t.Fatalf("String = %q, want %q", c, want)
	}
	back, err := ParseCigar(want)
	if err != nil {
		t.Fatalf("ParseCigar: %v", err)
	}
	if back.String() != want {
		t.Errorf("round trip = %q", back)
	}
	if empty, err := ParseCigar("*"); err != nil || len(empty) != 0 {
		t.Errorf("ParseCigar(*) = %v, %v", empty, err)
	}
	for _, bad := range []string{"5", "=", "0=", "5=3", "5Z", "5=x"} {
		if _, err := ParseCigar(bad); err == nil {
			t.Errorf("ParseCigar(%q) accepted", bad)
		}
	}
}

func TestCigarAppendZero(t *testing.T) {
	var c Cigar
	c = c.Append(OpMatch, 0)
	c = c.Append(OpMatch, -3)
	if len(c) != 0 {
		t.Errorf("zero-length appends produced %v", c)
	}
}

func TestCigarLengthsAndEdits(t *testing.T) {
	c, _ := ParseCigar("2S5=1X2I3D4=")
	if got := c.QueryLen(); got != 14 {
		t.Errorf("QueryLen = %d, want 14", got)
	}
	if got := c.RefLen(); got != 13 {
		t.Errorf("RefLen = %d, want 13", got)
	}
	if got := c.Edits(); got != 6 {
		t.Errorf("Edits = %d, want 6", got)
	}
	if got := c.Matches(); got != 9 {
		t.Errorf("Matches = %d, want 9", got)
	}
}

func TestCigarScore(t *testing.T) {
	s := BWAMEMDefaults()
	c, _ := ParseCigar("10=")
	if got := c.Score(s); got != 10 {
		t.Errorf("10= score = %d", got)
	}
	c, _ = ParseCigar("5=1X4=")
	if got := c.Score(s); got != 9-4 {
		t.Errorf("mismatch score = %d, want 5", got)
	}
	c, _ = ParseCigar("5=2I5=")
	if got := c.Score(s); got != 10-8 {
		t.Errorf("gap score = %d, want 2", got)
	}
	c, _ = ParseCigar("5=3S")
	if got := c.Score(s); got != 5 {
		t.Errorf("clip score = %d, want 5", got)
	}
	// Two separate gaps pay gap-open twice.
	c, _ = ParseCigar("2=1D2=1D2=")
	if got := c.Score(s); got != 6-14 {
		t.Errorf("two-gap score = %d, want -8", got)
	}
}

func TestCigarReverseConcat(t *testing.T) {
	c, _ := ParseCigar("3=1X2I")
	r := c.Reverse()
	if r.String() != "2I1X3=" {
		t.Errorf("Reverse = %q", r)
	}
	a, _ := ParseCigar("3=")
	b, _ := ParseCigar("2=1X")
	if got := a.Concat(b).String(); got != "5=1X" {
		t.Errorf("Concat = %q, want 5=1X", got)
	}
}

func TestCigarValidate(t *testing.T) {
	ref := dna.MustParseSeq("ACGTACGT")
	query := dna.MustParseSeq("ACGAACGT") // one mismatch at index 3
	ok, _ := ParseCigar("3=1X4=")
	if err := ok.Validate(ref, query); err != nil {
		t.Errorf("valid cigar rejected: %v", err)
	}
	badOp, _ := ParseCigar("8=")
	if err := badOp.Validate(ref, query); err == nil {
		t.Error("cigar claiming match over a mismatch accepted")
	}
	short, _ := ParseCigar("3=1X3=")
	if err := short.Validate(ref, query); err == nil {
		t.Error("cigar not consuming full query accepted")
	}
	over, _ := ParseCigar("3=1X4=2D")
	if err := over.Validate(ref, query); err == nil {
		t.Error("cigar overrunning reference accepted")
	}
	// Insertion consumes the query without touching the reference.
	ins, _ := ParseCigar("3=1I4=")
	if err := ins.Validate(dna.MustParseSeq("ACGACGT"), query); err != nil {
		t.Errorf("insertion cigar rejected: %v", err)
	}
}

func TestResultBetter(t *testing.T) {
	a := Result{RefPos: 10, Score: 50}
	b := Result{RefPos: 5, Score: 40}
	if !a.Better(b) || b.Better(a) {
		t.Error("higher score must win")
	}
	c := Result{RefPos: 5, Score: 50}
	if !c.Better(a) {
		t.Error("tie must break to leftmost position")
	}
	d := Result{RefPos: 10, Score: 50, Reverse: true}
	if !a.Better(d) {
		t.Error("tie at same pos must break to forward strand")
	}
}

func TestResultRefEnd(t *testing.T) {
	c, _ := ParseCigar("5=2D3=")
	r := Result{RefPos: 100, Cigar: c}
	if got := r.RefEnd(); got != 110 {
		t.Errorf("RefEnd = %d, want 110", got)
	}
}

func TestCigarRoundTripProperty(t *testing.T) {
	ops := []Op{OpMatch, OpMismatch, OpIns, OpDel, OpClip}
	r := rand.New(rand.NewSource(29))
	f := func(n uint8) bool {
		var c Cigar
		for i := 0; i < int(n)%12; i++ {
			c = c.Append(ops[r.Intn(len(ops))], 1+r.Intn(9))
		}
		back, err := ParseCigar(c.String())
		return err == nil && back.String() == c.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCigarReverseIsInvolution(t *testing.T) {
	ops := []Op{OpMatch, OpMismatch, OpIns, OpDel}
	r := rand.New(rand.NewSource(30))
	f := func(n uint8) bool {
		var c Cigar
		for i := 0; i < int(n)%10; i++ {
			c = c.Append(ops[r.Intn(len(ops))], 1+r.Intn(5))
		}
		return c.Reverse().Reverse().String() == c.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCigarScoreAdditiveUnderConcat(t *testing.T) {
	// Concat coalesces runs; the score of the concatenation may only
	// improve (a merged gap run pays one open instead of two).
	s := BWAMEMDefaults()
	a, _ := ParseCigar("3=2D")
	b, _ := ParseCigar("2D3=")
	joined := a.Concat(b)
	if joined.String() != "3=4D3=" {
		t.Fatalf("Concat = %v", joined)
	}
	if joined.Score(s) <= a.Score(s)+b.Score(s) {
		t.Errorf("merged gap must beat two opens: %d vs %d", joined.Score(s), a.Score(s)+b.Score(s))
	}
}

func TestConcatReversed(t *testing.T) {
	cases := []struct{ c, d string }{
		{"3=1X", "2=1I4="},
		{"*", "5="},
		{"2I", "*"},
		{"3=", "2=1D"}, // seam coalescing: reversed d ends 2= meeting 3=
	}
	for _, tc := range cases {
		c, err := ParseCigar(tc.c)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ParseCigar(tc.d)
		if err != nil {
			t.Fatal(err)
		}
		got := append(Cigar(nil), c...).ConcatReversed(d)
		want := append(Cigar(nil), c...).Concat(d.Reverse())
		if got.String() != want.String() {
			t.Errorf("ConcatReversed(%s, %s) = %s, want %s", tc.c, tc.d, got, want)
		}
	}
}
