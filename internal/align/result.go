package align

import "fmt"

// Result is a completed alignment of a query (read) against a reference.
type Result struct {
	// RefPos is the 0-based position on the reference where the aligned
	// portion begins.
	RefPos int
	// Score is the affine-gap score of the alignment.
	Score int
	// Cigar is the edit trace, query-complete (including clips).
	Cigar Cigar
	// Reverse reports that the read aligned on the reverse-complement
	// strand.
	Reverse bool
}

// RefEnd returns the 0-based position one past the last reference base
// covered by the alignment.
func (r Result) RefEnd() int { return r.RefPos + r.Cigar.RefLen() }

// Edits returns the Levenshtein weight of the trace.
func (r Result) Edits() int { return r.Cigar.Edits() }

// String renders a compact human-readable summary.
func (r Result) String() string {
	strand := "+"
	if r.Reverse {
		strand = "-"
	}
	return fmt.Sprintf("pos=%d strand=%s score=%d cigar=%s", r.RefPos, strand, r.Score, r.Cigar)
}

// Better reports whether r beats other under BWA-MEM's selection rule:
// higher score wins; ties break toward the leftmost reference position so
// that results are deterministic.
func (r Result) Better(other Result) bool {
	if r.Score != other.Score {
		return r.Score > other.Score
	}
	if r.RefPos != other.RefPos {
		return r.RefPos < other.RefPos
	}
	return !r.Reverse && other.Reverse
}
