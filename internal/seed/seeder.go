package seed

import "genax/internal/dna"

// ScanMode selects how a lane turns read windows into k-mers.
type ScanMode string

const (
	// ScanRolling encodes the whole read once via KmerCodec.AppendScan and
	// memoizes the per-position k-mers, so RMEM restarts, probe re-reads,
	// and refine re-probes all hit the memo instead of re-running the O(k)
	// Encode loop. Lookups also take the presence-bitmap pre-filter. This
	// is the default.
	ScanRolling ScanMode = "rolling"
	// ScanPerProbe re-encodes every probed window from scratch and goes
	// straight to the dense start table — the pre-overhaul seed path, kept
	// as the honest baseline for genax-bench -compare-seed. Results and
	// Stats are identical to ScanRolling; only the work per probe differs.
	ScanPerProbe ScanMode = "perprobe"
)

// Options select the seeding optimizations of §V so each can be ablated
// for the Fig 16 experiments.
type Options struct {
	// MinSeedLen is BWA-MEM's minimum reported seed length (19 default).
	MinSeedLen int
	// CAMSize is the per-lane CAM capacity (512 in GenAx).
	CAMSize int
	// SMEMFilter enables RMEM/SMEM computation; disabled, the seeder is
	// the naive hash baseline that forwards every k-mer window's hits.
	SMEMFilter bool
	// BinaryExtension enables the stride-halving refinement that grows
	// RMEMs to their exact length (optimization two); disabled, RMEMs
	// stop at multiples of k and carry correspondingly more hits.
	BinaryExtension bool
	// BinarySearch enables the sorted-position-table binary search for
	// hit lists that exceed the CAM; disabled, oversized lists stream
	// through the CAM in chunks (the Fig 16b "linear" baseline).
	BinarySearch bool
	// Probing looks up several low-stride second k-mers and starts the
	// intersection from the smallest hit set (optimization three).
	Probing bool
	// ExactFastPath short-circuits reads that match the reference
	// exactly (~75% of real reads, optimization four).
	ExactFastPath bool
	// MaxHits, when positive, caps the hits reported per seed.
	MaxHits int
	// Scan selects the window-encoding strategy; empty means ScanRolling.
	Scan ScanMode
}

// DefaultOptions returns the full GenAx configuration.
func DefaultOptions() Options {
	return Options{
		MinSeedLen:      19,
		CAMSize:         512,
		SMEMFilter:      true,
		BinaryExtension: true,
		BinarySearch:    true,
		Probing:         true,
		ExactFastPath:   true,
	}
}

// Seed is one reported seed: the read substring [Start,End) occurs in the
// segment at every position in Positions (global coordinates of Start).
type Seed struct {
	Start, End int
	Positions  []int32
}

// Len returns the seed length.
func (s Seed) Len() int { return s.End - s.Start }

// Stats counts the work a seeding lane performed.
type Stats struct {
	Reads        int
	ExactReads   int // reads resolved by the exact-match fast path
	IndexLookups int // index-table accesses
	CAMLookups   int // associative/binary probe operations
	SeedsEmitted int
	HitsEmitted  int // total (seed, position) pairs sent to extension
}

// segWin is one stride-k window of the exact-match fast path.
type segWin struct {
	q    int
	hits []int32
}

// Seeder is one seeding lane bound to a segment index. A lane is long-lived:
// Reset rebinds it to the next segment's tables while the CAM and all
// scratch buffers survive, so steady-state seeding does not allocate.
type Seeder struct {
	si   *SegmentIndex
	cam  *CAM
	opts Options
	// Stats accumulates across Seed calls; reset it directly.
	Stats Stats

	// perProbe caches opts.Scan == ScanPerProbe for the hot path.
	perProbe bool

	// Lane-owned scratch. curBuf double-buffers the candidate sets flowing
	// through intersect: writes always go to the buffer live does NOT name,
	// and adopt flips live when the caller keeps a result, so an input set
	// is never overwritten while still being read. inBuf holds the
	// delta-normalized incoming hits of one intersect call; seedBuf backs
	// the returned seeds; winBuf backs the exact-match window list; scan
	// memoizes the read's per-position k-mers for the current Seed call;
	// arena is the flat hit-list buffer every emitted Positions slice is
	// carved from (see emit for its lifetime rules).
	inBuf   []int32
	curBuf  [2][]int32
	live    int
	seedBuf []Seed
	winBuf  []segWin
	scan    []dna.Kmer
	arena   []int32
}

// NewSeeder builds a lane over si.
func NewSeeder(si *SegmentIndex, opts Options) *Seeder {
	if opts.MinSeedLen < 1 {
		opts.MinSeedLen = 1
	}
	if opts.CAMSize < 1 {
		opts.CAMSize = 512
	}
	if opts.Scan == "" {
		opts.Scan = ScanRolling
	}
	return &Seeder{si: si, cam: NewCAM(opts.CAMSize), opts: opts, perProbe: opts.Scan == ScanPerProbe}
}

// Reset rebinds the lane to another segment's tables in place, mirroring
// the chip streaming a fresh per-segment table pair into SRAM while the
// lane hardware persists: the CAM, scratch buffers, and accumulated Stats
// all survive. The new index must use the same k-mer length workflow as
// any previous one only in the sense that Seed consults si.K() per call —
// differing k is allowed.
func (sd *Seeder) Reset(si *SegmentIndex) { sd.si = si }

// Options returns the lane configuration.
func (sd *Seeder) Options() Options { return sd.opts }

// adopt records that the caller now holds the most recent intersect result
// as its live candidate set, so the next intersect writes the other buffer.
//
//genax:hotpath
func (sd *Seeder) adopt() { sd.live ^= 1 }

// lookup charges an index-table access and returns the (sorted, local)
// hits of the window at read position q. In ScanRolling mode the k-mer
// comes from the per-read memo and the probe takes the presence-bitmap
// pre-filter; in ScanPerProbe mode it is re-encoded and goes straight to
// the dense table. Both modes charge IndexLookups identically — the model
// counts one table access per in-bounds window either way.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) lookup(read dna.Seq, q int) ([]int32, bool) {
	if sd.perProbe {
		km, ok := sd.si.codec.Encode(read, q)
		if !ok {
			return nil, false
		}
		sd.Stats.IndexLookups++
		return sd.si.lookupDense(km), true
	}
	if q < 0 || q >= len(sd.scan) {
		return nil, false
	}
	sd.Stats.IndexLookups++
	return sd.si.Lookup(sd.scan[q]), true
}

// hitsAt is lookup without the IndexLookups charge, for re-reading a window
// that was already charged (rmem's probe winner).
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) hitsAt(read dna.Seq, q int) []int32 {
	if sd.perProbe {
		km, ok := sd.si.codec.Encode(read, q)
		if !ok {
			return nil
		}
		return sd.si.lookupDense(km)
	}
	if q < 0 || q >= len(sd.scan) {
		return nil
	}
	return sd.si.Lookup(sd.scan[q])
}

// intersect intersects the sorted candidate set cur (pivot-normalized)
// with the hits of window q (normalized by delta = q - pivot), charging
// the CAM model per §V. The dispatcher is cost-aware, as the hardware FSM
// knows both set sizes: it probes the smaller set against the CAM when
// everything fits, binary-searches the sorted position list when that is
// cheaper (optimization two), and — with binary search disabled — streams
// oversized lists through the CAM in chunks.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) intersect(cur []int32, raw []int32, delta int32) []int32 {
	incoming := sd.inBuf[:0]
	for _, h := range raw {
		incoming = append(incoming, h-delta)
	}
	sd.inBuf = incoming
	cam := sd.cam
	const inf = 1 << 60
	// Feasible strategies and their CAM-operation costs (loads + probes;
	// binary search runs against the sorted position table instead and
	// pays log2 probes per candidate). The FSM knows both set sizes and
	// picks the cheapest.
	probeIncomingCost, probeCurCost, chunkedCost, binaryCost := inf, inf, inf, inf
	if len(cur) <= cam.Size() {
		probeIncomingCost = len(cur) + len(incoming)
	}
	if len(incoming) <= cam.Size() {
		probeCurCost = len(incoming) + len(cur)
	}
	chunks := (len(incoming) + cam.Size() - 1) / cam.Size()
	chunkedCost = len(incoming) + len(cur)*chunks
	if sd.opts.BinarySearch {
		binaryCost = BinaryCost(len(cur), len(incoming))
	}

	dst := sd.curBuf[1-sd.live][:0]
	var out []int32
	switch minOf(probeIncomingCost, probeCurCost, chunkedCost, binaryCost) {
	case binaryCost:
		out = cam.IntersectBinaryInto(dst, cur, incoming)
	case probeIncomingCost:
		cam.Load(cur)
		out = cam.IntersectProbeInto(dst, incoming)
	case probeCurCost:
		cam.Load(incoming)
		out = cam.IntersectProbeInto(dst, cur)
	default:
		out = cam.IntersectChunkedInto(dst, cur, incoming)
	}
	sd.curBuf[1-sd.live] = out
	sd.Stats.CAMLookups = cam.Lookups + cam.Writes
	return out
}

//genax:hotpath
func minOf(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// rmem computes the right-maximal exact match from pivot p: the matched
// length and the candidate positions (local, normalized to p). A length
// below k means the pivot's own window had no hits.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) rmem(read dna.Seq, p int) (int, []int32) {
	k := sd.si.K()
	m := len(read)
	h1, ok := sd.lookup(read, p)
	if !ok || len(h1) == 0 {
		return 0, nil
	}
	cur := h1
	last := p // start of the last matched window
	// Optimization three: probe a few second windows at decreasing
	// strides and continue from the one with the fewest hits.
	if sd.opts.Probing {
		bestQ, bestLen := -1, 1<<30
		for _, s := range [...]int{k, k/2 + 1, k/4 + 1} {
			q := p + s
			if q <= p || q > m-k {
				continue
			}
			h, ok := sd.lookup(read, q)
			if !ok {
				continue
			}
			if len(h) < bestLen {
				bestQ, bestLen = q, len(h)
			}
		}
		if bestQ > 0 {
			h := sd.hitsAt(read, bestQ) // already charged above
			next := sd.intersect(cur, h, int32(bestQ-p))
			if len(next) == 0 {
				// The probed window mismatched; fall back to refining
				// within the first window's span.
				return sd.refine(read, p, p, cur)
			}
			cur, last = next, bestQ
			sd.adopt()
		}
	}
	// Doubling phase: stride k while the intersection survives.
	for {
		q := last + k
		if q > m-k {
			break
		}
		h, ok := sd.lookup(read, q)
		if !ok {
			break
		}
		next := sd.intersect(cur, h, int32(q-p))
		if len(next) == 0 {
			break
		}
		cur, last = next, q
		sd.adopt()
	}
	return sd.refine(read, p, last, cur)
}

// refine runs the stride-halving phase (optimization two) to pin the exact
// RMEM end between last+k and last+2k, then returns the match.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) refine(read dna.Seq, p, last int, cur []int32) (int, []int32) {
	k := sd.si.K()
	m := len(read)
	if sd.opts.BinaryExtension {
		for s := k / 2; s >= 1; s /= 2 {
			q := last + s
			if q > m-k {
				continue
			}
			h, ok := sd.lookup(read, q)
			if !ok {
				continue
			}
			next := sd.intersect(cur, h, int32(q-p))
			if len(next) > 0 {
				cur, last = next, q
				sd.adopt()
			}
		}
	}
	return last + k - p, cur
}

// Seed reports the seeds of a read against this lane's segment, in read
// order, with positions translated to global coordinates. The returned
// slice and the Positions slices inside it are backed by lane-owned
// scratch (the hit-list arena): they are valid only until the next Seed
// call on this Seeder.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) Seed(read dna.Seq) []Seed {
	sd.Stats.Reads++
	sd.arena = sd.arena[:0]
	k := sd.si.K()
	m := len(read)
	if m < k {
		return nil
	}
	if !sd.perProbe {
		// Encode every window of the read once; all probes below hit this
		// memo, including RMEM restarts and refine re-probes of the same
		// position.
		sd.scan = sd.si.codec.AppendScan(sd.scan[:0], read)
	}
	if !sd.opts.SMEMFilter {
		return sd.naiveSeeds(read)
	}
	if sd.opts.ExactFastPath {
		if out, ok := sd.exactMatch(read); ok {
			sd.Stats.ExactReads++
			return out
		}
	}
	out := sd.seedBuf[:0]
	maxEnd := -1
	for p := 0; p+k <= m; p++ {
		l, cur := sd.rmem(read, p)
		if l < k {
			continue
		}
		end := p + l
		if end <= maxEnd {
			continue // contained in an earlier SMEM: not super-maximal
		}
		// Skip non-left-maximal RMEMs: a longer match from an earlier
		// pivot covering this span has already set maxEnd past end,
		// which the containment test above caught. (Any RMEM from p-1
		// reaching end would give maxEnd >= end.)
		maxEnd = end
		if l < sd.opts.MinSeedLen {
			continue
		}
		out = sd.emit(out, p, end, cur)
	}
	sd.seedBuf = out
	return out
}

// emit appends a Seed for the pivot-normalized local candidates to out,
// translating to global coordinates and charging the hit counters. Every
// Positions slice is carved out of the lane's flat arena: one append run,
// then a full-capacity reslice so later emits cannot grow into it. The
// arena resets at each Seed call, so a warm lane emits without allocating;
// if an append does grow the arena mid-read, earlier seeds keep aliasing
// the old backing array — still correct, since emitted positions are never
// rewritten, and the grown arena makes the next read allocation-free.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) emit(out []Seed, start, end int, cur []int32) []Seed {
	a := sd.arena
	base := len(a)
	off := int32(sd.si.Offset)
	for _, c := range cur {
		a = append(a, c+off)
		if sd.opts.MaxHits > 0 && len(a)-base >= sd.opts.MaxHits {
			break
		}
	}
	sd.arena = a
	positions := a[base:len(a):len(a)]
	sd.Stats.SeedsEmitted++
	sd.Stats.HitsEmitted += len(positions)
	return append(out, Seed{Start: start, End: end, Positions: positions})
}

// exactMatch implements optimization four: intersect ceil(m/k) windows
// spanning the whole read, smallest hit set first; a non-empty result is a
// whole-read exact match and seed-extension can be skipped entirely. On
// success it returns the lane's seed buffer holding the single seed.
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) exactMatch(read dna.Seq) ([]Seed, bool) {
	k := sd.si.K()
	m := len(read)
	wins := sd.winBuf[:0]
	// Persist the (possibly grown) window buffer on every exit so the next
	// read reuses it; a defer would make this function heap-allocate.
	for q := 0; ; q += k {
		if q > m-k {
			if last := m - k; last > wins[len(wins)-1].q {
				h, ok := sd.lookup(read, last)
				if !ok || len(h) == 0 {
					sd.winBuf = wins
					return nil, false
				}
				wins = append(wins, segWin{last, h})
			}
			break
		}
		h, ok := sd.lookup(read, q)
		if !ok || len(h) == 0 {
			sd.winBuf = wins
			return nil, false
		}
		wins = append(wins, segWin{q, h})
	}
	sd.winBuf = wins
	// Smallest set first minimizes CAM work.
	smallest := 0
	for i, w := range wins {
		if len(w.hits) < len(wins[smallest].hits) {
			smallest = i
		}
	}
	base := wins[smallest]
	cur := sd.curBuf[0][:0]
	for _, h := range base.hits {
		cur = append(cur, h-int32(base.q)) // normalize to read start
	}
	sd.curBuf[0] = cur
	sd.live = 0
	for i, w := range wins {
		if i == smallest || len(cur) == 0 {
			continue
		}
		cur = sd.intersect(cur, w.hits, int32(w.q))
		sd.adopt()
	}
	// Negative positions would run off the segment start.
	valid := cur[:0]
	for _, c := range cur {
		if c >= 0 {
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return nil, false
	}
	sd.seedBuf = sd.emit(sd.seedBuf[:0], 0, m, valid)
	return sd.seedBuf, true
}

// naiveSeeds is the baseline without SMEM filtering: every stride-k window
// forwards all of its hits to extension (Fig 16a's "naive hash" bar).
//
//genax:borrowed
//genax:hotpath
func (sd *Seeder) naiveSeeds(read dna.Seq) []Seed {
	k := sd.si.K()
	m := len(read)
	out := sd.seedBuf[:0]
	for q := 0; q+k <= m; q += k {
		h, ok := sd.lookup(read, q)
		if !ok || len(h) == 0 {
			continue
		}
		out = sd.emit(out, q, q+k, h)
	}
	sd.seedBuf = out
	return out
}
