// Package seed models the GenAx seeding accelerator (§V): per-segment
// k-mer index and position tables sized for on-chip SRAM, a 512-entry CAM
// per lane for hit-set intersection, and the RMEM/SMEM engine with the
// paper's four optimizations — SMEM filtering, binary extension, low-stride
// probing, and the exact-match fast path.
package seed

import (
	"fmt"

	"genax/internal/dna"
)

// SegmentIndex is the index of one genome segment: for every k-mer, the
// sorted list of positions where it occurs. The paper streams one such
// pair of tables (48 MB index + 18 MB positions for k=12) into on-chip
// SRAM per segment.
type SegmentIndex struct {
	// ID is the segment number; Offset its start in the global reference.
	ID     int
	Offset int
	// Ref is the segment's reference slice (including overlap margin).
	Ref dna.Seq

	codec *dna.KmerCodec
	// start[km] .. start[km+1] delimit positions of k-mer km.
	start     []int32
	positions []int32
}

// BuildSegmentIndex indexes ref (one segment) with k-mer length k.
func BuildSegmentIndex(ref dna.Seq, id, offset, k int) (*SegmentIndex, error) {
	if k < 1 {
		return nil, fmt.Errorf("seed: k-mer length %d must be positive", k)
	}
	codec, err := dna.NewKmerCodec(k)
	if err != nil {
		return nil, err
	}
	si := &SegmentIndex{ID: id, Offset: offset, Ref: ref, codec: codec}
	numKmers := codec.NumKmers()
	counts := make([]int32, numKmers+1)
	n := len(ref) - k + 1
	if n < 0 {
		n = 0
	}
	if n > 0 {
		km, _ := codec.Encode(ref, 0)
		counts[km+1]++
		for p := 1; p < n; p++ {
			km = codec.Roll(km, ref[p+k-1])
			counts[km+1]++
		}
	}
	for i := 1; i <= numKmers; i++ {
		counts[i] += counts[i-1]
	}
	si.start = counts
	si.positions = make([]int32, n)
	fill := make([]int32, numKmers)
	if n > 0 {
		km, _ := codec.Encode(ref, 0)
		si.positions[si.start[km]+fill[km]] = 0
		fill[km]++
		for p := 1; p < n; p++ {
			km = codec.Roll(km, ref[p+k-1])
			si.positions[si.start[km]+fill[km]] = int32(p)
			fill[km]++
		}
	}
	return si, nil
}

// K returns the k-mer length.
func (si *SegmentIndex) K() int { return si.codec.K() }

// Lookup returns the sorted (ascending) local positions of km. The slice
// aliases the position table; callers must not mutate it.
func (si *SegmentIndex) Lookup(km dna.Kmer) []int32 {
	return si.positions[si.start[km]:si.start[km+1]]
}

// LookupAt encodes the k-mer of read at pos and returns its hits. ok is
// false when the window does not fit in the read.
func (si *SegmentIndex) LookupAt(read dna.Seq, pos int) (hits []int32, ok bool) {
	km, ok := si.codec.Encode(read, pos)
	if !ok {
		return nil, false
	}
	return si.Lookup(km), true
}

// IndexTableBytes returns the modelled SRAM footprint of the index table
// (one 4-byte offset per k-mer), and PositionTableBytes that of the
// position list — the quantities Table II charges to on-chip SRAM.
func (si *SegmentIndex) IndexTableBytes() int { return 4 * (si.codec.NumKmers() + 1) }

// PositionTableBytes returns the position-table footprint.
func (si *SegmentIndex) PositionTableBytes() int { return 4 * len(si.positions) }

// SegmentedIndex is the whole-genome structure: the reference cut into
// fixed-size segments (512 for a human genome in §VI) with enough overlap
// that any read-length window lies wholly inside at least one segment.
type SegmentedIndex struct {
	RefLen  int
	SegLen  int
	Overlap int
	Samples []*SegmentIndex
}

// BuildSegmentedIndex cuts ref into segments of segLen bases plus overlap
// and indexes each. overlap must cover the longest read plus the edit
// bound so no alignment is lost at a boundary.
func BuildSegmentedIndex(ref dna.Seq, segLen, overlap, k int) (*SegmentedIndex, error) {
	if segLen <= 0 {
		return nil, fmt.Errorf("seed: segment length %d must be positive", segLen)
	}
	if overlap < 0 {
		return nil, fmt.Errorf("seed: negative overlap %d", overlap)
	}
	if k < 1 {
		return nil, fmt.Errorf("seed: k-mer length %d must be positive", k)
	}
	sx := &SegmentedIndex{RefLen: len(ref), SegLen: segLen, Overlap: overlap}
	for off, id := 0, 0; off < len(ref); off, id = off+segLen, id+1 {
		end := off + segLen + overlap
		if end > len(ref) {
			end = len(ref)
		}
		si, err := BuildSegmentIndex(ref[off:end], id, off, k)
		if err != nil {
			return nil, err
		}
		sx.Samples = append(sx.Samples, si)
		if end == len(ref) && off+segLen >= len(ref) {
			break
		}
	}
	return sx, nil
}

// NumSegments returns the segment count.
func (sx *SegmentedIndex) NumSegments() int { return len(sx.Samples) }
