// Package seed models the GenAx seeding accelerator (§V): per-segment
// k-mer index and position tables sized for on-chip SRAM, a 512-entry CAM
// per lane for hit-set intersection, and the RMEM/SMEM engine with the
// paper's four optimizations — SMEM filtering, binary extension, low-stride
// probing, and the exact-match fast path.
package seed

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"genax/internal/dna"
)

// Tables is the thin view a SegmentIndex reads through: the start table,
// the position table, and the presence bitmap as plain slices. The backing
// memory is either owned heap storage (the builders, the v1 cache loader)
// or a borrowed window of a memory-mapped GAXI v2 file (indexio.OpenMapped)
// — the lookup paths are identical either way, which is what keeps
// SegmentedIndex.Hash and every seed result byte-identical across the
// in-memory, mapped, and sharded paths.
//
// Mapped views outlive nothing: the slices alias the mapping, so the file
// may be unmapped only after every lane that borrowed from the index has
// drained (see indexio.Mapped.Close).
type Tables struct {
	// Start[km] .. Start[km+1] delimit positions of k-mer km.
	Start []int32
	// Positions is every occurrence list concatenated in k-mer order.
	Positions []int32
	// Presence is a sidecar bitmap: bit km is set iff the k-mer occurs in
	// the segment (Start[km] < Start[km+1]). At 2 bits per table entry it
	// is 32× smaller than the start table, so the common absent-k-mer probe
	// (a read tested against a segment it does not belong to) resolves in a
	// cache-resident structure instead of a miss on the 4(4^k+1)-byte start
	// table. It is derived data — the chip keeps the whole table in SRAM
	// and needs no such filter — and is excluded from the Table II SRAM
	// model.
	Presence []uint64
}

// SegmentIndex is the index of one genome segment: for every k-mer, the
// sorted list of positions where it occurs. The paper streams one such
// pair of tables (48 MB index + 18 MB positions for k=12) into on-chip
// SRAM per segment.
type SegmentIndex struct {
	// ID is the segment number; Offset its start in the global reference.
	ID     int
	Offset int
	// Ref is the segment's reference slice (including overlap margin).
	Ref dna.Seq

	codec *dna.KmerCodec
	// tab is the table view: owned heap slices for built indexes, borrowed
	// mapping windows for indexes opened in place.
	tab Tables
}

// sparseBuildFactor selects the build strategy: when the windows of a
// segment fill less than 1/sparseBuildFactor of the k-mer space, the index
// is assembled by sorting (k-mer, position) pairs and run-filling the start
// table, skipping the O(4^k) serially-dependent prefix-sum chain of the
// dense counting build. Laptop-scale segments with k=12 are ~0.05% dense,
// so this is their default path; paper-scale segments stay on the dense
// counting build.
const sparseBuildFactor = 32

// BuildSegmentIndex indexes ref (one segment) with k-mer length k.
func BuildSegmentIndex(ref dna.Seq, id, offset, k int) (*SegmentIndex, error) {
	if k < 1 {
		return nil, fmt.Errorf("seed: k-mer length %d must be positive", k)
	}
	codec, err := dna.NewKmerCodec(k)
	if err != nil {
		return nil, err
	}
	si := &SegmentIndex{ID: id, Offset: offset, Ref: ref, codec: codec}
	numKmers := codec.NumKmers()
	si.tab.Presence = make([]uint64, presenceWords(numKmers))
	n := len(ref) - k + 1
	if n < 0 {
		n = 0
	}
	kms := codec.AppendScan(make([]dna.Kmer, 0, n), ref)
	if n*sparseBuildFactor < numKmers {
		si.buildSparse(kms, numKmers)
	} else {
		si.buildDense(kms, numKmers)
	}
	return si, nil
}

// presenceWords returns the bitmap length for a k-mer space.
func presenceWords(numKmers int) int { return (numKmers + 63) / 64 }

// markPresent sets km's presence bit.
func (si *SegmentIndex) markPresent(km dna.Kmer) {
	si.tab.Presence[km>>6] |= 1 << (km & 63)
}

// kmerAt pairs one window's k-mer with its position for the sparse build.
type kmerAt struct {
	km  dna.Kmer
	pos int32
}

// buildSparse assembles the tables from the window scan by sorting
// (k-mer, position) pairs. Sorting by (km, pos) reproduces the dense
// build's layout exactly: positions grouped by k-mer, ascending within each
// group. The start table is then run-filled — absent k-mers share their
// successor's start value — which streams sequentially through the table at
// memset-like speed instead of dragging a load-add-store dependency chain
// across all 4^k entries.
func (si *SegmentIndex) buildSparse(kms []dna.Kmer, numKmers int) {
	pairs := make([]kmerAt, len(kms))
	for p, km := range kms {
		pairs[p] = kmerAt{km, int32(p)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].km != pairs[j].km {
			return pairs[i].km < pairs[j].km
		}
		return pairs[i].pos < pairs[j].pos
	})
	start := make([]int32, numKmers+1)
	positions := make([]int32, len(pairs))
	cum := int32(0)
	fillFrom := 0
	for i := 0; i < len(pairs); {
		km := pairs[i].km
		j := i
		for j < len(pairs) && pairs[j].km == km {
			positions[j] = pairs[j].pos
			j++
		}
		for x := fillFrom; x <= int(km); x++ {
			start[x] = cum
		}
		fillFrom = int(km) + 1
		cum += int32(j - i)
		si.markPresent(km)
		i = j
	}
	for x := fillFrom; x <= numKmers; x++ {
		start[x] = cum
	}
	si.tab.Start = start
	si.tab.Positions = positions
}

// buildDense is the counting build for segments that populate a large
// fraction of the k-mer space: count occurrences, prefix-sum into offsets,
// then scatter positions. The counts array doubles as the fill cursors
// (the classic counting-sort trick), so the build allocates one table, not
// two: occurrences are tallied two slots ahead, the prefix sum turns slot
// km+1 into the km cursor, and after the scatter slot km holds start[km].
func (si *SegmentIndex) buildDense(kms []dna.Kmer, numKmers int) {
	c := make([]int32, numKmers+2)
	for _, km := range kms {
		c[km+2]++
		si.markPresent(km)
	}
	for i := 2; i < len(c); i++ {
		c[i] += c[i-1]
	}
	positions := make([]int32, len(kms))
	for p, km := range kms {
		positions[c[km+1]] = int32(p)
		c[km+1]++
	}
	si.tab.Start = c[: numKmers+1 : numKmers+1]
	si.tab.Positions = positions
}

// NewSegmentIndexFromRuns rebuilds a SegmentIndex from its sparse run
// representation — the format the on-disk index cache stores: kmers holds
// the distinct k-mers present (strictly ascending), counts[i] how many
// times kmers[i] occurs, and positions the occurrence lists concatenated in
// k-mer order (each list strictly ascending). ref is the segment's
// reference slice; the positions slice is adopted, not copied. The runs are
// validated structurally (ordering, ranges, totals) so a corrupt or
// mismatched file cannot produce an index that panics later.
func NewSegmentIndexFromRuns(ref dna.Seq, id, offset, k int, kmers []dna.Kmer, counts, positions []int32) (*SegmentIndex, error) {
	if k < 1 || k > dna.MaxK {
		return nil, fmt.Errorf("seed: k-mer length %d out of range [1,%d]", k, dna.MaxK)
	}
	codec, err := dna.NewKmerCodec(k)
	if err != nil {
		return nil, err
	}
	if len(kmers) != len(counts) {
		return nil, fmt.Errorf("seed: %d run k-mers vs %d counts", len(kmers), len(counts))
	}
	numKmers := codec.NumKmers()
	n := len(ref) - k + 1
	if n < 0 {
		n = 0
	}
	if len(positions) != n {
		return nil, fmt.Errorf("seed: %d positions for a %d-base segment (want %d windows)", len(positions), len(ref), n)
	}
	si := &SegmentIndex{ID: id, Offset: offset, Ref: ref, codec: codec}
	si.tab.Presence = make([]uint64, presenceWords(numKmers))
	start := make([]int32, numKmers+1)
	cum := int32(0)
	fillFrom := 0
	prevKm := dna.Kmer(0)
	for i, km := range kmers {
		if int(km) >= numKmers {
			return nil, fmt.Errorf("seed: run k-mer %d out of range for k=%d", km, k)
		}
		if i > 0 && km <= prevKm {
			return nil, fmt.Errorf("seed: run k-mers not strictly ascending at %d", i)
		}
		prevKm = km
		cnt := counts[i]
		if cnt <= 0 {
			return nil, fmt.Errorf("seed: non-positive run count %d for k-mer %d", cnt, km)
		}
		if int(cum)+int(cnt) > len(positions) {
			return nil, fmt.Errorf("seed: run counts overflow the position table")
		}
		run := positions[cum : cum+cnt]
		for j, p := range run {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("seed: position %d of k-mer %d outside [0,%d)", p, km, n)
			}
			if j > 0 && run[j-1] >= p {
				return nil, fmt.Errorf("seed: positions of k-mer %d not strictly ascending", km)
			}
		}
		for x := fillFrom; x <= int(km); x++ {
			start[x] = cum
		}
		fillFrom = int(km) + 1
		cum += cnt
		si.markPresent(km)
	}
	if int(cum) != len(positions) {
		return nil, fmt.Errorf("seed: run counts sum to %d, position table holds %d", cum, len(positions))
	}
	for x := fillFrom; x <= numKmers; x++ {
		start[x] = cum
	}
	si.tab.Start = start
	si.tab.Positions = positions
	return si, nil
}

// NewSegmentIndexFromTables binds a SegmentIndex directly over a table
// view — the zero-copy path the mapped GAXI v2 loader uses: t's slices may
// alias a read-only file mapping and are adopted, never copied. The length
// invariants (start table sized for 4^k+1, positions matching the window
// count, presence bitmap sized for the k-mer space) are always enforced;
// validate additionally runs the full structural scan (monotone start
// table, in-range ascending positions, presence/start agreement), which
// touches every table page and therefore defeats lazy residency — mapped
// callers leave it false and rely on the clamped lookup paths plus the
// file's checksums instead.
func NewSegmentIndexFromTables(ref dna.Seq, id, offset, k int, t Tables, validate bool) (*SegmentIndex, error) {
	if k < 1 || k > dna.MaxK {
		return nil, fmt.Errorf("seed: k-mer length %d out of range [1,%d]", k, dna.MaxK)
	}
	codec, err := dna.NewKmerCodec(k)
	if err != nil {
		return nil, err
	}
	numKmers := codec.NumKmers()
	n := len(ref) - k + 1
	if n < 0 {
		n = 0
	}
	if len(t.Start) != numKmers+1 {
		return nil, fmt.Errorf("seed: start table holds %d entries, k=%d needs %d", len(t.Start), k, numKmers+1)
	}
	if len(t.Positions) != n {
		return nil, fmt.Errorf("seed: %d positions for a %d-base segment (want %d windows)", len(t.Positions), len(ref), n)
	}
	if len(t.Presence) != presenceWords(numKmers) {
		return nil, fmt.Errorf("seed: presence bitmap holds %d words, k=%d needs %d", len(t.Presence), k, presenceWords(numKmers))
	}
	si := &SegmentIndex{ID: id, Offset: offset, Ref: ref, codec: codec, tab: t}
	if validate {
		if err := si.ValidateTables(); err != nil {
			return nil, err
		}
	}
	return si, nil
}

// ValidateTables runs the full structural scan over the table view: the
// start table must begin at zero, stay monotone, and end at the position
// count; every occurrence list must be strictly ascending and in range;
// and the presence bitmap must agree with the start table bit for bit.
// The scan touches every page of every table, so mapped indexes run it
// only on demand (indexio's Verify paths), not on open.
func (si *SegmentIndex) ValidateTables() error {
	t := &si.tab
	numKmers := si.codec.NumKmers()
	n := len(t.Positions)
	if t.Start[0] != 0 {
		return fmt.Errorf("seed: start table begins at %d, want 0", t.Start[0])
	}
	if int(t.Start[numKmers]) != n {
		return fmt.Errorf("seed: start table ends at %d, position table holds %d", t.Start[numKmers], n)
	}
	for km := 0; km < numKmers; km++ {
		lo, hi := t.Start[km], t.Start[km+1]
		if hi < lo || lo < 0 || int(hi) > n {
			return fmt.Errorf("seed: start table not monotone at k-mer %d (%d..%d)", km, lo, hi)
		}
		present := t.Presence[km>>6]&(1<<(uint(km)&63)) != 0
		if present != (hi > lo) {
			return fmt.Errorf("seed: presence bit for k-mer %d disagrees with start table", km)
		}
		for j := lo; j < hi; j++ {
			p := t.Positions[j]
			if p < 0 || int(p) >= n {
				return fmt.Errorf("seed: position %d of k-mer %d outside [0,%d)", p, km, n)
			}
			if j > lo && t.Positions[j-1] >= p {
				return fmt.Errorf("seed: positions of k-mer %d not strictly ascending", km)
			}
		}
	}
	return nil
}

// AppendRuns appends the index's sparse run representation to kmers and
// counts (see NewSegmentIndexFromRuns) and returns the extended slices.
// The walk skips absent k-mers through the presence bitmap, so the cost is
// proportional to the distinct k-mers present plus one load per 64-k-mer
// word, not to the 4^k table size.
func (si *SegmentIndex) AppendRuns(kmers []dna.Kmer, counts []int32) ([]dna.Kmer, []int32) {
	for w, word := range si.tab.Presence {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			km := dna.Kmer(w<<6 + b)
			kmers = append(kmers, km)
			counts = append(counts, si.tab.Start[km+1]-si.tab.Start[km])
		}
	}
	return kmers, counts
}

// PositionTable returns the whole position table: every occurrence list
// concatenated in k-mer order. The slice is the index's backing store —
// read-only, like Lookup results.
//
//genax:borrowed
func (si *SegmentIndex) PositionTable() []int32 { return si.tab.Positions }

// StartTable returns the dense start table (4^k+1 offsets). It is the
// index's backing store under the same borrow contract as PositionTable:
// a read-only view, valid for the index's lifetime, possibly aliasing a
// file mapping.
//
//genax:borrowed
func (si *SegmentIndex) StartTable() []int32 { return si.tab.Start }

// PresenceWords returns the presence bitmap words under the same borrow
// contract as PositionTable.
//
//genax:borrowed
func (si *SegmentIndex) PresenceWords() []uint64 { return si.tab.Presence }

// K returns the k-mer length.
func (si *SegmentIndex) K() int { return si.codec.K() }

// Lookup returns the sorted (strictly ascending) local positions of km.
//
// BORROW CONTRACT: the returned slice aliases the index's shared position
// table, which every lane bound to this segment reads concurrently. It is
// a read-only view, valid for the index's lifetime; callers must never
// mutate, sort, or append through it. Code that needs to reorder or
// normalize hits (the CAM intersection paths) must copy into lane-owned
// scratch first — see Seeder.intersect, which delta-normalizes into its
// inBuf before any strategy runs.
//
//genax:borrowed
//genax:hotpath
func (si *SegmentIndex) Lookup(km dna.Kmer) []int32 {
	if si.tab.Presence[km>>6]&(1<<(km&63)) == 0 {
		return nil
	}
	lo, hi := si.tab.Start[km], si.tab.Start[km+1]
	if lo < 0 || hi < lo || int(hi) > len(si.tab.Positions) {
		// Clamp, never panic: a mapped view skips the full structural scan
		// (it would fault every page), so a corrupt start table that slipped
		// past the file checksums must degrade to "no hits", not a crash.
		// Built and validated tables never take this branch.
		return nil
	}
	return si.tab.Positions[lo:hi]
}

// lookupDense is Lookup without the presence pre-filter: both loads go to
// the full start table. It is the pre-overhaul probe kept for the
// ScanPerProbe baseline that -compare-seed measures against.
//
//genax:borrowed
//genax:hotpath
func (si *SegmentIndex) lookupDense(km dna.Kmer) []int32 {
	lo, hi := si.tab.Start[km], si.tab.Start[km+1]
	if lo < 0 || hi < lo || int(hi) > len(si.tab.Positions) {
		return nil
	}
	return si.tab.Positions[lo:hi]
}

// LookupAt encodes the k-mer of read at pos and returns its hits. ok is
// false when the window does not fit in the read. The returned slice is
// subject to the same borrow contract as Lookup: it aliases the shared
// position table and must not be mutated.
//
//genax:borrowed
func (si *SegmentIndex) LookupAt(read dna.Seq, pos int) (hits []int32, ok bool) {
	km, ok := si.codec.Encode(read, pos)
	if !ok {
		return nil, false
	}
	return si.Lookup(km), true
}

// IndexTableBytes returns the modelled SRAM footprint of the index table
// (one 4-byte offset per k-mer), and PositionTableBytes that of the
// position list — the quantities Table II charges to on-chip SRAM.
func (si *SegmentIndex) IndexTableBytes() int { return 4 * (si.codec.NumKmers() + 1) }

// PositionTableBytes returns the position-table footprint.
func (si *SegmentIndex) PositionTableBytes() int { return 4 * len(si.tab.Positions) }

// SegmentedIndex is the whole-genome structure: the reference cut into
// fixed-size segments (512 for a human genome in §VI) with enough overlap
// that any read-length window lies wholly inside at least one segment.
type SegmentedIndex struct {
	RefLen  int
	SegLen  int
	Overlap int
	// K is the k-mer length every segment was indexed with.
	K       int
	Samples []*SegmentIndex
}

// segmentOffsets returns the start offset of every segment for a reference
// of refLen bases — the single source of the segmentation geometry shared
// by the serial and parallel builds.
func segmentOffsets(refLen, segLen int) []int {
	var offs []int
	for off := 0; off < refLen; off += segLen {
		offs = append(offs, off)
	}
	return offs
}

// BuildSegmentedIndex cuts ref into segments of segLen bases plus overlap
// and indexes each. overlap must cover the longest read plus the edit
// bound so no alignment is lost at a boundary. Segments are built in
// parallel on up to GOMAXPROCS workers; use BuildSegmentedIndexWith to pin
// the worker count. The result is identical for every worker count.
func BuildSegmentedIndex(ref dna.Seq, segLen, overlap, k int) (*SegmentedIndex, error) {
	if segLen <= 0 {
		return nil, fmt.Errorf("seed: segment length %d must be positive", segLen)
	}
	if k < 1 {
		return nil, fmt.Errorf("seed: k-mer length %d must be positive", k)
	}
	return BuildSegmentedIndexWith(ref, segLen, overlap, k, 0)
}

// BuildSegmentedIndexWith is BuildSegmentedIndex on a bounded worker pool:
// segments are independent, so up to workers of them build concurrently
// (workers <= 0 means GOMAXPROCS). Workers claim segment ids off an atomic
// cursor and write into pre-assigned slots, so assembly order — and the
// resulting index — is deterministic regardless of scheduling; on error the
// lowest-numbered failing segment's error is returned.
func BuildSegmentedIndexWith(ref dna.Seq, segLen, overlap, k, workers int) (*SegmentedIndex, error) {
	if segLen <= 0 {
		return nil, fmt.Errorf("seed: segment length %d must be positive", segLen)
	}
	if overlap < 0 {
		return nil, fmt.Errorf("seed: negative overlap %d", overlap)
	}
	if k < 1 {
		return nil, fmt.Errorf("seed: k-mer length %d must be positive", k)
	}
	offs := segmentOffsets(len(ref), segLen)
	sx := &SegmentedIndex{
		RefLen:  len(ref),
		SegLen:  segLen,
		Overlap: overlap,
		K:       k,
		Samples: make([]*SegmentIndex, len(offs)),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(offs) {
		workers = len(offs)
	}
	buildOne := func(id int) error {
		off := offs[id]
		end := off + segLen + overlap
		if end > len(ref) {
			end = len(ref)
		}
		si, err := BuildSegmentIndex(ref[off:end], id, off, k)
		if err != nil {
			return err
		}
		sx.Samples[id] = si
		return nil
	}
	if workers <= 1 {
		for id := range offs {
			if err := buildOne(id); err != nil {
				return nil, err
			}
		}
		return sx, nil
	}
	errs := make([]error, len(offs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id := int(cursor.Add(1)) - 1
				if id >= len(offs) {
					return
				}
				errs[id] = buildOne(id)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sx, nil
}

// NumSegments returns the segment count.
func (sx *SegmentedIndex) NumSegments() int { return len(sx.Samples) }

// Hash digests the index's logical content — geometry plus every segment's
// sparse runs — so two builds (serial vs parallel, in-memory vs loaded from
// the on-disk cache) can be compared with one integer. It deliberately
// hashes the run representation rather than the 4(4^k+1)-byte start tables:
// the runs determine the tables uniquely and are proportional to the data,
// not the k-mer space.
func (sx *SegmentedIndex) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	put(uint64(sx.RefLen))
	put(uint64(sx.SegLen))
	put(uint64(sx.Overlap))
	put(uint64(sx.K))
	put(uint64(len(sx.Samples)))
	var kmers []dna.Kmer
	var counts []int32
	for _, si := range sx.Samples {
		put(uint64(si.ID))
		put(uint64(si.Offset))
		put(uint64(len(si.Ref)))
		put(uint64(si.K()))
		kmers, counts = si.AppendRuns(kmers[:0], counts[:0])
		put(uint64(len(kmers)))
		for i, km := range kmers {
			put(uint64(km))
			put(uint64(uint32(counts[i])))
		}
		for _, p := range si.tab.Positions {
			put(uint64(uint32(p)))
		}
	}
	return h.Sum64()
}
