package seed

import (
	"math/rand"
	"testing"

	"genax/internal/dna"
)

// TestNewSegmentIndexFromTables pins the zero-copy binding path the mapped
// index loader uses: adopting a built index's tables verbatim must answer
// every lookup identically to the original, and the validating bind must
// accept exactly the tables the builders produce.
func TestNewSegmentIndexFromTables(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for _, tc := range []struct{ refLen, k int }{
		{4000, 6}, {500, 4}, {3, 6}, {1000, 1},
	} {
		ref := randSeq(r, tc.refLen)
		built, err := BuildSegmentIndex(ref, 3, 77, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		for _, validate := range []bool{false, true} {
			view, err := NewSegmentIndexFromTables(ref, 3, 77, tc.k, built.tab, validate)
			if err != nil {
				t.Fatalf("%+v validate=%v: %v", tc, validate, err)
			}
			if view.ID != 3 || view.Offset != 77 || view.K() != tc.k {
				t.Fatalf("%+v: view geometry %d/%d/%d", tc, view.ID, view.Offset, view.K())
			}
			for km := dna.Kmer(0); int(km) < built.codec.NumKmers(); km++ {
				want, got := built.Lookup(km), view.Lookup(km)
				if len(want) != len(got) {
					t.Fatalf("%+v kmer %d: %d hits via view, want %d", tc, km, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%+v kmer %d: hit %d diverged", tc, km, i)
					}
				}
			}
		}
	}
}

// TestFromTablesRejectsBadGeometry checks the unconditional length gates.
func TestFromTablesRejectsBadGeometry(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	ref := randSeq(r, 600)
	built, err := BuildSegmentIndex(ref, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	good := built.tab
	for _, tc := range []struct {
		name string
		tab  Tables
	}{
		{"short start", Tables{Start: good.Start[:10], Positions: good.Positions, Presence: good.Presence}},
		{"short pos", Tables{Start: good.Start, Positions: good.Positions[:1], Presence: good.Presence}},
		{"short presence", Tables{Start: good.Start, Positions: good.Positions, Presence: good.Presence[:1]}},
	} {
		if _, err := NewSegmentIndexFromTables(ref, 0, 0, 5, tc.tab, false); err == nil {
			t.Errorf("%s: bind accepted", tc.name)
		}
	}
	if _, err := NewSegmentIndexFromTables(ref, 0, 0, 99, good, false); err == nil {
		t.Error("oversized k accepted")
	}
}

// TestValidateTablesAndClampedLookups drives corrupt views through both
// paths: the validating bind must reject them, and the non-validating bind
// must clamp lookups to "no hits" instead of panicking — the contract the
// mapped loader relies on for corruption that slips past the checksums.
func TestValidateTablesAndClampedLookups(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	ref := randSeq(r, 600)
	built, err := BuildSegmentIndex(ref, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(Tables)) Tables {
		tab := Tables{
			Start:     append([]int32(nil), built.tab.Start...),
			Positions: append([]int32(nil), built.tab.Positions...),
			Presence:  append([]uint64(nil), built.tab.Presence...),
		}
		mutate(tab)
		return tab
	}
	cases := []struct {
		name string
		tab  Tables
	}{
		{"negative start", corrupt(func(t Tables) { t.Start[40] = -3 })},
		{"non-monotone", corrupt(func(t Tables) { t.Start[41] = t.Start[42] + 9 })},
		{"overflow end", corrupt(func(t Tables) { t.Start[len(t.Start)-1] = int32(len(t.Positions) + 100) })},
		{"presence liar", corrupt(func(t Tables) { t.Presence[0] ^= 1 })},
		{"position range", corrupt(func(t Tables) { t.Positions[0] = int32(len(t.Positions) + 7) })},
		{"position order", corrupt(func(t Tables) { t.Positions[len(t.Positions)-1] = t.Positions[0] })},
		{"start past fill", corrupt(func(t Tables) { t.Start[10] = 1 << 30 })},
	}
	for _, tc := range cases {
		name, tab := tc.name, tc.tab
		if _, err := NewSegmentIndexFromTables(ref, 0, 0, 5, tab, true); err == nil {
			// Mutations that keep the structure legal (position order on a
			// single-hit run) may validate; they must still not panic below.
			t.Logf("%s: validating bind accepted (structurally legal mutation)", name)
		}
		view, err := NewSegmentIndexFromTables(ref, 0, 0, 5, tab, false)
		if err != nil {
			t.Fatalf("%s: non-validating bind rejected lengths: %v", name, err)
		}
		for km := dna.Kmer(0); int(km) < view.codec.NumKmers(); km++ {
			_ = view.Lookup(km) // must not panic
			_ = view.lookupDense(km)
		}
	}
	// The clean view must validate.
	if _, err := NewSegmentIndexFromTables(ref, 0, 0, 5, built.tab, true); err != nil {
		t.Fatalf("clean tables rejected: %v", err)
	}
}
