package seed

import (
	"math/rand"
	"sort"
	"testing"

	"genax/internal/dna"
	"genax/internal/fmindex"
)

// buildBoth indexes the same text for the accelerator and the FM gold.
func buildBoth(t *testing.T, ref dna.Seq, k int) (*Seeder, *fmindex.SMEMIndex) {
	t.Helper()
	si, err := BuildSegmentIndex(ref, 0, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	return NewSeeder(si, DefaultOptions()), fmindex.BuildSMEMIndex(ref)
}

func sortedCopy(v []int32) []int32 {
	out := append([]int32(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestSeedsMatchFMIndexSMEMs is the central §V claim: the k-mer
// accelerator finds exactly the SMEMs (of length >= max(k, minLen)) that
// BWA-MEM's FM-index seeding finds, with identical hit sets.
func TestSeedsMatchFMIndexSMEMs(t *testing.T) {
	r := rand.New(rand.NewSource(110))
	k := 8
	for trial := 0; trial < 60; trial++ {
		ref := randSeq(r, 600+r.Intn(600))
		sd, gold := buildBoth(t, ref, k)
		start := r.Intn(len(ref) - 120)
		read := mutate(r, ref[start:start+101].Clone(), r.Intn(5))
		minLen := sd.Options().MinSeedLen

		got := sd.Seed(read)
		want := gold.SMEMs(read, minLen, 0)
		// The gold may include SMEMs shorter than k... minLen(19) > k so
		// both floors coincide; compare directly.
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d seeds, want %d (got=%v want=%v)", trial, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].Start != want[i].Start || got[i].End != want[i].End {
				t.Fatalf("trial %d seed %d: [%d,%d) vs [%d,%d)", trial, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
			}
			g, w := sortedCopy(got[i].Positions), sortedCopy(want[i].Hits)
			if len(g) != len(w) {
				t.Fatalf("trial %d seed %d: %d hits vs %d", trial, i, len(g), len(w))
			}
			for j := range g {
				if g[j] != w[j] {
					t.Fatalf("trial %d seed %d hit %d: %d vs %d", trial, i, j, g[j], w[j])
				}
			}
		}
	}
}

func TestSeedsMatchFMWithoutFastPathAndProbing(t *testing.T) {
	// The optimizations must not change results, only work counts.
	r := rand.New(rand.NewSource(111))
	k := 8
	ref := randSeq(r, 1500)
	si, err := BuildSegmentIndex(ref, 0, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	gold := fmindex.BuildSMEMIndex(ref)
	variants := []Options{
		DefaultOptions(),
		{MinSeedLen: 19, CAMSize: 512, SMEMFilter: true, BinaryExtension: true, Probing: false, ExactFastPath: false},
		{MinSeedLen: 19, CAMSize: 512, SMEMFilter: true, BinaryExtension: true, Probing: true, ExactFastPath: false},
		{MinSeedLen: 19, CAMSize: 16, SMEMFilter: true, BinaryExtension: true, Probing: true, ExactFastPath: true},
	}
	for trial := 0; trial < 40; trial++ {
		start := r.Intn(len(ref) - 120)
		read := mutate(r, ref[start:start+101].Clone(), r.Intn(4))
		want := gold.SMEMs(read, 19, 0)
		for vi, opts := range variants {
			sd := NewSeeder(si, opts)
			got := sd.Seed(read)
			if len(got) != len(want) {
				t.Fatalf("trial %d variant %d: %d seeds, want %d", trial, vi, len(got), len(want))
			}
			for i := range got {
				if got[i].Start != want[i].Start || got[i].End != want[i].End {
					t.Fatalf("trial %d variant %d seed %d span mismatch", trial, vi, i)
				}
				g, w := sortedCopy(got[i].Positions), sortedCopy(want[i].Hits)
				if len(g) != len(w) {
					t.Fatalf("trial %d variant %d seed %d: hits %d vs %d", trial, vi, i, len(g), len(w))
				}
			}
		}
	}
}

func TestExactFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(112))
	ref := randSeq(r, 5000)
	si, _ := BuildSegmentIndex(ref, 0, 0, 12)
	sd := NewSeeder(si, DefaultOptions())
	read := ref[2000:2101].Clone()
	seeds := sd.Seed(read)
	if sd.Stats.ExactReads != 1 {
		t.Fatalf("exact read not detected (stats %+v)", sd.Stats)
	}
	if len(seeds) != 1 || seeds[0].Start != 0 || seeds[0].End != 101 {
		t.Fatalf("seeds = %v", seeds)
	}
	found := false
	for _, p := range seeds[0].Positions {
		if p == 2000 {
			found = true
		}
	}
	if !found {
		t.Error("true position missing")
	}
	// A read with one error must not take the fast path.
	bad := read.Clone()
	bad[50] = bad[50] ^ 1
	sd.Stats = Stats{}
	sd.Seed(bad)
	if sd.Stats.ExactReads != 0 {
		t.Error("mutated read took the exact fast path")
	}
}

func TestBinaryExtensionReducesHits(t *testing.T) {
	// Fig 16a: without the halving refinement RMEMs stop at k-multiples
	// and carry at least as many (usually more) hits downstream.
	r := rand.New(rand.NewSource(113))
	ref := randSeq(r, 20000)
	si, _ := BuildSegmentIndex(ref, 0, 0, 6)
	with := NewSeeder(si, Options{MinSeedLen: 10, CAMSize: 512, SMEMFilter: true, BinaryExtension: true})
	without := NewSeeder(si, Options{MinSeedLen: 10, CAMSize: 512, SMEMFilter: true, BinaryExtension: false})
	for trial := 0; trial < 50; trial++ {
		start := r.Intn(len(ref) - 120)
		read := mutate(r, ref[start:start+101].Clone(), 2+r.Intn(3))
		with.Seed(read)
		without.Seed(read)
	}
	if with.Stats.HitsEmitted > without.Stats.HitsEmitted {
		t.Errorf("binary extension increased hits: %d vs %d", with.Stats.HitsEmitted, without.Stats.HitsEmitted)
	}
	t.Logf("hits with/without binary extension: %d / %d", with.Stats.HitsEmitted, without.Stats.HitsEmitted)
}

func TestSMEMFilterReducesHits(t *testing.T) {
	// Fig 16a: the naive hash path forwards every window's hits.
	r := rand.New(rand.NewSource(114))
	ref := randSeq(r, 20000)
	si, _ := BuildSegmentIndex(ref, 0, 0, 6)
	smem := NewSeeder(si, Options{MinSeedLen: 10, CAMSize: 512, SMEMFilter: true, BinaryExtension: true})
	naive := NewSeeder(si, Options{MinSeedLen: 10, CAMSize: 512, SMEMFilter: false})
	for trial := 0; trial < 50; trial++ {
		start := r.Intn(len(ref) - 120)
		read := mutate(r, ref[start:start+101].Clone(), 2)
		smem.Seed(read)
		naive.Seed(read)
	}
	if smem.Stats.HitsEmitted >= naive.Stats.HitsEmitted {
		t.Errorf("SMEM filtering did not reduce hits: %d vs naive %d", smem.Stats.HitsEmitted, naive.Stats.HitsEmitted)
	}
	t.Logf("hits smem/naive: %d / %d", smem.Stats.HitsEmitted, naive.Stats.HitsEmitted)
}

func TestProbingReducesCAMLookups(t *testing.T) {
	// Fig 16b: starting the intersection from a small hit set cuts CAM
	// work on repetitive references.
	r := rand.New(rand.NewSource(115))
	// Repetitive reference: AT-rich so many k-mers have huge hit sets.
	ref := make(dna.Seq, 30000)
	for i := range ref {
		if r.Intn(10) < 8 {
			ref[i] = dna.Base(r.Intn(2)) // A/C soup
		} else {
			ref[i] = dna.Base(r.Intn(4))
		}
	}
	si, _ := BuildSegmentIndex(ref, 0, 0, 6)
	withP := NewSeeder(si, Options{MinSeedLen: 10, CAMSize: 128, SMEMFilter: true, BinaryExtension: true, Probing: true})
	noP := NewSeeder(si, Options{MinSeedLen: 10, CAMSize: 128, SMEMFilter: true, BinaryExtension: true, Probing: false})
	for trial := 0; trial < 30; trial++ {
		start := r.Intn(len(ref) - 120)
		read := mutate(r, ref[start:start+101].Clone(), 2)
		withP.Seed(read)
		noP.Seed(read)
	}
	if withP.Stats.CAMLookups >= noP.Stats.CAMLookups {
		t.Errorf("probing did not reduce CAM lookups: %d vs %d", withP.Stats.CAMLookups, noP.Stats.CAMLookups)
	}
	t.Logf("CAM lookups with/without probing: %d / %d", withP.Stats.CAMLookups, noP.Stats.CAMLookups)
}

func TestSeedShortRead(t *testing.T) {
	si, _ := BuildSegmentIndex(make(dna.Seq, 100), 0, 0, 12)
	sd := NewSeeder(si, DefaultOptions())
	if got := sd.Seed(make(dna.Seq, 5)); got != nil {
		t.Errorf("read shorter than k produced seeds: %v", got)
	}
}

func TestSeedGlobalOffsets(t *testing.T) {
	r := rand.New(rand.NewSource(116))
	ref := randSeq(r, 3000)
	sx, err := BuildSegmentedIndex(ref, 1000, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A read drawn from segment 2 must be found there at global coords.
	read := ref[2300:2401].Clone()
	opts := DefaultOptions()
	sd := NewSeeder(sx.Samples[2], opts)
	seeds := sd.Seed(read)
	if len(seeds) == 0 {
		t.Fatal("no seeds in owning segment")
	}
	found := false
	for _, s := range seeds {
		for _, p := range s.Positions {
			if int(p)-s.Start == 2300 {
				found = true
			}
		}
	}
	if !found {
		t.Error("global position 2300 not recoverable from segment seeds")
	}
}

func TestMaxHitsCap(t *testing.T) {
	ref := make(dna.Seq, 1000) // all-A: every window hits everywhere
	si, _ := BuildSegmentIndex(ref, 0, 0, 4)
	opts := DefaultOptions()
	opts.MaxHits = 7
	opts.MinSeedLen = 4
	sd := NewSeeder(si, opts)
	seeds := sd.Seed(make(dna.Seq, 50))
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	for _, s := range seeds {
		if len(s.Positions) > 7 {
			t.Errorf("seed carries %d hits, cap is 7", len(s.Positions))
		}
	}
}

// TestSeederResetAcrossSegments checks that one long-lived lane rebound
// with Reset reports exactly what a fresh per-segment seeder reports — the
// persistent-lane-pool invariant of the core pipeline.
func TestSeederResetAcrossSegments(t *testing.T) {
	r := rand.New(rand.NewSource(117))
	ref := randSeq(r, 4000)
	sx, err := BuildSegmentedIndex(ref, 1000, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	persistent := NewSeeder(sx.Samples[0], DefaultOptions())
	for trial := 0; trial < 30; trial++ {
		start := r.Intn(len(ref) - 120)
		read := mutate(r, ref[start:start+101].Clone(), r.Intn(4))
		for _, si := range sx.Samples {
			persistent.Reset(si)
			got := persistent.Seed(read)
			fresh := NewSeeder(si, DefaultOptions())
			want := fresh.Seed(read)
			if len(got) != len(want) {
				t.Fatalf("trial %d seg %d: %d seeds vs fresh %d", trial, si.ID, len(got), len(want))
			}
			for i := range got {
				if got[i].Start != want[i].Start || got[i].End != want[i].End {
					t.Fatalf("trial %d seg %d seed %d: span [%d,%d) vs [%d,%d)",
						trial, si.ID, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
				}
				g, w := sortedCopy(got[i].Positions), sortedCopy(want[i].Positions)
				if len(g) != len(w) {
					t.Fatalf("trial %d seg %d seed %d: %d hits vs %d", trial, si.ID, i, len(g), len(w))
				}
				for j := range g {
					if g[j] != w[j] {
						t.Fatalf("trial %d seg %d seed %d hit %d: %d vs %d", trial, si.ID, i, j, g[j], w[j])
					}
				}
			}
		}
	}
}

// TestSeederSteadyStateAllocs pins the zero-allocation property of a warm
// seeding lane: once the scratch buffers have grown to the workload, Seed
// must not allocate.
func TestSeederSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(118))
	ref := randSeq(r, 8000)
	si, err := BuildSegmentIndex(ref, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	sd := NewSeeder(si, DefaultOptions())
	reads := make([]dna.Seq, 20)
	for i := range reads {
		start := r.Intn(len(ref) - 120)
		reads[i] = mutate(r, ref[start:start+101].Clone(), r.Intn(4))
	}
	for _, rd := range reads { // warm the lane
		sd.Seed(rd)
	}
	avg := testing.AllocsPerRun(20, func() {
		for _, rd := range reads {
			sd.Seed(rd)
		}
	})
	if avg != 0 {
		t.Errorf("warm Seeder.Seed allocates %.2f times per sweep, want 0", avg)
	}
}

// TestScanModesProduceIdenticalResultsAndStats pins the -compare-seed
// equivalence at the lane level: the rolling memoized scan and the
// per-probe re-encoding baseline must report the same seeds, the same hit
// sets, and the same work counters for every read.
func TestScanModesProduceIdenticalResultsAndStats(t *testing.T) {
	r := rand.New(rand.NewSource(119))
	ref := randSeq(r, 12000)
	for _, opts := range []Options{
		DefaultOptions(),
		{MinSeedLen: 10, CAMSize: 64, SMEMFilter: true, BinaryExtension: true, Probing: true, ExactFastPath: true, BinarySearch: true},
		{MinSeedLen: 10, CAMSize: 512, SMEMFilter: false},
	} {
		si, err := BuildSegmentIndex(ref, 0, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		rollOpts, probeOpts := opts, opts
		rollOpts.Scan = ScanRolling
		probeOpts.Scan = ScanPerProbe
		roll := NewSeeder(si, rollOpts)
		probe := NewSeeder(si, probeOpts)
		for trial := 0; trial < 40; trial++ {
			start := r.Intn(len(ref) - 120)
			read := mutate(r, ref[start:start+101].Clone(), r.Intn(5))
			a := roll.Seed(read)
			b := probe.Seed(read)
			if len(a) != len(b) {
				t.Fatalf("trial %d: %d seeds rolling vs %d perprobe", trial, len(a), len(b))
			}
			for i := range a {
				if a[i].Start != b[i].Start || a[i].End != b[i].End {
					t.Fatalf("trial %d seed %d: span [%d,%d) vs [%d,%d)", trial, i, a[i].Start, a[i].End, b[i].Start, b[i].End)
				}
				if len(a[i].Positions) != len(b[i].Positions) {
					t.Fatalf("trial %d seed %d: %d hits vs %d", trial, i, len(a[i].Positions), len(b[i].Positions))
				}
				for j := range a[i].Positions {
					if a[i].Positions[j] != b[i].Positions[j] {
						t.Fatalf("trial %d seed %d hit %d: %d vs %d", trial, i, j, a[i].Positions[j], b[i].Positions[j])
					}
				}
			}
		}
		if roll.Stats != probe.Stats {
			t.Errorf("work counters diverged: rolling %+v vs perprobe %+v", roll.Stats, probe.Stats)
		}
	}
}

// TestArenaIsolationAcrossSegments is the arena-lifetime satellite: a lane
// seeded against segment A, Reset to segment B, must emit hit lists drawn
// only from B (no stale arena bytes from A can surface), byte-identical to
// a lane that never saw A — and the warm rebound lane must stay at zero
// steady-state allocations.
func TestArenaIsolationAcrossSegments(t *testing.T) {
	r := rand.New(rand.NewSource(120))
	ref := randSeq(r, 6000)
	sx, err := BuildSegmentedIndex(ref, 1500, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	segA, segB := sx.Samples[0], sx.Samples[2]
	lane := NewSeeder(segA, DefaultOptions())
	// Fill the arena with segment-A hit lists (reads drawn from A align).
	for trial := 0; trial < 10; trial++ {
		start := r.Intn(1200)
		lane.Seed(ref[start : start+101].Clone())
	}
	lane.Reset(segB)
	for trial := 0; trial < 20; trial++ {
		start := segB.Offset + r.Intn(1200)
		read := mutate(r, ref[start:start+101].Clone(), r.Intn(3))
		got := lane.Seed(read)
		fresh := NewSeeder(segB, DefaultOptions()).Seed(read)
		if len(got) != len(fresh) {
			t.Fatalf("trial %d: %d seeds vs fresh %d", trial, len(got), len(fresh))
		}
		lo, hi := int32(segB.Offset), int32(segB.Offset+len(segB.Ref))
		for i := range got {
			if len(got[i].Positions) != len(fresh[i].Positions) {
				t.Fatalf("trial %d seed %d: %d hits vs fresh %d", trial, i, len(got[i].Positions), len(fresh[i].Positions))
			}
			for j, p := range got[i].Positions {
				if p != fresh[i].Positions[j] {
					t.Fatalf("trial %d seed %d hit %d: %d vs fresh %d (stale arena bytes?)", trial, i, j, p, fresh[i].Positions[j])
				}
				if p < lo || p >= hi {
					t.Fatalf("trial %d seed %d: position %d outside segment B [%d,%d)", trial, i, p, lo, hi)
				}
			}
		}
	}
	// Warm rebound lane: alternating segments must not allocate.
	reads := make([]dna.Seq, 8)
	for i := range reads {
		start := r.Intn(len(ref) - 120)
		reads[i] = mutate(r, ref[start:start+101].Clone(), r.Intn(3))
	}
	sweep := func() {
		for _, si := range sx.Samples {
			lane.Reset(si)
			for _, rd := range reads {
				lane.Seed(rd)
			}
		}
	}
	sweep() // grow scratch to the worst segment
	sweep()
	if avg := testing.AllocsPerRun(20, sweep); avg != 0 {
		t.Errorf("warm rebound lane allocates %.2f times per sweep, want 0", avg)
	}
}
