package seed

import (
	"math/rand"
	"testing"

	"genax/internal/dna"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func mutate(r *rand.Rand, s dna.Seq, e int) dna.Seq {
	out := s.Clone()
	for i := 0; i < e; i++ {
		if len(out) == 0 {
			out = append(out, dna.Base(r.Intn(4)))
			continue
		}
		p := r.Intn(len(out))
		switch r.Intn(3) {
		case 0:
			out[p] = dna.Base((int(out[p]) + 1 + r.Intn(3)) % 4)
		case 1:
			out = append(out[:p], append(dna.Seq{dna.Base(r.Intn(4))}, out[p:]...)...)
		case 2:
			out = append(out[:p], out[p+1:]...)
		}
	}
	return out
}

func TestSegmentIndexLookup(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	ref := randSeq(r, 2000)
	k := 6
	si, err := BuildSegmentIndex(ref, 0, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	codec, _ := dna.NewKmerCodec(k)
	// Every position must appear exactly once under its own k-mer.
	seen := make([]int, len(ref)-k+1)
	for km := dna.Kmer(0); int(km) < codec.NumKmers(); km++ {
		hits := si.Lookup(km)
		for i, h := range hits {
			seen[h]++
			if i > 0 && hits[i-1] >= h {
				t.Fatalf("hits for kmer %d not strictly ascending", km)
			}
			got, _ := codec.Encode(ref, int(h))
			if got != km {
				t.Fatalf("position %d filed under kmer %d but encodes to %d", h, km, got)
			}
		}
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("position %d indexed %d times", p, n)
		}
	}
}

func TestSegmentIndexShortRef(t *testing.T) {
	si, err := BuildSegmentIndex(dna.MustParseSeq("ACG"), 0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if hits, ok := si.LookupAt(dna.MustParseSeq("ACGTAC"), 0); !ok || len(hits) != 0 {
		t.Errorf("short ref: hits=%v ok=%v", hits, ok)
	}
}

func TestSegmentIndexSizes(t *testing.T) {
	si, err := BuildSegmentIndex(make(dna.Seq, 1000), 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := si.IndexTableBytes(); got != 4*(256+1) {
		t.Errorf("IndexTableBytes = %d", got)
	}
	if got := si.PositionTableBytes(); got != 4*(1000-4+1) {
		t.Errorf("PositionTableBytes = %d", got)
	}
}

func TestSegmentedIndexCoversReference(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	ref := randSeq(r, 5000)
	sx, err := BuildSegmentedIndex(ref, 1000, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sx.NumSegments() != 5 {
		t.Fatalf("segments = %d, want 5", sx.NumSegments())
	}
	// Any 120-base window must lie wholly inside at least one segment.
	for start := 0; start+120 <= len(ref); start += 37 {
		covered := false
		for _, si := range sx.Samples {
			if start >= si.Offset && start+120 <= si.Offset+len(si.Ref) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("window at %d not covered by any segment", start)
		}
	}
	// Segment-local lookups must translate to the right global bases.
	for _, si := range sx.Samples {
		for i := 0; i < len(si.Ref); i += 97 {
			if si.Ref[i] != ref[si.Offset+i] {
				t.Fatalf("segment %d base %d disagrees with reference", si.ID, i)
			}
		}
	}
}

func TestBuildSegmentedIndexErrors(t *testing.T) {
	if _, err := BuildSegmentedIndex(make(dna.Seq, 10), 0, 0, 4); err == nil {
		t.Error("zero segment length accepted")
	}
	if _, err := BuildSegmentedIndex(make(dna.Seq, 10), 5, -1, 4); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := BuildSegmentedIndex(make(dna.Seq, 10), 5, 0, 99); err == nil {
		t.Error("oversized k accepted")
	}
}

func TestCAMBasics(t *testing.T) {
	c := NewCAM(4)
	if !c.Load([]int32{1, 5, 9}) {
		t.Fatal("Load of 3 entries into size-4 CAM failed")
	}
	if c.Writes != 3 {
		t.Errorf("Writes = %d", c.Writes)
	}
	got := c.IntersectProbe([]int32{5, 6, 9, 10})
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Errorf("IntersectProbe = %v", got)
	}
	if c.Lookups != 4 {
		t.Errorf("Lookups = %d, want 4", c.Lookups)
	}
	if c.Load(make([]int32, 5)) {
		t.Error("oversized Load succeeded")
	}
	if c.Overflow != 1 {
		t.Errorf("Overflow = %d", c.Overflow)
	}
}

func TestCAMIntersectBinary(t *testing.T) {
	c := NewCAM(4)
	sorted := []int32{2, 4, 6, 8, 10, 12, 14, 16}
	got := c.IntersectBinary([]int32{1, 4, 9, 16}, sorted)
	if len(got) != 2 || got[0] != 4 || got[1] != 16 {
		t.Errorf("IntersectBinary = %v", got)
	}
	if c.Lookups == 0 {
		t.Error("binary intersection charged no lookups")
	}
	if got := c.IntersectBinary(nil, sorted); got != nil {
		t.Errorf("empty cur: %v", got)
	}
	if got := c.IntersectBinary([]int32{1}, nil); got != nil {
		t.Errorf("empty hits: %v", got)
	}
}

func TestCAMIntersectChunked(t *testing.T) {
	c := NewCAM(4)
	cur := []int32{1, 3, 5, 7, 9, 11}
	incoming := []int32{2, 3, 5, 8, 9, 10, 11, 20, 21}
	got := c.IntersectChunked(cur, incoming)
	want := []int32{3, 5, 9, 11}
	if len(got) != len(want) {
		t.Fatalf("IntersectChunked = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IntersectChunked[%d] = %d, want %d (order must follow cur)", i, got[i], want[i])
		}
	}
	// 3 chunks of <=4 entries, 6 probes each.
	if c.Lookups != 18 {
		t.Errorf("Lookups = %d, want 18", c.Lookups)
	}
	if got := c.IntersectChunked(nil, incoming); got != nil {
		t.Errorf("empty cur: %v", got)
	}
	if got := c.IntersectChunked(cur, nil); got != nil {
		t.Errorf("empty incoming: %v", got)
	}
}

func TestBinaryCost(t *testing.T) {
	if BinaryCost(0, 100) != 0 || BinaryCost(100, 0) != 0 {
		t.Error("empty sets must cost nothing")
	}
	if got := BinaryCost(10, 1024); got != 10*11 {
		t.Errorf("BinaryCost(10,1024) = %d, want 110", got)
	}
	if got := BinaryCost(1, 1); got != 1 {
		t.Errorf("BinaryCost(1,1) = %d, want 1", got)
	}
}

func TestIntersectionStrategiesAgree(t *testing.T) {
	// Whatever strategy the cost dispatcher picks, the resulting seed
	// sets must be identical; pin this by comparing seeders whose CAM
	// sizes force different strategies.
	r := rand.New(rand.NewSource(117))
	ref := make(dna.Seq, 20000) // poly-A: worst-case hit lists
	for i := range ref {
		if r.Intn(4) == 0 {
			ref[i] = dna.Base(r.Intn(4))
		}
	}
	si, _ := BuildSegmentIndex(ref, 0, 0, 6)
	base := DefaultOptions()
	base.MinSeedLen = 12
	small := base
	small.CAMSize = 8
	noBin := base
	noBin.BinarySearch = false
	sdBase := NewSeeder(si, base)
	sdSmall := NewSeeder(si, small)
	sdNoBin := NewSeeder(si, noBin)
	for trial := 0; trial < 20; trial++ {
		start := r.Intn(len(ref) - 101)
		read := ref[start : start+101].Clone()
		a := sdBase.Seed(read)
		b := sdSmall.Seed(read)
		c := sdNoBin.Seed(read)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("trial %d: seed counts differ: %d/%d/%d", trial, len(a), len(b), len(c))
		}
		for i := range a {
			if a[i].Start != b[i].Start || a[i].End != b[i].End || len(a[i].Positions) != len(b[i].Positions) {
				t.Fatalf("trial %d seed %d differs between CAM sizes", trial, i)
			}
			if a[i].Start != c[i].Start || a[i].End != c[i].End || len(a[i].Positions) != len(c[i].Positions) {
				t.Fatalf("trial %d seed %d differs with binary search off", trial, i)
			}
		}
	}
}

func TestSparseAndDenseBuildsAgree(t *testing.T) {
	// Both build strategies must produce byte-identical tables; exercise
	// them directly on the same scans, across densities that would pick
	// either path naturally.
	r := rand.New(rand.NewSource(102))
	for _, tc := range []struct {
		refLen, k int
	}{
		{50, 2},   // tiny k-mer space, dense regime
		{5000, 4}, // dense regime
		{5000, 8}, // sparse regime
		{300, 12}, // very sparse
		{3, 6},    // no windows at all
		{1000, 1}, // k=1 edge
	} {
		ref := randSeq(r, tc.refLen)
		codec, err := dna.NewKmerCodec(tc.k)
		if err != nil {
			t.Fatal(err)
		}
		n := len(ref) - tc.k + 1
		if n < 0 {
			n = 0
		}
		kms := codec.AppendScan(nil, ref)
		sparse := &SegmentIndex{Ref: ref, codec: codec, tab: Tables{Presence: make([]uint64, presenceWords(codec.NumKmers()))}}
		sparse.buildSparse(append([]dna.Kmer(nil), kms...), codec.NumKmers())
		dense := &SegmentIndex{Ref: ref, codec: codec, tab: Tables{Presence: make([]uint64, presenceWords(codec.NumKmers()))}}
		dense.buildDense(kms, codec.NumKmers())
		if len(sparse.tab.Start) != len(dense.tab.Start) || len(sparse.tab.Positions) != len(dense.tab.Positions) {
			t.Fatalf("%+v: table sizes differ (start %d/%d, positions %d/%d)",
				tc, len(sparse.tab.Start), len(dense.tab.Start), len(sparse.tab.Positions), len(dense.tab.Positions))
		}
		for i := range sparse.tab.Start {
			if sparse.tab.Start[i] != dense.tab.Start[i] {
				t.Fatalf("%+v: start[%d] = %d sparse vs %d dense", tc, i, sparse.tab.Start[i], dense.tab.Start[i])
			}
		}
		for i := range sparse.tab.Positions {
			if sparse.tab.Positions[i] != dense.tab.Positions[i] {
				t.Fatalf("%+v: positions[%d] = %d sparse vs %d dense", tc, i, sparse.tab.Positions[i], dense.tab.Positions[i])
			}
		}
		for i := range sparse.tab.Presence {
			if sparse.tab.Presence[i] != dense.tab.Presence[i] {
				t.Fatalf("%+v: presence word %d differs", tc, i)
			}
		}
	}
}

func TestPresenceBitmapFiltersAbsentKmers(t *testing.T) {
	ref := dna.MustParseSeq("ACGTACGTAA")
	si, err := BuildSegmentIndex(ref, 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	codec, _ := dna.NewKmerCodec(4)
	for km := dna.Kmer(0); int(km) < codec.NumKmers(); km++ {
		hits := si.Lookup(km)
		present := si.tab.Presence[km>>6]&(1<<(km&63)) != 0
		if present != (len(hits) > 0) {
			t.Fatalf("kmer %d: presence bit %v but %d hits", km, present, len(hits))
		}
		if len(hits) != len(si.lookupDense(km)) {
			t.Fatalf("kmer %d: Lookup and lookupDense disagree", km)
		}
	}
}

// TestParallelBuildDeterministic pins the worker-pool assembly: any worker
// count — including more workers than segments — must produce an index
// whose logical content hashes identically to the serial build.
func TestParallelBuildDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	ref := randSeq(r, 9000)
	want, err := BuildSegmentedIndexWith(ref, 1000, 150, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := want.Hash()
	for _, workers := range []int{0, 2, 3, 4, 16} {
		got, err := BuildSegmentedIndexWith(ref, 1000, 150, 6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.NumSegments() != want.NumSegments() {
			t.Fatalf("workers=%d: %d segments, want %d", workers, got.NumSegments(), want.NumSegments())
		}
		if h := got.Hash(); h != wantHash {
			t.Errorf("workers=%d: hash %016x, serial build %016x", workers, h, wantHash)
		}
		for id, si := range got.Samples {
			if si.ID != id || si.Offset != want.Samples[id].Offset {
				t.Fatalf("workers=%d: segment %d assembled out of order", workers, id)
			}
		}
	}
	// Errors must propagate from the pool (oversized k fails in-segment).
	if _, err := BuildSegmentedIndexWith(ref, 1000, 150, 99, 4); err == nil {
		t.Error("parallel build accepted oversized k")
	}
}

// TestLookupBorrowContract is the aliasing audit: Lookup/LookupAt hand out
// views of the shared position table, so a full seeding workload — which
// drives every CAM intersection strategy over those views — must leave the
// table byte-identical. A caller mutating through a borrowed slice would
// trip this.
func TestLookupBorrowContract(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	ref := make(dna.Seq, 20000) // low-entropy: huge shared hit lists
	for i := range ref {
		if r.Intn(4) == 0 {
			ref[i] = dna.Base(r.Intn(4))
		}
	}
	si, err := BuildSegmentIndex(ref, 0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]int32(nil), si.tab.Positions...)
	for _, opts := range []Options{
		DefaultOptions(),
		{MinSeedLen: 10, CAMSize: 8, SMEMFilter: true, BinaryExtension: true, Probing: true, ExactFastPath: true},
		{MinSeedLen: 10, CAMSize: 512, SMEMFilter: true, BinaryExtension: true, BinarySearch: false},
		{MinSeedLen: 10, CAMSize: 512, SMEMFilter: false},
		{MinSeedLen: 10, CAMSize: 512, SMEMFilter: true, Scan: ScanPerProbe},
	} {
		sd := NewSeeder(si, opts)
		for trial := 0; trial < 25; trial++ {
			start := r.Intn(len(ref) - 101)
			sd.Seed(mutate(r, ref[start:start+101].Clone(), r.Intn(3)))
		}
	}
	for i, p := range si.tab.Positions {
		if p != snapshot[i] {
			t.Fatalf("position table mutated through a borrowed Lookup slice at %d: %d -> %d", i, snapshot[i], p)
		}
	}
}

func TestNewSegmentIndexFromRunsRejectsCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	ref := randSeq(r, 500)
	si, err := BuildSegmentIndex(ref, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	kmers, counts := si.AppendRuns(nil, nil)
	positions := append([]int32(nil), si.PositionTable()...)
	// The pristine runs must round-trip.
	rt, err := NewSegmentIndexFromRuns(ref, 0, 0, 5, kmers, counts, append([]int32(nil), positions...))
	if err != nil {
		t.Fatalf("valid runs rejected: %v", err)
	}
	codec, _ := dna.NewKmerCodec(5)
	for km := dna.Kmer(0); int(km) < codec.NumKmers(); km++ {
		a, b := si.Lookup(km), rt.Lookup(km)
		if len(a) != len(b) {
			t.Fatalf("kmer %d: %d hits vs %d after round trip", km, len(a), len(b))
		}
	}
	type tweak struct {
		name string
		f    func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32)
	}
	for _, tw := range []tweak{
		{"kmers/counts length mismatch", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) { return k[:len(k)-1], c, p }},
		{"non-ascending kmers", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) {
			k2 := append([]dna.Kmer(nil), k...)
			k2[1] = k2[0]
			return k2, c, p
		}},
		{"zero count", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) {
			c2 := append([]int32(nil), c...)
			c2[0] = 0
			return k, c2, p
		}},
		{"count overflow", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) {
			c2 := append([]int32(nil), c...)
			c2[len(c2)-1] += 5
			return k, c2, p
		}},
		{"out-of-range kmer", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) {
			k2 := append([]dna.Kmer(nil), k...)
			k2[len(k2)-1] = dna.Kmer(1) << 10 // 4^5 = 1024
			return k2, c, p
		}},
		{"out-of-range position", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) {
			p2 := append([]int32(nil), p...)
			p2[0] = int32(len(ref))
			return k, c, p2
		}},
		{"position table too short", func(k []dna.Kmer, c, p []int32) ([]dna.Kmer, []int32, []int32) { return k, c, p[:len(p)-1] }},
	} {
		k2, c2, p2 := tw.f(kmers, counts, positions)
		if _, err := NewSegmentIndexFromRuns(ref, 0, 0, 5, k2, c2, p2); err == nil {
			t.Errorf("%s: accepted", tw.name)
		}
	}
	if _, err := NewSegmentIndexFromRuns(ref, 0, 0, 0, nil, nil, nil); err == nil {
		t.Error("k=0 accepted")
	}
}
