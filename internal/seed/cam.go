package seed

// CAM models the 512-entry content-addressable memory each seeding lane
// uses to intersect hit sets (§V). It tracks the lookup counts that Fig 16b
// reports. The stored set is the current candidate hits; intersection
// probes one incoming value per lookup.
type CAM struct {
	size    int
	entries map[int32]struct{}
	// matched is the reusable scratch of IntersectChunkedInto (one flag
	// per candidate, cleared between lookups); the hardware equivalent is
	// the per-entry match bit latched across chunk passes.
	matched []bool

	// Stats accumulated across operations (reset with ResetStats).
	Lookups  int // associative probes
	Writes   int // entry loads
	Overflow int // times a set larger than the CAM had to be handled
}

// NewCAM builds a CAM with the given capacity (512 in GenAx).
func NewCAM(size int) *CAM {
	if size < 1 {
		size = 1
	}
	hint := size
	if hint > 4096 {
		// Cap the map pre-allocation: experiment configs use a huge
		// logical capacity to disable the binary-search fallback.
		hint = 4096
	}
	return &CAM{size: size, entries: make(map[int32]struct{}, hint)}
}

// Size returns the capacity.
func (c *CAM) Size() int { return c.size }

// ResetStats clears the counters.
func (c *CAM) ResetStats() { c.Lookups, c.Writes, c.Overflow = 0, 0, 0 }

// Load replaces the stored set with vals. It reports false (and counts an
// overflow) when vals exceeds capacity — callers then fall back to binary
// search on the sorted position table.
//
//genax:hotpath
func (c *CAM) Load(vals []int32) bool {
	if len(vals) > c.size {
		c.Overflow++
		return false
	}
	clear(c.entries)
	for _, v := range vals {
		c.entries[v] = struct{}{}
	}
	c.Writes += len(vals)
	return true
}

// IntersectProbe probes every incoming value against the stored set and
// returns the matches (one CAM lookup each).
func (c *CAM) IntersectProbe(incoming []int32) []int32 {
	return c.IntersectProbeInto(nil, incoming)
}

// IntersectProbeInto is IntersectProbe appending into dst (which may be a
// reused scratch slice); it returns the extended slice.
//
//genax:hotpath
func (c *CAM) IntersectProbeInto(dst, incoming []int32) []int32 {
	c.Lookups += len(incoming)
	for _, v := range incoming {
		if _, ok := c.entries[v]; ok {
			dst = append(dst, v)
		}
	}
	return dst
}

// BinaryCost returns the modelled probe cost of IntersectBinary on the
// given set sizes: ceil(log2 nHits) probes per candidate.
//
//genax:hotpath
func BinaryCost(nCur, nHits int) int {
	if nHits == 0 || nCur == 0 {
		return 0
	}
	logN := 1
	for n := nHits; n > 1; n >>= 1 {
		logN++
	}
	return nCur * logN
}

// IntersectBinary intersects the stored candidate set cur against a large
// sorted hit list by binary search (§V optimization two: position tables
// are sorted offline, so oversized sets cost log time instead of a full
// CAM load). The lookup counter charges ceil(log2 n) probes per candidate.
func (c *CAM) IntersectBinary(cur []int32, sortedHits []int32) []int32 {
	return c.IntersectBinaryInto(nil, cur, sortedHits)
}

// IntersectBinaryInto is IntersectBinary appending into dst (which may be a
// reused scratch slice); it returns the extended slice. The search is open-
// coded rather than sort.Search: the closure there costs an allocation per
// candidate on the hottest intersection path.
//
//genax:hotpath
func (c *CAM) IntersectBinaryInto(dst, cur, sortedHits []int32) []int32 {
	if len(sortedHits) == 0 || len(cur) == 0 {
		return dst
	}
	c.Lookups += BinaryCost(len(cur), len(sortedHits))
	for _, v := range cur {
		lo, hi := 0, len(sortedHits)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if sortedHits[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(sortedHits) && sortedHits[lo] == v {
			dst = append(dst, v)
		}
	}
	return dst
}

// IntersectChunked is the baseline without binary search when neither set
// fits the CAM: the incoming list streams through in CAM-sized chunks and
// the candidates probe every chunk. It is what forces the §V binary-search
// optimization — the cost is len(cur) probes per chunk plus the loads.
func (c *CAM) IntersectChunked(cur []int32, incoming []int32) []int32 {
	return c.IntersectChunkedInto(nil, cur, incoming)
}

// ensureMatched returns the cleared per-candidate match-flag scratch, growing
// it if needed. Growth happens only until the scratch reaches the largest
// candidate set; it is the one allocation the chunked path amortizes away.
func (c *CAM) ensureMatched(n int) []bool {
	if cap(c.matched) < n {
		c.matched = make([]bool, n)
	}
	matched := c.matched[:n]
	clear(matched)
	return matched
}

// IntersectChunkedInto is IntersectChunked appending into dst (which may be
// a reused scratch slice); it returns the extended slice. The per-candidate
// match flags live in a scratch slice owned by the CAM and cleared between
// lookups, so steady-state intersection does not allocate.
//
//genax:hotpath
func (c *CAM) IntersectChunkedInto(dst, cur, incoming []int32) []int32 {
	if len(cur) == 0 || len(incoming) == 0 {
		return dst
	}
	matched := c.ensureMatched(len(cur))
	for lo := 0; lo < len(incoming); lo += c.size {
		hi := lo + c.size
		if hi > len(incoming) {
			hi = len(incoming)
		}
		clear(c.entries)
		for _, v := range incoming[lo:hi] {
			c.entries[v] = struct{}{}
		}
		c.Writes += hi - lo
		c.Lookups += len(cur)
		for j, v := range cur {
			if _, ok := c.entries[v]; ok {
				matched[j] = true
			}
		}
	}
	for j, v := range cur { // preserve sorted order of cur
		if matched[j] {
			dst = append(dst, v)
		}
	}
	return dst
}
