package seed

// CAM models the 512-entry content-addressable memory each seeding lane
// uses to intersect hit sets (§V). It tracks the lookup counts that Fig 16b
// reports. The stored set is the current candidate hits; intersection
// probes one incoming value per lookup.
//
// The store is a flat open-addressed table (power-of-two slots, linear
// probing) instead of a Go map: one multiply and a handful of contiguous
// slots per probe, no per-entry hashing overhead, and — the part the
// chunked path leans on — reloads are O(1). Each slot carries a generation
// tag; a slot is live only when its tag equals the CAM's current
// generation, so Load just bumps the generation and the previous contents
// expire wholesale, with no tombstones and no clearing pass. This mirrors
// the hardware: a CAM reload is a broadcast invalidate, not a sweep.
type CAM struct {
	size int

	// keys/gens form the open-addressed table; slot i holds keys[i] only
	// when gens[i] == gen. Sized to at least twice the largest loaded set
	// (load factor <= 1/2 bounds probe runs), grown lazily by ensureTable
	// so a huge logical capacity (experiment configs use one to disable
	// the binary-search fallback) costs nothing until sets that big load.
	keys  []int32
	gens  []uint32
	gen   uint32
	mask  uint32
	shift uint32

	// matched is the reusable scratch of IntersectChunkedInto (one flag
	// per candidate, latched across chunk passes); the hardware equivalent
	// is the per-entry match bit.
	matched []bool

	// Stats accumulated across operations (reset with ResetStats).
	Lookups  int // associative probes
	Writes   int // entry loads
	Overflow int // times a set larger than the CAM had to be handled
}

// minTableBits keeps the smallest table at 8 slots so the probe masks are
// always valid.
const minTableBits = 3

// camHashMul spreads keys over the table's top bits (Fibonacci hashing).
const camHashMul = 0x9E3779B1

// NewCAM builds a CAM with the given capacity (512 in GenAx).
func NewCAM(size int) *CAM {
	if size < 1 {
		size = 1
	}
	c := &CAM{size: size, gen: 1}
	c.grow(minTableBits)
	return c
}

// Size returns the capacity.
func (c *CAM) Size() int { return c.size }

// ResetStats clears the counters.
func (c *CAM) ResetStats() { c.Lookups, c.Writes, c.Overflow = 0, 0, 0 }

// grow replaces the table with a fresh 2^bits-slot one. The generation
// restarts at 1 over the zeroed tags, so no slot is live.
func (c *CAM) grow(bits uint32) {
	n := 1 << bits
	c.keys = make([]int32, n)
	c.gens = make([]uint32, n)
	c.mask = uint32(n - 1)
	c.shift = 32 - bits
	c.gen = 1
}

// beginLoad starts a new stored set of up to n values: it guarantees table
// slack (at least 2n slots) and expires the previous set by bumping the
// generation. On the rare tag wraparound the tags are cleared so ancient
// entries cannot resurrect.
//
//genax:hotpath
func (c *CAM) beginLoad(n int) {
	if need := 2 * n; need > len(c.keys) {
		bits := uint32(minTableBits)
		for 1<<bits < need {
			bits++
		}
		c.grow(bits)
		return
	}
	c.gen++
	if c.gen == 0 {
		for i := range c.gens {
			c.gens[i] = 0
		}
		c.gen = 1
	}
}

// insert stores v in the current generation (duplicates collapse, like the
// set semantics of the hardware's parallel write).
//
//genax:hotpath
func (c *CAM) insert(v int32) {
	h := (uint32(v) * camHashMul) >> c.shift
	for c.gens[h] == c.gen {
		if c.keys[h] == v {
			return
		}
		h = (h + 1) & c.mask
	}
	c.keys[h] = v
	c.gens[h] = c.gen
}

// contains probes v against the current generation.
//
//genax:hotpath
func (c *CAM) contains(v int32) bool {
	h := (uint32(v) * camHashMul) >> c.shift
	for c.gens[h] == c.gen {
		if c.keys[h] == v {
			return true
		}
		h = (h + 1) & c.mask
	}
	return false
}

// Load replaces the stored set with vals. It reports false (and counts an
// overflow) when vals exceeds capacity — callers then fall back to binary
// search on the sorted position table.
//
//genax:hotpath
func (c *CAM) Load(vals []int32) bool {
	if len(vals) > c.size {
		c.Overflow++
		return false
	}
	c.beginLoad(len(vals))
	for _, v := range vals {
		c.insert(v)
	}
	c.Writes += len(vals)
	return true
}

// IntersectProbe probes every incoming value against the stored set and
// returns the matches (one CAM lookup each).
func (c *CAM) IntersectProbe(incoming []int32) []int32 {
	return c.IntersectProbeInto(nil, incoming)
}

// IntersectProbeInto is IntersectProbe appending into dst (which may be a
// reused scratch slice); it returns the extended slice.
//
//genax:hotpath
func (c *CAM) IntersectProbeInto(dst, incoming []int32) []int32 {
	c.Lookups += len(incoming)
	for _, v := range incoming {
		if c.contains(v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// BinaryCost returns the modelled probe cost of IntersectBinary on the
// given set sizes: ceil(log2 nHits) probes per candidate.
//
//genax:hotpath
func BinaryCost(nCur, nHits int) int {
	if nHits == 0 || nCur == 0 {
		return 0
	}
	logN := 1
	for n := nHits; n > 1; n >>= 1 {
		logN++
	}
	return nCur * logN
}

// IntersectBinary intersects the stored candidate set cur against a large
// sorted hit list by binary search (§V optimization two: position tables
// are sorted offline, so oversized sets cost log time instead of a full
// CAM load). The lookup counter charges ceil(log2 n) probes per candidate.
func (c *CAM) IntersectBinary(cur []int32, sortedHits []int32) []int32 {
	return c.IntersectBinaryInto(nil, cur, sortedHits)
}

// IntersectBinaryInto is IntersectBinary appending into dst (which may be a
// reused scratch slice); it returns the extended slice. The search is open-
// coded rather than sort.Search: the closure there costs an allocation per
// candidate on the hottest intersection path.
//
//genax:hotpath
func (c *CAM) IntersectBinaryInto(dst, cur, sortedHits []int32) []int32 {
	if len(sortedHits) == 0 || len(cur) == 0 {
		return dst
	}
	c.Lookups += BinaryCost(len(cur), len(sortedHits))
	for _, v := range cur {
		lo, hi := 0, len(sortedHits)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if sortedHits[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(sortedHits) && sortedHits[lo] == v {
			dst = append(dst, v)
		}
	}
	return dst
}

// IntersectChunked is the baseline without binary search when neither set
// fits the CAM: the incoming list streams through in CAM-sized chunks and
// the candidates probe every chunk. It is what forces the §V binary-search
// optimization — the cost is len(cur) probes per chunk plus the loads.
func (c *CAM) IntersectChunked(cur []int32, incoming []int32) []int32 {
	return c.IntersectChunkedInto(nil, cur, incoming)
}

// ensureMatched returns the cleared per-candidate match-flag scratch, growing
// it if needed. Growth happens only until the scratch reaches the largest
// candidate set; it is the one allocation the chunked path amortizes away.
func (c *CAM) ensureMatched(n int) []bool {
	if cap(c.matched) < n {
		c.matched = make([]bool, n)
	}
	matched := c.matched[:n]
	clear(matched)
	return matched
}

// IntersectChunkedInto is IntersectChunked appending into dst (which may be
// a reused scratch slice); it returns the extended slice. The per-candidate
// match flags live in a scratch slice owned by the CAM and cleared between
// lookups, so steady-state intersection does not allocate; each chunk's
// reload is a generation bump, not a table sweep.
//
//genax:hotpath
func (c *CAM) IntersectChunkedInto(dst, cur, incoming []int32) []int32 {
	if len(cur) == 0 || len(incoming) == 0 {
		return dst
	}
	matched := c.ensureMatched(len(cur))
	for lo := 0; lo < len(incoming); lo += c.size {
		hi := lo + c.size
		if hi > len(incoming) {
			hi = len(incoming)
		}
		c.beginLoad(hi - lo)
		for _, v := range incoming[lo:hi] {
			c.insert(v)
		}
		c.Writes += hi - lo
		c.Lookups += len(cur)
		for j, v := range cur {
			if c.contains(v) {
				matched[j] = true
			}
		}
	}
	for j, v := range cur { // preserve sorted order of cur
		if matched[j] {
			dst = append(dst, v)
		}
	}
	return dst
}
