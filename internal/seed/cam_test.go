package seed

import (
	"math/rand"
	"sort"
	"testing"
)

// chunkedRef recomputes the chunked intersection naively: every value of
// cur that occurs anywhere in incoming, in cur order.
func chunkedRef(cur, incoming []int32) []int32 {
	in := make(map[int32]bool, len(incoming))
	for _, v := range incoming {
		in[v] = true
	}
	var out []int32
	for _, v := range cur {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// TestIntersectChunkedScratchReuse drives many chunked intersections of
// varying sizes through one CAM, checking each result against the naive
// reference: the reusable match-flag scratch must be fully cleared between
// lookups, so no stale flag from a larger earlier call can leak a
// non-member into a later result.
func TestIntersectChunkedScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(220))
	c := NewCAM(8) // tiny capacity forces many chunks
	for trial := 0; trial < 200; trial++ {
		nc, ni := 1+r.Intn(40), 1+r.Intn(100)
		cur := make([]int32, nc)
		for i := range cur {
			cur[i] = int32(r.Intn(60))
		}
		sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
		incoming := make([]int32, ni)
		for i := range incoming {
			incoming[i] = int32(r.Intn(60))
		}
		got := c.IntersectChunked(cur, incoming)
		want := chunkedRef(cur, incoming)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

// TestIntersectChunkedIntoNoAlloc pins the fix for the per-lookup matched
// map: a warm CAM intersecting into a caller-provided buffer must not
// allocate at all.
func TestIntersectChunkedIntoNoAlloc(t *testing.T) {
	c := NewCAM(4)
	cur := []int32{1, 3, 5, 7, 9, 11, 13}
	incoming := []int32{2, 3, 5, 8, 9, 14, 1, 6, 13, 4}
	dst := make([]int32, 0, len(cur))
	c.IntersectChunkedInto(dst, cur, incoming) // warm the scratch
	avg := testing.AllocsPerRun(100, func() {
		c.IntersectChunkedInto(dst, cur, incoming)
	})
	if avg != 0 {
		t.Errorf("warm IntersectChunkedInto allocates %.1f times per call, want 0", avg)
	}
}

// camSlot recomputes a value's home slot with the table's own hash —
// white-box, so the wraparound test can construct genuine collisions at
// the last slot instead of guessing.
func camSlot(c *CAM, v int32) uint32 {
	return (uint32(v) * camHashMul) >> c.shift
}

// TestCAMProbeWraparound forces a collision run that starts at the last
// slot of the table, so linear probing must wrap to slot 0: every collided
// value has to remain findable and non-members hashing into the same run
// must still miss.
func TestCAMProbeWraparound(t *testing.T) {
	c := NewCAM(512)
	last := c.mask
	var vals []int32
	var absent []int32
	for v := int32(0); len(vals) < 3 || len(absent) < 2; v++ {
		if camSlot(c, v) == last {
			if len(vals) < 3 {
				vals = append(vals, v)
			} else {
				absent = append(absent, v)
			}
		}
		if v > 1<<20 {
			t.Fatal("could not construct colliding values")
		}
	}
	if !c.Load(vals) {
		t.Fatal("load rejected")
	}
	if c.mask != last {
		t.Fatalf("table grew during load (mask %d -> %d); collisions invalidated", last, c.mask)
	}
	for _, v := range vals {
		if !c.contains(v) {
			t.Errorf("collided value %d (slot %d) not found after wraparound", v, camSlot(c, v))
		}
	}
	for _, v := range absent {
		if c.contains(v) {
			t.Errorf("non-member %d matched", v)
		}
	}
}

// TestCAMGenerationReload pins the tombstone-free reload: consecutive
// Loads share the table with no clearing pass, so members of an earlier
// set must expire the moment a new set loads — including values whose
// slots the new set does not touch.
func TestCAMGenerationReload(t *testing.T) {
	c := NewCAM(64)
	r := rand.New(rand.NewSource(221))
	prev := map[int32]bool{}
	for round := 0; round < 50; round++ {
		n := 1 + r.Intn(64)
		set := make([]int32, n)
		cur := map[int32]bool{}
		for i := range set {
			set[i] = int32(r.Intn(500))
			cur[set[i]] = true
		}
		if !c.Load(set) {
			t.Fatalf("round %d: load of %d values rejected", round, n)
		}
		for v := int32(0); v < 500; v++ {
			if got := c.contains(v); got != cur[v] {
				t.Fatalf("round %d: contains(%d) = %v, want %v (stale=%v)",
					round, v, got, cur[v], prev[v])
			}
		}
		prev = cur
	}
}

// TestCAMGenerationWrap drives the uint32 generation counter over its
// wraparound: entries loaded at the maximum generation must not resurrect
// once the counter wraps and the tags are wiped.
func TestCAMGenerationWrap(t *testing.T) {
	c := NewCAM(16)
	c.gen = ^uint32(0) - 1
	if !c.Load([]int32{7, 8, 9}) { // loads at the maximum generation
		t.Fatal("load rejected")
	}
	if !c.contains(8) {
		t.Fatal("member missing before wrap")
	}
	if !c.Load([]int32{1, 2}) { // wraps: tags cleared, gen restarts at 1
		t.Fatal("load rejected")
	}
	if c.gen == 0 {
		t.Fatal("generation stuck at 0 after wrap")
	}
	for _, v := range []int32{7, 8, 9} {
		if c.contains(v) {
			t.Errorf("pre-wrap value %d resurrected", v)
		}
	}
	if !c.contains(1) || !c.contains(2) {
		t.Error("post-wrap set incomplete")
	}
}

// TestCAMLazyTableGrowth pins the lazy sizing: a CAM with a huge logical
// capacity (experiment configs use one to disable the binary-search
// fallback) must not allocate a huge table up front, only grow to fit the
// sets actually loaded.
func TestCAMLazyTableGrowth(t *testing.T) {
	c := NewCAM(1 << 30)
	if len(c.keys) > 1<<minTableBits {
		t.Fatalf("fresh CAM table has %d slots", len(c.keys))
	}
	vals := make([]int32, 300)
	for i := range vals {
		vals[i] = int32(i * 17)
	}
	if !c.Load(vals) {
		t.Fatal("load rejected")
	}
	if len(c.keys) < 2*len(vals) {
		t.Fatalf("table %d slots, want >= %d for probe-run bound", len(c.keys), 2*len(vals))
	}
	if len(c.keys) > 4*len(vals) {
		t.Fatalf("table %d slots for %d values — oversized", len(c.keys), len(vals))
	}
	for _, v := range vals {
		if !c.contains(v) {
			t.Fatalf("member %d missing after growth", v)
		}
	}
}

// TestCAMLoadOverflow preserves the overflow accounting contract.
func TestCAMLoadOverflow(t *testing.T) {
	c := NewCAM(4)
	if c.Load([]int32{1, 2, 3, 4, 5}) {
		t.Fatal("oversized load accepted")
	}
	if c.Overflow != 1 {
		t.Fatalf("Overflow = %d, want 1", c.Overflow)
	}
	if c.Writes != 0 {
		t.Fatalf("Writes = %d after rejected load, want 0", c.Writes)
	}
	if !c.Load([]int32{1, 2, 3, 4}) {
		t.Fatal("exact-capacity load rejected")
	}
	if c.Writes != 4 {
		t.Fatalf("Writes = %d, want 4", c.Writes)
	}
}

// TestIntersectIntoAppendSemantics checks the Into variants extend dst
// rather than replacing it.
func TestIntersectIntoAppendSemantics(t *testing.T) {
	c := NewCAM(16)
	dst := []int32{-99}
	c.Load([]int32{4, 5, 6})
	dst = c.IntersectProbeInto(dst, []int32{5, 7})
	dst = c.IntersectBinaryInto(dst, []int32{2, 8}, []int32{1, 2, 3, 8})
	dst = c.IntersectChunkedInto(dst, []int32{10, 11}, []int32{11})
	want := []int32{-99, 5, 2, 8, 11}
	if len(dst) != len(want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}
