package seed

import (
	"math/rand"
	"sort"
	"testing"
)

// chunkedRef recomputes the chunked intersection naively: every value of
// cur that occurs anywhere in incoming, in cur order.
func chunkedRef(cur, incoming []int32) []int32 {
	in := make(map[int32]bool, len(incoming))
	for _, v := range incoming {
		in[v] = true
	}
	var out []int32
	for _, v := range cur {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// TestIntersectChunkedScratchReuse drives many chunked intersections of
// varying sizes through one CAM, checking each result against the naive
// reference: the reusable match-flag scratch must be fully cleared between
// lookups, so no stale flag from a larger earlier call can leak a
// non-member into a later result.
func TestIntersectChunkedScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(220))
	c := NewCAM(8) // tiny capacity forces many chunks
	for trial := 0; trial < 200; trial++ {
		nc, ni := 1+r.Intn(40), 1+r.Intn(100)
		cur := make([]int32, nc)
		for i := range cur {
			cur[i] = int32(r.Intn(60))
		}
		sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
		incoming := make([]int32, ni)
		for i := range incoming {
			incoming[i] = int32(r.Intn(60))
		}
		got := c.IntersectChunked(cur, incoming)
		want := chunkedRef(cur, incoming)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

// TestIntersectChunkedIntoNoAlloc pins the fix for the per-lookup matched
// map: a warm CAM intersecting into a caller-provided buffer must not
// allocate at all.
func TestIntersectChunkedIntoNoAlloc(t *testing.T) {
	c := NewCAM(4)
	cur := []int32{1, 3, 5, 7, 9, 11, 13}
	incoming := []int32{2, 3, 5, 8, 9, 14, 1, 6, 13, 4}
	dst := make([]int32, 0, len(cur))
	c.IntersectChunkedInto(dst, cur, incoming) // warm the scratch
	avg := testing.AllocsPerRun(100, func() {
		c.IntersectChunkedInto(dst, cur, incoming)
	})
	if avg != 0 {
		t.Errorf("warm IntersectChunkedInto allocates %.1f times per call, want 0", avg)
	}
}

// TestIntersectIntoAppendSemantics checks the Into variants extend dst
// rather than replacing it.
func TestIntersectIntoAppendSemantics(t *testing.T) {
	c := NewCAM(16)
	dst := []int32{-99}
	c.Load([]int32{4, 5, 6})
	dst = c.IntersectProbeInto(dst, []int32{5, 7})
	dst = c.IntersectBinaryInto(dst, []int32{2, 8}, []int32{1, 2, 3, 8})
	dst = c.IntersectChunkedInto(dst, []int32{10, 11}, []int32{11})
	want := []int32{-99, 5, 2, 8, 11}
	if len(dst) != len(want) {
		t.Fatalf("dst = %v, want %v", dst, want)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}
