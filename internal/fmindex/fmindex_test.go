package fmindex

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"genax/internal/dna"
)

func randSeq(r *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(r.Intn(dna.NumBases))
	}
	return s
}

func naiveSuffixArray(text dna.Seq) []int32 {
	n := len(text)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	str := text.String()
	sort.Slice(sa, func(i, j int) bool { return str[sa[i]:] < str[sa[j]:] })
	return sa
}

func TestSuffixArrayMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(90))
	for _, n := range []int{0, 1, 2, 5, 17, 64, 200, 1000} {
		text := randSeq(r, n)
		got := BuildSuffixArray(text)
		want := naiveSuffixArray(text)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d vs %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: sa[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestSuffixArrayRepetitiveText(t *testing.T) {
	// Repeats stress prefix doubling's rank ties.
	text := dna.MustParseSeq(strings.Repeat("ACGT", 64) + strings.Repeat("A", 50))
	got := BuildSuffixArray(text)
	want := naiveSuffixArray(text)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sa[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func naiveOccurrences(text, pattern dna.Seq) []int32 {
	var out []int32
	if len(pattern) == 0 || len(pattern) > len(text) {
		return out
	}
	ts, ps := text.String(), pattern.String()
	for i := 0; i+len(ps) <= len(ts); i++ {
		if ts[i:i+len(ps)] == ps {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestFMIndexCountAndLocate(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	text := randSeq(r, 500)
	idx := Build(text)
	if err := idx.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for trial := 0; trial < 300; trial++ {
		var pattern dna.Seq
		if trial%3 == 0 {
			pattern = randSeq(r, 1+r.Intn(8))
		} else {
			// Sample a real substring so matches exist.
			start := r.Intn(len(text) - 12)
			pattern = text[start : start+1+r.Intn(12)].Clone()
		}
		want := naiveOccurrences(text, pattern)
		if got := idx.Count(pattern); got != len(want) {
			t.Fatalf("Count(%v) = %d, want %d", pattern, got, len(want))
		}
		got := idx.Locate(idx.Find(pattern), 0)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("Locate size %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Locate[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
}

func TestFMIndexEdgeCases(t *testing.T) {
	idx := Build(dna.Seq{})
	if idx.Count(dna.MustParseSeq("A")) != 0 {
		t.Error("empty text reported matches")
	}
	one := Build(dna.MustParseSeq("G"))
	if one.Count(dna.MustParseSeq("G")) != 1 {
		t.Error("single-base text: G not found")
	}
	if one.Count(dna.MustParseSeq("C")) != 0 {
		t.Error("single-base text: C found")
	}
	if one.Count(dna.Seq{}) != 0 {
		t.Error("empty pattern should count 0 by contract")
	}
}

func TestLocateCap(t *testing.T) {
	text := dna.MustParseSeq(strings.Repeat("A", 100))
	idx := Build(text)
	iv := idx.Find(dna.MustParseSeq("AAA"))
	if got := len(idx.Locate(iv, 5)); got != 5 {
		t.Errorf("capped Locate returned %d hits, want 5", got)
	}
	if got := len(idx.Locate(iv, 0)); got != 98 {
		t.Errorf("uncapped Locate returned %d hits, want 98", got)
	}
}

// naiveSMEMs computes SMEMs by definition for the oracle.
func naiveSMEMs(text, read dna.Seq, minLen int) []SMEM {
	ts := text.String()
	occurs := func(i, j int) bool {
		return j > i && strings.Contains(ts, read[i:j].String())
	}
	type span struct{ s, e int }
	var mems []span
	m := len(read)
	for i := 0; i < m; i++ {
		for j := i + 1; j <= m; j++ {
			if !occurs(i, j) {
				continue
			}
			leftExt := i > 0 && occurs(i-1, j)
			rightExt := j < m && occurs(i, j+1)
			if !leftExt && !rightExt {
				mems = append(mems, span{i, j})
			}
		}
	}
	var out []SMEM
	for _, a := range mems {
		contained := false
		for _, b := range mems {
			if (b.s < a.s && b.e >= a.e) || (b.s <= a.s && b.e > a.e) {
				contained = true
				break
			}
		}
		if !contained && a.e-a.s >= minLen {
			out = append(out, SMEM{Start: a.s, End: a.e, Hits: naiveOccurrences(text, read[a.s:a.e])})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func TestSMEMsMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for trial := 0; trial < 60; trial++ {
		text := randSeq(r, 120+r.Intn(200))
		sx := BuildSMEMIndex(text)
		var read dna.Seq
		if trial%2 == 0 {
			// Mutated substring: the realistic case.
			start := r.Intn(len(text) - 40)
			read = text[start : start+30+r.Intn(10)].Clone()
			for e := 0; e < r.Intn(4); e++ {
				p := r.Intn(len(read))
				read[p] = dna.Base((int(read[p]) + 1 + r.Intn(3)) % 4)
			}
		} else {
			read = randSeq(r, 15+r.Intn(25))
		}
		minLen := 1 + r.Intn(8)
		got := sx.SMEMs(read, minLen, 0)
		want := naiveSMEMs(text, read, minLen)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d SMEMs, want %d (got=%+v want=%+v read=%v)", trial, len(got), len(want), got, want, read)
		}
		for i := range got {
			if got[i].Start != want[i].Start || got[i].End != want[i].End {
				t.Fatalf("trial %d smem %d: [%d,%d) vs [%d,%d)", trial, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
			}
			g := append([]int32(nil), got[i].Hits...)
			sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
			if len(g) != len(want[i].Hits) {
				t.Fatalf("trial %d smem %d: %d hits, want %d", trial, i, len(g), len(want[i].Hits))
			}
			for j := range g {
				if g[j] != want[i].Hits[j] {
					t.Fatalf("trial %d smem %d hit %d: %d vs %d", trial, i, j, g[j], want[i].Hits[j])
				}
			}
		}
	}
}

func TestSMEMsExactRead(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	text := randSeq(r, 4000)
	sx := BuildSMEMIndex(text)
	read := text[1000:1101].Clone()
	smems := sx.SMEMs(read, 19, 0)
	if len(smems) != 1 {
		t.Fatalf("exact read: %d SMEMs, want 1", len(smems))
	}
	s := smems[0]
	if s.Start != 0 || s.End != 101 {
		t.Errorf("SMEM span [%d,%d), want [0,101)", s.Start, s.End)
	}
	found := false
	for _, h := range s.Hits {
		if h == 1000 {
			found = true
		}
	}
	if !found {
		t.Error("true position 1000 missing from hits")
	}
}

func TestSMEMsEmptyInputs(t *testing.T) {
	sx := BuildSMEMIndex(dna.MustParseSeq("ACGTACGT"))
	if got := sx.SMEMs(dna.Seq{}, 1, 0); got != nil {
		t.Errorf("empty read produced %v", got)
	}
	empty := BuildSMEMIndex(dna.Seq{})
	if got := empty.SMEMs(dna.MustParseSeq("ACG"), 1, 0); got != nil {
		t.Errorf("empty text produced %v", got)
	}
}
