package fmindex

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSampledLocateMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(94))
	text := randSeq(r, 800)
	for _, sample := range []int{1, 2, 4, 8, 32} {
		si := NewSampled(text, sample)
		for trial := 0; trial < 100; trial++ {
			start := r.Intn(len(text) - 10)
			pattern := text[start : start+2+r.Intn(8)]
			iv := si.Find(pattern)
			full := si.Locate(iv, 0)
			got := si.LocateSampled(iv, 0)
			sort.Slice(full, func(i, j int) bool { return full[i] < full[j] })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(full) {
				t.Fatalf("sample=%d: %d vs %d positions", sample, len(got), len(full))
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("sample=%d trial=%d: pos[%d] = %d, want %d (pattern %v)", sample, trial, i, got[i], full[i], pattern)
				}
			}
		}
	}
}

func TestSampledLocatePatternAtTextStart(t *testing.T) {
	// Positions near 0 exercise the sentinel-walk branch.
	r := rand.New(rand.NewSource(95))
	text := randSeq(r, 300)
	si := NewSampled(text, 7)
	pattern := text[:12]
	got := si.LocateSampled(si.Find(pattern), 0)
	found := false
	for _, p := range got {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("position 0 not recovered: %v", got)
	}
}

func TestSampledBytesShrink(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	text := randSeq(r, 4096)
	full := NewSampled(text, 1)
	sparse := NewSampled(text, 32)
	if sparse.SampledBytes() >= full.SampledBytes()/16 {
		t.Errorf("sampling saved too little: %d vs %d bytes", sparse.SampledBytes(), full.SampledBytes())
	}
	if sparse.Sample() != 32 {
		t.Errorf("Sample() = %d", sparse.Sample())
	}
}

func TestSampledLocateCap(t *testing.T) {
	text := randSeq(rand.New(rand.NewSource(97)), 500)
	si := NewSampled(text, 4)
	iv := si.All()
	if got := len(si.LocateSampled(iv, 10)); got != 10 {
		t.Errorf("capped locate returned %d", got)
	}
}
