// Package fmindex implements the index substrate of the BWA-MEM-like
// software baseline: suffix array construction, the Burrows-Wheeler
// transform, an FM-index with backward search, and SMEM (super-maximal
// exact match) enumeration. GenAx's seeding accelerator (package seed) is
// validated against the SMEMs this package produces, mirroring how the
// paper validates against BWA-MEM (§V, §VII).
package fmindex

import (
	"sort"

	"genax/internal/dna"
)

// BuildSuffixArray returns the suffix array of text (as base values 0..3)
// by prefix doubling in O(n log² n). The implicit sentinel at position n
// sorts before every other suffix and is not included in the result.
func BuildSuffixArray(text dna.Seq) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		rank[i] = int32(text[i])
	}
	cmp := func(a, b int32, k int) bool {
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		ra, rb := int32(-1), int32(-1)
		if int(a)+k < n {
			ra = rank[int(a)+k]
		}
		if int(b)+k < n {
			rb = rank[int(b)+k]
		}
		return ra < rb
	}
	for k := 1; ; k *= 2 {
		kk := k
		sort.Slice(sa, func(i, j int) bool { return cmp(sa[i], sa[j], kk) })
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			if cmp(sa[i-1], sa[i], kk) {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
		if k > n {
			break
		}
	}
	return sa
}
