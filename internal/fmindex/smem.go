package fmindex

import "genax/internal/dna"

// SMEM is a super-maximal exact match between a read and the reference: a
// maximal exact match (extendable in neither direction) that is not
// contained in any other maximal exact match of the read (§V).
type SMEM struct {
	// Start and End delimit the read substring [Start, End).
	Start, End int
	// Hits are the reference positions where the substring occurs.
	Hits []int32
}

// Len returns the match length.
func (s SMEM) Len() int { return s.End - s.Start }

// SMEMIndex packages a forward and a reversed FM-index so that matches can
// be extended in both directions — the software equivalent of BWA-MEM's
// FMD-index seeding that the GenAx seeding accelerator replaces.
type SMEMIndex struct {
	fwd *Index
	rev *Index
	n   int
}

// BuildSMEMIndex indexes the text in both directions.
func BuildSMEMIndex(text dna.Seq) *SMEMIndex {
	revText := make(dna.Seq, len(text))
	for i, b := range text {
		revText[len(text)-1-i] = b
	}
	return &SMEMIndex{fwd: Build(text), rev: Build(revText), n: len(text)}
}

// Forward exposes the forward index (for locating hits of any substring).
func (s *SMEMIndex) Forward() *Index { return s.fwd }

// longestMatchFrom returns the longest l such that read[i:i+l] occurs in
// the text. Extending the match to the right is a backward-search step on
// the reversed index.
func (s *SMEMIndex) longestMatchFrom(read dna.Seq, i int) int {
	iv := s.rev.All()
	l := 0
	for i+l < len(read) {
		next := s.rev.ExtendLeft(read[i+l], iv)
		if next.Empty() {
			break
		}
		iv = next
		l++
	}
	return l
}

// SMEMs enumerates the super-maximal exact matches of the read that are at
// least minLen long, with their reference hits (capped at maxHits each;
// maxHits <= 0 means uncapped). The result is ordered by read position.
func (s *SMEMIndex) SMEMs(read dna.Seq, minLen, maxHits int) []SMEM {
	if minLen < 1 {
		minLen = 1
	}
	m := len(read)
	if m == 0 || s.n == 0 {
		return nil
	}
	// L[i] = longest match starting at i. A candidate MEM starts at i iff
	// it is left-non-extendable: i == 0 or L[i-1] <= L[i] (a match from
	// i-1 spanning past i+L[i] would need L[i-1] >= L[i]+1).
	L := make([]int, m)
	for i := 0; i < m; i++ {
		L[i] = s.longestMatchFrom(read, i)
	}
	var out []SMEM
	maxEnd := -1
	for i := 0; i < m; i++ {
		if L[i] == 0 {
			continue
		}
		if i > 0 && L[i-1] > L[i] {
			// Right end of the i-1 match strictly covers this one.
			if e := i - 1 + L[i-1]; e > maxEnd {
				maxEnd = e
			}
			continue
		}
		end := i + L[i]
		// Super-maximality: drop candidates contained in an earlier MEM.
		if end <= maxEnd {
			continue
		}
		maxEnd = end
		if L[i] < minLen {
			continue
		}
		iv := s.fwd.Find(read[i:end])
		out = append(out, SMEM{Start: i, End: end, Hits: s.fwd.Locate(iv, maxHits)})
	}
	return out
}
