package fmindex

import (
	"fmt"

	"genax/internal/dna"
)

// sentinelSym is the in-index value of the terminator appended to the
// text. It sorts before every base.
const sentinelSym = 0xFF

// occSample is the checkpoint spacing of the occurrence table.
const occSample = 64

// Index is an FM-index over a DNA text: BWT plus sampled occurrence
// counts, with the full suffix array retained for locating hits (GenAx's
// position table plays the same role in hardware).
type Index struct {
	n   int // text length (without sentinel)
	bwt []byte
	// c[b] = number of symbols strictly smaller than base b in the text
	// (including the sentinel, which occupies row 0).
	c [dna.NumBases + 1]int
	// occCk[(row/occSample)*4+b] = occurrences of b in bwt[0:row] at
	// checkpoint rows.
	occCk []int32
	sa    []int32
}

// Build constructs the index. It runs in O(n log² n) time and keeps the
// suffix array (4 bytes/base) for locate queries.
func Build(text dna.Seq) *Index {
	n := len(text)
	saCore := BuildSuffixArray(text)
	// Conceptually the suffix array of text+$ is [n, saCore...].
	idx := &Index{n: n, bwt: make([]byte, n+1), sa: saCore}
	// BWT row 0 corresponds to suffix n (the sentinel): preceding char is
	// text[n-1] (or the sentinel itself for empty text).
	if n > 0 {
		idx.bwt[0] = byte(text[n-1])
	} else {
		idx.bwt[0] = sentinelSym
	}
	for i, p := range saCore {
		if p == 0 {
			idx.bwt[i+1] = sentinelSym
		} else {
			idx.bwt[i+1] = byte(text[p-1])
		}
	}
	var counts [dna.NumBases]int
	for _, b := range text {
		counts[b]++
	}
	idx.c[0] = 1 // sentinel row
	for b := 0; b < dna.NumBases; b++ {
		idx.c[b+1] = idx.c[b] + counts[b]
	}
	// Occurrence checkpoints.
	rows := n + 1
	nCk := rows/occSample + 1
	idx.occCk = make([]int32, nCk*dna.NumBases)
	var run [dna.NumBases]int32
	for row := 0; row < rows; row++ {
		if row%occSample == 0 {
			copy(idx.occCk[(row/occSample)*dna.NumBases:], run[:])
		}
		if b := idx.bwt[row]; b != sentinelSym {
			run[b]++
		}
	}
	return idx
}

// Len returns the text length.
func (x *Index) Len() int { return x.n }

// occ returns the number of occurrences of base b in bwt[0:row].
func (x *Index) occ(b dna.Base, row int) int {
	ck := row / occSample
	cnt := int(x.occCk[ck*dna.NumBases+int(b)])
	for r := ck * occSample; r < row; r++ {
		if x.bwt[r] == byte(b) {
			cnt++
		}
	}
	return cnt
}

// Interval is a half-open BWT row interval [Lo, Hi) representing all
// suffixes prefixed by some pattern.
type Interval struct{ Lo, Hi int }

// Size returns the number of occurrences the interval stands for.
func (iv Interval) Size() int { return iv.Hi - iv.Lo }

// Empty reports an empty interval.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// All returns the interval of the empty pattern (every suffix).
func (x *Index) All() Interval { return Interval{0, x.n + 1} }

// ExtendLeft narrows iv by prepending base b to the pattern (one backward
// search step, the FM-index primitive whose irregular memory accesses §V
// blames for BWT seeding's poor locality).
func (x *Index) ExtendLeft(b dna.Base, iv Interval) Interval {
	lo := x.c[b] + x.occ(b, iv.Lo)
	hi := x.c[b] + x.occ(b, iv.Hi)
	return Interval{lo, hi}
}

// Find returns the interval of all occurrences of pattern.
func (x *Index) Find(pattern dna.Seq) Interval {
	iv := x.All()
	for i := len(pattern) - 1; i >= 0 && !iv.Empty(); i-- {
		iv = x.ExtendLeft(pattern[i], iv)
	}
	return iv
}

// Locate expands an interval into text positions (unsorted). max <= 0
// means no cap.
func (x *Index) Locate(iv Interval, max int) []int32 {
	if iv.Empty() {
		return nil
	}
	out := make([]int32, 0, iv.Size())
	for row := iv.Lo; row < iv.Hi; row++ {
		if row == 0 {
			// Row 0 is the sentinel suffix: position n, an empty-pattern
			// artefact that callers never see because patterns are
			// non-empty; guard anyway.
			continue
		}
		out = append(out, x.sa[row-1])
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Count returns the number of occurrences of pattern.
func (x *Index) Count(pattern dna.Seq) int {
	if len(pattern) == 0 {
		return 0
	}
	return x.Find(pattern).Size()
}

// Validate performs internal consistency checks (tests and index loaders).
func (x *Index) Validate() error {
	if len(x.bwt) != x.n+1 {
		return fmt.Errorf("fmindex: bwt length %d != n+1 (%d)", len(x.bwt), x.n+1)
	}
	if x.c[dna.NumBases] != x.n+1 {
		// The cumulative counts must end at the total row count: n bases
		// plus the sentinel row.
		return fmt.Errorf("fmindex: cumulative counts end at %d, want %d", x.c[dna.NumBases], x.n+1)
	}
	if countSentinels(x.bwt) != 1 {
		return fmt.Errorf("fmindex: bwt holds %d sentinels, want 1", countSentinels(x.bwt))
	}
	return nil
}

func countSentinels(bwt []byte) int {
	n := 0
	for _, b := range bwt {
		if b == sentinelSym {
			n++
		}
	}
	return n
}
