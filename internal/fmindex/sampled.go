package fmindex

import "genax/internal/dna"

// SampledIndex is an FM-index whose suffix array is subsampled: only every
// sa-sample-th entry is kept and other positions are recovered by LF-walking
// to the nearest sample — the classic space/time trade-off real FM-index
// aligners (BWA, Bowtie) ship, and the memory regime whose irregular
// accesses §V contrasts with GenAx's streaming tables. Locate costs up to
// `sample` extra backward steps per hit instead of one array read.
type SampledIndex struct {
	*Index
	sample int
	// sampled[row/sample] = text position of BWT row `row` for rows that
	// are multiples of sample (over the full n+1 row space).
	sampled []int32
}

// NewSampled builds a sampled index over text keeping every sample-th
// suffix-array entry (sample >= 1; 1 keeps everything).
func NewSampled(text dna.Seq, sample int) *SampledIndex {
	if sample < 1 {
		sample = 1
	}
	base := Build(text)
	si := &SampledIndex{Index: base, sample: sample}
	rows := base.n + 1
	si.sampled = make([]int32, (rows+sample-1)/sample)
	for row := 0; row < rows; row += sample {
		si.sampled[row/sample] = si.saAt(row)
	}
	return si
}

// saAt reads the full suffix array (available during construction).
func (si *SampledIndex) saAt(row int) int32 {
	if row == 0 {
		return int32(si.n) // sentinel suffix
	}
	return si.sa[row-1]
}

// Sample returns the sampling rate.
func (si *SampledIndex) Sample() int { return si.sample }

// SampledBytes returns the memory footprint of the retained samples,
// versus the 4(n+1) bytes of the full array.
func (si *SampledIndex) SampledBytes() int { return 4 * len(si.sampled) }

// lfStep maps a BWT row to the row of the suffix one position earlier in
// the text (the LF mapping).
func (si *SampledIndex) lfStep(row int) (int, bool) {
	b := si.bwt[row]
	if b == sentinelSym {
		return 0, false // reached the start of the text
	}
	return si.c[b] + si.occ(dna.Base(b), row), true
}

// LocateSampled resolves the text positions of an interval using only the
// sampled entries: each row LF-walks until it lands on a sampled row, then
// adds the number of steps taken.
func (si *SampledIndex) LocateSampled(iv Interval, max int) []int32 {
	if iv.Empty() {
		return nil
	}
	out := make([]int32, 0, iv.Size())
	for row := iv.Lo; row < iv.Hi; row++ {
		if row == 0 {
			continue // sentinel suffix
		}
		r, steps := row, 0
		pos := int32(-1)
		for r%si.sample != 0 {
			nr, ok := si.lfStep(r)
			if !ok {
				// The current row's suffix starts at text position 0.
				pos = int32(steps)
				break
			}
			r = nr
			steps++
		}
		if pos < 0 {
			pos = si.sampled[r/si.sample] + int32(steps)
		}
		out = append(out, pos)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
